// The alternative semantics from the paper's conclusions: when (I, J) has
// no solution, compute the subset repairs of the target instance — the
// ⊆-maximal parts of J the target peer could keep and still complete an
// exchange — and answer queries certainly across all repairs.

#include <iostream>

#include "logic/parser.h"
#include "pde/repairs.h"
#include "pde/setting.h"
#include "relational/instance_io.h"

int main() {
  pdx::SymbolTable symbols;
  // Directory exchange with a key: every directory entry must be backed
  // by the registry, and each person has at most one department.
  auto setting = pdx::PdeSetting::Create(
      {{"Registry", 2}}, {{"Directory", 2}},
      "Registry(x,y) -> Directory(x,y).",
      "Directory(x,y) -> Registry(x,y).",
      "Directory(x,y) & Directory(x,z) -> y = z.", &symbols);
  if (!setting.ok()) {
    std::cerr << setting.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Setting:\n" << setting->ToString(symbols) << "\n\n";

  auto source = pdx::ParseInstance(
      "Registry(ann, eng). Registry(bob, sales).", setting->schema(),
      &symbols);
  // The directory holds a stale entry (ann moved teams at some point) and
  // an entry nobody backs.
  auto target = pdx::ParseInstance(
      "Directory(ann, eng). Directory(ann, legacy). Directory(eve, ops).",
      setting->schema(), &symbols);
  if (!source.ok() || !target.ok()) return 1;

  std::cout << "I =\n" << source->ToString(symbols) << "\n\n";
  std::cout << "J =\n" << target->ToString(symbols) << "\n\n";

  auto repairs =
      pdx::ComputeSubsetRepairs(*setting, *source, *target, &symbols);
  if (!repairs.ok()) {
    std::cerr << repairs.status().ToString() << "\n";
    return 1;
  }
  std::cout << "(I, J) has no solution; " << repairs->size()
            << " subset repair(s) of J:\n";
  for (const pdx::Instance& repair : *repairs) {
    std::cout << "---\n" << repair.ToString(symbols) << "\n";
  }

  auto query = pdx::ParseUnionQuery("q(x,y) :- Directory(x,y).",
                                    setting->schema(), &symbols);
  auto answers = pdx::ComputeRepairCertainAnswers(*setting, *source, *target,
                                                  *query, &symbols);
  if (answers.ok()) {
    std::cout << "\ncertain under repairs, q(x,y) :- Directory(x,y):\n";
    for (const pdx::Tuple& t : answers->answers) {
      std::cout << "  Directory" << pdx::TupleToString(t, symbols) << "\n";
    }
    std::cout << "(the registry-backed entries survive every repair; the "
                 "stale and unbacked ones do not)\n";
  }
  return 0;
}
