// A guided tour of Section 4: where exactly the tractability boundary of
// peer data exchange lies. For each setting we print its Definition 9
// classification and time both solvers on a small input, showing the
// polynomial/exponential split the paper proves.

#include <chrono>
#include <iostream>

#include "pde/ctract_solver.h"
#include "pde/generic_solver.h"
#include "workload/graph_gen.h"
#include "workload/reductions.h"

namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

void Describe(const pdx::PdeSetting& setting, const char* name) {
  const pdx::CtractReport& report = setting.ctract_report();
  std::cout << "== " << name << "\n"
            << "   condition 1: " << (report.condition1 ? "yes" : "no")
            << ", 2.1: " << (report.condition2_1 ? "yes" : "no")
            << ", 2.2: " << (report.condition2_2 ? "yes" : "no")
            << ", Σ_t: " << (setting.HasTargetConstraints() ? "yes" : "no")
            << ", disjunction: "
            << (setting.HasDisjunctiveTsTgds() ? "yes" : "no")
            << "  ->  in C_tract: " << (setting.InCtract() ? "YES" : "no")
            << "\n";
}

void TimeGeneric(const pdx::PdeSetting& setting, const pdx::Instance& source,
                 pdx::SymbolTable* symbols) {
  auto start = Clock::now();
  auto result = pdx::GenericExistsSolution(setting, source,
                                           setting.EmptyInstance(), symbols);
  if (!result.ok()) return;
  std::cout << "   generic search: "
            << (result->outcome == pdx::SolveOutcome::kSolutionFound
                    ? "solution"
                    : "no solution")
            << " in " << MillisSince(start) << " ms ("
            << result->nodes_explored << " nodes)\n\n";
}

}  // namespace

int main() {
  std::cout << "The tractability boundary of peer data exchange "
               "(Section 4 of the paper)\n\n";

  // 1. Inside C_tract: the CLIQUE setting's LAV-ized cousin — E/H with a
  //    LAV Σ_ts — polynomial.
  {
    pdx::SymbolTable symbols;
    auto setting = pdx::PdeSetting::Create(
        {{"E", 2}}, {{"H", 2}}, "E(x,z) & E(z,y) -> H(x,y).",
        "H(x,y) -> E(x,y).", "", &symbols);
    Describe(*setting, "LAV Σ_ts (Corollary 2): tractable");
    pdx::Rng rng(3);
    pdx::Graph g = pdx::ErdosRenyi(40, 0.2, &rng);
    pdx::Instance source = setting->EmptyInstance();
    pdx::RelationId e = setting->schema().FindRelation("E").value();
    for (auto [u, v] : g.edges) {
      source.AddFact(e, {symbols.InternConstant("v" + std::to_string(u)),
                         symbols.InternConstant("v" + std::to_string(v))});
    }
    auto start = Clock::now();
    auto result = pdx::CtractExistsSolution(*setting, source,
                                            setting->EmptyInstance(),
                                            &symbols);
    std::cout << "   ExistsSolution on a 40-node graph: "
              << (result->has_solution ? "solution" : "no solution")
              << " in " << MillisSince(start) << " ms (max block nulls "
              << result->max_block_nulls << ")\n\n";
  }

  // 2. The CLIQUE setting: conditions 2.1 and 2.2 both fail; NP-complete.
  {
    pdx::SymbolTable symbols;
    auto setting = pdx::MakeCliqueSetting(&symbols);
    Describe(*setting, "CLIQUE setting (Theorem 3): NP-complete");
    pdx::Instance source = pdx::MakeCliqueSourceInstance(
        *setting, pdx::PathGraph(6), 3, &symbols);
    TimeGeneric(*setting, source, &symbols);
  }

  // 3. One target egd (conditions 1 + 2.1 hold): still NP-hard.
  {
    pdx::SymbolTable symbols;
    auto setting = pdx::MakeEgdBoundarySetting(&symbols);
    Describe(*setting, "one target egd (Section 4a): NP-hard");
    pdx::Instance source = pdx::MakeEgdBoundarySourceInstance(
        *setting, pdx::PathGraph(5), 3, &symbols);
    TimeGeneric(*setting, source, &symbols);
  }

  // 4. One full target tgd (conditions 1 + 2.1 hold): still NP-hard.
  {
    pdx::SymbolTable symbols;
    auto setting = pdx::MakeTargetTgdBoundarySetting(&symbols);
    Describe(*setting, "one full target tgd (Section 4b): NP-hard");
    pdx::Instance source = pdx::MakeTargetTgdBoundarySourceInstance(
        *setting, pdx::PathGraph(5), 3, &symbols);
    TimeGeneric(*setting, source, &symbols);
  }

  // 5. Disjunction in the ts head (conditions 1 + 2.2 hold): NP-hard via
  //    3-COLORABILITY.
  {
    pdx::SymbolTable symbols;
    auto setting = pdx::MakeThreeColSetting(&symbols);
    Describe(*setting, "disjunctive ts head (Section 4c): NP-hard");
    pdx::Instance source = pdx::MakeThreeColSourceInstance(
        *setting, pdx::CompleteGraph(4), &symbols);
    TimeGeneric(*setting, source, &symbols);
  }
  return 0;
}
