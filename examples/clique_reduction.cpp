// Theorem 3 in action: the CLIQUE problem encoded as a peer data exchange
// setting with no target constraints. For a graph G and integer k, the
// source instance I(G,k) has a solution iff G contains a k-clique — a
// concrete demonstration of why SOL(P) is NP-complete.

#include <iostream>

#include "pde/ctract_solver.h"
#include "pde/generic_solver.h"
#include "workload/graph_gen.h"
#include "workload/reductions.h"

namespace {

void Check(const pdx::PdeSetting& setting, pdx::SymbolTable* symbols,
           const char* name, const pdx::Graph& graph, int k) {
  pdx::Instance source =
      pdx::MakeCliqueSourceInstance(setting, graph, k, symbols);
  bool oracle = pdx::HasClique(graph, k);

  // The CLIQUE setting satisfies condition 1 of Definition 9, so the
  // Theorem 5 homomorphism algorithm decides it correctly (just not in
  // guaranteed polynomial time: its blocks grow with the input).
  auto result = pdx::CtractExistsSolution(setting, source,
                                          setting.EmptyInstance(), symbols);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return;
  }
  std::cout << name << ": n=" << graph.node_count
            << " edges=" << graph.edges.size() << " k=" << k
            << "  solver=" << (result->has_solution ? "solution" : "none")
            << "  brute-force oracle=" << (oracle ? "clique" : "no clique")
            << "  blocks=" << result->block_count
            << " max-block-nulls=" << result->max_block_nulls
            << (result->has_solution == oracle ? "" : "  MISMATCH!")
            << "\n";
  if (result->has_solution) {
    std::cout << "  witness P-tuples (the clique labeling):\n";
    std::cout << result->solution->ToString(*symbols) << "\n";
  }
}

}  // namespace

int main() {
  pdx::SymbolTable symbols;
  auto setting = pdx::MakeCliqueSetting(&symbols);
  if (!setting.ok()) {
    std::cerr << setting.status().ToString() << "\n";
    return 1;
  }
  std::cout << "CLIQUE reduction setting (Theorem 3):\n"
            << setting->ToString(symbols) << "\n";
  const pdx::CtractReport& report = setting->ctract_report();
  std::cout << "condition 1: " << report.condition1
            << ", condition 2.1: " << report.condition2_1
            << ", condition 2.2: " << report.condition2_2
            << " -> in C_tract: " << report.in_ctract() << "\n\n";

  pdx::Rng rng(4);
  Check(*setting, &symbols, "triangle", pdx::CompleteGraph(3), 3);
  Check(*setting, &symbols, "path", pdx::PathGraph(5), 3);
  Check(*setting, &symbols, "random", pdx::ErdosRenyi(7, 0.5, &rng), 3);
  Check(*setting, &symbols, "planted",
        pdx::PlantClique(pdx::ErdosRenyi(8, 0.15, &rng), 4, &rng), 4);
  return 0;
}
