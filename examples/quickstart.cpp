// Quickstart: the paper's Example 1, end to end.
//
// Builds the PDE setting
//   S = {E/2}, T = {H/2}
//   Σ_st: E(x,z) & E(z,y) -> H(x,y)
//   Σ_ts: H(x,y) -> E(x,y)
// and runs both solvers on the three instances discussed in the paper:
// one with no solution, one with a unique solution, one with many.

#include <iostream>

#include "pde/ctract_solver.h"
#include "pde/generic_solver.h"
#include "pde/setting.h"
#include "pde/solution.h"
#include "relational/instance_io.h"

namespace {

void Report(const pdx::PdeSetting& setting, pdx::SymbolTable* symbols,
            const char* label, const char* source_text) {
  auto source = pdx::ParseInstance(source_text, setting.schema(), symbols);
  if (!source.ok()) {
    std::cerr << "parse error: " << source.status().ToString() << "\n";
    return;
  }
  pdx::Instance empty_target = setting.EmptyInstance();

  std::cout << "== " << label << "\n";
  std::cout << "I = { " << source_text << " }, J = {}\n";

  // The polynomial Figure-3 algorithm (this setting is in C_tract? No —
  // Σ_ts here is LAV, so yes: conditions 1 + 2.1 hold).
  auto fast =
      pdx::CtractExistsSolution(setting, *source, empty_target, symbols);
  if (!fast.ok()) {
    std::cerr << "solver error: " << fast.status().ToString() << "\n";
    return;
  }
  if (fast->has_solution) {
    std::cout << "ExistsSolution: yes. Witness J' =\n"
              << fast->solution->ToString(*symbols) << "\n";
    bool verified = pdx::IsSolution(setting, *source, empty_target,
                                    *fast->solution, *symbols);
    std::cout << "verified against Definition 2: "
              << (verified ? "yes" : "NO (bug!)") << "\n";
  } else {
    std::cout << "ExistsSolution: no solution exists.\n";
  }

  // Cross-check with the complete search solver.
  auto slow = pdx::GenericExistsSolution(setting, *source, empty_target,
                                         symbols);
  if (slow.ok()) {
    std::cout << "generic search agrees: "
              << ((slow->outcome == pdx::SolveOutcome::kSolutionFound) ==
                          fast->has_solution
                      ? "yes"
                      : "NO (bug!)")
              << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  pdx::SymbolTable symbols;
  auto setting = pdx::PdeSetting::Create(
      {{"E", 2}}, {{"H", 2}},
      "E(x,z) & E(z,y) -> H(x,y).",
      "H(x,y) -> E(x,y).", "", &symbols);
  if (!setting.ok()) {
    std::cerr << "setting error: " << setting.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Peer data exchange setting (paper, Example 1):\n"
            << setting->ToString(symbols) << "\n";
  std::cout << "in C_tract: " << (setting->InCtract() ? "yes" : "no")
            << "\n\n";

  Report(*setting, &symbols, "case 1: no solution", "E(a,b). E(b,c).");
  Report(*setting, &symbols, "case 2: unique solution", "E(a,a).");
  Report(*setting, &symbols, "case 3: multiple solutions",
         "E(a,b). E(b,c). E(a,c).");
  return 0;
}
