// The paper's motivating scenario (Section 1): a university database
// periodically imports data from an authoritative genomic source
// (Swiss-Prot-like) but restricts what it accepts via target-to-source
// constraints. Demonstrates:
//   * a consistent sync: the solver materializes the import,
//   * an inconsistent state: the university holds unbacked local data and
//     the solver explains why no solution exists.

#include <iostream>

#include "pde/ctract_solver.h"
#include "pde/solution.h"
#include "workload/genomics.h"
#include "workload/random.h"

int main() {
  pdx::SymbolTable symbols;
  auto setting = pdx::MakeGenomicsSetting(&symbols);
  if (!setting.ok()) {
    std::cerr << setting.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Genomics peer data exchange setting:\n"
            << setting->ToString(symbols) << "\n"
            << "in C_tract (polynomial ExistsSolution applies): "
            << (setting->InCtract() ? "yes" : "no") << "\n\n";

  pdx::Rng rng(2026);

  // ---- Consistent sync ------------------------------------------------
  pdx::GenomicsWorkloadOptions consistent;
  consistent.proteins = 6;
  consistent.annotations_per_protein = 1;
  consistent.backed_target_annotations = 2;
  pdx::GenomicsWorkload workload =
      pdx::MakeGenomicsWorkload(*setting, consistent, &rng, &symbols);

  std::cout << "== consistent sync ==\n";
  std::cout << "Swiss-Prot (I), " << workload.source.fact_count()
            << " facts:\n"
            << workload.source.ToString(symbols) << "\n\n";
  std::cout << "University (J), " << workload.target.fact_count()
            << " facts:\n"
            << workload.target.ToString(symbols) << "\n\n";

  auto result = pdx::CtractExistsSolution(*setting, workload.source,
                                          workload.target, &symbols);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  if (result->has_solution) {
    std::cout << "Solution found (" << result->solution->fact_count()
              << " facts). University database after the exchange:\n"
              << result->solution->ToString(symbols) << "\n";
    std::cout << "(values like _N0 are labeled nulls: evidence codes and "
                 "organisms the source did not pin down)\n\n";
  }

  // ---- Inconsistent state ---------------------------------------------
  pdx::GenomicsWorkloadOptions inconsistent = consistent;
  inconsistent.unbacked_target_annotations = 1;
  pdx::GenomicsWorkload bad =
      pdx::MakeGenomicsWorkload(*setting, inconsistent, &rng, &symbols);

  std::cout << "== inconsistent state (unbacked local annotation) ==\n";
  auto bad_result = pdx::CtractExistsSolution(*setting, bad.source,
                                              bad.target, &symbols);
  if (bad_result.ok() && !bad_result->has_solution) {
    std::cout << "No solution exists, as expected.\n";
    // Explain with the Definition 2 checker: the target's own data already
    // violates Σ_ts against the source.
    pdx::SolutionCheck check = pdx::CheckSolution(
        *setting, bad.source, bad.target, bad.target, symbols);
    std::cout << "Diagnosis (violations of keeping J as-is):\n";
    for (const std::string& violation : check.violations) {
      std::cout << "  * " << violation << "\n";
    }
  }
  return 0;
}
