// Multi-PDE and the PDMS view (Section 2):
//   * several source peers exchanging with one target merge into a single
//     PDE setting with the same solution space;
//   * every PDE setting is a peer data management system with equality
//     storage descriptions on the source and containment descriptions on
//     the target.

#include <iostream>

#include "pde/generic_solver.h"
#include "pde/multi_pde.h"
#include "pde/pdms.h"
#include "pde/solution.h"
#include "relational/instance_io.h"

int main() {
  pdx::SymbolTable symbols;

  // Two upstream registries feeding one shared directory. Peer A is
  // trusted for memberships and requires everything in the directory to be
  // backed by it; peer B only contributes.
  std::vector<pdx::PeerSpec> peers = {
      {{{"RegistryA", 2}},
       "RegistryA(x,y) -> Directory(x,y).",
       "Directory(x,y) -> RegistryA(x,y).",
       ""},
      {{{"RegistryB", 2}},
       "RegistryB(x,y) -> Directory(x,y).",
       "",
       ""},
  };
  auto merged = pdx::MergeMultiPde(peers, {{"Directory", 2}}, &symbols);
  if (!merged.ok()) {
    std::cerr << merged.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Merged multi-PDE setting:\n"
            << merged->ToString(symbols) << "\n\n";

  auto conflicting = pdx::ParseInstance(
      "RegistryA(alice,eng). RegistryB(bob,sales).", merged->schema(),
      &symbols);
  auto agreeing = pdx::ParseInstance(
      "RegistryA(alice,eng). RegistryA(bob,sales). RegistryB(bob,sales).",
      merged->schema(), &symbols);
  if (!conflicting.ok() || !agreeing.ok()) return 1;

  auto no = pdx::GenericExistsSolution(*merged, *conflicting,
                                       merged->EmptyInstance(), &symbols);
  std::cout << "B contributes bob, A does not back him -> "
            << (no.ok() && no->outcome == pdx::SolveOutcome::kNoSolution
                    ? "no solution (A's Σ_ts vetoes the exchange)"
                    : "unexpected result")
            << "\n";

  auto yes = pdx::GenericExistsSolution(*merged, *agreeing,
                                        merged->EmptyInstance(), &symbols);
  if (yes.ok() && yes->outcome == pdx::SolveOutcome::kSolutionFound) {
    std::cout << "With A backing bob -> solution:\n"
              << yes->solution->ToString(symbols) << "\n\n";
  }

  // The PDMS view of the merged setting.
  pdx::PdmsDescription pdms = pdx::BuildPdms(*merged, symbols);
  std::cout << "PDMS N(P) per Section 2 of the paper:\n"
            << pdms.ToString() << "\n\n";

  // The Section 2 correspondence, concretely.
  if (yes.ok() && yes->solution.has_value()) {
    bool consistent = pdx::IsConsistentPdmsInstance(
        *merged, /*i_star=*/*agreeing, /*j_star=*/merged->EmptyInstance(),
        /*i=*/*agreeing, /*k=*/*yes->solution, symbols);
    std::cout << "solution of the PDE == consistent data instance of N(P): "
              << (consistent ? "yes" : "NO (bug!)") << "\n";
  }
  return 0;
}
