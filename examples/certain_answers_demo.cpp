// Certain answers in peer data exchange (Definition 4): a tuple is a
// certain answer if it holds in *every* solution. Reproduces the paper's
// example after Definition 4 and contrasts it with the PTIME data-exchange
// fast path.

#include <iostream>

#include "logic/parser.h"
#include "pde/certain_answers.h"
#include "pde/setting.h"
#include "relational/instance_io.h"

namespace {

void ShowBoolean(const pdx::PdeSetting& setting, pdx::SymbolTable* symbols,
                 const char* source_text, const pdx::UnionQuery& query) {
  auto source =
      pdx::ParseInstance(source_text, setting.schema(), symbols);
  if (!source.ok()) return;
  auto result = pdx::ComputeCertainAnswers(
      setting, *source, setting.EmptyInstance(), query, symbols);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return;
  }
  std::cout << "I = { " << source_text << " }  ->  certain(q) = "
            << (result->boolean_value ? "true" : "false");
  if (result->no_solution) std::cout << "  (vacuously: no solution exists)";
  std::cout << "  [" << result->solutions_enumerated
            << " minimal solutions examined]\n";
}

}  // namespace

int main() {
  pdx::SymbolTable symbols;
  auto setting = pdx::PdeSetting::Create(
      {{"E", 2}}, {{"H", 2}},
      "E(x,z) & E(z,y) -> H(x,y).",
      "H(x,y) -> E(x,y).", "", &symbols);
  if (!setting.ok()) {
    std::cerr << setting.status().ToString() << "\n";
    return 1;
  }

  auto query = pdx::ParseUnionQuery("q() :- H(x,y) & H(y,z).",
                                    setting->schema(), &symbols);
  if (!query.ok()) {
    std::cerr << query.status().ToString() << "\n";
    return 1;
  }

  std::cout << "Boolean query q = ∃x,y,z H(x,y) ∧ H(y,z)\n\n";
  // The paper: certain(q, ({E(a,a)}, ∅)) = true,
  //            certain(q, ({E(a,b),E(b,c),E(a,c)}, ∅)) = false.
  ShowBoolean(*setting, &symbols, "E(a,a).", *query);
  ShowBoolean(*setting, &symbols, "E(a,b). E(b,c). E(a,c).", *query);
  ShowBoolean(*setting, &symbols, "E(a,b). E(b,c).", *query);

  // Non-Boolean certain answers.
  std::cout << "\nNon-Boolean query q(x,y) :- H(x,y) on "
               "I = {E(a,b), E(b,c), E(a,c)}:\n";
  auto open_query = pdx::ParseUnionQuery("q(x,y) :- H(x,y).",
                                         setting->schema(), &symbols);
  auto source = pdx::ParseInstance("E(a,b). E(b,c). E(a,c).",
                                   setting->schema(), &symbols);
  auto result = pdx::ComputeCertainAnswers(
      *setting, *source, setting->EmptyInstance(), *open_query, &symbols);
  if (result.ok()) {
    for (const pdx::Tuple& t : result->answers) {
      std::cout << "  certain: H" << pdx::TupleToString(t, symbols) << "\n";
    }
    std::cout << "(H(a,b) and H(b,c) hold in some solutions but not all,"
                 " so only H(a,c) is certain)\n";
  }

  // Data-exchange contrast: with Σ_ts = ∅ certain answers come from the
  // universal solution in PTIME.
  std::cout << "\nData-exchange fast path (Σ_ts = ∅):\n";
  pdx::SymbolTable de_symbols;
  auto de_setting = pdx::PdeSetting::Create(
      {{"E", 2}}, {{"H", 2}},
      "E(x,z) & E(z,y) -> H(x,y).", "", "", &de_symbols);
  auto de_query = pdx::ParseUnionQuery("q(x,y) :- H(x,y).",
                                       de_setting->schema(), &de_symbols);
  auto de_source = pdx::ParseInstance("E(a,b). E(b,c). E(a,c).",
                                      de_setting->schema(), &de_symbols);
  auto de_result = pdx::ComputeCertainAnswers(
      *de_setting, *de_source, de_setting->EmptyInstance(), *de_query,
      &de_symbols);
  if (de_result.ok()) {
    std::cout << "  used fast path: "
              << (de_result->used_data_exchange_fast_path ? "yes" : "no")
              << ", certain answers:";
    for (const pdx::Tuple& t : de_result->answers) {
      std::cout << " H" << pdx::TupleToString(t, de_symbols);
    }
    std::cout << "\n";
  }
  return 0;
}
