// A multi-peer bibliography exchange (the Section 2 multi-PDE
// construction on a realistic shape): DBLP is authoritative for
// publication years, a preprint server contributes freely, and the
// library catalog enforces a functional year via a target egd.
// Demonstrates the solvable case, a source-side conflict (unsolvable and
// unrepairable), and a target-side inconsistency (repairable).

#include <iostream>

#include "pde/generic_solver.h"
#include "pde/repairs.h"
#include "workload/bibliography.h"

int main() {
  pdx::SymbolTable symbols;
  auto setting = pdx::MakeBibliographySetting(&symbols);
  if (!setting.ok()) {
    std::cerr << setting.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Merged multi-PDE bibliography setting:\n"
            << setting->ToString(symbols) << "\n\n";

  pdx::Rng rng(2025);

  {
    std::cout << "== clean exchange ==\n";
    pdx::BibliographyWorkloadOptions opts;
    opts.dblp_papers = 3;
    opts.arxiv_papers = 2;
    opts.overlap = 1;
    opts.authors_per_paper = 1;
    pdx::BibliographyWorkload workload =
        pdx::MakeBibliographyWorkload(*setting, opts, &rng, &symbols);
    auto result = pdx::GenericExistsSolution(*setting, workload.source,
                                             workload.target, &symbols);
    if (result.ok() &&
        result->outcome == pdx::SolveOutcome::kSolutionFound) {
      std::cout << "catalog after the exchange ("
                << result->solution->fact_count() << " facts):\n"
                << result->solution->ToString(symbols) << "\n\n";
    }
  }

  {
    std::cout << "== source-side year conflict ==\n";
    pdx::BibliographyWorkloadOptions opts;
    opts.dblp_papers = 2;
    opts.arxiv_papers = 0;
    opts.overlap = 0;
    opts.inject_year_conflict = true;
    pdx::BibliographyWorkload workload =
        pdx::MakeBibliographyWorkload(*setting, opts, &rng, &symbols);
    auto result = pdx::GenericExistsSolution(*setting, workload.source,
                                             workload.target, &symbols);
    std::cout << "DBLP lists paper0 with two different years -> "
              << (result.ok() &&
                          result->outcome == pdx::SolveOutcome::kNoSolution
                      ? "no solution"
                      : "unexpected")
              << "\n";
    auto repairs = pdx::ComputeSubsetRepairs(*setting, workload.source,
                                             workload.target, &symbols);
    if (repairs.ok()) {
      std::cout << "subset repairs of the catalog: " << repairs->size()
                << " (the conflict is in the *source*: retracting catalog "
                   "data cannot fix it)\n\n";
    }
  }

  {
    std::cout << "== target-side unbacked year ==\n";
    pdx::BibliographyWorkloadOptions opts;
    opts.dblp_papers = 2;
    opts.arxiv_papers = 1;
    opts.overlap = 0;
    opts.unbacked_catalog_years = 1;
    pdx::BibliographyWorkload workload =
        pdx::MakeBibliographyWorkload(*setting, opts, &rng, &symbols);
    auto repairs = pdx::ComputeSubsetRepairs(*setting, workload.source,
                                             workload.target, &symbols);
    if (repairs.ok()) {
      std::cout << "catalog holds a year DBLP does not back; "
                << repairs->size() << " repair(s):\n";
      for (const pdx::Instance& repair : *repairs) {
        std::cout << (repair.empty() ? "(drop the unbacked entry)\n"
                                     : repair.ToString(symbols) + "\n");
      }
    }
  }
  return 0;
}
