#include "hom/core.h"

#include <vector>

#include "hom/instance_hom.h"

namespace pdx {

namespace {

// Builds the instance containing all facts of `instance` except
// facts[skip].
Instance WithoutFact(const Instance& instance, const std::vector<Fact>& facts,
                     size_t skip) {
  Instance smaller(&instance.schema());
  for (size_t i = 0; i < facts.size(); ++i) {
    if (i != skip) smaller.AddFact(facts[i]);
  }
  return smaller;
}

// Attempts one retraction: a homomorphism from `instance` into a proper
// subinstance (missing at least one fact). Returns the retract image on
// success.
bool TryRetract(const Instance& instance, Instance* out) {
  std::vector<Fact> facts = instance.AllFacts();
  for (size_t i = 0; i < facts.size(); ++i) {
    // Ground facts are hom-fixed (constants map to themselves), so only
    // facts with nulls can be dropped.
    bool has_null = false;
    for (const Value& v : facts[i].tuple) {
      if (v.is_null()) {
        has_null = true;
        break;
      }
    }
    if (!has_null) continue;
    Instance smaller = WithoutFact(instance, facts, i);
    std::optional<NullAssignment> h =
        FindInstanceHomomorphism(instance, smaller);
    if (h.has_value()) {
      // The retract is the image of the instance, which may be smaller
      // still than `smaller`.
      *out = ApplyAssignment(instance, *h);
      return true;
    }
  }
  return false;
}

}  // namespace

Instance ComputeCore(const Instance& instance, CoreStats* stats) {
  Instance current = instance;
  int64_t retractions = 0;
  Instance next(&instance.schema());
  while (TryRetract(current, &next)) {
    PDX_CHECK_LT(next.fact_count(), current.fact_count())
        << "retract must shrink";
    current = std::move(next);
    next = Instance(&instance.schema());
    ++retractions;
  }
  if (stats != nullptr) {
    stats->retractions = retractions;
    stats->facts_removed =
        static_cast<int64_t>(instance.fact_count() - current.fact_count());
  }
  return current;
}

bool IsCore(const Instance& instance) {
  Instance scratch(&instance.schema());
  return !TryRetract(instance, &scratch);
}

}  // namespace pdx
