#ifndef PDX_HOM_MATCH_VM_H_
#define PDX_HOM_MATCH_VM_H_

// The register-style bytecode VM behind the planned match entry points: an
// iterative executor for the linear programs plan/bytecode.h lowers from
// compiled BodyPlans. One frame per join level (candidate cursor + trail
// mark), no recursion, no virtual dispatch, and no heap allocation in
// steady state (frames are pooled per thread, like the tree executor's
// PlanContexts).
//
// The VM enumerates exactly the match set the tree executor enumerates,
// including the delta-pivot confinement and the bind-or-check tolerance
// for callers whose partial binding differs from the compiled assumption.
// PDX_FORCE_TREE_EXEC=1 (or SetForceTreeExec) routes every planned call
// back to the recursive tree executor, which stays as the cross-validated
// baseline (tests/cross_validation_test.cc, tools/check.sh).

#include <functional>

#include "hom/matcher.h"
#include "plan/ir.h"

namespace pdx {

// True when planned execution must use the tree executor instead of the
// VM. Seeded from the PDX_FORCE_TREE_EXEC environment variable (non-empty
// and not "0"); SetForceTreeExec overrides it at runtime (tests and
// benchmarks toggle per leg).
bool ForceTreeExec();
void SetForceTreeExec(bool force);

// EnumerateMatchesPlanned through plan.code (full program).
bool VmEnumerateMatches(const plan::BodyPlan& plan, const Instance& instance,
                        const Binding& partial,
                        const std::function<bool(const Binding&)>& fn);

// HasMatchPlanned through plan.code: existence only, stopping at the
// first match. Single-level fully-bound plans (the chase's dominant
// head-satisfaction shape on merge-free instances) collapse to one
// dedup-set point lookup with no context lease or binding copy.
bool VmHasMatch(const plan::BodyPlan& plan, const Instance& instance,
                const Binding& partial);

// EnumerateMatchesDeltaPartitionPlanned through the variant entry point.
bool VmEnumerateMatchesDeltaPartition(
    const plan::BodyPlan& plan, const Instance& instance,
    const DeltaView& delta, const DeltaPartition& partition,
    const Binding& partial, const std::function<bool(const Binding&)>& fn);

}  // namespace pdx

#endif  // PDX_HOM_MATCH_VM_H_
