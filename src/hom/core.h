#ifndef PDX_HOM_CORE_H_
#define PDX_HOM_CORE_H_

#include <cstdint>

#include "relational/instance.h"

namespace pdx {

// Computation of the *core* of an instance with labeled nulls, after
// Fagin, Kolaitis & Popa, "Data exchange: getting to the core" [7] (the
// paper this reproduction builds on for its block machinery, Def. 10).
//
// The core of K is the smallest K' ⊆ K such that K maps homomorphically
// into K' (constants fixed); it is unique up to isomorphism. For data
// exchange, the core of a universal solution is the smallest universal
// solution — the canonical artifact a target peer would materialize.
//
// The search for proper retracts is exponential only in per-block null
// counts (the same quantity Theorem 6 bounds), so cores of C_tract-style
// canonical instances are cheap.

struct CoreStats {
  int64_t retractions = 0;    // successful shrink steps
  int64_t facts_removed = 0;
};

// Returns the core of `instance`. Ground instances are their own core.
Instance ComputeCore(const Instance& instance, CoreStats* stats = nullptr);

// True if `instance` equals its own core (no proper retract exists).
bool IsCore(const Instance& instance);

}  // namespace pdx

#endif  // PDX_HOM_CORE_H_
