#include "hom/match_vm.h"

#include <atomic>
#include <cstdlib>
#include <limits>
#include <memory>
#include <vector>

#include "plan/bytecode.h"

namespace pdx {

namespace {

std::atomic<bool>& ForceTreeExecFlag() {
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("PDX_FORCE_TREE_EXEC");
    return env != nullptr && env[0] != '\0' &&
           !(env[0] == '0' && env[1] == '\0');
  }();
  return flag;
}

constexpr size_t kNoLimit = std::numeric_limits<size_t>::max();

// One join level of the running program: the candidate cursor plus the
// state needed to fetch tuples and to unwind on backtrack. `cand` is null
// for dense scans (the cursor doubles as the tuple index).
struct VmFrame {
  const int32_t* cand = nullptr;
  size_t cursor = 0;
  size_t count = 0;
  size_t limit = kNoLimit;  // exclusive tuple-index bound (delta confinement)
  const Value* data = nullptr;
  size_t arity = 0;
  uint32_t header = 0;      // offset of this frame's loop-header instr
  uint32_t trail_mark = 0;
  bool bind_probe = false;  // degraded probe-var: bind `pos` at runtime
};

// All VM registers: the binding under construction, the unbind trail, and
// the frame stack. Pooled per thread and reused — steady-state execution
// allocates nothing (frames/trail keep their capacity across leases).
struct VmContext {
  Binding binding;
  Binding start;  // partition-entry binding, reused across pivot tuples
  std::vector<VariableId> trail;
  std::vector<VmFrame> frames;
};

// Contexts are leased from a per-thread pool indexed by nesting depth —
// a VM enumeration's callback can itself run a planned head check (the
// chase's keep filter does), so plain thread_local reuse would alias.
struct VmPool {
  std::vector<std::unique_ptr<VmContext>> contexts;
  size_t depth = 0;
};

VmPool& ThreadVmPool() {
  thread_local VmPool pool;
  return pool;
}

class VmLease {
 public:
  VmLease() {
    VmPool& pool = ThreadVmPool();
    if (pool.depth == pool.contexts.size()) {
      pool.contexts.push_back(std::make_unique<VmContext>());
    }
    ctx_ = pool.contexts[pool.depth++].get();
  }
  ~VmLease() { --ThreadVmPool().depth; }
  VmLease(const VmLease&) = delete;
  VmLease& operator=(const VmLease&) = delete;

  VmContext* operator->() const { return ctx_; }
  VmContext* get() const { return ctx_; }

 private:
  VmContext* ctx_;
};

// Binding assignment that reuses the destination's capacity, resolving
// bound values when the instance has merges (the invariant the tree
// executor's AssignResolvedPartial maintains).
void AssignResolvedPartialVm(const Instance& instance, const Binding& partial,
                             Binding* out) {
  *out = partial;
  if (!instance.has_merges()) return;
  for (size_t v = 0; v < out->bound.size(); ++v) {
    if (out->bound[v]) out->values[v] = instance.ResolveValue(out->values[v]);
  }
}

void EnsureVmFrames(VmContext* ctx, int n) {
  if (static_cast<int>(ctx->frames.size()) < n) ctx->frames.resize(n);
}

// Runs the slot instructions [begin, end) against `tuple`. kBind and
// kCheckVar share the runtime-checked path (bind if unbound, else compare)
// so a caller whose partial binding differs from the compiled assumption
// still executes correctly — same tolerance as the tree executor's RunOps.
template <bool kResolved>
bool RunSlots(VmContext* ctx, const plan::Instr* code, uint32_t begin,
              uint32_t end, const Value* tuple,
              const ValueResolver* resolver) {
  for (uint32_t ip = begin; ip < end; ++ip) {
    const plan::Instr& instr = code[ip];
    Value tv = tuple[instr.pos];
    if (kResolved) tv = resolver->Resolve(tv);
    if (instr.op == plan::Instr::kCheckConst) {
      if (tv != instr.key) return false;
      continue;
    }
    if (ctx->binding.bound[instr.var]) {
      if (ctx->binding.values[instr.var] != tv) return false;
    } else {
      ctx->binding.Bind(instr.var, tv);
      ctx->trail.push_back(instr.var);
    }
  }
  return true;
}

// The inner loop: executes the loop-nest starting at `entry` against the
// current ctx->binding. Returns true iff the callback stopped the
// enumeration. `additive_pivot` >= 0 confines headers with
// atom_index < additive_pivot to tuples below delta->begin(relation),
// exactly like the tree executor's limit.
template <bool kResolved, typename Fn>
bool RunLoops(VmContext* ctx, const plan::BodyCode& bc, uint32_t entry,
              const Instance& instance, const ValueResolver* resolver,
              const DeltaView* delta, int additive_pivot, const Fn& fn) {
  const plan::Instr* code = bc.code.data();
  if (code[entry].op == plan::Instr::kEmit) {
    // Zero remaining joins: the binding is already a complete match.
    return !fn(ctx->binding);
  }
  int depth = 0;
  uint32_t header = entry;
  bool open = true;
  for (;;) {
    if (open) {
      const plan::Instr& h = code[header];
      VmFrame& f = ctx->frames[depth];
      f.header = header;
      f.cursor = 0;
      f.trail_mark = static_cast<uint32_t>(ctx->trail.size());
      f.bind_probe = false;
      const TupleList tuples = instance.tuples(h.relation);
      f.data = tuples.data();
      f.arity = static_cast<size_t>(tuples.arity());
      f.limit = kNoLimit;
      if (additive_pivot >= 0 && h.atom_index < additive_pivot) {
        f.limit = delta->begin(h.relation);
      }
      // Resolve the access path. A probe-var whose variable the caller
      // left unbound degrades to a scan with the probed position handled
      // as a runtime bind.
      plan::Instr::Op op = h.op;
      Value key;
      if (op == plan::Instr::kProbeVar) {
        if (ctx->binding.bound[h.var]) {
          key = ctx->binding.values[h.var];
        } else {
          op = plan::Instr::kScan;
          f.bind_probe = true;
        }
      } else if (op == plan::Instr::kProbeConst) {
        key = h.key;
      }
      if (op == plan::Instr::kScan) {
        f.cand = nullptr;
        f.count = f.limit < tuples.size() ? f.limit : tuples.size();
      } else {
        TupleIndexSpan span;
        if (kResolved) {
          span = instance.TuplesWithResolvedValueAt(h.relation, h.pos, key);
        } else {
          span = instance.TuplesWithValueAt(h.relation, h.pos, key);
        }
        f.cand = span.data();
        f.count = span.size();
      }
      // Leaf fusion: when this level's continuation is kEmit, its
      // candidates need no frame bookkeeping — run them in one tight
      // loop (the innermost level carries nearly all of the fanout, so
      // per-candidate state-machine overhead is what the flattening was
      // meant to eliminate). Semantics are the general path's exactly:
      // same candidate order, same limit confinement, same trail
      // discipline between candidates.
      const uint32_t leaf_ops_begin = header + 1;
      const uint32_t leaf_ops_end = leaf_ops_begin + h.nops;
      if (code[leaf_ops_end].op == plan::Instr::kEmit) {
        for (size_t i = 0; i < f.count; ++i) {
          const size_t candidate =
              f.cand == nullptr ? i : static_cast<size_t>(f.cand[i]);
          if (candidate >= f.limit) continue;
          while (ctx->trail.size() > f.trail_mark) {
            ctx->binding.bound[ctx->trail.back()] = false;
            ctx->trail.pop_back();
          }
          const Value* tuple = f.data + candidate * f.arity;
          bool ok = RunSlots<kResolved>(ctx, code, leaf_ops_begin,
                                        leaf_ops_end, tuple, resolver);
          if (ok && f.bind_probe) {
            Value tv = tuple[h.pos];
            if (kResolved) tv = resolver->Resolve(tv);
            if (ctx->binding.bound[h.var]) {
              ok = ctx->binding.values[h.var] == tv;
            } else {
              ctx->binding.Bind(h.var, tv);
              ctx->trail.push_back(h.var);
            }
          }
          if (!ok) continue;
          if (!fn(ctx->binding)) return true;
        }
        if (depth == 0) return false;
        --depth;
        open = false;
        continue;
      }
      open = false;
    }
    VmFrame& f = ctx->frames[depth];
    const plan::Instr& h = code[f.header];
    // Unwind whatever the previous candidate (and any child frames) bound.
    while (ctx->trail.size() > f.trail_mark) {
      ctx->binding.bound[ctx->trail.back()] = false;
      ctx->trail.pop_back();
    }
    // Next admissible candidate.
    size_t idx = 0;
    bool found = false;
    while (f.cursor < f.count) {
      const size_t i = f.cursor++;
      const size_t candidate =
          f.cand == nullptr ? i : static_cast<size_t>(f.cand[i]);
      if (candidate >= f.limit) continue;
      idx = candidate;
      found = true;
      break;
    }
    if (!found) {
      if (depth == 0) return false;
      --depth;
      continue;
    }
    const Value* tuple = f.data + idx * f.arity;
    const uint32_t ops_begin = f.header + 1;
    const uint32_t ops_end = ops_begin + h.nops;
    bool ok =
        RunSlots<kResolved>(ctx, code, ops_begin, ops_end, tuple, resolver);
    if (ok && f.bind_probe) {
      Value tv = tuple[h.pos];
      if (kResolved) tv = resolver->Resolve(tv);
      if (ctx->binding.bound[h.var]) {
        ok = ctx->binding.values[h.var] == tv;
      } else {
        ctx->binding.Bind(h.var, tv);
        ctx->trail.push_back(h.var);
      }
    }
    if (!ok) continue;
    if (code[ops_end].op == plan::Instr::kEmit) {
      if (!fn(ctx->binding)) return true;
      continue;
    }
    header = ops_end;
    ++depth;
    open = true;
  }
}

// Index-level fast path for existence checks on single-join-level plans
// over a merge-free instance. The partial binding determines the probe
// key plus some subset of the remaining positions; positions held by
// unbound (existential) variables are free. Fully determined plans
// collapse to one dedup-set point lookup; plans with free positions to a
// raw walk of the probe's index bucket comparing only the determined
// positions. Either way: no context lease, no binding copy, no trail.
// Only sound with a trivial resolver (raw equality == resolved
// equality). Returns true via `*result` when it applied; false means
// fall back to the generic loop (multi-level plans, scan access, an
// unbound variable repeated across positions).
bool TryFastExists(const plan::BodyCode& bc, const Instance& instance,
                   const Binding& partial, bool* result) {
  constexpr size_t kMaxArity = 16;
  const plan::ExistsProbe& probe = bc.exists;
  if (!probe.valid) return false;  // > 1 level or scan access
  Value key;
  if (probe.var < 0) {
    key = probe.key;
  } else if (partial.bound[probe.var]) {
    key = partial.values[probe.var];
  } else {
    return false;  // unbound probe
  }
  Value buf[kMaxArity];
  buf[probe.pos] = key;
  uint32_t filled = 1u << probe.pos;
  uint32_t free_mask = 0;
  VariableId free_vars[kMaxArity];
  int n_free = 0;
  for (const plan::ExistsProbe::Slot& slot : probe.slots) {
    Value v;
    if (slot.var < 0) {
      v = slot.key;
    } else if (partial.bound[slot.var]) {
      v = partial.values[slot.var];
    } else {
      // Unbound variable: its position is unconstrained — unless the
      // same variable covers two positions, which couples them and
      // needs the generic unifier.
      for (int i = 0; i < n_free; ++i) {
        if (free_vars[i] == slot.var) return false;
      }
      free_vars[n_free++] = slot.var;
      free_mask |= 1u << slot.pos;
      continue;
    }
    // A repeated determined position must agree with the earlier value
    // or the lookup trivially fails.
    if ((filled >> slot.pos) & 1u) {
      if (buf[slot.pos] != v) {
        *result = false;
        return true;
      }
      continue;
    }
    buf[slot.pos] = v;
    filled |= 1u << slot.pos;
  }
  const TupleList tuples = instance.tuples(probe.relation);
  const size_t arity = static_cast<size_t>(tuples.arity());
  if (arity > kMaxArity || (filled | free_mask) != (1u << arity) - 1) {
    return false;
  }
  if (free_mask == 0) {
    *result = instance.ContainsExact(probe.relation, buf, arity);
    return true;
  }
  const TupleIndexSpan span =
      instance.TuplesWithValueAt(probe.relation, probe.pos, key);
  const Value* data = tuples.data();
  const uint32_t check = filled & ~(1u << probe.pos);  // bucket fixes pos
  for (const int32_t idx : span) {
    const Value* t = data + static_cast<size_t>(idx) * arity;
    bool ok = true;
    for (size_t pos = 0; pos < arity; ++pos) {
      if (((check >> pos) & 1u) && t[pos] != buf[pos]) {
        ok = false;
        break;
      }
    }
    if (ok) {
      *result = true;
      return true;
    }
  }
  *result = false;
  return true;
}

}  // namespace

bool ForceTreeExec() {
  return ForceTreeExecFlag().load(std::memory_order_relaxed);
}

void SetForceTreeExec(bool force) {
  ForceTreeExecFlag().store(force, std::memory_order_relaxed);
}

bool VmEnumerateMatches(const plan::BodyPlan& plan, const Instance& instance,
                        const Binding& partial,
                        const std::function<bool(const Binding&)>& fn) {
  PDX_CHECK_EQ(static_cast<int>(partial.bound.size()), plan.var_count);
  const plan::BodyCode& code = plan.code;
  VmLease ctx;
  AssignResolvedPartialVm(instance, partial, &ctx->binding);
  ctx->trail.clear();
  EnsureVmFrames(ctx.get(), code.max_depth);
  if (instance.has_merges()) {
    return RunLoops<true>(ctx.get(), code, code.full_entry, instance,
                          &instance.resolver(), nullptr, -1, fn);
  }
  return RunLoops<false>(ctx.get(), code, code.full_entry, instance, nullptr,
                         nullptr, -1, fn);
}

bool VmHasMatch(const plan::BodyPlan& plan, const Instance& instance,
                const Binding& partial) {
  PDX_CHECK_EQ(static_cast<int>(partial.bound.size()), plan.var_count);
  const plan::BodyCode& code = plan.code;
  if (code.code[code.full_entry].op == plan::Instr::kEmit) {
    return true;  // zero joins: the partial binding is already a match
  }
  bool result = false;
  if (!instance.has_merges() &&
      TryFastExists(code, instance, partial, &result)) {
    return result;
  }
  // Generic fallback: the full enumeration loop, stopped at the first
  // emit. The inlined callback keeps std::function off this path.
  VmLease ctx;
  AssignResolvedPartialVm(instance, partial, &ctx->binding);
  ctx->trail.clear();
  EnsureVmFrames(ctx.get(), code.max_depth);
  const auto stop = [](const Binding&) { return false; };
  if (instance.has_merges()) {
    return RunLoops<true>(ctx.get(), code, code.full_entry, instance,
                          &instance.resolver(), nullptr, -1, stop);
  }
  return RunLoops<false>(ctx.get(), code, code.full_entry, instance, nullptr,
                         nullptr, -1, stop);
}

bool VmEnumerateMatchesDeltaPartition(
    const plan::BodyPlan& plan, const Instance& instance,
    const DeltaView& delta, const DeltaPartition& partition,
    const Binding& partial, const std::function<bool(const Binding&)>& fn) {
  PDX_CHECK_EQ(static_cast<int>(partial.bound.size()), plan.var_count);
  PDX_CHECK_LT(partition.pivot, plan.code.variants.size());
  const plan::BodyCode& code = plan.code;
  const plan::BodyCode::Variant& v = code.variants[partition.pivot];
  const plan::DeltaVariant& variant = plan.variants[partition.pivot];
  const TupleList tuples = instance.tuples(variant.pivot_relation);
  const bool resolved = instance.has_merges();
  const ValueResolver* resolver = resolved ? &instance.resolver() : nullptr;
  VmLease ctx;
  AssignResolvedPartialVm(instance, partial, &ctx->start);
  EnsureVmFrames(ctx.get(), code.max_depth);
  const int additive_pivot = partition.over_extras ? -1 : variant.pivot;
  const plan::Instr* instrs = code.code.data();
  // Unifies one pivot tuple then runs the variant's rest program.
  auto run_pivot = [&](size_t idx) {
    ctx->binding = ctx->start;
    ctx->trail.clear();
    const Value* tuple = tuples.data() + idx * tuples.arity();
    if (resolved) {
      if (!RunSlots<true>(ctx.get(), instrs, v.pivot_begin, v.pivot_end,
                          tuple, resolver)) {
        return false;
      }
      return RunLoops<true>(ctx.get(), code, v.entry, instance, resolver,
                            &delta, additive_pivot, fn);
    }
    if (!RunSlots<false>(ctx.get(), instrs, v.pivot_begin, v.pivot_end,
                         tuple, resolver)) {
      return false;
    }
    return RunLoops<false>(ctx.get(), code, v.entry, instance, resolver,
                           &delta, additive_pivot, fn);
  };
  if (!partition.over_extras) {
    for (size_t idx = partition.begin;
         idx < partition.end && idx < tuples.size(); ++idx) {
      if (run_pivot(idx)) return true;
    }
    return false;
  }
  const std::vector<int>& extra = delta.extras(variant.pivot_relation);
  PDX_CHECK_LE(partition.end, extra.size());
  for (size_t e = partition.begin; e < partition.end; ++e) {
    const size_t idx = static_cast<size_t>(extra[e]);
    PDX_DCHECK(idx < tuples.size());
    if (run_pivot(idx)) return true;
  }
  return false;
}

}  // namespace pdx
