#ifndef PDX_HOM_INSTANCE_HOM_H_
#define PDX_HOM_INSTANCE_HOM_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "relational/instance.h"
#include "relational/tuple.h"

namespace pdx {

// A mapping from labeled nulls (keyed by Value::packed()) to values;
// constants are implicitly mapped to themselves.
using NullAssignment = std::unordered_map<uint64_t, Value>;

// One block of tuples of an instance (Definition 10): either a maximal set
// of facts whose nulls form one connected component of the graph of nulls,
// or the set of all null-free facts.
struct Block {
  std::vector<Fact> facts;
  std::vector<Value> nulls;  // distinct nulls of the block (empty for the
                             // null-free block)
};

// Decomposes `instance` into its blocks. The null-free block is included
// only if non-empty. Facts appear in exactly one block.
std::vector<Block> DecomposeIntoBlocks(const Instance& instance);

// Searches for a homomorphism from `block` into `target`: an assignment of
// the block's nulls such that every fact maps into `target` (constants map
// to themselves). Returns the assignment, or nullopt.
std::optional<NullAssignment> FindBlockHomomorphism(const Block& block,
                                                    const Instance& target);

// Searches for a homomorphism from `source` to `target` (constants fixed,
// nulls mapped freely). Per Proposition 1 this factorizes over blocks, so
// the cost is exponential only in the largest per-block null count.
// Returns the combined assignment for all nulls, or nullopt.
std::optional<NullAssignment> FindInstanceHomomorphism(
    const Instance& source, const Instance& target);

// Applies `assignment` to every fact of `source` (constants and unassigned
// nulls are kept), producing the homomorphic image instance.
Instance ApplyAssignment(const Instance& source,
                         const NullAssignment& assignment);

// Canonical renumbering of an instance's nulls: returns an instance with
// the same resolved facts whose nulls are Value::Null(0..k-1), numbered in
// an order determined by the facts' structure alone (color refinement over
// the null co-occurrence structure, plus individualization of residual
// symmetric classes). Instances equal up to a bijective renaming of nulls
// canonicalize to literally equal fact sets, so comparing
// CanonicalizeNulls(a).CanonicalFingerprint() against b's is a sound
// isomorphism check that — unlike the raw CanonicalFingerprint(), whose
// sort tie-breaks on original null ids — does not depend on which ids a
// thread schedule happened to hand out. Completeness caveat: members of a
// color class the refinement cannot split are individualized in original-
// id order; for truly automorphic nulls (every case the chase produces)
// the result is id-independent.
Instance CanonicalizeNulls(const Instance& instance);

}  // namespace pdx

#endif  // PDX_HOM_INSTANCE_HOM_H_
