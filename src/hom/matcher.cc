#include "hom/matcher.h"

#include <algorithm>
#include <limits>
#include <memory>

#include "hom/match_vm.h"
#include "plan/ir.h"

namespace pdx {

namespace {

// Backtracking state shared across the recursion.
struct SearchContext {
  const std::vector<Atom>* atoms;
  const Instance* instance;
  const std::function<bool(const Binding&)>* fn;
  Binding binding;
  std::vector<bool> done;  // per atom: already matched on this path
  // Resolve-on-read: non-null when the instance has egd merges. Raw tuple
  // values are resolved to class roots before unification, and index
  // lookups expand over the class members' buckets. Bindings therefore
  // always hold resolved values.
  const ValueResolver* resolver = nullptr;
  // Optional per-atom exclusive upper bound on candidate tuple indexes
  // (the semi-naive "old facts only" restriction); nullptr = unbounded.
  const std::vector<size_t>* max_index = nullptr;

  bool Admissible(int atom, int tuple_index) const {
    return max_index == nullptr ||
           static_cast<size_t>(tuple_index) < (*max_index)[atom];
  }
};

// The bound value of `atom`'s term at `pos` under the current binding, if
// any. Bound/constant values are already resolved.
bool BoundValueAt(const SearchContext& ctx, const Atom& atom, int pos,
                  Value* out) {
  const Term& t = atom.terms[pos];
  if (t.is_constant()) {
    *out = t.constant();
    return true;
  }
  if (ctx.binding.bound[t.var()]) {
    *out = ctx.binding.values[t.var()];
    return true;
  }
  return false;
}

// Estimated number of candidate tuples for `atom` under the current
// binding: the smallest index bucket over bound/constant positions, or the
// relation size if nothing is bound yet.
size_t CandidateCount(const SearchContext& ctx, const Atom& atom) {
  const Instance& inst = *ctx.instance;
  size_t best = inst.tuples(atom.relation).size();
  for (int pos = 0; pos < static_cast<int>(atom.terms.size()); ++pos) {
    Value v;
    if (!BoundValueAt(ctx, atom, pos, &v)) continue;
    size_t count;
    if (ctx.resolver == nullptr) {
      count = inst.TuplesWithValueAt(atom.relation, pos, v).size();
    } else {
      count = inst.CountTuplesWithResolvedValueAt(atom.relation, pos, v);
    }
    best = std::min(best, count);
  }
  return best;
}

// The candidate tuple list for `atom`: the smallest applicable index
// bucket, or all tuples of the relation. Returns indexes into
// instance.tuples(atom.relation); `scratch` is out-param storage used when
// no position is bound (full-scan fallback).
TupleIndexSpan Candidates(const SearchContext& ctx, const Atom& atom,
                          std::vector<int32_t>* scratch) {
  const Instance& inst = *ctx.instance;
  if (ctx.resolver == nullptr) {
    TupleIndexSpan best;
    size_t best_count = std::numeric_limits<size_t>::max();
    bool any_bound = false;
    for (int pos = 0; pos < static_cast<int>(atom.terms.size()); ++pos) {
      Value v;
      if (!BoundValueAt(ctx, atom, pos, &v)) continue;
      TupleIndexSpan bucket = inst.TuplesWithValueAt(atom.relation, pos, v);
      if (bucket.empty()) return {};
      any_bound = true;
      if (bucket.size() < best_count) {
        best = bucket;
        best_count = bucket.size();
      }
    }
    if (any_bound) return best;
  } else {
    int best_pos = -1;
    Value best_value;
    size_t best_count = std::numeric_limits<size_t>::max();
    for (int pos = 0; pos < static_cast<int>(atom.terms.size()); ++pos) {
      Value v;
      if (!BoundValueAt(ctx, atom, pos, &v)) continue;
      size_t count = inst.CountTuplesWithResolvedValueAt(atom.relation, pos, v);
      if (count == 0) return {};
      if (count < best_count) {
        best_pos = pos;
        best_value = v;
        best_count = count;
      }
    }
    if (best_pos >= 0) {
      return inst.TuplesWithResolvedValueAt(atom.relation, best_pos,
                                            best_value);
    }
  }
  size_t n = inst.tuples(atom.relation).size();
  scratch->resize(n);
  for (size_t i = 0; i < n; ++i) (*scratch)[i] = static_cast<int32_t>(i);
  return TupleIndexSpan(scratch->data(), scratch->size());
}

// Attempts to unify `atom` with `tuple` under the current binding.
// On success, appends newly bound variables to `trail` and returns true.
bool Unify(SearchContext* ctx, const Atom& atom, TupleView tuple,
           std::vector<VariableId>* trail) {
  for (int pos = 0; pos < static_cast<int>(atom.terms.size()); ++pos) {
    const Term& t = atom.terms[pos];
    Value tv = tuple[pos];
    if (ctx->resolver != nullptr) tv = ctx->resolver->Resolve(tv);
    if (t.is_constant()) {
      if (tv != t.constant()) return false;
      continue;
    }
    VariableId v = t.var();
    if (ctx->binding.bound[v]) {
      if (ctx->binding.values[v] != tv) return false;
    } else {
      ctx->binding.Bind(v, tv);
      trail->push_back(v);
    }
  }
  return true;
}

void Unbind(SearchContext* ctx, const std::vector<VariableId>& trail) {
  for (VariableId v : trail) ctx->binding.bound[v] = false;
}

// Recursive search. Returns true iff the callback stopped the enumeration.
bool Search(SearchContext* ctx, int remaining) {
  if (remaining == 0) {
    return !(*ctx->fn)(ctx->binding);
  }
  // Select the pending atom with the fewest candidates.
  int chosen = -1;
  size_t chosen_count = std::numeric_limits<size_t>::max();
  for (int i = 0; i < static_cast<int>(ctx->atoms->size()); ++i) {
    if (ctx->done[i]) continue;
    size_t count = CandidateCount(*ctx, (*ctx->atoms)[i]);
    if (count < chosen_count) {
      chosen = i;
      chosen_count = count;
    }
  }
  PDX_DCHECK(chosen >= 0);
  const Atom& atom = (*ctx->atoms)[chosen];
  ctx->done[chosen] = true;
  std::vector<int32_t> scratch;
  const TupleIndexSpan candidates = Candidates(*ctx, atom, &scratch);
  const TupleList tuples = ctx->instance->tuples(atom.relation);
  std::vector<VariableId> trail;
  for (int32_t idx : candidates) {
    if (!ctx->Admissible(chosen, idx)) continue;
    trail.clear();
    if (Unify(ctx, atom, tuples[idx], &trail)) {
      if (Search(ctx, remaining - 1)) {
        Unbind(ctx, trail);
        ctx->done[chosen] = false;
        return true;
      }
    }
    Unbind(ctx, trail);
  }
  ctx->done[chosen] = false;
  return false;
}

// The instance's resolver if it has merges, else nullptr (raw fast path).
const ValueResolver* ResolverFor(const Instance& instance) {
  return instance.has_merges() ? &instance.resolver() : nullptr;
}

// Bindings always hold resolved values: resolve whatever the caller bound.
Binding ResolvePartial(const Instance& instance, const Binding& partial) {
  if (!instance.has_merges()) return partial;
  Binding resolved = partial;
  for (size_t v = 0; v < resolved.bound.size(); ++v) {
    if (resolved.bound[v]) {
      resolved.values[v] = instance.ResolveValue(resolved.values[v]);
    }
  }
  return resolved;
}

}  // namespace

bool EnumerateMatches(const std::vector<Atom>& atoms, int var_count,
                      const Instance& instance, const Binding& partial,
                      const std::function<bool(const Binding&)>& fn) {
  PDX_CHECK_EQ(static_cast<int>(partial.bound.size()), var_count);
  SearchContext ctx;
  ctx.atoms = &atoms;
  ctx.instance = &instance;
  ctx.fn = &fn;
  ctx.binding = ResolvePartial(instance, partial);
  ctx.done.assign(atoms.size(), false);
  ctx.resolver = ResolverFor(instance);
  return Search(&ctx, static_cast<int>(atoms.size()));
}

bool EnumerateMatchesDelta(const std::vector<Atom>& atoms, int var_count,
                           const Instance& instance, const DeltaView& delta,
                           const Binding& partial,
                           const std::function<bool(const Binding&)>& fn) {
  // One partition per non-empty pivot: enumerating them in order is, by
  // construction, the whole semi-naive enumeration (see
  // PartitionDeltaMatches).
  for (const DeltaPartition& part : PartitionDeltaMatches(atoms, delta, 1)) {
    if (EnumerateMatchesDeltaPartition(atoms, var_count, instance, delta,
                                       part, partial, fn)) {
      return true;
    }
  }
  return false;
}

std::vector<DeltaPartition> PartitionDeltaMatches(
    const std::vector<Atom>& atoms, const DeltaView& delta,
    size_t max_partitions) {
  // Additive pivots come first (atoms before them are confined to
  // pre-delta facts, so each match is enumerated under exactly one such
  // pivot — its first delta atom), then the merge-dirtied extras pivots,
  // mirroring EnumerateMatchesDelta's historical order.
  size_t total = 0;
  for (const Atom& atom : atoms) {
    size_t begin = delta.begin(atom.relation);
    size_t end = delta.end(atom.relation);
    if (begin < end) total += end - begin;
    total += delta.extras(atom.relation).size();
  }
  std::vector<DeltaPartition> parts;
  if (total == 0) return parts;
  if (max_partitions == 0) max_partitions = 1;
  // Equal-width chunks of the combined pivot space; chunks never span
  // pivots, so the count can exceed the cap by at most one per pivot.
  size_t chunk = std::max<size_t>(1, (total + max_partitions - 1) /
                                         max_partitions);
  for (size_t pivot = 0; pivot < atoms.size(); ++pivot) {
    size_t begin = delta.begin(atoms[pivot].relation);
    size_t end = delta.end(atoms[pivot].relation);
    for (size_t s = begin; s < end; s += chunk) {
      parts.push_back({pivot, s, std::min(end, s + chunk), false});
    }
  }
  for (size_t pivot = 0; pivot < atoms.size(); ++pivot) {
    size_t count = delta.extras(atoms[pivot].relation).size();
    for (size_t s = 0; s < count; s += chunk) {
      parts.push_back({pivot, s, std::min(count, s + chunk), true});
    }
  }
  return parts;
}

bool EnumerateMatchesDeltaPartition(
    const std::vector<Atom>& atoms, int var_count, const Instance& instance,
    const DeltaView& delta, const DeltaPartition& partition,
    const Binding& partial, const std::function<bool(const Binding&)>& fn) {
  PDX_CHECK_EQ(static_cast<int>(partial.bound.size()), var_count);
  constexpr size_t kUnbounded = std::numeric_limits<size_t>::max();
  const Binding start = ResolvePartial(instance, partial);
  const size_t pivot = partition.pivot;
  PDX_CHECK_LT(pivot, atoms.size());
  const Atom& pivot_atom = atoms[pivot];
  const TupleList tuples = instance.tuples(pivot_atom.relation);
  SearchContext ctx;
  ctx.atoms = &atoms;
  ctx.instance = &instance;
  ctx.fn = &fn;
  ctx.resolver = ResolverFor(instance);
  std::vector<size_t> bounds;
  std::vector<VariableId> trail;
  if (!partition.over_extras) {
    // Additive pivot: atoms before it may only use pre-delta facts, so
    // each match is enumerated under exactly one pivot (its first delta
    // atom).
    bounds.assign(atoms.size(), kUnbounded);
    for (size_t i = 0; i < pivot; ++i) {
      bounds[i] = delta.begin(atoms[i].relation);
    }
    ctx.max_index = &bounds;
    for (size_t idx = partition.begin;
         idx < partition.end && idx < tuples.size(); ++idx) {
      ctx.binding = start;
      ctx.done.assign(atoms.size(), false);
      ctx.done[pivot] = true;
      trail.clear();
      if (Unify(&ctx, pivot_atom, tuples[idx], &trail) &&
          Search(&ctx, static_cast<int>(atoms.size()) - 1)) {
        return true;
      }
    }
    return false;
  }
  // Merge-dirtied extras: pre-existing tuples whose resolved content
  // changed. Any match newly enabled by a merge must bind some atom to
  // such a tuple, so pivoting each atom over the extras (with the other
  // atoms unrestricted) is complete. A match touching several extras (or
  // an extra plus an additive-delta fact) can be enumerated more than
  // once; consumers are idempotent.
  const std::vector<int>& extra = delta.extras(pivot_atom.relation);
  PDX_CHECK_LE(partition.end, extra.size());
  for (size_t e = partition.begin; e < partition.end; ++e) {
    int idx = extra[e];
    PDX_DCHECK(static_cast<size_t>(idx) < tuples.size());
    ctx.binding = start;
    ctx.done.assign(atoms.size(), false);
    ctx.done[pivot] = true;
    trail.clear();
    if (Unify(&ctx, pivot_atom, tuples[idx], &trail) &&
        Search(&ctx, static_cast<int>(atoms.size()) - 1)) {
      return true;
    }
  }
  return false;
}

bool HasMatch(const std::vector<Atom>& atoms, int var_count,
              const Instance& instance, const Binding& partial) {
  return EnumerateMatches(atoms, var_count, instance, partial,
                          [](const Binding&) { return false; });
}

bool HasMatch(const std::vector<Atom>& atoms, int var_count,
              const Instance& instance) {
  return HasMatch(atoms, var_count, instance, Binding::Empty(var_count));
}

// --- Plan-driven executor -----------------------------------------------

namespace {

// Per-depth reusable storage: the unbind trail of the step's kBind ops.
// Owned by the PlanContext so one allocation serves every pivot tuple and
// every backtrack. (Resolved-lane probes no longer need scratch: the
// store's class-bucket cache owns the concatenated buckets.)
struct PlanFrame {
  std::vector<VariableId> trail;
};

struct PlanContext {
  const Instance* instance;
  const std::function<bool(const Binding&)>* fn;
  Binding binding;
  const ValueResolver* resolver = nullptr;
  std::vector<PlanFrame> frames;
  // Additive-partition confinement: steps whose original atom index is
  // below `additive_pivot` only admit tuples below delta->begin(relation),
  // exactly like SearchContext::max_index. -1 = unrestricted.
  const DeltaView* delta = nullptr;
  int additive_pivot = -1;
  // Partition-entry state, reused across pivot tuples.
  Binding start;
  std::vector<VariableId> pivot_trail;
};

// Contexts are leased from a per-thread pool indexed by nesting depth — a
// planned enumeration's callback can itself run a planned head check
// (CollectDeltaMatches's keep filter does), so plain thread_local reuse
// would alias. All vectors keep their capacity across leases: steady-state
// planned execution performs no heap allocation, which is a measurable
// chunk of the compiled-vs-interpreted speedup on join-light workloads.
struct PlanContextPool {
  std::vector<std::unique_ptr<PlanContext>> contexts;
  size_t depth = 0;
};

PlanContextPool& ThreadPlanPool() {
  thread_local PlanContextPool pool;
  return pool;
}

class PlanContextLease {
 public:
  PlanContextLease(const Instance& instance,
                   const std::function<bool(const Binding&)>& fn) {
    PlanContextPool& pool = ThreadPlanPool();
    if (pool.depth == pool.contexts.size()) {
      pool.contexts.push_back(std::make_unique<PlanContext>());
    }
    ctx_ = pool.contexts[pool.depth++].get();
    ctx_->instance = &instance;
    ctx_->fn = &fn;
    ctx_->resolver = ResolverFor(instance);
    ctx_->delta = nullptr;
    ctx_->additive_pivot = -1;
  }
  ~PlanContextLease() { --ThreadPlanPool().depth; }
  PlanContextLease(const PlanContextLease&) = delete;
  PlanContextLease& operator=(const PlanContextLease&) = delete;

  PlanContext* operator->() const { return ctx_; }
  PlanContext* get() const { return ctx_; }

 private:
  PlanContext* ctx_;
};

// Binding assignment that reuses the destination's capacity, resolving
// bound values when the instance has merges (the invariant ResolvePartial
// maintains for the interpreter).
void AssignResolvedPartial(const Instance& instance, const Binding& partial,
                           Binding* out) {
  *out = partial;
  if (!instance.has_merges()) return;
  for (size_t v = 0; v < out->bound.size(); ++v) {
    if (out->bound[v]) out->values[v] = instance.ResolveValue(out->values[v]);
  }
}

// Grow-only frame storage: shrinking would free the frames' scratch/trail
// capacity, which is the whole point of pooling.
void EnsureFrames(PlanContext* ctx, size_t n) {
  if (ctx->frames.size() < n) ctx->frames.resize(n);
}

// Runs one step's unification program against a candidate tuple. kBind and
// kCheckVar share the runtime-checked path (bind if unbound, else compare)
// so a caller whose partial binding differs from the plan's compiled
// assumption still executes correctly.
bool RunOps(PlanContext* ctx, const std::vector<plan::SlotOp>& ops,
            TupleView tuple, std::vector<VariableId>* trail) {
  for (const plan::SlotOp& op : ops) {
    Value tv = tuple[op.pos];
    if (ctx->resolver != nullptr) tv = ctx->resolver->Resolve(tv);
    if (op.kind == plan::SlotOp::kCheckConst) {
      if (tv != op.key) return false;
      continue;
    }
    if (ctx->binding.bound[op.var]) {
      if (ctx->binding.values[op.var] != tv) return false;
    } else {
      ctx->binding.Bind(op.var, tv);
      trail->push_back(op.var);
    }
  }
  return true;
}

void UnbindTrail(PlanContext* ctx, const std::vector<VariableId>& trail) {
  for (VariableId v : trail) ctx->binding.bound[v] = false;
}

// Executes steps[depth..] recursively. Returns true iff the callback
// stopped the enumeration.
bool RunSteps(PlanContext* ctx, const std::vector<plan::JoinStep>& steps,
              size_t depth) {
  if (depth == steps.size()) {
    return !(*ctx->fn)(ctx->binding);
  }
  const plan::JoinStep& step = steps[depth];
  PlanFrame& frame = ctx->frames[depth];
  const TupleList tuples = ctx->instance->tuples(step.relation);
  // Pre-delta confinement (additive partitions only), keyed by the atom's
  // original body index, not its execution position.
  size_t limit = std::numeric_limits<size_t>::max();
  if (ctx->additive_pivot >= 0 && step.atom_index < ctx->additive_pivot) {
    limit = ctx->delta->begin(step.relation);
  }
  // Resolve the access path. A kProbeVar whose variable the caller left
  // unbound degrades to a scan with the probed position handled as a
  // runtime bind (the compiled ops skip it, trusting the probe).
  plan::AccessPath::Kind kind = step.access.kind;
  Value key;
  bool bind_probe_pos = false;
  if (kind == plan::AccessPath::kProbeVar) {
    if (ctx->binding.bound[step.access.var]) {
      key = ctx->binding.values[step.access.var];
    } else {
      kind = plan::AccessPath::kScan;
      bind_probe_pos = true;
    }
  } else if (kind == plan::AccessPath::kProbeConst) {
    key = step.access.key;
  }
  TupleIndexSpan candidates;
  const bool scan = kind == plan::AccessPath::kScan;
  if (!scan) {
    if (ctx->resolver == nullptr) {
      candidates =
          ctx->instance->TuplesWithValueAt(step.relation, step.access.pos, key);
    } else {
      candidates = ctx->instance->TuplesWithResolvedValueAt(
          step.relation, step.access.pos, key);
    }
    if (candidates.empty()) return false;
  }
  const size_t scan_end = std::min(tuples.size(), limit);
  const size_t count = scan ? scan_end : candidates.size();
  for (size_t i = 0; i < count; ++i) {
    const size_t idx = scan ? i : static_cast<size_t>(candidates[i]);
    if (idx >= limit) continue;
    const TupleView tuple = tuples[idx];
    frame.trail.clear();
    bool ok = RunOps(ctx, step.ops, tuple, &frame.trail);
    if (ok && bind_probe_pos) {
      Value tv = tuple[step.access.pos];
      if (ctx->resolver != nullptr) tv = ctx->resolver->Resolve(tv);
      if (ctx->binding.bound[step.access.var]) {
        ok = ctx->binding.values[step.access.var] == tv;
      } else {
        ctx->binding.Bind(step.access.var, tv);
        frame.trail.push_back(step.access.var);
      }
    }
    if (ok && RunSteps(ctx, steps, depth + 1)) {
      UnbindTrail(ctx, frame.trail);
      return true;
    }
    UnbindTrail(ctx, frame.trail);
  }
  return false;
}

}  // namespace

bool EnumerateMatchesPlanned(const plan::BodyPlan& plan,
                             const Instance& instance, const Binding& partial,
                             const std::function<bool(const Binding&)>& fn) {
  PDX_CHECK_EQ(static_cast<int>(partial.bound.size()), plan.var_count);
  // The bytecode VM is the default executor; PDX_FORCE_TREE_EXEC (or a
  // runtime SetForceTreeExec) keeps the recursive tree walk below as the
  // cross-validated baseline. Hand-built plans without lowered code always
  // take the tree path.
  if (!plan.code.code.empty() && !ForceTreeExec()) {
    return VmEnumerateMatches(plan, instance, partial, fn);
  }
  PlanContextLease ctx(instance, fn);
  AssignResolvedPartial(instance, partial, &ctx->binding);
  EnsureFrames(ctx.get(), plan.full.size());
  return RunSteps(ctx.get(), plan.full, 0);
}

bool EnumerateMatchesDeltaPlanned(
    const plan::BodyPlan& plan, const Instance& instance,
    const DeltaView& delta, const Binding& partial,
    const std::function<bool(const Binding&)>& fn) {
  // Mirrors EnumerateMatchesDelta's partition order exactly: one partition
  // per non-empty additive pivot (in atom order), then per non-empty
  // extras pivot.
  for (size_t pivot = 0; pivot < plan.variants.size(); ++pivot) {
    const RelationId rel = plan.variants[pivot].pivot_relation;
    const size_t begin = delta.begin(rel);
    const size_t end = delta.end(rel);
    if (begin >= end) continue;
    DeltaPartition part{pivot, begin, end, false};
    if (EnumerateMatchesDeltaPartitionPlanned(plan, instance, delta, part,
                                              partial, fn)) {
      return true;
    }
  }
  for (size_t pivot = 0; pivot < plan.variants.size(); ++pivot) {
    const RelationId rel = plan.variants[pivot].pivot_relation;
    const size_t count = delta.extras(rel).size();
    if (count == 0) continue;
    DeltaPartition part{pivot, 0, count, true};
    if (EnumerateMatchesDeltaPartitionPlanned(plan, instance, delta, part,
                                              partial, fn)) {
      return true;
    }
  }
  return false;
}

bool EnumerateMatchesDeltaPartitionPlanned(
    const plan::BodyPlan& plan, const Instance& instance,
    const DeltaView& delta, const DeltaPartition& partition,
    const Binding& partial, const std::function<bool(const Binding&)>& fn) {
  PDX_CHECK_EQ(static_cast<int>(partial.bound.size()), plan.var_count);
  PDX_CHECK_LT(partition.pivot, plan.variants.size());
  if (!plan.code.code.empty() && !ForceTreeExec()) {
    return VmEnumerateMatchesDeltaPartition(plan, instance, delta, partition,
                                            partial, fn);
  }
  const plan::DeltaVariant& variant = plan.variants[partition.pivot];
  const TupleList tuples = instance.tuples(variant.pivot_relation);
  PlanContextLease ctx(instance, fn);
  AssignResolvedPartial(instance, partial, &ctx->start);
  EnsureFrames(ctx.get(), variant.rest.size());
  if (!partition.over_extras) {
    ctx->delta = &delta;
    ctx->additive_pivot = variant.pivot;
    for (size_t idx = partition.begin;
         idx < partition.end && idx < tuples.size(); ++idx) {
      ctx->binding = ctx->start;
      ctx->pivot_trail.clear();
      if (RunOps(ctx.get(), variant.pivot_ops, tuples[idx],
                 &ctx->pivot_trail) &&
          RunSteps(ctx.get(), variant.rest, 0)) {
        return true;
      }
    }
    return false;
  }
  const std::vector<int>& extra = delta.extras(variant.pivot_relation);
  PDX_CHECK_LE(partition.end, extra.size());
  for (size_t e = partition.begin; e < partition.end; ++e) {
    const int idx = extra[e];
    PDX_DCHECK(static_cast<size_t>(idx) < tuples.size());
    ctx->binding = ctx->start;
    ctx->pivot_trail.clear();
    if (RunOps(ctx.get(), variant.pivot_ops, tuples[idx], &ctx->pivot_trail) &&
        RunSteps(ctx.get(), variant.rest, 0)) {
      return true;
    }
  }
  return false;
}

bool HasMatchPlanned(const plan::BodyPlan& plan, const Instance& instance,
                     const Binding& partial) {
  // Same dispatch rule as EnumerateMatchesPlanned, but through the VM's
  // dedicated existence entry point, which skips the std::function
  // plumbing and point-looks-up fully bound single-atom plans.
  if (!plan.code.code.empty() && !ForceTreeExec()) {
    return VmHasMatch(plan, instance, partial);
  }
  return EnumerateMatchesPlanned(plan, instance, partial,
                                 [](const Binding&) { return false; });
}

}  // namespace pdx
