#include "hom/matcher.h"

#include <algorithm>
#include <limits>

namespace pdx {

namespace {

// Backtracking state shared across the recursion.
struct SearchContext {
  const std::vector<Atom>* atoms;
  const Instance* instance;
  const std::function<bool(const Binding&)>* fn;
  Binding binding;
  std::vector<bool> done;  // per atom: already matched on this path
  // Resolve-on-read: non-null when the instance has egd merges. Raw tuple
  // values are resolved to class roots before unification, and index
  // lookups expand over the class members' buckets. Bindings therefore
  // always hold resolved values.
  const ValueResolver* resolver = nullptr;
  // Optional per-atom exclusive upper bound on candidate tuple indexes
  // (the semi-naive "old facts only" restriction); nullptr = unbounded.
  const std::vector<size_t>* max_index = nullptr;

  bool Admissible(int atom, int tuple_index) const {
    return max_index == nullptr ||
           static_cast<size_t>(tuple_index) < (*max_index)[atom];
  }
};

// The bound value of `atom`'s term at `pos` under the current binding, if
// any. Bound/constant values are already resolved.
bool BoundValueAt(const SearchContext& ctx, const Atom& atom, int pos,
                  Value* out) {
  const Term& t = atom.terms[pos];
  if (t.is_constant()) {
    *out = t.constant();
    return true;
  }
  if (ctx.binding.bound[t.var()]) {
    *out = ctx.binding.values[t.var()];
    return true;
  }
  return false;
}

// Estimated number of candidate tuples for `atom` under the current
// binding: the smallest index bucket over bound/constant positions, or the
// relation size if nothing is bound yet.
size_t CandidateCount(const SearchContext& ctx, const Atom& atom) {
  const Instance& inst = *ctx.instance;
  size_t best = inst.tuples(atom.relation).size();
  for (int pos = 0; pos < static_cast<int>(atom.terms.size()); ++pos) {
    Value v;
    if (!BoundValueAt(ctx, atom, pos, &v)) continue;
    size_t count;
    if (ctx.resolver == nullptr) {
      const std::vector<int>* bucket =
          inst.TuplesWithValueAt(atom.relation, pos, v);
      count = bucket == nullptr ? 0 : bucket->size();
    } else {
      count = inst.CountTuplesWithResolvedValueAt(atom.relation, pos, v);
    }
    best = std::min(best, count);
  }
  return best;
}

// The candidate tuple list for `atom`: the smallest applicable index
// bucket, or all tuples of the relation. Returns indexes into
// instance.tuples(atom.relation); `scratch` is out-param storage used when
// no position is bound or when a merged class spans several buckets.
const std::vector<int>* Candidates(const SearchContext& ctx, const Atom& atom,
                                   std::vector<int>* scratch) {
  const Instance& inst = *ctx.instance;
  static const std::vector<int> kEmpty;
  if (ctx.resolver == nullptr) {
    const std::vector<int>* best = nullptr;
    size_t best_count = std::numeric_limits<size_t>::max();
    for (int pos = 0; pos < static_cast<int>(atom.terms.size()); ++pos) {
      Value v;
      if (!BoundValueAt(ctx, atom, pos, &v)) continue;
      const std::vector<int>* bucket =
          inst.TuplesWithValueAt(atom.relation, pos, v);
      if (bucket == nullptr) return &kEmpty;
      if (bucket->size() < best_count) {
        best = bucket;
        best_count = bucket->size();
      }
    }
    if (best != nullptr) return best;
  } else {
    int best_pos = -1;
    Value best_value;
    size_t best_count = std::numeric_limits<size_t>::max();
    for (int pos = 0; pos < static_cast<int>(atom.terms.size()); ++pos) {
      Value v;
      if (!BoundValueAt(ctx, atom, pos, &v)) continue;
      size_t count = inst.CountTuplesWithResolvedValueAt(atom.relation, pos, v);
      if (count == 0) return &kEmpty;
      if (count < best_count) {
        best_pos = pos;
        best_value = v;
        best_count = count;
      }
    }
    if (best_pos >= 0) {
      return inst.TuplesWithResolvedValueAt(atom.relation, best_pos,
                                            best_value, scratch);
    }
  }
  size_t n = inst.tuples(atom.relation).size();
  scratch->resize(n);
  for (size_t i = 0; i < n; ++i) (*scratch)[i] = static_cast<int>(i);
  return scratch;
}

// Attempts to unify `atom` with `tuple` under the current binding.
// On success, appends newly bound variables to `trail` and returns true.
bool Unify(SearchContext* ctx, const Atom& atom, const Tuple& tuple,
           std::vector<VariableId>* trail) {
  for (int pos = 0; pos < static_cast<int>(atom.terms.size()); ++pos) {
    const Term& t = atom.terms[pos];
    Value tv = tuple[pos];
    if (ctx->resolver != nullptr) tv = ctx->resolver->Resolve(tv);
    if (t.is_constant()) {
      if (tv != t.constant()) return false;
      continue;
    }
    VariableId v = t.var();
    if (ctx->binding.bound[v]) {
      if (ctx->binding.values[v] != tv) return false;
    } else {
      ctx->binding.Bind(v, tv);
      trail->push_back(v);
    }
  }
  return true;
}

void Unbind(SearchContext* ctx, const std::vector<VariableId>& trail) {
  for (VariableId v : trail) ctx->binding.bound[v] = false;
}

// Recursive search. Returns true iff the callback stopped the enumeration.
bool Search(SearchContext* ctx, int remaining) {
  if (remaining == 0) {
    return !(*ctx->fn)(ctx->binding);
  }
  // Select the pending atom with the fewest candidates.
  int chosen = -1;
  size_t chosen_count = std::numeric_limits<size_t>::max();
  for (int i = 0; i < static_cast<int>(ctx->atoms->size()); ++i) {
    if (ctx->done[i]) continue;
    size_t count = CandidateCount(*ctx, (*ctx->atoms)[i]);
    if (count < chosen_count) {
      chosen = i;
      chosen_count = count;
    }
  }
  PDX_DCHECK(chosen >= 0);
  const Atom& atom = (*ctx->atoms)[chosen];
  ctx->done[chosen] = true;
  std::vector<int> scratch;
  const std::vector<int>* candidates = Candidates(*ctx, atom, &scratch);
  const std::vector<Tuple>& tuples = ctx->instance->tuples(atom.relation);
  std::vector<VariableId> trail;
  for (int idx : *candidates) {
    if (!ctx->Admissible(chosen, idx)) continue;
    trail.clear();
    if (Unify(ctx, atom, tuples[idx], &trail)) {
      if (Search(ctx, remaining - 1)) {
        Unbind(ctx, trail);
        ctx->done[chosen] = false;
        return true;
      }
    }
    Unbind(ctx, trail);
  }
  ctx->done[chosen] = false;
  return false;
}

// The instance's resolver if it has merges, else nullptr (raw fast path).
const ValueResolver* ResolverFor(const Instance& instance) {
  return instance.has_merges() ? &instance.resolver() : nullptr;
}

// Bindings always hold resolved values: resolve whatever the caller bound.
Binding ResolvePartial(const Instance& instance, const Binding& partial) {
  if (!instance.has_merges()) return partial;
  Binding resolved = partial;
  for (size_t v = 0; v < resolved.bound.size(); ++v) {
    if (resolved.bound[v]) {
      resolved.values[v] = instance.ResolveValue(resolved.values[v]);
    }
  }
  return resolved;
}

}  // namespace

bool EnumerateMatches(const std::vector<Atom>& atoms, int var_count,
                      const Instance& instance, const Binding& partial,
                      const std::function<bool(const Binding&)>& fn) {
  PDX_CHECK_EQ(static_cast<int>(partial.bound.size()), var_count);
  SearchContext ctx;
  ctx.atoms = &atoms;
  ctx.instance = &instance;
  ctx.fn = &fn;
  ctx.binding = ResolvePartial(instance, partial);
  ctx.done.assign(atoms.size(), false);
  ctx.resolver = ResolverFor(instance);
  return Search(&ctx, static_cast<int>(atoms.size()));
}

bool EnumerateMatchesDelta(const std::vector<Atom>& atoms, int var_count,
                           const Instance& instance, const DeltaView& delta,
                           const Binding& partial,
                           const std::function<bool(const Binding&)>& fn) {
  // One partition per non-empty pivot: enumerating them in order is, by
  // construction, the whole semi-naive enumeration (see
  // PartitionDeltaMatches).
  for (const DeltaPartition& part : PartitionDeltaMatches(atoms, delta, 1)) {
    if (EnumerateMatchesDeltaPartition(atoms, var_count, instance, delta,
                                       part, partial, fn)) {
      return true;
    }
  }
  return false;
}

std::vector<DeltaPartition> PartitionDeltaMatches(
    const std::vector<Atom>& atoms, const DeltaView& delta,
    size_t max_partitions) {
  // Additive pivots come first (atoms before them are confined to
  // pre-delta facts, so each match is enumerated under exactly one such
  // pivot — its first delta atom), then the merge-dirtied extras pivots,
  // mirroring EnumerateMatchesDelta's historical order.
  size_t total = 0;
  for (const Atom& atom : atoms) {
    size_t begin = delta.begin(atom.relation);
    size_t end = delta.end(atom.relation);
    if (begin < end) total += end - begin;
    total += delta.extras(atom.relation).size();
  }
  std::vector<DeltaPartition> parts;
  if (total == 0) return parts;
  if (max_partitions == 0) max_partitions = 1;
  // Equal-width chunks of the combined pivot space; chunks never span
  // pivots, so the count can exceed the cap by at most one per pivot.
  size_t chunk = std::max<size_t>(1, (total + max_partitions - 1) /
                                         max_partitions);
  for (size_t pivot = 0; pivot < atoms.size(); ++pivot) {
    size_t begin = delta.begin(atoms[pivot].relation);
    size_t end = delta.end(atoms[pivot].relation);
    for (size_t s = begin; s < end; s += chunk) {
      parts.push_back({pivot, s, std::min(end, s + chunk), false});
    }
  }
  for (size_t pivot = 0; pivot < atoms.size(); ++pivot) {
    size_t count = delta.extras(atoms[pivot].relation).size();
    for (size_t s = 0; s < count; s += chunk) {
      parts.push_back({pivot, s, std::min(count, s + chunk), true});
    }
  }
  return parts;
}

bool EnumerateMatchesDeltaPartition(
    const std::vector<Atom>& atoms, int var_count, const Instance& instance,
    const DeltaView& delta, const DeltaPartition& partition,
    const Binding& partial, const std::function<bool(const Binding&)>& fn) {
  PDX_CHECK_EQ(static_cast<int>(partial.bound.size()), var_count);
  constexpr size_t kUnbounded = std::numeric_limits<size_t>::max();
  const Binding start = ResolvePartial(instance, partial);
  const size_t pivot = partition.pivot;
  PDX_CHECK_LT(pivot, atoms.size());
  const Atom& pivot_atom = atoms[pivot];
  const std::vector<Tuple>& tuples = instance.tuples(pivot_atom.relation);
  SearchContext ctx;
  ctx.atoms = &atoms;
  ctx.instance = &instance;
  ctx.fn = &fn;
  ctx.resolver = ResolverFor(instance);
  std::vector<size_t> bounds;
  std::vector<VariableId> trail;
  if (!partition.over_extras) {
    // Additive pivot: atoms before it may only use pre-delta facts, so
    // each match is enumerated under exactly one pivot (its first delta
    // atom).
    bounds.assign(atoms.size(), kUnbounded);
    for (size_t i = 0; i < pivot; ++i) {
      bounds[i] = delta.begin(atoms[i].relation);
    }
    ctx.max_index = &bounds;
    for (size_t idx = partition.begin;
         idx < partition.end && idx < tuples.size(); ++idx) {
      ctx.binding = start;
      ctx.done.assign(atoms.size(), false);
      ctx.done[pivot] = true;
      trail.clear();
      if (Unify(&ctx, pivot_atom, tuples[idx], &trail) &&
          Search(&ctx, static_cast<int>(atoms.size()) - 1)) {
        return true;
      }
    }
    return false;
  }
  // Merge-dirtied extras: pre-existing tuples whose resolved content
  // changed. Any match newly enabled by a merge must bind some atom to
  // such a tuple, so pivoting each atom over the extras (with the other
  // atoms unrestricted) is complete. A match touching several extras (or
  // an extra plus an additive-delta fact) can be enumerated more than
  // once; consumers are idempotent.
  const std::vector<int>& extra = delta.extras(pivot_atom.relation);
  PDX_CHECK_LE(partition.end, extra.size());
  for (size_t e = partition.begin; e < partition.end; ++e) {
    int idx = extra[e];
    PDX_DCHECK(static_cast<size_t>(idx) < tuples.size());
    ctx.binding = start;
    ctx.done.assign(atoms.size(), false);
    ctx.done[pivot] = true;
    trail.clear();
    if (Unify(&ctx, pivot_atom, tuples[idx], &trail) &&
        Search(&ctx, static_cast<int>(atoms.size()) - 1)) {
      return true;
    }
  }
  return false;
}

bool HasMatch(const std::vector<Atom>& atoms, int var_count,
              const Instance& instance, const Binding& partial) {
  return EnumerateMatches(atoms, var_count, instance, partial,
                          [](const Binding&) { return false; });
}

bool HasMatch(const std::vector<Atom>& atoms, int var_count,
              const Instance& instance) {
  return HasMatch(atoms, var_count, instance, Binding::Empty(var_count));
}

}  // namespace pdx
