#ifndef PDX_HOM_MATCHER_H_
#define PDX_HOM_MATCHER_H_

#include <functional>
#include <vector>

#include "logic/atom.h"
#include "relational/instance.h"

namespace pdx {

// A partial assignment of values to the variables 0..var_count-1 of one
// dependency or query. `bound[v]` says whether `values[v]` is meaningful.
struct Binding {
  std::vector<Value> values;
  std::vector<bool> bound;

  static Binding Empty(int var_count) {
    Binding b;
    b.values.resize(var_count);
    b.bound.assign(var_count, false);
    return b;
  }

  void Bind(VariableId v, Value value) {
    values[v] = value;
    bound[v] = true;
  }
};

// Enumerates homomorphisms from the conjunction `atoms` into `instance`
// that extend `partial`: assignments h of values to all variables occurring
// in `atoms` such that h(A) is a fact of `instance` for every atom A.
// Values are matched literally; labeled nulls in the instance behave like
// ordinary values (the standard naive-evaluation semantics used by the
// chase and by monotone query evaluation).
//
// Matching is resolve-on-read against the instance's value layer: raw
// tuple values are resolved to their equivalence-class roots before
// unification (see Instance::resolver()), so bindings reported to `fn`
// always hold resolved values — as do the values of `partial`, which are
// resolved on entry.
//
// `fn` is invoked once per complete match; returning false stops the
// enumeration. EnumerateMatches returns true iff enumeration was stopped by
// `fn` (i.e. "found and accepted early").
//
// The search picks, at every step, the pending atom with the fewest
// candidate tuples according to the instance's positional index, which
// keeps chase trigger detection near-linear on typical inputs.
bool EnumerateMatches(const std::vector<Atom>& atoms, int var_count,
                      const Instance& instance, const Binding& partial,
                      const std::function<bool(const Binding&)>& fn);

// Delta-restricted enumeration (the semi-naive restriction): enumerates
// only homomorphisms that match at least one body atom to a fact inside
// `delta`, i.e. a fact added since the delta's watermark. Every such match
// is produced exactly once: the *first* atom (in `atoms` order) mapped to
// a delta fact acts as the pivot — it ranges over the delta, atoms before
// it are confined to pre-delta facts, atoms after it are unrestricted.
// Matches entirely over pre-delta facts are skipped; a caller that has
// already processed them (the previous chase rounds) loses nothing.
//
// If the delta carries merge-dirtied extras (DeltaView::extras), matches
// binding an atom to a dirtied pre-existing tuple are also enumerated —
// these pivots leave the other atoms unrestricted, so a match touching
// both an extra and an additive fact may be reported more than once;
// callers must be idempotent (chase triggers are: they re-check before
// firing).
//
// Callback and return semantics are identical to EnumerateMatches.
bool EnumerateMatchesDelta(const std::vector<Atom>& atoms, int var_count,
                           const Instance& instance, const DeltaView& delta,
                           const Binding& partial,
                           const std::function<bool(const Binding&)>& fn);

// One slice of the work EnumerateMatchesDelta performs: the pivot atom
// `pivot` ranges over a sub-range of the delta. When `over_extras` is
// false, [begin, end) slices the additive tuple range
// [delta.begin, delta.end) of the pivot's relation; otherwise it slices
// positions of delta.extras(relation). Atoms before an additive pivot are
// confined to pre-delta facts, exactly as in EnumerateMatchesDelta.
struct DeltaPartition {
  size_t pivot = 0;
  size_t begin = 0;
  size_t end = 0;
  bool over_extras = false;
};

// Slices the work of EnumerateMatchesDelta(atoms, instance, delta) into at
// most ~max_partitions independent partitions of comparable pivot width.
// Enumerating the partitions one after another, in the returned order,
// visits exactly the matches EnumerateMatchesDelta visits, in the same
// order — so a parallel caller that concatenates per-partition results in
// partition order reproduces the sequential enumeration bit for bit.
// Deterministic: a pure function of (atoms, delta, max_partitions).
std::vector<DeltaPartition> PartitionDeltaMatches(
    const std::vector<Atom>& atoms, const DeltaView& delta,
    size_t max_partitions);

// Enumerates the matches of one partition. Callback and return semantics
// are identical to EnumerateMatches; `instance` and `delta` must be the
// ones the partition was built against and must not be mutated while any
// partition of the same batch is being enumerated (workers share them
// read-only).
bool EnumerateMatchesDeltaPartition(
    const std::vector<Atom>& atoms, int var_count, const Instance& instance,
    const DeltaView& delta, const DeltaPartition& partition,
    const Binding& partial, const std::function<bool(const Binding&)>& fn);

// True if at least one homomorphism extending `partial` exists.
bool HasMatch(const std::vector<Atom>& atoms, int var_count,
              const Instance& instance, const Binding& partial);

// Convenience: HasMatch from the empty binding.
bool HasMatch(const std::vector<Atom>& atoms, int var_count,
              const Instance& instance);

namespace plan {
struct BodyPlan;
}  // namespace plan

// --- Plan-driven entry points (the dependency compiler, plan/ir.h) ------
//
// Each mirrors its interpreted counterpart above, executing a compiled
// BodyPlan instead of searching the atom list: the plan's static join
// order, access paths and unification programs replace the per-node
// fewest-candidates selection and per-call index probing. The enumerated
// match *set* is identical to the interpreter's (per delta partition, per
// pivot — the same pivot confinement semantics apply); the enumeration
// *order* may differ, which every consumer tolerates (collect-then-apply
// phases gather full pending sets, and result contracts are stated on
// resolved views / canonical fingerprints). Bindings reported to `fn`
// hold resolved values, exactly as in the interpreted paths. The partial
// binding may bind any subset of variables: plans compiled under a
// different assumed-bound set stay correct (kBind ops verify at runtime),
// only access-path quality is tuned to the compiled assumption.

// EnumerateMatches through `plan.full`.
bool EnumerateMatchesPlanned(const plan::BodyPlan& plan,
                             const Instance& instance, const Binding& partial,
                             const std::function<bool(const Binding&)>& fn);

// EnumerateMatchesDelta through the plan's pivot-rotation variants, in the
// interpreter's pivot order (additive pivots first, then extras).
bool EnumerateMatchesDeltaPlanned(
    const plan::BodyPlan& plan, const Instance& instance,
    const DeltaView& delta, const Binding& partial,
    const std::function<bool(const Binding&)>& fn);

// EnumerateMatchesDeltaPartition through `plan.variants[partition.pivot]`.
// The partition must have been built (PartitionDeltaMatches) against the
// same atom list the plan was compiled from.
bool EnumerateMatchesDeltaPartitionPlanned(
    const plan::BodyPlan& plan, const Instance& instance,
    const DeltaView& delta, const DeltaPartition& partition,
    const Binding& partial, const std::function<bool(const Binding&)>& fn);

// HasMatch through `plan.full`.
bool HasMatchPlanned(const plan::BodyPlan& plan, const Instance& instance,
                     const Binding& partial);

}  // namespace pdx

#endif  // PDX_HOM_MATCHER_H_
