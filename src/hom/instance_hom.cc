#include "hom/instance_hom.h"

#include <algorithm>

#include "hom/matcher.h"
#include "logic/atom.h"

namespace pdx {

namespace {

// Union-find over null ids (dense-indexed via a map to component slots).
class NullUnionFind {
 public:
  int Slot(uint64_t packed) {
    auto [it, inserted] = slots_.emplace(packed, parent_.size());
    if (inserted) {
      parent_.push_back(static_cast<int>(parent_.size()));
      keys_.push_back(packed);
    }
    return it->second;
  }

  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(int a, int b) { parent_[Find(a)] = Find(b); }

  const std::unordered_map<uint64_t, int>& slots() const { return slots_; }

 private:
  std::unordered_map<uint64_t, int> slots_;
  std::vector<int> parent_;
  std::vector<uint64_t> keys_;
};

}  // namespace

std::vector<Block> DecomposeIntoBlocks(const Instance& instance) {
  // Connected components of the graph of nulls: nulls co-occurring in one
  // fact are connected (a fact connects *all* its nulls pairwise, which is
  // the same component either way).
  NullUnionFind uf;
  instance.ForEachFact([&uf](const Fact& f) {
    int first_slot = -1;
    for (const Value& v : f.tuple) {
      if (!v.is_null()) continue;
      int slot = uf.Slot(v.packed());
      if (first_slot == -1) {
        first_slot = slot;
      } else {
        uf.Union(first_slot, slot);
      }
    }
  });

  std::unordered_map<int, int> root_to_block;
  std::vector<Block> blocks;
  Block constant_block;
  instance.ForEachFact([&](const Fact& f) {
    int root = -1;
    for (const Value& v : f.tuple) {
      if (v.is_null()) {
        root = uf.Find(uf.Slot(v.packed()));
        break;
      }
    }
    if (root == -1) {
      constant_block.facts.push_back(f);
      return;
    }
    auto [it, inserted] = root_to_block.emplace(
        root, static_cast<int>(blocks.size()));
    if (inserted) blocks.emplace_back();
    blocks[it->second].facts.push_back(f);
  });

  // Collect distinct nulls per block.
  for (Block& block : blocks) {
    std::unordered_map<uint64_t, bool> seen;
    for (const Fact& f : block.facts) {
      for (const Value& v : f.tuple) {
        if (v.is_null() && seen.emplace(v.packed(), true).second) {
          block.nulls.push_back(v);
        }
      }
    }
  }
  if (!constant_block.facts.empty()) {
    blocks.push_back(std::move(constant_block));
  }
  return blocks;
}

std::optional<NullAssignment> FindBlockHomomorphism(const Block& block,
                                                    const Instance& target) {
  // Null-free blocks map iff every fact is literally present: a plain
  // subset check, far cheaper than driving the matcher.
  if (block.nulls.empty()) {
    for (const Fact& f : block.facts) {
      if (!target.Contains(f)) return std::nullopt;
    }
    return NullAssignment{};
  }
  // Translate the block into a conjunction of atoms: nulls become
  // variables, constants stay constant.
  std::unordered_map<uint64_t, VariableId> var_of_null;
  for (const Value& n : block.nulls) {
    var_of_null.emplace(n.packed(), static_cast<VariableId>(var_of_null.size()));
  }
  std::vector<Atom> atoms;
  atoms.reserve(block.facts.size());
  for (const Fact& f : block.facts) {
    Atom atom;
    atom.relation = f.relation;
    atom.terms.reserve(f.tuple.size());
    for (const Value& v : f.tuple) {
      if (v.is_null()) {
        atom.terms.push_back(Term::Var(var_of_null.at(v.packed())));
      } else {
        atom.terms.push_back(Term::Const(v));
      }
    }
    atoms.push_back(std::move(atom));
  }
  int var_count = static_cast<int>(var_of_null.size());
  NullAssignment assignment;
  bool found = EnumerateMatches(
      atoms, var_count, target, Binding::Empty(var_count),
      [&](const Binding& binding) {
        for (const auto& [packed, var] : var_of_null) {
          assignment[packed] = binding.values[var];
        }
        return false;  // stop at the first homomorphism
      });
  if (!found) return std::nullopt;
  return assignment;
}

std::optional<NullAssignment> FindInstanceHomomorphism(
    const Instance& source, const Instance& target) {
  NullAssignment combined;
  for (const Block& block : DecomposeIntoBlocks(source)) {
    std::optional<NullAssignment> block_assignment =
        FindBlockHomomorphism(block, target);
    if (!block_assignment.has_value()) return std::nullopt;
    for (const auto& [packed, value] : *block_assignment) {
      combined[packed] = value;
    }
  }
  return combined;
}

Instance ApplyAssignment(const Instance& source,
                         const NullAssignment& assignment) {
  Instance image(&source.schema());
  source.ForEachFact([&](const Fact& f) {
    Tuple mapped = f.tuple;
    for (Value& v : mapped) {
      if (v.is_null()) {
        auto it = assignment.find(v.packed());
        if (it != assignment.end()) v = it->second;
      }
    }
    image.AddFact(f.relation, std::move(mapped));
  });
  return image;
}

}  // namespace pdx
