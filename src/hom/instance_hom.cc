#include "hom/instance_hom.h"

#include <algorithm>

#include "hom/matcher.h"
#include "logic/atom.h"

namespace pdx {

namespace {

// Union-find over null ids (dense-indexed via a map to component slots).
class NullUnionFind {
 public:
  int Slot(uint64_t packed) {
    auto [it, inserted] = slots_.emplace(packed, parent_.size());
    if (inserted) {
      parent_.push_back(static_cast<int>(parent_.size()));
      keys_.push_back(packed);
    }
    return it->second;
  }

  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(int a, int b) { parent_[Find(a)] = Find(b); }

  const std::unordered_map<uint64_t, int>& slots() const { return slots_; }

 private:
  std::unordered_map<uint64_t, int> slots_;
  std::vector<int> parent_;
  std::vector<uint64_t> keys_;
};

}  // namespace

std::vector<Block> DecomposeIntoBlocks(const Instance& instance) {
  // Connected components of the graph of nulls: nulls co-occurring in one
  // fact are connected (a fact connects *all* its nulls pairwise, which is
  // the same component either way).
  NullUnionFind uf;
  instance.ForEachFact([&uf](const Fact& f) {
    int first_slot = -1;
    for (const Value& v : f.tuple) {
      if (!v.is_null()) continue;
      int slot = uf.Slot(v.packed());
      if (first_slot == -1) {
        first_slot = slot;
      } else {
        uf.Union(first_slot, slot);
      }
    }
  });

  std::unordered_map<int, int> root_to_block;
  std::vector<Block> blocks;
  Block constant_block;
  instance.ForEachFact([&](const Fact& f) {
    int root = -1;
    for (const Value& v : f.tuple) {
      if (v.is_null()) {
        root = uf.Find(uf.Slot(v.packed()));
        break;
      }
    }
    if (root == -1) {
      constant_block.facts.push_back(f);
      return;
    }
    auto [it, inserted] = root_to_block.emplace(
        root, static_cast<int>(blocks.size()));
    if (inserted) blocks.emplace_back();
    blocks[it->second].facts.push_back(f);
  });

  // Collect distinct nulls per block.
  for (Block& block : blocks) {
    std::unordered_map<uint64_t, bool> seen;
    for (const Fact& f : block.facts) {
      for (const Value& v : f.tuple) {
        if (v.is_null() && seen.emplace(v.packed(), true).second) {
          block.nulls.push_back(v);
        }
      }
    }
  }
  if (!constant_block.facts.empty()) {
    blocks.push_back(std::move(constant_block));
  }
  return blocks;
}

std::optional<NullAssignment> FindBlockHomomorphism(const Block& block,
                                                    const Instance& target) {
  // Null-free blocks map iff every fact is literally present: a plain
  // subset check, far cheaper than driving the matcher.
  if (block.nulls.empty()) {
    for (const Fact& f : block.facts) {
      if (!target.Contains(f)) return std::nullopt;
    }
    return NullAssignment{};
  }
  // Translate the block into a conjunction of atoms: nulls become
  // variables, constants stay constant.
  std::unordered_map<uint64_t, VariableId> var_of_null;
  for (const Value& n : block.nulls) {
    var_of_null.emplace(n.packed(), static_cast<VariableId>(var_of_null.size()));
  }
  std::vector<Atom> atoms;
  atoms.reserve(block.facts.size());
  for (const Fact& f : block.facts) {
    Atom atom;
    atom.relation = f.relation;
    atom.terms.reserve(f.tuple.size());
    for (const Value& v : f.tuple) {
      if (v.is_null()) {
        atom.terms.push_back(Term::Var(var_of_null.at(v.packed())));
      } else {
        atom.terms.push_back(Term::Const(v));
      }
    }
    atoms.push_back(std::move(atom));
  }
  int var_count = static_cast<int>(var_of_null.size());
  NullAssignment assignment;
  bool found = EnumerateMatches(
      atoms, var_count, target, Binding::Empty(var_count),
      [&](const Binding& binding) {
        for (const auto& [packed, var] : var_of_null) {
          assignment[packed] = binding.values[var];
        }
        return false;  // stop at the first homomorphism
      });
  if (!found) return std::nullopt;
  return assignment;
}

std::optional<NullAssignment> FindInstanceHomomorphism(
    const Instance& source, const Instance& target) {
  NullAssignment combined;
  for (const Block& block : DecomposeIntoBlocks(source)) {
    std::optional<NullAssignment> block_assignment =
        FindBlockHomomorphism(block, target);
    if (!block_assignment.has_value()) return std::nullopt;
    for (const auto& [packed, value] : *block_assignment) {
      combined[packed] = value;
    }
  }
  return combined;
}

namespace {

inline uint64_t MixCanon(uint64_t h, uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  return (h ^ x) * 0x100000001b3ull;
}

size_t CountDistinct(std::vector<uint64_t> values) {
  std::sort(values.begin(), values.end());
  return static_cast<size_t>(
      std::unique(values.begin(), values.end()) - values.begin());
}

// One color-refinement sweep to fixpoint: each round hashes, for every
// null, the multiset of (fact signature, position) pairs it occurs in,
// where a fact's signature covers its relation, its constants, and the
// current colors of its nulls. The new color also folds in the old one,
// so refinement only ever splits classes; the sweep stops when the class
// count stabilizes.
void RefineColors(const std::vector<Fact>& facts,
                  const std::unordered_map<uint64_t, size_t>& index,
                  std::vector<uint64_t>* color) {
  const size_t n = color->size();
  size_t classes = CountDistinct(*color);
  for (size_t round = 0; round <= n; ++round) {
    std::vector<std::vector<uint64_t>> occurrences(n);
    for (const Fact& f : facts) {
      uint64_t sig = MixCanon(0x9e3779b97f4a7c15ull,
                              static_cast<uint64_t>(f.relation) + 1);
      for (const Value& v : f.tuple) {
        sig = MixCanon(sig, v.is_null()
                                ? (*color)[index.at(v.packed())] * 2 + 1
                                : v.packed() * 2);
      }
      for (size_t pos = 0; pos < f.tuple.size(); ++pos) {
        const Value& v = f.tuple[pos];
        if (!v.is_null()) continue;
        occurrences[index.at(v.packed())].push_back(MixCanon(sig, pos + 1));
      }
    }
    std::vector<uint64_t> next(n);
    for (size_t i = 0; i < n; ++i) {
      std::sort(occurrences[i].begin(), occurrences[i].end());
      uint64_t h = MixCanon((*color)[i], 0x51);
      for (uint64_t s : occurrences[i]) h = MixCanon(h, s);
      next[i] = h;
    }
    size_t next_classes = CountDistinct(next);
    *color = std::move(next);
    if (next_classes == classes) break;
    classes = next_classes;
  }
}

}  // namespace

Instance CanonicalizeNulls(const Instance& instance) {
  std::vector<Fact> facts = instance.AllFacts();
  std::unordered_map<uint64_t, size_t> index;  // packed null -> dense slot
  for (const Fact& f : facts) {
    for (const Value& v : f.tuple) {
      if (v.is_null()) index.emplace(v.packed(), index.size());
    }
  }
  const size_t n = index.size();
  std::vector<uint64_t> color(n, 0x243f6a8885a308d3ull);
  if (n > 0) {
    RefineColors(facts, index, &color);
    // Individualize residual symmetric classes: give one member of the
    // smallest ambiguous class a fresh color and re-refine. Each round
    // strictly grows the class count, so this terminates in <= n rounds.
    // The member is chosen by smallest original id; when the class really
    // is an automorphism orbit the choice cannot affect the result.
    while (CountDistinct(color) < n) {
      std::unordered_map<uint64_t, size_t> multiplicity;
      for (uint64_t c : color) ++multiplicity[c];
      uint64_t ambiguous = 0;
      bool found = false;
      for (const auto& [c, count] : multiplicity) {
        if (count > 1 && (!found || c < ambiguous)) {
          ambiguous = c;
          found = true;
        }
      }
      uint64_t chosen_key = 0;
      size_t chosen_slot = 0;
      bool first = true;
      for (const auto& [packed, slot] : index) {
        if (color[slot] != ambiguous) continue;
        if (first || packed < chosen_key) {
          chosen_key = packed;
          chosen_slot = slot;
          first = false;
        }
      }
      color[chosen_slot] = MixCanon(color[chosen_slot], 0xd1b54a32d192ed03ull);
      RefineColors(facts, index, &color);
    }
  }

  // Total order on facts from the (now all-distinct) colors; renumber
  // nulls by first occurrence in that order.
  auto value_key = [&](const Value& v) {
    return v.is_null()
               ? std::make_pair(uint64_t{1}, color[index.at(v.packed())])
               : std::make_pair(uint64_t{0}, v.packed());
  };
  std::sort(facts.begin(), facts.end(), [&](const Fact& a, const Fact& b) {
    if (a.relation != b.relation) return a.relation < b.relation;
    return std::lexicographical_compare(
        a.tuple.begin(), a.tuple.end(), b.tuple.begin(), b.tuple.end(),
        [&](const Value& x, const Value& y) {
          return value_key(x) < value_key(y);
        });
  });
  std::unordered_map<uint64_t, Value> rename;
  uint32_t next_id = 0;
  Instance out(&instance.schema());
  for (const Fact& f : facts) {
    Tuple mapped = f.tuple;
    for (Value& v : mapped) {
      if (!v.is_null()) continue;
      auto [it, inserted] = rename.emplace(v.packed(), Value::Null(next_id));
      if (inserted) ++next_id;
      v = it->second;
    }
    out.AddFact(f.relation, std::move(mapped));
  }
  return out;
}

Instance ApplyAssignment(const Instance& source,
                         const NullAssignment& assignment) {
  Instance image(&source.schema());
  source.ForEachFact([&](const Fact& f) {
    Tuple mapped = f.tuple;
    for (Value& v : mapped) {
      if (v.is_null()) {
        auto it = assignment.find(v.packed());
        if (it != assignment.end()) v = it->second;
      }
    }
    image.AddFact(f.relation, std::move(mapped));
  });
  return image;
}

}  // namespace pdx
