#ifndef PDX_PLAN_IR_H_
#define PDX_PLAN_IR_H_

// The typed plan IR of the dependency compiler: a setting Σ is lowered
// once, at load time, into per-dependency join plans that the matcher
// executes instead of re-deriving atom order, index choice and variable
// bindings from the raw Tgd/Egd AST on every call (see plan/compiler.h
// for the pass pipeline and DESIGN.md "Dependency compiler").
//
// A plan is a pure function of the dependency's structure — atom
// relations, term shapes, variable counts — never of instance contents,
// which is what makes compiled plans cacheable across chase rounds,
// solver node re-chases and whole pdxcli invocations (plan/plan_cache.h).
// Execution against a concrete Instance (including resolve-on-read under
// egd merges and the semi-naive delta restrictions) lives in the matcher:
// hom/matcher.h, EnumerateMatches*Planned / HasMatchPlanned.
//
// The compiled path enumerates exactly the match *set* the interpreter
// enumerates — per delta partition, per pivot — but may visit it in a
// different order (static join order vs. the interpreter's per-node
// fewest-candidates choice). Every consumer is order-tolerant: pending
// trigger sets are collected fully before applying, and all result
// contracts are stated on resolved views and canonical fingerprints.

#include <cstdint>
#include <utility>
#include <vector>

#include "logic/atom.h"
#include "plan/bytecode.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace pdx {
namespace plan {

// How one join step obtains its candidate tuples.
struct AccessPath {
  enum Kind : uint8_t {
    kScan,        // full relation scan (nothing usefully bound)
    kProbeConst,  // index probe at `pos` with the constant `key`
    kProbeVar,    // index probe at `pos` with the bound value of `var`
  };
  Kind kind = kScan;
  int pos = -1;          // probed tuple position (probe kinds)
  VariableId var = -1;   // kProbeVar: variable supplying the probe key
  Value key;             // kProbeConst: the probe key
};

// One per-position operation run against a candidate tuple's (resolved)
// value. The probed position of the access path is skipped — the index
// bucket already guarantees it matches.
struct SlotOp {
  enum Kind : uint8_t {
    kBind,        // first occurrence of `var`: bind it (or compare, if the
                  // caller's partial binding already bound it)
    kCheckVar,    // later occurrence: compare against the bound value
    kCheckConst,  // constant term: compare against `key`
  };
  Kind kind = kBind;
  int pos = 0;
  VariableId var = -1;
  Value key;
};

// One atom of the join, in execution order: access path + unification
// program. `atom_index` is the atom's index in the dependency's own body
// (or head) list — the semi-naive "old facts only" restriction is keyed by
// that original index, not by execution position.
struct JoinStep {
  RelationId relation = -1;
  int atom_index = -1;
  AccessPath access;
  std::vector<SlotOp> ops;
};

// Pivot-rotation variant of a body plan: the execution program for the
// case where atom `pivot` ranges over the delta (additive range or
// merge-dirtied extras) and the remaining atoms join around it. Atoms with
// atom_index < pivot are confined to pre-delta facts by the executor when
// the partition is additive, mirroring EnumerateMatchesDeltaPartition.
struct DeltaVariant {
  int pivot = -1;
  RelationId pivot_relation = -1;
  std::vector<SlotOp> pivot_ops;  // unify the pivot tuple first
  std::vector<JoinStep> rest;     // then join the remaining atoms
};

// A compiled conjunction: the static full-order program (used for
// HasMatch-style probes and witness search) plus one delta variant per
// atom (used by the semi-naive pivot rotation).
struct BodyPlan {
  int var_count = 0;
  int atom_count = 0;
  // Variables assumed bound on entry (the caller's partial binding); the
  // executor tolerates callers binding fewer or more — kBind ops check at
  // runtime — but access paths are chosen under this assumption.
  std::vector<bool> initially_bound;
  std::vector<JoinStep> full;
  std::vector<DeltaVariant> variants;  // variants[i].pivot == i
  // Linear lowering of `full` + `variants` (plan/bytecode.h), executed by
  // the match VM unless PDX_FORCE_TREE_EXEC routes to the tree executor.
  // Empty for hand-built plans that skipped CompileBody.
  BodyCode code;
};

// One flat head slot of the apply template: where the value of one head
// tuple position comes from. `exist` indexes the template's existentials
// (the fresh-null frame) when the slot is an existential variable.
struct HeadSlot {
  bool is_const = false;
  Value key;            // is_const
  VariableId var = -1;  // otherwise
  int exist = -1;       // index into ApplyTemplate::existentials, or -1
};

struct HeadAtom {
  RelationId relation = -1;
  int arity = 0;
};

// Head-overlay analysis of one tgd (plan/compiler.cc, AnalyzeHeadOverlay).
//
// The sharded apply phase wants to decide "is this trigger's head already
// satisfied by an earlier trigger fired in the same batch?" without a
// physical index probe. That reduction is exact only for a restricted
// head shape: the head atoms must form a *single* component under the
// relation "shares an existential variable", and no relation may appear
// twice across the head. Under those two conditions, a trigger's head is
// satisfied by same-batch inserts iff an earlier trigger of the same tgd
// fired with an equal projection onto `key` (the head's universal
// variables): fresh nulls tie every same-batch satisfaction to a single
// earlier trigger, and relation-uniqueness plus connectivity force the
// atom-by-atom identification that makes the projections equal. Heads
// that fail either condition (e.g. `H(x,z), H(y,z)`, where permutation
// matching across two same-relation atoms breaks the projection argument,
// or multi-component heads whose pieces can be satisfied by different
// triggers) keep the physical re-check; `exact` says which case this is.
struct HeadOverlayPlan {
  bool exact = false;
  std::vector<VariableId> key;  // universal head variables, ascending
};

// Which relations one tgd reads and writes, as bitsets indexed by
// RelationId (sized to the largest relation the dependency set mentions;
// consumers treat out-of-range as false). `reads` covers body *and* head
// relations — the restricted chase's head-satisfaction probe reads the
// head — so reads ⊇ writes, and two tgds with disjoint (writes, reads)
// pairs can safely overlap one's apply with the other's collect. This is
// the edge relation of the footprint DAG the scheduler in chase.cc walks.
struct TgdFootprint {
  std::vector<bool> reads;
  std::vector<bool> writes;
};

// The fused apply template of one tgd: everything the chase's apply phase
// (barrier or speculative) needs to instantiate the head from a complete
// body match, absorbing what chase.cc's SpecLayout used to re-derive per
// round. Parser validation guarantees existential variables never occur in
// the body, so every complete body match binds exactly the non-existential
// variables: `body_bound` is the bound mask of every trigger, and
// `fresh_per_trigger` is a constant.
struct ApplyTemplate {
  size_t head_width = 0;      // sum of head-atom arities
  int fresh_per_trigger = 0;  // = existentials.size()
  std::vector<VariableId> existentials;  // ascending variable order
  // Positions within a trigger's flat head row holding an existential
  // variable, with the variable: the slots the speculative collect patches
  // once a partition's exact null range is reserved.
  std::vector<std::pair<size_t, VariableId>> head_null_slots;
  std::vector<bool> body_bound;  // size var_count
  std::vector<HeadSlot> slots;   // flat, atoms concatenated in head order
  std::vector<HeadAtom> head_atoms;
  HeadOverlayPlan overlay;
};

struct TgdPlan {
  BodyPlan body;
  // The head as a match plan, compiled with the universal variables
  // pre-bound: the restricted engine's violated-trigger filter and
  // re-check (HasMatch on the head) and the solution-aware witness search
  // both run it.
  BodyPlan head;
  ApplyTemplate apply;
};

struct EgdPlan {
  BodyPlan body;
  VariableId left_var = 0;
  VariableId right_var = 0;
};

// A whole compiled setting: plans indexed parallel to the tgd/egd vectors
// they were compiled from, keyed by the structural fingerprint the cache
// uses (plan/compiler.h, SettingFingerprint).
struct CompiledSetting {
  std::vector<TgdPlan> tgds;
  std::vector<EgdPlan> egds;
  // Parallel to `tgds`: the read/write footprints the topological
  // scheduler consumes (ComputeTgdFootprints over the same tgd vector).
  std::vector<TgdFootprint> footprints;
  uint64_t fingerprint = 0;
};

}  // namespace plan
}  // namespace pdx

#endif  // PDX_PLAN_IR_H_
