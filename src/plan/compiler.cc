#include "plan/compiler.h"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "base/string_util.h"

namespace pdx {
namespace plan {

namespace {

// splitmix64-style mixing, same family the trigger fingerprints use.
uint64_t Mix(uint64_t h, uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  return (h ^ x) * 0x100000001b3ull;
}

uint64_t HashAtoms(uint64_t h, const std::vector<Atom>& atoms) {
  h = Mix(h, atoms.size());
  for (const Atom& atom : atoms) {
    h = Mix(h, static_cast<uint64_t>(atom.relation) + 1);
    for (const Term& t : atom.terms) {
      h = t.is_constant() ? Mix(h, t.constant().packed() | (1ull << 63))
                          : Mix(h, static_cast<uint64_t>(t.var()) * 2 + 1);
    }
  }
  return h;
}

// Number of terms of `atom` bound under `bound` (constants always count).
int BoundTermCount(const Atom& atom, const std::vector<bool>& bound) {
  int n = 0;
  for (const Term& t : atom.terms) {
    if (t.is_constant() || bound[t.var()]) ++n;
  }
  return n;
}

size_t CardinalityHint(const CompilerHints& hints, RelationId relation) {
  if (static_cast<size_t>(relation) < hints.relation_cardinality.size()) {
    return hints.relation_cardinality[relation];
  }
  return std::numeric_limits<size_t>::max();
}

// Pass 2: the access path for `atom` given the entry bound set. Probing a
// bound-variable position is preferred over a constant position: join-key
// buckets narrow as the binding deepens, while a constant's bucket is a
// fixed filter the slot ops re-check anyway. Lowest such position wins,
// deterministically.
AccessPath SelectAccess(const Atom& atom, const std::vector<bool>& bound) {
  AccessPath access;
  for (int pos = 0; pos < static_cast<int>(atom.terms.size()); ++pos) {
    const Term& t = atom.terms[pos];
    if (t.is_variable() && bound[t.var()]) {
      access.kind = AccessPath::kProbeVar;
      access.pos = pos;
      access.var = t.var();
      return access;
    }
  }
  for (int pos = 0; pos < static_cast<int>(atom.terms.size()); ++pos) {
    const Term& t = atom.terms[pos];
    if (t.is_constant()) {
      access.kind = AccessPath::kProbeConst;
      access.pos = pos;
      access.key = t.constant();
      return access;
    }
  }
  access.kind = AccessPath::kScan;
  return access;
}

// The unification program for `atom`: one SlotOp per position except the
// probed one (the index bucket already guarantees it), in position order.
// Updates `bound` with the variables the ops bind.
std::vector<SlotOp> BuildOps(const Atom& atom, int skip_pos,
                             std::vector<bool>* bound) {
  std::vector<SlotOp> ops;
  ops.reserve(atom.terms.size());
  for (int pos = 0; pos < static_cast<int>(atom.terms.size()); ++pos) {
    if (pos == skip_pos) continue;
    const Term& t = atom.terms[pos];
    SlotOp op;
    op.pos = pos;
    if (t.is_constant()) {
      op.kind = SlotOp::kCheckConst;
      op.key = t.constant();
    } else if ((*bound)[t.var()]) {
      op.kind = SlotOp::kCheckVar;
      op.var = t.var();
    } else {
      op.kind = SlotOp::kBind;
      op.var = t.var();
      (*bound)[t.var()] = true;
    }
    ops.push_back(op);
  }
  return ops;
}

// Marks the variables of `atom` bound (used for the pivot atom, whose ops
// keep every position — there is no probe to skip).
std::vector<SlotOp> BuildPivotOps(const Atom& atom,
                                  std::vector<bool>* bound) {
  return BuildOps(atom, /*skip_pos=*/-1, bound);
}

// Pass 1: greedy join order over `pending` (original atom indexes) from
// the entry bound set, emitting one JoinStep per atom.
std::vector<JoinStep> OrderSteps(const std::vector<Atom>& atoms,
                                 std::vector<int> pending,
                                 std::vector<bool> bound,
                                 const CompilerHints& hints) {
  std::vector<JoinStep> steps;
  steps.reserve(pending.size());
  while (!pending.empty()) {
    size_t best = 0;
    int best_score = -1;
    size_t best_card = 0;
    for (size_t i = 0; i < pending.size(); ++i) {
      const Atom& atom = atoms[pending[i]];
      int score = BoundTermCount(atom, bound);
      size_t card = CardinalityHint(hints, atom.relation);
      if (score > best_score ||
          (score == best_score && card < best_card)) {
        best = i;
        best_score = score;
        best_card = card;
      }
    }
    int atom_index = pending[best];
    pending.erase(pending.begin() + best);
    const Atom& atom = atoms[atom_index];
    JoinStep step;
    step.relation = atom.relation;
    step.atom_index = atom_index;
    step.access = SelectAccess(atom, bound);
    step.ops = BuildOps(atom, step.access.pos, &bound);
    steps.push_back(std::move(step));
  }
  return steps;
}

ApplyTemplate BuildApplyTemplate(const Tgd& tgd) {
  ApplyTemplate out;
  out.body_bound.assign(tgd.var_count, false);
  std::vector<int> exist_index(tgd.var_count, -1);
  for (VariableId v = 0; v < tgd.var_count; ++v) {
    if (tgd.existential[v]) {
      exist_index[v] = static_cast<int>(out.existentials.size());
      out.existentials.push_back(v);
    } else {
      out.body_bound[v] = true;
    }
  }
  out.fresh_per_trigger = static_cast<int>(out.existentials.size());
  size_t pos = 0;
  for (const Atom& atom : tgd.head) {
    out.head_atoms.push_back(
        {atom.relation, static_cast<int>(atom.terms.size())});
    for (const Term& t : atom.terms) {
      HeadSlot slot;
      if (t.is_constant()) {
        slot.is_const = true;
        slot.key = t.constant();
      } else {
        slot.var = t.var();
        slot.exist = exist_index[t.var()];
        if (slot.exist >= 0) out.head_null_slots.emplace_back(pos, t.var());
      }
      out.slots.push_back(slot);
      ++pos;
    }
  }
  out.head_width = pos;
  return out;
}

const char* AccessKindName(AccessPath::Kind kind) {
  switch (kind) {
    case AccessPath::kScan: return "scan";
    case AccessPath::kProbeConst: return "probe-const";
    case AccessPath::kProbeVar: return "probe-var";
  }
  return "?";
}

std::string VarName(const std::vector<std::string>& names, VariableId v) {
  if (static_cast<size_t>(v) < names.size() && !names[v].empty()) {
    return names[v];
  }
  return StrCat("v", v);
}

void DumpSteps(const std::vector<JoinStep>& steps, const Schema& schema,
               const std::vector<std::string>& var_names, std::string* out) {
  for (const JoinStep& step : steps) {
    *out += StrCat("    step atom#", step.atom_index, " ",
                   schema.relation_name(step.relation), " ",
                   AccessKindName(step.access.kind));
    if (step.access.kind == AccessPath::kProbeVar) {
      *out += StrCat("[", step.access.pos, "]=",
                     VarName(var_names, step.access.var));
    } else if (step.access.kind == AccessPath::kProbeConst) {
      *out += StrCat("[", step.access.pos, "]=const");
    }
    int binds = 0;
    for (const SlotOp& op : step.ops) {
      if (op.kind == SlotOp::kBind) ++binds;
    }
    *out += StrCat(" binds=", binds, "\n");
  }
}

void DumpBody(const BodyPlan& plan, const Schema& schema,
              const std::vector<std::string>& var_names, std::string* out) {
  *out += "  full:\n";
  DumpSteps(plan.full, schema, var_names, out);
  for (const DeltaVariant& variant : plan.variants) {
    *out += StrCat("  delta pivot atom#", variant.pivot, " ",
                   schema.relation_name(variant.pivot_relation), ":\n");
    DumpSteps(variant.rest, schema, var_names, out);
  }
}

}  // namespace

uint64_t SettingFingerprint(const std::vector<Tgd>& tgds,
                            const std::vector<Egd>& egds) {
  uint64_t h = 0xcbf29ce484222325ull;
  h = Mix(h, tgds.size());
  for (const Tgd& tgd : tgds) {
    h = Mix(h, static_cast<uint64_t>(tgd.var_count));
    for (VariableId v = 0; v < tgd.var_count; ++v) {
      h = Mix(h, tgd.existential[v] ? 2 : 1);
    }
    h = HashAtoms(h, tgd.body);
    h = HashAtoms(h, tgd.head);
  }
  h = Mix(h, egds.size());
  for (const Egd& egd : egds) {
    h = Mix(h, static_cast<uint64_t>(egd.var_count));
    h = Mix(h, static_cast<uint64_t>(egd.left_var));
    h = Mix(h, static_cast<uint64_t>(egd.right_var));
    h = HashAtoms(h, egd.body);
  }
  return h;
}

BodyPlan CompileBody(const std::vector<Atom>& atoms, int var_count,
                     const std::vector<bool>& initially_bound,
                     const CompilerHints& hints) {
  BodyPlan plan;
  plan.var_count = var_count;
  plan.atom_count = static_cast<int>(atoms.size());
  plan.initially_bound = initially_bound;
  plan.initially_bound.resize(var_count, false);
  std::vector<int> all(atoms.size());
  for (size_t i = 0; i < atoms.size(); ++i) all[i] = static_cast<int>(i);
  plan.full = OrderSteps(atoms, all, plan.initially_bound, hints);
  // Pass 3: one pivot-rotation variant per atom, the pivot unified first.
  plan.variants.reserve(atoms.size());
  for (size_t pivot = 0; pivot < atoms.size(); ++pivot) {
    DeltaVariant variant;
    variant.pivot = static_cast<int>(pivot);
    variant.pivot_relation = atoms[pivot].relation;
    std::vector<bool> bound = plan.initially_bound;
    variant.pivot_ops = BuildPivotOps(atoms[pivot], &bound);
    std::vector<int> pending;
    for (size_t i = 0; i < atoms.size(); ++i) {
      if (i != pivot) pending.push_back(static_cast<int>(i));
    }
    variant.rest = OrderSteps(atoms, std::move(pending), std::move(bound),
                              hints);
    plan.variants.push_back(std::move(variant));
  }
  plan.code = LowerBody(plan);
  return plan;
}

HeadOverlayPlan AnalyzeHeadOverlay(const Tgd& tgd) {
  HeadOverlayPlan out;
  const size_t n = tgd.head.size();
  if (n == 0) return out;
  // Union-find over head atoms, connected through shared existential
  // variables (first_atom_with[v] remembers the representative atom of
  // each existential seen so far).
  std::vector<int> parent(n);
  for (size_t i = 0; i < n; ++i) parent[i] = static_cast<int>(i);
  auto find = [&](int a) {
    while (parent[a] != a) a = parent[a] = parent[parent[a]];
    return a;
  };
  std::vector<int> first_atom_with(tgd.var_count, -1);
  std::vector<bool> relation_seen;
  bool relation_repeats = false;
  for (size_t i = 0; i < n; ++i) {
    const Atom& atom = tgd.head[i];
    if (atom.relation >= 0) {
      if (static_cast<size_t>(atom.relation) >= relation_seen.size()) {
        relation_seen.resize(atom.relation + 1, false);
      }
      if (relation_seen[atom.relation]) relation_repeats = true;
      relation_seen[atom.relation] = true;
    }
    for (const Term& t : atom.terms) {
      if (t.is_constant() || !tgd.existential[t.var()]) continue;
      int& rep = first_atom_with[t.var()];
      if (rep < 0) {
        rep = static_cast<int>(i);
      } else {
        parent[find(static_cast<int>(i))] = find(rep);
      }
    }
  }
  int components = 0;
  for (size_t i = 0; i < n; ++i) {
    if (find(static_cast<int>(i)) == static_cast<int>(i)) ++components;
  }
  if (components != 1 || relation_repeats) return out;
  out.exact = true;
  for (VariableId v = 0; v < tgd.var_count; ++v) {
    if (tgd.existential[v]) continue;
    bool in_head = false;
    for (const Atom& atom : tgd.head) {
      for (const Term& t : atom.terms) {
        if (!t.is_constant() && t.var() == v) { in_head = true; break; }
      }
      if (in_head) break;
    }
    if (in_head) out.key.push_back(v);
  }
  return out;
}

std::vector<TgdFootprint> ComputeTgdFootprints(const std::vector<Tgd>& tgds) {
  RelationId bound = 0;
  for (const Tgd& tgd : tgds) {
    for (const Atom& atom : tgd.body) bound = std::max(bound, atom.relation);
    for (const Atom& atom : tgd.head) bound = std::max(bound, atom.relation);
  }
  std::vector<TgdFootprint> out(tgds.size());
  for (size_t d = 0; d < tgds.size(); ++d) {
    out[d].reads.assign(bound + 1, false);
    out[d].writes.assign(bound + 1, false);
    for (const Atom& atom : tgds[d].body) out[d].reads[atom.relation] = true;
    for (const Atom& atom : tgds[d].head) {
      // Head relations are both written (apply inserts) and read (the
      // restricted engine's head-satisfaction probe).
      out[d].reads[atom.relation] = true;
      out[d].writes[atom.relation] = true;
    }
  }
  return out;
}

TgdPlan CompileTgd(const Tgd& tgd, const CompilerHints& hints) {
  TgdPlan plan;
  plan.apply = BuildApplyTemplate(tgd);
  plan.apply.overlay = AnalyzeHeadOverlay(tgd);
  plan.body = CompileBody(tgd.body, tgd.var_count, {}, hints);
  plan.head = CompileBody(tgd.head, tgd.var_count, plan.apply.body_bound,
                          hints);
  return plan;
}

EgdPlan CompileEgd(const Egd& egd, const CompilerHints& hints) {
  EgdPlan plan;
  plan.body = CompileBody(egd.body, egd.var_count, {}, hints);
  plan.left_var = egd.left_var;
  plan.right_var = egd.right_var;
  return plan;
}

std::shared_ptr<const CompiledSetting> CompileSetting(
    const std::vector<Tgd>& tgds, const std::vector<Egd>& egds,
    const CompilerHints& hints) {
  auto compiled = std::make_shared<CompiledSetting>();
  compiled->tgds.reserve(tgds.size());
  for (const Tgd& tgd : tgds) compiled->tgds.push_back(CompileTgd(tgd, hints));
  compiled->egds.reserve(egds.size());
  for (const Egd& egd : egds) compiled->egds.push_back(CompileEgd(egd, hints));
  compiled->footprints = ComputeTgdFootprints(tgds);
  compiled->fingerprint = SettingFingerprint(tgds, egds);
  return compiled;
}

std::string DumpPlans(const CompiledSetting& compiled,
                      const std::vector<Tgd>& tgds,
                      const std::vector<Egd>& egds, const Schema& schema,
                      const SymbolTable& symbols) {
  std::string out;
  for (size_t d = 0; d < compiled.tgds.size() && d < tgds.size(); ++d) {
    const TgdPlan& plan = compiled.tgds[d];
    out += StrCat("tgd #", d, ": ", tgds[d].ToString(schema, symbols), "\n");
    out += StrCat("  head_width=", plan.apply.head_width,
                  " fresh_per_trigger=", plan.apply.fresh_per_trigger, "\n");
    out += " body:\n";
    DumpBody(plan.body, schema, tgds[d].var_names, &out);
    AppendBodyCodeDump(plan.body.code, schema, tgds[d].var_names, &out);
    out += " head (universals bound):\n";
    DumpSteps(plan.head.full, schema, tgds[d].var_names, &out);
  }
  for (size_t d = 0; d < compiled.egds.size() && d < egds.size(); ++d) {
    out += StrCat("egd #", d, ": ", egds[d].ToString(schema, symbols), "\n");
    out += " body:\n";
    DumpBody(compiled.egds[d].body, schema, egds[d].var_names, &out);
    AppendBodyCodeDump(compiled.egds[d].body.code, schema,
                       egds[d].var_names, &out);
  }
  out += StrCat("fingerprint: ", compiled.fingerprint, "\n");
  return out;
}

bool ForceInterpreter() {
  static const bool force = [] {
    const char* env = std::getenv("PDX_FORCE_INTERPRETER");
    return env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
  }();
  return force;
}

}  // namespace plan
}  // namespace pdx
