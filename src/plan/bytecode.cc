#include "plan/bytecode.h"

#include <algorithm>

#include "base/string_util.h"
#include "plan/ir.h"

namespace pdx {
namespace plan {

namespace {

Instr SlotInstr(const SlotOp& op) {
  Instr instr;
  switch (op.kind) {
    case SlotOp::kBind: instr.op = Instr::kBind; break;
    case SlotOp::kCheckVar: instr.op = Instr::kCheckVar; break;
    case SlotOp::kCheckConst: instr.op = Instr::kCheckConst; break;
  }
  instr.pos = static_cast<int16_t>(op.pos);
  instr.var = op.var;
  instr.key = op.key;
  return instr;
}

// Emits the program for `steps`: per step a loop header followed by its
// slot instrs, then a kEmit terminator. Returns the entry offset.
uint32_t EmitSteps(const std::vector<JoinStep>& steps,
                   std::vector<Instr>* code) {
  const uint32_t entry = static_cast<uint32_t>(code->size());
  for (const JoinStep& step : steps) {
    Instr header;
    switch (step.access.kind) {
      case AccessPath::kScan: header.op = Instr::kScan; break;
      case AccessPath::kProbeConst: header.op = Instr::kProbeConst; break;
      case AccessPath::kProbeVar: header.op = Instr::kProbeVar; break;
    }
    header.nops = static_cast<uint16_t>(step.ops.size());
    header.pos = static_cast<int16_t>(step.access.pos);
    header.atom_index = step.atom_index;
    header.relation = step.relation;
    header.var = step.access.var;
    header.key = step.access.key;
    code->push_back(header);
    for (const SlotOp& op : step.ops) code->push_back(SlotInstr(op));
  }
  Instr emit;
  emit.op = Instr::kEmit;
  code->push_back(emit);
  return entry;
}

const char* OpName(Instr::Op op) {
  switch (op) {
    case Instr::kScan: return "scan";
    case Instr::kProbeConst: return "probe-const";
    case Instr::kProbeVar: return "probe-var";
    case Instr::kBind: return "bind";
    case Instr::kCheckVar: return "check-var";
    case Instr::kCheckConst: return "check-const";
    case Instr::kEmit: return "emit";
  }
  return "?";
}

std::string CodeVarName(const std::vector<std::string>& names, VariableId v) {
  if (v >= 0 && static_cast<size_t>(v) < names.size() && !names[v].empty()) {
    return names[v];
  }
  return StrCat("v", v);
}

// Disassembles the instruction range [begin, end) stopping after kEmit.
// Returns the offset just past the last printed instruction.
uint32_t DumpRange(const BodyCode& code, uint32_t begin, const Schema& schema,
                   const std::vector<std::string>& var_names,
                   std::string* out) {
  uint32_t ip = begin;
  while (ip < code.code.size()) {
    const Instr& instr = code.code[ip];
    *out += StrCat("      ", ip, ": ", OpName(instr.op));
    switch (instr.op) {
      case Instr::kScan:
        *out += StrCat(" ", schema.relation_name(instr.relation), " atom#",
                       instr.atom_index, " nops=", instr.nops);
        break;
      case Instr::kProbeConst:
        *out += StrCat(" ", schema.relation_name(instr.relation), "[",
                       instr.pos, "]=const atom#", instr.atom_index,
                       " nops=", instr.nops);
        break;
      case Instr::kProbeVar:
        *out += StrCat(" ", schema.relation_name(instr.relation), "[",
                       instr.pos, "]=", CodeVarName(var_names, instr.var),
                       " atom#", instr.atom_index, " nops=", instr.nops);
        break;
      case Instr::kBind:
      case Instr::kCheckVar:
        *out += StrCat(" [", instr.pos, "] ",
                       CodeVarName(var_names, instr.var));
        break;
      case Instr::kCheckConst:
        *out += StrCat(" [", instr.pos, "]=const");
        break;
      case Instr::kEmit:
        break;
    }
    out->push_back('\n');
    ++ip;
    if (instr.op == Instr::kEmit) break;
  }
  return ip;
}

}  // namespace

// Derives the ExistsProbe descriptor from the already-lowered full
// program: valid only for a single index-accessed join level, where an
// existence check is a point lookup. kBind on an unbound variable at run
// time makes its position unconstrained; the runtime fast path decides
// bound-ness per call, so every non-probe slot is recorded here with its
// variable (or constant) and the decode cost is paid once.
void DeriveExistsProbe(BodyCode* out) {
  const Instr* code = out->code.data();
  const Instr& h = code[out->full_entry];
  if (h.op != Instr::kProbeConst && h.op != Instr::kProbeVar) return;
  const uint32_t ops_end = out->full_entry + 1 + h.nops;
  if (code[ops_end].op != Instr::kEmit) return;  // > 1 join level
  ExistsProbe& probe = out->exists;
  probe.relation = h.relation;
  probe.pos = h.pos;
  if (h.op == Instr::kProbeConst) {
    probe.var = -1;
    probe.key = h.key;
  } else {
    probe.var = h.var;
  }
  probe.slots.reserve(h.nops);
  for (uint32_t ip = out->full_entry + 1; ip < ops_end; ++ip) {
    const Instr& instr = code[ip];
    ExistsProbe::Slot slot;
    slot.pos = instr.pos;
    if (instr.op == Instr::kCheckConst) {
      slot.var = -1;
      slot.key = instr.key;
    } else {
      slot.var = instr.var;
    }
    probe.slots.push_back(slot);
  }
  probe.valid = true;
}

BodyCode LowerBody(const BodyPlan& plan) {
  BodyCode out;
  out.full_entry = EmitSteps(plan.full, &out.code);
  out.max_depth = static_cast<int>(plan.full.size());
  out.variants.reserve(plan.variants.size());
  for (const DeltaVariant& variant : plan.variants) {
    BodyCode::Variant v;
    v.pivot_begin = static_cast<uint32_t>(out.code.size());
    for (const SlotOp& op : variant.pivot_ops) {
      out.code.push_back(SlotInstr(op));
    }
    v.pivot_end = static_cast<uint32_t>(out.code.size());
    v.entry = EmitSteps(variant.rest, &out.code);
    out.max_depth =
        std::max(out.max_depth, static_cast<int>(variant.rest.size()));
    out.variants.push_back(v);
  }
  DeriveExistsProbe(&out);
  return out;
}

void AppendBodyCodeDump(const BodyCode& code, const Schema& schema,
                        const std::vector<std::string>& var_names,
                        std::string* out) {
  *out += StrCat("  bytecode (", code.code.size(), " instrs, max_depth=",
                 code.max_depth, "):\n");
  *out += StrCat("    full @", code.full_entry, ":\n");
  DumpRange(code, code.full_entry, schema, var_names, out);
  for (size_t pivot = 0; pivot < code.variants.size(); ++pivot) {
    const BodyCode::Variant& v = code.variants[pivot];
    *out += StrCat("    delta pivot atom#", pivot, " slots @[",
                   v.pivot_begin, ",", v.pivot_end, ") rest @", v.entry,
                   ":\n");
    for (uint32_t ip = v.pivot_begin; ip < v.pivot_end; ++ip) {
      const Instr& instr = code.code[ip];
      *out += StrCat("      ", ip, ": ", OpName(instr.op), " [", instr.pos,
                     "]");
      if (instr.op != Instr::kCheckConst) {
        *out += StrCat(" ", CodeVarName(var_names, instr.var));
      }
      out->push_back('\n');
    }
    DumpRange(code, v.entry, schema, var_names, out);
  }
}

}  // namespace plan
}  // namespace pdx
