#ifndef PDX_PLAN_PLAN_CACHE_H_
#define PDX_PLAN_PLAN_CACHE_H_

// Process-wide cache of compiled settings, keyed by structural
// fingerprint (plan/compiler.h, SettingFingerprint). A fingerprint fully
// determines the compiled plan bytes — plans are pure functions of the
// hashed structure — so a hit is always sound to reuse, across chase
// rounds, solver node re-chases and repeated pdxcli invocations alike.
//
// Observability: pdx_plan_compiled_total / pdx_plan_cache_{hits,misses}_total
// counters, a pdx_plan_compile_micros histogram, and a "compile_setting"
// span per miss — all compiled to no-ops under -DPDX_OBS_NOOP=ON.

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "logic/dependency.h"
#include "plan/compiler.h"
#include "plan/ir.h"

namespace pdx {
namespace plan {

class PlanCache {
 public:
  // The process-wide cache (never destroyed, like the metrics registry).
  static PlanCache& Global();

  // Returns the compiled plans for (tgds, egds), compiling on first sight.
  // Plans inside the returned setting are indexed parallel to the input
  // vectors. Thread-safe.
  std::shared_ptr<const CompiledSetting> GetOrCompile(
      const std::vector<Tgd>& tgds, const std::vector<Egd>& egds);

  // Cumulative cache statistics (mirrors the pdx_plan_* counters; kept on
  // the cache too so tests can assert without a metrics registry).
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t compiled = 0;
  };
  Stats stats() const;

  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::shared_ptr<const CompiledSetting>> cache_;
  Stats stats_;
};

}  // namespace plan
}  // namespace pdx

#endif  // PDX_PLAN_PLAN_CACHE_H_
