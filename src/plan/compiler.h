#ifndef PDX_PLAN_COMPILER_H_
#define PDX_PLAN_COMPILER_H_

// The dependency compiler's pass pipeline: lowers Tgd/Egd ASTs into the
// plan IR of plan/ir.h. Three passes per conjunction:
//
//   1. Atom reordering by selectivity heuristics — greedy: at each step
//      pick the pending atom with the most bound terms (constants plus
//      variables bound by earlier steps), tie-broken by relation
//      cardinality hints when provided (smaller first) and finally by
//      original atom index, so compilation is deterministic.
//   2. Index selection against Instance's existing accessors — each step
//      gets an access path: probe a bound-variable position (preferred:
//      join keys narrow with the binding, and the executor picks the raw
//      TuplesWithValueAt or class-aware TuplesWithResolvedValueAt lane at
//      run time depending on Instance::has_merges), else probe a constant
//      position, else scan.
//   3. Delta specialization — one pivot-rotation variant per body atom,
//      so EnumerateMatchesDeltaPartition's pivot semantics (atoms before
//      an additive pivot confined to pre-delta facts) execute through the
//      plan without re-deriving anything per partition.
//
// Plans are pure functions of dependency structure (never of instance
// contents), so a setting compiles once and is reusable for the life of
// the process — see plan/plan_cache.h.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "logic/dependency.h"
#include "plan/ir.h"

namespace pdx {
namespace plan {

// Optional compiler hints. `relation_cardinality[r]` is an expected tuple
// count for relation r used only to tie-break atom ordering; plans must
// stay correct (and are byte-identical) for any instance contents, so the
// default — no hints — is what the cache-backed entry points use.
struct CompilerHints {
  std::vector<size_t> relation_cardinality;
};

// Structural fingerprint of a setting: a deterministic hash over the
// shapes the compiler reads (atom relations, term kinds, variable ids,
// packed constants, existential masks, egd equated variables). Two
// dependency sets with equal fingerprints compile to byte-identical plans,
// which is what makes the fingerprint a sound cache key.
uint64_t SettingFingerprint(const std::vector<Tgd>& tgds,
                            const std::vector<Egd>& egds);

// Compiles one conjunction. `initially_bound` marks variables the caller
// will have bound before execution (empty vector = none); it shapes
// access-path selection and which variable occurrences become kBind ops.
BodyPlan CompileBody(const std::vector<Atom>& atoms, int var_count,
                     const std::vector<bool>& initially_bound,
                     const CompilerHints& hints = CompilerHints());

TgdPlan CompileTgd(const Tgd& tgd,
                   const CompilerHints& hints = CompilerHints());
EgdPlan CompileEgd(const Egd& egd,
                   const CompilerHints& hints = CompilerHints());

// Structural analysis of a tgd head for the sharded apply's overlay
// decide (see HeadOverlayPlan in plan/ir.h for the exactness conditions).
// Pure function of the head's shape; CompileTgd embeds the result in the
// apply template, and the interpreter path calls it directly.
HeadOverlayPlan AnalyzeHeadOverlay(const Tgd& tgd);

// Read/write relation footprints of a dependency set, indexed parallel to
// `tgds` and sized to the largest relation id any of them mentions.
// reads = body ∪ head relations, writes = head relations; the containment
// reads ⊇ writes makes footprint disjointness symmetric enough for the
// chase's topological scheduler (see FootprintsCompatible in chase.cc).
std::vector<TgdFootprint> ComputeTgdFootprints(const std::vector<Tgd>& tgds);

// Compiles a whole setting; fingerprint filled in.
std::shared_ptr<const CompiledSetting> CompileSetting(
    const std::vector<Tgd>& tgds, const std::vector<Egd>& egds,
    const CompilerHints& hints = CompilerHints());

// Human-readable plan dump (pdxcli --dump-plans and golden tests): one
// block per dependency with the chosen atom order, access paths and delta
// variants, rendered with schema relation names and the dependencies' own
// variable names.
std::string DumpPlans(const CompiledSetting& compiled,
                      const std::vector<Tgd>& tgds,
                      const std::vector<Egd>& egds, const Schema& schema,
                      const SymbolTable& symbols);

// True when the PDX_FORCE_INTERPRETER environment variable is set and
// non-"0": every plan consumer falls back to the interpreter regardless of
// ChaseOptions::compile_plans, so sanitizer passes can pin either
// execution path (tools/check.sh). Read once per process.
bool ForceInterpreter();

}  // namespace plan
}  // namespace pdx

#endif  // PDX_PLAN_COMPILER_H_
