#include "plan/plan_cache.h"

#include <chrono>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace pdx {
namespace plan {

namespace {

struct PlanMetrics {
  obs::Counter compiled;
  obs::Counter cache_hits;
  obs::Counter cache_misses;
  obs::Histogram compile_micros;

  static PlanMetrics& Get() {
    static PlanMetrics* m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      auto* metrics = new PlanMetrics();
      metrics->compiled = reg.GetCounter("pdx_plan_compiled_total");
      metrics->cache_hits = reg.GetCounter("pdx_plan_cache_hits_total");
      metrics->cache_misses = reg.GetCounter("pdx_plan_cache_misses_total");
      metrics->compile_micros = reg.GetHistogram(
          "pdx_plan_compile_micros", {50, 100, 250, 500, 1000, 2500, 5000,
                                      10000});
      return metrics;
    }();
    return *m;
  }
};

}  // namespace

PlanCache& PlanCache::Global() {
  static PlanCache* cache = new PlanCache();
  return *cache;
}

std::shared_ptr<const CompiledSetting> PlanCache::GetOrCompile(
    const std::vector<Tgd>& tgds, const std::vector<Egd>& egds) {
  PlanMetrics& metrics = PlanMetrics::Get();
  const uint64_t fp = SettingFingerprint(tgds, egds);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(fp);
    if (it != cache_.end()) {
      ++stats_.hits;
      metrics.cache_hits.Inc();
      return it->second;
    }
  }
  // Compile outside the lock: compilation is pure, so two threads racing
  // on the same fingerprint produce identical plans and the loser's copy
  // is simply dropped.
  obs::Span span(obs::Tracer::Global(), "compile_setting");
  span.AttrInt("tgds", static_cast<int64_t>(tgds.size()))
      .AttrInt("egds", static_cast<int64_t>(egds.size()))
      .AttrInt("fingerprint", static_cast<int64_t>(fp));
  const auto start = std::chrono::steady_clock::now();
  std::shared_ptr<const CompiledSetting> compiled =
      CompileSetting(tgds, egds);
  const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  metrics.compile_micros.Observe(static_cast<int64_t>(micros));
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = cache_.emplace(fp, std::move(compiled));
  if (inserted) {
    ++stats_.misses;
    ++stats_.compiled;
    metrics.cache_misses.Inc();
    metrics.compiled.Inc();
  } else {
    ++stats_.hits;
    metrics.cache_hits.Inc();
  }
  return it->second;
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

}  // namespace plan
}  // namespace pdx
