#ifndef PDX_PLAN_BYTECODE_H_
#define PDX_PLAN_BYTECODE_H_

// Linear bytecode lowered from a compiled BodyPlan (plan/ir.h): the final
// stage of the dependency compiler. The tree-shaped JoinStep/SlotOp plan
// is flattened into one contiguous instruction array that the register-
// style match VM in hom/match_vm.h executes without recursion, virtual
// dispatch, or per-call allocation.
//
// Layout: each join level is a loop-header instruction (kScan /
// kProbeConst / kProbeVar) carrying the candidate source, followed by
// `nops` slot instructions (kBind / kCheckVar / kCheckConst, the
// unification program), then either the next level's header or a kEmit
// terminator. Delta variants are alternate entry points into the same
// array: a pivot slot-instruction range [pivot_begin, pivot_end) run
// against the pivot tuple, then a `rest` program at `entry`.
//
// Lowering is mechanical — opcode semantics are exactly the JoinStep /
// SlotOp semantics the tree executor implements, including the runtime
// bind-or-check tolerance and probe-var scan degradation — so the VM and
// the tree executor enumerate identical match sets (the cross-validated
// contract behind the PDX_FORCE_TREE_EXEC kill switch).

#include <cstdint>
#include <string>
#include <vector>

#include "logic/atom.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace pdx {
namespace plan {

struct BodyPlan;

struct Instr {
  enum Op : uint8_t {
    // Loop headers (one per join level; `nops` slot instrs follow).
    kScan,        // iterate all tuples of `relation`
    kProbeConst,  // index probe at `pos` with `key`
    kProbeVar,    // index probe at `pos` with the bound value of `var`
    // Slot ops (the unification program of one level).
    kBind,        // bind `var` to tuple[pos] (or compare, if already bound)
    kCheckVar,    // compare tuple[pos] against the bound value of `var`
    kCheckConst,  // compare tuple[pos] against `key`
    // Terminator: a complete match is in the binding.
    kEmit,
  };
  Op op = kScan;
  uint16_t nops = 0;       // headers: number of slot instrs following
  int16_t pos = -1;        // probed / checked tuple position
  int32_t atom_index = -1; // headers: original body index (delta confinement)
  RelationId relation = -1;
  VariableId var = -1;
  Value key;
};

// Precomputed existence-probe descriptor for single-level programs with
// index access: the satisfaction fast path (VmHasMatch in hom/match_vm)
// collapses "does a match exist?" into one hash lookup, and this
// descriptor lets it skip re-decoding the instruction stream on every
// call. `var == -1` on the probe (or a slot) means the constant `key` is
// used instead of a binding value. Invalid (`valid == false`) whenever
// the program has more than one join level or scan access — the generic
// VM loop handles those.
struct ExistsProbe {
  struct Slot {
    int16_t pos = -1;
    VariableId var = -1;  // -1: compare against `key`
    Value key;
  };
  bool valid = false;
  RelationId relation = -1;
  int16_t pos = -1;      // probed tuple position
  VariableId var = -1;   // probe variable; -1: probe with `key`
  Value key;
  std::vector<Slot> slots;  // non-probe positions, in program order
};

// One BodyPlan's bytecode: the full program plus per-pivot delta variants,
// all in one array (entry-point offsets select the program).
struct BodyCode {
  struct Variant {
    uint32_t pivot_begin = 0;  // pivot slot instrs: [pivot_begin, pivot_end)
    uint32_t pivot_end = 0;
    uint32_t entry = 0;        // rest-of-join program (header or kEmit)
  };
  std::vector<Instr> code;
  uint32_t full_entry = 0;
  std::vector<Variant> variants;  // parallel to BodyPlan::variants
  int max_depth = 0;              // deepest loop nesting across programs
  ExistsProbe exists;             // full-program point-lookup descriptor
};

// Lowers `plan` (its full order and every delta variant) into bytecode.
BodyCode LowerBody(const BodyPlan& plan);

// Appends a human-readable disassembly to `out` (pdxcli --dump-plans).
void AppendBodyCodeDump(const BodyCode& code, const Schema& schema,
                        const std::vector<std::string>& var_names,
                        std::string* out);

}  // namespace plan
}  // namespace pdx

#endif  // PDX_PLAN_BYTECODE_H_
