#include "workload/graph_gen.h"

#include <algorithm>
#include <set>

#include "base/logging.h"

namespace pdx {

bool Graph::HasEdge(int u, int v) const {
  if (u > v) std::swap(u, v);
  for (const auto& [a, b] : edges) {
    if (a == u && b == v) return true;
  }
  return false;
}

Graph ErdosRenyi(int n, double p, Rng* rng) {
  PDX_CHECK(rng != nullptr);
  Graph g;
  g.node_count = n;
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng->Bernoulli(p)) g.edges.emplace_back(u, v);
    }
  }
  return g;
}

Graph PlantClique(Graph g, int k, Rng* rng) {
  PDX_CHECK(rng != nullptr);
  PDX_CHECK_LE(k, g.node_count);
  // Sample k distinct nodes by partial Fisher-Yates.
  std::vector<int> nodes(g.node_count);
  for (int i = 0; i < g.node_count; ++i) nodes[i] = i;
  for (int i = 0; i < k; ++i) {
    int j = i + static_cast<int>(rng->UniformInt(
                    static_cast<uint32_t>(g.node_count - i)));
    std::swap(nodes[i], nodes[j]);
  }
  std::set<std::pair<int, int>> edge_set(g.edges.begin(), g.edges.end());
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) {
      int u = std::min(nodes[i], nodes[j]);
      int v = std::max(nodes[i], nodes[j]);
      edge_set.emplace(u, v);
    }
  }
  g.edges.assign(edge_set.begin(), edge_set.end());
  return g;
}

Graph PathGraph(int n) {
  Graph g;
  g.node_count = n;
  for (int i = 0; i + 1 < n; ++i) g.edges.emplace_back(i, i + 1);
  return g;
}

Graph CompleteGraph(int n) {
  Graph g;
  g.node_count = n;
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) g.edges.emplace_back(u, v);
  }
  return g;
}

namespace {

// Adjacency matrix helper for the brute-force oracles.
std::vector<std::vector<bool>> AdjacencyMatrix(const Graph& g) {
  std::vector<std::vector<bool>> adj(g.node_count,
                                     std::vector<bool>(g.node_count, false));
  for (const auto& [u, v] : g.edges) {
    adj[u][v] = true;
    adj[v][u] = true;
  }
  return adj;
}

bool ExtendClique(const std::vector<std::vector<bool>>& adj,
                  std::vector<int>& clique, int next, int k) {
  if (static_cast<int>(clique.size()) == k) return true;
  for (int v = next; v < static_cast<int>(adj.size()); ++v) {
    bool adjacent_to_all = true;
    for (int u : clique) {
      if (!adj[u][v]) {
        adjacent_to_all = false;
        break;
      }
    }
    if (!adjacent_to_all) continue;
    clique.push_back(v);
    if (ExtendClique(adj, clique, v + 1, k)) return true;
    clique.pop_back();
  }
  return false;
}

bool ColorNodes(const std::vector<std::vector<bool>>& adj,
                std::vector<int>& colors, int node) {
  if (node == static_cast<int>(adj.size())) return true;
  for (int c = 0; c < 3; ++c) {
    bool clashes = false;
    for (int u = 0; u < node; ++u) {
      if (adj[u][node] && colors[u] == c) {
        clashes = true;
        break;
      }
    }
    if (clashes) continue;
    colors[node] = c;
    if (ColorNodes(adj, colors, node + 1)) return true;
  }
  return false;
}

}  // namespace

bool HasClique(const Graph& g, int k) {
  if (k <= 0) return true;
  if (k == 1) return g.node_count >= 1;
  if (k > g.node_count) return false;
  std::vector<std::vector<bool>> adj = AdjacencyMatrix(g);
  std::vector<int> clique;
  return ExtendClique(adj, clique, 0, k);
}

bool Is3Colorable(const Graph& g) {
  if (g.node_count == 0) return true;
  std::vector<std::vector<bool>> adj = AdjacencyMatrix(g);
  std::vector<int> colors(g.node_count, -1);
  return ColorNodes(adj, colors, 0);
}

}  // namespace pdx
