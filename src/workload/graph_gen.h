#ifndef PDX_WORKLOAD_GRAPH_GEN_H_
#define PDX_WORKLOAD_GRAPH_GEN_H_

#include <utility>
#include <vector>

#include "workload/random.h"

namespace pdx {

// A simple undirected graph (no self-loops) on nodes 0..node_count-1.
// Edges are stored once per unordered pair {u, v} with u < v.
struct Graph {
  int node_count = 0;
  std::vector<std::pair<int, int>> edges;

  bool HasEdge(int u, int v) const;
};

// Erdős–Rényi G(n, p).
Graph ErdosRenyi(int n, double p, Rng* rng);

// Adds all edges among k randomly chosen nodes of `g` (planting a clique).
Graph PlantClique(Graph g, int k, Rng* rng);

// A simple path 0-1-...-n-1.
Graph PathGraph(int n);

// The complete graph K_n.
Graph CompleteGraph(int n);

// Brute-force reference: does `g` contain a clique of size k? Exponential;
// for test oracles on small graphs only.
bool HasClique(const Graph& g, int k);

// Brute-force reference: is `g` 3-colorable? Exponential; small graphs
// only.
bool Is3Colorable(const Graph& g);

}  // namespace pdx

#endif  // PDX_WORKLOAD_GRAPH_GEN_H_
