#ifndef PDX_WORKLOAD_CHURN_H_
#define PDX_WORKLOAD_CHURN_H_

#include <cstdint>
#include <vector>

#include "relational/instance.h"
#include "relational/tuple.h"
#include "workload/random.h"

namespace pdx {

struct ChurnOptions {
  // Per-batch delete count: round(delete_rate × currently-live facts),
  // clamped to what is live. 0.10 models the "≤10% churn" regime
  // bench_stream's incremental-vs-full claim is stated for.
  double delete_rate = 0.05;
  // Per-batch insert count: round(insert_rate × currently-live facts),
  // clamped to what the universe still has dead.
  double insert_rate = 0.05;
  // Fraction of each batch's inserts drawn from previously deleted facts
  // (delete→re-insert cycles — the trigger-ledger re-admission stress)
  // rather than from never-yet-live universe facts. Either pool being
  // empty falls through to the other.
  double overlap = 0.25;
  uint64_t seed = 1;
};

// One ±Δ batch of a churn stream. Deletes are always facts live before
// the batch and adds facts dead before it, so within a batch the two sets
// never mention the same fact.
struct ChurnBatch {
  std::vector<Fact> adds;
  std::vector<Fact> deletes;
};

// A deterministic insert/delete stream over a fixed fact universe: the
// workload behind the streaming differential tests (tests/stream_test.cc),
// the churn fuzz lanes and bench_stream. The universe is partitioned into
// live facts (initially universe[0, initially_live)), retired facts
// (deleted at least once) and fresh facts (never yet live); each Next()
// deletes a uniform sample of the live set and revives retired/fresh facts
// per ChurnOptions. The stream tracks the net live set, so a differential
// harness can replay it into a from-scratch engine at any point.
class ChurnStream {
 public:
  // `universe` must be duplicate-free facts valid for `schema`-less use —
  // the stream never interprets tuples, it only shuffles ownership.
  ChurnStream(std::vector<Fact> universe, size_t initially_live,
              ChurnOptions options = ChurnOptions());

  // Generates the next ±Δ batch and applies it to the tracked live set.
  // A batch can be empty on both sides (everything dead and overlap
  // exhausted); callers looping forever should check.
  ChurnBatch Next();

  size_t live_count() const { return live_.size(); }
  int batches_generated() const { return batches_; }

  // The current net live set, in universe order (deterministic).
  std::vector<Fact> LiveFacts() const;

  // The net live set materialized as an instance over `schema`: what a
  // from-scratch engine should be fed to cross-validate an incremental
  // one that consumed every batch so far.
  Instance NetInstance(const Schema* schema) const;

 private:
  std::vector<Fact> universe_;
  std::vector<size_t> live_;     // indexes into universe_, unordered
  std::vector<size_t> retired_;  // deleted at least once, currently dead
  std::vector<size_t> fresh_;    // never yet live
  ChurnOptions options_;
  Rng rng_;
  int batches_ = 0;
};

}  // namespace pdx

#endif  // PDX_WORKLOAD_CHURN_H_
