#include "workload/setting_gen.h"

#include <vector>

#include "base/string_util.h"

namespace pdx {

namespace {

std::vector<RelationSchema> MakeRelations(const char* prefix, int count,
                                          int max_arity, Rng* rng) {
  std::vector<RelationSchema> relations;
  relations.reserve(count);
  for (int i = 0; i < count; ++i) {
    relations.push_back(RelationSchema{
        StrCat(prefix, i),
        1 + static_cast<int>(rng->UniformInt(static_cast<uint32_t>(max_arity)))});
  }
  return relations;
}

// Renders an atom string for relation `rel` using a term chooser callback.
template <typename TermFn>
std::string RenderAtom(const RelationSchema& rel, TermFn&& term) {
  std::vector<std::string> terms;
  terms.reserve(rel.arity);
  for (int i = 0; i < rel.arity; ++i) terms.push_back(term());
  return StrCat(rel.name, "(", StrJoin(terms, ","), ")");
}

}  // namespace

StatusOr<GeneratedSetting> MakeRandomLavSetting(const SettingGenOptions& opts,
                                                Rng* rng,
                                                SymbolTable* symbols) {
  std::vector<RelationSchema> sources =
      MakeRelations("S", opts.source_relations, opts.max_arity, rng);
  std::vector<RelationSchema> targets =
      MakeRelations("T", opts.target_relations, opts.max_arity, rng);

  std::vector<std::string> st_lines;
  for (int t = 0; t < opts.st_tgd_count; ++t) {
    int body_atoms =
        1 + static_cast<int>(rng->UniformInt(
                static_cast<uint32_t>(opts.max_body_atoms)));
    int var_pool = 0;
    std::vector<std::string> body;
    for (int a = 0; a < body_atoms; ++a) {
      const RelationSchema& rel =
          sources[rng->UniformInt(static_cast<uint32_t>(sources.size()))];
      body.push_back(RenderAtom(rel, [&] {
        // Reuse an earlier variable half the time to create joins.
        if (var_pool > 0 && rng->Bernoulli(0.5)) {
          return StrCat("x", rng->UniformInt(static_cast<uint32_t>(var_pool)));
        }
        return StrCat("x", var_pool++);
      }));
    }
    const RelationSchema& head_rel =
        targets[rng->UniformInt(static_cast<uint32_t>(targets.size()))];
    int existential = 0;
    std::string head = RenderAtom(head_rel, [&] {
      if (var_pool > 0 && rng->Bernoulli(0.6)) {
        return StrCat("x", rng->UniformInt(static_cast<uint32_t>(var_pool)));
      }
      return StrCat("e", existential++);  // implicitly existential
    });
    st_lines.push_back(StrCat(StrJoin(body, " & "), " -> ", head, "."));
  }

  std::vector<std::string> ts_lines;
  for (int t = 0; t < opts.ts_tgd_count; ++t) {
    // LAV: single target literal with pairwise-distinct variables.
    const RelationSchema& body_rel =
        targets[rng->UniformInt(static_cast<uint32_t>(targets.size()))];
    int var_pool = 0;
    std::string body = RenderAtom(body_rel, [&] { return StrCat("x",
                                                                var_pool++); });
    int head_atoms =
        1 + static_cast<int>(rng->UniformInt(
                static_cast<uint32_t>(opts.max_body_atoms)));
    std::vector<std::string> head;
    int existential = 0;
    for (int a = 0; a < head_atoms; ++a) {
      const RelationSchema& rel =
          sources[rng->UniformInt(static_cast<uint32_t>(sources.size()))];
      head.push_back(RenderAtom(rel, [&] {
        if (rng->Bernoulli(0.6)) {
          return StrCat("x", rng->UniformInt(static_cast<uint32_t>(var_pool)));
        }
        return StrCat("e", existential++);
      }));
    }
    ts_lines.push_back(StrCat(body, " -> ", StrJoin(head, " & "), "."));
  }

  std::string sigma_st = StrJoin(st_lines, "\n");
  std::string sigma_ts = StrJoin(ts_lines, "\n");
  PDX_ASSIGN_OR_RETURN(
      PdeSetting setting,
      PdeSetting::Create(sources, targets, sigma_st, sigma_ts, "", symbols));
  GeneratedSetting generated(std::move(setting));
  generated.sigma_st = std::move(sigma_st);
  generated.sigma_ts = std::move(sigma_ts);
  return generated;
}

StatusOr<GeneratedSetting> MakeRandomFullStSetting(
    const SettingGenOptions& opts, Rng* rng, SymbolTable* symbols) {
  std::vector<RelationSchema> sources =
      MakeRelations("S", opts.source_relations, opts.max_arity, rng);
  std::vector<RelationSchema> targets =
      MakeRelations("T", opts.target_relations, opts.max_arity, rng);

  std::vector<std::string> st_lines;
  for (int t = 0; t < opts.st_tgd_count; ++t) {
    int body_atoms =
        1 + static_cast<int>(rng->UniformInt(
                static_cast<uint32_t>(opts.max_body_atoms)));
    int var_pool = 0;
    std::vector<std::string> body;
    for (int a = 0; a < body_atoms; ++a) {
      const RelationSchema& rel =
          sources[rng->UniformInt(static_cast<uint32_t>(sources.size()))];
      body.push_back(RenderAtom(rel, [&] {
        if (var_pool > 0 && rng->Bernoulli(0.5)) {
          return StrCat("x", rng->UniformInt(static_cast<uint32_t>(var_pool)));
        }
        return StrCat("x", var_pool++);
      }));
    }
    const RelationSchema& head_rel =
        targets[rng->UniformInt(static_cast<uint32_t>(targets.size()))];
    // Full tgd: head terms only from body variables.
    std::string head = RenderAtom(head_rel, [&] {
      return StrCat("x", rng->UniformInt(static_cast<uint32_t>(var_pool)));
    });
    st_lines.push_back(StrCat(StrJoin(body, " & "), " -> ", head, "."));
  }

  std::vector<std::string> ts_lines;
  for (int t = 0; t < opts.ts_tgd_count; ++t) {
    int body_atoms =
        1 + static_cast<int>(rng->UniformInt(
                static_cast<uint32_t>(opts.max_body_atoms)));
    int var_pool = 0;
    std::vector<std::string> body;
    for (int a = 0; a < body_atoms; ++a) {
      const RelationSchema& rel =
          targets[rng->UniformInt(static_cast<uint32_t>(targets.size()))];
      body.push_back(RenderAtom(rel, [&] {
        if (var_pool > 0 && rng->Bernoulli(0.4)) {
          return StrCat("x", rng->UniformInt(static_cast<uint32_t>(var_pool)));
        }
        return StrCat("x", var_pool++);
      }));
    }
    int head_atoms =
        1 + static_cast<int>(rng->UniformInt(
                static_cast<uint32_t>(opts.max_body_atoms)));
    std::vector<std::string> head;
    int existential = 0;
    for (int a = 0; a < head_atoms; ++a) {
      const RelationSchema& rel =
          sources[rng->UniformInt(static_cast<uint32_t>(sources.size()))];
      head.push_back(RenderAtom(rel, [&] {
        if (rng->Bernoulli(0.6)) {
          return StrCat("x", rng->UniformInt(static_cast<uint32_t>(var_pool)));
        }
        return StrCat("e", existential++);
      }));
    }
    ts_lines.push_back(
        StrCat(StrJoin(body, " & "), " -> ", StrJoin(head, " & "), "."));
  }

  std::string sigma_st = StrJoin(st_lines, "\n");
  std::string sigma_ts = StrJoin(ts_lines, "\n");
  PDX_ASSIGN_OR_RETURN(
      PdeSetting setting,
      PdeSetting::Create(sources, targets, sigma_st, sigma_ts, "", symbols));
  GeneratedSetting generated(std::move(setting));
  generated.sigma_st = std::move(sigma_st);
  generated.sigma_ts = std::move(sigma_ts);
  return generated;
}

namespace {

Instance MakeRandomInstanceForSide(const PdeSetting& setting, bool source_side,
                                   int facts, int constant_pool, Rng* rng,
                                   SymbolTable* symbols) {
  Instance instance = setting.EmptyInstance();
  std::vector<RelationId> relations;
  for (RelationId r = 0; r < setting.schema().relation_count(); ++r) {
    if (setting.is_source(r) == source_side) relations.push_back(r);
  }
  if (relations.empty()) return instance;
  std::vector<Value> pool;
  pool.reserve(constant_pool);
  for (int i = 0; i < constant_pool; ++i) {
    pool.push_back(symbols->InternConstant(StrCat("c", i)));
  }
  for (int f = 0; f < facts; ++f) {
    RelationId r =
        relations[rng->UniformInt(static_cast<uint32_t>(relations.size()))];
    Tuple tuple;
    tuple.reserve(setting.schema().arity(r));
    for (int i = 0; i < setting.schema().arity(r); ++i) {
      tuple.push_back(pool[rng->UniformInt(static_cast<uint32_t>(
          pool.size()))]);
    }
    instance.AddFact(r, std::move(tuple));
  }
  return instance;
}

}  // namespace

Instance MakeRandomSourceInstance(const PdeSetting& setting, int facts,
                                  int constant_pool, Rng* rng,
                                  SymbolTable* symbols) {
  return MakeRandomInstanceForSide(setting, /*source_side=*/true, facts,
                                   constant_pool, rng, symbols);
}

Instance MakeRandomTargetInstance(const PdeSetting& setting, int facts,
                                  int constant_pool, Rng* rng,
                                  SymbolTable* symbols) {
  return MakeRandomInstanceForSide(setting, /*source_side=*/false, facts,
                                   constant_pool, rng, symbols);
}

}  // namespace pdx
