#ifndef PDX_WORKLOAD_GENOMICS_H_
#define PDX_WORKLOAD_GENOMICS_H_

#include "base/status.h"
#include "pde/setting.h"
#include "relational/instance.h"
#include "relational/value.h"
#include "workload/random.h"

namespace pdx {

// The paper's motivating scenario (Section 1): an authoritative genomic
// source peer (Swiss-Prot-like) exchanging data with a university target
// peer that restricts what it accepts. The real Swiss-Prot data are
// proprietary-ish and irrelevant to the algorithms, so this generator
// produces a synthetic equivalent exercising the same constraint shapes:
//
//   Source:  SPProtein(acc, name, organism)
//            SPAnnotation(acc, goterm)
//   Target:  Protein(acc, name)
//            Organism(acc, organism)
//            Annotation(acc, goterm, evidence)
//
//   Σ_st:  SPProtein(a,n,o)  -> Protein(a,n) & Organism(a,o)
//          SPAnnotation(a,g) -> ∃e Annotation(a,g,e)
//   Σ_ts:  Protein(a,n)      -> ∃o SPProtein(a,n,o)
//          Annotation(a,g,e) -> ∃n,o SPProtein(a,n,o) & SPAnnotation(a,g)
//
// The ts-tgds say the university only keeps proteins and annotations that
// Swiss-Prot backs. Both ts-tgds are single-literal with distinct
// variables, so the setting is in C_tract via conditions 1 + 2.1.
StatusOr<PdeSetting> MakeGenomicsSetting(SymbolTable* symbols);

struct GenomicsWorkloadOptions {
  int proteins = 50;
  int annotations_per_protein = 2;
  // Number of pre-existing target-side annotations NOT backed by the
  // source. Any value > 0 makes (I, J) unsolvable — the university already
  // holds data it should not accept, modelling the "no solution" case.
  int unbacked_target_annotations = 0;
  // Number of target-side annotations copied from the source (consistent
  // pre-existing data).
  int backed_target_annotations = 5;
};

struct GenomicsWorkload {
  Instance source;
  Instance target;
};

// Generates a synthetic (I, J) pair for the genomics setting.
GenomicsWorkload MakeGenomicsWorkload(const PdeSetting& setting,
                                      const GenomicsWorkloadOptions& opts,
                                      Rng* rng, SymbolTable* symbols);

}  // namespace pdx

#endif  // PDX_WORKLOAD_GENOMICS_H_
