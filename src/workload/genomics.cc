#include "workload/genomics.h"

#include "base/string_util.h"

namespace pdx {

StatusOr<PdeSetting> MakeGenomicsSetting(SymbolTable* symbols) {
  return PdeSetting::Create(
      {{"SPProtein", 3}, {"SPAnnotation", 2}},
      {{"Protein", 2}, {"Organism", 2}, {"Annotation", 3}},
      "SPProtein(a,n,o) -> Protein(a,n) & Organism(a,o).\n"
      "SPAnnotation(a,g) -> exists e: Annotation(a,g,e).",
      "Protein(a,n) -> exists o: SPProtein(a,n,o).\n"
      "Annotation(a,g,e) -> exists n,o: SPProtein(a,n,o) & SPAnnotation(a,g).",
      "", symbols);
}

GenomicsWorkload MakeGenomicsWorkload(const PdeSetting& setting,
                                      const GenomicsWorkloadOptions& opts,
                                      Rng* rng, SymbolTable* symbols) {
  const Schema& schema = setting.schema();
  RelationId sp_protein = schema.FindRelation("SPProtein").value();
  RelationId sp_annotation = schema.FindRelation("SPAnnotation").value();
  RelationId protein = schema.FindRelation("Protein").value();
  RelationId annotation = schema.FindRelation("Annotation").value();

  GenomicsWorkload workload{setting.EmptyInstance(), setting.EmptyInstance()};

  std::vector<Value> accessions;
  std::vector<std::pair<Value, Value>> source_annotations;
  const char* organisms[] = {"human", "mouse", "yeast", "ecoli", "fly"};
  for (int i = 0; i < opts.proteins; ++i) {
    Value acc = symbols->InternConstant(StrCat("P", 10000 + i));
    Value name = symbols->InternConstant(StrCat("protein_", i));
    Value organism = symbols->InternConstant(
        organisms[rng->UniformInt(5)]);
    accessions.push_back(acc);
    workload.source.AddFact(sp_protein, {acc, name, organism});
    for (int a = 0; a < opts.annotations_per_protein; ++a) {
      Value go = symbols->InternConstant(
          StrCat("GO_", rng->UniformInt(100)));
      workload.source.AddFact(sp_annotation, {acc, go});
      source_annotations.emplace_back(acc, go);
    }
  }

  // Pre-existing, source-backed target annotations (consistent J data).
  Value curated = symbols->InternConstant("curated");
  for (int i = 0;
       i < opts.backed_target_annotations &&
       i < static_cast<int>(source_annotations.size());
       ++i) {
    const auto& [acc, go] = source_annotations[rng->UniformInt(
        static_cast<uint32_t>(source_annotations.size()))];
    workload.target.AddFact(annotation, {acc, go, curated});
  }

  // Unbacked target data: annotations (and a protein) Swiss-Prot does not
  // know about; these violate Σ_ts permanently.
  for (int i = 0; i < opts.unbacked_target_annotations; ++i) {
    Value acc = symbols->InternConstant(StrCat("LOCAL", i));
    Value go = symbols->InternConstant(StrCat("GO_LOCAL_", i));
    workload.target.AddFact(annotation, {acc, go, curated});
    if (i == 0) {
      workload.target.AddFact(
          protein, {acc, symbols->InternConstant("local_protein")});
    }
  }

  return workload;
}

}  // namespace pdx
