#ifndef PDX_WORKLOAD_BIBLIOGRAPHY_H_
#define PDX_WORKLOAD_BIBLIOGRAPHY_H_

#include "base/status.h"
#include "pde/setting.h"
#include "relational/instance.h"
#include "relational/value.h"
#include "workload/random.h"

namespace pdx {

// A multi-PDE scenario: two source peers with different authority feed one
// library catalog (Section 2's multi-PDE construction, merged into a
// single setting).
//
//   Peer DBLP (authoritative for publication years):
//     sources:  DblpPaper(id, title, year), DblpAuthor(id, person)
//     Σ_st:     DblpPaper(p,t,y) -> Pub(p,t) & PubYear(p,y)
//               DblpAuthor(p,a)  -> PubAuthor(p,a)
//     Σ_ts:     PubYear(p,y) -> exists t: DblpPaper(p,t,y)
//               (the catalog accepts years only if DBLP backs them)
//     Σ_t:      PubYear(p,y) & PubYear(p,y2) -> y = y2
//               (publication year is functional)
//
//   Peer ArXiv (contributes, no restrictions):
//     sources:  ArxivPreprint(id, title), ArxivAuthor(id, person)
//     Σ_st:     ArxivPreprint(p,t) -> Pub(p,t)
//               ArxivAuthor(p,a)   -> PubAuthor(p,a)
//
// The target egd makes the setting leave C_tract, so this scenario
// exercises the generic solver and the repair machinery on a realistic
// shape.
StatusOr<PdeSetting> MakeBibliographySetting(SymbolTable* symbols);

struct BibliographyWorkloadOptions {
  int dblp_papers = 20;
  int arxiv_papers = 10;
  // Preprints that are also DBLP papers (same id, same title).
  int overlap = 5;
  int authors_per_paper = 2;
  // Adds a second DBLP row for one paper with a *different* year. The
  // chase then derives two PubYear facts for that paper and the egd fails:
  // (I, J) becomes unsolvable for every J, i.e. it has zero repairs.
  bool inject_year_conflict = false;
  // Pre-existing catalog entries with a year DBLP does not back: the
  // target's own data violates Σ_ts permanently (repairable by dropping
  // them).
  int unbacked_catalog_years = 0;
};

struct BibliographyWorkload {
  Instance source;
  Instance target;
};

BibliographyWorkload MakeBibliographyWorkload(
    const PdeSetting& setting, const BibliographyWorkloadOptions& opts,
    Rng* rng, SymbolTable* symbols);

}  // namespace pdx

#endif  // PDX_WORKLOAD_BIBLIOGRAPHY_H_
