#include "workload/churn.h"

#include <algorithm>

#include "base/logging.h"

namespace pdx {

ChurnStream::ChurnStream(std::vector<Fact> universe, size_t initially_live,
                         ChurnOptions options)
    : universe_(std::move(universe)),
      options_(options),
      rng_(options.seed) {
  PDX_CHECK_LE(initially_live, universe_.size());
  live_.reserve(initially_live);
  for (size_t i = 0; i < initially_live; ++i) live_.push_back(i);
  fresh_.reserve(universe_.size() - initially_live);
  for (size_t i = initially_live; i < universe_.size(); ++i) {
    fresh_.push_back(i);
  }
}

ChurnBatch ChurnStream::Next() {
  ChurnBatch batch;
  ++batches_;
  // Deletes: a uniform sample of the live set, swap-removed so the pick
  // stays O(1) per fact.
  size_t deletes = std::min(
      live_.size(),
      static_cast<size_t>(options_.delete_rate *
                              static_cast<double>(live_.size()) +
                          0.5));
  for (size_t k = 0; k < deletes; ++k) {
    size_t pick = rng_.UniformInt(static_cast<uint32_t>(live_.size()));
    size_t idx = live_[pick];
    live_[pick] = live_.back();
    live_.pop_back();
    retired_.push_back(idx);
    batch.deletes.push_back(universe_[idx]);
  }
  // Inserts: sized against the post-delete live count, each drawn from
  // the retired pool (re-insertion) with probability `overlap`, else from
  // the fresh pool; an empty pool falls through to the other. Facts
  // deleted *this* batch are eligible for re-insertion only next batch
  // (they were pushed onto retired_ above — exclude them so a batch's
  // adds and deletes never overlap).
  size_t inserts = static_cast<size_t>(
      options_.insert_rate * static_cast<double>(live_.size()) + 0.5);
  const size_t reinsertable = retired_.size() - deletes;
  size_t from_retired_cap = reinsertable;
  for (size_t k = 0; k < inserts; ++k) {
    std::vector<size_t>* pool = nullptr;
    if (rng_.Bernoulli(options_.overlap)) {
      pool = from_retired_cap > 0 ? &retired_ : &fresh_;
    } else {
      pool = !fresh_.empty() ? &fresh_ : (from_retired_cap > 0 ? &retired_
                                                               : nullptr);
    }
    if (pool == &retired_ && from_retired_cap == 0) pool = nullptr;
    if (pool == nullptr || pool->empty()) break;
    const size_t bound =
        pool == &retired_ ? from_retired_cap : pool->size();
    size_t pick = rng_.UniformInt(static_cast<uint32_t>(bound));
    size_t idx = (*pool)[pick];
    if (pool == &retired_) {
      --from_retired_cap;
      (*pool)[pick] = (*pool)[from_retired_cap];
      (*pool)[from_retired_cap] = pool->back();
    } else {
      (*pool)[pick] = pool->back();
    }
    pool->pop_back();
    live_.push_back(idx);
    batch.adds.push_back(universe_[idx]);
  }
  return batch;
}

std::vector<Fact> ChurnStream::LiveFacts() const {
  std::vector<size_t> sorted = live_;
  std::sort(sorted.begin(), sorted.end());
  std::vector<Fact> facts;
  facts.reserve(sorted.size());
  for (size_t idx : sorted) facts.push_back(universe_[idx]);
  return facts;
}

Instance ChurnStream::NetInstance(const Schema* schema) const {
  Instance instance(schema);
  for (const Fact& fact : LiveFacts()) {
    instance.AddFact(fact.relation, fact.tuple);
  }
  return instance;
}

}  // namespace pdx
