// Rng is header-only; this file anchors the target in the build.
#include "workload/random.h"
