#include "workload/reductions.h"

#include "base/string_util.h"
#include "logic/parser.h"

namespace pdx {

namespace {

// Interns "a1".."ak" (the fresh clique slots) and returns them.
std::vector<Value> CliqueSlots(int k, SymbolTable* symbols) {
  std::vector<Value> slots;
  slots.reserve(k);
  for (int i = 1; i <= k; ++i) {
    slots.push_back(symbols->InternConstant(StrCat("a", i)));
  }
  return slots;
}

// Interns "v0".."v{n-1}" for graph nodes.
std::vector<Value> NodeValues(int n, SymbolTable* symbols) {
  std::vector<Value> nodes;
  nodes.reserve(n);
  for (int i = 0; i < n; ++i) {
    nodes.push_back(symbols->InternConstant(StrCat("v", i)));
  }
  return nodes;
}

// Adds E(u,v) and E(v,u) for every edge of g.
void AddSymmetricEdges(const Graph& g, const std::vector<Value>& nodes,
                       RelationId e, Instance* instance) {
  for (const auto& [u, v] : g.edges) {
    instance->AddFact(e, {nodes[u], nodes[v]});
    instance->AddFact(e, {nodes[v], nodes[u]});
  }
}

}  // namespace

StatusOr<PdeSetting> MakeCliqueSetting(SymbolTable* symbols) {
  return PdeSetting::Create(
      {{"D", 2}, {"S", 2}, {"E", 2}}, {{"P", 4}},
      "D(x,y) -> exists z,w: P(x,z,y,w).",
      "P(x,z,y,w) -> E(z,w).\n"
      "P(x,z,y,w) & P(x,z2,y2,w2) -> S(z,z2).\n"
      "P(x,z,y,w) & P(y,z2,y2,w2) -> S(w,z2).",
      "", symbols);
}

Instance MakeCliqueSourceInstance(const PdeSetting& setting, const Graph& g,
                                  int k, SymbolTable* symbols) {
  Instance instance = setting.EmptyInstance();
  RelationId d = setting.schema().FindRelation("D").value();
  RelationId s = setting.schema().FindRelation("S").value();
  RelationId e = setting.schema().FindRelation("E").value();
  std::vector<Value> slots = CliqueSlots(k, symbols);
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      if (i != j) instance.AddFact(d, {slots[i], slots[j]});
    }
  }
  std::vector<Value> nodes = NodeValues(g.node_count, symbols);
  for (const Value& v : nodes) instance.AddFact(s, {v, v});
  AddSymmetricEdges(g, nodes, e, &instance);
  return instance;
}

StatusOr<UnionQuery> MakeCliqueCertainQuery(const PdeSetting& setting,
                                            SymbolTable* symbols) {
  return ParseUnionQuery("q() :- P(x,x,x,x).", setting.schema(), symbols);
}

StatusOr<PdeSetting> MakeEgdBoundarySetting(SymbolTable* symbols) {
  return PdeSetting::Create(
      {{"D", 2}, {"E", 2}}, {{"P", 4}},
      "D(x,y) -> exists z,w: P(x,z,y,w).",
      "P(x,z,y,w) -> E(z,w).",
      "P(x,z,y,w) & P(x,z2,y2,w2) -> z = z2.\n"
      "P(x,z,y,w) & P(y,z2,y2,w2) -> w = z2.",
      symbols);
}

Instance MakeEgdBoundarySourceInstance(const PdeSetting& setting,
                                       const Graph& g, int k,
                                       SymbolTable* symbols) {
  Instance instance = setting.EmptyInstance();
  RelationId d = setting.schema().FindRelation("D").value();
  RelationId e = setting.schema().FindRelation("E").value();
  std::vector<Value> slots = CliqueSlots(k, symbols);
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      if (i != j) instance.AddFact(d, {slots[i], slots[j]});
    }
  }
  std::vector<Value> nodes = NodeValues(g.node_count, symbols);
  AddSymmetricEdges(g, nodes, e, &instance);
  return instance;
}

StatusOr<PdeSetting> MakeTargetTgdBoundarySetting(SymbolTable* symbols) {
  return PdeSetting::Create(
      {{"D", 2}, {"S", 2}, {"E", 2}}, {{"P", 4}, {"Sp", 2}},
      "S(z,w) -> Sp(z,w).\n"
      "D(x,y) -> exists z,w: P(x,z,y,w).",
      "Sp(z,z2) -> S(z,z2).\n"
      "P(x,z,y,w) -> E(z,w).",
      "P(x,z,y,w) & P(x,z2,y2,w2) -> Sp(z,z2).\n"
      "P(x,z,y,w) & P(y,z2,y2,w2) -> Sp(w,z2).",
      symbols);
}

Instance MakeTargetTgdBoundarySourceInstance(const PdeSetting& setting,
                                             const Graph& g, int k,
                                             SymbolTable* symbols) {
  Instance instance = setting.EmptyInstance();
  RelationId d = setting.schema().FindRelation("D").value();
  RelationId s = setting.schema().FindRelation("S").value();
  RelationId e = setting.schema().FindRelation("E").value();
  std::vector<Value> slots = CliqueSlots(k, symbols);
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      if (i != j) instance.AddFact(d, {slots[i], slots[j]});
    }
  }
  std::vector<Value> nodes = NodeValues(g.node_count, symbols);
  for (const Value& v : nodes) instance.AddFact(s, {v, v});
  AddSymmetricEdges(g, nodes, e, &instance);
  return instance;
}

StatusOr<PdeSetting> MakeThreeColSetting(SymbolTable* symbols) {
  return PdeSetting::Create(
      {{"E", 2}, {"R", 1}, {"G", 1}, {"B", 1}}, {{"Ep", 2}, {"C", 2}},
      "E(x,y) -> exists u: C(x,u).\n"
      "E(x,y) -> Ep(x,y).",
      "Ep(x,y) & C(x,u) & C(y,v) -> "
      "(R(u) & B(v)) | (R(u) & G(v)) | (B(u) & G(v)) | "
      "(B(u) & R(v)) | (G(u) & R(v)) | (G(u) & B(v)).",
      "", symbols);
}

Instance MakeThreeColSourceInstance(const PdeSetting& setting, const Graph& g,
                                    SymbolTable* symbols) {
  Instance instance = setting.EmptyInstance();
  RelationId e = setting.schema().FindRelation("E").value();
  RelationId r = setting.schema().FindRelation("R").value();
  RelationId gg = setting.schema().FindRelation("G").value();
  RelationId b = setting.schema().FindRelation("B").value();
  std::vector<Value> nodes = NodeValues(g.node_count, symbols);
  AddSymmetricEdges(g, nodes, e, &instance);
  instance.AddFact(r, {symbols->InternConstant("red")});
  instance.AddFact(gg, {symbols->InternConstant("green")});
  instance.AddFact(b, {symbols->InternConstant("blue")});
  return instance;
}

}  // namespace pdx
