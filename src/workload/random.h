#ifndef PDX_WORKLOAD_RANDOM_H_
#define PDX_WORKLOAD_RANDOM_H_

#include <cstdint>

namespace pdx {

// A small deterministic PRNG (splitmix64) for workload generation.
// Deterministic across platforms so tests and benchmarks are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ull) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform integer in [0, bound); bound must be positive.
  uint32_t UniformInt(uint32_t bound) {
    return static_cast<uint32_t>(Next() % bound);
  }

  // Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool Bernoulli(double p) { return UniformDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace pdx

#endif  // PDX_WORKLOAD_RANDOM_H_
