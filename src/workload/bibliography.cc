#include "workload/bibliography.h"

#include "base/string_util.h"
#include "pde/multi_pde.h"

namespace pdx {

StatusOr<PdeSetting> MakeBibliographySetting(SymbolTable* symbols) {
  std::vector<PeerSpec> peers = {
      // DBLP: authoritative for years.
      {{{"DblpPaper", 3}, {"DblpAuthor", 2}},
       "DblpPaper(p,t,y) -> Pub(p,t) & PubYear(p,y).\n"
       "DblpAuthor(p,a) -> PubAuthor(p,a).",
       "PubYear(p,y) -> exists t: DblpPaper(p,t,y).",
       "PubYear(p,y) & PubYear(p,y2) -> y = y2."},
      // ArXiv: contributes without restrictions.
      {{{"ArxivPreprint", 2}, {"ArxivAuthor", 2}},
       "ArxivPreprint(p,t) -> Pub(p,t).\n"
       "ArxivAuthor(p,a) -> PubAuthor(p,a).",
       "", ""},
  };
  return MergeMultiPde(
      peers, {{"Pub", 2}, {"PubYear", 2}, {"PubAuthor", 2}}, symbols);
}

BibliographyWorkload MakeBibliographyWorkload(
    const PdeSetting& setting, const BibliographyWorkloadOptions& opts,
    Rng* rng, SymbolTable* symbols) {
  const Schema& schema = setting.schema();
  RelationId dblp_paper = schema.FindRelation("DblpPaper").value();
  RelationId dblp_author = schema.FindRelation("DblpAuthor").value();
  RelationId arxiv_preprint = schema.FindRelation("ArxivPreprint").value();
  RelationId arxiv_author = schema.FindRelation("ArxivAuthor").value();
  RelationId pub_year = schema.FindRelation("PubYear").value();

  BibliographyWorkload workload{setting.EmptyInstance(),
                                setting.EmptyInstance()};

  auto paper_id = [&](int i) {
    return symbols->InternConstant(StrCat("paper", i));
  };
  auto title = [&](int i) {
    return symbols->InternConstant(StrCat("title", i));
  };
  auto person = [&](uint32_t i) {
    return symbols->InternConstant(StrCat("person", i));
  };
  auto year = [&](int y) {
    return symbols->InternConstant(StrCat(1990 + y));
  };

  std::vector<Value> dblp_ids;
  for (int i = 0; i < opts.dblp_papers; ++i) {
    Value id = paper_id(i);
    dblp_ids.push_back(id);
    workload.source.AddFact(dblp_paper,
                            {id, title(i), year(rng->UniformInt(30))});
    for (int a = 0; a < opts.authors_per_paper; ++a) {
      workload.source.AddFact(dblp_author,
                              {id, person(rng->UniformInt(40))});
    }
  }
  // ArXiv preprints: the first `overlap` share ids/titles with DBLP.
  for (int i = 0; i < opts.arxiv_papers; ++i) {
    int shared = i < opts.overlap ? i : opts.dblp_papers + i;
    Value id = paper_id(shared);
    workload.source.AddFact(arxiv_preprint, {id, title(shared)});
    for (int a = 0; a < opts.authors_per_paper; ++a) {
      workload.source.AddFact(arxiv_author,
                              {id, person(rng->UniformInt(40))});
    }
  }

  if (opts.inject_year_conflict && !dblp_ids.empty()) {
    // Same paper, second edition with another year: the egd will fail.
    workload.source.AddFact(
        dblp_paper, {dblp_ids[0], symbols->InternConstant("title0_reprint"),
                     symbols->InternConstant("2099")});
  }

  for (int i = 0; i < opts.unbacked_catalog_years; ++i) {
    // A catalog year DBLP does not back (fresh paper id).
    workload.target.AddFact(
        pub_year, {symbols->InternConstant(StrCat("localpaper", i)),
                   symbols->InternConstant("1900")});
  }
  return workload;
}

}  // namespace pdx
