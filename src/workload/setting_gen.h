#ifndef PDX_WORKLOAD_SETTING_GEN_H_
#define PDX_WORKLOAD_SETTING_GEN_H_

#include <string>

#include "base/status.h"
#include "pde/setting.h"
#include "relational/instance.h"
#include "relational/value.h"
#include "workload/random.h"

namespace pdx {

// Parameters for random C_tract setting generation.
struct SettingGenOptions {
  int source_relations = 3;
  int target_relations = 3;
  int max_arity = 3;        // arities drawn from [1, max_arity]
  int st_tgd_count = 3;
  int ts_tgd_count = 3;
  int max_body_atoms = 2;   // for st-tgds (and ts heads)
};

// A generated setting together with the textual programs used to build it
// (useful for debugging failed property tests).
struct GeneratedSetting {
  PdeSetting setting;
  std::string sigma_st;
  std::string sigma_ts;

  explicit GeneratedSetting(PdeSetting s) : setting(std::move(s)) {}
};

// Generates a random setting whose Σ_ts tgds are LAV dependencies (single
// target literal, no repeated variables): conditions 1 and 2.1 of
// Definition 9 hold by construction (Corollary 2 territory).
StatusOr<GeneratedSetting> MakeRandomLavSetting(const SettingGenOptions& opts,
                                                Rng* rng,
                                                SymbolTable* symbols);

// Generates a random setting whose Σ_st tgds are full (no existential
// variables) while Σ_ts tgds are arbitrary: condition 2.2 holds by
// Corollary 1's argument (the only marked variables are ts-existentials,
// which never occur in the LHS).
StatusOr<GeneratedSetting> MakeRandomFullStSetting(
    const SettingGenOptions& opts, Rng* rng, SymbolTable* symbols);

// Populates the source relations of `setting` with `facts` random facts
// over a pool of `constant_pool` constants (named "c0", "c1", ...).
Instance MakeRandomSourceInstance(const PdeSetting& setting, int facts,
                                  int constant_pool, Rng* rng,
                                  SymbolTable* symbols);

// Populates the target relations similarly (for non-empty J scenarios).
Instance MakeRandomTargetInstance(const PdeSetting& setting, int facts,
                                  int constant_pool, Rng* rng,
                                  SymbolTable* symbols);

}  // namespace pdx

#endif  // PDX_WORKLOAD_SETTING_GEN_H_
