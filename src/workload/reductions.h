#ifndef PDX_WORKLOAD_REDUCTIONS_H_
#define PDX_WORKLOAD_REDUCTIONS_H_

#include "base/status.h"
#include "logic/conjunctive_query.h"
#include "pde/setting.h"
#include "relational/instance.h"
#include "relational/value.h"
#include "workload/graph_gen.h"

namespace pdx {

// ---------------------------------------------------------------------------
// Theorem 3: the CLIQUE reduction.
//
// Source schema: D/2 (inequality over k fresh elements), S/2 (the equality
// relation on V), E/2 (the edge relation, stored symmetrically).
// Target schema: P/4. Σ_t = ∅.
//
//   Σ_st:  D(x,y) -> ∃z,w P(x,z,y,w)
//   Σ_ts:  P(x,z,y,w) -> E(z,w)
//          P(x,z,y,w) & P(x,z2,y2,w2)  -> S(z,z2)
//          P(x,z,y,w) & P(y,z2,y2,w2)  -> S(w,z2)
//
// The third ts-tgd (tying the w associated with y in one tuple to the z
// associated with y in its own tuples) is required for the reduction to be
// correct as an if-and-only-if; the paper's prose states only the first
// two but describes exactly this association semantics ("an element of
// a_1..a_k cannot be associated with two distinct nodes"). Tests validate
// the equivalence against a brute-force clique oracle. Like the paper's
// setting, this one satisfies condition 1 of Definition 9 but violates
// both 2.1 and 2.2, and its relation-level dependency graph is acyclic.
// ---------------------------------------------------------------------------

// Builds the CLIQUE PDE setting.
StatusOr<PdeSetting> MakeCliqueSetting(SymbolTable* symbols);

// Builds the source instance I(G, k): D = inequality on fresh a_1..a_k,
// S = {(v,v) : v ∈ V}, E = edges of G in both directions.
Instance MakeCliqueSourceInstance(const PdeSetting& setting, const Graph& g,
                                  int k, SymbolTable* symbols);

// The Boolean query q = ∃x P(x,x,x,x) whose certain answer is coNP-hard
// (false iff G has a k-clique, for the instance above).
StatusOr<UnionQuery> MakeCliqueCertainQuery(const PdeSetting& setting,
                                            SymbolTable* symbols);

// ---------------------------------------------------------------------------
// Section 4 tightness: minimal relaxations of C_tract that are NP-hard.
// ---------------------------------------------------------------------------

// Variant (a): Σ_st / Σ_ts satisfy conditions 1 and 2.1, but Σ_t contains
// egds enforcing the association uniqueness:
//   Σ_st:  D(x,y) -> ∃z,w P(x,z,y,w)
//   Σ_t:   P(x,z,y,w) & P(x,z2,y2,w2) -> z = z2
//          P(x,z,y,w) & P(y,z2,y2,w2) -> w = z2
//   Σ_ts:  P(x,z,y,w) -> E(z,w)
// Source schema D/2, E/2 (no S needed: egds equate directly).
StatusOr<PdeSetting> MakeEgdBoundarySetting(SymbolTable* symbols);
Instance MakeEgdBoundarySourceInstance(const PdeSetting& setting,
                                       const Graph& g, int k,
                                       SymbolTable* symbols);

// Variant (b): Σ_st / Σ_ts satisfy conditions 1 and 2.1, but Σ_t contains
// full tgds routing the uniqueness check through a target copy S' of S:
//   Σ_st:  S(z,w) -> Sp(z,w);  D(x,y) -> ∃z,w P(x,z,y,w)
//   Σ_t:   P(x,z,y,w) & P(x,z2,y2,w2) -> Sp(z,z2)
//          P(x,z,y,w) & P(y,z2,y2,w2) -> Sp(w,z2)
//   Σ_ts:  Sp(z,z2) -> S(z,z2);  P(x,z,y,w) -> E(z,w)
StatusOr<PdeSetting> MakeTargetTgdBoundarySetting(SymbolTable* symbols);
Instance MakeTargetTgdBoundarySourceInstance(const PdeSetting& setting,
                                             const Graph& g, int k,
                                             SymbolTable* symbols);

// Variant (c): disjunction in a ts-tgd head crosses the boundary even with
// conditions 1 and 2.2 satisfied and Σ_t = ∅ (the 3-COLORABILITY setting):
//   Σ_st:  E(x,y) -> ∃u C(x,u);   E(x,y) -> Ep(x,y)
//   Σ_ts:  Ep(x,y) & C(x,u) & C(y,v) ->
//            (R(u) & B(v)) | (R(u) & G(v)) | (B(u) & G(v)) |
//            (B(u) & R(v)) | (G(u) & R(v)) | (G(u) & B(v))
// Source: E/2, R/1, G/1, B/1; target: Ep/2, C/2.
StatusOr<PdeSetting> MakeThreeColSetting(SymbolTable* symbols);
Instance MakeThreeColSourceInstance(const PdeSetting& setting, const Graph& g,
                                    SymbolTable* symbols);

}  // namespace pdx

#endif  // PDX_WORKLOAD_REDUCTIONS_H_
