#ifndef PDX_RELATIONAL_VALUE_H_
#define PDX_RELATIONAL_VALUE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/logging.h"

namespace pdx {

// A database value: either an interned *constant* or a *labeled null*.
//
// The paper's instances range over constants (Const) and labeled nulls
// introduced by the chase. Packing both into one word keeps tuples flat and
// hashable and removes all string handling from the rewriting hot paths;
// constant spellings live in a SymbolTable on the side.
class Value {
 public:
  // A default-constructed Value is constant #0; avoid relying on this.
  Value() : bits_(0) {}

  static Value Constant(uint32_t id) { return Value(uint64_t{id}); }
  static Value Null(uint32_t id) { return Value(kNullBit | uint64_t{id}); }

  bool is_null() const { return (bits_ & kNullBit) != 0; }
  bool is_constant() const { return !is_null(); }

  // The id within the value's kind (constant ids and null ids are separate
  // spaces).
  uint32_t id() const { return static_cast<uint32_t>(bits_ & 0xffffffffu); }

  // Raw packed representation, usable as a hash-map key.
  uint64_t packed() const { return bits_; }
  static Value FromPacked(uint64_t bits) { return Value(bits); }

  bool operator==(const Value& other) const { return bits_ == other.bits_; }
  bool operator!=(const Value& other) const { return bits_ != other.bits_; }
  bool operator<(const Value& other) const { return bits_ < other.bits_; }

 private:
  static constexpr uint64_t kNullBit = uint64_t{1} << 63;

  explicit Value(uint64_t bits) : bits_(bits) {}

  uint64_t bits_;
};

struct ValueHash {
  size_t operator()(const Value& v) const {
    // splitmix64-style finalizer: good dispersion for sequential ids.
    uint64_t x = v.packed();
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }
};

// Interns constant spellings and allocates fresh labeled nulls.
//
// One SymbolTable represents one "universe" of values; all instances,
// dependencies and queries that interact must share a SymbolTable.
class SymbolTable {
 public:
  SymbolTable() = default;

  // Not copyable: ids would silently diverge between copies.
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;
  SymbolTable(SymbolTable&& other) noexcept
      : ids_(std::move(other.ids_)),
        names_(std::move(other.names_)),
        next_null_id_(
            other.next_null_id_.load(std::memory_order_relaxed)) {}
  SymbolTable& operator=(SymbolTable&& other) noexcept {
    ids_ = std::move(other.ids_);
    names_ = std::move(other.names_);
    next_null_id_.store(other.next_null_id_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    return *this;
  }

  // Returns the constant for `name`, interning it on first use.
  Value InternConstant(std::string_view name);

  // Returns the constant for `name` if interned, or a negative result.
  // `found` may be null.
  Value LookupConstant(std::string_view name, bool* found) const;

  // Allocates a labeled null never seen before in this universe. Safe to
  // call from any thread: the id counter is a single relaxed fetch_add.
  Value FreshNull() { return Value::Null(ReserveNullRange(1)); }

  // Reserves `count` consecutive null ids [first, first + count) for the
  // caller's exclusive use and returns `first`. One lock-free fetch_add,
  // so pool workers can draw private ranges concurrently (the speculative
  // collect reserves one exact-size range per delta partition). Reserved
  // ids that are never turned into facts are simply retired — null ids
  // must be unique, not dense — but callers should keep retirement rare:
  // holes inflate every id-indexed structure downstream.
  uint32_t ReserveNullRange(uint32_t count) {
    return next_null_id_.fetch_add(count, std::memory_order_relaxed);
  }

  // Upper bound on null ids handed out so far (including retired ids that
  // never reached an instance).
  uint32_t null_count() const {
    return next_null_id_.load(std::memory_order_relaxed);
  }

  // Renders a value: the constant's spelling, or "_N<k>" for nulls.
  std::string ValueToString(Value v) const;

  size_t constant_count() const { return names_.size(); }

 private:
  std::unordered_map<std::string, uint32_t> ids_;
  std::vector<std::string> names_;
  std::atomic<uint32_t> next_null_id_{0};
};

}  // namespace pdx

#endif  // PDX_RELATIONAL_VALUE_H_
