#include "relational/instance_io.h"

#include <cctype>
#include <string>
#include <unordered_map>

#include "base/string_util.h"

namespace pdx {

namespace {

// Minimal hand-rolled scanner for the fact syntax. Kept separate from the
// dependency-language parser (logic/parser.*) because instances allow a
// wider constant lexicon (numbers, quoted strings) and null labels.
class FactScanner {
 public:
  explicit FactScanner(std::string_view text) : text_(text) {}

  void SkipSpaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        return;
      }
    }
  }

  bool AtEnd() {
    SkipSpaceAndComments();
    return pos_ >= text_.size();
  }

  bool Consume(char c) {
    SkipSpaceAndComments();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  // An identifier, number, quoted string, or `_`-label.
  StatusOr<std::string> ReadToken() {
    SkipSpaceAndComments();
    if (pos_ >= text_.size()) {
      return InvalidArgumentError("unexpected end of instance text");
    }
    char c = text_[pos_];
    if (c == '\'' || c == '"') {
      char quote = c;
      size_t start = ++pos_;
      while (pos_ < text_.size() && text_[pos_] != quote) ++pos_;
      if (pos_ >= text_.size()) {
        return InvalidArgumentError("unterminated quoted value");
      }
      std::string token(text_.substr(start, pos_ - start));
      ++pos_;
      return token;
    }
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) {
      return InvalidArgumentError(
          StrCat("unexpected character '", std::string(1, c), "' at offset ",
                 pos_));
    }
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '.')) {
      // '.' inside a token only for decimal-looking constants: stop at
      // '.' unless surrounded by digits.
      if (text_[pos_] == '.') {
        bool digit_before =
            pos_ > start &&
            std::isdigit(static_cast<unsigned char>(text_[pos_ - 1]));
        bool digit_after =
            pos_ + 1 < text_.size() &&
            std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]));
        if (!(digit_before && digit_after)) break;
      }
      ++pos_;
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  size_t offset() const { return pos_; }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<Instance> ParseInstance(std::string_view text, const Schema& schema,
                                 SymbolTable* symbols) {
  PDX_CHECK(symbols != nullptr);
  Instance instance(&schema);
  FactScanner scanner(text);
  std::unordered_map<std::string, Value> null_labels;
  while (!scanner.AtEnd()) {
    PDX_ASSIGN_OR_RETURN(std::string name, scanner.ReadToken());
    PDX_ASSIGN_OR_RETURN(RelationId relation, schema.FindRelation(name));
    if (!scanner.Consume('(')) {
      return InvalidArgumentError(
          StrCat("expected '(' after relation ", name));
    }
    Tuple tuple;
    if (!scanner.Consume(')')) {
      while (true) {
        PDX_ASSIGN_OR_RETURN(std::string token, scanner.ReadToken());
        if (!token.empty() && token[0] == '_') {
          auto [it, inserted] = null_labels.emplace(token, Value());
          if (inserted) it->second = symbols->FreshNull();
          tuple.push_back(it->second);
        } else {
          tuple.push_back(symbols->InternConstant(token));
        }
        if (scanner.Consume(')')) break;
        if (!scanner.Consume(',')) {
          return InvalidArgumentError(
              StrCat("expected ',' or ')' in fact for ", name));
        }
      }
    }
    if (static_cast<int>(tuple.size()) != schema.arity(relation)) {
      return InvalidArgumentError(
          StrCat("fact for ", name, " has ", tuple.size(),
                 " values, expected ", schema.arity(relation)));
    }
    instance.AddFact(relation, std::move(tuple));
    scanner.Consume('.');  // Trailing periods are optional separators.
  }
  return instance;
}

}  // namespace pdx
