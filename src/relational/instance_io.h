#ifndef PDX_RELATIONAL_INSTANCE_IO_H_
#define PDX_RELATIONAL_INSTANCE_IO_H_

#include <string_view>

#include "base/status.h"
#include "relational/instance.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace pdx {

// Parses a textual instance, e.g.:
//
//   E(a, b). E(b, c).
//   H(a, _x).            # `_`-prefixed values are labeled nulls
//   # comments run to end of line
//
// Relation names must exist in `schema` with matching arity. Constants are
// interned into `symbols`; each distinct `_`-label becomes one fresh null
// (fresh per call, so labels do not collide across calls).
StatusOr<Instance> ParseInstance(std::string_view text, const Schema& schema,
                                 SymbolTable* symbols);

}  // namespace pdx

#endif  // PDX_RELATIONAL_INSTANCE_IO_H_
