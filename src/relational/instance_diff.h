#ifndef PDX_RELATIONAL_INSTANCE_DIFF_H_
#define PDX_RELATIONAL_INSTANCE_DIFF_H_

#include <string>
#include <vector>

#include "relational/instance.h"
#include "relational/tuple.h"
#include "relational/value.h"

namespace pdx {

// Set difference of two instances over the same schema.
struct InstanceDiff {
  std::vector<Fact> added;    // in `after` but not `before`
  std::vector<Fact> removed;  // in `before` but not `after`

  bool empty() const { return added.empty() && removed.empty(); }
};

// Computes after \ before and before \ after (facts compared exactly;
// nulls by identity). Used e.g. to show what an exchange imported into
// the target.
InstanceDiff DiffInstances(const Instance& before, const Instance& after);

// Renders a unified-diff-style listing: "+ R(a,b)." / "- S(c).", sorted.
std::string DiffToString(const InstanceDiff& diff, const Schema& schema,
                         const SymbolTable& symbols);

}  // namespace pdx

#endif  // PDX_RELATIONAL_INSTANCE_DIFF_H_
