#ifndef PDX_RELATIONAL_FLAT_INDEX_H_
#define PDX_RELATIONAL_FLAT_INDEX_H_

// The flat storage primitives behind Instance's RelationStore: an
// open-addressing positional index (FlatIndex) and an open-addressing
// tuple dedup set (FlatTupleSet). Both use power-of-two capacities with
// linear probing and are plain-copyable, so RelationStore's copy-on-write
// clone stays a memberwise copy.
//
// FlatIndex maps a packed value to the list of tuple indexes holding that
// value at one position. Buckets store up to kInlineCap indexes inside the
// slot itself; larger buckets spill into a shared overflow arena owned by
// the index (grow-by-doubling; the abandoned region is reclaimed on the
// next rehash). Erase swaps the victim with the bucket's last entry and
// never tombstones the slot: a slot keeps its key with count == 0, which
// preserves probe chains without deletion markers (erases are rare — only
// RemoveFact and Substitute — while inserts dominate).
//
// Value::packed() never produces ~0ull (bit 63 is the null flag; bits
// 32..62 are always zero), so ~0ull is a safe empty-slot sentinel.

#include <cstdint>
#include <cstring>
#include <vector>

#include "base/logging.h"

namespace pdx {

// A read-only view of one index bucket: tuple indexes into
// Instance::tuples(relation). Invalidated by any mutation of the owning
// store (exactly like the bucket pointers it replaces).
class TupleIndexSpan {
 public:
  TupleIndexSpan() = default;
  TupleIndexSpan(const int32_t* data, size_t count)
      : data_(data), count_(count) {}

  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  int32_t operator[](size_t i) const { return data_[i]; }
  const int32_t* data() const { return data_; }
  const int32_t* begin() const { return data_; }
  const int32_t* end() const { return data_ + count_; }

 private:
  const int32_t* data_ = nullptr;
  size_t count_ = 0;
};

class FlatIndex {
 public:
  // The bucket for `key`, empty if absent. Never allocates.
  TupleIndexSpan Find(uint64_t key) const {
    if (slots_.empty()) return {};
    const size_t mask = slots_.size() - 1;
    size_t i = Mix(key) & mask;
    for (;;) {
      const Slot& s = slots_[i];
      if (s.key == key) {
        return {s.cap == 0 ? s.inline_ : overflow_.data() + s.off, s.count};
      }
      if (s.key == kEmptySlotKey) return {};
      i = (i + 1) & mask;
    }
  }

  // Appends `idx` to the bucket for `key` (a tuple index occurs at most
  // once per bucket by construction; not checked).
  void Add(uint64_t key, int32_t idx) {
    if (slots_.empty()) {
      Rehash(16);
    } else if ((used_ + 1) * 4 > slots_.size() * 3) {
      Rehash(slots_.size() * 2);
    }
    Append(FindOrClaim(key), idx);
  }

  // Removes `idx` from the bucket for `key` (swap with the bucket's last
  // entry). Returns false if absent.
  bool Erase(uint64_t key, int32_t idx) {
    Slot* s = FindSlot(key);
    if (s == nullptr) return false;
    int32_t* entries = MutableEntries(*s);
    for (uint32_t j = 0; j < s->count; ++j) {
      if (entries[j] == idx) {
        entries[j] = entries[s->count - 1];
        --s->count;
        return true;
      }
    }
    return false;
  }

  // Rewrites the entry `from` in the bucket for `key` to `to` (the
  // swap-with-last repoint of RemoveFact). No-op if absent.
  void Repoint(uint64_t key, int32_t from, int32_t to) {
    Slot* s = FindSlot(key);
    if (s == nullptr) return;
    int32_t* entries = MutableEntries(*s);
    for (uint32_t j = 0; j < s->count; ++j) {
      if (entries[j] == from) {
        entries[j] = to;
        return;
      }
    }
  }

  void Clear() {
    slots_.clear();
    overflow_.clear();
    used_ = 0;
  }

 private:
  static constexpr uint64_t kEmptySlotKey = ~0ull;
  static constexpr uint32_t kInlineCap = 4;

  struct Slot {
    uint64_t key = kEmptySlotKey;
    uint32_t count = 0;
    uint32_t cap = 0;  // 0: inline storage; else overflow region capacity
    uint32_t off = 0;  // overflow region offset (cap > 0)
    int32_t inline_[kInlineCap];
  };

  static uint64_t Mix(uint64_t x) {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  Slot* FindSlot(uint64_t key) {
    if (slots_.empty()) return nullptr;
    const size_t mask = slots_.size() - 1;
    size_t i = Mix(key) & mask;
    for (;;) {
      Slot& s = slots_[i];
      if (s.key == key) return &s;
      if (s.key == kEmptySlotKey) return nullptr;
      i = (i + 1) & mask;
    }
  }

  Slot* FindOrClaim(uint64_t key) {
    const size_t mask = slots_.size() - 1;
    size_t i = Mix(key) & mask;
    for (;;) {
      Slot& s = slots_[i];
      if (s.key == key) return &s;
      if (s.key == kEmptySlotKey) {
        s.key = key;
        ++used_;
        return &s;
      }
      i = (i + 1) & mask;
    }
  }

  int32_t* MutableEntries(Slot& s) {
    return s.cap == 0 ? s.inline_ : overflow_.data() + s.off;
  }

  void Append(Slot* s, int32_t idx) {
    if (s->cap == 0) {
      if (s->count < kInlineCap) {
        s->inline_[s->count++] = idx;
        return;
      }
      // Spill: move the inline entries into a fresh overflow region.
      Grow(s, kInlineCap * 2);
    } else if (s->count == s->cap) {
      Grow(s, s->cap * 2);
    }
    overflow_[s->off + s->count++] = idx;
  }

  // Moves a full bucket into a fresh overflow region of `cap` entries.
  // The old region (inline or overflow) is abandoned; Rehash() rebuilds
  // the arena compactly, which bounds the waste. The source is re-resolved
  // after the resize: when the bucket already lives in the arena, resize
  // may reallocate out from under a pre-computed pointer.
  void Grow(Slot* s, uint32_t cap) {
    const size_t off = overflow_.size();
    PDX_CHECK_LE(off + cap, size_t{1} << 32);
    const bool spilled = s->cap != 0;
    const uint32_t old_off = s->off;
    overflow_.resize(off + cap);
    const int32_t* src = spilled ? overflow_.data() + old_off : s->inline_;
    std::memcpy(overflow_.data() + off, src, s->count * sizeof(int32_t));
    s->cap = cap;
    s->off = static_cast<uint32_t>(off);
  }

  void Rehash(size_t new_capacity) {
    std::vector<Slot> old = std::move(slots_);
    std::vector<int32_t> old_overflow = std::move(overflow_);
    slots_.assign(new_capacity, Slot{});
    overflow_.clear();
    used_ = 0;
    const size_t mask = new_capacity - 1;
    for (const Slot& s : old) {
      if (s.key == kEmptySlotKey || s.count == 0) continue;
      size_t i = Mix(s.key) & mask;
      while (slots_[i].key != kEmptySlotKey) i = (i + 1) & mask;
      Slot& dst = slots_[i];
      dst.key = s.key;
      dst.count = s.count;
      ++used_;
      const int32_t* src =
          s.cap == 0 ? s.inline_ : old_overflow.data() + s.off;
      if (s.count <= kInlineCap) {
        std::memcpy(dst.inline_, src, s.count * sizeof(int32_t));
      } else {
        // Copied by hand rather than via Grow: src points into the old
        // arena, which resize cannot invalidate.
        uint32_t cap = kInlineCap * 2;
        while (cap < s.count) cap *= 2;
        const size_t off = overflow_.size();
        overflow_.resize(off + cap);
        std::memcpy(overflow_.data() + off, src, s.count * sizeof(int32_t));
        dst.cap = cap;
        dst.off = static_cast<uint32_t>(off);
      }
    }
  }

  std::vector<Slot> slots_;      // power-of-two size
  std::vector<int32_t> overflow_;
  size_t used_ = 0;              // occupied slots (count 0 included)
};

// Open-addressing dedup set over the owning store's tuple arena. Entries
// are (tuple hash, tuple index); equality is delegated to the caller (who
// can compare against the arena), so the set never stores tuple data.
// Erase uses backward-shift deletion, keeping probe chains tombstone-free.
class FlatTupleSet {
 public:
  // The index of the entry with `hash` for which `eq(idx)` holds, or -1.
  template <typename Eq>
  int32_t Find(uint64_t hash, const Eq& eq) const {
    if (entries_.empty()) return -1;
    const size_t mask = entries_.size() - 1;
    size_t i = static_cast<size_t>(hash) & mask;
    for (;;) {
      const Entry& e = entries_[i];
      if (e.idx < 0) return -1;
      if (e.hash == hash && eq(e.idx)) return e.idx;
      i = (i + 1) & mask;
    }
  }

  // Inserts (hash, idx); the caller guarantees no equal tuple is present.
  void Insert(uint64_t hash, int32_t idx) {
    if (entries_.empty()) {
      Rehash(16);
    } else if ((size_ + 1) * 4 > entries_.size() * 3) {
      Rehash(entries_.size() * 2);
    }
    const size_t mask = entries_.size() - 1;
    size_t i = static_cast<size_t>(hash) & mask;
    while (entries_[i].idx >= 0) i = (i + 1) & mask;
    entries_[i].hash = hash;
    entries_[i].idx = idx;
    ++size_;
  }

  // Removes the entry (hash, idx) if present (backward-shift deletion).
  void Erase(uint64_t hash, int32_t idx) {
    if (entries_.empty()) return;
    const size_t mask = entries_.size() - 1;
    size_t i = static_cast<size_t>(hash) & mask;
    for (;;) {
      const Entry& e = entries_[i];
      if (e.idx < 0) return;
      if (e.hash == hash && e.idx == idx) break;
      i = (i + 1) & mask;
    }
    size_t hole = i;
    size_t j = i;
    for (;;) {
      j = (j + 1) & mask;
      const Entry& e = entries_[j];
      if (e.idx < 0) break;
      const size_t home = static_cast<size_t>(e.hash) & mask;
      // e may fill the hole iff its home slot is not in the cyclic
      // interval (hole, j] — else moving it would break its probe chain.
      const bool home_between = hole <= j ? (home > hole && home <= j)
                                          : (home > hole || home <= j);
      if (!home_between) {
        entries_[hole] = e;
        hole = j;
      }
    }
    entries_[hole].idx = -1;
    --size_;
  }

  // Rewrites the entry (hash, from) to (hash, to): the dedup half of
  // RemoveFact's swap-with-last repoint.
  void Repoint(uint64_t hash, int32_t from, int32_t to) {
    if (entries_.empty()) return;
    const size_t mask = entries_.size() - 1;
    size_t i = static_cast<size_t>(hash) & mask;
    for (;;) {
      Entry& e = entries_[i];
      if (e.idx < 0) return;
      if (e.hash == hash && e.idx == from) {
        e.idx = to;
        return;
      }
      i = (i + 1) & mask;
    }
  }

  void Clear() {
    entries_.clear();
    size_ = 0;
  }

  size_t size() const { return size_; }

 private:
  struct Entry {
    uint64_t hash = 0;
    int32_t idx = -1;  // < 0: empty slot
  };

  void Rehash(size_t new_capacity) {
    std::vector<Entry> old = std::move(entries_);
    entries_.assign(new_capacity, Entry{});
    const size_t mask = new_capacity - 1;
    for (const Entry& e : old) {
      if (e.idx < 0) continue;
      size_t i = static_cast<size_t>(e.hash) & mask;
      while (entries_[i].idx >= 0) i = (i + 1) & mask;
      entries_[i] = e;
    }
  }

  std::vector<Entry> entries_;  // power-of-two size
  size_t size_ = 0;
};

}  // namespace pdx

#endif  // PDX_RELATIONAL_FLAT_INDEX_H_
