#include "relational/schema.h"

#include "base/string_util.h"

namespace pdx {

StatusOr<RelationId> Schema::AddRelation(std::string_view name, int arity) {
  if (arity <= 0) {
    return InvalidArgumentError(
        StrCat("relation ", name, " must have positive arity, got ", arity));
  }
  if (name.empty()) {
    return InvalidArgumentError("relation name must be non-empty");
  }
  std::string key(name);
  if (by_name_.count(key) > 0) {
    return AlreadyExistsError(StrCat("relation ", name, " already declared"));
  }
  RelationId id = static_cast<RelationId>(relations_.size());
  relations_.push_back(RelationSchema{std::move(key), arity});
  by_name_.emplace(relations_.back().name, id);
  return id;
}

StatusOr<RelationId> Schema::FindRelation(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) {
    return NotFoundError(StrCat("unknown relation ", name));
  }
  return it->second;
}

StatusOr<Schema> Schema::DisjointUnion(const Schema& left,
                                       const Schema& right) {
  Schema result = left;
  for (int i = 0; i < right.relation_count(); ++i) {
    const RelationSchema& r = right.relation(i);
    PDX_ASSIGN_OR_RETURN(RelationId id,
                         result.AddRelation(r.name, r.arity));
    (void)id;
  }
  return result;
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(relations_.size());
  for (const RelationSchema& r : relations_) {
    parts.push_back(StrCat(r.name, "/", r.arity));
  }
  return StrJoin(parts, ", ");
}

}  // namespace pdx
