#ifndef PDX_RELATIONAL_SNAPSHOT_H_
#define PDX_RELATIONAL_SNAPSHOT_H_

#include "relational/instance.h"

namespace pdx {

// A frozen view of an Instance at a point in time, taken in O(#relations):
// the snapshot shares every relation store with the instance it was taken
// from (copy-on-write), so neither taking it nor branching from it copies
// tuples or indexes.
//
// Branch() hands out an independently mutable Instance; the first mutation
// of a relation in a branch clones just that relation's store, leaving the
// snapshot (and every other branch) untouched. Search-based solvers
// (GenericSolver, Repairs) use this to explore alternatives in O(1) per
// branch instead of deep-copying the state.
//
// DeltaSince() pairs the snapshot with the delta machinery: given a branch
// descended from this snapshot, it returns the facts the branch added,
// which delta-restricted trigger evaluation can then scan exclusively.
class InstanceSnapshot {
 public:
  explicit InstanceSnapshot(const Instance& instance)
      : frozen_(instance), mark_(instance.TakeWatermark()) {}

  // The frozen state. Never mutated by branches.
  const Instance& get() const { return frozen_; }

  // The watermark at which the snapshot was taken.
  const InstanceWatermark& watermark() const { return mark_; }

  // A mutable copy sharing all stores with the snapshot (O(#relations)).
  Instance Branch() const { return frozen_; }

  // The facts `descendant` (a branch of this snapshot) has added since the
  // snapshot was taken; relations it rewrote count as entirely new.
  DeltaView DeltaSince(const Instance& descendant) const {
    return DeltaView(descendant, mark_);
  }

 private:
  Instance frozen_;
  InstanceWatermark mark_;
};

}  // namespace pdx

#endif  // PDX_RELATIONAL_SNAPSHOT_H_
