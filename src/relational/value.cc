#include "relational/value.h"

#include "base/string_util.h"

namespace pdx {

Value SymbolTable::InternConstant(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return Value::Constant(it->second);
  uint32_t id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return Value::Constant(id);
}

Value SymbolTable::LookupConstant(std::string_view name, bool* found) const {
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) {
    if (found != nullptr) *found = false;
    return Value::Constant(0);
  }
  if (found != nullptr) *found = true;
  return Value::Constant(it->second);
}

std::string SymbolTable::ValueToString(Value v) const {
  if (v.is_null()) return StrCat("_N", v.id());
  PDX_CHECK_LT(v.id(), names_.size()) << "constant id out of range";
  return names_[v.id()];
}

}  // namespace pdx
