#ifndef PDX_RELATIONAL_SCHEMA_H_
#define PDX_RELATIONAL_SCHEMA_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/status.h"

namespace pdx {

// Index of a relation symbol within a Schema.
using RelationId = int;

// One relation symbol with a fixed arity.
struct RelationSchema {
  std::string name;
  int arity = 0;
};

// A finite collection of relation symbols R = (R_1, ..., R_k).
//
// A PDE setting uses one combined Schema over (S, T); each relation is
// tagged source or target via PdeSetting, not here, so that generic code
// (chase, homomorphisms) is agnostic to sides.
class Schema {
 public:
  Schema() = default;

  // Adds a relation symbol. Fails with kAlreadyExists on duplicate names
  // and kInvalidArgument on non-positive arity.
  StatusOr<RelationId> AddRelation(std::string_view name, int arity);

  // Returns the id for `name` or kNotFound.
  StatusOr<RelationId> FindRelation(std::string_view name) const;

  int relation_count() const { return static_cast<int>(relations_.size()); }

  const RelationSchema& relation(RelationId id) const {
    PDX_CHECK_GE(id, 0);
    PDX_CHECK_LT(id, relation_count());
    return relations_[id];
  }

  const std::string& relation_name(RelationId id) const {
    return relation(id).name;
  }
  int arity(RelationId id) const { return relation(id).arity; }

  // Builds the union of two schemas with disjoint relation names.
  // Relations of `left` keep their ids; relations of `right` are shifted by
  // left.relation_count().
  static StatusOr<Schema> DisjointUnion(const Schema& left,
                                        const Schema& right);

  std::string ToString() const;

 private:
  std::vector<RelationSchema> relations_;
  std::unordered_map<std::string, RelationId> by_name_;
};

}  // namespace pdx

#endif  // PDX_RELATIONAL_SCHEMA_H_
