#include "relational/tuple.h"

#include "base/string_util.h"

namespace pdx {

std::string TupleToString(const Tuple& tuple, const SymbolTable& symbols) {
  std::vector<std::string> parts;
  parts.reserve(tuple.size());
  for (const Value& v : tuple) parts.push_back(symbols.ValueToString(v));
  return StrCat("(", StrJoin(parts, ","), ")");
}

std::string FactToString(const Fact& fact, const Schema& schema,
                         const SymbolTable& symbols) {
  return StrCat(schema.relation_name(fact.relation),
                TupleToString(fact.tuple, symbols));
}

}  // namespace pdx
