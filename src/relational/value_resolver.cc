#include "relational/value_resolver.h"

namespace pdx {

ValueResolver::State& ValueResolver::MutableState() {
  if (state_ == nullptr) {
    state_ = std::make_shared<State>();
  } else if (state_.use_count() > 1) {
    state_ = std::make_shared<State>(*state_);
  }
  return *state_;
}

ValueResolver::UnionResult ValueResolver::Union(Value a, Value b) {
  UnionResult result;
  Value ra = Resolve(a);
  Value rb = Resolve(b);
  if (ra == rb) return result;  // already one class
  if (ra.is_constant() && rb.is_constant()) {
    result.conflict = true;
    result.winner = ra;
    result.loser = rb;
    return result;
  }
  // Pick the surviving root: a constant always wins (it is what the class
  // denotes); between nulls the larger class wins so every value is
  // relinked O(log n) times across any union sequence.
  State& state = MutableState();
  auto class_size = [&state](Value root) -> size_t {
    auto it = state.members.find(root.packed());
    return it == state.members.end() ? 1 : it->second.size();
  };
  Value winner = ra;
  Value loser = rb;
  if (rb.is_constant() ||
      (ra.is_null() && class_size(rb) > class_size(ra))) {
    winner = rb;
    loser = ra;
  }

  auto loser_it = state.members.find(loser.packed());
  if (loser_it == state.members.end()) {
    result.reassigned.push_back(loser);
  } else {
    result.reassigned = std::move(loser_it->second);
    state.members.erase(loser_it);
  }

  std::vector<Value>& winner_members = state.members[winner.packed()];
  if (winner_members.empty()) winner_members.push_back(winner);
  // Eager path compression: every absorbed value points straight at the
  // new root, so Resolve stays a single probe. Absorbed values are
  // always nulls (a constant in a class is its root), so the dense
  // null-id parent table covers them; the gap fill keeps untouched ids
  // resolving to themselves.
  for (const Value& v : result.reassigned) {
    PDX_DCHECK(v.is_null());
    const uint32_t id = v.id();
    if (id >= state.parent.size()) {
      const size_t old_size = state.parent.size();
      state.parent.resize(static_cast<size_t>(id) + 1);
      for (size_t i = old_size; i < state.parent.size(); ++i) {
        state.parent[i] = Value::Null(static_cast<uint32_t>(i));
      }
    }
    state.parent[id] = winner;
    winner_members.push_back(v);
  }
  ++state.version;

  result.merged = true;
  result.winner = winner;
  result.loser = loser;
  return result;
}

}  // namespace pdx
