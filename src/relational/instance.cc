#include "relational/instance.h"

#include <algorithm>
#include <unordered_set>

#include "base/string_util.h"

namespace pdx {

Instance::Instance(const Schema* schema) : schema_(schema) {
  PDX_CHECK(schema != nullptr);
  int n = schema->relation_count();
  tuples_.resize(n);
  dedup_.resize(n);
  index_.resize(n);
  for (int r = 0; r < n; ++r) {
    index_[r].resize(schema->arity(r));
  }
}

bool Instance::AddFact(RelationId relation, Tuple tuple) {
  PDX_CHECK_GE(relation, 0);
  PDX_CHECK_LT(relation, static_cast<RelationId>(tuples_.size()));
  PDX_CHECK_EQ(static_cast<int>(tuple.size()), schema_->arity(relation))
      << "arity mismatch inserting into " << schema_->relation_name(relation);
  auto [it, inserted] = dedup_[relation].emplace(
      std::move(tuple), static_cast<int>(tuples_[relation].size()));
  if (!inserted) return false;
  const Tuple& stored = it->first;
  int idx = it->second;
  tuples_[relation].push_back(stored);
  for (int pos = 0; pos < static_cast<int>(stored.size()); ++pos) {
    index_[relation][pos][stored[pos].packed()].push_back(idx);
  }
  ++fact_count_;
  return true;
}

bool Instance::Contains(RelationId relation, const Tuple& tuple) const {
  PDX_CHECK_GE(relation, 0);
  PDX_CHECK_LT(relation, static_cast<RelationId>(tuples_.size()));
  return dedup_[relation].count(tuple) > 0;
}

const std::vector<int>* Instance::TuplesWithValueAt(RelationId relation,
                                                    int position,
                                                    Value value) const {
  PDX_CHECK_GE(relation, 0);
  PDX_CHECK_LT(relation, static_cast<RelationId>(index_.size()));
  PDX_CHECK_GE(position, 0);
  PDX_CHECK_LT(position, static_cast<int>(index_[relation].size()));
  const auto& by_value = index_[relation][position];
  auto it = by_value.find(value.packed());
  if (it == by_value.end()) return nullptr;
  return &it->second;
}

void Instance::ForEachFact(const std::function<void(const Fact&)>& fn) const {
  Fact fact;
  for (RelationId r = 0; r < static_cast<RelationId>(tuples_.size()); ++r) {
    fact.relation = r;
    for (const Tuple& t : tuples_[r]) {
      fact.tuple = t;
      fn(fact);
    }
  }
}

std::vector<Fact> Instance::AllFacts() const {
  std::vector<Fact> facts;
  facts.reserve(fact_count_);
  ForEachFact([&facts](const Fact& f) { facts.push_back(f); });
  return facts;
}

std::vector<Value> Instance::ActiveDomain() const {
  std::unordered_set<uint64_t> seen;
  std::vector<Value> domain;
  ForEachFact([&](const Fact& f) {
    for (const Value& v : f.tuple) {
      if (seen.insert(v.packed()).second) domain.push_back(v);
    }
  });
  return domain;
}

std::vector<Value> Instance::Nulls() const {
  std::vector<Value> nulls;
  for (const Value& v : ActiveDomain()) {
    if (v.is_null()) nulls.push_back(v);
  }
  return nulls;
}

bool Instance::HasNulls() const {
  bool found = false;
  ForEachFact([&found](const Fact& f) {
    if (found) return;
    for (const Value& v : f.tuple) {
      if (v.is_null()) {
        found = true;
        return;
      }
    }
  });
  return found;
}

bool Instance::IsSubsetOf(const Instance& other) const {
  if (fact_count_ > other.fact_count_) return false;
  for (RelationId r = 0; r < static_cast<RelationId>(tuples_.size()); ++r) {
    for (const Tuple& t : tuples_[r]) {
      if (!other.Contains(r, t)) return false;
    }
  }
  return true;
}

bool Instance::FactsEqual(const Instance& other) const {
  return fact_count_ == other.fact_count_ && IsSubsetOf(other);
}

void Instance::UnionWith(const Instance& other) {
  other.ForEachFact([this](const Fact& f) { AddFact(f); });
}

void Instance::Substitute(Value from, Value to) {
  if (from == to) return;
  // Rebuild: egd steps are rare relative to tgd steps and instance sizes
  // in the solvers are moderate; a full rebuild keeps the index exact.
  std::vector<std::vector<Tuple>> old = std::move(tuples_);
  int n = schema_->relation_count();
  tuples_.assign(n, {});
  dedup_.assign(n, {});
  index_.assign(n, {});
  for (int r = 0; r < n; ++r) index_[r].resize(schema_->arity(r));
  fact_count_ = 0;
  for (RelationId r = 0; r < static_cast<RelationId>(old.size()); ++r) {
    for (Tuple& t : old[r]) {
      for (Value& v : t) {
        if (v == from) v = to;
      }
      AddFact(r, std::move(t));
    }
  }
}

namespace {

uint64_t MixFingerprint(uint64_t h, uint64_t x) {
  x *= 0x9e3779b97f4a7c15ull;
  x ^= x >> 29;
  x *= 0xbf58476d1ce4e5b9ull;
  return (h ^ x) * 0x100000001b3ull;
}

}  // namespace

uint64_t Instance::CanonicalFingerprint() const {
  std::vector<Fact> facts = AllFacts();
  std::sort(facts.begin(), facts.end(), [](const Fact& a, const Fact& b) {
    // Sort with nulls compared only by "nullness" first, then renamed ids
    // are not yet known; use a two-phase approach: sort by (relation,
    // value kinds, constant ids with nulls last). This yields a canonical
    // order whenever null *positions* differ; ties among facts differing
    // only in null identity are broken by null id, which can produce
    // different-but-equivalent orders in rare symmetric cases. That only
    // weakens memoization, never correctness.
    if (a.relation != b.relation) return a.relation < b.relation;
    for (size_t i = 0; i < a.tuple.size(); ++i) {
      const Value& va = a.tuple[i];
      const Value& vb = b.tuple[i];
      if (va.is_null() != vb.is_null()) return vb.is_null();
      if (va.is_constant() && va != vb) return va < vb;
    }
    return a.tuple < b.tuple;
  });
  std::unordered_map<uint64_t, uint32_t> null_rename;
  uint64_t h = 0xcbf29ce484222325ull;
  for (const Fact& f : facts) {
    h = MixFingerprint(h, static_cast<uint64_t>(f.relation) + 1);
    for (const Value& v : f.tuple) {
      if (v.is_constant()) {
        h = MixFingerprint(h, v.packed() * 2 + 1);
      } else {
        auto [it, inserted] = null_rename.emplace(
            v.packed(), static_cast<uint32_t>(null_rename.size()));
        h = MixFingerprint(h, uint64_t{it->second} * 2);
      }
    }
  }
  return h;
}

std::string Instance::ToString(const SymbolTable& symbols) const {
  std::vector<std::string> lines;
  lines.reserve(fact_count_);
  ForEachFact([&](const Fact& f) {
    lines.push_back(StrCat(FactToString(f, *schema_, symbols), "."));
  });
  std::sort(lines.begin(), lines.end());
  return StrJoin(lines, "\n");
}

}  // namespace pdx
