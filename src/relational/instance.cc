#include "relational/instance.h"

#include <algorithm>
#include <unordered_set>

#include "base/string_util.h"

namespace pdx {

InstanceWatermark InstanceWatermark::Origin(const Instance& instance) {
  InstanceWatermark mark;
  int n = instance.schema().relation_count();
  mark.counts.assign(n, 0);
  mark.rewrites.resize(n);
  for (RelationId r = 0; r < n; ++r) mark.rewrites[r] = instance.rewrites(r);
  return mark;
}

Instance::Instance(const Schema* schema) : schema_(schema) {
  PDX_CHECK(schema != nullptr);
  int n = schema->relation_count();
  stores_.reserve(n);
  for (int r = 0; r < n; ++r) {
    auto store = std::make_shared<RelationStore>();
    store->index.resize(schema->arity(r));
    stores_.push_back(std::move(store));
  }
}

Instance::RelationStore& Instance::Mutable(RelationId relation) {
  std::shared_ptr<RelationStore>& store = stores_[relation];
  if (store.use_count() > 1) {
    store = std::make_shared<RelationStore>(*store);
  }
  return *store;
}

bool Instance::AddFact(RelationId relation, Tuple tuple) {
  PDX_CHECK_GE(relation, 0);
  PDX_CHECK_LT(relation, static_cast<RelationId>(stores_.size()));
  PDX_CHECK_EQ(static_cast<int>(tuple.size()), schema_->arity(relation))
      << "arity mismatch inserting into " << schema_->relation_name(relation);
  if (stores_[relation]->dedup.count(tuple) > 0) return false;
  RelationStore& store = Mutable(relation);
  auto [it, inserted] = store.dedup.emplace(
      std::move(tuple), static_cast<int>(store.tuples.size()));
  PDX_DCHECK(inserted);
  const Tuple& stored = it->first;
  int idx = it->second;
  store.tuples.push_back(stored);
  for (int pos = 0; pos < static_cast<int>(stored.size()); ++pos) {
    store.index[pos][stored[pos].packed()].push_back(idx);
  }
  ++fact_count_;
  return true;
}

bool Instance::RemoveFact(RelationId relation, const Tuple& tuple) {
  PDX_CHECK_GE(relation, 0);
  PDX_CHECK_LT(relation, static_cast<RelationId>(stores_.size()));
  if (stores_[relation]->dedup.count(tuple) == 0) return false;
  RelationStore& store = Mutable(relation);
  auto it = store.dedup.find(tuple);
  int idx = it->second;
  int last = static_cast<int>(store.tuples.size()) - 1;
  // Drop the removed tuple's index entries.
  for (int pos = 0; pos < static_cast<int>(tuple.size()); ++pos) {
    auto& by_value = store.index[pos];
    auto bucket_it = by_value.find(tuple[pos].packed());
    PDX_DCHECK(bucket_it != by_value.end());
    std::vector<int>& bucket = bucket_it->second;
    bucket.erase(std::find(bucket.begin(), bucket.end(), idx));
    if (bucket.empty()) by_value.erase(bucket_it);
  }
  if (idx != last) {
    // Move the last tuple into the hole and repoint its entries.
    Tuple moved = std::move(store.tuples[last]);
    for (int pos = 0; pos < static_cast<int>(moved.size()); ++pos) {
      for (int& entry : store.index[pos][moved[pos].packed()]) {
        if (entry == last) entry = idx;
      }
    }
    store.dedup.find(moved)->second = idx;
    store.tuples[idx] = std::move(moved);
  }
  store.tuples.pop_back();
  store.dedup.erase(it);
  // Indexes shifted: delta consumers must re-scan this relation.
  ++store.rewrites;
  --fact_count_;
  return true;
}

bool Instance::Contains(RelationId relation, const Tuple& tuple) const {
  PDX_CHECK_GE(relation, 0);
  PDX_CHECK_LT(relation, static_cast<RelationId>(stores_.size()));
  return stores_[relation]->dedup.count(tuple) > 0;
}

const std::vector<int>* Instance::TuplesWithValueAt(RelationId relation,
                                                    int position,
                                                    Value value) const {
  PDX_CHECK_GE(relation, 0);
  PDX_CHECK_LT(relation, static_cast<RelationId>(stores_.size()));
  PDX_CHECK_GE(position, 0);
  PDX_CHECK_LT(position, static_cast<int>(stores_[relation]->index.size()));
  const auto& by_value = stores_[relation]->index[position];
  auto it = by_value.find(value.packed());
  if (it == by_value.end()) return nullptr;
  return &it->second;
}

InstanceWatermark Instance::TakeWatermark() const {
  InstanceWatermark mark;
  int n = static_cast<int>(stores_.size());
  mark.counts.resize(n);
  mark.rewrites.resize(n);
  for (int r = 0; r < n; ++r) {
    mark.counts[r] = stores_[r]->tuples.size();
    mark.rewrites[r] = stores_[r]->rewrites;
  }
  return mark;
}

void Instance::ForEachFact(const std::function<void(const Fact&)>& fn) const {
  Fact fact;
  for (RelationId r = 0; r < static_cast<RelationId>(stores_.size()); ++r) {
    fact.relation = r;
    for (const Tuple& t : stores_[r]->tuples) {
      fact.tuple = t;
      fn(fact);
    }
  }
}

std::vector<Fact> Instance::AllFacts() const {
  std::vector<Fact> facts;
  facts.reserve(fact_count_);
  ForEachFact([&facts](const Fact& f) { facts.push_back(f); });
  return facts;
}

std::vector<Value> Instance::ActiveDomain() const {
  std::unordered_set<uint64_t> seen;
  std::vector<Value> domain;
  ForEachFact([&](const Fact& f) {
    for (const Value& v : f.tuple) {
      if (seen.insert(v.packed()).second) domain.push_back(v);
    }
  });
  return domain;
}

std::vector<Value> Instance::Nulls() const {
  std::vector<Value> nulls;
  for (const Value& v : ActiveDomain()) {
    if (v.is_null()) nulls.push_back(v);
  }
  return nulls;
}

bool Instance::HasNulls() const {
  bool found = false;
  ForEachFact([&found](const Fact& f) {
    if (found) return;
    for (const Value& v : f.tuple) {
      if (v.is_null()) {
        found = true;
        return;
      }
    }
  });
  return found;
}

bool Instance::IsSubsetOf(const Instance& other) const {
  if (fact_count_ > other.fact_count_) return false;
  for (RelationId r = 0; r < static_cast<RelationId>(stores_.size()); ++r) {
    if (stores_[r] == other.stores_[r]) continue;  // shared: trivially ⊆
    for (const Tuple& t : stores_[r]->tuples) {
      if (!other.Contains(r, t)) return false;
    }
  }
  return true;
}

bool Instance::FactsEqual(const Instance& other) const {
  return fact_count_ == other.fact_count_ && IsSubsetOf(other);
}

void Instance::UnionWith(const Instance& other) {
  other.ForEachFact([this](const Fact& f) { AddFact(f); });
}

void Instance::Substitute(Value from, Value to) {
  if (from == to) return;
  for (RelationId r = 0; r < static_cast<RelationId>(stores_.size()); ++r) {
    // Skip relations not containing `from` (checked via the inverted
    // index) so their stores — and any watermarks into them — survive.
    bool contains = false;
    for (const auto& by_value : stores_[r]->index) {
      auto it = by_value.find(from.packed());
      if (it != by_value.end() && !it->second.empty()) {
        contains = true;
        break;
      }
    }
    if (!contains) continue;
    // Rebuild this relation: egd steps are rare relative to tgd steps and
    // a full per-relation rebuild keeps the index exact.
    RelationStore& store = Mutable(r);
    std::vector<Tuple> old = std::move(store.tuples);
    fact_count_ -= old.size();
    uint64_t rewrites = store.rewrites;
    store.tuples.clear();
    store.dedup.clear();
    store.index.assign(schema_->arity(r), {});
    store.rewrites = rewrites + 1;
    for (Tuple& t : old) {
      for (Value& v : t) {
        if (v == from) v = to;
      }
      AddFact(r, std::move(t));
    }
  }
}

namespace {

uint64_t MixFingerprint(uint64_t h, uint64_t x) {
  x *= 0x9e3779b97f4a7c15ull;
  x ^= x >> 29;
  x *= 0xbf58476d1ce4e5b9ull;
  return (h ^ x) * 0x100000001b3ull;
}

}  // namespace

uint64_t Instance::CanonicalFingerprint() const {
  std::vector<Fact> facts = AllFacts();
  std::sort(facts.begin(), facts.end(), [](const Fact& a, const Fact& b) {
    // Sort with nulls compared only by "nullness" first, then renamed ids
    // are not yet known; use a two-phase approach: sort by (relation,
    // value kinds, constant ids with nulls last). This yields a canonical
    // order whenever null *positions* differ; ties among facts differing
    // only in null identity are broken by null id, which can produce
    // different-but-equivalent orders in rare symmetric cases. That only
    // weakens memoization, never correctness.
    if (a.relation != b.relation) return a.relation < b.relation;
    for (size_t i = 0; i < a.tuple.size(); ++i) {
      const Value& va = a.tuple[i];
      const Value& vb = b.tuple[i];
      if (va.is_null() != vb.is_null()) return vb.is_null();
      if (va.is_constant() && va != vb) return va < vb;
    }
    return a.tuple < b.tuple;
  });
  std::unordered_map<uint64_t, uint32_t> null_rename;
  uint64_t h = 0xcbf29ce484222325ull;
  for (const Fact& f : facts) {
    h = MixFingerprint(h, static_cast<uint64_t>(f.relation) + 1);
    for (const Value& v : f.tuple) {
      if (v.is_constant()) {
        h = MixFingerprint(h, v.packed() * 2 + 1);
      } else {
        auto [it, inserted] = null_rename.emplace(
            v.packed(), static_cast<uint32_t>(null_rename.size()));
        h = MixFingerprint(h, uint64_t{it->second} * 2);
      }
    }
  }
  return h;
}

std::string Instance::ToString(const SymbolTable& symbols) const {
  std::vector<std::string> lines;
  lines.reserve(fact_count_);
  ForEachFact([&](const Fact& f) {
    lines.push_back(StrCat(FactToString(f, *schema_, symbols), "."));
  });
  std::sort(lines.begin(), lines.end());
  return StrJoin(lines, "\n");
}

DeltaView::DeltaView(const Instance& instance, const InstanceWatermark& mark)
    : instance_(&instance) {
  int n = instance.schema().relation_count();
  PDX_CHECK_EQ(static_cast<int>(mark.counts.size()), n);
  begin_.resize(n);
  end_.resize(n);
  for (RelationId r = 0; r < n; ++r) {
    end_[r] = instance.tuples(r).size();
    // A rewrite shuffled tuple indexes: the recorded count no longer
    // addresses a stable prefix, so the whole relation is new again.
    begin_[r] = instance.rewrites(r) == mark.rewrites[r]
                    ? std::min(mark.counts[r], end_[r])
                    : 0;
  }
}

bool DeltaView::any() const {
  for (size_t r = 0; r < begin_.size(); ++r) {
    if (begin_[r] < end_[r]) return true;
  }
  return false;
}

}  // namespace pdx
