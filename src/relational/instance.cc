#include "relational/instance.h"

#include <algorithm>
#include <unordered_set>

#include "base/string_util.h"

namespace pdx {

InstanceWatermark InstanceWatermark::Origin(const Instance& instance) {
  InstanceWatermark mark;
  int n = instance.schema().relation_count();
  mark.counts.assign(n, 0);
  mark.rewrites.resize(n);
  for (RelationId r = 0; r < n; ++r) mark.rewrites[r] = instance.rewrites(r);
  return mark;
}

Instance::Instance(const Schema* schema) : schema_(schema) {
  PDX_CHECK(schema != nullptr);
  int n = schema->relation_count();
  stores_.reserve(n);
  for (int r = 0; r < n; ++r) {
    auto store = std::make_shared<RelationStore>();
    store->arity = schema->arity(r);
    store->index.resize(store->arity);
    stores_.push_back(std::move(store));
  }
}

Instance::RelationStore& Instance::Mutable(RelationId relation) {
  std::shared_ptr<RelationStore>& store = stores_[relation];
  if (store.use_count() > 1) {
    store = std::make_shared<RelationStore>(*store);
  }
  return *store;
}

Tuple Instance::ResolveTuple(const Tuple& t) const {
  if (resolver_.trivial()) return t;
  Tuple resolved = t;
  for (Value& v : resolved) v = resolver_.Resolve(v);
  return resolved;
}

bool Instance::AddFact(RelationId relation, Tuple tuple) {
  return AddFact(relation, tuple.data(), tuple.size());
}

bool Instance::AddFact(RelationId relation, const Value* values, size_t n) {
  PDX_CHECK_GE(relation, 0);
  PDX_CHECK_LT(relation, static_cast<RelationId>(stores_.size()));
  PDX_CHECK_EQ(static_cast<int>(n), schema_->arity(relation))
      << "arity mismatch inserting into " << schema_->relation_name(relation);
  // Resolve-on-write: new facts always enter in resolved form, so only
  // tuples inserted *before* a merge can hold stale values. The resolved
  // image lives in a stack buffer for the common arities so the whole
  // insert allocates nothing but the arena/index growth itself.
  constexpr size_t kStackArity = 16;
  Value buf[kStackArity];
  Tuple wide;
  if (!resolver_.trivial()) {
    Value* dst = buf;
    if (n > kStackArity) {
      wide.resize(n);
      dst = wide.data();
    }
    for (size_t i = 0; i < n; ++i) dst[i] = resolver_.Resolve(values[i]);
    values = dst;
  }
  const uint64_t hash = HashValueSeq(values, n);
  // Dedup-probe the (possibly shared) store first: a duplicate insert
  // must not trigger a COW clone.
  if (stores_[relation]->DedupFind(values, n, hash) >= 0) return false;
  Mutable(relation).Append(values, n, hash);
  ++fact_count_;
  return true;
}

void Instance::EnsureOwnedStore(RelationId relation) {
  PDX_CHECK_GE(relation, 0);
  PDX_CHECK_LT(relation, static_cast<RelationId>(stores_.size()));
  Mutable(relation);
}

bool Instance::AddFactSharded(RelationId relation, Tuple tuple) {
  PDX_DCHECK(stores_[relation].use_count() == 1)
      << "AddFactSharded needs EnsureOwnedStore first";
  PDX_CHECK_EQ(static_cast<int>(tuple.size()), schema_->arity(relation))
      << "arity mismatch inserting into " << schema_->relation_name(relation);
  if (!resolver_.trivial()) {
    for (Value& v : tuple) v = resolver_.Resolve(v);
  }
  RelationStore& store = *stores_[relation];
  const uint64_t hash = HashValueSeq(tuple.data(), tuple.size());
  if (store.DedupFind(tuple, hash) >= 0) return false;
  store.Append(tuple, hash);
  return true;
}

int Instance::FindResolvedTupleIndex(RelationId relation,
                                     const Tuple& resolved) const {
  const RelationStore& store = *stores_[relation];
  const uint64_t hash = HashValueSeq(resolved.data(), resolved.size());
  const int32_t hit = store.DedupFind(resolved, hash);
  if (hit >= 0) return hit;
  if (resolver_.trivial() || resolved.empty()) return -1;
  // A pre-merge raw tuple may resolve to `resolved` without being stored
  // verbatim: probe the class-aware bucket of position 0.
  for (int32_t idx : TuplesWithResolvedValueAt(relation, 0, resolved[0])) {
    const Value* raw = store.TupleData(idx);
    bool equal = true;
    for (int pos = 0; pos < store.arity; ++pos) {
      if (resolver_.Resolve(raw[pos]) != resolved[pos]) {
        equal = false;
        break;
      }
    }
    if (equal) return idx;
  }
  return -1;
}

bool Instance::RemoveFact(RelationId relation, const Tuple& tuple) {
  PDX_CHECK_GE(relation, 0);
  PDX_CHECK_LT(relation, static_cast<RelationId>(stores_.size()));
  Tuple resolved = ResolveTuple(tuple);
  bool removed = false;
  // Under merges several raw tuples may resolve to the same fact: remove
  // them all so the resolved view no longer contains it.
  int idx;
  while ((idx = FindResolvedTupleIndex(relation, resolved)) >= 0) {
    RelationStore& store = Mutable(relation);
    const int arity = store.arity;
    const Tuple raw(store.TupleData(idx), store.TupleData(idx) + arity);
    const uint64_t raw_hash = HashValueSeq(raw.data(), raw.size());
    const int32_t last = static_cast<int32_t>(store.count) - 1;
    // Drop the removed tuple's index and dedup entries.
    for (int pos = 0; pos < arity; ++pos) {
      store.index[pos].Erase(raw[pos].packed(), idx);
    }
    store.dedup.Erase(raw_hash, idx);
    if (idx != last) {
      // Move the last tuple into the hole and repoint its entries.
      const Value* moved = store.TupleData(last);
      const uint64_t moved_hash =
          HashValueSeq(moved, static_cast<size_t>(arity));
      for (int pos = 0; pos < arity; ++pos) {
        store.index[pos].Repoint(moved[pos].packed(), last, idx);
      }
      store.dedup.Repoint(moved_hash, last, idx);
      std::copy(moved, moved + arity,
                store.data.begin() + static_cast<size_t>(idx) * arity);
    }
    --store.count;
    store.data.resize(store.count * static_cast<size_t>(arity));
    store.InvalidateClassCache();
    // Indexes shifted: delta consumers must re-scan this relation.
    ++store.rewrites;
    --fact_count_;
    removed = true;
  }
  return removed;
}

bool Instance::Contains(RelationId relation, const Tuple& tuple) const {
  PDX_CHECK_GE(relation, 0);
  PDX_CHECK_LT(relation, static_cast<RelationId>(stores_.size()));
  if (resolver_.trivial()) {
    const uint64_t hash = HashValueSeq(tuple.data(), tuple.size());
    return stores_[relation]->DedupFind(tuple, hash) >= 0;
  }
  return FindResolvedTupleIndex(relation, ResolveTuple(tuple)) >= 0;
}

bool Instance::ContainsExact(RelationId relation, const Value* values,
                             size_t n) const {
  PDX_DCHECK(relation >= 0 &&
             relation < static_cast<RelationId>(stores_.size()));
  const RelationStore& store = *stores_[relation];
  const uint64_t hash = HashValueSeq(values, n);
  return store.dedup.Find(hash, [&](int32_t i) {
           return store.TupleEquals(i, values, n);
         }) >= 0;
}

TupleIndexSpan Instance::TuplesWithValueAt(RelationId relation, int position,
                                           Value value) const {
  PDX_CHECK_GE(relation, 0);
  PDX_CHECK_LT(relation, static_cast<RelationId>(stores_.size()));
  PDX_CHECK_GE(position, 0);
  PDX_CHECK_LT(position, static_cast<int>(stores_[relation]->index.size()));
  return stores_[relation]->index[position].Find(value.packed());
}

size_t Instance::CountTuplesWithResolvedValueAt(RelationId relation,
                                                int position,
                                                Value value) const {
  Value root = resolver_.Resolve(value);
  const std::vector<Value>* members = resolver_.ClassMembers(root);
  if (members == nullptr) {
    return TuplesWithValueAt(relation, position, root).size();
  }
  return ResolvedClassBucket(relation, position, root, *members).size();
}

TupleIndexSpan Instance::TuplesWithResolvedValueAt(RelationId relation,
                                                   int position,
                                                   Value value) const {
  Value root = resolver_.Resolve(value);
  const std::vector<Value>* members = resolver_.ClassMembers(root);
  if (members == nullptr) {
    return TuplesWithValueAt(relation, position, root);
  }
  return ResolvedClassBucket(relation, position, root, *members);
}

TupleIndexSpan Instance::ResolvedClassBucket(
    RelationId relation, int position, Value root,
    const std::vector<Value>& members) const {
  PDX_CHECK_GE(relation, 0);
  PDX_CHECK_LT(relation, static_cast<RelationId>(stores_.size()));
  const RelationStore& store = *stores_[relation];
  PDX_CHECK_GE(position, 0);
  PDX_CHECK_LT(position, static_cast<int>(store.index.size()));
  // Packed values keep bits 33..62 clear (bit 63 = null flag, low 32 bits
  // = id), so folding the position into them is collision-free.
  const uint64_t key =
      root.packed() ^ (static_cast<uint64_t>(position) << 33);
  const uint64_t version = resolver_.version();
  ClassBucketCache& cache = store.class_cache;
  std::lock_guard<std::mutex> lock(cache.mu);
  ClassBucketCache::Entry& entry = cache.map[key];
  if (entry.version != version) {
    entry.bucket.clear();
    for (const Value& m : members) {
      TupleIndexSpan bucket = store.index[position].Find(m.packed());
      entry.bucket.insert(entry.bucket.end(), bucket.begin(), bucket.end());
    }
    entry.version = version;
  }
  return TupleIndexSpan(entry.bucket.data(), entry.bucket.size());
}

Instance::MergeResult Instance::MergeValues(Value a, Value b) {
  MergeResult out;
  ValueResolver::UnionResult u = resolver_.Union(a, b);
  out.conflict = u.conflict;
  out.winner = u.winner;
  out.loser = u.loser;
  if (!u.merged) return out;
  out.merged = true;
  out.reassigned = std::move(u.reassigned);
  // The tuples whose resolved content changed are exactly those holding a
  // member of the losing class at some position; the inverted index finds
  // them without touching the stores.
  int n = static_cast<int>(stores_.size());
  for (RelationId r = 0; r < n; ++r) {
    const RelationStore& store = *stores_[r];
    size_t first = out.dirty.size();
    for (const FlatIndex& by_value : store.index) {
      for (const Value& m : out.reassigned) {
        for (int32_t idx : by_value.Find(m.packed())) {
          out.dirty.emplace_back(r, idx);
        }
      }
    }
    std::sort(out.dirty.begin() + first, out.dirty.end());
    out.dirty.erase(std::unique(out.dirty.begin() + first, out.dirty.end()),
                    out.dirty.end());
  }
  return out;
}

InstanceWatermark Instance::TakeWatermark() const {
  InstanceWatermark mark;
  int n = static_cast<int>(stores_.size());
  mark.counts.resize(n);
  mark.rewrites.resize(n);
  for (int r = 0; r < n; ++r) {
    mark.counts[r] = stores_[r]->count;
    mark.rewrites[r] = stores_[r]->rewrites;
  }
  return mark;
}

void Instance::ForEachFact(const std::function<void(const Fact&)>& fn) const {
  Fact fact;
  if (resolver_.trivial()) {
    for (RelationId r = 0; r < static_cast<RelationId>(stores_.size()); ++r) {
      const RelationStore& store = *stores_[r];
      fact.relation = r;
      for (size_t i = 0; i < store.count; ++i) {
        const Value* t = store.TupleData(i);
        fact.tuple.assign(t, t + store.arity);
        fn(fact);
      }
    }
    return;
  }
  // Resolve-on-read: distinct raw tuples can collapse onto one resolved
  // fact, so deduplicate per relation.
  std::unordered_set<Tuple, TupleHash> seen;
  for (RelationId r = 0; r < static_cast<RelationId>(stores_.size()); ++r) {
    const RelationStore& store = *stores_[r];
    fact.relation = r;
    seen.clear();
    for (size_t i = 0; i < store.count; ++i) {
      const Value* t = store.TupleData(i);
      fact.tuple.assign(t, t + store.arity);
      for (Value& v : fact.tuple) v = resolver_.Resolve(v);
      if (seen.insert(fact.tuple).second) fn(fact);
    }
  }
}

size_t Instance::ResolvedFactCount() const {
  if (resolver_.trivial()) return fact_count_;
  size_t count = 0;
  ForEachFact([&count](const Fact&) { ++count; });
  return count;
}

std::vector<Fact> Instance::AllFacts() const {
  std::vector<Fact> facts;
  facts.reserve(fact_count_);
  ForEachFact([&facts](const Fact& f) { facts.push_back(f); });
  return facts;
}

std::vector<Value> Instance::ActiveDomain() const {
  std::unordered_set<uint64_t> seen;
  std::vector<Value> domain;
  ForEachFact([&](const Fact& f) {
    for (const Value& v : f.tuple) {
      if (seen.insert(v.packed()).second) domain.push_back(v);
    }
  });
  return domain;
}

std::vector<Value> Instance::Nulls() const {
  std::vector<Value> nulls;
  for (const Value& v : ActiveDomain()) {
    if (v.is_null()) nulls.push_back(v);
  }
  return nulls;
}

bool Instance::HasNulls() const {
  bool found = false;
  ForEachFact([&found](const Fact& f) {
    if (found) return;
    for (const Value& v : f.tuple) {
      if (v.is_null()) {
        found = true;
        return;
      }
    }
  });
  return found;
}

bool Instance::IsSubsetOf(const Instance& other) const {
  if (resolver_.trivial() && other.resolver_.trivial()) {
    if (fact_count_ > other.fact_count_) return false;
    Tuple scratch;
    for (RelationId r = 0; r < static_cast<RelationId>(stores_.size()); ++r) {
      if (stores_[r] == other.stores_[r]) continue;  // shared: trivially ⊆
      const RelationStore& store = *stores_[r];
      for (size_t i = 0; i < store.count; ++i) {
        const Value* t = store.TupleData(i);
        scratch.assign(t, t + store.arity);
        if (!other.Contains(r, scratch)) return false;
      }
    }
    return true;
  }
  // Merged on either side: raw counts overstate the resolved views, so
  // compare fact-by-fact on resolved tuples.
  bool subset = true;
  ForEachFact([&](const Fact& f) {
    if (subset && !other.Contains(f)) subset = false;
  });
  return subset;
}

bool Instance::FactsEqual(const Instance& other) const {
  if (resolver_.trivial() && other.resolver_.trivial()) {
    return fact_count_ == other.fact_count_ && IsSubsetOf(other);
  }
  return ResolvedFactCount() == other.ResolvedFactCount() &&
         IsSubsetOf(other);
}

void Instance::UnionWith(const Instance& other) {
  other.ForEachFact([this](const Fact& f) { AddFact(f); });
}

void Instance::Substitute(Value from, Value to) {
  if (from == to) return;
  for (RelationId r = 0; r < static_cast<RelationId>(stores_.size()); ++r) {
    // Skip relations not containing `from` (checked via the inverted
    // index) so their stores — and any watermarks into them — survive.
    bool contains = false;
    for (const FlatIndex& by_value : stores_[r]->index) {
      if (!by_value.Find(from.packed()).empty()) {
        contains = true;
        break;
      }
    }
    if (!contains) continue;
    // Rebuild this relation: egd steps are rare relative to tgd steps and
    // a full per-relation rebuild keeps the index exact.
    RelationStore& store = Mutable(r);
    std::vector<Tuple> old;
    old.reserve(store.count);
    for (size_t i = 0; i < store.count; ++i) {
      const Value* t = store.TupleData(i);
      old.emplace_back(t, t + store.arity);
    }
    fact_count_ -= store.count;
    uint64_t rewrites = store.rewrites;
    store.data.clear();
    store.count = 0;
    store.dedup.Clear();
    for (FlatIndex& by_value : store.index) by_value.Clear();
    store.InvalidateClassCache();
    store.rewrites = rewrites + 1;
    for (Tuple& t : old) {
      for (Value& v : t) {
        if (v == from) v = to;
      }
      AddFact(r, std::move(t));
    }
  }
}

Instance Instance::CompactResolved(bool keep_resolver) const {
  Instance compact(schema_);
  // The facts ForEachFact hands out are already resolved, so installing
  // the resolver afterwards leaves the stores canonical either way.
  ForEachFact([&compact](const Fact& f) { compact.AddFact(f); });
  if (keep_resolver) compact.resolver_ = resolver_;
  return compact;
}

namespace {

uint64_t MixFingerprint(uint64_t h, uint64_t x) {
  x *= 0x9e3779b97f4a7c15ull;
  x ^= x >> 29;
  x *= 0xbf58476d1ce4e5b9ull;
  return (h ^ x) * 0x100000001b3ull;
}

}  // namespace

uint64_t Instance::CanonicalFingerprint() const {
  std::vector<Fact> facts = AllFacts();
  std::sort(facts.begin(), facts.end(), [](const Fact& a, const Fact& b) {
    // Sort with nulls compared only by "nullness" first, then renamed ids
    // are not yet known; use a two-phase approach: sort by (relation,
    // value kinds, constant ids with nulls last). This yields a canonical
    // order whenever null *positions* differ; ties among facts differing
    // only in null identity are broken by null id, which can produce
    // different-but-equivalent orders in rare symmetric cases. That only
    // weakens memoization, never correctness.
    if (a.relation != b.relation) return a.relation < b.relation;
    for (size_t i = 0; i < a.tuple.size(); ++i) {
      const Value& va = a.tuple[i];
      const Value& vb = b.tuple[i];
      if (va.is_null() != vb.is_null()) return vb.is_null();
      if (va.is_constant() && va != vb) return va < vb;
    }
    return a.tuple < b.tuple;
  });
  std::unordered_map<uint64_t, uint32_t> null_rename;
  uint64_t h = 0xcbf29ce484222325ull;
  for (const Fact& f : facts) {
    h = MixFingerprint(h, static_cast<uint64_t>(f.relation) + 1);
    for (const Value& v : f.tuple) {
      if (v.is_constant()) {
        h = MixFingerprint(h, v.packed() * 2 + 1);
      } else {
        auto [it, inserted] = null_rename.emplace(
            v.packed(), static_cast<uint32_t>(null_rename.size()));
        h = MixFingerprint(h, uint64_t{it->second} * 2);
      }
    }
  }
  return h;
}

std::string Instance::ToString(const SymbolTable& symbols) const {
  std::vector<std::string> lines;
  lines.reserve(fact_count_);
  ForEachFact([&](const Fact& f) {
    lines.push_back(StrCat(FactToString(f, *schema_, symbols), "."));
  });
  std::sort(lines.begin(), lines.end());
  return StrJoin(lines, "\n");
}

DeltaView::DeltaView(const Instance& instance, const InstanceWatermark& mark)
    : instance_(&instance) {
  int n = instance.schema().relation_count();
  PDX_CHECK_EQ(static_cast<int>(mark.counts.size()), n);
  begin_.resize(n);
  end_.resize(n);
  for (RelationId r = 0; r < n; ++r) {
    end_[r] = instance.tuples(r).size();
    // A rewrite shuffled tuple indexes: the recorded count no longer
    // addresses a stable prefix, so the whole relation is new again.
    begin_[r] = instance.rewrites(r) == mark.rewrites[r]
                    ? std::min(mark.counts[r], end_[r])
                    : 0;
  }
}

DeltaView::DeltaView(const Instance& instance, const InstanceWatermark& mark,
                     const std::vector<std::vector<int>>& extras)
    : DeltaView(instance, mark) {
  if (extras.empty()) return;
  int n = instance.schema().relation_count();
  PDX_CHECK_EQ(static_cast<int>(extras.size()), n);
  extras_.resize(n);
  for (RelationId r = 0; r < n; ++r) {
    for (int idx : extras[r]) {
      // Tuples already inside [begin, end) are pivoted via the range.
      if (static_cast<size_t>(idx) < begin_[r]) extras_[r].push_back(idx);
    }
    std::sort(extras_[r].begin(), extras_[r].end());
    extras_[r].erase(std::unique(extras_[r].begin(), extras_[r].end()),
                     extras_[r].end());
  }
}

const std::vector<int>& DeltaView::extras(RelationId relation) const {
  static const std::vector<int> kEmpty;
  if (extras_.empty()) return kEmpty;
  return extras_[relation];
}

bool DeltaView::any() const {
  for (size_t r = 0; r < begin_.size(); ++r) {
    if (dirty(static_cast<RelationId>(r))) return true;
  }
  return false;
}

}  // namespace pdx
