#ifndef PDX_RELATIONAL_VALUE_RESOLVER_H_
#define PDX_RELATIONAL_VALUE_RESOLVER_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "relational/value.h"

namespace pdx {

// Union-find over values, specialized for egd chase steps: labeled nulls
// may be merged with each other or with constants; constants are always
// class roots (an egd that would merge two distinct constants is a chase
// failure, surfaced as a conflict instead of a union).
//
// The resolver is the *value layer* of an Instance: tuples keep the raw
// values they were inserted with, and readers resolve each value to its
// class root on the fly ("resolve-on-read"). This makes an egd merge a
// near-O(1) union instead of Substitute's full relation rebuild.
//
// Representation: a flat parent map (value -> current root) plus per-root
// member lists. Union relinks every member of the losing class directly to
// the winning root — eager path compression — so Resolve() is a single
// hash probe and never chases chains. Union-by-size bounds total relink
// work at O(n log n) across any merge sequence; member lists double as the
// set of values whose resolution a merge changed, which Instance uses to
// mark exactly the dirty tuples.
//
// Copying a ValueResolver is O(1): state is a copy-on-write block shared
// between copies (mirroring Instance's relation stores), cloned lazily on
// the first Union of either copy. Snapshots and branches therefore never
// alias resolver state.
class ValueResolver {
 public:
  ValueResolver() = default;

  // Copyable in O(1); the first mutation of either copy clones the state.
  ValueResolver(const ValueResolver&) = default;
  ValueResolver& operator=(const ValueResolver&) = default;
  ValueResolver(ValueResolver&&) = default;
  ValueResolver& operator=(ValueResolver&&) = default;

  // True if no union was ever applied: every value resolves to itself.
  bool trivial() const { return state_ == nullptr || state_->version == 0; }

  // The root of `v`'s equivalence class (identity for unmerged values).
  // Constants can never lose a union, so only nulls consult the parent
  // table — one bounds-checked array read, no hashing (this is the
  // hottest call in merge-heavy chases: every slot comparison under a
  // non-trivial resolver resolves through here).
  Value Resolve(Value v) const {
    if (state_ == nullptr || !v.is_null()) return v;
    const std::vector<Value>& parent = state_->parent;
    const uint32_t id = v.id();
    return id < parent.size() ? parent[id] : v;
  }

  bool SameClass(Value a, Value b) const {
    return Resolve(a) == Resolve(b);
  }

  // The members of `root`'s class (including the root itself), or nullptr
  // for singleton classes. `root` must already be a class root. The pointer
  // is invalidated by the next Union on this resolver.
  const std::vector<Value>* ClassMembers(Value root) const {
    if (state_ == nullptr) return nullptr;
    auto it = state_->members.find(root.packed());
    return it == state_->members.end() ? nullptr : &it->second;
  }

  struct UnionResult {
    // False if the two values were already in one class (no-op) or the
    // union was a constant/constant conflict.
    bool merged = false;
    // True if both roots were distinct constants: the egd failure case.
    bool conflict = false;
    Value winner;  // surviving root (valid on merged or conflict)
    Value loser;   // absorbed root (valid on merged or conflict)
    // The values whose resolution just changed: every member of the losing
    // class (including `loser` itself).
    std::vector<Value> reassigned;
  };

  // Merges the classes of `a` and `b`. Constants win unions (they must
  // stay roots: a null equated with a constant *denotes* that constant);
  // between null roots the larger class wins, bounding total relinking.
  UnionResult Union(Value a, Value b);

  // Number of successful unions ever applied.
  uint64_t version() const { return state_ == nullptr ? 0 : state_->version; }

  // Number of non-singleton classes currently tracked.
  size_t class_count() const {
    return state_ == nullptr ? 0 : state_->members.size();
  }

 private:
  struct State {
    // Class root by null id, dense: parent[id] is Null(id)'s root, or
    // Null(id) itself when unmerged (ids past the end resolve to
    // themselves too). Only nulls can lose a union — a constant in a
    // class is always its root — so constants never need an entry.
    std::vector<Value> parent;
    // root -> all values of the class, including the root; only classes of
    // size >= 2 appear.
    std::unordered_map<uint64_t, std::vector<Value>> members;
    uint64_t version = 0;
  };

  // The state, cloned first if currently shared with another resolver.
  State& MutableState();

  std::shared_ptr<State> state_;
};

}  // namespace pdx

#endif  // PDX_RELATIONAL_VALUE_RESOLVER_H_
