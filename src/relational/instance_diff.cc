#include "relational/instance_diff.h"

#include <algorithm>

#include "base/string_util.h"

namespace pdx {

InstanceDiff DiffInstances(const Instance& before, const Instance& after) {
  InstanceDiff diff;
  after.ForEachFact([&](const Fact& f) {
    if (!before.Contains(f)) diff.added.push_back(f);
  });
  before.ForEachFact([&](const Fact& f) {
    if (!after.Contains(f)) diff.removed.push_back(f);
  });
  std::sort(diff.added.begin(), diff.added.end());
  std::sort(diff.removed.begin(), diff.removed.end());
  return diff;
}

std::string DiffToString(const InstanceDiff& diff, const Schema& schema,
                         const SymbolTable& symbols) {
  std::vector<std::string> lines;
  lines.reserve(diff.added.size() + diff.removed.size());
  for (const Fact& f : diff.removed) {
    lines.push_back(StrCat("- ", FactToString(f, schema, symbols), "."));
  }
  for (const Fact& f : diff.added) {
    lines.push_back(StrCat("+ ", FactToString(f, schema, symbols), "."));
  }
  return StrJoin(lines, "\n");
}

}  // namespace pdx
