#ifndef PDX_RELATIONAL_INSTANCE_H_
#define PDX_RELATIONAL_INSTANCE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "base/status.h"
#include "relational/flat_index.h"
#include "relational/schema.h"
#include "relational/tuple.h"
#include "relational/value.h"
#include "relational/value_resolver.h"

namespace pdx {

class Instance;

// A monotone position in an Instance's mutation history: per-relation tuple
// counts plus per-relation rewrite counters (a relation's counter advances
// whenever Substitute or RemoveFact rewrites its tuples in place, which
// shuffles tuple indexes). Taken via Instance::TakeWatermark(); consumed by
// DeltaView. Union-find merges (MergeValues) do NOT advance counters: they
// leave tuple indexes stable and report the dirty tuples explicitly.
struct InstanceWatermark {
  std::vector<size_t> counts;
  std::vector<uint64_t> rewrites;

  // The watermark "before anything": every current fact counts as new.
  static InstanceWatermark Origin(const Instance& instance);
};

// A finite database instance over a Schema, with a positional inverted
// index to accelerate homomorphism search and chase trigger enumeration.
//
// An Instance may contain labeled nulls (e.g. mid-chase or in canonical
// instances); "ground" instances are simply instances whose values are all
// constants. The Instance does not own the Schema; the Schema must outlive
// the Instance.
//
// Copying an Instance is O(#relations), not O(#facts): each relation's
// tuple store (tuples + dedup map + inverted index) is a copy-on-write
// shared block, cloned lazily the first time either copy mutates that
// relation. Search-based solvers rely on this to branch states in O(1).
//
// Value resolution layer: alongside its stores, an Instance carries a
// ValueResolver — a union-find over values fed by egd merges
// (MergeValues). Tuples keep the raw values they were inserted with;
// every read-side API (Contains, ForEachFact, AllFacts, ActiveDomain,
// fingerprints, ToString, the matcher via the resolved index accessors)
// presents the *resolved* view, in which each value stands for its class
// root and raw tuples that collapse onto the same resolved tuple count
// once. This makes an egd merge a near-O(1) union instead of Substitute's
// full relation rebuild, and it never invalidates tuple indexes. The
// resolver snapshots copy-on-write exactly like the relation stores, so
// branches never alias resolver state. Substitute remains available as
// the eager alternative (used by ChaseStrategy::kRestrictedNaive).
class Instance {
 public:
  explicit Instance(const Schema* schema);

  // Copyable: solvers clone states during search (cheap, copy-on-write).
  Instance(const Instance&) = default;
  Instance& operator=(const Instance&) = default;
  Instance(Instance&&) = default;
  Instance& operator=(Instance&&) = default;

  const Schema& schema() const { return *schema_; }

  // Inserts R(t), with `tuple` resolved first. Returns true if the raw
  // store gained a tuple (under merges, a resolved duplicate of a
  // pre-merge raw tuple may still be stored; the resolved views collapse
  // it). Arity mismatches are internal errors (callers validate user
  // input at parse time).
  bool AddFact(RelationId relation, Tuple tuple);
  bool AddFact(const Fact& fact) { return AddFact(fact.relation, fact.tuple); }

  // --- Sharded apply (the chase's parallel insert phase) -------------
  //
  // The per-relation COW stores make relation-sharded insertion safe: two
  // threads inserting into *different* relations touch disjoint
  // RelationStores, and the resolver is only read (Resolve is a const
  // lookup). The protocol is:
  //
  //   1. For every relation about to receive facts, the coordinating
  //      thread calls EnsureOwnedStore(r) — unsharing the COW store up
  //      front so no worker triggers a clone mid-insert.
  //   2. Workers call AddFactSharded(r, t), each relation owned by
  //      exactly one worker for the duration. No reads of the mutated
  //      relations and no resolver mutation may happen concurrently
  //      (snapshots taken *before* step 1 stay valid: they hold the
  //      pre-clone stores).
  //   3. After joining the workers, the coordinator folds the deferred
  //      counts with CommitShardedFacts(total added).
  //
  // AddFactSharded is exactly AddFact minus the fact_count_ update (a
  // plain member that workers must not race on); it returns true when the
  // raw store gained a tuple so callers can accumulate per-shard counts.
  void EnsureOwnedStore(RelationId relation);
  bool AddFactSharded(RelationId relation, Tuple tuple);
  void CommitShardedFacts(size_t added) { fact_count_ += added; }

  // Removes every raw tuple resolving to R(resolve(t)) if present
  // (swap-with-last; O(arity × index bucket), not O(relation)). Returns
  // true if the fact existed. Counts as a rewrite of the relation: tuple
  // indexes shift, so watermarks into it are dirtied. Repair search uses
  // this to branch subset states off a snapshot cheaply.
  bool RemoveFact(RelationId relation, const Tuple& tuple);
  bool RemoveFact(const Fact& fact) {
    return RemoveFact(fact.relation, fact.tuple);
  }

  // Resolved membership: true if some stored tuple resolves to
  // resolve(tuple).
  bool Contains(RelationId relation, const Tuple& tuple) const;
  bool Contains(const Fact& fact) const {
    return Contains(fact.relation, fact.tuple);
  }

  // Raw exact-tuple membership over a caller-owned value buffer: one
  // dedup-set probe, no Tuple materialized and no resolver pass. Only
  // equivalent to Contains when the resolver is trivial (no merges) —
  // the match VM's point-lookup fast path guards on exactly that.
  bool ContainsExact(RelationId relation, const Value* values,
                     size_t n) const;

  // AddFact over a caller-owned value buffer (typically a stack array in
  // the chase apply loop): same semantics as the Tuple overload but with
  // no per-fact vector allocation.
  bool AddFact(RelationId relation, const Value* values, size_t n);

  // All raw tuples of one relation, in insertion order, as a borrowed
  // view over the relation's contiguous arena. Under merges a tuple's
  // values may be stale: resolve-on-read via ResolveValue / ResolveTuple
  // before comparing values across tuples. The view (and any TupleView
  // taken from it) is invalidated by mutation of the relation.
  TupleList tuples(RelationId relation) const {
    PDX_CHECK_GE(relation, 0);
    PDX_CHECK_LT(relation, static_cast<RelationId>(stores_.size()));
    const RelationStore& store = *stores_[relation];
    return TupleList(store.data.data(), store.count, store.arity);
  }

  // Indexes (into tuples(relation)) of tuples holding raw `value` at
  // `position`; empty if none. The span is invalidated by any store
  // mutation. Class-blind: see TuplesWithResolvedValueAt.
  TupleIndexSpan TuplesWithValueAt(RelationId relation, int position,
                                   Value value) const;

  // Number of tuples whose value at `position` *resolves* to
  // resolve(value) (the sum of the index buckets of the class members).
  size_t CountTuplesWithResolvedValueAt(RelationId relation, int position,
                                        Value value) const;

  // Indexes of tuples whose value at `position` resolves to
  // resolve(value); empty if none. Singleton classes return the index
  // bucket directly; merged classes return the store's cached
  // concatenation of the member buckets (built once per resolver version
  // per (root, position), so repeated probes stop re-hashing every class
  // member). The span is invalidated by store mutation or a new merge.
  TupleIndexSpan TuplesWithResolvedValueAt(RelationId relation, int position,
                                           Value value) const;

  // --- Value resolution -----------------------------------------------

  // The value layer: resolves egd-merged values to their class roots.
  const ValueResolver& resolver() const { return resolver_; }

  // True if any merge was ever applied (raw and resolved views may differ).
  bool has_merges() const { return !resolver_.trivial(); }

  Value ResolveValue(Value v) const { return resolver_.Resolve(v); }
  Tuple ResolveTuple(const Tuple& t) const;

  struct MergeResult {
    // False if the values were already equal (no-op) or on conflict.
    bool merged = false;
    // True if the merge would equate two distinct constants (egd failure).
    bool conflict = false;
    Value winner;  // surviving root (valid on merged or conflict)
    Value loser;   // absorbed root (valid on merged or conflict)
    // Values whose resolution changed (the losing class).
    std::vector<Value> reassigned;
    // Tuples whose resolved content changed: every (relation, tuple index)
    // holding a reassigned value, deduplicated and sorted. Delta-driven
    // callers re-examine exactly these instead of whole relations.
    std::vector<std::pair<RelationId, int>> dirty;
  };

  // Merges the equivalence classes of `a` and `b` in O(α)-ish time
  // (union + dirty-tuple lookup via the inverted index): the egd chase
  // step. Constants win unions; two distinct constants report a conflict
  // and change nothing. Stores are untouched — tuple indexes, watermarks
  // and index buckets all stay valid.
  MergeResult MergeValues(Value a, Value b);

  // --- Whole-instance views (resolved) --------------------------------

  // Total number of raw stored tuples across all relations. Under merges
  // this may overcount the resolved view; see ResolvedFactCount.
  size_t fact_count() const { return fact_count_; }
  bool empty() const { return fact_count_ == 0; }

  // Number of distinct resolved facts. Equal to fact_count() when the
  // instance has no merges (O(1)); otherwise one resolved scan (O(n)).
  size_t ResolvedFactCount() const;

  // The current watermark: facts added (and relations rewritten) after this
  // point are visible to a DeltaView built against it.
  InstanceWatermark TakeWatermark() const;

  // How many times Substitute/RemoveFact has rewritten `relation` in
  // place. A tuple index recorded before a rewrite does not address the
  // same fact after. MergeValues never advances this.
  uint64_t rewrites(RelationId relation) const {
    PDX_CHECK_GE(relation, 0);
    PDX_CHECK_LT(relation, static_cast<RelationId>(stores_.size()));
    return stores_[relation]->rewrites;
  }

  // Invokes `fn` for every resolved fact, each distinct fact once.
  void ForEachFact(const std::function<void(const Fact&)>& fn) const;

  // All resolved facts as a vector (convenience for tests and printing).
  std::vector<Fact> AllFacts() const;

  // The set of resolved values occurring in the instance (active domain).
  std::vector<Value> ActiveDomain() const;

  // The nulls occurring in the resolved instance (class roots only).
  std::vector<Value> Nulls() const;
  bool HasNulls() const;

  // True if every resolved fact of this instance is a resolved fact of
  // `other`.
  bool IsSubsetOf(const Instance& other) const;

  // Set equality of resolved facts (schemas must describe the same
  // relations).
  bool FactsEqual(const Instance& other) const;

  // Inserts every resolved fact of `other` (over the same schema) into
  // this.
  void UnionWith(const Instance& other);

  // Replaces every occurrence of `from` by `to` in the raw stores,
  // deduplicating the result (eager materialization; rebuilds only the
  // relations containing `from` and advances their rewrite counters).
  // Kept for the naive baseline chase and for callers that need raw
  // stores canonical; the delta engines use MergeValues instead.
  void Substitute(Value from, Value to);

  // A plain instance holding this instance's resolved facts: the
  // materialization of the resolve-on-read view, with raw duplicates
  // collapsed. Its fingerprint, facts and ToString agree with this
  // instance's. By default the result carries a trivial resolver (all
  // merge history dropped); with `keep_resolver` it shares this
  // instance's resolver state, so values merged before the compaction
  // still resolve through it (ResolveValue / ChaseResult::Resolve keep
  // working) — used by the chase's mid-run store compaction.
  Instance CompactResolved(bool keep_resolver = false) const;

  // Order-insensitive structural fingerprint of the *resolved* view,
  // invariant under the *names* of nulls: nulls are canonically renamed by
  // first occurrence in the sorted fact sequence. Two instances with equal
  // fingerprints are isomorphic-over-constants with overwhelming
  // probability; used for search-state memoization (collisions only cost
  // completeness of the memo, never soundness of answers, and are
  // astronomically unlikely).
  uint64_t CanonicalFingerprint() const;

  // Multi-line rendering "R(a,b)." per resolved fact, sorted, for
  // goldens/debugging.
  std::string ToString(const SymbolTable& symbols) const;

 private:
  // Per-store memo for class-aware index probes: for one (resolved root,
  // position) key, the concatenation of the index buckets of every class
  // member, stamped with the resolver version that built it. Cleared on
  // any store mutation; a newer resolver version invalidates entries
  // lazily. The mutex serializes concurrent *readers* rebuilding entries
  // against a shared store (mutations never run concurrently with reads
  // of the same store — the sharded-apply protocol guarantees that).
  // Entry references are stable under further map inserts, so returned
  // spans stay valid for the duration of a read-only enumeration.
  struct ClassBucketCache {
    struct Entry {
      uint64_t version = ~0ull;
      std::vector<int32_t> bucket;
    };
    std::mutex mu;
    std::unordered_map<uint64_t, Entry> map;

    ClassBucketCache() = default;
    // Caches never copy: a COW clone starts cold.
    ClassBucketCache(const ClassBucketCache&) {}
    ClassBucketCache& operator=(const ClassBucketCache&) = delete;
  };

  // One relation's storage: a contiguous tuple arena (tuple i occupies
  // data[i*arity, (i+1)*arity)) + flat dedup set + per-position flat
  // inverted index. Shared copy-on-write between Instance copies.
  struct RelationStore {
    int arity = 0;
    size_t count = 0;           // number of stored tuples
    std::vector<Value> data;    // the arena
    FlatTupleSet dedup;
    std::vector<FlatIndex> index;  // one per position
    uint64_t rewrites = 0;
    mutable ClassBucketCache class_cache;

    const Value* TupleData(size_t i) const {
      return data.data() + i * static_cast<size_t>(arity);
    }
    bool TupleEquals(int32_t i, const Value* values, size_t n) const {
      return static_cast<size_t>(arity) == n &&
             std::equal(TupleData(i), TupleData(i) + arity, values);
    }
    int32_t DedupFind(const Value* values, size_t n, uint64_t hash) const {
      return dedup.Find(
          hash, [&](int32_t i) { return TupleEquals(i, values, n); });
    }
    int32_t DedupFind(const Tuple& tuple, uint64_t hash) const {
      return DedupFind(tuple.data(), tuple.size(), hash);
    }
    // Called on every mutation. Mutations hold the store exclusively, so
    // the unlocked empty check is safe; the lock orders the clear against
    // reader rebuilds that may still be publishing under the mutex.
    void InvalidateClassCache() {
      if (class_cache.map.empty()) return;
      std::lock_guard<std::mutex> lock(class_cache.mu);
      class_cache.map.clear();
    }
    // The shared insert tail: appends an absent, already-resolved tuple
    // to the arena, dedup set and per-position indexes.
    void Append(const Value* values, size_t n, uint64_t hash) {
      const int32_t idx = static_cast<int32_t>(count);
      data.insert(data.end(), values, values + n);
      ++count;
      dedup.Insert(hash, idx);
      for (int pos = 0; pos < arity; ++pos) {
        index[pos].Add(values[pos].packed(), idx);
      }
      InvalidateClassCache();
    }
    void Append(const Tuple& tuple, uint64_t hash) {
      Append(tuple.data(), tuple.size(), hash);
    }
  };

  // The store for `relation`, cloned first if currently shared.
  RelationStore& Mutable(RelationId relation);

  // The cached class-aware bucket for a merged class (see
  // TuplesWithResolvedValueAt).
  TupleIndexSpan ResolvedClassBucket(RelationId relation, int position,
                                     Value root,
                                     const std::vector<Value>& members) const;

  // Index (into tuples(relation)) of one stored tuple resolving to the
  // already-resolved `resolved`, or -1. Exact when the resolver is
  // trivial; otherwise probes the class-aware bucket of position 0.
  int FindResolvedTupleIndex(RelationId relation,
                             const Tuple& resolved) const;

  const Schema* schema_;
  size_t fact_count_ = 0;
  std::vector<std::shared_ptr<RelationStore>> stores_;
  ValueResolver resolver_;
};

// The facts of an instance that are *pending* relative to a watermark, as
// per-relation data over Instance::tuples():
//   * index ranges [begin, end) of tuples added since the watermark
//     (relations rewritten in place since the watermark count as entirely
//     new), plus
//   * optional `extras`: indexes of pre-existing tuples whose resolved
//     content a MergeValues call changed — the dirty equivalence classes.
// The view captures the instance's extent at construction: facts added
// later fall outside it and belong to the next delta. Index ranges are
// stable under AddFact and MergeValues but invalidated by Substitute /
// RemoveFact on the same relation.
class DeltaView {
 public:
  DeltaView(const Instance& instance, const InstanceWatermark& mark);

  // With merge-dirtied extras (per relation, from MergeResult::dirty).
  // Extras are copied, deduped and clipped against [begin, end) so a tuple
  // already inside the range is not pivoted twice.
  DeltaView(const Instance& instance, const InstanceWatermark& mark,
            const std::vector<std::vector<int>>& extras);

  // Everything currently in `instance` is new (first chase round).
  static DeltaView All(const Instance& instance) {
    return DeltaView(instance, InstanceWatermark::Origin(instance));
  }

  // The additive delta of `relation` is tuples(relation)[begin, end).
  size_t begin(RelationId relation) const { return begin_[relation]; }
  size_t end(RelationId relation) const { return end_[relation]; }

  // Pre-existing tuples of `relation` dirtied by merges (sorted, unique,
  // all < begin(relation)). Empty when no extras were supplied.
  const std::vector<int>& extras(RelationId relation) const;

  bool dirty(RelationId relation) const {
    return begin_[relation] < end_[relation] ||
           !extras(relation).empty();
  }

  // True if any relation has pending facts.
  bool any() const;

  const Instance& instance() const { return *instance_; }

 private:
  const Instance* instance_;
  std::vector<size_t> begin_;
  std::vector<size_t> end_;
  std::vector<std::vector<int>> extras_;  // empty, or one entry per relation
};

}  // namespace pdx

#endif  // PDX_RELATIONAL_INSTANCE_H_
