#ifndef PDX_RELATIONAL_INSTANCE_H_
#define PDX_RELATIONAL_INSTANCE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/status.h"
#include "relational/schema.h"
#include "relational/tuple.h"
#include "relational/value.h"

namespace pdx {

// A finite database instance over a Schema, with a positional inverted
// index to accelerate homomorphism search and chase trigger enumeration.
//
// An Instance may contain labeled nulls (e.g. mid-chase or in canonical
// instances); "ground" instances are simply instances whose values are all
// constants. The Instance does not own the Schema; the Schema must outlive
// the Instance.
class Instance {
 public:
  explicit Instance(const Schema* schema);

  // Copyable: solvers clone states during search.
  Instance(const Instance&) = default;
  Instance& operator=(const Instance&) = default;
  Instance(Instance&&) = default;
  Instance& operator=(Instance&&) = default;

  const Schema& schema() const { return *schema_; }

  // Inserts R(t). Returns true if the fact was new. Arity mismatches are
  // internal errors (callers validate user input at parse time).
  bool AddFact(RelationId relation, Tuple tuple);
  bool AddFact(const Fact& fact) { return AddFact(fact.relation, fact.tuple); }

  bool Contains(RelationId relation, const Tuple& tuple) const;
  bool Contains(const Fact& fact) const {
    return Contains(fact.relation, fact.tuple);
  }

  // All tuples of one relation, in insertion order.
  const std::vector<Tuple>& tuples(RelationId relation) const {
    PDX_CHECK_GE(relation, 0);
    PDX_CHECK_LT(relation, static_cast<RelationId>(tuples_.size()));
    return tuples_[relation];
  }

  // Indexes (into tuples(relation)) of tuples holding `value` at `position`,
  // or nullptr if none. The pointer is invalidated by any mutation.
  const std::vector<int>* TuplesWithValueAt(RelationId relation, int position,
                                            Value value) const;

  // Total number of facts across all relations.
  size_t fact_count() const { return fact_count_; }
  bool empty() const { return fact_count_ == 0; }

  // Invokes `fn` for every fact.
  void ForEachFact(const std::function<void(const Fact&)>& fn) const;

  // All facts as a vector (convenience for tests and printing).
  std::vector<Fact> AllFacts() const;

  // The set of values occurring in the instance (active domain).
  std::vector<Value> ActiveDomain() const;

  // The nulls occurring in the instance.
  std::vector<Value> Nulls() const;
  bool HasNulls() const;

  // True if every fact of this instance is a fact of `other`.
  bool IsSubsetOf(const Instance& other) const;

  // Set equality of facts (schemas must describe the same relations).
  bool FactsEqual(const Instance& other) const;

  // Inserts every fact of `other` (over the same schema) into this.
  void UnionWith(const Instance& other);

  // Replaces every occurrence of `from` by `to`, deduplicating the result.
  // Used by egd chase steps (from is always a labeled null there).
  void Substitute(Value from, Value to);

  // Order-insensitive structural fingerprint, invariant under the *names*
  // of nulls: nulls are canonically renamed by first occurrence in the
  // sorted fact sequence. Two instances with equal fingerprints are
  // isomorphic-over-constants with overwhelming probability; used for
  // search-state memoization (collisions only cost completeness of the
  // memo, never soundness of answers, and are astronomically unlikely).
  uint64_t CanonicalFingerprint() const;

  // Multi-line rendering "R(a,b)." per fact, sorted, for goldens/debugging.
  std::string ToString(const SymbolTable& symbols) const;

 private:
  const Schema* schema_;
  size_t fact_count_ = 0;
  // Per relation: dense tuple store + dedup map + per-position inverted
  // index (index_[relation][position][value.packed()] = tuple indexes).
  std::vector<std::vector<Tuple>> tuples_;
  std::vector<std::unordered_map<Tuple, int, TupleHash>> dedup_;
  std::vector<std::vector<std::unordered_map<uint64_t, std::vector<int>>>>
      index_;
};

}  // namespace pdx

#endif  // PDX_RELATIONAL_INSTANCE_H_
