#ifndef PDX_RELATIONAL_INSTANCE_H_
#define PDX_RELATIONAL_INSTANCE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/status.h"
#include "relational/schema.h"
#include "relational/tuple.h"
#include "relational/value.h"

namespace pdx {

class Instance;

// A monotone position in an Instance's mutation history: per-relation tuple
// counts plus per-relation rewrite counters (a relation's counter advances
// whenever Substitute rewrites its tuples in place, which shuffles tuple
// indexes). Taken via Instance::TakeWatermark(); consumed by DeltaView.
struct InstanceWatermark {
  std::vector<size_t> counts;
  std::vector<uint64_t> rewrites;

  // The watermark "before anything": every current fact counts as new.
  static InstanceWatermark Origin(const Instance& instance);
};

// A finite database instance over a Schema, with a positional inverted
// index to accelerate homomorphism search and chase trigger enumeration.
//
// An Instance may contain labeled nulls (e.g. mid-chase or in canonical
// instances); "ground" instances are simply instances whose values are all
// constants. The Instance does not own the Schema; the Schema must outlive
// the Instance.
//
// Copying an Instance is O(#relations), not O(#facts): each relation's
// tuple store (tuples + dedup map + inverted index) is a copy-on-write
// shared block, cloned lazily the first time either copy mutates that
// relation. Search-based solvers rely on this to branch states in O(1).
class Instance {
 public:
  explicit Instance(const Schema* schema);

  // Copyable: solvers clone states during search (cheap, copy-on-write).
  Instance(const Instance&) = default;
  Instance& operator=(const Instance&) = default;
  Instance(Instance&&) = default;
  Instance& operator=(Instance&&) = default;

  const Schema& schema() const { return *schema_; }

  // Inserts R(t). Returns true if the fact was new. Arity mismatches are
  // internal errors (callers validate user input at parse time).
  bool AddFact(RelationId relation, Tuple tuple);
  bool AddFact(const Fact& fact) { return AddFact(fact.relation, fact.tuple); }

  // Removes R(t) if present (swap-with-last; O(arity × index bucket), not
  // O(relation)). Returns true if the fact existed. Counts as a rewrite of
  // the relation: tuple indexes shift, so watermarks into it are dirtied.
  // Repair search uses this to branch subset states off a snapshot cheaply.
  bool RemoveFact(RelationId relation, const Tuple& tuple);
  bool RemoveFact(const Fact& fact) {
    return RemoveFact(fact.relation, fact.tuple);
  }

  bool Contains(RelationId relation, const Tuple& tuple) const;
  bool Contains(const Fact& fact) const {
    return Contains(fact.relation, fact.tuple);
  }

  // All tuples of one relation, in insertion order.
  const std::vector<Tuple>& tuples(RelationId relation) const {
    PDX_CHECK_GE(relation, 0);
    PDX_CHECK_LT(relation, static_cast<RelationId>(stores_.size()));
    return stores_[relation]->tuples;
  }

  // Indexes (into tuples(relation)) of tuples holding `value` at `position`,
  // or nullptr if none. The pointer is invalidated by any mutation.
  const std::vector<int>* TuplesWithValueAt(RelationId relation, int position,
                                            Value value) const;

  // Total number of facts across all relations.
  size_t fact_count() const { return fact_count_; }
  bool empty() const { return fact_count_ == 0; }

  // The current watermark: facts added (and relations rewritten) after this
  // point are visible to a DeltaView built against it.
  InstanceWatermark TakeWatermark() const;

  // How many times Substitute has rewritten `relation` in place. A tuple
  // index recorded before a rewrite does not address the same fact after.
  uint64_t rewrites(RelationId relation) const {
    PDX_CHECK_GE(relation, 0);
    PDX_CHECK_LT(relation, static_cast<RelationId>(stores_.size()));
    return stores_[relation]->rewrites;
  }

  // Invokes `fn` for every fact.
  void ForEachFact(const std::function<void(const Fact&)>& fn) const;

  // All facts as a vector (convenience for tests and printing).
  std::vector<Fact> AllFacts() const;

  // The set of values occurring in the instance (active domain).
  std::vector<Value> ActiveDomain() const;

  // The nulls occurring in the instance.
  std::vector<Value> Nulls() const;
  bool HasNulls() const;

  // True if every fact of this instance is a fact of `other`.
  bool IsSubsetOf(const Instance& other) const;

  // Set equality of facts (schemas must describe the same relations).
  bool FactsEqual(const Instance& other) const;

  // Inserts every fact of `other` (over the same schema) into this.
  void UnionWith(const Instance& other);

  // Replaces every occurrence of `from` by `to`, deduplicating the result.
  // Used by egd chase steps (from is always a labeled null there). Only
  // relations actually containing `from` are rebuilt (and have their
  // rewrite counter advanced); all others keep their stores untouched, so
  // delta-driven callers re-scan only the rewritten relations.
  void Substitute(Value from, Value to);

  // Order-insensitive structural fingerprint, invariant under the *names*
  // of nulls: nulls are canonically renamed by first occurrence in the
  // sorted fact sequence. Two instances with equal fingerprints are
  // isomorphic-over-constants with overwhelming probability; used for
  // search-state memoization (collisions only cost completeness of the
  // memo, never soundness of answers, and are astronomically unlikely).
  uint64_t CanonicalFingerprint() const;

  // Multi-line rendering "R(a,b)." per fact, sorted, for goldens/debugging.
  std::string ToString(const SymbolTable& symbols) const;

 private:
  // One relation's storage: dense tuple store + dedup map + per-position
  // inverted index (index[position][value.packed()] = tuple indexes).
  // Shared copy-on-write between Instance copies.
  struct RelationStore {
    std::vector<Tuple> tuples;
    std::unordered_map<Tuple, int, TupleHash> dedup;
    std::vector<std::unordered_map<uint64_t, std::vector<int>>> index;
    uint64_t rewrites = 0;
  };

  // The store for `relation`, cloned first if currently shared.
  RelationStore& Mutable(RelationId relation);

  const Schema* schema_;
  size_t fact_count_ = 0;
  std::vector<std::shared_ptr<RelationStore>> stores_;
};

// The facts of an instance added since a watermark, as per-relation index
// ranges into Instance::tuples(). Relations rewritten since the watermark
// (Substitute advanced their rewrite counter) count as entirely new. The
// view captures the instance's extent at construction: facts added later
// fall outside it and belong to the next delta. Index ranges are stable
// under AddFact but invalidated by Substitute on the same relation.
class DeltaView {
 public:
  DeltaView(const Instance& instance, const InstanceWatermark& mark);

  // Everything currently in `instance` is new (first chase round).
  static DeltaView All(const Instance& instance) {
    return DeltaView(instance, InstanceWatermark::Origin(instance));
  }

  // The delta of `relation` is tuples(relation)[begin, end).
  size_t begin(RelationId relation) const { return begin_[relation]; }
  size_t end(RelationId relation) const { return end_[relation]; }
  bool dirty(RelationId relation) const {
    return begin_[relation] < end_[relation];
  }

  // True if any relation has new facts.
  bool any() const;

  const Instance& instance() const { return *instance_; }

 private:
  const Instance* instance_;
  std::vector<size_t> begin_;
  std::vector<size_t> end_;
};

}  // namespace pdx

#endif  // PDX_RELATIONAL_INSTANCE_H_
