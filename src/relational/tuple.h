#ifndef PDX_RELATIONAL_TUPLE_H_
#define PDX_RELATIONAL_TUPLE_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "relational/schema.h"
#include "relational/value.h"

namespace pdx {

// A tuple of values. Arity is implicit (checked against the schema when
// inserted into an Instance).
using Tuple = std::vector<Value>;

// Hash of a value sequence — the one tuple hash of the system: TupleHash,
// the Instance dedup set and the flat-index property tests all agree on it
// so a Tuple and its arena-stored copy hash identically.
inline uint64_t HashValueSeq(const Value* values, size_t n) {
  uint64_t h = 0x9e3779b97f4a7c15ull;
  for (size_t i = 0; i < n; ++i) {
    uint64_t x = values[i].packed();
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    h = h * 0x100000001b3ull ^ x;
  }
  return h;
}

// A borrowed, non-owning view of one stored tuple (a contiguous run of
// `arity` values inside a relation's arena). Invalidated by any mutation
// of the owning store. Cheap to copy; compares element-wise against other
// views and against owned Tuples.
class TupleView {
 public:
  TupleView() = default;
  TupleView(const Value* data, int arity) : data_(data), arity_(arity) {}

  int size() const { return arity_; }
  bool empty() const { return arity_ == 0; }
  const Value& operator[](int pos) const { return data_[pos]; }
  const Value* data() const { return data_; }
  const Value* begin() const { return data_; }
  const Value* end() const { return data_ + arity_; }

  Tuple ToTuple() const { return Tuple(data_, data_ + arity_); }

  bool operator==(TupleView other) const {
    return arity_ == other.arity_ &&
           std::equal(data_, data_ + arity_, other.data_);
  }
  bool operator==(const Tuple& tuple) const {
    return static_cast<size_t>(arity_) == tuple.size() &&
           std::equal(data_, data_ + arity_, tuple.data());
  }

 private:
  const Value* data_ = nullptr;
  int arity_ = 0;
};

// A borrowed view of one relation's whole tuple store: `count` tuples of
// `arity` values each, contiguous in insertion order. What
// Instance::tuples() returns; supports size(), indexing and range-for like
// the std::vector<Tuple> it replaces, but hands out TupleViews.
class TupleList {
 public:
  TupleList() = default;
  TupleList(const Value* data, size_t count, int arity)
      : data_(data), count_(count), arity_(arity) {}

  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  int arity() const { return arity_; }
  const Value* data() const { return data_; }

  TupleView operator[](size_t i) const {
    return TupleView(data_ + i * static_cast<size_t>(arity_), arity_);
  }

  class const_iterator {
   public:
    const_iterator(const TupleList* list, size_t i) : list_(list), i_(i) {}
    TupleView operator*() const { return (*list_)[i_]; }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator==(const const_iterator& other) const {
      return i_ == other.i_;
    }

   private:
    const TupleList* list_;
    size_t i_;
  };

  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, count_); }

 private:
  const Value* data_ = nullptr;
  size_t count_ = 0;
  int arity_ = 0;
};

// A tuple tagged with the relation it belongs to: R(t).
struct Fact {
  RelationId relation = -1;
  Tuple tuple;

  bool operator==(const Fact& other) const {
    return relation == other.relation && tuple == other.tuple;
  }
  bool operator<(const Fact& other) const {
    if (relation != other.relation) return relation < other.relation;
    return tuple < other.tuple;
  }
};

struct TupleHash {
  size_t operator()(const Tuple& t) const {
    return static_cast<size_t>(HashValueSeq(t.data(), t.size()));
  }
};

struct FactHash {
  size_t operator()(const Fact& f) const {
    return TupleHash()(f.tuple) * 31 + static_cast<size_t>(f.relation);
  }
};

// Renders "R(a,b,_N0)" using the schema for the relation name and the
// symbol table for values.
std::string FactToString(const Fact& fact, const Schema& schema,
                         const SymbolTable& symbols);

// Renders "(a,b,_N0)".
std::string TupleToString(const Tuple& tuple, const SymbolTable& symbols);

}  // namespace pdx

#endif  // PDX_RELATIONAL_TUPLE_H_
