#ifndef PDX_RELATIONAL_TUPLE_H_
#define PDX_RELATIONAL_TUPLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relational/schema.h"
#include "relational/value.h"

namespace pdx {

// A tuple of values. Arity is implicit (checked against the schema when
// inserted into an Instance).
using Tuple = std::vector<Value>;

// A tuple tagged with the relation it belongs to: R(t).
struct Fact {
  RelationId relation = -1;
  Tuple tuple;

  bool operator==(const Fact& other) const {
    return relation == other.relation && tuple == other.tuple;
  }
  bool operator<(const Fact& other) const {
    if (relation != other.relation) return relation < other.relation;
    return tuple < other.tuple;
  }
};

struct TupleHash {
  size_t operator()(const Tuple& t) const {
    uint64_t h = 0x9e3779b97f4a7c15ull;
    for (const Value& v : t) {
      uint64_t x = v.packed();
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ull;
      x ^= x >> 27;
      h = h * 0x100000001b3ull ^ x;
    }
    return static_cast<size_t>(h);
  }
};

struct FactHash {
  size_t operator()(const Fact& f) const {
    return TupleHash()(f.tuple) * 31 + static_cast<size_t>(f.relation);
  }
};

// Renders "R(a,b,_N0)" using the schema for the relation name and the
// symbol table for values.
std::string FactToString(const Fact& fact, const Schema& schema,
                         const SymbolTable& symbols);

// Renders "(a,b,_N0)".
std::string TupleToString(const Tuple& tuple, const SymbolTable& symbols);

}  // namespace pdx

#endif  // PDX_RELATIONAL_TUPLE_H_
