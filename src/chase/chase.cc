#include "chase/chase.h"

#include <unordered_set>
#include <utility>

#include "base/string_util.h"
#include "base/thread_pool.h"
#include "hom/matcher.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pdx {

namespace {

// Chase metrics on the process registry. Everything here is a
// deterministic function of the chase inputs — identical at every
// num_threads setting (obs_test pins this): the per-run totals are added
// once at the Chase() wrapper, the per-match and per-merge counters are
// incremented on the hot path (match counting runs inside pool workers,
// exercising the registry's thread-local shards).
struct ChaseMetrics {
  obs::Counter runs;
  obs::Counter steps;
  obs::Counter nulls;
  obs::Counter rounds;
  obs::Counter tgd_matches;
  obs::Counter egd_merges;
  obs::Counter compactions;
  obs::Histogram batch_triggers;  // violated triggers per dependency batch

  static ChaseMetrics& Get() {
    static ChaseMetrics* m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      auto* metrics = new ChaseMetrics();
      metrics->runs = reg.GetCounter("pdx_chase_runs_total");
      metrics->steps = reg.GetCounter("pdx_chase_steps_total");
      metrics->nulls = reg.GetCounter("pdx_chase_nulls_created_total");
      metrics->rounds = reg.GetCounter("pdx_chase_rounds_total");
      metrics->tgd_matches = reg.GetCounter("pdx_chase_tgd_matches_total");
      metrics->egd_merges = reg.GetCounter("pdx_chase_egd_merges_total");
      metrics->compactions = reg.GetCounter("pdx_chase_compactions_total");
      metrics->batch_triggers = reg.GetHistogram(
          "pdx_chase_batch_triggers", {1, 4, 16, 64, 256, 1024, 4096});
      return metrics;
    }();
    return *m;
  }
};

// Finds one violated trigger for `tgd` in `instance`: a body homomorphism
// with no head extension. Returns true and fills `binding` if found.
bool FindViolatedTgdTrigger(const Instance& instance, const Tgd& tgd,
                            Binding* out) {
  return EnumerateMatches(
      tgd.body, tgd.var_count, instance, Binding::Empty(tgd.var_count),
      [&](const Binding& body_match) {
        if (HasMatch(tgd.head, tgd.var_count, instance, body_match)) {
          return true;  // satisfied trigger; keep searching
        }
        *out = body_match;
        return false;  // violated trigger found; stop
      });
}

// Finds one violated egd trigger: a body homomorphism with
// h(left) != h(right). Returns true and fills `out` if found.
bool FindViolatedEgdTrigger(const Instance& instance, const Egd& egd,
                            Binding* out) {
  return EnumerateMatches(
      egd.body, egd.var_count, instance, Binding::Empty(egd.var_count),
      [&](const Binding& body_match) {
        if (body_match.values[egd.left_var] ==
            body_match.values[egd.right_var]) {
          return true;  // satisfied; keep searching
        }
        *out = body_match;
        return false;
      });
}

// Like FindViolatedEgdTrigger, but only scans body matches touching the
// delta (earlier matches were resolved when their facts were new).
bool FindViolatedEgdTriggerDelta(const Instance& instance,
                                 const DeltaView& delta, const Egd& egd,
                                 Binding* out) {
  return EnumerateMatchesDelta(
      egd.body, egd.var_count, instance, delta, Binding::Empty(egd.var_count),
      [&](const Binding& body_match) {
        if (body_match.values[egd.left_var] ==
            body_match.values[egd.right_var]) {
          return true;
        }
        *out = body_match;
        return false;
      });
}

// True if some body atom could match inside the delta at all.
bool TouchesDelta(const std::vector<Atom>& body, const DeltaView& delta) {
  for (const Atom& atom : body) {
    if (delta.dirty(atom.relation)) return true;
  }
  return false;
}

// Collects, in the deterministic order of EnumerateMatchesDelta, the body
// matches for which `keep` returns true. With a pool, the delta partitions
// are fanned across its workers — `keep` then runs concurrently against
// the shared immutable instance and must be a pure read (HasMatch and
// fingerprinting qualify) — and the per-partition buffers are concatenated
// in partition order, which reproduces the sequential enumeration order
// exactly. This is the collect half of every parallel chase phase; the
// apply half stays sequential.
std::vector<Binding> CollectDeltaMatches(
    const std::vector<Atom>& atoms, int var_count, const Instance& instance,
    const DeltaView& delta, ThreadPool* pool,
    const std::function<bool(const Binding&)>& keep,
    uint64_t parent_span = 0) {
  std::vector<Binding> out;
  if (pool == nullptr) {
    EnumerateMatchesDelta(atoms, var_count, instance, delta,
                          Binding::Empty(var_count),
                          [&](const Binding& m) {
                            if (keep(m)) out.push_back(m);
                            return true;
                          });
    return out;
  }
  // A few partitions per participant so uneven pivot widths still balance
  // via stealing.
  std::vector<DeltaPartition> parts = PartitionDeltaMatches(
      atoms, delta, static_cast<size_t>(pool->size()) * 4);
  if (parts.empty()) return out;
  std::vector<std::vector<Binding>> buffers(parts.size());
  pool->ParallelFor(parts.size(), [&](size_t p) {
    // One span per dependency × partition task, parented to the batch
    // span of the issuing thread (the thread_local nesting stack does not
    // cross into workers).
    obs::Span part_span(obs::Tracer::Global(), "chase.collect_part",
                        parent_span);
    part_span.AttrInt("partition", static_cast<int64_t>(p));
    EnumerateMatchesDeltaPartition(atoms, var_count, instance, delta,
                                   parts[p], Binding::Empty(var_count),
                                   [&](const Binding& m) {
                                     if (keep(m)) buffers[p].push_back(m);
                                     return true;
                                   });
    part_span.AttrInt("collected",
                      static_cast<int64_t>(buffers[p].size()));
  });
  for (std::vector<Binding>& buffer : buffers) {
    out.insert(out.end(), std::make_move_iterator(buffer.begin()),
               std::make_move_iterator(buffer.end()));
  }
  return out;
}

// Applies one tgd chase step for the trigger `binding`: extends the
// binding with fresh nulls for existential variables and inserts the head
// image. Returns the number of fresh nulls created.
int ApplyTgdStep(const Tgd& tgd, const Binding& binding, Instance* instance,
                 SymbolTable* symbols) {
  Binding extended = binding;
  int fresh = 0;
  for (VariableId v = 0; v < tgd.var_count; ++v) {
    if (tgd.existential[v] && !extended.bound[v]) {
      extended.Bind(v, symbols->FreshNull());
      ++fresh;
    }
  }
  for (const Atom& atom : tgd.head) {
    Tuple tuple;
    tuple.reserve(atom.terms.size());
    for (const Term& t : atom.terms) {
      if (t.is_constant()) {
        tuple.push_back(t.constant());
      } else {
        PDX_DCHECK(extended.bound[t.var()]);
        tuple.push_back(extended.values[t.var()]);
      }
    }
    instance->AddFact(atom.relation, std::move(tuple));
  }
  return fresh;
}

// Fingerprint of a fired trigger: tgd index plus the values assigned to
// the universally quantified body variables. Used by the oblivious chase
// to fire every trigger exactly once.
uint64_t TriggerFingerprint(size_t tgd_index, const Tgd& tgd,
                            const Binding& binding) {
  uint64_t h = 0xcbf29ce484222325ull ^ (tgd_index * 0x9e3779b97f4a7c15ull);
  for (VariableId v = 0; v < tgd.var_count; ++v) {
    if (!binding.bound[v]) continue;
    uint64_t x = binding.values[v].packed();
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    h = (h ^ x) * 0x100000001b3ull;
  }
  return h;
}

// The oblivious chase's once-per-trigger ledger, scoped by value
// generation: every fingerprint is additionally indexed under the null
// roots its binding used. When an egd merge absorbs a class, its roots are
// *retired* — bindings over them can never be produced again (the matcher
// now resolves those values to the winning root) — so every fingerprint of
// that generation is dropped wholesale. Long egd-heavy chases therefore
// hold only the fingerprints valid under the current resolution instead of
// the full firing history. (Triggers over the merged values refire with
// their post-merge binding, exactly as they did when Substitute rewrote
// the values out of existence.)
class TriggerLedger {
 public:
  // Returns true if the trigger is new and must fire.
  bool Insert(uint64_t fp, const Tgd& tgd, const Binding& binding) {
    if (!fired_.insert(fp).second) return false;
    for (VariableId v = 0; v < tgd.var_count; ++v) {
      if (binding.bound[v] && binding.values[v].is_null()) {
        by_root_[binding.values[v].packed()].push_back(fp);
      }
    }
    return true;
  }

  // True if the trigger already fired. A pure read: safe for concurrent
  // worker-side filtering while no Insert runs (the collect phase).
  bool Contains(uint64_t fp) const { return fired_.count(fp) > 0; }

  // Drops every fingerprint whose binding referenced a retired root.
  void RetireRoots(const std::vector<Value>& retired) {
    for (const Value& v : retired) {
      auto it = by_root_.find(v.packed());
      if (it == by_root_.end()) continue;
      for (uint64_t fp : it->second) fired_.erase(fp);
      by_root_.erase(it);
    }
  }

  size_t size() const { return fired_.size(); }

 private:
  std::unordered_set<uint64_t> fired_;
  std::unordered_map<uint64_t, std::vector<uint64_t>> by_root_;
};

// Applies one egd substitution for the violated trigger (a, b), or fails
// on a constant/constant clash. Used by the Substitute-based naive
// baseline; the delta engines use RunEgdsToFixpointDelta instead.
bool ApplyEgdStep(Value a, Value b, Instance* instance, SymbolTable* symbols,
                  const ChaseOptions& options, ChaseResult* result) {
  if (a.is_constant() && b.is_constant()) {
    result->outcome = ChaseOutcome::kFailed;
    result->failure = StrCat("egd equates distinct constants ",
                             symbols->ValueToString(a), " and ",
                             symbols->ValueToString(b));
    ++result->steps;
    return false;
  }
  if (a.is_null()) {
    instance->Substitute(a, b);
    result->merges[a.packed()] = b;
  } else {
    instance->Substitute(b, a);
    result->merges[b.packed()] = a;
  }
  ++result->steps;
  if (result->steps >= options.max_steps) {
    result->outcome = ChaseOutcome::kBudgetExhausted;
    return false;
  }
  return true;
}

// Applies target egds to fixpoint by full rescans (naive baseline).
// Returns false on a constant/constant clash or budget exhaustion (filling
// `result`); `merged` reports whether any substitution happened.
bool RunEgdsToFixpoint(const std::vector<Egd>& egds, Instance* instance,
                       SymbolTable* symbols, const ChaseOptions& options,
                       ChaseResult* result, bool* merged) {
  for (const Egd& egd : egds) {
    Binding trigger = Binding::Empty(egd.var_count);
    while (FindViolatedEgdTrigger(*instance, egd, &trigger)) {
      if (!ApplyEgdStep(trigger.values[egd.left_var],
                        trigger.values[egd.right_var], instance, symbols,
                        options, result)) {
        return false;
      }
      *merged = true;
    }
  }
  return true;
}

// The classic scan-from-scratch restricted chase with Substitute-based egd
// steps, kept as the cross-validation baseline (and A/B rival) for the
// delta-driven union-find default.
ChaseResult ChaseRestrictedNaive(const Instance& start,
                                 const std::vector<Tgd>& tgds,
                                 const std::vector<Egd>& egds,
                                 SymbolTable* symbols,
                                 const ChaseOptions& options) {
  ChaseResult result(start);
  Instance& instance = result.instance;
  while (true) {
    if (result.steps >= options.max_steps) {
      result.outcome = ChaseOutcome::kBudgetExhausted;
      return result;
    }
    bool applied = false;
    bool merged = false;
    if (!RunEgdsToFixpoint(egds, &instance, symbols, options, &result,
                           &merged)) {
      return result;
    }
    applied |= merged;
    for (const Tgd& tgd : tgds) {
      Binding trigger = Binding::Empty(tgd.var_count);
      while (FindViolatedTgdTrigger(instance, tgd, &trigger)) {
        result.nulls_created += ApplyTgdStep(tgd, trigger, &instance,
                                             symbols);
        ++result.steps;
        applied = true;
        if (result.steps >= options.max_steps) {
          result.outcome = ChaseOutcome::kBudgetExhausted;
          return result;
        }
      }
    }
    if (!applied) {
      result.outcome = ChaseOutcome::kSuccess;
      return result;
    }
  }
}

// Copies an egd fixpoint outcome into a ChaseResult. Returns false if the
// chase must stop (clash or budget).
bool AbsorbEgdOutcome(const EgdFixpointOutcome& egd_out, ChaseResult* result) {
  result->steps += egd_out.steps;
  if (egd_out.failed) {
    result->outcome = ChaseOutcome::kFailed;
    result->failure = egd_out.failure;
    return false;
  }
  if (egd_out.budget_exhausted) {
    result->outcome = ChaseOutcome::kBudgetExhausted;
    return false;
  }
  return true;
}

// The delta-driven restricted chase: the fixpoint loop works off a
// watermark into the instance; each round evaluates only triggers whose
// body touches a fact beyond the watermark (semi-naive evaluation via
// EnumerateMatchesDelta) or a tuple dirtied by an egd merge, then advances
// the watermark to the round's frontier. Egd steps are union-find merges
// in the instance's value layer: O(α) unions that never rewrite tuples,
// so watermarks stay valid and only the dirty equivalence classes are
// re-examined.
//
// With a pool, each tgd's trigger collection is fanned across the delta
// partitions; the apply phase stays sequential in enumeration order, and
// later tgds still see earlier tgds' additions, so the per-round state
// sequence — and with it every fresh-null assignment — is bit-identical
// to the single-threaded run.
ChaseResult ChaseRestrictedDelta(const Instance& start,
                                 const std::vector<Tgd>& tgds,
                                 const std::vector<Egd>& egds,
                                 SymbolTable* symbols,
                                 const ChaseOptions& options,
                                 ThreadPool* pool) {
  ChaseResult result(start);
  Instance& instance = result.instance;
  // Everything is "new" before the first round, so round one degenerates
  // to the full scan the naive chase would do — exactly once.
  InstanceWatermark mark = InstanceWatermark::Origin(instance);
  // Per-relation indexes of pre-watermark tuples dirtied by this round's
  // merges; the tgd phase re-examines them alongside the additive delta.
  std::vector<std::vector<int>> extras;
  // Dirty-tuple entries reported by merges since the last exact duplicate
  // count: an upper bound on new resolved duplicates, so the O(n)
  // ResolvedFactCount check runs only when compaction could plausibly
  // trigger.
  int64_t dirty_accum = 0;
  ChaseMetrics& metrics = ChaseMetrics::Get();
  int64_t round = 0;
  while (true) {
    if (result.steps >= options.max_steps) {
      result.outcome = ChaseOutcome::kBudgetExhausted;
      return result;
    }
    obs::Span round_span(obs::Tracer::Global(), "chase.round");
    round_span.AttrInt("round", round);
    metrics.rounds.Inc();
    ++round;
    EgdFixpointOutcome egd_out = RunEgdsToFixpointDelta(
        egds, &instance, mark, options.max_steps - result.steps, symbols,
        &extras, pool);
    if (!AbsorbEgdOutcome(egd_out, &result)) return result;
    dirty_accum += egd_out.dirtied;
    DeltaView delta(instance, mark, extras);
    if (!delta.any()) {
      // Nothing new since the last full round: every trigger has been
      // examined against a state it still holds in. Fixpoint.
      result.outcome = ChaseOutcome::kSuccess;
      return result;
    }
    // Facts present now are covered once this round's triggers have been
    // evaluated; facts the round itself adds become the next delta.
    InstanceWatermark frontier = instance.TakeWatermark();
    for (size_t d = 0; d < tgds.size(); ++d) {
      const Tgd& tgd = tgds[d];
      if (!TouchesDelta(tgd.body, delta)) continue;
      obs::Span tgd_span(obs::Tracer::Global(), "chase.tgd");
      tgd_span.AttrInt("dep", static_cast<int64_t>(d));
      // Collect the violated triggers for this delta, then apply them.
      // (Applying while enumerating would mutate the instance under the
      // matcher.)
      std::vector<Binding> pending = CollectDeltaMatches(
          tgd.body, tgd.var_count, instance, delta, pool,
          [&](const Binding& body_match) {
            metrics.tgd_matches.Inc();
            return !HasMatch(tgd.head, tgd.var_count, instance, body_match);
          },
          tgd_span.id());
      metrics.batch_triggers.Observe(static_cast<int64_t>(pending.size()));
      int64_t applied = 0;
      for (const Binding& trigger : pending) {
        // Re-check: an earlier application may have satisfied it.
        if (HasMatch(tgd.head, tgd.var_count, instance, trigger)) {
          continue;
        }
        result.nulls_created += ApplyTgdStep(tgd, trigger, &instance,
                                             symbols);
        ++result.steps;
        ++applied;
        if (result.steps >= options.max_steps) {
          result.outcome = ChaseOutcome::kBudgetExhausted;
          return result;
        }
      }
      tgd_span.AttrInt("collected", static_cast<int64_t>(pending.size()))
          .AttrInt("applied", applied);
    }
    mark = std::move(frontier);
    extras.clear();
    // Auto-compaction: merges leave resolved-duplicate raw tuples behind.
    // Once enough dirt has accumulated for the duplicate ratio to
    // plausibly exceed the threshold, count exactly; if it does, swap in
    // the compacted store (keeping the resolver, so earlier merge history
    // still resolves) and restart the watermark. The extra rescan round
    // fires nothing — satisfied triggers stay satisfied — so outcome,
    // steps and fingerprint are unchanged.
    if (options.compact_duplicate_ratio > 0 &&
        options.compact_duplicate_ratio < 1 && instance.has_merges() &&
        instance.fact_count() >= options.compact_min_facts &&
        static_cast<double>(dirty_accum) >=
            options.compact_duplicate_ratio *
                static_cast<double>(instance.fact_count())) {
      size_t duplicates =
          instance.fact_count() - instance.ResolvedFactCount();
      if (static_cast<double>(duplicates) >=
          options.compact_duplicate_ratio *
              static_cast<double>(instance.fact_count())) {
        obs::Span compact_span(obs::Tracer::Global(), "chase.compact");
        compact_span.AttrInt("duplicates",
                             static_cast<int64_t>(duplicates));
        instance = instance.CompactResolved(/*keep_resolver=*/true);
        mark = InstanceWatermark::Origin(instance);
        ++result.compactions;
      }
      dirty_accum = 0;
    }
  }
}

// The delta-driven oblivious chase: every body homomorphism of every tgd
// fires exactly once, tracked by the generation-scoped TriggerLedger. Only
// matches touching the delta (additive or merge-dirtied) are enumerated
// per round; a match wholly over old, unmerged facts was enumerated (and
// fingerprinted) in the round its newest fact arrived, so nothing is
// missed.
ChaseResult ChaseOblivious(const Instance& start,
                           const std::vector<Tgd>& tgds,
                           const std::vector<Egd>& egds,
                           SymbolTable* symbols, const ChaseOptions& options,
                           ThreadPool* pool) {
  ChaseResult result(start);
  Instance& instance = result.instance;
  TriggerLedger fired;
  InstanceWatermark mark = InstanceWatermark::Origin(instance);
  std::vector<std::vector<int>> extras;
  ChaseMetrics& metrics = ChaseMetrics::Get();
  int64_t round = 0;
  while (true) {
    if (result.steps >= options.max_steps) {
      result.outcome = ChaseOutcome::kBudgetExhausted;
      return result;
    }
    obs::Span round_span(obs::Tracer::Global(), "chase.round");
    round_span.AttrInt("round", round);
    metrics.rounds.Inc();
    ++round;
    EgdFixpointOutcome egd_out = RunEgdsToFixpointDelta(
        egds, &instance, mark, options.max_steps - result.steps, symbols,
        &extras, pool);
    if (!AbsorbEgdOutcome(egd_out, &result)) return result;
    // Merged-away roots can never appear in a binding again: drop their
    // fingerprint generation.
    fired.RetireRoots(egd_out.retired);
    DeltaView delta(instance, mark, extras);
    if (!delta.any()) {
      result.outcome = ChaseOutcome::kSuccess;
      return result;
    }
    InstanceWatermark frontier = instance.TakeWatermark();
    for (size_t d = 0; d < tgds.size(); ++d) {
      const Tgd& tgd = tgds[d];
      if (!TouchesDelta(tgd.body, delta)) continue;
      obs::Span tgd_span(obs::Tracer::Global(), "chase.tgd");
      tgd_span.AttrInt("dep", static_cast<int64_t>(d));
      // Collect unfired triggers first (the instance must not change under
      // the matcher), then fire them. The ledger is only read during
      // collection (workers filter against it concurrently); Insert runs
      // in the sequential fire loop, which also collapses the repeats the
      // extras overlap can produce.
      std::vector<Binding> pending = CollectDeltaMatches(
          tgd.body, tgd.var_count, instance, delta, pool,
          [&](const Binding& body_match) {
            metrics.tgd_matches.Inc();
            return !fired.Contains(TriggerFingerprint(d, tgd, body_match));
          },
          tgd_span.id());
      metrics.batch_triggers.Observe(static_cast<int64_t>(pending.size()));
      for (const Binding& trigger : pending) {
        if (!fired.Insert(TriggerFingerprint(d, tgd, trigger), tgd,
                          trigger)) {
          continue;
        }
        result.nulls_created += ApplyTgdStep(tgd, trigger, &instance,
                                             symbols);
        ++result.steps;
        if (result.steps >= options.max_steps) {
          result.outcome = ChaseOutcome::kBudgetExhausted;
          return result;
        }
      }
    }
    mark = std::move(frontier);
    extras.clear();
  }
}

}  // namespace

EgdFixpointOutcome RunEgdsToFixpointDelta(
    const std::vector<Egd>& egds, Instance* instance,
    const InstanceWatermark& mark, int64_t max_steps,
    const SymbolTable* symbols, std::vector<std::vector<int>>* extras,
    ThreadPool* pool) {
  EgdFixpointOutcome out;
  if (egds.empty()) return out;
  obs::Span fixpoint_span(obs::Tracer::Global(), "chase.egd_fixpoint");
  obs::Counter& merge_counter = ChaseMetrics::Get().egd_merges;
  int64_t passes = 0;
  int n = instance->schema().relation_count();
  if (extras->empty()) extras->resize(n);
  // Pass 1 pivots on the additive delta beyond `mark` (plus any extras the
  // caller already accumulated). A merge changes the resolved content of
  // exactly the tuples holding the losing class, so any trigger it newly
  // violates must bind one of them: pass k+1 pivots only on the tuples
  // pass k dirtied, until no merge fires.
  std::vector<std::vector<int>> frontier;
  bool first_pass = true;
  while (true) {
    obs::Span pass_span(obs::Tracer::Global(), "chase.egd_pass");
    pass_span.AttrInt("pass", passes);
    ++passes;
    DeltaView delta =
        first_pass ? DeltaView(*instance, mark, *extras)
                   : DeltaView(*instance, instance->TakeWatermark(), frontier);
    std::vector<std::vector<int>> pass_dirty(n);
    bool merged_any = false;
    for (const Egd& egd : egds) {
      if (!TouchesDelta(egd.body, delta)) continue;
      // Applies one merge, sharing the conflict / dirty / budget
      // bookkeeping between the two collection disciplines below. Returns
      // false when the fixpoint must stop (out is final).
      auto apply_merge = [&](Value a, Value b) {
        Instance::MergeResult merge = instance->MergeValues(a, b);
        ++out.steps;
        if (merge.conflict) {
          out.failed = true;
          out.failure =
              symbols != nullptr
                  ? StrCat("egd equates distinct constants ",
                           symbols->ValueToString(merge.winner), " and ",
                           symbols->ValueToString(merge.loser))
                  : "egd equates distinct constants";
          return false;
        }
        PDX_DCHECK(merge.merged);
        merge_counter.Inc();
        for (const auto& [relation, idx] : merge.dirty) {
          (*extras)[relation].push_back(idx);
          pass_dirty[relation].push_back(idx);
        }
        out.dirtied += static_cast<int64_t>(merge.dirty.size());
        out.retired.insert(out.retired.end(), merge.reassigned.begin(),
                           merge.reassigned.end());
        merged_any = true;
        if (out.steps >= max_steps) {
          out.budget_exhausted = true;
          return false;
        }
        return true;
      };
      if (pool != nullptr) {
        // Batched collect-then-apply: one parallel enumeration gathers
        // every trigger violated under the pre-pass resolution, then the
        // merges run sequentially, skipping pairs an earlier merge of the
        // batch already equated. Triggers a merge newly enables are caught
        // by the next pass's dirty frontier — the same closure the rescan
        // discipline reaches, with the same number of successful merges
        // (each union lowers the class count by exactly one); only the
        // union order, i.e. which root survives, can differ.
        std::vector<Binding> violated = CollectDeltaMatches(
            egd.body, egd.var_count, *instance, delta, pool,
            [&](const Binding& m) {
              return m.values[egd.left_var] != m.values[egd.right_var];
            });
        for (const Binding& trigger : violated) {
          Value a = instance->ResolveValue(trigger.values[egd.left_var]);
          Value b = instance->ResolveValue(trigger.values[egd.right_var]);
          if (a == b) continue;
          if (!apply_merge(a, b)) return out;
        }
      } else {
        Binding trigger = Binding::Empty(egd.var_count);
        // Merges never invalidate tuple indexes, so the view stays valid
        // across the whole pass; the matcher consults the live resolver.
        while (FindViolatedEgdTriggerDelta(*instance, delta, egd,
                                           &trigger)) {
          if (!apply_merge(trigger.values[egd.left_var],
                           trigger.values[egd.right_var])) {
            return out;
          }
        }
      }
    }
    if (!merged_any) {
      fixpoint_span.AttrInt("passes", passes).AttrInt("merges", out.steps);
      return out;
    }
    first_pass = false;
    frontier = std::move(pass_dirty);
  }
}

namespace {

// 0 = hardware concurrency; anything else is taken literally.
int ResolveThreadCount(const ChaseOptions& options) {
  return options.num_threads <= 0 ? ThreadPool::HardwareConcurrency()
                                  : options.num_threads;
}

const char* StrategyName(ChaseStrategy strategy) {
  switch (strategy) {
    case ChaseStrategy::kOblivious: return "oblivious";
    case ChaseStrategy::kRestrictedNaive: return "restricted_naive";
    case ChaseStrategy::kRestricted: return "restricted";
  }
  return "unknown";
}

ChaseResult ChaseDispatch(const Instance& start, const std::vector<Tgd>& tgds,
                          const std::vector<Egd>& egds, SymbolTable* symbols,
                          const ChaseOptions& options) {
  switch (options.strategy) {
    case ChaseStrategy::kOblivious: {
      int threads = ResolveThreadCount(options);
      if (threads > 1) {
        ThreadPool pool(threads);
        return ChaseOblivious(start, tgds, egds, symbols, options, &pool);
      }
      return ChaseOblivious(start, tgds, egds, symbols, options, nullptr);
    }
    case ChaseStrategy::kRestrictedNaive:
      return ChaseRestrictedNaive(start, tgds, egds, symbols, options);
    case ChaseStrategy::kRestricted: {
      int threads = ResolveThreadCount(options);
      if (threads > 1) {
        ThreadPool pool(threads);
        return ChaseRestrictedDelta(start, tgds, egds, symbols, options,
                                    &pool);
      }
      return ChaseRestrictedDelta(start, tgds, egds, symbols, options,
                                  nullptr);
    }
  }
  ChaseResult result(start);
  result.outcome = ChaseOutcome::kBudgetExhausted;
  return result;
}

}  // namespace

ChaseResult Chase(const Instance& start, const std::vector<Tgd>& tgds,
                  const std::vector<Egd>& egds, SymbolTable* symbols,
                  const ChaseOptions& options) {
  PDX_CHECK(symbols != nullptr);
  obs::Span run_span(obs::Tracer::Global(), "chase");
  run_span.AttrStr("strategy", StrategyName(options.strategy))
      .AttrInt("threads", ResolveThreadCount(options))
      .AttrInt("tgds", static_cast<int64_t>(tgds.size()))
      .AttrInt("egds", static_cast<int64_t>(egds.size()));
  ChaseResult result = ChaseDispatch(start, tgds, egds, symbols, options);
  run_span.AttrInt("steps", result.steps)
      .AttrBool("failed", result.outcome == ChaseOutcome::kFailed);
  ChaseMetrics& metrics = ChaseMetrics::Get();
  metrics.runs.Inc();
  metrics.steps.Inc(result.steps);
  metrics.nulls.Inc(result.nulls_created);
  metrics.compactions.Inc(result.compactions);
  return result;
}

ChaseResult Chase(const Instance& start, const std::vector<Tgd>& tgds,
                  SymbolTable* symbols, const ChaseOptions& options) {
  return Chase(start, tgds, {}, symbols, options);
}

bool SatisfiesTgd(const Instance& instance, const Tgd& tgd) {
  Binding trigger = Binding::Empty(tgd.var_count);
  return !FindViolatedTgdTrigger(instance, tgd, &trigger);
}

bool SatisfiesEgd(const Instance& instance, const Egd& egd) {
  Binding trigger = Binding::Empty(egd.var_count);
  return !FindViolatedEgdTrigger(instance, egd, &trigger);
}

bool SatisfiesDisjunctiveTgd(const Instance& instance,
                             const DisjunctiveTgd& tgd) {
  return !EnumerateMatches(
      tgd.body, tgd.var_count, instance, Binding::Empty(tgd.var_count),
      [&](const Binding& body_match) {
        for (const std::vector<Atom>& disjunct : tgd.head_disjuncts) {
          if (HasMatch(disjunct, tgd.var_count, instance, body_match)) {
            return true;  // this trigger satisfied; keep searching
          }
        }
        return false;  // violated trigger found; stop (=> not satisfied)
      });
}

bool SatisfiesAll(const Instance& instance, const DependencySet& deps) {
  for (const Tgd& tgd : deps.tgds) {
    if (!SatisfiesTgd(instance, tgd)) return false;
  }
  for (const Egd& egd : deps.egds) {
    if (!SatisfiesEgd(instance, egd)) return false;
  }
  for (const DisjunctiveTgd& tgd : deps.disjunctive_tgds) {
    if (!SatisfiesDisjunctiveTgd(instance, tgd)) return false;
  }
  return true;
}

}  // namespace pdx
