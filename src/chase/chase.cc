#include "chase/chase.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <unordered_set>
#include <utility>

#include "base/string_util.h"
#include "base/thread_pool.h"
#include "chase/journal.h"
#include "chase/trigger_ledger.h"
#include "hom/matcher.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "plan/compiler.h"
#include "plan/ir.h"
#include "plan/plan_cache.h"

namespace pdx {

namespace {

// Chase metrics on the process registry. Everything above the speculative
// block is a deterministic function of the chase inputs — identical at
// every num_threads setting (obs_test pins this): the per-run totals are
// added once at the Chase() wrapper, the per-match and per-merge counters
// are incremented on the hot path (match counting runs inside pool
// workers, exercising the registry's thread-local shards). The speculative
// counters move only under ChaseOptions::speculative and sit outside the
// invariance contract: how many reserved null ids go unused depends on
// partitioning and block-allocation accidents, not on the chase result.
struct ChaseMetrics {
  obs::Counter runs;
  obs::Counter steps;
  obs::Counter nulls;
  obs::Counter rounds;
  obs::Counter tgd_matches;
  obs::Counter egd_merges;
  obs::Counter compactions;
  obs::Histogram batch_triggers;  // violated triggers per dependency batch
  // Speculative/scheduled-mode extras (see RunTgdPhaseScheduled). Like
  // the speculative counters, sharded_inserts sits outside the invariance
  // contract: whether a batch clears the sharding threshold depends on
  // pool availability, not on the chase result.
  obs::Counter spec_triggers;       // head instantiations done in workers
  obs::Counter spec_nulls_retired;  // reserved null ids never inserted
  obs::Counter pipeline_overlaps;   // collections overlapped with an apply
  obs::Counter sharded_inserts;     // tuples drained via AddFactSharded

  static ChaseMetrics& Get() {
    static ChaseMetrics* m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      auto* metrics = new ChaseMetrics();
      metrics->runs = reg.GetCounter("pdx_chase_runs_total");
      metrics->steps = reg.GetCounter("pdx_chase_steps_total");
      metrics->nulls = reg.GetCounter("pdx_chase_nulls_created_total");
      metrics->rounds = reg.GetCounter("pdx_chase_rounds_total");
      metrics->tgd_matches = reg.GetCounter("pdx_chase_tgd_matches_total");
      metrics->egd_merges = reg.GetCounter("pdx_chase_egd_merges_total");
      metrics->compactions = reg.GetCounter("pdx_chase_compactions_total");
      metrics->batch_triggers = reg.GetHistogram(
          "pdx_chase_batch_triggers", {1, 4, 16, 64, 256, 1024, 4096});
      metrics->spec_triggers =
          reg.GetCounter("pdx_chase_speculative_triggers_total");
      metrics->spec_nulls_retired =
          reg.GetCounter("pdx_chase_speculative_nulls_retired_total");
      metrics->pipeline_overlaps =
          reg.GetCounter("pdx_chase_pipeline_overlaps_total");
      metrics->sharded_inserts =
          reg.GetCounter("pdx_chase_sharded_inserts_total");
      return metrics;
    }();
    return *m;
  }
};

// Finds one violated trigger for `tgd` in `instance`: a body homomorphism
// with no head extension. Returns true and fills `binding` if found.
bool FindViolatedTgdTrigger(const Instance& instance, const Tgd& tgd,
                            Binding* out) {
  return EnumerateMatches(
      tgd.body, tgd.var_count, instance, Binding::Empty(tgd.var_count),
      [&](const Binding& body_match) {
        if (HasMatch(tgd.head, tgd.var_count, instance, body_match)) {
          return true;  // satisfied trigger; keep searching
        }
        *out = body_match;
        return false;  // violated trigger found; stop
      });
}

// Finds one violated egd trigger: a body homomorphism with
// h(left) != h(right). Returns true and fills `out` if found.
bool FindViolatedEgdTrigger(const Instance& instance, const Egd& egd,
                            Binding* out) {
  return EnumerateMatches(
      egd.body, egd.var_count, instance, Binding::Empty(egd.var_count),
      [&](const Binding& body_match) {
        if (body_match.values[egd.left_var] ==
            body_match.values[egd.right_var]) {
          return true;  // satisfied; keep searching
        }
        *out = body_match;
        return false;
      });
}

// Like FindViolatedEgdTrigger, but only scans body matches touching the
// delta (earlier matches were resolved when their facts were new). With a
// non-null plan, enumeration runs through the compiled body program.
bool FindViolatedEgdTriggerDelta(const Instance& instance,
                                 const DeltaView& delta, const Egd& egd,
                                 const plan::EgdPlan* plan, Binding* out) {
  const auto fn = [&](const Binding& body_match) {
    if (body_match.values[egd.left_var] ==
        body_match.values[egd.right_var]) {
      return true;
    }
    *out = body_match;
    return false;
  };
  if (plan != nullptr) {
    return EnumerateMatchesDeltaPlanned(plan->body, instance, delta,
                                        Binding::Empty(egd.var_count), fn);
  }
  return EnumerateMatchesDelta(egd.body, egd.var_count, instance, delta,
                               Binding::Empty(egd.var_count), fn);
}

// True if some body atom could match inside the delta at all.
bool TouchesDelta(const std::vector<Atom>& body, const DeltaView& delta) {
  for (const Atom& atom : body) {
    if (delta.dirty(atom.relation)) return true;
  }
  return false;
}

// Collects, in the deterministic order of EnumerateMatchesDelta, the body
// matches for which `keep` returns true. With a pool, the delta partitions
// are fanned across its workers — `keep` then runs concurrently against
// the shared immutable instance and must be a pure read (HasMatch and
// fingerprinting qualify) — and the per-partition buffers are concatenated
// in partition order, which reproduces the sequential enumeration order
// exactly. This is the collect half of every parallel chase phase; the
// apply half stays sequential.
// Collects into `out` with element reuse: the first `returned` entries of
// `out` are this round's triggers; entries beyond that are retained
// capacity from earlier rounds (never shrunk), so steady-state rounds
// copy-assign into existing Binding buffers instead of re-allocating two
// vectors per trigger. Callers keep one buffer alive across the round
// loop and read only [0, returned).
size_t CollectDeltaMatches(
    const std::vector<Atom>& atoms, int var_count, const Instance& instance,
    const DeltaView& delta, ThreadPool* pool, const plan::BodyPlan* body_plan,
    const std::function<bool(const Binding&)>& keep,
    std::vector<Binding>* out, uint64_t parent_span = 0) {
  size_t used = 0;
  const auto emit = [&](const Binding& m) {
    if (used < out->size()) {
      (*out)[used] = m;
    } else {
      out->push_back(m);
    }
    ++used;
  };
  if (pool == nullptr) {
    const auto collect = [&](const Binding& m) {
      if (keep(m)) emit(m);
      return true;
    };
    if (body_plan != nullptr) {
      EnumerateMatchesDeltaPlanned(*body_plan, instance, delta,
                                   Binding::Empty(var_count), collect);
    } else {
      EnumerateMatchesDelta(atoms, var_count, instance, delta,
                            Binding::Empty(var_count), collect);
    }
    return used;
  }
  // A few partitions per participant so uneven pivot widths still balance
  // via stealing.
  std::vector<DeltaPartition> parts = PartitionDeltaMatches(
      atoms, delta, static_cast<size_t>(pool->size()) * 4);
  if (parts.empty()) return used;
  std::vector<std::vector<Binding>> buffers(parts.size());
  pool->ParallelFor(parts.size(), [&](size_t p) {
    // One span per dependency × partition task, parented to the batch
    // span of the issuing thread (the thread_local nesting stack does not
    // cross into workers).
    obs::Span part_span(obs::Tracer::Global(), "chase.collect_part",
                        parent_span);
    part_span.AttrInt("partition", static_cast<int64_t>(p));
    const auto collect = [&](const Binding& m) {
      if (keep(m)) buffers[p].push_back(m);
      return true;
    };
    if (body_plan != nullptr) {
      EnumerateMatchesDeltaPartitionPlanned(*body_plan, instance, delta,
                                            parts[p],
                                            Binding::Empty(var_count),
                                            collect);
    } else {
      EnumerateMatchesDeltaPartition(atoms, var_count, instance, delta,
                                     parts[p], Binding::Empty(var_count),
                                     collect);
    }
    part_span.AttrInt("collected",
                      static_cast<int64_t>(buffers[p].size()));
  });
  for (std::vector<Binding>& buffer : buffers) {
    for (Binding& m : buffer) emit(m);
  }
  return used;
}

// Applies one tgd chase step for the trigger `binding`: extends the
// binding with fresh nulls for existential variables and inserts the head
// image. Returns the number of fresh nulls created. With a journal, the
// extended row is recorded under `dep` for deletion propagation.
int ApplyTgdStep(const Tgd& tgd, const Binding& binding, Instance* instance,
                 SymbolTable* symbols, size_t dep = 0,
                 ChaseJournal* journal = nullptr) {
  Binding extended = binding;
  int fresh = 0;
  for (VariableId v = 0; v < tgd.var_count; ++v) {
    if (tgd.existential[v] && !extended.bound[v]) {
      extended.Bind(v, symbols->FreshNull());
      ++fresh;
    }
  }
  if (journal != nullptr) {
    journal->RecordTgd(dep, extended.values.data(), extended.values.size(),
                       tgd.existential);
  }
  for (const Atom& atom : tgd.head) {
    Tuple tuple;
    tuple.reserve(atom.terms.size());
    for (const Term& t : atom.terms) {
      if (t.is_constant()) {
        tuple.push_back(t.constant());
      } else {
        PDX_DCHECK(extended.bound[t.var()]);
        tuple.push_back(extended.values[t.var()]);
      }
    }
    instance->AddFact(atom.relation, std::move(tuple));
  }
  return fresh;
}

// ApplyTgdStep through the fused apply template: fresh nulls drawn in the
// template's existential order (ascending variable ids — the same order
// the interpreted loop visits them), head rows built slot by slot. `tgd`
// is only consulted when journaling (the existential fingerprint mask).
int ApplyTgdStepPlanned(const plan::ApplyTemplate& apply,
                        const Binding& binding, Instance* instance,
                        SymbolTable* symbols, const Tgd* tgd = nullptr,
                        size_t dep = 0, ChaseJournal* journal = nullptr) {
  // Zero-allocation apply: fresh nulls land in a stack array parallel to
  // apply.existentials (ascending variable order, same as the interpreted
  // loop) and each head row is staged in a stack buffer for the span
  // AddFact. Exotic shapes fall back to the Binding-extension path.
  constexpr size_t kStack = 16;
  const size_t n_exist = apply.existentials.size();
  bool narrow = n_exist <= kStack;
  for (const plan::HeadAtom& atom : apply.head_atoms) {
    narrow = narrow && static_cast<size_t>(atom.arity) <= kStack;
  }
  if (narrow) {
    Value fresh[kStack];
    for (size_t i = 0; i < n_exist; ++i) {
      PDX_DCHECK(!binding.bound[apply.existentials[i]]);
      fresh[i] = symbols->FreshNull();
    }
    if (journal != nullptr) {
      // Journaled runs pay one extended-row materialization per firing;
      // the journal-off hot path stays allocation-free.
      std::vector<Value> full = binding.values;
      for (size_t i = 0; i < n_exist; ++i) {
        full[apply.existentials[i]] = fresh[i];
      }
      journal->RecordTgd(dep, full.data(), full.size(), tgd->existential);
    }
    Value row[kStack];
    size_t cursor = 0;
    for (const plan::HeadAtom& atom : apply.head_atoms) {
      for (int i = 0; i < atom.arity; ++i) {
        const plan::HeadSlot& slot = apply.slots[cursor++];
        if (slot.is_const) {
          row[i] = slot.key;
        } else if (binding.bound[slot.var]) {
          row[i] = binding.values[slot.var];
        } else {
          // Existential: the list is tiny (fresh_per_trigger), so a
          // linear scan beats any per-trigger map.
          size_t e = 0;
          while (e < n_exist && apply.existentials[e] != slot.var) ++e;
          PDX_DCHECK(e < n_exist);
          row[i] = e < n_exist ? fresh[e] : Value();
        }
      }
      instance->AddFact(atom.relation, row,
                        static_cast<size_t>(atom.arity));
    }
    return apply.fresh_per_trigger;
  }
  Binding extended = binding;
  for (VariableId v : apply.existentials) {
    PDX_DCHECK(!extended.bound[v]);
    extended.Bind(v, symbols->FreshNull());
  }
  if (journal != nullptr) {
    journal->RecordTgd(dep, extended.values.data(), extended.values.size(),
                       tgd->existential);
  }
  size_t cursor = 0;
  for (const plan::HeadAtom& atom : apply.head_atoms) {
    Tuple tuple;
    tuple.reserve(atom.arity);
    for (int i = 0; i < atom.arity; ++i) {
      const plan::HeadSlot& slot = apply.slots[cursor++];
      tuple.push_back(slot.is_const ? slot.key : extended.values[slot.var]);
    }
    instance->AddFact(atom.relation, std::move(tuple));
  }
  return apply.fresh_per_trigger;
}

// The restricted engine's head-satisfaction probe, planned when a compiled
// tgd plan is available (the plan's head program was compiled with the
// universal variables pre-bound).
bool HeadSatisfied(const Tgd& tgd, const plan::TgdPlan* plan,
                   const Instance& instance, const Binding& body_match) {
  if (plan != nullptr) {
    return HasMatchPlanned(plan->head, instance, body_match);
  }
  return HasMatch(tgd.head, tgd.var_count, instance, body_match);
}

// TriggerFingerprint and TriggerLedger moved to chase/trigger_ledger.h:
// the deletion-propagation journal (chase/journal.h) shares the ledger's
// exactly-once/retire discipline, so the class is now a public header.

// --- Speculative parallel execution (ChaseOptions::speculative) --------
//
// In barrier mode, workers only *collect* triggers and the sequential
// apply phase invents nulls and inserts, so results are bit-identical at
// every thread count. Speculative mode moves head instantiation (and, for
// the oblivious engine, ledger admission) into the workers and overlaps
// collection of the next compatible dependency with the current apply
// phase. The per-round trigger sets, apply order, outcome, steps,
// nulls_created and every resolved-view property are unchanged — but
// which null *ids* the existential witnesses get depends on which worker
// instantiated them, so results equal the barrier mode's only up to a
// bijective null renaming (CanonicalizeNulls in hom/instance_hom.h).

// Relation read/write footprints (plan::TgdFootprint, computed by
// plan::ComputeTgdFootprints and cached on compiled settings) drive the
// cross-dependency scheduler. Collecting a tgd's triggers reads its body
// relations (the matcher) and its head relations (the restricted
// violated-trigger filter probes heads via HasMatch; kept in the read set
// for both engines); applying a tgd writes its head relations. Collection
// of B may safely overlap application of A iff A's writes are disjoint
// from B's reads: the copy-on-write stores never move on append — only
// the written relation's store changes — so every relation outside A's
// write set is stable under concurrent readers, and B's trigger set is
// the same whether it is collected before or after A's facts land.
using plan::TgdFootprint;

bool FootprintsCompatible(const TgdFootprint& applying,
                          const TgdFootprint& collecting) {
  const size_t n = std::min(applying.writes.size(), collecting.reads.size());
  for (size_t r = 0; r < n; ++r) {
    if (applying.writes[r] && collecting.reads[r]) return false;
  }
  return true;
}

// --- Sharded apply --------------------------------------------------
//
// The apply half of a batch, restructured as decide-then-insert: a
// sequential decide pass (overlay probe or ledger admission — never a
// physical index probe) fixes which triggers fire and invents their
// fresh nulls in deterministic order, queueing the head tuples on
// per-relation lists; then the insert pass drains one relation per pool
// worker through Instance::AddFactSharded. Per-relation insert order is
// the decide order and relation stores are disjoint, so the final raw
// stores are byte-identical to draining inline — which is exactly what
// happens without a pool (or while an async collect owns the workers:
// the pool runs one job at a time).
class ShardedInserts {
 public:
  explicit ShardedInserts(int relation_count)
      : per_relation_(relation_count) {}

  void Add(RelationId relation, Tuple tuple) {
    per_relation_[relation].push_back(std::move(tuple));
    ++total_;
  }

  size_t total() const { return total_; }

  // Inserts everything queued and folds the deferred fact counts; passes
  // with too little work (or no usable pool) insert inline — the result
  // is identical either way. Returns the number of tuples the raw stores
  // actually gained.
  size_t Drain(Instance* instance, ThreadPool* pool, uint64_t parent_span) {
    std::vector<RelationId> relations;
    for (RelationId r = 0;
         r < static_cast<RelationId>(per_relation_.size()); ++r) {
      if (!per_relation_[r].empty()) relations.push_back(r);
    }
    size_t added = 0;
    if (pool == nullptr || relations.size() < 2 ||
        total_ < kMinFactsForSharding) {
      for (RelationId r : relations) {
        for (Tuple& tuple : per_relation_[r]) {
          if (instance->AddFact(r, std::move(tuple))) ++added;
        }
        per_relation_[r].clear();
      }
      total_ = 0;
      return added;
    }
    for (RelationId r : relations) instance->EnsureOwnedStore(r);
    std::vector<size_t> shard_added(relations.size(), 0);
    pool->ParallelFor(relations.size(), [&](size_t i) {
      obs::Span shard_span(obs::Tracer::Global(), "chase.apply_shard",
                           parent_span);
      const RelationId r = relations[i];
      size_t n = 0;
      for (Tuple& tuple : per_relation_[r]) {
        if (instance->AddFactSharded(r, std::move(tuple))) ++n;
      }
      shard_added[i] = n;
      shard_span.AttrInt("relation", static_cast<int64_t>(r))
          .AttrInt("inserted", static_cast<int64_t>(n));
    });
    for (size_t n : shard_added) added += n;
    instance->CommitShardedFacts(added);
    ChaseMetrics::Get().sharded_inserts.Inc(static_cast<int64_t>(total_));
    for (RelationId r : relations) per_relation_[r].clear();
    total_ = 0;
    return added;
  }

 private:
  // Below this, ParallelFor dispatch costs more than the inserts.
  static constexpr size_t kMinFactsForSharding = 128;

  std::vector<std::vector<Tuple>> per_relation_;
  size_t total_ = 0;
};

// Runtime state of the overlay decide: the projection keys (onto the
// head's universal variables) of the triggers this batch has fired so
// far. Exact Tuples, not hashes — a collision would silently change
// restricted-chase semantics, unlike the oblivious ledger where the
// fingerprint risk is a documented trade. Only constructed for heads
// plan::AnalyzeHeadOverlay proved exact.
struct HeadOverlay {
  const plan::HeadOverlayPlan* plan = nullptr;
  std::unordered_set<Tuple, TupleHash> fired;

  // True iff the trigger must fire: its head is not satisfied by this
  // batch's earlier inserts (collect already filtered heads satisfied by
  // the pre-batch state). Records the key on fire.
  bool DecideFire(const Binding& binding) {
    Tuple key;
    key.reserve(plan->key.size());
    for (VariableId v : plan->key) key.push_back(binding.values[v]);
    return fired.insert(std::move(key)).second;
  }
};

// The overlay plan a batch should decide with, or nullptr when the head
// shape demands the physical re-check (non-exact) or the run is
// sequential (`pool == nullptr`: the classic interleaved apply is already
// optimal there and stays the reference discipline).
const plan::HeadOverlayPlan* OverlayFor(const plan::TgdPlan* plan,
                                        const plan::HeadOverlayPlan* local,
                                        ThreadPool* pool) {
  if (pool == nullptr) return nullptr;
  const plan::HeadOverlayPlan* overlay =
      plan != nullptr ? &plan->apply.overlay : local;
  return overlay != nullptr && overlay->exact ? overlay : nullptr;
}

// Extends `binding` with sequentially drawn fresh nulls and queues the
// head image on the per-relation insert lists. The deferred twin of
// ApplyTgdStep/ApplyTgdStepPlanned; returns the fresh-null count.
int QueueTgdStep(const Tgd& tgd, const plan::TgdPlan* plan,
                 const Binding& binding, SymbolTable* symbols,
                 ShardedInserts* inserts, size_t dep = 0,
                 ChaseJournal* journal = nullptr) {
  Binding extended = binding;
  if (plan != nullptr) {
    const plan::ApplyTemplate& apply = plan->apply;
    for (VariableId v : apply.existentials) {
      extended.Bind(v, symbols->FreshNull());
    }
    if (journal != nullptr) {
      journal->RecordTgd(dep, extended.values.data(),
                         extended.values.size(), tgd.existential);
    }
    size_t cursor = 0;
    for (const plan::HeadAtom& atom : apply.head_atoms) {
      Tuple tuple;
      tuple.reserve(atom.arity);
      for (int i = 0; i < atom.arity; ++i) {
        const plan::HeadSlot& slot = apply.slots[cursor++];
        tuple.push_back(slot.is_const ? slot.key
                                      : extended.values[slot.var]);
      }
      inserts->Add(atom.relation, std::move(tuple));
    }
    return apply.fresh_per_trigger;
  }
  int fresh = 0;
  for (VariableId v = 0; v < tgd.var_count; ++v) {
    if (tgd.existential[v] && !extended.bound[v]) {
      extended.Bind(v, symbols->FreshNull());
      ++fresh;
    }
  }
  if (journal != nullptr) {
    journal->RecordTgd(dep, extended.values.data(), extended.values.size(),
                       tgd.existential);
  }
  for (const Atom& atom : tgd.head) {
    Tuple tuple;
    tuple.reserve(atom.terms.size());
    for (const Term& t : atom.terms) {
      tuple.push_back(t.is_constant() ? t.constant()
                                      : extended.values[t.var()]);
    }
    inserts->Add(atom.relation, std::move(tuple));
  }
  return fresh;
}

// Speculatively collected triggers live in flat, partition-local
// buffers rather than per-trigger objects: `rows` holds the binding
// values (var_count per trigger, existential slots already filled with
// nulls from the worker's private range) and `heads` the fully
// instantiated head-atom values (head_width per trigger, atoms
// concatenated in tgd.head order). Flat storage is what makes
// speculation pay off — the worker's per-trigger cost is appending
// values (no per-trigger heap objects, so the allocator never sees
// cross-thread traffic), and the sequential apply phase becomes a
// streaming scan in prefetch order instead of a pointer chase over
// worker-allocated triggers.
struct SpecBuffer {
  std::vector<Value> rows;
  std::vector<Value> heads;
  std::vector<uint64_t> fps;  // admitted fingerprints (oblivious only)
  size_t count = 0;
};

// Per-dependency constants of the speculative layout. Parser validation
// guarantees existential variables never occur in the body, so every
// complete body match binds exactly the non-existential variables: the
// bound mask is the same for all of a dependency's triggers and the
// number of fresh nulls per trigger is a constant. The apply phase
// reuses one scratch Binding (mask preset to the body mask) and only
// refreshes its values from the flat rows; the existential slots stay
// masked off, which is what the restricted HasMatch re-check and the
// oblivious root index both require.
struct SpecLayout {
  size_t head_width = 0;      // sum of head-atom arities
  int fresh_per_trigger = 0;  // existential variables per trigger
  std::vector<VariableId> existentials;
  // Positions within a trigger's flat head row holding an existential
  // variable, with the variable: the slots patched once the partition's
  // exact null range is reserved.
  std::vector<std::pair<size_t, VariableId>> head_null_slots;
  Binding scratch;
};

SpecLayout MakeSpecLayout(const Tgd& tgd) {
  SpecLayout out;
  size_t pos = 0;
  for (const Atom& atom : tgd.head) {
    for (const Term& t : atom.terms) {
      if (!t.is_constant() && tgd.existential[t.var()]) {
        out.head_null_slots.emplace_back(pos, t.var());
      }
      ++pos;
    }
  }
  out.head_width = pos;
  out.scratch = Binding::Empty(tgd.var_count);
  for (VariableId v = 0; v < tgd.var_count; ++v) {
    if (tgd.existential[v]) {
      out.existentials.push_back(v);
    } else {
      out.scratch.bound[v] = true;
    }
  }
  out.fresh_per_trigger = static_cast<int>(out.existentials.size());
  return out;
}

// The compiled path's layout: every field except the scratch Binding is
// already fused into the plan's ApplyTemplate (the template absorbed what
// MakeSpecLayout re-derives from the AST).
SpecLayout LayoutFromTemplate(const plan::ApplyTemplate& apply) {
  SpecLayout out;
  out.head_width = apply.head_width;
  out.fresh_per_trigger = apply.fresh_per_trigger;
  out.existentials = apply.existentials;
  out.head_null_slots = apply.head_null_slots;
  out.scratch = Binding::Empty(static_cast<int>(apply.body_bound.size()));
  out.scratch.bound = apply.body_bound;
  return out;
}

// Speculative collection of one dependency's pending triggers: the delta
// partitions fan across the pool and each partition task instantiates the
// heads of the matches it admits, drawing nulls from one exact-size
// partition-local range. With a null ledger the admission filter is the restricted
// engine's HasMatch probe; otherwise it is concurrent ledger admission
// (exactly one partition wins each fingerprint, which also collapses the
// duplicate matches the extras overlap can produce). The job either Run()s
// synchronously with the caller participating, or has its partitions
// driven externally by the scheduler's combined lookahead batch
// (RunPartition is safe from any pool worker); `buffers()` exposes the
// results in partition order — the sequential enumeration order, so the
// apply order is schedule-invariant.
class SpecCollectJob {
 public:
  SpecCollectJob(const Tgd* tgd, size_t dep_index, const SpecLayout* layout,
                 const plan::TgdPlan* plan, const Instance* instance,
                 const DeltaView* delta, SymbolTable* symbols,
                 TriggerLedger* ledger, ThreadPool* pool,
                 uint64_t parent_span, bool pipelined)
      : tgd_(tgd),
        dep_(dep_index),
        layout_(layout),
        plan_(plan),
        instance_(instance),
        delta_(delta),
        symbols_(symbols),
        ledger_(ledger),
        pool_(pool),
        parent_span_(parent_span),
        pipelined_(pipelined) {
    parts_ = PartitionDeltaMatches(tgd->body, *delta,
                                   static_cast<size_t>(pool->size()) * 4);
    buffers_.resize(parts_.size());
  }

  // Collects synchronously, the caller participating.
  void Run() {
    pool_->ParallelFor(parts_.size(),
                       [this](size_t p) { RunPartition(p); });
  }

  size_t partition_count() const { return parts_.size(); }

  // The collected buffers, in partition order. Only valid once every
  // partition has run (after Run(), or after the scheduler joined the
  // async batch driving RunPartition); they stay owned by the job, so
  // the job must outlive the apply scan that reads them.
  const std::vector<SpecBuffer>& buffers() const { return buffers_; }

  // One partition's work; reentrant across distinct `p`, so a combined
  // lookahead batch can interleave partitions of several jobs on the
  // pool's workers.
  void RunPartition(size_t p) {
    obs::Span part_span(obs::Tracer::Global(), "chase.collect_part",
                        parent_span_);
    part_span.AttrInt("partition", static_cast<int64_t>(p))
        .AttrBool("speculative", true)
        .AttrBool("pipelined", pipelined_);
    ChaseMetrics& metrics = ChaseMetrics::Get();
    SpecBuffer& buffer = buffers_[p];
    const SpecLayout& layout = *layout_;
    const auto admit = [&](const Binding& m) {
      metrics.tgd_matches.Inc();
      if (ledger_ != nullptr) {
        uint64_t fp = TriggerFingerprint(dep_, *tgd_, m);
        if (!ledger_->Admit(fp)) return true;
        buffer.fps.push_back(fp);
      } else if (HeadSatisfied(*tgd_, plan_, *instance_, m)) {
        return true;
      }
      const size_t row = buffer.rows.size();
      buffer.rows.insert(buffer.rows.end(), m.values.begin(),
                         m.values.end());
      for (VariableId v : layout.existentials) PDX_DCHECK(!m.bound[v]);
      // Existential row/head slots hold junk until the patch pass
      // below fills them from the partition's exact null range.
      if (plan_ != nullptr) {
        for (const plan::HeadSlot& slot : plan_->apply.slots) {
          buffer.heads.push_back(slot.is_const ? slot.key
                                               : buffer.rows[row + slot.var]);
        }
      } else {
        for (const Atom& atom : tgd_->head) {
          for (const Term& t : atom.terms) {
            buffer.heads.push_back(t.is_constant()
                                       ? t.constant()
                                       : buffer.rows[row + t.var()]);
          }
        }
      }
      ++buffer.count;
      return true;
    };
    if (plan_ != nullptr) {
      EnumerateMatchesDeltaPartitionPlanned(plan_->body, *instance_, *delta_,
                                            parts_[p],
                                            Binding::Empty(tgd_->var_count),
                                            admit);
    } else {
      EnumerateMatchesDeltaPartition(tgd_->body, tgd_->var_count, *instance_,
                                     *delta_, parts_[p],
                                     Binding::Empty(tgd_->var_count), admit);
    }
    // Reserve the partition's nulls in one exact fetch_add only now that
    // the admitted count is known: block-sized draws would retire their
    // unused tails, and the resulting holes in the null id space inflate
    // every id-indexed structure downstream (the union-find resolver
    // arrays most of all — sparse ids measurably slow the egd fixpoint).
    const size_t fresh = layout.existentials.size();
    if (buffer.count > 0 && fresh > 0) {
      const uint32_t base = symbols_->ReserveNullRange(
          static_cast<uint32_t>(buffer.count * fresh));
      const size_t var_count = static_cast<size_t>(tgd_->var_count);
      for (size_t t = 0; t < buffer.count; ++t) {
        Value* row = buffer.rows.data() + t * var_count;
        for (size_t e = 0; e < fresh; ++e) {
          row[layout.existentials[e]] =
              Value::Null(base + static_cast<uint32_t>(t * fresh + e));
        }
        Value* head = buffer.heads.data() + t * layout.head_width;
        for (const auto& [pos, v] : layout.head_null_slots) {
          head[pos] = row[v];
        }
      }
    }
    metrics.spec_triggers.Inc(static_cast<int64_t>(buffer.count));
    part_span.AttrInt("collected", static_cast<int64_t>(buffer.count));
  }

 private:
  const Tgd* tgd_;
  size_t dep_;
  const SpecLayout* layout_;
  const plan::TgdPlan* plan_;  // nullptr => interpret
  const Instance* instance_;
  const DeltaView* delta_;
  SymbolTable* symbols_;
  TriggerLedger* ledger_;  // nullptr => restricted HasMatch filter
  ThreadPool* pool_;
  uint64_t parent_span_;
  bool pipelined_;
  std::vector<DeltaPartition> parts_;
  std::vector<SpecBuffer> buffers_;
};

// One round's tgd phase under the kSpeculative and kDag schedules, shared
// by the restricted (ledger == nullptr) and oblivious engines: for each
// dependency touching the delta, collect fully instantiated triggers (see
// SpecCollectJob), then apply them sequentially in enumeration order.
//
// Scheduling is topological over the footprint DAG rather than one-ahead:
// before applying dependency i, the scheduler gathers *every* not-yet-
// collected dependency j > i whose read footprint is disjoint from the
// writes of every dependency that will apply before it (positions [i, j)
// — applied or not, their inserts land before j's buffers are consumed),
// and starts their collections as one combined async batch on the pool's
// workers (the pool runs one job at a time, so the batch interleaves all
// their partitions). Independent tgd families thus run collect → apply
// concurrently end-to-end instead of overlapping a single dependency.
// Applies still happen in active-list order, which keeps steps and
// nulls_created schedule-invariant.
//
// The apply discipline depends on the schedule. kSpeculative keeps PR 5's
// physical HasMatch re-check with inline inserts. kDag decides overlay-
// exact restricted heads via HeadOverlay (no index probe at all) and
// queues their inserts on per-relation shards, drained in parallel when
// the workers are free (ShardedInserts; oblivious batches shard
// unconditionally — ledger admission needs no physical probe); non-exact
// heads fall back to the speculative discipline. Returns false when the
// step budget was exhausted (`result` is finalized).
bool RunTgdPhaseScheduled(const std::vector<Tgd>& tgds,
                          const std::vector<TgdFootprint>& footprints,
                          const plan::CompiledSetting* compiled,
                          const std::vector<plan::HeadOverlayPlan>* overlays,
                          Instance* instance, const DeltaView& delta,
                          SymbolTable* symbols, TriggerLedger* ledger,
                          ThreadPool* pool, const ChaseOptions& options,
                          ChaseSchedule schedule, ChaseResult* result,
                          ChaseJournal* journal = nullptr) {
  ChaseMetrics& metrics = ChaseMetrics::Get();
  const bool dag = schedule == ChaseSchedule::kDag;
  std::vector<size_t> active;
  for (size_t d = 0; d < tgds.size(); ++d) {
    if (TouchesDelta(tgds[d].body, delta)) active.push_back(d);
  }
  const auto plan_for = [&](size_t d) -> const plan::TgdPlan* {
    return compiled != nullptr ? &compiled->tgds[d] : nullptr;
  };
  std::vector<SpecLayout> layouts;
  layouts.reserve(active.size());
  for (size_t d : active) {
    layouts.push_back(compiled != nullptr
                          ? LayoutFromTemplate(compiled->tgds[d].apply)
                          : MakeSpecLayout(tgds[d]));
  }
  // The jobs own the flat trigger buffers the apply scans read; each is
  // released once its dependency has applied.
  std::vector<std::unique_ptr<SpecCollectJob>> jobs(active.size());
  std::vector<bool> collected(active.size(), false);
  // Active-list positions whose collections run in the current combined
  // async batch; empty when no batch is in flight.
  std::vector<size_t> inflight;
  const auto make_job = [&](size_t i, bool pipelined, uint64_t parent) {
    const size_t d = active[i];
    return std::make_unique<SpecCollectJob>(
        &tgds[d], d, &layouts[i], plan_for(d), instance, &delta, symbols,
        ledger, pool, parent, pipelined);
  };
  const auto join_batch = [&] {
    if (inflight.empty()) return;
    pool->Wait();
    for (size_t j : inflight) collected[j] = true;
    inflight.clear();
  };
  // Starts the combined lookahead batch for the apply at position i.
  const auto start_lookahead = [&](size_t i, uint64_t parent) {
    if (!inflight.empty()) return;  // pool runs one async job at a time
    for (size_t j = i + 1; j < active.size(); ++j) {
      if (collected[j]) continue;
      bool ready = true;
      for (size_t k = i; k < j && ready; ++k) {
        ready = FootprintsCompatible(footprints[active[k]],
                                     footprints[active[j]]);
      }
      if (ready) inflight.push_back(j);
    }
    if (inflight.empty()) return;
    auto units = std::make_shared<
        std::vector<std::pair<SpecCollectJob*, size_t>>>();
    for (size_t j : inflight) {
      jobs[j] = make_job(j, /*pipelined=*/true, parent);
      for (size_t p = 0; p < jobs[j]->partition_count(); ++p) {
        units->emplace_back(jobs[j].get(), p);
      }
    }
    metrics.pipeline_overlaps.Inc(static_cast<int64_t>(inflight.size()));
    if (units->empty()) {
      // Nothing to enumerate (empty partitions): collected trivially.
      for (size_t j : inflight) collected[j] = true;
      inflight.clear();
      return;
    }
    pool->ParallelForAsync(units->size(), [units](size_t u) {
      (*units)[u].first->RunPartition((*units)[u].second);
    });
  };
  const int relation_count = instance->schema().relation_count();
  bool exhausted = false;
  for (size_t i = 0; i < active.size() && !exhausted; ++i) {
    const size_t d = active[i];
    const Tgd& tgd = tgds[d];
    const SpecLayout& layout = layouts[i];
    obs::Span tgd_span(obs::Tracer::Global(), "chase.tgd");
    tgd_span.AttrInt("dep", static_cast<int64_t>(d))
        .AttrStr("schedule", ScheduleName(schedule));
    const bool was_inflight =
        std::find(inflight.begin(), inflight.end(), i) != inflight.end();
    if (was_inflight || (!collected[i] && !inflight.empty())) {
      // Either our own collection runs in the batch, or we must collect
      // synchronously and the pool is busy: join the batch first.
      join_batch();
    }
    if (!collected[i]) {
      jobs[i] = make_job(i, /*pipelined=*/false, tgd_span.id());
      jobs[i]->Run();
      collected[i] = true;
    }
    const std::vector<SpecBuffer>& pending = jobs[i]->buffers();
    size_t total = 0;
    for (const SpecBuffer& buffer : pending) total += buffer.count;
    metrics.batch_triggers.Observe(static_cast<int64_t>(total));
    // Launch the lookahead before applying so collections of every ready
    // dependency overlap this apply phase.
    start_lookahead(i, tgd_span.id());
    // kDag decide-then-insert: overlay-exact restricted heads and all
    // oblivious batches defer inserts to per-relation shards. The shards
    // may only drain in parallel when no collect batch owns the workers.
    const plan::HeadOverlayPlan* overlay_plan =
        dag && ledger == nullptr
            ? OverlayFor(plan_for(d),
                         overlays != nullptr ? &(*overlays)[d] : nullptr,
                         pool)
            : nullptr;
    const bool deferred = dag && (ledger != nullptr || overlay_plan);
    HeadOverlay overlay;
    overlay.plan = overlay_plan;
    ShardedInserts inserts(deferred ? relation_count : 0);
    Binding scratch = layout.scratch;
    const size_t var_count = static_cast<size_t>(tgd.var_count);
    int64_t applied = 0;
    for (const SpecBuffer& buffer : pending) {
      const Value* row = buffer.rows.data();
      const Value* head = buffer.heads.data();
      for (size_t t = 0; t < buffer.count;
           ++t, row += var_count, head += layout.head_width) {
        std::copy(row, row + var_count, scratch.values.begin());
        if (ledger == nullptr) {
          if (overlay_plan != nullptr) {
            // Overlay decide: satisfied by this batch's earlier inserts
            // iff an earlier trigger fired with the same projection (see
            // plan::HeadOverlayPlan). The skipped trigger's speculative
            // nulls are retired unused, as under the physical re-check.
            if (!overlay.DecideFire(scratch)) {
              metrics.spec_nulls_retired.Inc(layout.fresh_per_trigger);
              continue;
            }
          } else if (HeadSatisfied(tgd, plan_for(d), *instance, scratch)) {
            // Re-check: an earlier application may have satisfied it.
            metrics.spec_nulls_retired.Inc(layout.fresh_per_trigger);
            continue;
          }
        } else {
          // Admission already happened in the worker; only the
          // generation index is still owed.
          ledger->RecordRoots(buffer.fps[t], tgd, scratch);
        }
        if (journal != nullptr) {
          // `row` is the full extended binding: the workers already
          // patched the existential slots from their reserved ranges.
          journal->RecordTgd(d, row, var_count, tgd.existential);
        }
        const Value* cursor = head;
        for (const Atom& atom : tgd.head) {
          if (deferred) {
            inserts.Add(atom.relation,
                        Tuple(cursor, cursor + atom.terms.size()));
          } else {
            instance->AddFact(atom.relation,
                              Tuple(cursor, cursor + atom.terms.size()));
          }
          cursor += atom.terms.size();
        }
        result->nulls_created += layout.fresh_per_trigger;
        ++result->steps;
        ++applied;
        if (result->steps >= options.max_steps) {
          result->outcome = ChaseOutcome::kBudgetExhausted;
          exhausted = true;
          break;
        }
      }
      if (exhausted) break;
    }
    if (deferred) {
      inserts.Drain(instance, inflight.empty() ? pool : nullptr,
                    tgd_span.id());
    }
    tgd_span.AttrInt("collected", static_cast<int64_t>(total))
        .AttrInt("applied", applied);
    jobs[i].reset();
  }
  // A lookahead batch may still be in flight when the budget cuts the
  // apply loop short; its results are dropped, but the workers must check
  // out before the round state goes away.
  if (!inflight.empty()) pool->Wait();
  return !exhausted;
}

// Applies one egd substitution for the violated trigger (a, b), or fails
// on a constant/constant clash. Used by the Substitute-based naive
// baseline; the delta engines use RunEgdsToFixpointDelta instead.
bool ApplyEgdStep(Value a, Value b, Instance* instance, SymbolTable* symbols,
                  const ChaseOptions& options, ChaseResult* result) {
  if (a.is_constant() && b.is_constant()) {
    result->outcome = ChaseOutcome::kFailed;
    result->failure = StrCat("egd equates distinct constants ",
                             symbols->ValueToString(a), " and ",
                             symbols->ValueToString(b));
    ++result->steps;
    return false;
  }
  if (a.is_null()) {
    instance->Substitute(a, b);
    result->merges[a.packed()] = b;
  } else {
    instance->Substitute(b, a);
    result->merges[b.packed()] = a;
  }
  ++result->steps;
  if (result->steps >= options.max_steps) {
    result->outcome = ChaseOutcome::kBudgetExhausted;
    return false;
  }
  return true;
}

// Applies target egds to fixpoint by full rescans (naive baseline).
// Returns false on a constant/constant clash or budget exhaustion (filling
// `result`); `merged` reports whether any substitution happened.
bool RunEgdsToFixpoint(const std::vector<Egd>& egds, Instance* instance,
                       SymbolTable* symbols, const ChaseOptions& options,
                       ChaseResult* result, bool* merged) {
  for (const Egd& egd : egds) {
    Binding trigger = Binding::Empty(egd.var_count);
    while (FindViolatedEgdTrigger(*instance, egd, &trigger)) {
      if (!ApplyEgdStep(trigger.values[egd.left_var],
                        trigger.values[egd.right_var], instance, symbols,
                        options, result)) {
        return false;
      }
      *merged = true;
    }
  }
  return true;
}

// The classic scan-from-scratch restricted chase with Substitute-based egd
// steps, kept as the cross-validation baseline (and A/B rival) for the
// delta-driven union-find default.
ChaseResult ChaseRestrictedNaive(Instance start,
                                 const std::vector<Tgd>& tgds,
                                 const std::vector<Egd>& egds,
                                 SymbolTable* symbols,
                                 const ChaseOptions& options) {
  ChaseResult result(std::move(start));
  Instance& instance = result.instance;
  while (true) {
    if (result.steps >= options.max_steps) {
      result.outcome = ChaseOutcome::kBudgetExhausted;
      return result;
    }
    bool applied = false;
    bool merged = false;
    if (!RunEgdsToFixpoint(egds, &instance, symbols, options, &result,
                           &merged)) {
      return result;
    }
    applied |= merged;
    for (const Tgd& tgd : tgds) {
      Binding trigger = Binding::Empty(tgd.var_count);
      while (FindViolatedTgdTrigger(instance, tgd, &trigger)) {
        result.nulls_created += ApplyTgdStep(tgd, trigger, &instance,
                                             symbols);
        ++result.steps;
        applied = true;
        if (result.steps >= options.max_steps) {
          result.outcome = ChaseOutcome::kBudgetExhausted;
          return result;
        }
      }
    }
    if (!applied) {
      result.outcome = ChaseOutcome::kSuccess;
      return result;
    }
  }
}

// Copies an egd fixpoint outcome into a ChaseResult. Returns false if the
// chase must stop (clash or budget).
bool AbsorbEgdOutcome(const EgdFixpointOutcome& egd_out, ChaseResult* result) {
  result->steps += egd_out.steps;
  if (egd_out.failed) {
    result->outcome = ChaseOutcome::kFailed;
    result->failure = egd_out.failure;
    return false;
  }
  if (egd_out.budget_exhausted) {
    result->outcome = ChaseOutcome::kBudgetExhausted;
    return false;
  }
  return true;
}

// The delta-driven restricted chase: the fixpoint loop works off a
// watermark into the instance; each round evaluates only triggers whose
// body touches a fact beyond the watermark (semi-naive evaluation via
// EnumerateMatchesDelta) or a tuple dirtied by an egd merge, then advances
// the watermark to the round's frontier. Egd steps are union-find merges
// in the instance's value layer: O(α) unions that never rewrite tuples,
// so watermarks stay valid and only the dirty equivalence classes are
// re-examined.
//
// With a pool, each tgd's trigger collection is fanned across the delta
// partitions; the apply phase stays sequential in enumeration order, and
// later tgds still see earlier tgds' additions, so the per-round state
// sequence — and with it every fresh-null assignment — is bit-identical
// to the single-threaded run. Under ChaseOptions::speculative the workers
// additionally instantiate heads and pipeline across dependencies
// (RunTgdPhaseSpeculative); the result is then equal only up to a
// bijective null renaming.
ChaseResult ChaseRestrictedDelta(Instance start,
                                 const std::vector<Tgd>& tgds,
                                 const std::vector<Egd>& egds,
                                 SymbolTable* symbols,
                                 const ChaseOptions& options,
                                 ThreadPool* pool,
                                 const plan::CompiledSetting* compiled) {
  ChaseResult result(std::move(start));
  Instance& instance = result.instance;
  const std::vector<plan::EgdPlan>* egd_plans =
      compiled != nullptr ? &compiled->egds : nullptr;
  // Sequential runs always take the barrier path (ResolveSchedule's
  // choice only matters once a pool exists); the scheduled phases need
  // the footprint DAG, and the pooled barrier apply needs the overlay
  // plans (compiled settings carry both; the interpreter derives them
  // here, once per run).
  const ChaseSchedule schedule =
      pool != nullptr ? ResolveSchedule(options) : ChaseSchedule::kBarrier;
  const bool scheduled = schedule != ChaseSchedule::kBarrier;
  std::vector<TgdFootprint> footprints;
  if (scheduled && compiled == nullptr) {
    footprints = plan::ComputeTgdFootprints(tgds);
  }
  std::vector<plan::HeadOverlayPlan> local_overlays;
  if (pool != nullptr && compiled == nullptr) {
    local_overlays.reserve(tgds.size());
    for (const Tgd& tgd : tgds) {
      local_overlays.push_back(plan::AnalyzeHeadOverlay(tgd));
    }
  }
  // Everything is "new" before the first round, so round one degenerates
  // to the full scan the naive chase would do — exactly once. An
  // incremental caller (ChaseOptions::resume_from) instead seeds the
  // round with its own watermark: only facts added past it are pending,
  // which is sound because the pre-watermark state was already a
  // fixpoint of these dependencies.
  InstanceWatermark mark = options.resume_from != nullptr
                               ? *options.resume_from
                               : InstanceWatermark::Origin(instance);
  // Per-relation indexes of pre-watermark tuples dirtied by this round's
  // merges; the tgd phase re-examines them alongside the additive delta.
  std::vector<std::vector<int>> extras;
  // Dirty-tuple entries reported by merges since the last exact duplicate
  // count: an upper bound on new resolved duplicates, so the O(n)
  // ResolvedFactCount check runs only when compaction could plausibly
  // trigger.
  int64_t dirty_accum = 0;
  ChaseMetrics& metrics = ChaseMetrics::Get();
  int64_t round = 0;
  // Trigger buffer shared across rounds and dependencies: steady-state
  // collects assign into retained Binding capacity (see
  // CollectDeltaMatches) instead of re-allocating two vectors per
  // trigger.
  std::vector<Binding> pending;
  while (true) {
    if (result.steps >= options.max_steps) {
      result.outcome = ChaseOutcome::kBudgetExhausted;
      return result;
    }
    obs::Span round_span(obs::Tracer::Global(), "chase.round");
    round_span.AttrInt("round", round);
    metrics.rounds.Inc();
    ++round;
    EgdFixpointOutcome egd_out = RunEgdsToFixpointDelta(
        egds, &instance, mark, options.max_steps - result.steps, symbols,
        &extras, pool, egd_plans, options.journal);
    if (!AbsorbEgdOutcome(egd_out, &result)) return result;
    dirty_accum += egd_out.dirtied;
    DeltaView delta(instance, mark, extras);
    if (!delta.any()) {
      // Nothing new since the last full round: every trigger has been
      // examined against a state it still holds in. Fixpoint.
      result.outcome = ChaseOutcome::kSuccess;
      return result;
    }
    // Facts present now are covered once this round's triggers have been
    // evaluated; facts the round itself adds become the next delta.
    InstanceWatermark frontier = instance.TakeWatermark();
    if (scheduled) {
      if (!RunTgdPhaseScheduled(
              tgds, compiled != nullptr ? compiled->footprints : footprints,
              compiled, compiled == nullptr ? &local_overlays : nullptr,
              &instance, delta, symbols, /*ledger=*/nullptr, pool, options,
              schedule, &result, options.journal)) {
        return result;
      }
    } else {
      for (size_t d = 0; d < tgds.size(); ++d) {
        const Tgd& tgd = tgds[d];
        if (!TouchesDelta(tgd.body, delta)) continue;
        const plan::TgdPlan* plan =
            compiled != nullptr ? &compiled->tgds[d] : nullptr;
        obs::Span tgd_span(obs::Tracer::Global(), "chase.tgd");
        tgd_span.AttrInt("dep", static_cast<int64_t>(d));
        // Collect the violated triggers for this delta, then apply them.
        // (Applying while enumerating would mutate the instance under the
        // matcher.) Body matches are counted locally and flushed to the
        // registry once per batch: the keep filter is the hottest lambda
        // in the engine and a sharded atomic per call is measurable.
        // (Relaxed atomic: pooled collection invokes the filter from
        // partition workers.)
        std::atomic<int64_t> n_matches{0};
        const size_t n_pending = CollectDeltaMatches(
            tgd.body, tgd.var_count, instance, delta, pool,
            plan != nullptr ? &plan->body : nullptr,
            [&](const Binding& body_match) {
              n_matches.fetch_add(1, std::memory_order_relaxed);
              return !HeadSatisfied(tgd, plan, instance, body_match);
            },
            &pending, tgd_span.id());
        metrics.tgd_matches.Inc(n_matches.load(std::memory_order_relaxed));
        metrics.batch_triggers.Observe(static_cast<int64_t>(n_pending));
        int64_t applied = 0;
        // Pooled barrier apply, overlay-exact head: decide each trigger
        // against the batch overlay (no physical probe), invent its nulls
        // sequentially — same order as the interleaved loop below, so the
        // run stays bit-identical — and queue the head tuples for the
        // relation-sharded insert pass.
        const plan::HeadOverlayPlan* overlay_plan = OverlayFor(
            plan,
            pool != nullptr && compiled == nullptr ? &local_overlays[d]
                                                   : nullptr,
            pool);
        if (overlay_plan != nullptr) {
          HeadOverlay overlay;
          overlay.plan = overlay_plan;
          ShardedInserts inserts(instance.schema().relation_count());
          bool exhausted = false;
          for (size_t t = 0; t < n_pending; ++t) {
            const Binding& trigger = pending[t];
            if (!overlay.DecideFire(trigger)) continue;
            result.nulls_created +=
                QueueTgdStep(tgd, plan, trigger, symbols, &inserts, d,
                             options.journal);
            ++result.steps;
            ++applied;
            if (result.steps >= options.max_steps) {
              result.outcome = ChaseOutcome::kBudgetExhausted;
              exhausted = true;
              break;
            }
          }
          inserts.Drain(&instance, pool, tgd_span.id());
          if (exhausted) return result;
        } else {
          for (size_t t = 0; t < n_pending; ++t) {
            const Binding& trigger = pending[t];
            // Re-check: an earlier application may have satisfied it.
            if (HeadSatisfied(tgd, plan, instance, trigger)) {
              continue;
            }
            result.nulls_created +=
                plan != nullptr
                    ? ApplyTgdStepPlanned(plan->apply, trigger, &instance,
                                          symbols, &tgd, d, options.journal)
                    : ApplyTgdStep(tgd, trigger, &instance, symbols, d,
                                   options.journal);
            ++result.steps;
            ++applied;
            if (result.steps >= options.max_steps) {
              result.outcome = ChaseOutcome::kBudgetExhausted;
              return result;
            }
          }
        }
        tgd_span.AttrInt("collected", static_cast<int64_t>(n_pending))
            .AttrInt("applied", applied);
      }
    }
    mark = std::move(frontier);
    extras.clear();
    // Auto-compaction: merges leave resolved-duplicate raw tuples behind.
    // Once enough dirt has accumulated for the duplicate ratio to
    // plausibly exceed the threshold, count exactly; if it does, swap in
    // the compacted store (keeping the resolver, so earlier merge history
    // still resolves) and restart the watermark. The extra rescan round
    // fires nothing — satisfied triggers stay satisfied — so outcome,
    // steps and fingerprint are unchanged.
    if (options.compact_duplicate_ratio > 0 &&
        options.compact_duplicate_ratio < 1 && instance.has_merges() &&
        instance.fact_count() >= options.compact_min_facts &&
        static_cast<double>(dirty_accum) >=
            options.compact_duplicate_ratio *
                static_cast<double>(instance.fact_count())) {
      size_t duplicates =
          instance.fact_count() - instance.ResolvedFactCount();
      if (static_cast<double>(duplicates) >=
          options.compact_duplicate_ratio *
              static_cast<double>(instance.fact_count())) {
        obs::Span compact_span(obs::Tracer::Global(), "chase.compact");
        compact_span.AttrInt("duplicates",
                             static_cast<int64_t>(duplicates));
        instance = instance.CompactResolved(/*keep_resolver=*/true);
        mark = InstanceWatermark::Origin(instance);
        ++result.compactions;
      }
      dirty_accum = 0;
    }
  }
}

// The delta-driven oblivious chase: every body homomorphism of every tgd
// fires exactly once, tracked by the generation-scoped TriggerLedger. Only
// matches touching the delta (additive or merge-dirtied) are enumerated
// per round; a match wholly over old, unmerged facts was enumerated (and
// fingerprinted) in the round its newest fact arrived, so nothing is
// missed.
ChaseResult ChaseOblivious(Instance start,
                           const std::vector<Tgd>& tgds,
                           const std::vector<Egd>& egds,
                           SymbolTable* symbols, const ChaseOptions& options,
                           ThreadPool* pool,
                           const plan::CompiledSetting* compiled) {
  ChaseResult result(std::move(start));
  Instance& instance = result.instance;
  TriggerLedger fired;
  const std::vector<plan::EgdPlan>* egd_plans =
      compiled != nullptr ? &compiled->egds : nullptr;
  const ChaseSchedule schedule =
      pool != nullptr ? ResolveSchedule(options) : ChaseSchedule::kBarrier;
  const bool scheduled = schedule != ChaseSchedule::kBarrier;
  std::vector<TgdFootprint> footprints;
  if (scheduled && compiled == nullptr) {
    footprints = plan::ComputeTgdFootprints(tgds);
  }
  InstanceWatermark mark = InstanceWatermark::Origin(instance);
  std::vector<std::vector<int>> extras;
  ChaseMetrics& metrics = ChaseMetrics::Get();
  int64_t round = 0;
  // Trigger buffer shared across rounds and dependencies: steady-state
  // collects assign into retained Binding capacity (see
  // CollectDeltaMatches) instead of re-allocating two vectors per
  // trigger.
  std::vector<Binding> pending;
  while (true) {
    if (result.steps >= options.max_steps) {
      result.outcome = ChaseOutcome::kBudgetExhausted;
      return result;
    }
    obs::Span round_span(obs::Tracer::Global(), "chase.round");
    round_span.AttrInt("round", round);
    metrics.rounds.Inc();
    ++round;
    EgdFixpointOutcome egd_out = RunEgdsToFixpointDelta(
        egds, &instance, mark, options.max_steps - result.steps, symbols,
        &extras, pool, egd_plans);
    if (!AbsorbEgdOutcome(egd_out, &result)) return result;
    // Merged-away roots can never appear in a binding again: drop their
    // fingerprint generation.
    fired.RetireRoots(egd_out.retired);
    DeltaView delta(instance, mark, extras);
    if (!delta.any()) {
      result.outcome = ChaseOutcome::kSuccess;
      return result;
    }
    InstanceWatermark frontier = instance.TakeWatermark();
    if (scheduled) {
      // Admission happens in the workers (TriggerLedger::Admit through the
      // concurrent fingerprint set); the apply loop only records roots and
      // inserts the pre-instantiated heads (sharded under kDag — oblivious
      // needs no head probe, so every batch can defer its inserts).
      if (!RunTgdPhaseScheduled(
              tgds, compiled != nullptr ? compiled->footprints : footprints,
              compiled, /*overlays=*/nullptr, &instance, delta, symbols,
              &fired, pool, options, schedule, &result)) {
        return result;
      }
    } else {
      for (size_t d = 0; d < tgds.size(); ++d) {
        const Tgd& tgd = tgds[d];
        if (!TouchesDelta(tgd.body, delta)) continue;
        const plan::TgdPlan* plan =
            compiled != nullptr ? &compiled->tgds[d] : nullptr;
        obs::Span tgd_span(obs::Tracer::Global(), "chase.tgd");
        tgd_span.AttrInt("dep", static_cast<int64_t>(d));
        // Collect unfired triggers first (the instance must not change
        // under the matcher), then fire them. The ledger is only read
        // during collection (workers filter against it concurrently);
        // Insert runs in the sequential fire loop, which also collapses
        // the repeats the extras overlap can produce. As in the
        // restricted loop, matches are counted locally and flushed to
        // the registry once per batch.
        std::atomic<int64_t> n_matches{0};
        const size_t n_pending = CollectDeltaMatches(
            tgd.body, tgd.var_count, instance, delta, pool,
            plan != nullptr ? &plan->body : nullptr,
            [&](const Binding& body_match) {
              n_matches.fetch_add(1, std::memory_order_relaxed);
              return !fired.Contains(TriggerFingerprint(d, tgd, body_match));
            },
            &pending, tgd_span.id());
        metrics.tgd_matches.Inc(n_matches.load(std::memory_order_relaxed));
        metrics.batch_triggers.Observe(static_cast<int64_t>(n_pending));
        if (pool != nullptr) {
          // Pooled barrier apply: ledger admission is the whole decide —
          // no head probe — so every batch defers its inserts to the
          // relation shards. Null order is the sequential fire order:
          // bit-identical to the interleaved loop below.
          ShardedInserts inserts(instance.schema().relation_count());
          bool exhausted = false;
          for (size_t t = 0; t < n_pending; ++t) {
            const Binding& trigger = pending[t];
            if (!fired.Insert(TriggerFingerprint(d, tgd, trigger), tgd,
                              trigger)) {
              continue;
            }
            result.nulls_created +=
                QueueTgdStep(tgd, plan, trigger, symbols, &inserts);
            ++result.steps;
            if (result.steps >= options.max_steps) {
              result.outcome = ChaseOutcome::kBudgetExhausted;
              exhausted = true;
              break;
            }
          }
          inserts.Drain(&instance, pool, tgd_span.id());
          if (exhausted) return result;
        } else {
          for (size_t t = 0; t < n_pending; ++t) {
            const Binding& trigger = pending[t];
            if (!fired.Insert(TriggerFingerprint(d, tgd, trigger), tgd,
                              trigger)) {
              continue;
            }
            result.nulls_created +=
                plan != nullptr
                    ? ApplyTgdStepPlanned(plan->apply, trigger, &instance,
                                          symbols)
                    : ApplyTgdStep(tgd, trigger, &instance, symbols);
            ++result.steps;
            if (result.steps >= options.max_steps) {
              result.outcome = ChaseOutcome::kBudgetExhausted;
              return result;
            }
          }
        }
      }
    }
    mark = std::move(frontier);
    extras.clear();
  }
}

}  // namespace

EgdFixpointOutcome RunEgdsToFixpointDelta(
    const std::vector<Egd>& egds, Instance* instance,
    const InstanceWatermark& mark, int64_t max_steps,
    const SymbolTable* symbols, std::vector<std::vector<int>>* extras,
    ThreadPool* pool, const std::vector<plan::EgdPlan>* egd_plans,
    ChaseJournal* journal) {
  EgdFixpointOutcome out;
  if (egds.empty()) return out;
  PDX_DCHECK(egd_plans == nullptr || egd_plans->size() == egds.size());
  obs::Span fixpoint_span(obs::Tracer::Global(), "chase.egd_fixpoint");
  obs::Counter& merge_counter = ChaseMetrics::Get().egd_merges;
  int64_t passes = 0;
  int n = instance->schema().relation_count();
  if (extras->empty()) extras->resize(n);
  // Pass 1 pivots on the additive delta beyond `mark` (plus any extras the
  // caller already accumulated). A merge changes the resolved content of
  // exactly the tuples holding the losing class, so any trigger it newly
  // violates must bind one of them: pass k+1 pivots only on the tuples
  // pass k dirtied, until no merge fires.
  std::vector<std::vector<int>> frontier;
  // Violated-trigger buffer reused across passes and egds (pooled collect
  // path) — same Binding-capacity reuse as the tgd phase's `pending`.
  std::vector<Binding> violated;
  bool first_pass = true;
  while (true) {
    obs::Span pass_span(obs::Tracer::Global(), "chase.egd_pass");
    pass_span.AttrInt("pass", passes);
    ++passes;
    DeltaView delta =
        first_pass ? DeltaView(*instance, mark, *extras)
                   : DeltaView(*instance, instance->TakeWatermark(), frontier);
    std::vector<std::vector<int>> pass_dirty(n);
    bool merged_any = false;
    for (size_t e = 0; e < egds.size(); ++e) {
      const Egd& egd = egds[e];
      if (!TouchesDelta(egd.body, delta)) continue;
      const plan::EgdPlan* plan =
          egd_plans != nullptr ? &(*egd_plans)[e] : nullptr;
      // Applies one merge, sharing the conflict / dirty / budget
      // bookkeeping between the two collection disciplines below. Returns
      // false when the fixpoint must stop (out is final). `trigger` is the
      // body match that forced the merge, journaled so deletion
      // propagation can tell when a merge's justification dies.
      auto apply_merge = [&](const Binding& trigger, Value a, Value b) {
        Instance::MergeResult merge = instance->MergeValues(a, b);
        ++out.steps;
        if (merge.conflict) {
          out.failed = true;
          out.failure =
              symbols != nullptr
                  ? StrCat("egd equates distinct constants ",
                           symbols->ValueToString(merge.winner), " and ",
                           symbols->ValueToString(merge.loser))
                  : "egd equates distinct constants";
          return false;
        }
        PDX_DCHECK(merge.merged);
        merge_counter.Inc();
        if (journal != nullptr) {
          journal->RecordEgd(e, trigger.values.data(),
                             trigger.values.size());
        }
        for (const auto& [relation, idx] : merge.dirty) {
          (*extras)[relation].push_back(idx);
          pass_dirty[relation].push_back(idx);
        }
        out.dirtied += static_cast<int64_t>(merge.dirty.size());
        out.retired.insert(out.retired.end(), merge.reassigned.begin(),
                           merge.reassigned.end());
        merged_any = true;
        if (out.steps >= max_steps) {
          out.budget_exhausted = true;
          return false;
        }
        return true;
      };
      if (pool != nullptr) {
        // Batched collect-then-apply: one parallel enumeration gathers
        // every trigger violated under the pre-pass resolution, then the
        // merges run sequentially, skipping pairs an earlier merge of the
        // batch already equated. Triggers a merge newly enables are caught
        // by the next pass's dirty frontier — the same closure the rescan
        // discipline reaches, with the same number of successful merges
        // (each union lowers the class count by exactly one); only the
        // union order, i.e. which root survives, can differ.
        const size_t n_violated = CollectDeltaMatches(
            egd.body, egd.var_count, *instance, delta, pool,
            plan != nullptr ? &plan->body : nullptr,
            [&](const Binding& m) {
              return m.values[egd.left_var] != m.values[egd.right_var];
            },
            &violated);
        for (size_t t = 0; t < n_violated; ++t) {
          const Binding& trigger = violated[t];
          Value a = instance->ResolveValue(trigger.values[egd.left_var]);
          Value b = instance->ResolveValue(trigger.values[egd.right_var]);
          if (a == b) continue;
          if (!apply_merge(trigger, a, b)) return out;
        }
      } else {
        Binding trigger = Binding::Empty(egd.var_count);
        // Merges never invalidate tuple indexes, so the view stays valid
        // across the whole pass; the matcher consults the live resolver.
        while (FindViolatedEgdTriggerDelta(*instance, delta, egd, plan,
                                           &trigger)) {
          if (!apply_merge(trigger, trigger.values[egd.left_var],
                           trigger.values[egd.right_var])) {
            return out;
          }
        }
      }
    }
    if (!merged_any) {
      fixpoint_span.AttrInt("passes", passes).AttrInt("merges", out.steps);
      return out;
    }
    first_pass = false;
    frontier = std::move(pass_dirty);
  }
}

namespace {

// 0 = hardware concurrency; anything else is taken literally.
int ResolveThreadCount(const ChaseOptions& options) {
  return options.num_threads <= 0 ? ThreadPool::HardwareConcurrency()
                                  : options.num_threads;
}

const char* StrategyName(ChaseStrategy strategy) {
  switch (strategy) {
    case ChaseStrategy::kOblivious: return "oblivious";
    case ChaseStrategy::kRestrictedNaive: return "restricted_naive";
    case ChaseStrategy::kRestricted: return "restricted";
  }
  return "unknown";
}

// True when this run executes through compiled plans: opted in (the
// default), not globally forced off, and not the naive baseline engine.
bool UsesPlans(const ChaseOptions& options) {
  return options.compile_plans &&
         options.strategy != ChaseStrategy::kRestrictedNaive &&
         !plan::ForceInterpreter();
}

ChaseResult ChaseDispatch(Instance start, const std::vector<Tgd>& tgds,
                          const std::vector<Egd>& egds, SymbolTable* symbols,
                          const ChaseOptions& options) {
  // One cache probe per run; re-chases of the same setting hit and reuse
  // the plans compiled on first sight.
  std::shared_ptr<const plan::CompiledSetting> compiled;
  if (UsesPlans(options)) {
    compiled = plan::PlanCache::Global().GetOrCompile(tgds, egds);
  }
  switch (options.strategy) {
    case ChaseStrategy::kOblivious: {
      int threads = ResolveThreadCount(options);
      if (threads > 1) {
        ThreadPool pool(threads);
        return ChaseOblivious(std::move(start), tgds, egds, symbols, options,
                              &pool, compiled.get());
      }
      return ChaseOblivious(std::move(start), tgds, egds, symbols, options,
                            nullptr, compiled.get());
    }
    case ChaseStrategy::kRestrictedNaive:
      return ChaseRestrictedNaive(std::move(start), tgds, egds, symbols,
                                  options);
    case ChaseStrategy::kRestricted: {
      int threads = ResolveThreadCount(options);
      if (threads > 1) {
        ThreadPool pool(threads);
        return ChaseRestrictedDelta(std::move(start), tgds, egds, symbols,
                                    options, &pool, compiled.get());
      }
      return ChaseRestrictedDelta(std::move(start), tgds, egds, symbols,
                                  options, nullptr, compiled.get());
    }
  }
  ChaseResult result(std::move(start));
  result.outcome = ChaseOutcome::kBudgetExhausted;
  return result;
}

}  // namespace

const char* ScheduleName(ChaseSchedule schedule) {
  switch (schedule) {
    case ChaseSchedule::kBarrier: return "barrier";
    case ChaseSchedule::kSpeculative: return "speculative";
    case ChaseSchedule::kDag: return "dag";
  }
  return "unknown";
}

ChaseSchedule ResolveSchedule(const ChaseOptions& options) {
  // The override is read once per process, like PDX_FORCE_INTERPRETER:
  // sanitizer lanes pin a schedule for a whole test binary.
  static const int forced = [] {
    const char* env = std::getenv("PDX_FORCE_SCHEDULE");
    if (env == nullptr || env[0] == '\0') return -1;
    if (std::strcmp(env, "barrier") == 0) return 0;
    if (std::strcmp(env, "speculative") == 0) return 1;
    if (std::strcmp(env, "dag") == 0) return 2;
    return -1;
  }();
  if (forced >= 0) return static_cast<ChaseSchedule>(forced);
  if (options.schedule != ChaseSchedule::kBarrier) return options.schedule;
  return options.speculative ? ChaseSchedule::kSpeculative
                             : ChaseSchedule::kBarrier;
}

namespace {

ChaseResult ChaseRun(Instance start, const std::vector<Tgd>& tgds,
                     const std::vector<Egd>& egds, SymbolTable* symbols,
                     const ChaseOptions& options) {
  PDX_CHECK(symbols != nullptr);
  obs::Span run_span(obs::Tracer::Global(), "chase");
  run_span.AttrStr("strategy", StrategyName(options.strategy))
      .AttrInt("threads", ResolveThreadCount(options))
      .AttrStr("schedule", ScheduleName(ResolveSchedule(options)))
      .AttrBool("speculative",
                ResolveSchedule(options) == ChaseSchedule::kSpeculative)
      .AttrBool("compiled", UsesPlans(options))
      .AttrInt("tgds", static_cast<int64_t>(tgds.size()))
      .AttrInt("egds", static_cast<int64_t>(egds.size()));
  ChaseResult result =
      ChaseDispatch(std::move(start), tgds, egds, symbols, options);
  run_span.AttrInt("steps", result.steps)
      .AttrBool("failed", result.outcome == ChaseOutcome::kFailed);
  ChaseMetrics& metrics = ChaseMetrics::Get();
  metrics.runs.Inc();
  metrics.steps.Inc(result.steps);
  metrics.nulls.Inc(result.nulls_created);
  metrics.compactions.Inc(result.compactions);
  return result;
}

}  // namespace

ChaseResult Chase(const Instance& start, const std::vector<Tgd>& tgds,
                  const std::vector<Egd>& egds, SymbolTable* symbols,
                  const ChaseOptions& options) {
  return ChaseRun(start, tgds, egds, symbols, options);
}

ChaseResult Chase(Instance&& start, const std::vector<Tgd>& tgds,
                  const std::vector<Egd>& egds, SymbolTable* symbols,
                  const ChaseOptions& options) {
  return ChaseRun(std::move(start), tgds, egds, symbols, options);
}

ChaseResult Chase(const Instance& start, const std::vector<Tgd>& tgds,
                  SymbolTable* symbols, const ChaseOptions& options) {
  return Chase(start, tgds, {}, symbols, options);
}

bool SatisfiesTgd(const Instance& instance, const Tgd& tgd) {
  Binding trigger = Binding::Empty(tgd.var_count);
  return !FindViolatedTgdTrigger(instance, tgd, &trigger);
}

bool SatisfiesEgd(const Instance& instance, const Egd& egd) {
  Binding trigger = Binding::Empty(egd.var_count);
  return !FindViolatedEgdTrigger(instance, egd, &trigger);
}

bool SatisfiesDisjunctiveTgd(const Instance& instance,
                             const DisjunctiveTgd& tgd) {
  return !EnumerateMatches(
      tgd.body, tgd.var_count, instance, Binding::Empty(tgd.var_count),
      [&](const Binding& body_match) {
        for (const std::vector<Atom>& disjunct : tgd.head_disjuncts) {
          if (HasMatch(disjunct, tgd.var_count, instance, body_match)) {
            return true;  // this trigger satisfied; keep searching
          }
        }
        return false;  // violated trigger found; stop (=> not satisfied)
      });
}

bool SatisfiesAll(const Instance& instance, const DependencySet& deps) {
  for (const Tgd& tgd : deps.tgds) {
    if (!SatisfiesTgd(instance, tgd)) return false;
  }
  for (const Egd& egd : deps.egds) {
    if (!SatisfiesEgd(instance, egd)) return false;
  }
  for (const DisjunctiveTgd& tgd : deps.disjunctive_tgds) {
    if (!SatisfiesDisjunctiveTgd(instance, tgd)) return false;
  }
  return true;
}

}  // namespace pdx
