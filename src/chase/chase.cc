#include "chase/chase.h"

#include <unordered_set>

#include "base/string_util.h"
#include "hom/matcher.h"

namespace pdx {

namespace {

// Finds one violated trigger for `tgd` in `instance`: a body homomorphism
// with no head extension. Returns true and fills `binding` if found.
bool FindViolatedTgdTrigger(const Instance& instance, const Tgd& tgd,
                            Binding* out) {
  return EnumerateMatches(
      tgd.body, tgd.var_count, instance, Binding::Empty(tgd.var_count),
      [&](const Binding& body_match) {
        if (HasMatch(tgd.head, tgd.var_count, instance, body_match)) {
          return true;  // satisfied trigger; keep searching
        }
        *out = body_match;
        return false;  // violated trigger found; stop
      });
}

// Finds one violated egd trigger: a body homomorphism with
// h(left) != h(right). Returns true and fills `out` if found.
bool FindViolatedEgdTrigger(const Instance& instance, const Egd& egd,
                            Binding* out) {
  return EnumerateMatches(
      egd.body, egd.var_count, instance, Binding::Empty(egd.var_count),
      [&](const Binding& body_match) {
        if (body_match.values[egd.left_var] ==
            body_match.values[egd.right_var]) {
          return true;  // satisfied; keep searching
        }
        *out = body_match;
        return false;
      });
}

// Like FindViolatedEgdTrigger, but only scans body matches touching the
// delta (earlier matches were resolved when their facts were new).
bool FindViolatedEgdTriggerDelta(const Instance& instance,
                                 const DeltaView& delta, const Egd& egd,
                                 Binding* out) {
  return EnumerateMatchesDelta(
      egd.body, egd.var_count, instance, delta, Binding::Empty(egd.var_count),
      [&](const Binding& body_match) {
        if (body_match.values[egd.left_var] ==
            body_match.values[egd.right_var]) {
          return true;
        }
        *out = body_match;
        return false;
      });
}

// True if some body atom could match inside the delta at all.
bool TouchesDelta(const std::vector<Atom>& body, const DeltaView& delta) {
  for (const Atom& atom : body) {
    if (delta.dirty(atom.relation)) return true;
  }
  return false;
}

// Applies one tgd chase step for the trigger `binding`: extends the
// binding with fresh nulls for existential variables and inserts the head
// image. Returns the number of fresh nulls created.
int ApplyTgdStep(const Tgd& tgd, const Binding& binding, Instance* instance,
                 SymbolTable* symbols) {
  Binding extended = binding;
  int fresh = 0;
  for (VariableId v = 0; v < tgd.var_count; ++v) {
    if (tgd.existential[v] && !extended.bound[v]) {
      extended.Bind(v, symbols->FreshNull());
      ++fresh;
    }
  }
  for (const Atom& atom : tgd.head) {
    Tuple tuple;
    tuple.reserve(atom.terms.size());
    for (const Term& t : atom.terms) {
      if (t.is_constant()) {
        tuple.push_back(t.constant());
      } else {
        PDX_DCHECK(extended.bound[t.var()]);
        tuple.push_back(extended.values[t.var()]);
      }
    }
    instance->AddFact(atom.relation, std::move(tuple));
  }
  return fresh;
}

// Fingerprint of a fired trigger: tgd index plus the values assigned to
// the universally quantified body variables. Used by the oblivious chase
// to fire every trigger exactly once.
uint64_t TriggerFingerprint(size_t tgd_index, const Tgd& tgd,
                            const Binding& binding) {
  uint64_t h = 0xcbf29ce484222325ull ^ (tgd_index * 0x9e3779b97f4a7c15ull);
  for (VariableId v = 0; v < tgd.var_count; ++v) {
    if (!binding.bound[v]) continue;
    uint64_t x = binding.values[v].packed();
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    h = (h ^ x) * 0x100000001b3ull;
  }
  return h;
}

// Applies one egd substitution for the violated trigger (a, b), or fails
// on a constant/constant clash. Shared by all egd loops.
bool ApplyEgdStep(Value a, Value b, Instance* instance, SymbolTable* symbols,
                  const ChaseOptions& options, ChaseResult* result) {
  if (a.is_constant() && b.is_constant()) {
    result->outcome = ChaseOutcome::kFailed;
    result->failure = StrCat("egd equates distinct constants ",
                             symbols->ValueToString(a), " and ",
                             symbols->ValueToString(b));
    ++result->steps;
    return false;
  }
  if (a.is_null()) {
    instance->Substitute(a, b);
    result->merges[a.packed()] = b;
  } else {
    instance->Substitute(b, a);
    result->merges[b.packed()] = a;
  }
  ++result->steps;
  if (result->steps >= options.max_steps) {
    result->outcome = ChaseOutcome::kBudgetExhausted;
    return false;
  }
  return true;
}

// Applies target egds to fixpoint by full rescans. Returns false on a
// constant/constant clash or budget exhaustion (filling `result`);
// `merged` reports whether any substitution happened.
bool RunEgdsToFixpoint(const std::vector<Egd>& egds, Instance* instance,
                       SymbolTable* symbols, const ChaseOptions& options,
                       ChaseResult* result, bool* merged) {
  for (const Egd& egd : egds) {
    Binding trigger = Binding::Empty(egd.var_count);
    while (FindViolatedEgdTrigger(*instance, egd, &trigger)) {
      if (!ApplyEgdStep(trigger.values[egd.left_var],
                        trigger.values[egd.right_var], instance, symbols,
                        options, result)) {
        return false;
      }
      *merged = true;
    }
  }
  return true;
}

// Applies egds to fixpoint over the pending delta (everything beyond
// `mark`). Each substitution rewrites only the relations containing the
// merged null; those relations' rewrite counters advance, so the rebuilt
// DeltaView treats exactly them as new again and cascading egd triggers
// are re-examined without a global rescan. Returns false on clash or
// budget exhaustion (filling `result`).
bool RunEgdsDelta(const std::vector<Egd>& egds, Instance* instance,
                  const InstanceWatermark& mark, SymbolTable* symbols,
                  const ChaseOptions& options, ChaseResult* result) {
  if (egds.empty()) return true;
  bool fired = true;
  while (fired) {
    fired = false;
    DeltaView delta(*instance, mark);
    if (!delta.any()) return true;
    for (const Egd& egd : egds) {
      if (!TouchesDelta(egd.body, delta)) continue;
      Binding trigger = Binding::Empty(egd.var_count);
      while (FindViolatedEgdTriggerDelta(*instance, delta, egd, &trigger)) {
        if (!ApplyEgdStep(trigger.values[egd.left_var],
                          trigger.values[egd.right_var], instance, symbols,
                          options, result)) {
          return false;
        }
        fired = true;
        // The substitution invalidated tuple indexes of the relations it
        // rewrote; rebuild the view before scanning further.
        delta = DeltaView(*instance, mark);
        if (!TouchesDelta(egd.body, delta)) break;
      }
    }
  }
  return true;
}

// The classic scan-from-scratch restricted chase, kept as the
// cross-validation baseline for the delta-driven default.
ChaseResult ChaseRestrictedNaive(const Instance& start,
                                 const std::vector<Tgd>& tgds,
                                 const std::vector<Egd>& egds,
                                 SymbolTable* symbols,
                                 const ChaseOptions& options) {
  ChaseResult result(start);
  Instance& instance = result.instance;
  while (true) {
    if (result.steps >= options.max_steps) {
      result.outcome = ChaseOutcome::kBudgetExhausted;
      return result;
    }
    bool applied = false;
    bool merged = false;
    if (!RunEgdsToFixpoint(egds, &instance, symbols, options, &result,
                           &merged)) {
      return result;
    }
    applied |= merged;
    for (const Tgd& tgd : tgds) {
      Binding trigger = Binding::Empty(tgd.var_count);
      while (FindViolatedTgdTrigger(instance, tgd, &trigger)) {
        result.nulls_created += ApplyTgdStep(tgd, trigger, &instance,
                                             symbols);
        ++result.steps;
        applied = true;
        if (result.steps >= options.max_steps) {
          result.outcome = ChaseOutcome::kBudgetExhausted;
          return result;
        }
      }
    }
    if (!applied) {
      result.outcome = ChaseOutcome::kSuccess;
      return result;
    }
  }
}

// The delta-driven restricted chase: the fixpoint loop works off a
// watermark into the instance; each round evaluates only triggers whose
// body touches a fact beyond the watermark (semi-naive evaluation via
// EnumerateMatchesDelta), then advances the watermark to the round's
// frontier. Egd substitutions dirty only the relations they rewrote.
ChaseResult ChaseRestrictedDelta(const Instance& start,
                                 const std::vector<Tgd>& tgds,
                                 const std::vector<Egd>& egds,
                                 SymbolTable* symbols,
                                 const ChaseOptions& options) {
  ChaseResult result(start);
  Instance& instance = result.instance;
  // Everything is "new" before the first round, so round one degenerates
  // to the full scan the naive chase would do — exactly once.
  InstanceWatermark mark = InstanceWatermark::Origin(instance);
  while (true) {
    if (result.steps >= options.max_steps) {
      result.outcome = ChaseOutcome::kBudgetExhausted;
      return result;
    }
    if (!RunEgdsDelta(egds, &instance, mark, symbols, options, &result)) {
      return result;
    }
    DeltaView delta(instance, mark);
    if (!delta.any()) {
      // Nothing new since the last full round: every trigger has been
      // examined against a state it still holds in. Fixpoint.
      result.outcome = ChaseOutcome::kSuccess;
      return result;
    }
    // Facts present now are covered once this round's triggers have been
    // evaluated; facts the round itself adds become the next delta.
    InstanceWatermark frontier = instance.TakeWatermark();
    for (const Tgd& tgd : tgds) {
      if (!TouchesDelta(tgd.body, delta)) continue;
      // Collect the violated triggers for this delta, then apply them.
      // (Applying while enumerating would mutate the instance under the
      // matcher.)
      std::vector<Binding> pending;
      EnumerateMatchesDelta(tgd.body, tgd.var_count, instance, delta,
                            Binding::Empty(tgd.var_count),
                            [&](const Binding& body_match) {
                              if (!HasMatch(tgd.head, tgd.var_count, instance,
                                            body_match)) {
                                pending.push_back(body_match);
                              }
                              return true;
                            });
      for (const Binding& trigger : pending) {
        // Re-check: an earlier application may have satisfied it.
        if (HasMatch(tgd.head, tgd.var_count, instance, trigger)) {
          continue;
        }
        result.nulls_created += ApplyTgdStep(tgd, trigger, &instance,
                                             symbols);
        ++result.steps;
        if (result.steps >= options.max_steps) {
          result.outcome = ChaseOutcome::kBudgetExhausted;
          return result;
        }
      }
    }
    mark = std::move(frontier);
  }
}

// The delta-driven oblivious chase: every body homomorphism of every tgd
// fires exactly once, tracked by the trigger-fingerprint set. Only matches
// touching the delta are enumerated per round; a match wholly over old
// facts was enumerated (and fingerprinted) in the round its newest fact
// arrived, so nothing is missed.
ChaseResult ChaseOblivious(const Instance& start,
                           const std::vector<Tgd>& tgds,
                           const std::vector<Egd>& egds,
                           SymbolTable* symbols, const ChaseOptions& options) {
  ChaseResult result(start);
  Instance& instance = result.instance;
  std::unordered_set<uint64_t> fired;
  InstanceWatermark mark = InstanceWatermark::Origin(instance);
  while (true) {
    if (result.steps >= options.max_steps) {
      result.outcome = ChaseOutcome::kBudgetExhausted;
      return result;
    }
    if (!RunEgdsDelta(egds, &instance, mark, symbols, options, &result)) {
      return result;
    }
    DeltaView delta(instance, mark);
    if (!delta.any()) {
      result.outcome = ChaseOutcome::kSuccess;
      return result;
    }
    InstanceWatermark frontier = instance.TakeWatermark();
    for (size_t d = 0; d < tgds.size(); ++d) {
      const Tgd& tgd = tgds[d];
      if (!TouchesDelta(tgd.body, delta)) continue;
      // Collect unfired triggers first (the instance must not change under
      // the matcher), then fire them.
      std::vector<Binding> pending;
      EnumerateMatchesDelta(tgd.body, tgd.var_count, instance, delta,
                            Binding::Empty(tgd.var_count),
                            [&](const Binding& body_match) {
                              uint64_t fp =
                                  TriggerFingerprint(d, tgd, body_match);
                              if (fired.insert(fp).second) {
                                pending.push_back(body_match);
                              }
                              return true;
                            });
      for (const Binding& trigger : pending) {
        result.nulls_created += ApplyTgdStep(tgd, trigger, &instance,
                                             symbols);
        ++result.steps;
        if (result.steps >= options.max_steps) {
          result.outcome = ChaseOutcome::kBudgetExhausted;
          return result;
        }
      }
    }
    mark = std::move(frontier);
  }
}

}  // namespace

ChaseResult Chase(const Instance& start, const std::vector<Tgd>& tgds,
                  const std::vector<Egd>& egds, SymbolTable* symbols,
                  const ChaseOptions& options) {
  PDX_CHECK(symbols != nullptr);
  switch (options.strategy) {
    case ChaseStrategy::kOblivious:
      return ChaseOblivious(start, tgds, egds, symbols, options);
    case ChaseStrategy::kRestrictedNaive:
      return ChaseRestrictedNaive(start, tgds, egds, symbols, options);
    case ChaseStrategy::kRestricted:
      return ChaseRestrictedDelta(start, tgds, egds, symbols, options);
  }
  ChaseResult result(start);
  result.outcome = ChaseOutcome::kBudgetExhausted;
  return result;
}

ChaseResult Chase(const Instance& start, const std::vector<Tgd>& tgds,
                  SymbolTable* symbols, const ChaseOptions& options) {
  return Chase(start, tgds, {}, symbols, options);
}

bool SatisfiesTgd(const Instance& instance, const Tgd& tgd) {
  Binding trigger = Binding::Empty(tgd.var_count);
  return !FindViolatedTgdTrigger(instance, tgd, &trigger);
}

bool SatisfiesEgd(const Instance& instance, const Egd& egd) {
  Binding trigger = Binding::Empty(egd.var_count);
  return !FindViolatedEgdTrigger(instance, egd, &trigger);
}

bool SatisfiesDisjunctiveTgd(const Instance& instance,
                             const DisjunctiveTgd& tgd) {
  return !EnumerateMatches(
      tgd.body, tgd.var_count, instance, Binding::Empty(tgd.var_count),
      [&](const Binding& body_match) {
        for (const std::vector<Atom>& disjunct : tgd.head_disjuncts) {
          if (HasMatch(disjunct, tgd.var_count, instance, body_match)) {
            return true;  // this trigger satisfied; keep searching
          }
        }
        return false;  // violated trigger found; stop (=> not satisfied)
      });
}

bool SatisfiesAll(const Instance& instance, const DependencySet& deps) {
  for (const Tgd& tgd : deps.tgds) {
    if (!SatisfiesTgd(instance, tgd)) return false;
  }
  for (const Egd& egd : deps.egds) {
    if (!SatisfiesEgd(instance, egd)) return false;
  }
  for (const DisjunctiveTgd& tgd : deps.disjunctive_tgds) {
    if (!SatisfiesDisjunctiveTgd(instance, tgd)) return false;
  }
  return true;
}

}  // namespace pdx
