#include "chase/chase.h"

#include <unordered_set>

#include "base/string_util.h"
#include "hom/matcher.h"

namespace pdx {

namespace {

// Finds one violated trigger for `tgd` in `instance`: a body homomorphism
// with no head extension. Returns true and fills `binding` if found.
bool FindViolatedTgdTrigger(const Instance& instance, const Tgd& tgd,
                            Binding* out) {
  return EnumerateMatches(
      tgd.body, tgd.var_count, instance, Binding::Empty(tgd.var_count),
      [&](const Binding& body_match) {
        if (HasMatch(tgd.head, tgd.var_count, instance, body_match)) {
          return true;  // satisfied trigger; keep searching
        }
        *out = body_match;
        return false;  // violated trigger found; stop
      });
}

// Finds one violated egd trigger: a body homomorphism with
// h(left) != h(right). Returns true and fills `out` if found.
bool FindViolatedEgdTrigger(const Instance& instance, const Egd& egd,
                            Binding* out) {
  return EnumerateMatches(
      egd.body, egd.var_count, instance, Binding::Empty(egd.var_count),
      [&](const Binding& body_match) {
        if (body_match.values[egd.left_var] ==
            body_match.values[egd.right_var]) {
          return true;  // satisfied; keep searching
        }
        *out = body_match;
        return false;
      });
}

// Applies one tgd chase step for the trigger `binding`: extends the
// binding with fresh nulls for existential variables and inserts the head
// image. Returns the number of fresh nulls created.
int ApplyTgdStep(const Tgd& tgd, const Binding& binding, Instance* instance,
                 SymbolTable* symbols) {
  Binding extended = binding;
  int fresh = 0;
  for (VariableId v = 0; v < tgd.var_count; ++v) {
    if (tgd.existential[v] && !extended.bound[v]) {
      extended.Bind(v, symbols->FreshNull());
      ++fresh;
    }
  }
  for (const Atom& atom : tgd.head) {
    Tuple tuple;
    tuple.reserve(atom.terms.size());
    for (const Term& t : atom.terms) {
      if (t.is_constant()) {
        tuple.push_back(t.constant());
      } else {
        PDX_DCHECK(extended.bound[t.var()]);
        tuple.push_back(extended.values[t.var()]);
      }
    }
    instance->AddFact(atom.relation, std::move(tuple));
  }
  return fresh;
}

// Fingerprint of a fired trigger: tgd index plus the values assigned to
// the universally quantified body variables. Used by the oblivious chase
// to fire every trigger exactly once.
uint64_t TriggerFingerprint(size_t tgd_index, const Tgd& tgd,
                            const Binding& binding) {
  uint64_t h = 0xcbf29ce484222325ull ^ (tgd_index * 0x9e3779b97f4a7c15ull);
  for (VariableId v = 0; v < tgd.var_count; ++v) {
    if (!binding.bound[v]) continue;
    uint64_t x = binding.values[v].packed();
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    h = (h ^ x) * 0x100000001b3ull;
  }
  return h;
}

// Applies target egds to fixpoint. Returns false on a constant/constant
// clash (filling `result`); `merged` reports whether any substitution
// happened (the incremental chase must then reset its watermarks).
bool RunEgdsToFixpoint(const std::vector<Egd>& egds, Instance* instance,
                       SymbolTable* symbols, const ChaseOptions& options,
                       ChaseResult* result, bool* merged) {
  for (const Egd& egd : egds) {
    Binding trigger = Binding::Empty(egd.var_count);
    while (FindViolatedEgdTrigger(*instance, egd, &trigger)) {
      Value a = trigger.values[egd.left_var];
      Value b = trigger.values[egd.right_var];
      if (a.is_constant() && b.is_constant()) {
        result->outcome = ChaseOutcome::kFailed;
        result->failure = StrCat("egd equates distinct constants ",
                                 symbols->ValueToString(a), " and ",
                                 symbols->ValueToString(b));
        ++result->steps;
        return false;
      }
      if (a.is_null()) {
        instance->Substitute(a, b);
        result->merges[a.packed()] = b;
      } else {
        instance->Substitute(b, a);
        result->merges[b.packed()] = a;
      }
      *merged = true;
      ++result->steps;
      if (result->steps >= options.max_steps) {
        result->outcome = ChaseOutcome::kBudgetExhausted;
        return false;
      }
    }
  }
  return true;
}

// The classic scan-from-scratch restricted chase.
ChaseResult ChaseRestrictedNaive(const Instance& start,
                                 const std::vector<Tgd>& tgds,
                                 const std::vector<Egd>& egds,
                                 SymbolTable* symbols,
                                 const ChaseOptions& options) {
  ChaseResult result(start);
  Instance& instance = result.instance;
  while (true) {
    if (result.steps >= options.max_steps) {
      result.outcome = ChaseOutcome::kBudgetExhausted;
      return result;
    }
    bool applied = false;
    bool merged = false;
    if (!RunEgdsToFixpoint(egds, &instance, symbols, options, &result,
                           &merged)) {
      return result;
    }
    applied |= merged;
    for (const Tgd& tgd : tgds) {
      Binding trigger = Binding::Empty(tgd.var_count);
      while (FindViolatedTgdTrigger(instance, tgd, &trigger)) {
        result.nulls_created += ApplyTgdStep(tgd, trigger, &instance,
                                             symbols);
        ++result.steps;
        applied = true;
        if (result.steps >= options.max_steps) {
          result.outcome = ChaseOutcome::kBudgetExhausted;
          return result;
        }
      }
    }
    if (!applied) {
      result.outcome = ChaseOutcome::kSuccess;
      return result;
    }
  }
}

// Attempts to bind `atom` against `tuple` on top of `binding`; returns
// false on clash. Shared by the semi-naive trigger scan.
bool BindAtomToTuple(const Atom& atom, const Tuple& tuple, Binding* binding) {
  for (size_t i = 0; i < atom.terms.size(); ++i) {
    const Term& t = atom.terms[i];
    if (t.is_constant()) {
      if (t.constant() != tuple[i]) return false;
    } else if (binding->bound[t.var()]) {
      if (binding->values[t.var()] != tuple[i]) return false;
    } else {
      binding->Bind(t.var(), tuple[i]);
    }
  }
  return true;
}

// Semi-naive restricted chase: per round, only triggers whose body touches
// a fact added since the last round are scanned.
ChaseResult ChaseRestrictedIncremental(const Instance& start,
                                       const std::vector<Tgd>& tgds,
                                       const std::vector<Egd>& egds,
                                       SymbolTable* symbols,
                                       const ChaseOptions& options) {
  ChaseResult result(start);
  Instance& instance = result.instance;
  int relation_count = instance.schema().relation_count();
  // Per relation: number of tuples already scanned in earlier rounds.
  std::vector<size_t> watermark(relation_count, 0);

  while (true) {
    if (result.steps >= options.max_steps) {
      result.outcome = ChaseOutcome::kBudgetExhausted;
      return result;
    }
    bool applied = false;
    bool merged = false;
    if (!RunEgdsToFixpoint(egds, &instance, symbols, options, &result,
                           &merged)) {
      return result;
    }
    if (merged) {
      // Substitution rewrote tuples and invalidated positions: rescan all.
      watermark.assign(relation_count, 0);
      applied = true;
    }

    // Snapshot the frontier: facts at index >= watermark are "new".
    std::vector<size_t> frontier(relation_count);
    for (RelationId r = 0; r < relation_count; ++r) {
      frontier[r] = instance.tuples(r).size();
    }

    for (const Tgd& tgd : tgds) {
      for (size_t pivot = 0; pivot < tgd.body.size(); ++pivot) {
        const Atom& atom = tgd.body[pivot];
        // Only tuples within this round's frontier are pivots; facts the
        // round itself adds become pivots next round.
        for (size_t idx = watermark[atom.relation];
             idx < frontier[atom.relation] &&
             idx < instance.tuples(atom.relation).size();
             ++idx) {
          Binding partial = Binding::Empty(tgd.var_count);
          if (!BindAtomToTuple(atom, instance.tuples(atom.relation)[idx],
                               &partial)) {
            continue;
          }
          // Collect the violated triggers for this pivot, then apply them.
          // (Applying while enumerating would mutate the instance under
          // the matcher.)
          std::vector<Binding> pending;
          EnumerateMatches(tgd.body, tgd.var_count, instance, partial,
                           [&](const Binding& body_match) {
                             if (!HasMatch(tgd.head, tgd.var_count, instance,
                                           body_match)) {
                               pending.push_back(body_match);
                             }
                             return true;
                           });
          for (const Binding& trigger : pending) {
            // Re-check: an earlier application may have satisfied it.
            if (HasMatch(tgd.head, tgd.var_count, instance, trigger)) {
              continue;
            }
            result.nulls_created +=
                ApplyTgdStep(tgd, trigger, &instance, symbols);
            ++result.steps;
            applied = true;
            if (result.steps >= options.max_steps) {
              result.outcome = ChaseOutcome::kBudgetExhausted;
              return result;
            }
          }
        }
      }
    }
    watermark = frontier;
    if (!applied) {
      result.outcome = ChaseOutcome::kSuccess;
      return result;
    }
  }
}

// The oblivious chase: every body homomorphism of every tgd fires exactly
// once, with fresh nulls for its existential variables.
ChaseResult ChaseOblivious(const Instance& start,
                           const std::vector<Tgd>& tgds,
                           const std::vector<Egd>& egds,
                           SymbolTable* symbols, const ChaseOptions& options) {
  ChaseResult result(start);
  Instance& instance = result.instance;
  std::unordered_set<uint64_t> fired;
  while (true) {
    if (result.steps >= options.max_steps) {
      result.outcome = ChaseOutcome::kBudgetExhausted;
      return result;
    }
    bool applied = false;
    bool merged = false;
    if (!RunEgdsToFixpoint(egds, &instance, symbols, options, &result,
                           &merged)) {
      return result;
    }
    applied |= merged;
    for (size_t d = 0; d < tgds.size(); ++d) {
      const Tgd& tgd = tgds[d];
      // Collect unfired triggers first (the instance must not change under
      // the matcher), then fire them.
      std::vector<Binding> pending;
      EnumerateMatches(tgd.body, tgd.var_count, instance,
                       Binding::Empty(tgd.var_count),
                       [&](const Binding& body_match) {
                         uint64_t fp = TriggerFingerprint(d, tgd, body_match);
                         if (fired.insert(fp).second) {
                           pending.push_back(body_match);
                         }
                         return true;
                       });
      for (const Binding& trigger : pending) {
        result.nulls_created += ApplyTgdStep(tgd, trigger, &instance,
                                             symbols);
        ++result.steps;
        applied = true;
        if (result.steps >= options.max_steps) {
          result.outcome = ChaseOutcome::kBudgetExhausted;
          return result;
        }
      }
    }
    if (!applied) {
      result.outcome = ChaseOutcome::kSuccess;
      return result;
    }
  }
}

}  // namespace

ChaseResult Chase(const Instance& start, const std::vector<Tgd>& tgds,
                  const std::vector<Egd>& egds, SymbolTable* symbols,
                  const ChaseOptions& options) {
  PDX_CHECK(symbols != nullptr);
  switch (options.strategy) {
    case ChaseStrategy::kOblivious:
      return ChaseOblivious(start, tgds, egds, symbols, options);
    case ChaseStrategy::kRestricted:
      if (options.incremental) {
        return ChaseRestrictedIncremental(start, tgds, egds, symbols,
                                          options);
      }
      return ChaseRestrictedNaive(start, tgds, egds, symbols, options);
  }
  ChaseResult result(start);
  result.outcome = ChaseOutcome::kBudgetExhausted;
  return result;
}

ChaseResult Chase(const Instance& start, const std::vector<Tgd>& tgds,
                  SymbolTable* symbols, const ChaseOptions& options) {
  return Chase(start, tgds, {}, symbols, options);
}

bool SatisfiesTgd(const Instance& instance, const Tgd& tgd) {
  Binding trigger = Binding::Empty(tgd.var_count);
  return !FindViolatedTgdTrigger(instance, tgd, &trigger);
}

bool SatisfiesEgd(const Instance& instance, const Egd& egd) {
  Binding trigger = Binding::Empty(egd.var_count);
  return !FindViolatedEgdTrigger(instance, egd, &trigger);
}

bool SatisfiesDisjunctiveTgd(const Instance& instance,
                             const DisjunctiveTgd& tgd) {
  return !EnumerateMatches(
      tgd.body, tgd.var_count, instance, Binding::Empty(tgd.var_count),
      [&](const Binding& body_match) {
        for (const std::vector<Atom>& disjunct : tgd.head_disjuncts) {
          if (HasMatch(disjunct, tgd.var_count, instance, body_match)) {
            return true;  // this trigger satisfied; keep searching
          }
        }
        return false;  // violated trigger found; stop (=> not satisfied)
      });
}

bool SatisfiesAll(const Instance& instance, const DependencySet& deps) {
  for (const Tgd& tgd : deps.tgds) {
    if (!SatisfiesTgd(instance, tgd)) return false;
  }
  for (const Egd& egd : deps.egds) {
    if (!SatisfiesEgd(instance, egd)) return false;
  }
  for (const DisjunctiveTgd& tgd : deps.disjunctive_tgds) {
    if (!SatisfiesDisjunctiveTgd(instance, tgd)) return false;
  }
  return true;
}

}  // namespace pdx
