#ifndef PDX_CHASE_JOURNAL_H_
#define PDX_CHASE_JOURNAL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "chase/trigger_ledger.h"
#include "relational/value.h"

namespace pdx {

// The firing journal behind deletion propagation (chase/stream.h): an
// append-only log of every trigger a restricted chase applied, written
// from the sequential apply phases (never from pool workers — the
// collect-parallel/apply-sequential discipline means the journal needs no
// locking). One entry per firing holds the dependency index and the full
// extended binding row (universal values plus, for tgds, the fresh nulls
// invented for the existential variables), flat in a shared value pool —
// no per-entry allocation on the hot path. Body and head facts are not
// stored: they are cheap to reconstruct by instantiating the dependency's
// atoms under the row, which also keeps entries valid across egd merges
// (values re-resolve through the live resolver) and store compactions
// (no tuple indexes are held).
//
// Exactly-once discipline: entries are keyed by the universal-binding
// trigger fingerprint through an embedded TriggerLedger. Recording a
// fingerprint that already names a *live* entry is refused (a duplicate
// firing — the restricted decide disciplines make this unreachable, so
// the refusal is a safety net keeping support counts exact); killing an
// entry retires its fingerprint, so a deleted trigger whose body match
// re-forms re-admits and fires exactly once more.
class ChaseJournal {
 public:
  struct Entry {
    uint32_t begin = 0;  // offset of this entry's row in the value pool
    uint16_t len = 0;    // row width (the dependency's var_count)
    bool egd = false;    // tgd firing or egd merge
    bool alive = true;   // false once deletion propagation killed it
    uint32_t dep = 0;    // index into the run's tgds / egds vector
    uint64_t fp = 0;     // universal-binding fingerprint (the ledger key)
  };

  ChaseJournal();

  // The ledger makes the journal non-copyable; streaming state that needs
  // transactionality rolls back via Kill/Revive/TruncateTo instead of
  // copying (see StreamingChase).
  ChaseJournal(const ChaseJournal&) = delete;
  ChaseJournal& operator=(const ChaseJournal&) = delete;

  // Records one tgd firing: `row[0, n)` is the extended binding
  // (existential slots filled with the invented nulls; `existential`
  // masks them out of the fingerprint, so a re-derived firing with new
  // nulls keys the same). Returns false (and records nothing) when a
  // live entry already holds the fingerprint.
  bool RecordTgd(size_t dep, const Value* row, size_t n,
                 const std::vector<bool>& existential);

  // Records one successful egd merge under the trigger binding that
  // forced it. Egd fingerprints live in their own namespace (an egd and a
  // tgd sharing an index and binding never collide).
  bool RecordEgd(size_t dep, const Value* row, size_t n);

  size_t size() const { return entries_.size(); }
  size_t live_count() const { return live_; }
  const Entry& entry(size_t i) const { return entries_[i]; }
  const Value* row(const Entry& e) const { return pool_.data() + e.begin; }

  // Marks entry `i` dead and retires its fingerprint (re-admittable).
  // Returns false if it was already dead.
  bool Kill(size_t i);

  // Rollback support: resurrects a killed entry (re-claiming its
  // fingerprint) / drops every entry at index >= `n` (retiring live
  // fingerprints). A failed ±Δ batch undoes itself with exactly these.
  void Revive(size_t i);
  void TruncateTo(size_t n);

  // Drops everything (fresh ledger): the full re-chase fallback path.
  void Clear();

  // Exchanges the entire state with `other`. StreamingChase's fallback
  // chases into a scratch journal and swaps it in only once the re-chase
  // succeeded, so a failed fallback leaves this journal untouched.
  void Swap(ChaseJournal& other);

 private:
  bool Record(bool egd, size_t dep, const Value* row, size_t n, uint64_t fp);

  std::vector<Value> pool_;
  std::vector<Entry> entries_;
  size_t live_ = 0;
  // unique_ptr: the ledger's concurrent fingerprint set is neither
  // copyable nor movable, and Clear() needs to replace it wholesale.
  std::unique_ptr<TriggerLedger> ledger_;
};

}  // namespace pdx

#endif  // PDX_CHASE_JOURNAL_H_
