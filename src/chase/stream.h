#ifndef PDX_CHASE_STREAM_H_
#define PDX_CHASE_STREAM_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "chase/chase.h"
#include "chase/journal.h"
#include "relational/instance.h"
#include "relational/schema.h"
#include "relational/tuple.h"

namespace pdx {

namespace plan {
struct BodyPlan;
struct CompiledSetting;
}  // namespace plan

// Per-batch accounting of one ResumeWithDeltas call.
struct StreamStats {
  // Chase steps this batch cost: re-derivation firings plus the resumed
  // (or fallback) chase's steps. Bounded by what a from-scratch re-chase
  // of the net instance would spend (stream_test asserts it).
  int64_t steps = 0;
  // Deleted facts that were actually present in the base (the rest are
  // ignored: derived facts are consequences, not retractable inputs).
  int64_t base_removed = 0;
  // Facts removed from the chased instance (deleted base facts with no
  // surviving derivation, plus the cascade of unsupported consequences).
  int64_t retracted = 0;
  // Over-deleted facts restored by the re-derivation pass.
  int64_t rederived = 0;
  // Journal entries killed because a body fact died.
  int64_t dead_triggers = 0;
  // True when a dead egd firing forced the full re-chase fallback (merges
  // are irreversible — resolve-on-write folds winners into stored tuples —
  // so a merge whose justification died invalidates the resolver
  // wholesale; see DESIGN.md §4h).
  bool fell_back = false;
};

// Streaming chase state: DRed/counting-style deletion propagation over the
// restricted delta chase. Holds the admitted base instance, the chased
// canonical instance, the resume watermark and the firing journal
// (chase/journal.h) that ties every derived fact to the triggers
// justifying it.
//
// A ±Δ batch (ResumeWithDeltas) runs:
//   1. *Retract.* Deletes are resolved against the base; each removed base
//      fact with no surviving derivation leaves the chased instance, and
//      the support index cascades: a firing whose body lost a fact dies
//      (its ledger fingerprint retires, so the trigger is re-admittable),
//      each of its head facts loses one producer, and a fact with zero
//      producers that is not in the base is removed in turn.
//   2. *Re-derive.* Over-deletion repair: each removed fact is unified
//      against every tgd head atom (universal positions only) and the
//      body is enumerated through the compiled match plans against the
//      post-removal state — surviving alternative derivations re-fire,
//      journaled, restoring exactly the facts the restricted chase would
//      still derive.
//   3. *Resume.* Adds land in base and instance, and the delta chase
//      resumes from the post-removal watermark with the journal attached;
//      re-derived and added facts are precisely its first delta.
// If step 1 kills an egd firing, the batch instead falls back to one full
// re-chase of the net base (fresh journal): union-find merges cannot be
// undone, so a dead merge invalidates the resolver wholesale.
//
// Failure (an egd clash from the adds, or budget exhaustion) rolls the
// whole batch back — instances, watermark, journal entries and ledger
// fingerprints — leaving the state exactly as before the call, which is
// what lets the serving layer replay a failed coalesced batch per ticket.
//
// Restricted strategy only (resume_from's contract); any schedule, thread
// count and compile mode. Not thread-safe: one writer, like the admission
// queue that drives it in src/serve/.
class StreamingChase {
 public:
  // `schema` and `symbols` must outlive the object. `options.strategy`
  // must be kRestricted; `options.journal` is managed internally.
  StreamingChase(const Schema* schema, std::vector<Tgd> tgds,
                 std::vector<Egd> egds, SymbolTable* symbols,
                 ChaseOptions options = ChaseOptions());
  ~StreamingChase();

  StreamingChase(const StreamingChase&) = delete;
  StreamingChase& operator=(const StreamingChase&) = delete;

  // Chases `base` from scratch (journaled) and adopts the result. Fails on
  // egd clash or budget exhaustion, leaving the object uninitialized (a
  // later Initialize may be retried).
  Status Initialize(const Instance& base);

  // Applies one ±Δ batch: deletes first (resolved against the base;
  // deletes of absent or derived-only facts are ignored), then adds, then
  // the incremental re-solve described above. On error the state is
  // unchanged.
  StatusOr<StreamStats> ResumeWithDeltas(const std::vector<Fact>& adds,
                                         const std::vector<Fact>& deletes);

  bool initialized() const { return initialized_; }
  // The admitted (retractable) facts.
  const Instance& base() const { return base_; }
  // The chased fixpoint over the current base.
  const Instance& instance() const { return instance_; }
  // Watermark at the current fixpoint (everything is covered); a caller
  // growing `instance` externally can resume a plain Chase from it.
  const InstanceWatermark& mark() const { return mark_; }
  const ChaseJournal& journal() const { return journal_; }
  // Cumulative chase steps across Initialize and every batch.
  int64_t total_steps() const { return total_steps_; }

 private:
  struct SupportNode {
    int32_t producers = 0;          // live firings deriving this fact
    bool in_base = false;           // the base justifies it directly
    std::vector<uint32_t> consumers;  // entry ids with it in their body
  };
  // Resolved fact -> support node, per relation.
  using SupportMap = std::unordered_map<Tuple, SupportNode, TupleHash>;
  // A head fact of an indexed firing, as a stable pointer into support_
  // (unordered_map nodes never move, even across rehash): the cascade
  // walks producer decrements without re-instantiating entry rows.
  struct HeadRef {
    RelationId relation;
    SupportMap::value_type* node;
  };
  // A removed fact, addressed by its support node (valid through one
  // batch: the cascade never inserts into or erases from support_).
  using RemovedRef = std::pair<RelationId, SupportMap::value_type*>;

  Tuple ResolveTupleHere(const Value* values, size_t n) const;
  // Instantiates `atoms` under a journal row, resolved, deduped.
  void EntryFacts(const std::vector<Atom>& atoms, const Value* row,
                  std::vector<Fact>* out) const;
  void BodyFactsOf(const ChaseJournal::Entry& e,
                   std::vector<Fact>* out) const;
  void HeadFactsOf(const ChaseJournal::Entry& e,
                   std::vector<Fact>* out) const;

  // rederive_plans_[d][h]: tgds_[d].body compiled with head atom h's
  // universal variables assumed bound. The shared compiled setting's body
  // plan assumes *nothing* bound (its first access path is a scan), so
  // running it under Rederive's pivot binding would rescan a whole
  // relation per removed fact; these plans probe the bound positions
  // instead. Built alongside compiled_; empty on the interpreter path
  // (EnumerateMatches picks access paths dynamically).
  std::vector<std::vector<plan::BodyPlan>> rederive_plans_;

  // (Re)builds or extends the support index to cover the whole journal.
  void EnsureSupportIndex();
  void IndexEntry(uint32_t id, std::vector<Fact>* scratch);

  // Re-derivation: collect and fire surviving alternative derivations for
  // the removed facts. Returns fired count; adds steps.
  int64_t Rederive(const std::vector<RemovedRef>& removed,
                   StreamStats* stats);

  // Full re-chase of the current base (fallback + Initialize share it).
  Status FullChase(StreamStats* stats);

  const Schema* schema_;
  std::vector<Tgd> tgds_;
  std::vector<Egd> egds_;
  SymbolTable* symbols_;
  ChaseOptions options_;
  std::shared_ptr<const plan::CompiledSetting> compiled_;

  bool initialized_ = false;
  Instance base_;
  Instance instance_;
  InstanceWatermark mark_;
  ChaseJournal journal_;
  int64_t total_steps_ = 0;

  // Support index state: valid for journal entries [0, indexed_entries_)
  // under resolver version index_version_; lazily rebuilt when a batch
  // rolled back, the resolver moved, or the journal was cleared.
  std::vector<SupportMap> support_;
  // entry_heads_[id]: the head facts of journal entry `id`, filled by
  // IndexEntry (empty for egd entries). Entries dead at index time keep
  // stale refs; they are never read (the cascade only follows live
  // entries, and a revive forces a full rebuild via index_valid_).
  std::vector<std::vector<HeadRef>> entry_heads_;
  size_t indexed_entries_ = 0;
  uint64_t index_version_ = 0;
  bool index_valid_ = false;
};

}  // namespace pdx

#endif  // PDX_CHASE_STREAM_H_
