#include "chase/stream.h"

#include <algorithm>
#include <optional>
#include <unordered_set>
#include <utility>

#include "base/logging.h"
#include "chase/trigger_ledger.h"
#include "hom/matcher.h"
#include "obs/trace.h"
#include "plan/compiler.h"
#include "plan/ir.h"
#include "plan/plan_cache.h"

namespace pdx {

namespace {

Status OutcomeToStatus(const ChaseResult& result) {
  if (result.outcome == ChaseOutcome::kFailed) {
    return FailedPreconditionError("chase failed: " + result.failure);
  }
  return ResourceExhaustedError("chase step budget exhausted");
}

}  // namespace

StreamingChase::StreamingChase(const Schema* schema, std::vector<Tgd> tgds,
                               std::vector<Egd> egds, SymbolTable* symbols,
                               ChaseOptions options)
    : schema_(schema),
      tgds_(std::move(tgds)),
      egds_(std::move(egds)),
      symbols_(symbols),
      options_(options),
      base_(schema),
      instance_(schema) {
  // The journal belongs to this object; a caller-supplied one would be
  // cleared by the fallback path behind the caller's back.
  options_.journal = nullptr;
  if (options_.compile_plans && !plan::ForceInterpreter()) {
    compiled_ = plan::PlanCache::Global().GetOrCompile(tgds_, egds_);
    // Pivot-bound rederive plans: one per (tgd, head atom), with that
    // atom's universal variables assumed bound (see stream.h).
    rederive_plans_.resize(tgds_.size());
    for (size_t d = 0; d < tgds_.size(); ++d) {
      const Tgd& tgd = tgds_[d];
      rederive_plans_[d].reserve(tgd.head.size());
      for (const Atom& atom : tgd.head) {
        std::vector<bool> bound(tgd.var_count, false);
        for (const Term& t : atom.terms) {
          if (!t.is_constant() && !tgd.existential[t.var()]) {
            bound[t.var()] = true;
          }
        }
        rederive_plans_[d].push_back(
            plan::CompileBody(tgd.body, tgd.var_count, bound));
      }
    }
  }
}

StreamingChase::~StreamingChase() = default;

Status StreamingChase::Initialize(const Instance& base) {
  if (options_.strategy != ChaseStrategy::kRestricted) {
    return InvalidArgumentError(
        "StreamingChase requires the restricted chase (resume_from and the "
        "firing journal are kRestricted contracts)");
  }
  initialized_ = false;
  index_valid_ = false;
  base_ = base;
  journal_.Clear();
  ChaseOptions opts = options_;
  opts.resume_from = nullptr;
  opts.journal = &journal_;
  ChaseResult result = Chase(base_, tgds_, egds_, symbols_, opts);
  if (result.outcome != ChaseOutcome::kSuccess) {
    journal_.Clear();
    return OutcomeToStatus(result);
  }
  instance_ = std::move(result.instance);
  mark_ = instance_.TakeWatermark();
  total_steps_ += result.steps;
  initialized_ = true;
  return Status::Ok();
}

Tuple StreamingChase::ResolveTupleHere(const Value* values, size_t n) const {
  Tuple out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(instance_.ResolveValue(values[i]));
  }
  return out;
}

void StreamingChase::EntryFacts(const std::vector<Atom>& atoms,
                                const Value* row,
                                std::vector<Fact>* out) const {
  out->clear();
  for (const Atom& atom : atoms) {
    Tuple tuple;
    tuple.reserve(atom.terms.size());
    for (const Term& t : atom.terms) {
      tuple.push_back(instance_.ResolveValue(
          t.is_constant() ? t.constant() : row[t.var()]));
    }
    Fact fact{atom.relation, std::move(tuple)};
    // Dependencies have a handful of atoms: linear dedup beats a set.
    if (std::find(out->begin(), out->end(), fact) == out->end()) {
      out->push_back(std::move(fact));
    }
  }
}

void StreamingChase::BodyFactsOf(const ChaseJournal::Entry& e,
                                 std::vector<Fact>* out) const {
  const std::vector<Atom>& atoms =
      e.egd ? egds_[e.dep].body : tgds_[e.dep].body;
  EntryFacts(atoms, journal_.row(e), out);
}

void StreamingChase::HeadFactsOf(const ChaseJournal::Entry& e,
                                 std::vector<Fact>* out) const {
  PDX_DCHECK(!e.egd);
  EntryFacts(tgds_[e.dep].head, journal_.row(e), out);
}

void StreamingChase::IndexEntry(uint32_t id, std::vector<Fact>* scratch) {
  const ChaseJournal::Entry& e = journal_.entry(id);
  if (!e.alive) return;
  BodyFactsOf(e, scratch);
  for (const Fact& f : *scratch) {
    support_[f.relation][f.tuple].consumers.push_back(id);
  }
  if (!e.egd) {
    HeadFactsOf(e, scratch);
    std::vector<HeadRef>& heads = entry_heads_[id];
    heads.clear();
    heads.reserve(scratch->size());
    for (const Fact& f : *scratch) {
      auto [it, inserted] = support_[f.relation].try_emplace(f.tuple);
      (void)inserted;
      ++it->second.producers;
      heads.push_back(HeadRef{f.relation, &*it});
    }
  }
}

void StreamingChase::EnsureSupportIndex() {
  const uint64_t version = instance_.resolver().version();
  if (!index_valid_ || version != index_version_) {
    // Full rebuild: merges re-key resolved facts (and a rollback leaves
    // counters mid-cascade), so incremental repair is not sound. Linear in
    // base + journal — amortized across every batch that keeps the
    // resolver still.
    support_.assign(static_cast<size_t>(schema_->relation_count()),
                    SupportMap());
    for (RelationId r = 0; r < schema_->relation_count(); ++r) {
      const TupleList list = base_.tuples(r);
      for (size_t i = 0; i < list.size(); ++i) {
        support_[r][ResolveTupleHere(list[i].data(),
                                     static_cast<size_t>(list.arity()))]
            .in_base = true;
      }
    }
    indexed_entries_ = 0;
    index_valid_ = true;
    index_version_ = version;
  }
  entry_heads_.resize(journal_.size());
  std::vector<Fact> scratch;
  for (size_t i = indexed_entries_; i < journal_.size(); ++i) {
    IndexEntry(static_cast<uint32_t>(i), &scratch);
  }
  indexed_entries_ = journal_.size();
}

int64_t StreamingChase::Rederive(const std::vector<RemovedRef>& removed,
                                 StreamStats* stats) {
  // Collect, across every removed fact, the tgd triggers whose body still
  // matches but whose head lost its witness: pivot the removed fact
  // through each head atom (universal positions only — an existential
  // witness slot constrains nothing) and enumerate the body under the
  // pivot's partial binding.
  std::vector<std::pair<size_t, Binding>> violated;
  std::unordered_set<uint64_t> seen;
  for (const RemovedRef& r : removed) {
    const RelationId removed_rel = r.first;
    const Tuple& removed_tuple = r.second->first;
    for (size_t d = 0; d < tgds_.size(); ++d) {
      const Tgd& tgd = tgds_[d];
      const plan::TgdPlan* plan =
          compiled_ != nullptr ? &compiled_->tgds[d] : nullptr;
      for (size_t h = 0; h < tgd.head.size(); ++h) {
        const Atom& atom = tgd.head[h];
        if (atom.relation != removed_rel) continue;
        Binding partial = Binding::Empty(tgd.var_count);
        bool unifies = true;
        for (size_t i = 0; i < atom.terms.size() && unifies; ++i) {
          const Term& t = atom.terms[i];
          if (t.is_constant()) {
            unifies = instance_.ResolveValue(t.constant()) == removed_tuple[i];
          } else if (tgd.existential[t.var()]) {
            continue;
          } else if (partial.bound[t.var()]) {
            unifies = partial.values[t.var()] == removed_tuple[i];
          } else {
            partial.Bind(t.var(), removed_tuple[i]);
          }
        }
        if (!unifies) continue;
        const auto collect = [&](const Binding& m) {
          const bool satisfied =
              plan != nullptr ? HasMatchPlanned(plan->head, instance_, m)
                              : HasMatch(tgd.head, tgd.var_count, instance_, m);
          if (!satisfied &&
              seen.insert(TriggerFingerprintRow(d, m.values.data(),
                                                m.values.size(),
                                                tgd.existential))
                  .second) {
            violated.emplace_back(d, m);
          }
          return true;
        };
        if (plan != nullptr) {
          EnumerateMatchesPlanned(rederive_plans_[d][h], instance_, partial,
                                  collect);
        } else {
          EnumerateMatches(tgd.body, tgd.var_count, instance_, partial,
                           collect);
        }
      }
    }
  }
  // Fire with a physical re-check: an earlier firing of this pass may have
  // restored the witness another trigger was missing.
  int64_t fired = 0;
  for (const auto& [d, trigger] : violated) {
    const Tgd& tgd = tgds_[d];
    const plan::TgdPlan* plan =
        compiled_ != nullptr ? &compiled_->tgds[d] : nullptr;
    const bool satisfied =
        plan != nullptr ? HasMatchPlanned(plan->head, instance_, trigger)
                        : HasMatch(tgd.head, tgd.var_count, instance_, trigger);
    if (satisfied) continue;
    Binding extended = trigger;
    for (VariableId v = 0; v < tgd.var_count; ++v) {
      if (tgd.existential[v] && !extended.bound[v]) {
        extended.Bind(v, symbols_->FreshNull());
      }
    }
    journal_.RecordTgd(d, extended.values.data(), extended.values.size(),
                       tgd.existential);
    for (const Atom& atom : tgd.head) {
      Tuple tuple;
      tuple.reserve(atom.terms.size());
      for (const Term& t : atom.terms) {
        tuple.push_back(t.is_constant() ? t.constant()
                                        : extended.values[t.var()]);
      }
      instance_.AddFact(atom.relation, std::move(tuple));
    }
    ++fired;
  }
  stats->rederived += fired;
  stats->steps += fired;
  return fired;
}

Status StreamingChase::FullChase(StreamStats* stats) {
  ChaseJournal fresh;
  ChaseOptions opts = options_;
  opts.resume_from = nullptr;
  opts.journal = &fresh;
  ChaseResult result = Chase(base_, tgds_, egds_, symbols_, opts);
  if (result.outcome != ChaseOutcome::kSuccess) {
    return OutcomeToStatus(result);
  }
  instance_ = std::move(result.instance);
  mark_ = instance_.TakeWatermark();
  journal_.Swap(fresh);
  stats->steps += result.steps;
  index_valid_ = false;
  return Status::Ok();
}

StatusOr<StreamStats> StreamingChase::ResumeWithDeltas(
    const std::vector<Fact>& adds, const std::vector<Fact>& deletes) {
  if (!initialized_) {
    return FailedPreconditionError("StreamingChase not initialized");
  }
  for (const std::vector<Fact>* batch : {&adds, &deletes}) {
    for (const Fact& f : *batch) {
      if (f.relation < 0 || f.relation >= schema_->relation_count()) {
        return InvalidArgumentError("delta fact names an unknown relation");
      }
      if (f.tuple.size() != static_cast<size_t>(schema_->arity(f.relation))) {
        return InvalidArgumentError("delta fact arity mismatch");
      }
    }
  }
  obs::Span span(obs::Tracer::Global(), "stream.resume");
  span.AttrInt("adds", static_cast<int64_t>(adds.size()))
      .AttrInt("deletes", static_cast<int64_t>(deletes.size()));

  StreamStats stats;
  EnsureSupportIndex();

  // Rollback state. With egds a failed batch may have merged values
  // irreversibly, so the instances are snapshotted (COW copies are free
  // to take, but every store the batch then touches pays one deep
  // unshare — acceptable on the egd path, which can fall back to a full
  // re-chase anyway). Tgd-only settings skip the snapshots: no merges
  // can happen, the only failure is budget exhaustion, and everything a
  // batch does to the instances is additions at the tails plus removals
  // we already record — an undo log restores the exact fact set without
  // ever unsharing a store. The journal undoes itself entry-wise either
  // way (TruncateTo + Revive).
  const bool undoable = egds_.empty();
  std::optional<Instance> base0, instance0;
  if (!undoable) {
    base0 = base_;
    instance0 = instance_;
  }
  InstanceWatermark mark0 = mark_;
  const size_t journal0 = journal_.size();
  std::vector<size_t> killed;
  std::vector<RemovedRef> worklist;  // every fact removed from instance_
  std::vector<Fact> base_removed_log, base_added_log;
  std::vector<size_t> rows0;  // pre-batch instance_ row counts
  if (undoable) {
    rows0.resize(static_cast<size_t>(schema_->relation_count()));
    for (size_t r = 0; r < rows0.size(); ++r) {
      rows0[r] = instance_.tuples(static_cast<RelationId>(r)).size();
    }
  }
  const auto rollback = [&] {
    journal_.TruncateTo(journal0);
    for (size_t id : killed) journal_.Revive(id);
    if (!undoable) {
      base_ = std::move(*base0);
      instance_ = std::move(*instance0);
    } else {
      // Additions all sit past the post-removal row counts, so popping
      // each relation's tail down to (pre-batch count - removals) drops
      // exactly the batch's additions (popping the last row is a clean
      // swap-with-self); re-adding the logged removals then restores the
      // pre-batch fact set. Row order differs from the original, which
      // only dirties watermarks — the next batch re-takes them anyway.
      std::vector<size_t> removed(rows0.size(), 0);
      for (const RemovedRef& r : worklist) {
        ++removed[static_cast<size_t>(r.first)];
      }
      for (size_t r = 0; r < rows0.size(); ++r) {
        const RelationId rel = static_cast<RelationId>(r);
        const size_t floor = rows0[r] - removed[r];
        while (instance_.tuples(rel).size() > floor) {
          const TupleList list = instance_.tuples(rel);
          instance_.RemoveFact(rel, list[list.size() - 1].ToTuple());
        }
      }
      for (const RemovedRef& r : worklist) {
        instance_.AddFact(r.first, r.second->first);
      }
      for (const Fact& f : base_added_log) base_.RemoveFact(f);
      for (const Fact& f : base_removed_log) base_.AddFact(f.relation, f.tuple);
    }
    mark_ = mark0;
    index_valid_ = false;
  };

  // --- 1. Retract ------------------------------------------------------
  // Deletes are identified under the chase resolver: the caller names the
  // fact as admitted, but merges may since have folded its values.
  std::unordered_map<RelationId, std::unordered_set<Tuple, TupleHash>> wanted;
  for (const Fact& f : deletes) {
    wanted[f.relation].insert(ResolveTupleHere(f.tuple.data(),
                                               f.tuple.size()));
  }
  const bool trivial_resolver = instance_.resolver().trivial();
  for (auto& [relation, keys] : wanted) {
    std::unordered_set<Tuple, TupleHash> gone;
    if (trivial_resolver) {
      // No merge has ever happened, so stored raw tuples equal their
      // resolution and the deleted keys address base facts directly — no
      // relation scan. (Deletes of absent facts fall out as !removed.)
      for (const Tuple& key : keys) {
        if (base_.RemoveFact(relation, key)) {
          ++stats.base_removed;
          gone.insert(key);
          if (undoable) base_removed_log.push_back(Fact{relation, key});
        }
      }
    } else {
      // Base tuples may hold merged (stale) raw values: collect the raw
      // tuples resolving to a deleted key first, then remove — base_'s own
      // resolver is trivial, so RemoveFact needs the raw spelling.
      std::vector<std::pair<Tuple, const Tuple*>> doomed;
      const TupleList list = base_.tuples(relation);
      for (size_t i = 0; i < list.size(); ++i) {
        Tuple resolved = ResolveTupleHere(list[i].data(),
                                          static_cast<size_t>(list.arity()));
        auto it = keys.find(resolved);
        if (it != keys.end()) {
          doomed.emplace_back(list[i].ToTuple(), &*it);
        }
      }
      for (auto& [raw, key] : doomed) {
        if (base_.RemoveFact(relation, raw)) {
          ++stats.base_removed;
          if (undoable) base_removed_log.push_back(Fact{relation, raw});
        }
        gone.insert(*key);
      }
    }
    for (const Tuple& key : gone) {
      auto node = support_[relation].find(key);
      if (node == support_[relation].end()) continue;
      node->second.in_base = false;
      if (node->second.producers == 0 && instance_.RemoveFact(relation, key)) {
        worklist.push_back(RemovedRef{relation, &*node});
      }
    }
  }

  // Cascade: a firing whose body lost a fact dies; each head fact of a
  // dead firing loses a producer; a fact with no producers left and no
  // base membership is removed and propagates in turn.
  bool egd_died = false;
  for (size_t qi = 0; qi < worklist.size(); ++qi) {
    // Copy out: push_back below may reallocate the worklist. The support
    // maps themselves are never inserted into or erased from during the
    // cascade (IndexEntry never runs here), so node and head pointers
    // stay valid throughout.
    const auto [relation, node] = worklist[qi];
    (void)relation;
    ++stats.retracted;
    for (uint32_t id : node->second.consumers) {
      const ChaseJournal::Entry& entry = journal_.entry(id);
      if (!entry.alive) continue;
      journal_.Kill(id);
      killed.push_back(id);
      ++stats.dead_triggers;
      if (entry.egd) {
        // A merge lost its justification. Resolve-on-write folded the
        // winner into stored tuples long ago — un-merging is impossible —
        // so the whole resolver is invalidated: full re-chase below.
        egd_died = true;
        continue;
      }
      for (const HeadRef& head : entry_heads_[id]) {
        SupportNode& hn = head.node->second;
        if (--hn.producers == 0 && !hn.in_base &&
            instance_.RemoveFact(head.relation, head.node->first)) {
          worklist.push_back(RemovedRef{head.relation, head.node});
        }
      }
    }
  }

  // --- Fallback: dead egd => full re-chase of the net base -------------
  if (egd_died) {
    span.AttrBool("fell_back", true);
    for (const Fact& f : adds) base_.AddFact(f.relation, f.tuple);
    Status status = FullChase(&stats);
    if (!status.ok()) {
      rollback();
      return status;
    }
    stats.fell_back = true;
    total_steps_ += stats.steps;
    return stats;
  }

  // --- 2. Re-derive, 3. Resume -----------------------------------------
  // Watermark before re-derivation and adds: RemoveFact counts as a
  // rewrite (tuple indexes shifted), so a watermark taken earlier would
  // flag whole relations dirty; taken here, the resumed delta is exactly
  // the re-derived + added facts.
  const InstanceWatermark resume_mark = instance_.TakeWatermark();
  Rederive(worklist, &stats);
  for (const Fact& f : adds) {
    if (base_.AddFact(f.relation, f.tuple) && undoable) {
      base_added_log.push_back(f);
    }
    if (!instance_.Contains(f)) instance_.AddFact(f.relation, f.tuple);
  }

  const uint64_t version_before = instance_.resolver().version();
  ChaseOptions opts = options_;
  opts.resume_from = &resume_mark;
  opts.journal = &journal_;
  // Moved in, not copied: retraction already unshared every touched COW
  // store (or never shared them, on the undo-log path), so the resumed
  // chase extends the stores in place instead of re-materializing every
  // relation it touches.
  ChaseResult result =
      Chase(std::move(instance_), tgds_, egds_, symbols_, opts);
  if (result.outcome != ChaseOutcome::kSuccess) {
    // The chase consumed instance_ by move; the undo path reclaims its
    // final state (additions still at the tails) and unwinds it.
    if (undoable) instance_ = std::move(result.instance);
    rollback();
    return OutcomeToStatus(result);
  }
  instance_ = std::move(result.instance);
  mark_ = instance_.TakeWatermark();
  stats.steps += result.steps;
  total_steps_ += stats.steps;

  if (instance_.resolver().version() != version_before) {
    // New merges re-keyed resolved facts: rebuild lazily next batch.
    index_valid_ = false;
  } else {
    // Keep the index live: admitted facts gain base membership now; the
    // batch's new journal entries extend it lazily (indexed_entries_).
    for (const Fact& f : adds) {
      support_[f.relation][ResolveTupleHere(f.tuple.data(), f.tuple.size())]
          .in_base = true;
    }
  }
  return stats;
}

}  // namespace pdx
