#ifndef PDX_CHASE_TRIGGER_LEDGER_H_
#define PDX_CHASE_TRIGGER_LEDGER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "base/concurrent_set.h"
#include "hom/matcher.h"
#include "logic/dependency.h"

namespace pdx {

// Fingerprint of a fired trigger: dependency index plus the values assigned
// to the universally quantified body variables. Used by the oblivious chase
// to fire every trigger exactly once, and by the chase journal to keep one
// live entry per firing across deletion/re-derivation cycles.
inline uint64_t TriggerFingerprint(size_t tgd_index, const Tgd& tgd,
                                   const Binding& binding) {
  uint64_t h = 0xcbf29ce484222325ull ^ (tgd_index * 0x9e3779b97f4a7c15ull);
  for (VariableId v = 0; v < tgd.var_count; ++v) {
    if (!binding.bound[v]) continue;
    uint64_t x = binding.values[v].packed();
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    h = (h ^ x) * 0x100000001b3ull;
  }
  return h;
}

// Raw-row variant: fingerprints `row[0, n)` at the positions where `skip`
// is false (the universal variables — existential slots hold fresh nulls
// that must not enter the fingerprint, or a re-derived firing could never
// re-admit). Produces the same hash as the Binding overload for a binding
// whose bound mask is the complement of `skip`.
inline uint64_t TriggerFingerprintRow(size_t dep_index, const Value* row,
                                      size_t n,
                                      const std::vector<bool>& skip) {
  uint64_t h = 0xcbf29ce484222325ull ^ (dep_index * 0x9e3779b97f4a7c15ull);
  for (size_t v = 0; v < n; ++v) {
    if (v < skip.size() && skip[v]) continue;
    uint64_t x = row[v].packed();
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    h = (h ^ x) * 0x100000001b3ull;
  }
  return h;
}

// The once-per-trigger ledger, scoped by value generation: every
// fingerprint is additionally indexed under the null roots its binding
// used. When an egd merge absorbs a class, its roots are *retired* —
// bindings over them can never be produced again (the matcher now resolves
// those values to the winning root) — so every fingerprint of that
// generation is dropped wholesale. Long egd-heavy chases therefore hold
// only the fingerprints valid under the current resolution instead of the
// full firing history. (Triggers over the merged values refire with their
// post-merge binding, exactly as they did when Substitute rewrote the
// values out of existence.)
//
// Deletion propagation added a second retirement path: Retire(fp) drops a
// single fingerprint when the firing it names dies (its body facts were
// retracted), making the trigger re-admittable if the same body match ever
// re-forms — delete → re-insert fires exactly once more, not zero times
// and not twice (stressed in trigger_ledger_test).
//
// The fingerprint set is a sharded concurrent set, so admission can run
// from pool workers during a speculative collect phase (Admit); the
// by-root generation index stays sequential — it is only written from the
// apply loop (RecordRoots / Insert) and read between rounds (RetireRoots).
class TriggerLedger {
 public:
  // Claims the fingerprint; true iff this caller won it (the trigger is
  // new and must fire exactly once). Safe from any thread.
  bool Admit(uint64_t fp) { return fired_.Insert(fp); }

  // Indexes an admitted fingerprint under the null roots of its binding so
  // RetireRoots can drop the whole generation. Sequential (apply phase).
  void RecordRoots(uint64_t fp, const Tgd& tgd, const Binding& binding) {
    for (VariableId v = 0; v < tgd.var_count; ++v) {
      if (binding.bound[v] && binding.values[v].is_null()) {
        by_root_[binding.values[v].packed()].push_back(fp);
      }
    }
  }

  // Sequential admission + indexing (the barrier-mode fire loop). Returns
  // true if the trigger is new and must fire.
  bool Insert(uint64_t fp, const Tgd& tgd, const Binding& binding) {
    if (!Admit(fp)) return false;
    RecordRoots(fp, tgd, binding);
    return true;
  }

  // True if the trigger already fired. Safe for concurrent worker-side
  // filtering during the collect phase.
  bool Contains(uint64_t fp) const { return fired_.Contains(fp); }

  // Drops one fingerprint: the firing it names died (deletion propagation
  // killed its body), so an identical future trigger must be re-admitted.
  // Returns true if the fingerprint was present. Stale by_root_ references
  // to a retired fingerprint are harmless: RetireRoots erases from the
  // same set, and double-erase is a no-op.
  bool Retire(uint64_t fp) { return fired_.Erase(fp); }

  // Drops every fingerprint whose binding referenced a retired root.
  void RetireRoots(const std::vector<Value>& retired) {
    for (const Value& v : retired) {
      auto it = by_root_.find(v.packed());
      if (it == by_root_.end()) continue;
      for (uint64_t fp : it->second) fired_.Erase(fp);
      by_root_.erase(it);
    }
  }

  size_t size() const { return fired_.size(); }

 private:
  ConcurrentFingerprintSet fired_;
  std::unordered_map<uint64_t, std::vector<uint64_t>> by_root_;
};

}  // namespace pdx

#endif  // PDX_CHASE_TRIGGER_LEDGER_H_
