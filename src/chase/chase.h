#ifndef PDX_CHASE_CHASE_H_
#define PDX_CHASE_CHASE_H_

#include <cstdint>
#include <unordered_map>
#include <string>
#include <vector>

#include "logic/dependency.h"
#include "relational/instance.h"
#include "relational/value.h"

namespace pdx {

// How a chase run ended.
enum class ChaseOutcome {
  kSuccess,           // fixpoint reached, all dependencies satisfied
  kFailed,            // an egd equated two distinct constants
  kBudgetExhausted,   // step budget hit (e.g. non-terminating chase)
};

// Which chase variant to run.
enum class ChaseStrategy {
  // The restricted (standard) chase of [9], delta-driven: a tgd fires for
  // a body homomorphism only if no head extension already exists, and the
  // fixpoint is computed over a worklist of dirty (relation, watermark)
  // pairs — each round only evaluates triggers whose body touches a fact
  // added since the previous round or dirtied by an egd merge. Egd steps
  // are union-find merges in the instance's value layer
  // (Instance::MergeValues): O(α) unions that mark only the dirty
  // equivalence classes, never rewriting tuples or invalidating
  // watermarks. Changes performance only, never the chase result
  // (cross-validated in chase_strategies_test and cross_validation_test,
  // orders of magnitude faster at scale per bench_chase), so it is the
  // default.
  kRestricted,
  // The restricted chase re-scanning the whole instance to find each
  // trigger and applying egds via Substitute's eager relation rebuild.
  // Kept as the cross-validation baseline and for A/B benches against the
  // union-find value layer.
  kRestrictedNaive,
  // The oblivious chase, delta-driven: every body homomorphism fires
  // exactly once (tracked by a trigger-fingerprint set), whether or not a
  // witness already exists. Produces larger (but still universal) results;
  // terminates on weakly acyclic sets.
  kOblivious,
};

// How the tgd phase of one round is scheduled across pool workers
// (kRestricted/kOblivious with num_threads > 1; sequential runs ignore it).
enum class ChaseSchedule {
  // Per-dependency barrier: collect-parallel, apply before the next
  // dependency's collect starts. Fresh nulls are invented in the
  // deterministic sequential apply order, so results are *bit-identical*
  // across thread counts. The pooled apply still uses the overlay decide
  // + relation-sharded insert fast path (DESIGN.md §4d) — decisions and
  // insert order are sequential, only the store writes fan out.
  kBarrier,
  // PR 5's speculative mode: workers instantiate heads during collect
  // (private null ranges), and collection of footprint-compatible
  // dependencies overlaps the current apply via the topological
  // scheduler. Results equal barrier's up to bijective null renaming.
  kSpeculative,
  // Footprint-DAG scheduling: the speculative collect machinery plus the
  // sharded apply discipline — overlay decide for exact heads, physical
  // re-check otherwise, per-relation parallel insert when no collect is
  // in flight. The most parallel schedule; same canonical-equivalence
  // contract as kSpeculative.
  kDag,
};

// Printable name ("barrier"/"speculative"/"dag"), used by span attributes,
// bench output and pdxcli --schedule.
const char* ScheduleName(ChaseSchedule schedule);

class ChaseJournal;

struct ChaseOptions {
  // Upper bound on the number of chase steps before giving up. Weakly
  // acyclic inputs terminate well under this for the sizes we run; the
  // budget exists so that non-weakly-acyclic inputs fail loudly instead of
  // looping.
  int64_t max_steps = 1'000'000;

  ChaseStrategy strategy = ChaseStrategy::kRestricted;

  // Worker threads for delta trigger enumeration (kRestricted/kOblivious):
  // 0 = hardware concurrency, 1 = today's fully sequential path. Any value
  // > 1 switches trigger collection to partitioned parallel enumeration
  // with a deterministic sequential apply phase, and the egd fixpoint to
  // batched collect-then-apply passes. Results are identical at every
  // setting — same outcome, steps, nulls_created and canonical fingerprint
  // (see DESIGN.md "Parallel execution model").
  int num_threads = 0;

  // Speculative parallel execution (kRestricted/kOblivious with
  // num_threads > 1; ignored otherwise). Workers instantiate tgd heads
  // during the collect phase, drawing fresh nulls from private
  // SymbolTable ranges (one exact ReserveNullRange per delta partition),
  // so the sequential apply phase only
  // re-checks and inserts; oblivious ledger admission moves into the
  // workers (ConcurrentFingerprintSet); and collection of the next
  // compatible dependency overlaps the current apply phase
  // (cross-dependency pipelining). Outcome, steps, nulls_created, rounds
  // and every resolved-view property stay invariant, but the *identities*
  // of fresh nulls become schedule-dependent: results are equal to the
  // barrier mode's only up to a bijective null renaming (checked via
  // CanonicalizeNulls; see DESIGN.md "Speculative head instantiation").
  // Off by default so the default configuration keeps bit-identical
  // fingerprints across thread counts.
  //
  // Kept for source compatibility: `speculative = true` is shorthand for
  // `schedule = ChaseSchedule::kSpeculative`. ResolveSchedule() defines
  // the precedence.
  bool speculative = false;

  // The tgd-phase schedule (see ChaseSchedule). kBarrier unless
  // `speculative` asks for kSpeculative; the PDX_FORCE_SCHEDULE
  // environment variable ("barrier" | "speculative" | "dag") overrides
  // both process-wide, the way PDX_FORCE_INTERPRETER pins the
  // interpreter — tools/check.sh's TSan lanes use it to pin the DAG
  // path. See ResolveSchedule().
  ChaseSchedule schedule = ChaseSchedule::kBarrier;

  // Compile the setting into match/apply plans (plan/ir.h) and execute
  // trigger enumeration, head filters and the egd fixpoint through them
  // (kRestricted/kOblivious; kRestrictedNaive always interprets — it is
  // the baseline). Plans are fetched from the process-wide PlanCache, so
  // repeated chases of one setting compile it exactly once. The chase
  // result's resolved view and canonical fingerprint are invariant;
  // enumeration order (hence raw tuple order and fresh-null identities)
  // may differ from the interpreter's. The PDX_FORCE_INTERPRETER
  // environment variable overrides this to false process-wide
  // (plan/compiler.h, ForceInterpreter).
  bool compile_plans = true;

  // Incremental resume (kRestricted only): when non-null, the first
  // round's delta covers only the facts added to the start instance after
  // this watermark, instead of the whole instance. Correct exactly when
  // the pre-watermark state already satisfies every dependency being
  // chased (it was itself chased to fixpoint and only AddFact happened
  // since — the pdxd generation store's single-writer discipline). The
  // other strategies ignore it and fall back to the full first scan,
  // which is always correct, just not amortized. The pointee must outlive
  // the call.
  const InstanceWatermark* resume_from = nullptr;

  // Auto-compaction of merge-heavy raw stores (kRestricted only): when the
  // fraction of raw tuples that are duplicates under resolution exceeds
  // this ratio — and the raw store holds at least compact_min_facts tuples
  // — the chase swaps in CompactResolved(keep_resolver=true) and restarts
  // its watermark (the extra rescan round fires nothing: satisfied
  // triggers stay satisfied). Reclaims memory on long egd-heavy runs
  // without changing any result. Set the ratio outside (0, 1) to disable.
  double compact_duplicate_ratio = 0.5;
  size_t compact_min_facts = 4096;

  // Firing journal for deletion propagation (kRestricted only; see
  // chase/journal.h and chase/stream.h). When non-null, every applied tgd
  // trigger and every successful egd merge is recorded — with its full
  // extended binding — from the sequential apply phases, so a later ±Δ
  // batch (StreamingChase::ResumeWithDeltas) can count surviving
  // justifications per derived fact and propagate retractions. The other
  // strategies ignore it: the naive engine has no delta discipline to
  // resume, and the oblivious ledger is a per-run local (an oblivious run
  // cannot be resumed at all). Null keeps the hot path entirely free of
  // journaling. The pointee must outlive the call.
  ChaseJournal* journal = nullptr;
};

struct ChaseResult {
  ChaseOutcome outcome = ChaseOutcome::kSuccess;
  Instance instance;       // the chased instance (final state even on failure)
  int64_t steps = 0;       // number of chase steps applied
  int64_t nulls_created = 0;
  int64_t compactions = 0; // CompactResolved swaps (see ChaseOptions)
  std::string failure;     // human-readable description when kFailed
  // Egd merge log of the Substitute-based engine (kRestrictedNaive): each
  // substituted null, keyed by Value::packed(), maps to the value it was
  // replaced by (which may itself have been merged later; Resolve()
  // follows the chain). The union-find engines leave this empty — their
  // merges live in instance.resolver(), which Resolve() also consults.
  std::unordered_map<uint64_t, Value> merges;

  explicit ChaseResult(Instance i) : instance(std::move(i)) {}

  // The final value a given input value denotes in `instance`: resolves
  // through the instance's value layer, then follows the Substitute merge
  // chain. Identity for values never merged.
  Value Resolve(Value v) const {
    v = instance.ResolveValue(v);
    auto it = merges.find(v.packed());
    while (it != merges.end()) {
      v = it->second;
      it = merges.find(v.packed());
    }
    return v;
  }
};

// The schedule a run will actually use: the PDX_FORCE_SCHEDULE
// environment variable ("barrier" | "speculative" | "dag"; read once per
// process, unknown values ignored) wins, then an explicit
// options.schedule != kBarrier, then the legacy `speculative` bool, else
// kBarrier.
ChaseSchedule ResolveSchedule(const ChaseOptions& options);

// Runs the restricted (standard) chase of `start` with the given tgds and
// egds, in the sense of [9]: a tgd fires for a body homomorphism only if no
// head extension already exists; fresh labeled nulls (from `symbols`)
// witness existential variables; an egd trigger merges a null into the
// other value or fails on a constant/constant clash.
//
// The chase is fair: it loops over dependencies round-robin until a full
// pass finds no applicable trigger.
ChaseResult Chase(const Instance& start, const std::vector<Tgd>& tgds,
                  const std::vector<Egd>& egds, SymbolTable* symbols,
                  const ChaseOptions& options = ChaseOptions());

// Move-in overload: consumes `start`. The COW relation stores stay
// uniquely owned, so the chase mutates them in place instead of
// re-materializing every touched relation — the streaming resume path
// (chase/stream.h) hands its own instance back in every ±Δ batch and
// would otherwise pay a second O(instance) copy per batch.
ChaseResult Chase(Instance&& start, const std::vector<Tgd>& tgds,
                  const std::vector<Egd>& egds, SymbolTable* symbols,
                  const ChaseOptions& options = ChaseOptions());

// Convenience overload without egds.
ChaseResult Chase(const Instance& start, const std::vector<Tgd>& tgds,
                  SymbolTable* symbols,
                  const ChaseOptions& options = ChaseOptions());

// Outcome of a union-find egd fixpoint (see RunEgdsToFixpointDelta).
struct EgdFixpointOutcome {
  bool failed = false;             // constant/constant clash
  bool budget_exhausted = false;   // max_steps merges applied
  std::string failure;             // set when failed
  int64_t steps = 0;               // merges applied
  // Total dirty (relation, tuple) entries the merges reported: an upper
  // bound on the resolved duplicates the fixpoint can have created, used
  // by the chase's auto-compaction trigger.
  int64_t dirtied = 0;
  // Values whose resolution changed across all merges (the losing
  // classes): the oblivious chase retires trigger fingerprints indexed
  // under these roots.
  std::vector<Value> retired;
};

class ThreadPool;

namespace plan {
struct EgdPlan;
}  // namespace plan

// Applies `egds` to fixpoint over the delta of `instance` beyond `mark`
// using union-find merges (Instance::MergeValues). The first pass pivots
// on the facts added since `mark`; since any trigger newly violated by a
// merge must touch a tuple whose resolved content that merge changed,
// each subsequent pass pivots only on the tuples the previous pass
// dirtied, until no merge fires. All dirty tuple indexes are accumulated
// into `extras` (one vector per relation, appended, possibly with
// duplicates) so the caller's tgd round can re-examine exactly those
// tuples. `symbols` is only used to render the failure message and may be
// null. Shared by the delta chase engines, the solution-aware chase and
// the pde solvers' branch-local fixpoints.
//
// With a non-null `pool`, each pass switches from find-one-then-rescan to
// batched collect-then-apply: all violated triggers of a pass are
// enumerated up front (fanned across the pool's workers against the
// immutable pre-pass state) and their merges applied sequentially,
// skipping triggers an earlier merge already resolved. Triggers a merge
// newly enables are caught by the next pass's dirty frontier, so the
// fixpoint closure — and the number of successful merges, since every
// union lowers the class count by exactly one — is the same as the
// sequential path's; only the union order (hence null-root identity)
// may differ, which every resolved view is invariant under.
//
// With non-null `egd_plans` (compiled plans indexed parallel to `egds`),
// trigger enumeration executes through the dependency compiler's plans
// instead of the interpreter; the fixpoint closure is unchanged.
//
// With a non-null `journal`, every successful merge is recorded under the
// trigger binding that forced it (sequential apply side only — both
// collection disciplines apply merges on the calling thread), feeding
// deletion propagation's egd-death detection (chase/stream.h).
EgdFixpointOutcome RunEgdsToFixpointDelta(
    const std::vector<Egd>& egds, Instance* instance,
    const InstanceWatermark& mark, int64_t max_steps,
    const SymbolTable* symbols, std::vector<std::vector<int>>* extras,
    ThreadPool* pool = nullptr,
    const std::vector<plan::EgdPlan>* egd_plans = nullptr,
    ChaseJournal* journal = nullptr);

// True if `instance` satisfies the tgd / egd under standard first-order
// semantics (nulls behave as ordinary values).
bool SatisfiesTgd(const Instance& instance, const Tgd& tgd);
bool SatisfiesEgd(const Instance& instance, const Egd& egd);
bool SatisfiesDisjunctiveTgd(const Instance& instance,
                             const DisjunctiveTgd& tgd);

// True if all dependencies of `deps` are satisfied.
bool SatisfiesAll(const Instance& instance, const DependencySet& deps);

}  // namespace pdx

#endif  // PDX_CHASE_CHASE_H_
