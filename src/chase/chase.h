#ifndef PDX_CHASE_CHASE_H_
#define PDX_CHASE_CHASE_H_

#include <cstdint>
#include <unordered_map>
#include <string>
#include <vector>

#include "logic/dependency.h"
#include "relational/instance.h"
#include "relational/value.h"

namespace pdx {

// How a chase run ended.
enum class ChaseOutcome {
  kSuccess,           // fixpoint reached, all dependencies satisfied
  kFailed,            // an egd equated two distinct constants
  kBudgetExhausted,   // step budget hit (e.g. non-terminating chase)
};

// Which chase variant to run.
enum class ChaseStrategy {
  // The restricted (standard) chase of [9], delta-driven: a tgd fires for
  // a body homomorphism only if no head extension already exists, and the
  // fixpoint is computed over a worklist of dirty (relation, watermark)
  // pairs — each round only evaluates triggers whose body touches a fact
  // added (or a relation rewritten by an egd) since the previous round.
  // Changes performance only, never the chase result (cross-validated in
  // chase_strategies_test and orders of magnitude faster at scale per
  // bench_chase), so it is the default.
  kRestricted,
  // The restricted chase re-scanning the whole instance to find each
  // trigger. Kept as the cross-validation baseline and for A/B benches.
  kRestrictedNaive,
  // The oblivious chase, delta-driven: every body homomorphism fires
  // exactly once (tracked by a trigger-fingerprint set), whether or not a
  // witness already exists. Produces larger (but still universal) results;
  // terminates on weakly acyclic sets.
  kOblivious,
};

struct ChaseOptions {
  // Upper bound on the number of chase steps before giving up. Weakly
  // acyclic inputs terminate well under this for the sizes we run; the
  // budget exists so that non-weakly-acyclic inputs fail loudly instead of
  // looping.
  int64_t max_steps = 1'000'000;

  ChaseStrategy strategy = ChaseStrategy::kRestricted;
};

struct ChaseResult {
  ChaseOutcome outcome = ChaseOutcome::kSuccess;
  Instance instance;       // the chased instance (final state even on failure)
  int64_t steps = 0;       // number of chase steps applied
  int64_t nulls_created = 0;
  std::string failure;     // human-readable description when kFailed
  // Egd merge log: each substituted null, keyed by Value::packed(), maps
  // to the value it was replaced by (which may itself have been merged
  // later; Resolve() follows the chain).
  std::unordered_map<uint64_t, Value> merges;

  explicit ChaseResult(Instance i) : instance(std::move(i)) {}

  // Follows the merge chain: the final value a given input value denotes
  // in `instance`. Identity for values never substituted.
  Value Resolve(Value v) const {
    auto it = merges.find(v.packed());
    while (it != merges.end()) {
      v = it->second;
      it = merges.find(v.packed());
    }
    return v;
  }
};

// Runs the restricted (standard) chase of `start` with the given tgds and
// egds, in the sense of [9]: a tgd fires for a body homomorphism only if no
// head extension already exists; fresh labeled nulls (from `symbols`)
// witness existential variables; an egd trigger merges a null into the
// other value or fails on a constant/constant clash.
//
// The chase is fair: it loops over dependencies round-robin until a full
// pass finds no applicable trigger.
ChaseResult Chase(const Instance& start, const std::vector<Tgd>& tgds,
                  const std::vector<Egd>& egds, SymbolTable* symbols,
                  const ChaseOptions& options = ChaseOptions());

// Convenience overload without egds.
ChaseResult Chase(const Instance& start, const std::vector<Tgd>& tgds,
                  SymbolTable* symbols,
                  const ChaseOptions& options = ChaseOptions());

// True if `instance` satisfies the tgd / egd under standard first-order
// semantics (nulls behave as ordinary values).
bool SatisfiesTgd(const Instance& instance, const Tgd& tgd);
bool SatisfiesEgd(const Instance& instance, const Egd& egd);
bool SatisfiesDisjunctiveTgd(const Instance& instance,
                             const DisjunctiveTgd& tgd);

// True if all dependencies of `deps` are satisfied.
bool SatisfiesAll(const Instance& instance, const DependencySet& deps);

}  // namespace pdx

#endif  // PDX_CHASE_CHASE_H_
