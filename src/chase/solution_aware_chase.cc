#include "chase/solution_aware_chase.h"

#include "base/string_util.h"
#include "hom/matcher.h"

namespace pdx {

namespace {

// Finds a violated trigger h for `tgd` in `instance` together with an
// extension h' into `solution` witnessing the existential variables
// (guaranteed to exist since solution ⊇ instance satisfies the tgd).
// Returns true and fills `extended` with the full assignment.
bool FindSolutionAwareTrigger(const Instance& instance,
                              const Instance& solution, const Tgd& tgd,
                              Binding* extended) {
  return EnumerateMatches(
      tgd.body, tgd.var_count, instance, Binding::Empty(tgd.var_count),
      [&](const Binding& body_match) {
        if (HasMatch(tgd.head, tgd.var_count, instance, body_match)) {
          return true;  // satisfied trigger; keep searching
        }
        // Violated in `instance`; find the witness inside `solution`.
        bool witnessed = EnumerateMatches(
            tgd.head, tgd.var_count, solution, body_match,
            [&](const Binding& full) {
              *extended = full;
              return false;  // first witness suffices
            });
        PDX_CHECK(witnessed)
            << "solution-aware chase: the provided solution violates a tgd";
        return false;  // stop: trigger found and extended
      });
}

}  // namespace

ChaseResult SolutionAwareChase(const Instance& start,
                               const std::vector<Tgd>& tgds,
                               const std::vector<Egd>& egds,
                               const Instance& solution,
                               const ChaseOptions& options) {
  PDX_CHECK(start.IsSubsetOf(solution))
      << "solution-aware chase requires start ⊆ solution";
  ChaseResult result(start);
  Instance& instance = result.instance;
  while (true) {
    if (result.steps >= options.max_steps) {
      result.outcome = ChaseOutcome::kBudgetExhausted;
      return result;
    }
    bool applied = false;
    for (const Egd& egd : egds) {
      while (true) {
        Binding trigger = Binding::Empty(egd.var_count);
        bool violated = !EnumerateMatches(
            egd.body, egd.var_count, instance, Binding::Empty(egd.var_count),
            [&](const Binding& body_match) {
              if (body_match.values[egd.left_var] ==
                  body_match.values[egd.right_var]) {
                return true;
              }
              trigger = body_match;
              return false;
            });
        // EnumerateMatches returns true iff stopped early (violation found).
        violated = !violated;
        if (!violated) break;
        Value a = trigger.values[egd.left_var];
        Value b = trigger.values[egd.right_var];
        if (a.is_constant() && b.is_constant()) {
          result.outcome = ChaseOutcome::kFailed;
          result.failure = "egd equates distinct constants";
          ++result.steps;
          return result;
        }
        if (a.is_null()) {
          instance.Substitute(a, b);
          result.merges[a.packed()] = b;
        } else {
          instance.Substitute(b, a);
          result.merges[b.packed()] = a;
        }
        ++result.steps;
        applied = true;
        if (result.steps >= options.max_steps) {
          result.outcome = ChaseOutcome::kBudgetExhausted;
          return result;
        }
      }
    }
    for (const Tgd& tgd : tgds) {
      Binding extended = Binding::Empty(tgd.var_count);
      while (FindSolutionAwareTrigger(instance, solution, tgd, &extended)) {
        for (const Atom& atom : tgd.head) {
          Tuple tuple;
          tuple.reserve(atom.terms.size());
          for (const Term& t : atom.terms) {
            tuple.push_back(t.is_constant() ? t.constant()
                                            : extended.values[t.var()]);
          }
          instance.AddFact(atom.relation, std::move(tuple));
        }
        ++result.steps;
        applied = true;
        if (result.steps >= options.max_steps) {
          result.outcome = ChaseOutcome::kBudgetExhausted;
          return result;
        }
      }
    }
    if (!applied) {
      result.outcome = ChaseOutcome::kSuccess;
      return result;
    }
  }
}

}  // namespace pdx
