#include "chase/solution_aware_chase.h"

#include <memory>

#include "base/string_util.h"
#include "base/thread_pool.h"
#include "hom/matcher.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "plan/compiler.h"
#include "plan/ir.h"
#include "plan/plan_cache.h"

namespace pdx {

namespace {

// The chase-family metrics (shared names with chase.cc: the registry
// find-or-creates, so both files increment the same slots).
struct SaMetrics {
  obs::Counter runs, steps, rounds, tgd_matches, pipeline_overlaps;
  static SaMetrics& Get() {
    static SaMetrics* m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      auto* metrics = new SaMetrics();
      metrics->runs = reg.GetCounter("pdx_chase_runs_total");
      metrics->steps = reg.GetCounter("pdx_chase_steps_total");
      metrics->rounds = reg.GetCounter("pdx_chase_rounds_total");
      metrics->tgd_matches = reg.GetCounter("pdx_chase_tgd_matches_total");
      metrics->pipeline_overlaps =
          reg.GetCounter("pdx_chase_pipeline_overlaps_total");
      return metrics;
    }();
    return *m;
  }
};

// A violated trigger to fire: the body homomorphism found in the chased
// instance plus its extension into `solution` witnessing the existential
// variables.
struct SolutionAwareTrigger {
  Binding body;
  Binding extended;
};

// True if some body atom's relation has new facts in `delta`.
bool TouchesDelta(const std::vector<Atom>& body, const DeltaView& delta) {
  for (const Atom& atom : body) {
    if (delta.dirty(atom.relation)) return true;
  }
  return false;
}

// The per-match collection step: skip satisfied triggers, extend violated
// ones into `solution` (guaranteed possible since solution ⊇ instance
// satisfies the tgd). Pure reads of `instance` and `solution`, so workers
// may run it concurrently. With a non-null plan, the satisfaction probe
// and the witness search both execute the compiled head program (compiled
// with the universal variables pre-bound — exactly this call shape).
void CollectOneTrigger(const Instance& instance, const Instance& solution,
                       const Tgd& tgd, const plan::TgdPlan* plan,
                       const Binding& body_match,
                       std::vector<SolutionAwareTrigger>* out) {
  const bool satisfied =
      plan != nullptr
          ? HasMatchPlanned(plan->head, instance, body_match)
          : HasMatch(tgd.head, tgd.var_count, instance, body_match);
  if (satisfied) {
    return;  // satisfied trigger
  }
  SaMetrics::Get().tgd_matches.Inc();
  // Violated in `instance`; find the witness inside `solution`.
  const auto witness = [&](const Binding& full) {
    out->push_back({body_match, full});
    return false;  // first witness suffices
  };
  bool witnessed =
      plan != nullptr
          ? EnumerateMatchesPlanned(plan->head, solution, body_match, witness)
          : EnumerateMatches(tgd.head, tgd.var_count, solution, body_match,
                             witness);
  PDX_CHECK(witnessed)
      << "solution-aware chase: the provided solution violates a tgd";
}

// Collects the violated triggers for `tgd` whose body touches `delta`,
// each extended into `solution`. With a pool, the delta partitions are
// fanned across the workers and the per-partition buffers concatenated in
// partition order — the same trigger order the sequential enumeration
// produces.
void CollectSolutionAwareTriggers(const Instance& instance,
                                  const DeltaView& delta,
                                  const Instance& solution, const Tgd& tgd,
                                  const plan::TgdPlan* plan, ThreadPool* pool,
                                  std::vector<SolutionAwareTrigger>* out,
                                  uint64_t parent_span = 0) {
  if (pool == nullptr) {
    const auto collect = [&](const Binding& body_match) {
      CollectOneTrigger(instance, solution, tgd, plan, body_match, out);
      return true;  // keep collecting
    };
    if (plan != nullptr) {
      EnumerateMatchesDeltaPlanned(plan->body, instance, delta,
                                   Binding::Empty(tgd.var_count), collect);
    } else {
      EnumerateMatchesDelta(tgd.body, tgd.var_count, instance, delta,
                            Binding::Empty(tgd.var_count), collect);
    }
    return;
  }
  std::vector<DeltaPartition> parts = PartitionDeltaMatches(
      tgd.body, delta, static_cast<size_t>(pool->size()) * 4);
  if (parts.empty()) return;
  std::vector<std::vector<SolutionAwareTrigger>> buffers(parts.size());
  pool->ParallelFor(parts.size(), [&](size_t p) {
    obs::Span part_span(obs::Tracer::Global(), "chase.collect_part",
                        parent_span);
    part_span.AttrInt("partition", static_cast<int64_t>(p));
    const auto collect = [&](const Binding& body_match) {
      CollectOneTrigger(instance, solution, tgd, plan, body_match,
                        &buffers[p]);
      return true;
    };
    if (plan != nullptr) {
      EnumerateMatchesDeltaPartitionPlanned(plan->body, instance, delta,
                                            parts[p],
                                            Binding::Empty(tgd.var_count),
                                            collect);
    } else {
      EnumerateMatchesDeltaPartition(tgd.body, tgd.var_count, instance,
                                     delta, parts[p],
                                     Binding::Empty(tgd.var_count), collect);
    }
    part_span.AttrInt("collected", static_cast<int64_t>(buffers[p].size()));
  });
  for (std::vector<SolutionAwareTrigger>& buffer : buffers) {
    out->insert(out->end(), std::make_move_iterator(buffer.begin()),
                std::make_move_iterator(buffer.end()));
  }
}

// Relation footprints for cross-dependency pipelining (same rule as
// chase.cc): collecting a tgd reads its body and head relations of the
// chased instance (matches + the HasMatch filter; the witness search runs
// in the immutable `solution`), applying writes its head relations.
// Collection of B may overlap application of A iff A's writes are
// disjoint from B's reads. The solution-aware chase invents no nulls —
// witnesses come from the solution — so pipelining leaves the result
// bit-identical, not just canonically equal.
struct SaFootprint {
  std::vector<bool> reads;
  std::vector<bool> writes;
};

std::vector<SaFootprint> ComputeSaFootprints(const std::vector<Tgd>& tgds,
                                             int relation_count) {
  std::vector<SaFootprint> out(tgds.size());
  for (size_t d = 0; d < tgds.size(); ++d) {
    out[d].reads.assign(relation_count, false);
    out[d].writes.assign(relation_count, false);
    for (const Atom& atom : tgds[d].body) out[d].reads[atom.relation] = true;
    for (const Atom& atom : tgds[d].head) {
      out[d].reads[atom.relation] = true;
      out[d].writes[atom.relation] = true;
    }
  }
  return out;
}

bool SaPipelineCompatible(const SaFootprint& applying,
                          const SaFootprint& collecting) {
  for (size_t r = 0; r < applying.writes.size(); ++r) {
    if (applying.writes[r] && collecting.reads[r]) return false;
  }
  return true;
}

// An asynchronously startable collection of one tgd's triggers (the
// ParallelFor body of CollectSolutionAwareTriggers packaged with its
// buffers so it can outlive the call): Start() hands the partitions to
// the pool's workers while the caller applies the previous tgd's
// triggers, Join() waits and concatenates in partition order.
class SaCollectJob {
 public:
  SaCollectJob(const Instance* instance, const DeltaView* delta,
               const Instance* solution, const Tgd* tgd,
               const plan::TgdPlan* plan, ThreadPool* pool,
               uint64_t parent_span, bool pipelined)
      : instance_(instance),
        delta_(delta),
        solution_(solution),
        tgd_(tgd),
        plan_(plan),
        pool_(pool),
        parent_span_(parent_span),
        pipelined_(pipelined) {
    parts_ = PartitionDeltaMatches(tgd->body, *delta,
                                   static_cast<size_t>(pool->size()) * 4);
    buffers_.resize(parts_.size());
  }

  void Run() {
    pool_->ParallelFor(parts_.size(),
                       [this](size_t p) { RunPartition(p); });
  }

  void Start() {
    pool_->ParallelForAsync(parts_.size(),
                            [this](size_t p) { RunPartition(p); });
    started_async_ = true;
  }

  std::vector<SolutionAwareTrigger> Join() {
    if (started_async_) {
      pool_->Wait();
      started_async_ = false;
    }
    std::vector<SolutionAwareTrigger> out;
    for (std::vector<SolutionAwareTrigger>& buffer : buffers_) {
      out.insert(out.end(), std::make_move_iterator(buffer.begin()),
                 std::make_move_iterator(buffer.end()));
    }
    return out;
  }

 private:
  void RunPartition(size_t p) {
    obs::Span part_span(obs::Tracer::Global(), "chase.collect_part",
                        parent_span_);
    part_span.AttrInt("partition", static_cast<int64_t>(p))
        .AttrBool("pipelined", pipelined_);
    const auto collect = [&](const Binding& body_match) {
      CollectOneTrigger(*instance_, *solution_, *tgd_, plan_, body_match,
                        &buffers_[p]);
      return true;
    };
    if (plan_ != nullptr) {
      EnumerateMatchesDeltaPartitionPlanned(plan_->body, *instance_, *delta_,
                                            parts_[p],
                                            Binding::Empty(tgd_->var_count),
                                            collect);
    } else {
      EnumerateMatchesDeltaPartition(tgd_->body, tgd_->var_count, *instance_,
                                     *delta_, parts_[p],
                                     Binding::Empty(tgd_->var_count),
                                     collect);
    }
    part_span.AttrInt("collected", static_cast<int64_t>(buffers_[p].size()));
  }

  const Instance* instance_;
  const DeltaView* delta_;
  const Instance* solution_;
  const Tgd* tgd_;
  const plan::TgdPlan* plan_;  // nullptr => interpret
  ThreadPool* pool_;
  uint64_t parent_span_;
  bool pipelined_;
  bool started_async_ = false;
  std::vector<DeltaPartition> parts_;
  std::vector<std::vector<SolutionAwareTrigger>> buffers_;
};

ChaseResult SolutionAwareChaseImpl(const Instance& start,
                                   const std::vector<Tgd>& tgds,
                                   const std::vector<Egd>& egds,
                                   const Instance& solution,
                                   const ChaseOptions& options) {
  PDX_CHECK(start.IsSubsetOf(solution))
      << "solution-aware chase requires start ⊆ solution";
  ChaseResult result(start);
  Instance& instance = result.instance;
  // Same parallel discipline as the delta chase: collect in parallel,
  // apply sequentially. num_threads 1 (or a one-core box) keeps the fully
  // sequential path.
  int threads = options.num_threads <= 0 ? ThreadPool::HardwareConcurrency()
                                         : options.num_threads;
  std::unique_ptr<ThreadPool> owned_pool =
      threads > 1 ? std::make_unique<ThreadPool>(threads) : nullptr;
  ThreadPool* pool = owned_pool.get();
  // Compiled plans, shared with the plain chase via the process cache.
  std::shared_ptr<const plan::CompiledSetting> compiled;
  if (options.compile_plans && !plan::ForceInterpreter()) {
    compiled = plan::PlanCache::Global().GetOrCompile(tgds, egds);
  }
  const auto plan_for = [&](size_t d) -> const plan::TgdPlan* {
    return compiled != nullptr ? &compiled->tgds[d] : nullptr;
  };
  // ChaseOptions::speculative here enables only cross-dependency
  // pipelining (there is no null invention to speculate on).
  const bool pipelining = options.speculative && pool != nullptr;
  std::vector<SaFootprint> footprints;
  if (pipelining) {
    footprints = ComputeSaFootprints(tgds, instance.schema().relation_count());
  }
  // Delta-driven fixpoint: per round, only triggers touching facts added
  // (or tuples dirtied by an egd merge) since the previous round are
  // evaluated. Round one sees everything as new.
  InstanceWatermark mark = InstanceWatermark::Origin(instance);
  std::vector<std::vector<int>> extras;
  int64_t round = 0;
  while (true) {
    obs::Span round_span(obs::Tracer::Global(), "chase.round");
    round_span.AttrInt("round", round);
    SaMetrics::Get().rounds.Inc();
    ++round;
    if (result.steps >= options.max_steps) {
      result.outcome = ChaseOutcome::kBudgetExhausted;
      return result;
    }
    // Egds to fixpoint over the pending delta: union-find merges in the
    // instance's value layer, which leave tuple indexes (and thus the
    // round's watermark) intact and report the dirty tuples into `extras`.
    EgdFixpointOutcome egd_out = RunEgdsToFixpointDelta(
        egds, &instance, mark, options.max_steps - result.steps,
        /*symbols=*/nullptr, &extras, pool,
        compiled != nullptr ? &compiled->egds : nullptr);
    result.steps += egd_out.steps;
    if (egd_out.failed) {
      result.outcome = ChaseOutcome::kFailed;
      result.failure = egd_out.failure;
      return result;
    }
    if (egd_out.budget_exhausted) {
      result.outcome = ChaseOutcome::kBudgetExhausted;
      return result;
    }
    DeltaView delta(instance, mark, extras);
    if (!delta.any()) {
      result.outcome = ChaseOutcome::kSuccess;
      return result;
    }
    InstanceWatermark frontier = instance.TakeWatermark();
    std::vector<size_t> active;
    for (size_t d = 0; d < tgds.size(); ++d) {
      if (TouchesDelta(tgds[d].body, delta)) active.push_back(d);
    }
    std::unique_ptr<SaCollectJob> ahead;
    bool exhausted = false;
    for (size_t i = 0; i < active.size() && !exhausted; ++i) {
      size_t d = active[i];
      const Tgd& tgd = tgds[d];
      obs::Span tgd_span(obs::Tracer::Global(), "chase.tgd");
      tgd_span.AttrInt("dep", static_cast<int64_t>(d));
      std::vector<SolutionAwareTrigger> pending;
      if (ahead != nullptr) {
        // Collected while the previous tgd was applying.
        pending = ahead->Join();
        ahead.reset();
      } else if (pipelining) {
        SaCollectJob job(&instance, &delta, &solution, &tgd, plan_for(d),
                         pool, tgd_span.id(), /*pipelined=*/false);
        job.Run();
        pending = job.Join();
      } else {
        CollectSolutionAwareTriggers(instance, delta, solution, tgd,
                                     plan_for(d), pool, &pending,
                                     tgd_span.id());
      }
      tgd_span.AttrInt("collected", static_cast<int64_t>(pending.size()));
      // Overlap the next active tgd's collection with this apply phase
      // when the footprints permit.
      if (pipelining && i + 1 < active.size() &&
          SaPipelineCompatible(footprints[d], footprints[active[i + 1]])) {
        ahead = std::make_unique<SaCollectJob>(
            &instance, &delta, &solution, &tgds[active[i + 1]],
            plan_for(active[i + 1]), pool, tgd_span.id(),
            /*pipelined=*/true);
        ahead->Start();
        SaMetrics::Get().pipeline_overlaps.Inc();
      }
      const plan::TgdPlan* plan = plan_for(d);
      for (const SolutionAwareTrigger& trigger : pending) {
        // Re-check on the body match: an earlier application this round
        // may have satisfied it.
        const bool satisfied =
            plan != nullptr
                ? HasMatchPlanned(plan->head, instance, trigger.body)
                : HasMatch(tgd.head, tgd.var_count, instance, trigger.body);
        if (satisfied) {
          continue;
        }
        if (plan != nullptr) {
          // Head rows through the fused apply template; the witness
          // binding supplies every slot, existentials included.
          size_t cursor = 0;
          for (const plan::HeadAtom& atom : plan->apply.head_atoms) {
            Tuple tuple;
            tuple.reserve(atom.arity);
            for (int s = 0; s < atom.arity; ++s) {
              const plan::HeadSlot& slot = plan->apply.slots[cursor++];
              tuple.push_back(slot.is_const
                                  ? slot.key
                                  : trigger.extended.values[slot.var]);
            }
            instance.AddFact(atom.relation, std::move(tuple));
          }
        } else {
          for (const Atom& atom : tgd.head) {
            Tuple tuple;
            tuple.reserve(atom.terms.size());
            for (const Term& t : atom.terms) {
              tuple.push_back(t.is_constant()
                                  ? t.constant()
                                  : trigger.extended.values[t.var()]);
            }
            instance.AddFact(atom.relation, std::move(tuple));
          }
        }
        ++result.steps;
        if (result.steps >= options.max_steps) {
          result.outcome = ChaseOutcome::kBudgetExhausted;
          exhausted = true;
          break;
        }
      }
    }
    // Join any still-running collect-ahead before the round state goes
    // away (its results are dropped on budget exhaustion).
    if (ahead != nullptr) ahead->Join();
    if (exhausted) return result;
    mark = std::move(frontier);
    extras.clear();
  }
}

}  // namespace

ChaseResult SolutionAwareChase(const Instance& start,
                               const std::vector<Tgd>& tgds,
                               const std::vector<Egd>& egds,
                               const Instance& solution,
                               const ChaseOptions& options) {
  obs::Span run_span(obs::Tracer::Global(), "chase");
  run_span.AttrStr("strategy", "solution_aware")
      .AttrBool("compiled",
                options.compile_plans && !plan::ForceInterpreter())
      .AttrInt("tgds", static_cast<int64_t>(tgds.size()))
      .AttrInt("egds", static_cast<int64_t>(egds.size()));
  ChaseResult result =
      SolutionAwareChaseImpl(start, tgds, egds, solution, options);
  run_span.AttrInt("steps", result.steps)
      .AttrBool("failed", result.outcome == ChaseOutcome::kFailed);
  SaMetrics& metrics = SaMetrics::Get();
  metrics.runs.Inc();
  metrics.steps.Inc(result.steps);
  return result;
}

}  // namespace pdx
