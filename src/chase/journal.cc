#include "chase/journal.h"

#include <utility>

namespace pdx {

namespace {
// Mixed into egd fingerprints so an egd and a tgd with the same dependency
// index and binding occupy distinct ledger slots.
constexpr uint64_t kEgdTag = 0x8f3a94c1d2e57b63ull;
}  // namespace

ChaseJournal::ChaseJournal() : ledger_(std::make_unique<TriggerLedger>()) {}

bool ChaseJournal::Record(bool egd, size_t dep, const Value* row, size_t n,
                          uint64_t fp) {
  if (!ledger_->Admit(fp)) return false;
  Entry e;
  e.begin = static_cast<uint32_t>(pool_.size());
  e.len = static_cast<uint16_t>(n);
  e.egd = egd;
  e.alive = true;
  e.dep = static_cast<uint32_t>(dep);
  e.fp = fp;
  pool_.insert(pool_.end(), row, row + n);
  entries_.push_back(e);
  ++live_;
  return true;
}

bool ChaseJournal::RecordTgd(size_t dep, const Value* row, size_t n,
                             const std::vector<bool>& existential) {
  return Record(/*egd=*/false, dep, row, n,
                TriggerFingerprintRow(dep, row, n, existential));
}

bool ChaseJournal::RecordEgd(size_t dep, const Value* row, size_t n) {
  return Record(/*egd=*/true, dep, row, n,
                TriggerFingerprintRow(dep, row, n, {}) ^ kEgdTag);
}

bool ChaseJournal::Kill(size_t i) {
  Entry& e = entries_[i];
  if (!e.alive) return false;
  e.alive = false;
  --live_;
  ledger_->Retire(e.fp);
  return true;
}

void ChaseJournal::Revive(size_t i) {
  Entry& e = entries_[i];
  if (e.alive) return;
  e.alive = true;
  ++live_;
  ledger_->Admit(e.fp);
}

void ChaseJournal::TruncateTo(size_t n) {
  while (entries_.size() > n) {
    const Entry& e = entries_.back();
    if (e.alive) {
      ledger_->Retire(e.fp);
      --live_;
    }
    pool_.resize(e.begin);
    entries_.pop_back();
  }
}

void ChaseJournal::Swap(ChaseJournal& other) {
  pool_.swap(other.pool_);
  entries_.swap(other.entries_);
  std::swap(live_, other.live_);
  ledger_.swap(other.ledger_);
}

void ChaseJournal::Clear() {
  pool_.clear();
  entries_.clear();
  live_ = 0;
  ledger_ = std::make_unique<TriggerLedger>();
}

}  // namespace pdx
