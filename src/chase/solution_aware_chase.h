#ifndef PDX_CHASE_SOLUTION_AWARE_CHASE_H_
#define PDX_CHASE_SOLUTION_AWARE_CHASE_H_

#include "chase/chase.h"

namespace pdx {

// The solution-aware chase (Definitions 6-7): chases `start` with tgds and
// egds, drawing witnesses for existential variables from a given instance
// `solution` that contains `start` and satisfies the tgds, instead of
// inventing fresh nulls. This is the proof tool behind the NP upper bound
// (Lemmas 1-2): its chase sequences have polynomially bounded length and
// its result is a sub-instance of `solution`.
//
// Preconditions (checked): start ⊆ solution and solution ⊨ tgds.
// Returns kFailed if an egd equates distinct constants, exactly as the
// standard chase does.
ChaseResult SolutionAwareChase(const Instance& start,
                               const std::vector<Tgd>& tgds,
                               const std::vector<Egd>& egds,
                               const Instance& solution,
                               const ChaseOptions& options = ChaseOptions());

}  // namespace pdx

#endif  // PDX_CHASE_SOLUTION_AWARE_CHASE_H_
