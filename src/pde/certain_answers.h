#ifndef PDX_PDE_CERTAIN_ANSWERS_H_
#define PDX_PDE_CERTAIN_ANSWERS_H_

#include <cstdint>
#include <vector>

#include "base/status.h"
#include "logic/conjunctive_query.h"
#include "pde/generic_solver.h"
#include "pde/setting.h"
#include "relational/instance.h"
#include "relational/tuple.h"
#include "relational/value.h"

namespace pdx {

// certain(q, (I, J)) for a monotone (union of conjunctive) query q over T
// (Definition 4).
struct CertainAnswersResult {
  // True when (I, J) has no solution at all; then every tuple/Boolean query
  // is vacuously certain and `answers` is not meaningful.
  bool no_solution = false;
  // The certain answers: all-constant tuples t with t ∈ q(J') for every
  // solution J'. For Boolean q (head arity 0) use `boolean_value`.
  std::vector<Tuple> answers;
  bool boolean_value = false;
  // Number of distinct minimal solutions the intersection ranged over
  // (0 for the data-exchange fast path, which needs only the universal
  // solution).
  int64_t solutions_enumerated = 0;
  bool used_data_exchange_fast_path = false;
};

// Computes the certain answers of `query`:
//   * Σ_ts = ∅ (data exchange): PTIME via the universal solution ([8]);
//   * otherwise: enumerates all minimal solutions with the generic solver
//     and intersects q over them — sound and complete for monotone queries
//     by Lemma 2, realizing the coNP procedure of Theorem 2.
// Returns kResourceExhausted if the solution enumeration hit its budget
// (no answer can then be certified).
StatusOr<CertainAnswersResult> ComputeCertainAnswers(
    const PdeSetting& setting, const Instance& source, const Instance& target,
    const UnionQuery& query, SymbolTable* symbols,
    const GenericSolverOptions& options = GenericSolverOptions());

// A PTIME *sound under-approximation* of the certain answers, built from
// the paper's Lemma 3: J_can (the chase of (I, J) with Σ_st alone) maps
// homomorphically into every solution, so every null-free answer of q on
// J_can holds in every solution. The returned set is therefore always a
// subset of certain(q, (I, J)) — exact for data exchange settings, and
// frequently exact in practice; the paper leaves the complexity of exact
// C_tract certain answers open, which is precisely the gap this fills
// operationally. Note: when (I, J) has no solution at all, certainty is
// vacuous and this under-approximation is simply still sound.
struct CertainLowerBoundResult {
  std::vector<Tuple> answers;
  bool boolean_value = false;
  int64_t j_can_size = 0;
};
StatusOr<CertainLowerBoundResult> ComputeCertainAnswersLowerBound(
    const PdeSetting& setting, const Instance& source, const Instance& target,
    const UnionQuery& query, SymbolTable* symbols);

}  // namespace pdx

#endif  // PDX_PDE_CERTAIN_ANSWERS_H_
