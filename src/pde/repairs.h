#ifndef PDX_PDE_REPAIRS_H_
#define PDX_PDE_REPAIRS_H_

#include <cstdint>
#include <vector>

#include "base/status.h"
#include "logic/conjunctive_query.h"
#include "pde/generic_solver.h"
#include "pde/setting.h"
#include "relational/instance.h"
#include "relational/tuple.h"
#include "relational/value.h"

namespace pdx {

// The alternative semantics sketched in the paper's conclusions (after
// Bertossi & Bravo [5]): when (I, J) has *no* solution, the target peer
// may still exchange data by retracting part of its own instance. A
// *subset repair* of J is a ⊆-maximal J_r ⊆ J such that (I, J_r) admits a
// solution. Solvability is downward closed in J (shrinking J only weakens
// the J ⊆ J' requirement), so maximal repairable subsets are well defined
// and J itself is the unique repair whenever (I, J) is solvable.
//
// Query answering under this semantics is *more* expensive than plain PDE
// certain answers (the paper quotes Π₂ᵖ- vs coNP-completeness for [5]'s
// variant); the implementation is accordingly a doubly exponential-ish
// search, intended for the same small-instance regime as the generic
// solver, with budgets.

struct RepairOptions {
  GenericSolverOptions solver;
  // Cap on distinct subsets of J examined during the lattice search.
  int64_t max_subsets_examined = 100'000;
};

// Computes all subset repairs of J for (I, J). If (I, J) is solvable the
// result is exactly {J}. Fails with kResourceExhausted when a budget is
// hit (the repair set would be unreliable).
StatusOr<std::vector<Instance>> ComputeSubsetRepairs(
    const PdeSetting& setting, const Instance& source, const Instance& target,
    SymbolTable* symbols, const RepairOptions& options = RepairOptions());

struct RepairCertainAnswersResult {
  // Number of subset repairs the answers range over.
  int64_t repair_count = 0;
  // t is certain-under-repairs iff t ∈ q(J') for every solution J' of
  // every repair (I, J_r).
  std::vector<Tuple> answers;
  bool boolean_value = false;
};

// Certain answers under the repair semantics. Unlike plain PDE certain
// answers this is total: it never reports "no solution" (the empty subset
// of J is always repair-candidate, and (I, ∅) with Σ_t = ∅ may still be
// unsolvable — in that degenerate case there are zero repairs and
// certainty is vacuous, reported via repair_count == 0).
StatusOr<RepairCertainAnswersResult> ComputeRepairCertainAnswers(
    const PdeSetting& setting, const Instance& source, const Instance& target,
    const UnionQuery& query, SymbolTable* symbols,
    const RepairOptions& options = RepairOptions());

}  // namespace pdx

#endif  // PDX_PDE_REPAIRS_H_
