#include "pde/explain.h"

#include <vector>

namespace pdx {

namespace {

Instance WithoutFact(const Instance& instance, const std::vector<Fact>& facts,
                     size_t skip) {
  Instance smaller(&instance.schema());
  for (size_t i = 0; i < facts.size(); ++i) {
    if (i != skip) smaller.AddFact(facts[i]);
  }
  return smaller;
}

// Shared greedy minimization: repeatedly drop any fact of `shrinkable`
// that keeps `predicate` true (predicate = "still unsolvable").
template <typename Predicate>
StatusOr<Instance> GreedyMinimize(Instance shrinkable,
                                  const Predicate& still_conflicting) {
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    std::vector<Fact> facts = shrinkable.AllFacts();
    for (size_t i = 0; i < facts.size(); ++i) {
      Instance candidate = WithoutFact(shrinkable, facts, i);
      PDX_ASSIGN_OR_RETURN(bool conflicting, still_conflicting(candidate));
      if (conflicting) {
        shrinkable = std::move(candidate);
        shrunk = true;
        break;
      }
    }
  }
  return shrinkable;
}

}  // namespace

StatusOr<Instance> FindMinimalTargetConflict(const PdeSetting& setting,
                                             const Instance& source,
                                             const Instance& target,
                                             SymbolTable* symbols,
                                             const ExplainOptions& options) {
  auto unsolvable = [&](const Instance& j) -> StatusOr<bool> {
    PDX_ASSIGN_OR_RETURN(
        GenericSolveResult result,
        GenericExistsSolution(setting, source, j, symbols, options.solver));
    if (result.outcome == SolveOutcome::kBudgetExhausted) {
      return ResourceExhaustedError("solver budget exhausted during explain");
    }
    return result.outcome == SolveOutcome::kNoSolution;
  };
  PDX_ASSIGN_OR_RETURN(bool whole_unsolvable, unsolvable(target));
  if (!whole_unsolvable) {
    return FailedPreconditionError(
        "FindMinimalTargetConflict requires an unsolvable (I, J)");
  }
  PDX_ASSIGN_OR_RETURN(bool empty_unsolvable,
                       unsolvable(setting.EmptyInstance()));
  if (empty_unsolvable) {
    return FailedPreconditionError(
        "the conflict is independent of J: (I, ∅) is already unsolvable; "
        "use FindMinimalSourceConflict");
  }
  return GreedyMinimize(target, unsolvable);
}

StatusOr<Instance> FindMinimalSourceConflict(const PdeSetting& setting,
                                             const Instance& source,
                                             const Instance& target,
                                             SymbolTable* symbols,
                                             const ExplainOptions& options) {
  auto unsolvable = [&](const Instance& i) -> StatusOr<bool> {
    PDX_ASSIGN_OR_RETURN(
        GenericSolveResult result,
        GenericExistsSolution(setting, i, target, symbols, options.solver));
    if (result.outcome == SolveOutcome::kBudgetExhausted) {
      return ResourceExhaustedError("solver budget exhausted during explain");
    }
    return result.outcome == SolveOutcome::kNoSolution;
  };
  PDX_ASSIGN_OR_RETURN(bool whole_unsolvable, unsolvable(source));
  if (!whole_unsolvable) {
    return FailedPreconditionError(
        "FindMinimalSourceConflict requires an unsolvable (I, J)");
  }
  return GreedyMinimize(source, unsolvable);
}

}  // namespace pdx
