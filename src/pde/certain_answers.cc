#include "pde/certain_answers.h"

#include <algorithm>
#include <set>

#include "chase/chase.h"
#include "pde/data_exchange.h"

namespace pdx {

namespace {

bool TupleIsGround(const Tuple& t) {
  return std::all_of(t.begin(), t.end(),
                     [](const Value& v) { return v.is_constant(); });
}

}  // namespace

StatusOr<CertainAnswersResult> ComputeCertainAnswers(
    const PdeSetting& setting, const Instance& source, const Instance& target,
    const UnionQuery& query, SymbolTable* symbols,
    const GenericSolverOptions& options) {
  PDX_RETURN_IF_ERROR(ValidateUnionQuery(query, setting.schema()));
  for (const ConjunctiveQuery& q : query.disjuncts) {
    for (const Atom& atom : q.body) {
      if (setting.is_source(atom.relation)) {
        return InvalidArgumentError(
            "certain answers are defined for queries over the target schema");
      }
    }
  }

  CertainAnswersResult result;

  // Fast path: data exchange settings have a PTIME algorithm ([8]).
  if (setting.IsDataExchange()) {
    result.used_data_exchange_fast_path = true;
    ChaseOptions chase_options;
    chase_options.num_threads = options.num_threads;
    PDX_ASSIGN_OR_RETURN(
        DataExchangeResult de,
        SolveDataExchange(setting, source, target, symbols, chase_options));
    if (!de.has_solution) {
      result.no_solution = true;
      result.boolean_value = true;  // vacuously certain
      return result;
    }
    if (query.IsBoolean()) {
      result.boolean_value = EvaluateBoolean(query, *de.universal_solution);
    } else {
      result.answers = EvaluateUnionQueryNullFree(query,
                                                  *de.universal_solution);
    }
    return result;
  }

  // General path: enumerate all minimal solutions and intersect.
  GenericSolverOptions enumerate_options = options;
  enumerate_options.enumerate_all = true;
  PDX_ASSIGN_OR_RETURN(
      GenericSolveResult solve,
      GenericExistsSolution(setting, source, target, symbols,
                            enumerate_options));
  if (solve.outcome == SolveOutcome::kBudgetExhausted) {
    return ResourceExhaustedError(
        "solution enumeration exceeded its budget; certain answers unknown");
  }
  if (solve.outcome == SolveOutcome::kNoSolution) {
    result.no_solution = true;
    result.boolean_value = true;  // vacuously certain
    return result;
  }
  result.solutions_enumerated =
      static_cast<int64_t>(solve.solutions.size());

  if (query.IsBoolean()) {
    result.boolean_value = true;
    for (const Instance& solution : solve.solutions) {
      if (!EvaluateBoolean(query, solution)) {
        result.boolean_value = false;
        break;
      }
    }
    return result;
  }

  // Intersection of ground answers over all enumerated minimal solutions.
  // Monotonicity of q makes this exactly certain(q): any solution J*
  // contains some enumerated J ⊆ J* (Lemma 2), so q(J) ⊆ q(J*).
  bool first = true;
  std::set<Tuple> certain;
  for (const Instance& solution : solve.solutions) {
    std::vector<Tuple> answers = EvaluateUnionQuery(query, solution);
    std::set<Tuple> ground;
    for (Tuple& t : answers) {
      if (TupleIsGround(t)) ground.insert(std::move(t));
    }
    if (first) {
      certain = std::move(ground);
      first = false;
    } else {
      std::set<Tuple> intersection;
      std::set_intersection(certain.begin(), certain.end(), ground.begin(),
                            ground.end(),
                            std::inserter(intersection,
                                          intersection.begin()));
      certain = std::move(intersection);
    }
    if (certain.empty()) break;
  }
  result.answers.assign(certain.begin(), certain.end());
  return result;
}

StatusOr<CertainLowerBoundResult> ComputeCertainAnswersLowerBound(
    const PdeSetting& setting, const Instance& source, const Instance& target,
    const UnionQuery& query, SymbolTable* symbols) {
  PDX_CHECK(symbols != nullptr);
  PDX_RETURN_IF_ERROR(ValidateUnionQuery(query, setting.schema()));
  PDX_RETURN_IF_ERROR(setting.ValidateSourceInstance(source));
  PDX_RETURN_IF_ERROR(setting.ValidateTargetInstance(target));

  // J_can: chase (I, J) with Σ_st only (Lemma 3's canonical pre-solution).
  Instance combined = setting.CombineInstances(source, target);
  ChaseResult chase = Chase(combined, setting.st_tgds(), symbols);
  PDX_CHECK(chase.outcome == ChaseOutcome::kSuccess)
      << "Σ_st chase cannot fail or diverge";
  Instance j_can = setting.TargetPart(chase.instance);

  CertainLowerBoundResult result;
  result.j_can_size = static_cast<int64_t>(j_can.fact_count());
  if (query.IsBoolean()) {
    // A Boolean match using only constants... Boolean queries have no
    // head, so any match on J_can transfers along the homomorphism into
    // every solution (homomorphisms preserve CQ matches wholesale).
    result.boolean_value = EvaluateBoolean(query, j_can);
  } else {
    result.answers = EvaluateUnionQueryNullFree(query, j_can);
  }
  return result;
}

}  // namespace pdx
