#include "pde/data_exchange.h"

#include "chase/chase.h"

namespace pdx {

StatusOr<DataExchangeResult> SolveDataExchange(
    const PdeSetting& setting, const Instance& source, const Instance& target,
    SymbolTable* symbols, const ChaseOptions& chase_options) {
  PDX_CHECK(symbols != nullptr);
  if (!setting.IsDataExchange()) {
    return FailedPreconditionError(
        "SolveDataExchange requires Σ_ts = ∅; use the PDE solvers instead");
  }
  PDX_RETURN_IF_ERROR(setting.ValidateSourceInstance(source));
  PDX_RETURN_IF_ERROR(setting.ValidateTargetInstance(target));

  std::vector<Tgd> tgds = setting.st_tgds();
  tgds.insert(tgds.end(), setting.target_tgds().begin(),
              setting.target_tgds().end());
  Instance combined = setting.CombineInstances(source, target);
  // With chase_options.compile_plans (the default) this chase executes
  // through the dependency compiler; the combined Σ_st ∪ Σ_t plan set is
  // cached by structural fingerprint, so repeated exchanges over one
  // setting compile it once.
  ChaseResult chase =
      Chase(combined, tgds, setting.target_egds(), symbols, chase_options);

  DataExchangeResult result;
  result.chase_steps = chase.steps;
  result.nulls_created = chase.nulls_created;
  switch (chase.outcome) {
    case ChaseOutcome::kFailed:
      result.has_solution = false;
      return result;
    case ChaseOutcome::kBudgetExhausted:
      return ResourceExhaustedError(
          "data exchange chase exceeded its step budget (is Σ_t weakly "
          "acyclic?)");
    case ChaseOutcome::kSuccess:
      result.has_solution = true;
      result.universal_solution = setting.TargetPart(chase.instance);
      return result;
  }
  return InternalError("unreachable chase outcome");
}

StatusOr<std::vector<Tuple>> DataExchangeCertainAnswers(
    const PdeSetting& setting, const Instance& source, const Instance& target,
    const UnionQuery& query, SymbolTable* symbols) {
  PDX_ASSIGN_OR_RETURN(DataExchangeResult result,
                       SolveDataExchange(setting, source, target, symbols));
  if (!result.has_solution) {
    return FailedPreconditionError(
        "no solution exists: certain answers are vacuous");
  }
  return EvaluateUnionQueryNullFree(query, *result.universal_solution);
}

}  // namespace pdx
