#ifndef PDX_PDE_CTRACT_SOLVER_H_
#define PDX_PDE_CTRACT_SOLVER_H_

#include <cstdint>
#include <optional>

#include "base/status.h"
#include "chase/chase.h"
#include "pde/setting.h"
#include "relational/instance.h"
#include "relational/value.h"

namespace pdx {

// Result of the ExistsSolution algorithm (Figure 3).
struct CtractSolveResult {
  bool has_solution = false;
  // The witness solution J_img = h_J(J_can) constructed per the (⇐)
  // direction of Theorem 5; present iff has_solution. It may contain
  // labeled nulls (values invented by the chase that no constraint forces
  // into the source).
  std::optional<Instance> solution;

  // Diagnostics for the Theorem 6 experiments.
  int64_t j_can_size = 0;      // facts in J_can
  int64_t i_can_size = 0;      // facts in I_can
  int64_t block_count = 0;     // blocks of I_can
  int64_t max_block_nulls = 0; // nulls in the largest block of I_can
  int64_t chase_steps = 0;
};

// Decides SOL(P) via the paper's polynomial-time algorithm:
//   1. chase (I, J) with Σ_st, yielding (I, J_can);
//   2. chase (J_can, ∅) with Σ_ts, yielding (J_can, I_can);
//   3. answer true iff every block of I_can maps homomorphically into I.
//
// Preconditions (kFailedPrecondition otherwise):
//   * Σ_t = ∅ and no disjunctive ts-tgds;
//   * condition 1 of Definition 9 holds (every marked variable appears at
//     most once in each Σ_ts LHS) — Theorem 5 makes the algorithm *correct*
//     under condition 1 alone; polynomial running time is guaranteed only
//     when the setting is additionally in C_tract (condition 2), which the
//     caller can check via setting.InCtract().
//
// `source` must be a ground source-side instance; `target` a target-side
// instance (it may contain nulls; the paper's J is null-free but nothing
// here requires that).
// `chase_options` selects the strategy for both chase phases (delta-driven
// by default; cross-validation passes kRestrictedNaive to A/B the engines).
StatusOr<CtractSolveResult> CtractExistsSolution(
    const PdeSetting& setting, const Instance& source, const Instance& target,
    SymbolTable* symbols, const ChaseOptions& chase_options = ChaseOptions());

}  // namespace pdx

#endif  // PDX_PDE_CTRACT_SOLVER_H_
