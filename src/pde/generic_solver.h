#ifndef PDX_PDE_GENERIC_SOLVER_H_
#define PDX_PDE_GENERIC_SOLVER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "base/status.h"
#include "pde/setting.h"
#include "relational/instance.h"
#include "relational/value.h"

namespace pdx {

enum class SolveOutcome {
  kSolutionFound,
  kNoSolution,
  kBudgetExhausted,  // search budget hit before the space was exhausted
};

struct GenericSolverOptions {
  // Total search-node budget across the whole exploration.
  int64_t max_nodes = 1'000'000;
  // Maximum recursion depth (= chase steps along one path). Weakly acyclic
  // settings stay far below this; the bound keeps non-weakly-acyclic Σ_t
  // from diverging.
  int max_depth = 5'000;
  // When true, the entire space is explored and every distinct solution
  // found at a search leaf is collected (deduplicated up to null renaming).
  // Used by certain-answer computation.
  bool enumerate_all = false;
  // Threads for the per-node egd fixpoint's trigger collection (0 =
  // hardware concurrency). The search itself is sequential and the solve
  // outcome is independent of this knob; the trigger-cache counters below
  // can shift slightly with it (the batched egd discipline dirties
  // different tuples than the rescan discipline).
  int num_threads = 1;
  // Execute trigger discovery, head checks and the per-node egd fixpoint
  // through compiled plans (plan/ir.h), fetched once per solve from the
  // process-wide PlanCache — node re-chases of the same setting never
  // recompile. The solve outcome is independent of this knob; it is
  // overridden to false process-wide by PDX_FORCE_INTERPRETER.
  bool compile_plans = true;
};

struct GenericSolveResult {
  SolveOutcome outcome = SolveOutcome::kNoSolution;
  // Target part of the first solution found (present iff kSolutionFound).
  std::optional<Instance> solution;
  // All distinct leaf solutions, when enumerate_all. Every solution J* of
  // the setting contains (up to renaming of nulls) at least one member, so
  // intersecting a monotone query over this set yields the certain answers.
  std::vector<Instance> solutions;
  int64_t nodes_explored = 0;
  // Instrumentation of the incremental violated-trigger cache that drives
  // the search loop (no full-instance trigger rescans happen per node):
  // body matches found by delta-driven discovery, and head-extension tests
  // of cached candidates. Both scale with what each node adds (its delta
  // and the triggers it affects), not with instance size — asserted in
  // generic_solver_test.
  int64_t candidates_discovered = 0;
  int64_t candidate_checks = 0;
};

// Sound and complete decision procedure for SOL(P) on arbitrary settings
// with Σ_t = egds + (preferably weakly acyclic) tgds, realizing the NP
// upper bound of Theorem 1 as an explicit backtracking search over
// solution-aware chase choices:
//
//   * a violated Σ_st / Σ_t tgd trigger branches over all assignments of
//     its existential variables to values of the current active domain or
//     fresh labeled nulls (including reuse of nulls introduced for earlier
//     variables of the same trigger);
//   * a violated Σ_t egd merges a null or kills the branch on a
//     constant/constant clash;
//   * Σ_ts (and disjunctive Σ_ts) act as checks: a violated all-constant
//     trigger — or any violated trigger when Σ_t has no egds — is
//     permanent and prunes; otherwise the branch dies only at fixpoints.
//
// Completeness follows the paper's Lemma 2: for any solution J*, tracing
// the solution-aware chase against J* is one of the explored paths up to
// injective renaming of non-input values. Visited states are memoized by
// canonical fingerprint.
//
// kBudgetExhausted means "unknown": no claim is made either way.
StatusOr<GenericSolveResult> GenericExistsSolution(
    const PdeSetting& setting, const Instance& source, const Instance& target,
    SymbolTable* symbols,
    const GenericSolverOptions& options = GenericSolverOptions());

struct IncrementalSolveResult {
  GenericSolveResult result;
  // True when the prior witness revalidated and no search ran (the PTIME
  // path); result is then kSolutionFound with the witness as solution.
  bool revalidated = false;
};

// GenericExistsSolution after a ±Δ batch, reusing the previous answer's
// witness: if `prior_witness` (the J' of an earlier kSolutionFound, over
// the current setting) is still a solution for the *new* (source, target)
// — a PTIME IsSolution check — the NP search is skipped entirely. Reuse is
// positive-only: deletions can break a witness but a broken witness says
// nothing about other solutions, and additions to J can push J ⊄ J', so
// any failed check falls through to the full search. Pass null (or after a
// kNoSolution) to always search. Used by the serving layer to keep exists
// verdicts fresh across churn (serve/tenant.cc).
StatusOr<IncrementalSolveResult> GenericExistsSolutionIncremental(
    const PdeSetting& setting, const Instance& source, const Instance& target,
    const Instance* prior_witness, SymbolTable* symbols,
    const GenericSolverOptions& options = GenericSolverOptions());

}  // namespace pdx

#endif  // PDX_PDE_GENERIC_SOLVER_H_
