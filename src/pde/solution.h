#ifndef PDX_PDE_SOLUTION_H_
#define PDX_PDE_SOLUTION_H_

#include <string>
#include <vector>

#include "pde/setting.h"
#include "relational/instance.h"

namespace pdx {

// Result of checking Definition 2 for a candidate solution.
struct SolutionCheck {
  bool is_solution = true;
  std::vector<std::string> violations;  // human-readable, empty when valid
};

// Checks whether `j_prime` is a solution for (I, J) in `setting`
// (Definition 2): J ⊆ J', (I, J') ⊨ Σ_st ∪ Σ_ts, and J' ⊨ Σ_t.
// All three instances are over the setting's combined schema; `source` and
// `target` are the given (I, J); `j_prime` is target-side only.
SolutionCheck CheckSolution(const PdeSetting& setting, const Instance& source,
                            const Instance& target, const Instance& j_prime,
                            const SymbolTable& symbols);

// Convenience wrapper returning only the verdict.
bool IsSolution(const PdeSetting& setting, const Instance& source,
                const Instance& target, const Instance& j_prime,
                const SymbolTable& symbols);

}  // namespace pdx

#endif  // PDX_PDE_SOLUTION_H_
