#ifndef PDX_PDE_SETTING_FILE_H_
#define PDX_PDE_SETTING_FILE_H_

#include <string>
#include <string_view>

#include "base/status.h"
#include "pde/setting.h"
#include "relational/instance.h"
#include "relational/value.h"

namespace pdx {

// A textual on-disk format for a whole PDE setting, used by the pdxcli
// tool and convenient for tests. Sections are introduced by a header line
// and hold relation declarations or dependency programs:
//
//   # comments run to end of line anywhere
//   [source]
//   E/2
//   D/2
//   [target]
//   H/2
//   [st]
//   E(x,z) & E(z,y) -> H(x,y).
//   [ts]
//   H(x,y) -> E(x,y).
//   [t]
//   H(x,y) & H(x,z) -> y = z.
//
// [source] and [target] are required (possibly empty is rejected:
// each peer needs at least one relation); [st], [ts], [t] are optional.
StatusOr<PdeSetting> ParseSettingFile(std::string_view text,
                                      SymbolTable* symbols);

// Reads `path` and parses it with ParseSettingFile.
StatusOr<PdeSetting> LoadSettingFile(const std::string& path,
                                     SymbolTable* symbols);

// Reads `path` and parses it as an instance over `schema` (the fact
// format of relational/instance_io.h).
StatusOr<Instance> LoadInstanceFile(const std::string& path,
                                    const Schema& schema,
                                    SymbolTable* symbols);

// Renders a setting back into the file format (modulo comments); the
// output re-parses to an equivalent setting.
std::string SettingToFileText(const PdeSetting& setting,
                              const SymbolTable& symbols);

}  // namespace pdx

#endif  // PDX_PDE_SETTING_FILE_H_
