#ifndef PDX_PDE_EXPLAIN_H_
#define PDX_PDE_EXPLAIN_H_

#include "base/status.h"
#include "pde/generic_solver.h"
#include "pde/setting.h"
#include "relational/instance.h"
#include "relational/value.h"

namespace pdx {

// Diagnostics for unsolvable (I, J) pairs: minimal conflicts.
//
// Solvability is downward closed in J and *upward* closed nowhere in I —
// removing source facts can either help (fewer Σ_st obligations) or hurt
// (fewer Σ_ts witnesses) — so the two sides get different treatments:
//
//   * FindMinimalTargetConflict: a ⊆-minimal J_bad ⊆ J with (I, J_bad)
//     unsolvable. Exists whenever (I, J) is unsolvable but (I, ∅) is
//     solvable; pinpoints which of the target's own facts doom the
//     exchange (dual to a repair).
//
//   * FindMinimalSourceConflict: a ⊆-minimal I_bad ⊆ I with (I_bad, J)
//     unsolvable, computed by greedy deletion with re-checking (deletion
//     is not monotone on the source side, so the result is minimal but
//     existence requires (I, J) unsolvable — the trivial precondition).
//
// Both run the complete solver once per candidate deletion; sizes should
// match the generic solver's small-instance regime.

struct ExplainOptions {
  GenericSolverOptions solver;
};

// Requires (I, J) unsolvable and (I, ∅) solvable (kFailedPrecondition
// otherwise).
StatusOr<Instance> FindMinimalTargetConflict(
    const PdeSetting& setting, const Instance& source, const Instance& target,
    SymbolTable* symbols, const ExplainOptions& options = ExplainOptions());

// Requires (I, J) unsolvable (kFailedPrecondition otherwise).
StatusOr<Instance> FindMinimalSourceConflict(
    const PdeSetting& setting, const Instance& source, const Instance& target,
    SymbolTable* symbols, const ExplainOptions& options = ExplainOptions());

}  // namespace pdx

#endif  // PDX_PDE_EXPLAIN_H_
