#ifndef PDX_PDE_MULTI_PDE_H_
#define PDX_PDE_MULTI_PDE_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "pde/setting.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace pdx {

// One source peer of a multi-PDE setting: its schema S_m and its
// constraints (Σ_{s_m t}, Σ_{t s_m}, Σ_{t_m}) against the shared target.
struct PeerSpec {
  std::vector<RelationSchema> source_relations;
  std::string sigma_st;
  std::string sigma_ts;
  std::string sigma_t;
};

// Builds the single PDE setting that simulates a multi-PDE setting
// (Section 2): S = S_1 ∪ ... ∪ S_n (names must be pairwise disjoint),
// Σ_st/Σ_ts/Σ_t are the unions of the per-peer sets. J' is a solution for
// ((I_1,...,I_n), J) in the multi-PDE iff it is a solution for
// (I_1 ∪ ... ∪ I_n, J) in the merged setting.
StatusOr<PdeSetting> MergeMultiPde(
    const std::vector<PeerSpec>& peers,
    const std::vector<RelationSchema>& target_relations,
    SymbolTable* symbols);

}  // namespace pdx

#endif  // PDX_PDE_MULTI_PDE_H_
