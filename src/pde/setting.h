#ifndef PDX_PDE_SETTING_H_
#define PDX_PDE_SETTING_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "logic/dependency.h"
#include "logic/marking.h"
#include "relational/instance.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace pdx {

// A peer data exchange setting P = (S, T, Σ_st, Σ_ts, Σ_t) (Definition 1).
//
// Internally both schemas are merged into one combined schema over (S, T);
// instances are always over the combined schema, with "source instances"
// populating only source relations and "target instances" only target
// relations. That keeps the chase, matcher and homomorphism machinery
// uniform across sides.
//
// Lifetime: instances created against `schema()` hold a pointer into this
// setting; the setting must outlive them. The setting is movable (the
// schema lives behind a stable unique_ptr).
class PdeSetting {
 public:
  // Builds and validates a setting. `sigma_st`, `sigma_ts` and `sigma_t`
  // are programs in the dependency language of logic/parser.h. Validation
  // enforces the paper's sidedness requirements:
  //   * Σ_st: tgds with bodies over S and heads over T;
  //   * Σ_ts: tgds (or, as an extension, disjunctive tgds) with bodies
  //     over T and heads over S;
  //   * Σ_t: tgds and egds entirely over T.
  // Constants in dependencies are interned into `symbols`, which all
  // instances for this setting must share.
  static StatusOr<PdeSetting> Create(
      const std::vector<RelationSchema>& source_relations,
      const std::vector<RelationSchema>& target_relations,
      std::string_view sigma_st, std::string_view sigma_ts,
      std::string_view sigma_t, SymbolTable* symbols);

  PdeSetting(PdeSetting&&) = default;
  PdeSetting& operator=(PdeSetting&&) = default;
  PdeSetting(const PdeSetting&) = delete;
  PdeSetting& operator=(const PdeSetting&) = delete;

  // The combined schema (S, T).
  const Schema& schema() const { return *schema_; }

  bool is_source(RelationId r) const { return is_source_[r]; }
  bool is_target(RelationId r) const { return !is_source_[r]; }
  int source_relation_count() const { return source_count_; }
  int target_relation_count() const {
    return schema_->relation_count() - source_count_;
  }

  const std::vector<Tgd>& st_tgds() const { return st_tgds_; }
  const std::vector<Tgd>& ts_tgds() const { return ts_tgds_; }
  const std::vector<DisjunctiveTgd>& ts_disjunctive_tgds() const {
    return ts_disjunctive_tgds_;
  }
  const std::vector<Tgd>& target_tgds() const { return target_tgds_; }
  const std::vector<Egd>& target_egds() const { return target_egds_; }

  bool HasTargetConstraints() const {
    return !target_tgds_.empty() || !target_egds_.empty();
  }
  bool HasDisjunctiveTsTgds() const { return !ts_disjunctive_tgds_.empty(); }

  // A data exchange setting is the special case Σ_ts = ∅ (Section 2).
  bool IsDataExchange() const {
    return ts_tgds_.empty() && ts_disjunctive_tgds_.empty();
  }

  // Definition 9 classification of (Σ_st, Σ_ts). Membership in C_tract
  // additionally requires Σ_t = ∅ and no disjunctive ts-tgds; InCtract()
  // checks all of it.
  const CtractReport& ctract_report() const { return ctract_report_; }
  bool InCtract() const {
    return !HasTargetConstraints() && !HasDisjunctiveTsTgds() &&
           ctract_report_.in_ctract();
  }

  // Whether Σ_t's tgds form a weakly acyclic set (the Theorem 1/2 upper
  // bound hypothesis).
  bool TargetTgdsWeaklyAcyclic() const { return target_weakly_acyclic_; }

  // An empty instance over the combined schema.
  Instance EmptyInstance() const { return Instance(schema_.get()); }

  // Checks that `instance` populates only source relations and contains no
  // labeled nulls (source instances are ground).
  Status ValidateSourceInstance(const Instance& instance) const;

  // Checks that `instance` populates only target relations.
  Status ValidateTargetInstance(const Instance& instance) const;

  // The union (I, J) of a source-only and a target-only instance.
  Instance CombineInstances(const Instance& source,
                            const Instance& target) const;

  // Projections of a combined instance onto one side.
  Instance SourcePart(const Instance& combined) const;
  Instance TargetPart(const Instance& combined) const;

  std::string ToString(const SymbolTable& symbols) const;

 private:
  PdeSetting() = default;

  std::unique_ptr<Schema> schema_;
  std::vector<bool> is_source_;
  int source_count_ = 0;
  std::vector<Tgd> st_tgds_;
  std::vector<Tgd> ts_tgds_;
  std::vector<DisjunctiveTgd> ts_disjunctive_tgds_;
  std::vector<Tgd> target_tgds_;
  std::vector<Egd> target_egds_;
  CtractReport ctract_report_;
  bool target_weakly_acyclic_ = true;
};

}  // namespace pdx

#endif  // PDX_PDE_SETTING_H_
