#ifndef PDX_PDE_DATA_EXCHANGE_H_
#define PDX_PDE_DATA_EXCHANGE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "base/status.h"
#include "chase/chase.h"
#include "logic/conjunctive_query.h"
#include "pde/setting.h"
#include "relational/instance.h"
#include "relational/tuple.h"
#include "relational/value.h"

namespace pdx {

// The classical data exchange baseline of [8] ("Data exchange: semantics
// and query answering"): the special case Σ_ts = ∅ of peer data exchange.
// Solution existence and certain answers are polynomial-time here, which
// is the contrast the paper draws with full PDE (Theorem 3).
struct DataExchangeResult {
  bool has_solution = false;
  // The canonical universal solution produced by the chase (present iff
  // has_solution): it homomorphically maps into every solution (Lemma 3),
  // so null-free query answers on it are exactly the certain answers of
  // unions of conjunctive queries.
  std::optional<Instance> universal_solution;
  int64_t chase_steps = 0;
  int64_t nulls_created = 0;
};

// Runs the data exchange chase of (I, J) with Σ_st ∪ Σ_t. Requires
// setting.IsDataExchange(); Σ_t's tgds should be weakly acyclic for the
// polynomial guarantee (a chase budget guards the general case).
// has_solution == false means the chase failed on a target egd.
// `chase_options` selects the chase strategy (delta-driven by default;
// cross-validation passes kRestrictedNaive to A/B the two engines).
StatusOr<DataExchangeResult> SolveDataExchange(
    const PdeSetting& setting, const Instance& source, const Instance& target,
    SymbolTable* symbols, const ChaseOptions& chase_options = ChaseOptions());

// PTIME certain answers for a union of conjunctive queries over the target
// schema, via the universal solution: evaluate naively, keep null-free
// answers. When no solution exists every Boolean query is vacuously
// certain; this returns kFailedPrecondition in that case so callers
// distinguish the vacuous situation explicitly.
StatusOr<std::vector<Tuple>> DataExchangeCertainAnswers(
    const PdeSetting& setting, const Instance& source, const Instance& target,
    const UnionQuery& query, SymbolTable* symbols);

}  // namespace pdx

#endif  // PDX_PDE_DATA_EXCHANGE_H_
