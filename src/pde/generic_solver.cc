#include "pde/generic_solver.h"

#include <limits>
#include <memory>
#include <unordered_set>
#include <utility>

#include "base/thread_pool.h"
#include "chase/chase.h"
#include "hom/matcher.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "plan/compiler.h"
#include "plan/ir.h"
#include "pde/solution.h"
#include "plan/plan_cache.h"
#include "relational/snapshot.h"

namespace pdx {

namespace {

// Search-effort metrics. The registry totals and the GenericSolveResult
// fields are fed from the same per-run tallies (one bulk Inc per run), so
// BENCH outputs and --metrics-out can never disagree about them.
struct SolverMetrics {
  obs::Counter runs, nodes, candidates_discovered, candidate_checks;
  obs::Counter witness_revalidated;
  static SolverMetrics& Get() {
    static SolverMetrics* m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      auto* metrics = new SolverMetrics();
      metrics->runs = reg.GetCounter("pdx_solver_runs_total");
      metrics->nodes = reg.GetCounter("pdx_solver_nodes_total");
      metrics->candidates_discovered =
          reg.GetCounter("pdx_solver_candidates_discovered_total");
      metrics->candidate_checks =
          reg.GetCounter("pdx_solver_candidate_checks_total");
      metrics->witness_revalidated =
          reg.GetCounter("pdx_solver_witness_revalidated_total");
      return metrics;
    }();
    return *m;
  }
};

enum class TsStatus {
  kSatisfied,
  kViolatedPermanent,  // no later step can repair it: prune
  kViolatedFixable,    // violated only on triggers with nulls, and Σ_t has
                       // egds that might merge them later
};

// A violated st/t tgd trigger to branch on.
struct PendingTrigger {
  const Tgd* tgd = nullptr;
  Binding binding;
};

// True if some body atom could match inside the delta at all.
bool TouchesDelta(const std::vector<Atom>& body, const DeltaView& delta) {
  for (const Atom& atom : body) {
    if (delta.dirty(atom.relation)) return true;
  }
  return false;
}

class Searcher {
 public:
  Searcher(const PdeSetting& setting, SymbolTable* symbols,
           const GenericSolverOptions& options)
      : setting_(setting),
        symbols_(symbols),
        options_(options),
        has_egds_(!setting.target_egds().empty()) {
    // Fixed dependency order for candidate buckets and trigger selection:
    // st tgds before target tgds (the historical scan order), ts checks
    // after. Full tgds keep priority over existential ones at selection
    // time via the full_pass loop.
    for (const Tgd& tgd : setting_.st_tgds()) tgd_order_.push_back(&tgd);
    for (const Tgd& tgd : setting_.target_tgds()) tgd_order_.push_back(&tgd);
    tgd_cands_.resize(tgd_order_.size());
    for (const Tgd& tgd : setting_.ts_tgds()) {
      ts_deps_.push_back({&tgd.body, {&tgd.head}, tgd.var_count});
    }
    for (const DisjunctiveTgd& tgd : setting_.ts_disjunctive_tgds()) {
      TsDep dep{&tgd.body, {}, tgd.var_count};
      dep.heads.reserve(tgd.head_disjuncts.size());
      for (const std::vector<Atom>& d : tgd.head_disjuncts) {
        dep.heads.push_back(&d);
      }
      ts_deps_.push_back(std::move(dep));
    }
    ts_cands_.resize(ts_deps_.size());
    if (options_.compile_plans && !plan::ForceInterpreter()) {
      // One cache probe per solve, keyed by the combined st+target setting
      // in tgd_order_ order (so compiled_->tgds[t] pairs with
      // tgd_order_[t]). Node re-chases never recompile; repeated solves of
      // the same setting hit the process cache.
      std::vector<Tgd> all_tgds;
      all_tgds.reserve(tgd_order_.size());
      for (const Tgd* tgd : tgd_order_) all_tgds.push_back(*tgd);
      compiled_ =
          plan::PlanCache::Global().GetOrCompile(all_tgds,
                                                 setting_.target_egds());
      // Σ_ts acts as checks, not chase rules: only the body programs are
      // worth compiling (the head probes run against cached bindings with
      // per-disjunct atom lists, which stay interpreted).
      ts_body_plans_.reserve(ts_deps_.size());
      for (const TsDep& dep : ts_deps_) {
        ts_body_plans_.push_back(
            plan::CompileBody(*dep.body, dep.var_count, {}));
      }
    }
  }

  GenericSolveResult Run(Instance start) {
    obs::Span run_span(obs::Tracer::Global(), "solve.generic");
    run_span.AttrBool("enumerate_all", options_.enumerate_all)
        .AttrBool("compiled", compiled_ != nullptr);
    int threads = options_.num_threads <= 0
                      ? ThreadPool::HardwareConcurrency()
                      : options_.num_threads;
    if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
    // At the root everything is "new", so the root's candidate discovery
    // is the one full scan; below the root, children only discover what
    // they added or merged.
    InstanceWatermark origin = InstanceWatermark::Origin(start);
    Explore(std::move(start), 0, origin);
    result_.nodes_explored = nodes_;
    run_span.AttrInt("nodes", nodes_).AttrBool("found", found_);
    SolverMetrics& metrics = SolverMetrics::Get();
    metrics.runs.Inc();
    metrics.nodes.Inc(nodes_);
    metrics.candidates_discovered.Inc(result_.candidates_discovered);
    metrics.candidate_checks.Inc(result_.candidate_checks);
    if (budget_hit_ && !found_) {
      result_.outcome = SolveOutcome::kBudgetExhausted;
    } else if (budget_hit_ && options_.enumerate_all) {
      // Found some solutions but could not finish the enumeration.
      result_.outcome = SolveOutcome::kBudgetExhausted;
    } else if (found_) {
      result_.outcome = SolveOutcome::kSolutionFound;
    } else {
      result_.outcome = SolveOutcome::kNoSolution;
    }
    return std::move(result_);
  }

 private:
  // One ts dependency in check form: body plus the admissible head options
  // (a single head for plain tgds, one per disjunct otherwise).
  struct TsDep {
    const std::vector<Atom>* body;
    std::vector<const std::vector<Atom>*> heads;
    int var_count;
  };

  // A cached trigger: a body match discovered violated at some node of the
  // current DFS path. `satisfied` marks candidates proven repaired at the
  // current node or an ancestor of it within this subtree — satisfaction
  // is monotone (facts only grow, merges only coarsen), so descendants
  // skip them; the mark is undone on backtrack past the marking node.
  struct Candidate {
    Binding binding;
    bool satisfied = false;
  };

  // Bucket snapshot taken at node entry and restored at node exit: the
  // DFS append/truncate discipline that keeps buckets holding exactly the
  // candidates discovered on the current root-to-node path.
  struct Frame {
    std::vector<size_t> tgd_sizes;
    std::vector<size_t> ts_sizes;
    size_t trail_size = 0;
  };

  Frame PushFrame() const {
    Frame f;
    f.tgd_sizes.reserve(tgd_cands_.size());
    for (const auto& bucket : tgd_cands_) f.tgd_sizes.push_back(bucket.size());
    f.ts_sizes.reserve(ts_cands_.size());
    for (const auto& bucket : ts_cands_) f.ts_sizes.push_back(bucket.size());
    f.trail_size = satisfied_trail_.size();
    return f;
  }

  void PopFrame(const Frame& f) {
    // Unmark before truncating: a trail entry may point at a candidate
    // this node appended (about to be dropped) or at an ancestor's (kept,
    // and possibly violated again on the next sibling branch).
    while (satisfied_trail_.size() > f.trail_size) {
      auto [bucket, idx] = satisfied_trail_.back();
      satisfied_trail_.pop_back();
      BucketAt(bucket)[idx].satisfied = false;
    }
    for (size_t t = 0; t < tgd_cands_.size(); ++t) {
      tgd_cands_[t].resize(f.tgd_sizes[t]);
    }
    for (size_t j = 0; j < ts_cands_.size(); ++j) {
      ts_cands_[j].resize(f.ts_sizes[j]);
    }
  }

  // Buckets are addressed jointly in the trail: [0, #tgds) are tgd
  // buckets, #tgds + j is ts bucket j.
  std::vector<Candidate>& BucketAt(size_t bucket) {
    return bucket < tgd_cands_.size()
               ? tgd_cands_[bucket]
               : ts_cands_[bucket - tgd_cands_.size()];
  }

  void MarkSatisfied(size_t bucket, size_t idx) {
    BucketAt(bucket)[idx].satisfied = true;
    satisfied_trail_.push_back({bucket, idx});
  }

  // Returns true to abort the entire search (first solution found in
  // non-enumerating mode, or budget exhausted). `since` is the parent
  // snapshot's watermark: everything `k` holds beyond it is what this
  // branch added, and is the only place a new violation can hide (the
  // parent discovered everything up to its own state).
  bool Explore(Instance k, int depth, const InstanceWatermark& since) {
    if (nodes_ >= options_.max_nodes || depth > options_.max_depth) {
      budget_hit_ = true;
      return true;
    }
    ++nodes_;
    obs::Span node_span(obs::Tracer::Global(), "solve.node");
    node_span.AttrInt("depth", depth);

    // Deterministic phase: egd fixpoint, delta-restricted. The merge
    // extras feed candidate discovery below — a merge-enabled trigger
    // binds a dirtied tuple, not necessarily an added fact.
    std::vector<std::vector<int>> extras;
    if (!ApplyEgdFixpoint(&k, since, &extras)) return false;  // clash: dead

    // Memoization (after egds so equivalent states coincide).
    if (!visited_.insert(k.CanonicalFingerprint()).second) return false;

    Frame frame = PushFrame();
    bool stop = ExploreCore(std::move(k), depth, since, extras);
    PopFrame(frame);
    return stop;
  }

  bool ExploreCore(Instance k, int depth, const InstanceWatermark& since,
                   const std::vector<std::vector<int>>& extras) {
    // Incremental trigger maintenance: discover candidates the node's
    // delta (branch additions + merge-dirtied tuples) can have created,
    // then answer the ts check and the pending-trigger search from the
    // cached candidates alone. No full-instance rescans.
    DeltaView delta(k, since, extras);
    if (!DiscoverCandidates(k, delta)) return false;  // permanent ts hit

    TsStatus ts = CheckTsCached(k);
    if (ts == TsStatus::kViolatedPermanent) return false;

    PendingTrigger trigger;
    if (!FindPendingTriggerCached(k, &trigger)) {
      // Fixpoint of Σ_st ∪ Σ_t.
      if (ts != TsStatus::kSatisfied) return false;
      return RecordSolution(k);
    }

    // Branch over witness assignments for the trigger's existential
    // variables: current active domain values, nulls introduced for
    // earlier variables of this same assignment, or one fresh null.
    // Branches fork off a copy-on-write snapshot of the egd-normalized
    // state, so each child costs O(relations touched), not O(instance).
    std::vector<Value> domain = k.ActiveDomain();
    std::vector<VariableId> exist_vars;
    for (VariableId v = 0; v < trigger.tgd->var_count; ++v) {
      if (trigger.tgd->existential[v] && !trigger.binding.bound[v]) {
        exist_vars.push_back(v);
      }
    }
    InstanceSnapshot snapshot(k);
    return BranchOnAssignment(snapshot, depth, *trigger.tgd, trigger.binding,
                              exist_vars, 0, domain);
  }

  // Recursively enumerates assignments for exist_vars[i..): each variable
  // tries every current-domain value, every null invented for an earlier
  // variable of this assignment (those are appended to `domain` as we
  // recurse), and one fresh null.
  bool BranchOnAssignment(const InstanceSnapshot& snapshot, int depth,
                          const Tgd& tgd, Binding binding,
                          const std::vector<VariableId>& exist_vars, size_t i,
                          std::vector<Value>& domain) {
    if (i == exist_vars.size()) {
      Instance k2 = snapshot.Branch();
      for (const Atom& atom : tgd.head) {
        Tuple tuple;
        tuple.reserve(atom.terms.size());
        for (const Term& t : atom.terms) {
          tuple.push_back(t.is_constant() ? t.constant()
                                          : binding.values[t.var()]);
        }
        k2.AddFact(atom.relation, std::move(tuple));
      }
      return Explore(std::move(k2), depth + 1, snapshot.watermark());
    }
    VariableId v = exist_vars[i];
    // Existing values (including nulls invented for earlier variables of
    // this assignment, which BranchOnAssignment appended below).
    size_t domain_size = domain.size();
    for (size_t d = 0; d < domain_size; ++d) {
      binding.Bind(v, domain[d]);
      if (BranchOnAssignment(snapshot, depth, tgd, binding, exist_vars, i + 1,
                             domain)) {
        return true;
      }
    }
    // One fresh null.
    Value fresh = symbols_->FreshNull();
    binding.Bind(v, fresh);
    domain.push_back(fresh);
    bool stop = BranchOnAssignment(snapshot, depth, tgd, binding, exist_vars,
                                   i + 1, domain);
    domain.pop_back();
    return stop;
  }

  // Applies target egds to fixpoint as union-find merges in k's value
  // layer, scanning only triggers that touch facts beyond `since` (the
  // parent state was already egd-clean) or tuples a merge dirtied. The
  // dirty extras are handed back to the caller: they are the merge half
  // of the node's delta, from which new trigger candidates are
  // discovered. Returns false on constant/constant clash.
  bool ApplyEgdFixpoint(Instance* k, const InstanceWatermark& since,
                        std::vector<std::vector<int>>* extras) {
    EgdFixpointOutcome out = RunEgdsToFixpointDelta(
        setting_.target_egds(), k, since,
        std::numeric_limits<int64_t>::max(), symbols_, extras, pool_.get(),
        compiled_ != nullptr ? &compiled_->egds : nullptr);
    return !out.failed;
  }

  // A violated ts trigger is permanent — unrepairable by any later step —
  // when its match resolves to constants only (facts never disappear and
  // target facts only grow), or when Σ_t has no egds to merge its nulls.
  bool IsPermanentViolation(const Instance& k, const Binding& match,
                            int var_count) const {
    if (!has_egds_) return true;
    for (VariableId v = 0; v < var_count; ++v) {
      if (match.bound[v] && k.ResolveValue(match.values[v]).is_null()) {
        return false;
      }
    }
    return true;
  }

  // Appends the candidates this node's delta can have created. A body
  // match absent from every ancestor's delta cannot be newly violated
  // here (its facts all predate `since`, so it was discovered — or
  // filtered as satisfied — when its newest fact or dirtying merge
  // arrived; satisfaction is monotone, so filtered stays satisfied).
  // Satisfied tgd/ts triggers are dropped at discovery for the same
  // monotonicity reason; violated ts triggers that are permanent kill the
  // node: returns false in that case.
  bool DiscoverCandidates(const Instance& k, const DeltaView& delta) {
    for (size_t t = 0; t < tgd_order_.size(); ++t) {
      const Tgd& tgd = *tgd_order_[t];
      if (!TouchesDelta(tgd.body, delta)) continue;
      const plan::TgdPlan* plan =
          compiled_ != nullptr ? &compiled_->tgds[t] : nullptr;
      const auto discover = [&](const Binding& match) {
        ++result_.candidates_discovered;
        const bool satisfied =
            plan != nullptr
                ? HasMatchPlanned(plan->head, k, match)
                : HasMatch(tgd.head, tgd.var_count, k, match);
        if (!satisfied) {
          tgd_cands_[t].push_back({match, false});
        }
        return true;
      };
      if (plan != nullptr) {
        EnumerateMatchesDeltaPlanned(plan->body, k, delta,
                                     Binding::Empty(tgd.var_count), discover);
      } else {
        EnumerateMatchesDelta(tgd.body, tgd.var_count, k, delta,
                              Binding::Empty(tgd.var_count), discover);
      }
    }
    bool permanent = false;
    for (size_t j = 0; j < ts_deps_.size() && !permanent; ++j) {
      const TsDep& dep = ts_deps_[j];
      if (!TouchesDelta(*dep.body, delta)) continue;
      const auto discover = [&](const Binding& match) {
        ++result_.candidates_discovered;
        for (const std::vector<Atom>* head : dep.heads) {
          if (HasMatch(*head, dep.var_count, k, match)) return true;
        }
        if (IsPermanentViolation(k, match, dep.var_count)) {
          permanent = true;
          return false;  // stop: the node is dead
        }
        ts_cands_[j].push_back({match, false});
        return true;
      };
      if (!ts_body_plans_.empty()) {
        EnumerateMatchesDeltaPlanned(ts_body_plans_[j], k, delta,
                                     Binding::Empty(dep.var_count), discover);
      } else {
        EnumerateMatchesDelta(*dep.body, dep.var_count, k, delta,
                              Binding::Empty(dep.var_count), discover);
      }
    }
    return !permanent;
  }

  // The ts check over cached candidates: every stored candidate was
  // violated-but-fixable when discovered; test whether an egd merge since
  // then repaired it (mark and skip from now on), left it fixable, or
  // ground it down to all constants (permanent: prune). Candidates from
  // ancestor frames are visible here — exactly the triggers of the
  // current path — and nothing else needs re-checking: satisfied ts
  // triggers stay satisfied under additions and merges.
  TsStatus CheckTsCached(const Instance& k) {
    TsStatus status = TsStatus::kSatisfied;
    for (size_t j = 0; j < ts_cands_.size(); ++j) {
      const TsDep& dep = ts_deps_[j];
      std::vector<Candidate>& bucket = ts_cands_[j];
      for (size_t c = 0; c < bucket.size(); ++c) {
        if (bucket[c].satisfied) continue;
        ++result_.candidate_checks;
        bool sat = false;
        for (const std::vector<Atom>* head : dep.heads) {
          if (HasMatch(*head, dep.var_count, k, bucket[c].binding)) {
            sat = true;
            break;
          }
        }
        if (sat) {
          MarkSatisfied(tgd_cands_.size() + j, c);
          continue;
        }
        if (IsPermanentViolation(k, bucket[c].binding, dep.var_count)) {
          return TsStatus::kViolatedPermanent;
        }
        status = TsStatus::kViolatedFixable;
      }
    }
    return status;
  }

  // Finds one violated Σ_st or Σ_t tgd trigger among the cached
  // candidates. Returns false at fixpoint. Full tgds are scanned first:
  // their steps are deterministic (no branching), so exhausting them
  // before guessing existential witnesses both shrinks the tree and lets
  // the Σ_ts pruning fire earlier. Candidates found satisfied are marked
  // (with undo on backtrack), so along one DFS path each repaired
  // candidate costs one test, not one per node.
  bool FindPendingTriggerCached(const Instance& k, PendingTrigger* out) {
    for (bool full_pass : {true, false}) {
      for (size_t t = 0; t < tgd_order_.size(); ++t) {
        const Tgd& tgd = *tgd_order_[t];
        if (tgd.IsFull() != full_pass) continue;
        std::vector<Candidate>& bucket = tgd_cands_[t];
        const plan::TgdPlan* plan =
            compiled_ != nullptr ? &compiled_->tgds[t] : nullptr;
        for (size_t c = 0; c < bucket.size(); ++c) {
          if (bucket[c].satisfied) continue;
          ++result_.candidate_checks;
          const bool satisfied =
              plan != nullptr
                  ? HasMatchPlanned(plan->head, k, bucket[c].binding)
                  : HasMatch(tgd.head, tgd.var_count, k, bucket[c].binding);
          if (satisfied) {
            MarkSatisfied(t, c);
            continue;
          }
          out->tgd = &tgd;
          // Re-resolve: the stored match may hold nulls merged away since
          // discovery; head instantiation must use current roots.
          out->binding = bucket[c].binding;
          for (VariableId v = 0; v < tgd.var_count; ++v) {
            if (out->binding.bound[v]) {
              out->binding.values[v] = k.ResolveValue(out->binding.values[v]);
            }
          }
          return true;
        }
      }
    }
    return false;
  }

  // Records the target part of `k` as a solution. Returns true if the
  // search should stop (non-enumerating mode).
  bool RecordSolution(const Instance& k) {
    Instance target_part = setting_.TargetPart(k);
    found_ = true;
    if (!result_.solution.has_value()) {
      result_.solution = target_part;
    }
    if (!options_.enumerate_all) return true;
    if (solution_fps_.insert(target_part.CanonicalFingerprint()).second) {
      result_.solutions.push_back(std::move(target_part));
    }
    return false;
  }

  const PdeSetting& setting_;
  SymbolTable* symbols_;
  GenericSolverOptions options_;
  bool has_egds_;
  int64_t nodes_ = 0;
  bool budget_hit_ = false;
  bool found_ = false;
  std::unordered_set<uint64_t> visited_;
  std::unordered_set<uint64_t> solution_fps_;
  // The violated-trigger cache: per-dependency candidate buckets
  // maintained by the DFS frames (append at discovery, truncate on
  // backtrack), plus the undo trail of satisfied marks.
  std::vector<const Tgd*> tgd_order_;
  std::vector<std::vector<Candidate>> tgd_cands_;
  std::vector<TsDep> ts_deps_;
  std::vector<std::vector<Candidate>> ts_cands_;
  std::vector<std::pair<size_t, size_t>> satisfied_trail_;
  GenericSolveResult result_;
  std::unique_ptr<ThreadPool> pool_;  // egd-fixpoint collection only
  // Compiled plans: compiled_->tgds parallel to tgd_order_, compiled_->egds
  // parallel to setting_.target_egds(); ts_body_plans_ parallel to
  // ts_deps_. All empty/null when interpreting.
  std::shared_ptr<const plan::CompiledSetting> compiled_;
  std::vector<plan::BodyPlan> ts_body_plans_;
};

}  // namespace

StatusOr<GenericSolveResult> GenericExistsSolution(
    const PdeSetting& setting, const Instance& source, const Instance& target,
    SymbolTable* symbols, const GenericSolverOptions& options) {
  PDX_CHECK(symbols != nullptr);
  PDX_RETURN_IF_ERROR(setting.ValidateSourceInstance(source));
  PDX_RETURN_IF_ERROR(setting.ValidateTargetInstance(target));
  Searcher searcher(setting, symbols, options);
  return searcher.Run(setting.CombineInstances(source, target));
}

StatusOr<IncrementalSolveResult> GenericExistsSolutionIncremental(
    const PdeSetting& setting, const Instance& source, const Instance& target,
    const Instance* prior_witness, SymbolTable* symbols,
    const GenericSolverOptions& options) {
  PDX_CHECK(symbols != nullptr);
  IncrementalSolveResult out;
  if (prior_witness != nullptr &&
      IsSolution(setting, source, target, *prior_witness, *symbols)) {
    SolverMetrics::Get().witness_revalidated.Inc();
    out.result.outcome = SolveOutcome::kSolutionFound;
    out.result.solution = *prior_witness;
    out.revalidated = true;
    return out;
  }
  auto solved = GenericExistsSolution(setting, source, target, symbols,
                                      options);
  if (!solved.ok()) return solved.status();
  out.result = std::move(solved).value();
  return out;
}

}  // namespace pdx
