#include "pde/generic_solver.h"

#include <limits>
#include <unordered_set>

#include "chase/chase.h"
#include "hom/matcher.h"
#include "relational/snapshot.h"

namespace pdx {

namespace {

enum class TsStatus {
  kSatisfied,
  kViolatedPermanent,  // no later step can repair it: prune
  kViolatedFixable,    // violated only on triggers with nulls, and Σ_t has
                       // egds that might merge them later
};

// A violated st/t tgd trigger to branch on.
struct PendingTrigger {
  const Tgd* tgd = nullptr;
  Binding binding;
};

class Searcher {
 public:
  Searcher(const PdeSetting& setting, SymbolTable* symbols,
           const GenericSolverOptions& options)
      : setting_(setting),
        symbols_(symbols),
        options_(options),
        has_egds_(!setting.target_egds().empty()) {}

  GenericSolveResult Run(Instance start) {
    // At the root everything is "new", so the first egd pass is a full
    // scan; below the root, children only re-examine what they added.
    InstanceWatermark origin = InstanceWatermark::Origin(start);
    Explore(std::move(start), 0, origin);
    result_.nodes_explored = nodes_;
    if (budget_hit_ && !found_) {
      result_.outcome = SolveOutcome::kBudgetExhausted;
    } else if (budget_hit_ && options_.enumerate_all) {
      // Found some solutions but could not finish the enumeration.
      result_.outcome = SolveOutcome::kBudgetExhausted;
    } else if (found_) {
      result_.outcome = SolveOutcome::kSolutionFound;
    } else {
      result_.outcome = SolveOutcome::kNoSolution;
    }
    return std::move(result_);
  }

 private:
  // Returns true to abort the entire search (first solution found in
  // non-enumerating mode, or budget exhausted). `since` is the parent
  // snapshot's watermark: everything `k` holds beyond it is what this
  // branch added, and is the only place a new egd violation can hide
  // (the parent ran its own egd fixpoint before branching).
  bool Explore(Instance k, int depth, const InstanceWatermark& since) {
    if (nodes_ >= options_.max_nodes || depth > options_.max_depth) {
      budget_hit_ = true;
      return true;
    }
    ++nodes_;

    // Deterministic phase: egd fixpoint, delta-restricted.
    if (!ApplyEgdFixpoint(&k, since)) return false;  // constant clash: dead

    // Memoization (after egds so equivalent states coincide).
    if (!visited_.insert(k.CanonicalFingerprint()).second) return false;

    TsStatus ts = CheckTsConstraints(k);
    if (ts == TsStatus::kViolatedPermanent) return false;

    PendingTrigger trigger;
    if (!FindPendingTrigger(k, &trigger)) {
      // Fixpoint of Σ_st ∪ Σ_t.
      if (ts != TsStatus::kSatisfied) return false;
      return RecordSolution(k);
    }

    // Branch over witness assignments for the trigger's existential
    // variables: current active domain values, nulls introduced for
    // earlier variables of this same assignment, or one fresh null.
    // Branches fork off a copy-on-write snapshot of the egd-normalized
    // state, so each child costs O(relations touched), not O(instance).
    std::vector<Value> domain = k.ActiveDomain();
    std::vector<VariableId> exist_vars;
    for (VariableId v = 0; v < trigger.tgd->var_count; ++v) {
      if (trigger.tgd->existential[v] && !trigger.binding.bound[v]) {
        exist_vars.push_back(v);
      }
    }
    InstanceSnapshot snapshot(k);
    return BranchOnAssignment(snapshot, depth, *trigger.tgd, trigger.binding,
                              exist_vars, 0, domain);
  }

  // Recursively enumerates assignments for exist_vars[i..): each variable
  // tries every current-domain value, every null invented for an earlier
  // variable of this assignment (those are appended to `domain` as we
  // recurse), and one fresh null.
  bool BranchOnAssignment(const InstanceSnapshot& snapshot, int depth,
                          const Tgd& tgd, Binding binding,
                          const std::vector<VariableId>& exist_vars, size_t i,
                          std::vector<Value>& domain) {
    if (i == exist_vars.size()) {
      Instance k2 = snapshot.Branch();
      for (const Atom& atom : tgd.head) {
        Tuple tuple;
        tuple.reserve(atom.terms.size());
        for (const Term& t : atom.terms) {
          tuple.push_back(t.is_constant() ? t.constant()
                                          : binding.values[t.var()]);
        }
        k2.AddFact(atom.relation, std::move(tuple));
      }
      return Explore(std::move(k2), depth + 1, snapshot.watermark());
    }
    VariableId v = exist_vars[i];
    // Existing values (including nulls invented for earlier variables of
    // this assignment, which BranchOnAssignment appended below).
    size_t domain_size = domain.size();
    for (size_t d = 0; d < domain_size; ++d) {
      binding.Bind(v, domain[d]);
      if (BranchOnAssignment(snapshot, depth, tgd, binding, exist_vars, i + 1,
                             domain)) {
        return true;
      }
    }
    // One fresh null.
    Value fresh = symbols_->FreshNull();
    binding.Bind(v, fresh);
    domain.push_back(fresh);
    bool stop = BranchOnAssignment(snapshot, depth, tgd, binding, exist_vars,
                                   i + 1, domain);
    domain.pop_back();
    return stop;
  }

  // Applies target egds to fixpoint as union-find merges in k's value
  // layer, scanning only triggers that touch facts beyond `since` (the
  // parent state was already egd-clean) or tuples a merge dirtied. The
  // dirty extras are not needed afterwards: the trigger search below this
  // point is a full resolved scan. Returns false on constant/constant
  // clash.
  bool ApplyEgdFixpoint(Instance* k, const InstanceWatermark& since) {
    std::vector<std::vector<int>> extras;
    EgdFixpointOutcome out = RunEgdsToFixpointDelta(
        setting_.target_egds(), k, since,
        std::numeric_limits<int64_t>::max(), symbols_, &extras);
    return !out.failed;
  }

  TsStatus CheckTsConstraints(const Instance& k) {
    TsStatus status = TsStatus::kSatisfied;
    for (const Tgd& tgd : setting_.ts_tgds()) {
      TsStatus s = CheckOneTs(k, tgd.body, {&tgd.head}, tgd.var_count);
      if (s == TsStatus::kViolatedPermanent) return s;
      if (s == TsStatus::kViolatedFixable) status = s;
    }
    for (const DisjunctiveTgd& tgd : setting_.ts_disjunctive_tgds()) {
      std::vector<const std::vector<Atom>*> heads;
      heads.reserve(tgd.head_disjuncts.size());
      for (const std::vector<Atom>& d : tgd.head_disjuncts) {
        heads.push_back(&d);
      }
      TsStatus s = CheckOneTs(k, tgd.body, heads, tgd.var_count);
      if (s == TsStatus::kViolatedPermanent) return s;
      if (s == TsStatus::kViolatedFixable) status = s;
    }
    return status;
  }

  // Checks one (possibly disjunctive) ts dependency: every body match must
  // extend into some head option. Source facts never change and target
  // facts only grow, so a violated trigger whose body match uses only
  // constants can never be repaired; triggers involving nulls may be
  // repaired by a later egd merge (only possible when Σ_t has egds).
  TsStatus CheckOneTs(const Instance& k, const std::vector<Atom>& body,
                      const std::vector<const std::vector<Atom>*>& heads,
                      int var_count) {
    TsStatus status = TsStatus::kSatisfied;
    EnumerateMatches(
        body, var_count, k, Binding::Empty(var_count),
        [&](const Binding& match) {
          for (const std::vector<Atom>* head : heads) {
            if (HasMatch(*head, var_count, k, match)) return true;
          }
          // Violated trigger.
          bool all_constants = true;
          for (VariableId v = 0; v < var_count; ++v) {
            if (match.bound[v] && match.values[v].is_null()) {
              all_constants = false;
              break;
            }
          }
          if (all_constants || !has_egds_) {
            status = TsStatus::kViolatedPermanent;
            return false;  // stop
          }
          status = TsStatus::kViolatedFixable;
          return true;  // keep scanning; a permanent violation would win
        });
    return status;
  }

  // Finds one violated Σ_st or Σ_t tgd trigger. Returns false at fixpoint.
  // Full tgds are scanned first: their steps are deterministic (no
  // branching), so exhausting them before guessing existential witnesses
  // both shrinks the tree and lets the Σ_ts pruning fire earlier.
  bool FindPendingTrigger(const Instance& k, PendingTrigger* out) {
    for (bool full_pass : {true, false}) {
      for (const std::vector<Tgd>* tgds :
           {&setting_.st_tgds(), &setting_.target_tgds()}) {
        for (const Tgd& tgd : *tgds) {
          if (tgd.IsFull() != full_pass) continue;
          bool found = EnumerateMatches(
              tgd.body, tgd.var_count, k, Binding::Empty(tgd.var_count),
              [&](const Binding& match) {
                if (HasMatch(tgd.head, tgd.var_count, k, match)) {
                  return true;  // satisfied; keep searching
                }
                out->tgd = &tgd;
                out->binding = match;
                return false;
              });
          if (found) return true;
        }
      }
    }
    return false;
  }

  // Records the target part of `k` as a solution. Returns true if the
  // search should stop (non-enumerating mode).
  bool RecordSolution(const Instance& k) {
    Instance target_part = setting_.TargetPart(k);
    found_ = true;
    if (!result_.solution.has_value()) {
      result_.solution = target_part;
    }
    if (!options_.enumerate_all) return true;
    if (solution_fps_.insert(target_part.CanonicalFingerprint()).second) {
      result_.solutions.push_back(std::move(target_part));
    }
    return false;
  }

  const PdeSetting& setting_;
  SymbolTable* symbols_;
  GenericSolverOptions options_;
  bool has_egds_;
  int64_t nodes_ = 0;
  bool budget_hit_ = false;
  bool found_ = false;
  std::unordered_set<uint64_t> visited_;
  std::unordered_set<uint64_t> solution_fps_;
  GenericSolveResult result_;
};

}  // namespace

StatusOr<GenericSolveResult> GenericExistsSolution(
    const PdeSetting& setting, const Instance& source, const Instance& target,
    SymbolTable* symbols, const GenericSolverOptions& options) {
  PDX_CHECK(symbols != nullptr);
  PDX_RETURN_IF_ERROR(setting.ValidateSourceInstance(source));
  PDX_RETURN_IF_ERROR(setting.ValidateTargetInstance(target));
  Searcher searcher(setting, symbols, options);
  return searcher.Run(setting.CombineInstances(source, target));
}

}  // namespace pdx
