#ifndef PDX_PDE_ANALYSIS_H_
#define PDX_PDE_ANALYSIS_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "pde/setting.h"
#include "relational/value.h"

namespace pdx {

// Static analysis of a PDE setting's dependency sets, built on the chase
// implication procedure ([3]).
struct SettingAnalysis {
  // Whether implication analysis could run: it needs the combined tgd set
  // Σ_st ∪ Σ_ts ∪ Σ_t to be weakly acyclic (Σ_st/Σ_ts cycles through
  // existentials make the implication chase non-terminating in general).
  bool implication_available = false;
  // Human-readable notes: one entry per dependency implied by the others
  // (a redundant dependency can be dropped without changing the space of
  // solutions).
  std::vector<std::string> redundant_dependencies;
  // Chase-growth diagnostics for Σ_st ∪ Σ_t (the fact-generating sets).
  bool generating_sets_weakly_acyclic = false;
  int max_rank = -1;
};

// Analyzes `setting`: redundancy of each dependency w.r.t. the others and
// chase-growth characteristics. Never fails on valid settings; analyses
// that do not apply are reported via the flags above.
SettingAnalysis AnalyzeSetting(const PdeSetting& setting,
                               SymbolTable* symbols);

}  // namespace pdx

#endif  // PDX_PDE_ANALYSIS_H_
