#include "pde/multi_pde.h"

#include "base/string_util.h"

namespace pdx {

StatusOr<PdeSetting> MergeMultiPde(
    const std::vector<PeerSpec>& peers,
    const std::vector<RelationSchema>& target_relations,
    SymbolTable* symbols) {
  if (peers.empty()) {
    return InvalidArgumentError("multi-PDE needs at least one source peer");
  }
  std::vector<RelationSchema> merged_sources;
  std::vector<std::string> st_parts;
  std::vector<std::string> ts_parts;
  std::vector<std::string> t_parts;
  for (const PeerSpec& peer : peers) {
    merged_sources.insert(merged_sources.end(), peer.source_relations.begin(),
                          peer.source_relations.end());
    st_parts.push_back(peer.sigma_st);
    ts_parts.push_back(peer.sigma_ts);
    t_parts.push_back(peer.sigma_t);
  }
  // PdeSetting::Create rejects duplicate relation names, enforcing the
  // pairwise-disjointness requirement on S_1, ..., S_n.
  return PdeSetting::Create(merged_sources, target_relations,
                            StrJoin(st_parts, "\n"), StrJoin(ts_parts, "\n"),
                            StrJoin(t_parts, "\n"), symbols);
}

}  // namespace pdx
