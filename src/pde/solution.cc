#include "pde/solution.h"

#include "base/string_util.h"
#include "chase/chase.h"

namespace pdx {

SolutionCheck CheckSolution(const PdeSetting& setting, const Instance& source,
                            const Instance& target, const Instance& j_prime,
                            const SymbolTable& symbols) {
  SolutionCheck check;
  const Schema& schema = setting.schema();

  if (!setting.ValidateTargetInstance(j_prime).ok()) {
    check.is_solution = false;
    check.violations.push_back(
        "candidate solution populates source relations");
  }
  if (!target.IsSubsetOf(j_prime)) {
    check.is_solution = false;
    check.violations.push_back("J is not contained in J'");
  }

  Instance combined = setting.CombineInstances(source, j_prime);
  for (const Tgd& tgd : setting.st_tgds()) {
    if (!SatisfiesTgd(combined, tgd)) {
      check.is_solution = false;
      check.violations.push_back(
          StrCat("violated Σst tgd: ", tgd.ToString(schema, symbols)));
    }
  }
  for (const Tgd& tgd : setting.ts_tgds()) {
    if (!SatisfiesTgd(combined, tgd)) {
      check.is_solution = false;
      check.violations.push_back(
          StrCat("violated Σts tgd: ", tgd.ToString(schema, symbols)));
    }
  }
  for (const DisjunctiveTgd& tgd : setting.ts_disjunctive_tgds()) {
    if (!SatisfiesDisjunctiveTgd(combined, tgd)) {
      check.is_solution = false;
      check.violations.push_back(StrCat("violated Σts disjunctive tgd: ",
                                        tgd.ToString(schema, symbols)));
    }
  }
  for (const Tgd& tgd : setting.target_tgds()) {
    if (!SatisfiesTgd(j_prime, tgd)) {
      check.is_solution = false;
      check.violations.push_back(
          StrCat("violated Σt tgd: ", tgd.ToString(schema, symbols)));
    }
  }
  for (const Egd& egd : setting.target_egds()) {
    if (!SatisfiesEgd(j_prime, egd)) {
      check.is_solution = false;
      check.violations.push_back(
          StrCat("violated Σt egd: ", egd.ToString(schema, symbols)));
    }
  }
  return check;
}

bool IsSolution(const PdeSetting& setting, const Instance& source,
                const Instance& target, const Instance& j_prime,
                const SymbolTable& symbols) {
  return CheckSolution(setting, source, target, j_prime, symbols).is_solution;
}

}  // namespace pdx
