#include "pde/exact_views.h"

#include "base/string_util.h"

namespace pdx {

StatusOr<PdeSetting> MakeExactViewSetting(
    const std::vector<RelationSchema>& source_relations,
    const std::vector<RelationSchema>& target_relations,
    const std::vector<ExactViewDef>& views, SymbolTable* symbols) {
  if (views.empty()) {
    return InvalidArgumentError("exact-view setting needs at least one view");
  }
  std::vector<std::string> st_lines;
  std::vector<std::string> ts_lines;
  for (const ExactViewDef& view : views) {
    if (view.source_query.empty() || view.target_view.empty()) {
      return InvalidArgumentError("exact view with an empty side");
    }
    // Soundness: φ(x) -> ∃y ψ(x,y). Variables local to ψ become implicit
    // existentials in the parser.
    st_lines.push_back(
        StrCat(view.source_query, " -> ", view.target_view, "."));
    // Exactness: ψ(x,y) -> ∃z φ(x,z) likewise.
    ts_lines.push_back(
        StrCat(view.target_view, " -> ", view.source_query, "."));
  }
  return PdeSetting::Create(source_relations, target_relations,
                            StrJoin(st_lines, "\n"), StrJoin(ts_lines, "\n"),
                            "", symbols);
}

}  // namespace pdx
