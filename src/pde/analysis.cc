#include "pde/analysis.h"

#include "base/string_util.h"
#include "logic/dependency_graph.h"
#include "logic/implication.h"

namespace pdx {

namespace {

// All plain tgds of the setting, in a stable order with labels.
struct LabeledTgd {
  const Tgd* tgd;
  const char* set_name;
};

std::vector<LabeledTgd> AllTgds(const PdeSetting& setting) {
  std::vector<LabeledTgd> all;
  for (const Tgd& tgd : setting.st_tgds()) all.push_back({&tgd, "Σst"});
  for (const Tgd& tgd : setting.ts_tgds()) all.push_back({&tgd, "Σts"});
  for (const Tgd& tgd : setting.target_tgds()) all.push_back({&tgd, "Σt"});
  return all;
}

}  // namespace

SettingAnalysis AnalyzeSetting(const PdeSetting& setting,
                               SymbolTable* symbols) {
  SettingAnalysis analysis;
  const Schema& schema = setting.schema();

  std::vector<LabeledTgd> all = AllTgds(setting);
  std::vector<Tgd> combined;
  combined.reserve(all.size());
  for (const LabeledTgd& labeled : all) combined.push_back(*labeled.tgd);

  // Chase-growth diagnostics over the generating direction Σ_st ∪ Σ_t.
  std::vector<Tgd> generating = setting.st_tgds();
  generating.insert(generating.end(), setting.target_tgds().begin(),
                    setting.target_tgds().end());
  PositionDependencyGraph graph(generating, schema);
  analysis.generating_sets_weakly_acyclic = graph.IsWeaklyAcyclic();
  analysis.max_rank = graph.MaxRank();

  // Redundancy needs the full combined set to be weakly acyclic (and no
  // disjunctive ts-tgds, which the implication engine does not support).
  analysis.implication_available =
      setting.ts_disjunctive_tgds().empty() &&
      IsWeaklyAcyclic(combined, schema);
  if (!analysis.implication_available) return analysis;

  DependencySet sigma;
  sigma.egds = setting.target_egds();
  for (size_t i = 0; i < all.size(); ++i) {
    sigma.tgds.clear();
    for (size_t j = 0; j < all.size(); ++j) {
      if (j != i) sigma.tgds.push_back(*all[j].tgd);
    }
    StatusOr<bool> implied =
        ImpliesTgd(sigma, *all[i].tgd, schema, symbols);
    if (implied.ok() && *implied) {
      analysis.redundant_dependencies.push_back(
          StrCat(all[i].set_name, ": ",
                 all[i].tgd->ToString(schema, *symbols),
                 "  (implied by the remaining dependencies)"));
    }
  }
  // Egds of Σ_t against the rest.
  for (size_t i = 0; i < setting.target_egds().size(); ++i) {
    DependencySet rest;
    rest.tgds = combined;
    for (size_t j = 0; j < setting.target_egds().size(); ++j) {
      if (j != i) rest.egds.push_back(setting.target_egds()[j]);
    }
    StatusOr<bool> implied =
        ImpliesEgd(rest, setting.target_egds()[i], schema, symbols);
    if (implied.ok() && *implied) {
      analysis.redundant_dependencies.push_back(
          StrCat("Σt: ", setting.target_egds()[i].ToString(schema, *symbols),
                 "  (implied by the remaining dependencies)"));
    }
  }
  return analysis;
}

}  // namespace pdx
