#ifndef PDX_PDE_MINIMIZE_H_
#define PDX_PDE_MINIMIZE_H_

#include "base/status.h"
#include "pde/setting.h"
#include "relational/instance.h"
#include "relational/value.h"

namespace pdx {

// Shrinks a solution to a ⊆-minimal one: returns J* ⊆ `solution` such
// that J* is still a solution for (I, J) and no proper subset of J*
// containing J is. Greedy: repeatedly drop a removable fact until fixpoint
// (quadratically many solution checks; fine at library scale).
//
// Lemma 2 guarantees small solutions exist inside any solution; this
// utility materializes one, which is what a target peer actually wants to
// persist after an exchange (no redundant imported facts).
//
// Preconditions: `solution` verifies against Definition 2 (checked;
// kFailedPrecondition otherwise).
StatusOr<Instance> MinimizeSolution(const PdeSetting& setting,
                                    const Instance& source,
                                    const Instance& target,
                                    const Instance& solution,
                                    const SymbolTable& symbols);

// True if removing any single fact of `solution` outside J breaks
// solutionhood (i.e. the solution is ⊆-minimal).
bool IsMinimalSolution(const PdeSetting& setting, const Instance& source,
                       const Instance& target, const Instance& solution,
                       const SymbolTable& symbols);

}  // namespace pdx

#endif  // PDX_PDE_MINIMIZE_H_
