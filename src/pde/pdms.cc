#include "pde/pdms.h"

#include "base/string_util.h"
#include "chase/chase.h"

namespace pdx {

std::string PdmsDescription::ToString() const {
  std::vector<std::string> lines;
  for (const StorageDescription& d : storage_descriptions) {
    lines.push_back(StrCat(d.local_relation, d.is_equality ? " = " : " ⊆ ",
                           d.peer_relation));
  }
  for (const std::string& m : peer_mappings) {
    lines.push_back(StrCat("mapping: ", m));
  }
  return StrJoin(lines, "\n");
}

PdmsDescription BuildPdms(const PdeSetting& setting,
                          const SymbolTable& symbols) {
  PdmsDescription pdms;
  const Schema& schema = setting.schema();
  for (RelationId r = 0; r < schema.relation_count(); ++r) {
    StorageDescription d;
    d.peer_relation = schema.relation_name(r);
    d.local_relation = StrCat(d.peer_relation, "*");
    d.is_equality = setting.is_source(r);
    pdms.storage_descriptions.push_back(std::move(d));
  }
  for (const Tgd& tgd : setting.st_tgds()) {
    pdms.peer_mappings.push_back(tgd.ToString(schema, symbols));
  }
  for (const Tgd& tgd : setting.ts_tgds()) {
    pdms.peer_mappings.push_back(tgd.ToString(schema, symbols));
  }
  for (const DisjunctiveTgd& tgd : setting.ts_disjunctive_tgds()) {
    pdms.peer_mappings.push_back(tgd.ToString(schema, symbols));
  }
  for (const Tgd& tgd : setting.target_tgds()) {
    pdms.peer_mappings.push_back(tgd.ToString(schema, symbols));
  }
  for (const Egd& egd : setting.target_egds()) {
    pdms.peer_mappings.push_back(egd.ToString(schema, symbols));
  }
  return pdms;
}

bool IsConsistentPdmsInstance(const PdeSetting& setting,
                              const Instance& i_star, const Instance& j_star,
                              const Instance& i, const Instance& k,
                              const SymbolTable& symbols) {
  (void)symbols;
  // Equality storage descriptions: I* = I.
  if (!i_star.FactsEqual(i)) return false;
  // Containment storage descriptions: J* ⊆ K.
  if (!j_star.IsSubsetOf(k)) return false;
  // Peer mappings on the combined instance (I, K).
  Instance combined = setting.CombineInstances(i, k);
  for (const Tgd& tgd : setting.st_tgds()) {
    if (!SatisfiesTgd(combined, tgd)) return false;
  }
  for (const Tgd& tgd : setting.ts_tgds()) {
    if (!SatisfiesTgd(combined, tgd)) return false;
  }
  for (const DisjunctiveTgd& tgd : setting.ts_disjunctive_tgds()) {
    if (!SatisfiesDisjunctiveTgd(combined, tgd)) return false;
  }
  for (const Tgd& tgd : setting.target_tgds()) {
    if (!SatisfiesTgd(combined, tgd)) return false;
  }
  for (const Egd& egd : setting.target_egds()) {
    if (!SatisfiesEgd(combined, egd)) return false;
  }
  return true;
}

}  // namespace pdx
