#ifndef PDX_PDE_EXACT_VIEWS_H_
#define PDX_PDE_EXACT_VIEWS_H_

#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "pde/setting.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace pdx {

// Section 2 observation: peer data exchange captures GLAV data
// integration with *exact* views. An exact view pairs
//     φ(x) -> ∃y ψ(x,y)        (the view is sound: it contains the query)
//     ψ(x,y) -> φ(x)           (the view is exact: nothing else)
// where φ is a conjunction over the source and ψ over the target. This
// helper builds a PDE setting from a list of such view definitions.
struct ExactViewDef {
  // The two sides, written as conjunctions in the parser syntax with
  // shared variable names, e.g.
  //   source_query = "Emp(e,d) & Dept(d,m)"
  //   target_view  = "WorksFor(e,m)"
  // Variables occurring only in target_view are existential in the sound
  // direction; variables occurring only in source_query are existential
  // in the exactness direction.
  std::string source_query;
  std::string target_view;
};

// Builds the PDE setting whose Σ_st/Σ_ts encode the given exact views.
// The resulting Σ_ts tgds have the target view as LHS; when every view's
// target side is a single atom without repeated variables the setting is
// LAV-with-exact-views and lands in C_tract (Corollary 2).
StatusOr<PdeSetting> MakeExactViewSetting(
    const std::vector<RelationSchema>& source_relations,
    const std::vector<RelationSchema>& target_relations,
    const std::vector<ExactViewDef>& views, SymbolTable* symbols);

}  // namespace pdx

#endif  // PDX_PDE_EXACT_VIEWS_H_
