#include "pde/setting.h"

#include "base/string_util.h"
#include "logic/dependency_graph.h"
#include "logic/parser.h"

namespace pdx {

namespace {

Status CheckSided(const std::vector<Atom>& atoms,
                  const std::vector<bool>& allowed, const Schema& schema,
                  const char* what, const char* side) {
  if (!AtomsWithin(atoms, allowed)) {
    for (const Atom& atom : atoms) {
      if (!allowed[atom.relation]) {
        return InvalidArgumentError(
            StrCat(what, " mentions relation ",
                   schema.relation_name(atom.relation),
                   " which is not a ", side, " relation"));
      }
    }
  }
  return OkStatus();
}

}  // namespace

StatusOr<PdeSetting> PdeSetting::Create(
    const std::vector<RelationSchema>& source_relations,
    const std::vector<RelationSchema>& target_relations,
    std::string_view sigma_st, std::string_view sigma_ts,
    std::string_view sigma_t, SymbolTable* symbols) {
  PDX_CHECK(symbols != nullptr);
  PdeSetting setting;
  setting.schema_ = std::make_unique<Schema>();
  for (const RelationSchema& r : source_relations) {
    PDX_ASSIGN_OR_RETURN(RelationId id,
                         setting.schema_->AddRelation(r.name, r.arity));
    (void)id;
  }
  setting.source_count_ = setting.schema_->relation_count();
  for (const RelationSchema& r : target_relations) {
    PDX_ASSIGN_OR_RETURN(RelationId id,
                         setting.schema_->AddRelation(r.name, r.arity));
    (void)id;
  }
  const Schema& schema = *setting.schema_;
  setting.is_source_.assign(schema.relation_count(), false);
  for (RelationId r = 0; r < setting.source_count_; ++r) {
    setting.is_source_[r] = true;
  }
  std::vector<bool> source_allowed = setting.is_source_;
  std::vector<bool> target_allowed(schema.relation_count(), false);
  for (RelationId r = setting.source_count_; r < schema.relation_count();
       ++r) {
    target_allowed[r] = true;
  }

  // Σ_st: tgds from S to T, no egds, no disjunction.
  {
    PDX_ASSIGN_OR_RETURN(DependencySet deps,
                         ParseDependencies(sigma_st, schema, symbols));
    if (!deps.egds.empty() || !deps.disjunctive_tgds.empty()) {
      return InvalidArgumentError(
          "Σ_st must consist of plain tgds (no egds, no disjunction)");
    }
    for (const Tgd& tgd : deps.tgds) {
      PDX_RETURN_IF_ERROR(CheckSided(tgd.body, source_allowed, schema,
                                     "Σ_st tgd body", "source"));
      PDX_RETURN_IF_ERROR(CheckSided(tgd.head, target_allowed, schema,
                                     "Σ_st tgd head", "target"));
    }
    setting.st_tgds_ = std::move(deps.tgds);
  }

  // Σ_ts: tgds from T to S; disjunctive heads allowed as an extension.
  {
    PDX_ASSIGN_OR_RETURN(DependencySet deps,
                         ParseDependencies(sigma_ts, schema, symbols));
    if (!deps.egds.empty()) {
      return InvalidArgumentError("Σ_ts must not contain egds");
    }
    for (const Tgd& tgd : deps.tgds) {
      PDX_RETURN_IF_ERROR(CheckSided(tgd.body, target_allowed, schema,
                                     "Σ_ts tgd body", "target"));
      PDX_RETURN_IF_ERROR(CheckSided(tgd.head, source_allowed, schema,
                                     "Σ_ts tgd head", "source"));
    }
    for (const DisjunctiveTgd& tgd : deps.disjunctive_tgds) {
      PDX_RETURN_IF_ERROR(CheckSided(tgd.body, target_allowed, schema,
                                     "Σ_ts disjunctive tgd body", "target"));
      for (const std::vector<Atom>& disjunct : tgd.head_disjuncts) {
        PDX_RETURN_IF_ERROR(CheckSided(disjunct, source_allowed, schema,
                                       "Σ_ts disjunctive tgd head",
                                       "source"));
      }
    }
    setting.ts_tgds_ = std::move(deps.tgds);
    setting.ts_disjunctive_tgds_ = std::move(deps.disjunctive_tgds);
  }

  // Σ_t: tgds and egds over T only.
  {
    PDX_ASSIGN_OR_RETURN(DependencySet deps,
                         ParseDependencies(sigma_t, schema, symbols));
    if (!deps.disjunctive_tgds.empty()) {
      return InvalidArgumentError("Σ_t must not contain disjunctive tgds");
    }
    for (const Tgd& tgd : deps.tgds) {
      PDX_RETURN_IF_ERROR(CheckSided(tgd.body, target_allowed, schema,
                                     "Σ_t tgd body", "target"));
      PDX_RETURN_IF_ERROR(CheckSided(tgd.head, target_allowed, schema,
                                     "Σ_t tgd head", "target"));
    }
    for (const Egd& egd : deps.egds) {
      PDX_RETURN_IF_ERROR(CheckSided(egd.body, target_allowed, schema,
                                     "Σ_t egd body", "target"));
    }
    setting.target_tgds_ = std::move(deps.tgds);
    setting.target_egds_ = std::move(deps.egds);
  }

  setting.ctract_report_ =
      ClassifyCtract(setting.st_tgds_, setting.ts_tgds_, schema);
  setting.target_weakly_acyclic_ =
      IsWeaklyAcyclic(setting.target_tgds_, schema);
  return setting;
}

Status PdeSetting::ValidateSourceInstance(const Instance& instance) const {
  if (&instance.schema() != schema_.get()) {
    return InvalidArgumentError(
        "instance is not over this setting's combined schema");
  }
  Status status = OkStatus();
  instance.ForEachFact([&](const Fact& f) {
    if (!status.ok()) return;
    if (!is_source(f.relation)) {
      status = InvalidArgumentError(
          StrCat("source instance populates target relation ",
                 schema_->relation_name(f.relation)));
      return;
    }
    for (const Value& v : f.tuple) {
      if (v.is_null()) {
        status = InvalidArgumentError(
            "source instances must be ground (no labeled nulls)");
        return;
      }
    }
  });
  return status;
}

Status PdeSetting::ValidateTargetInstance(const Instance& instance) const {
  if (&instance.schema() != schema_.get()) {
    return InvalidArgumentError(
        "instance is not over this setting's combined schema");
  }
  Status status = OkStatus();
  instance.ForEachFact([&](const Fact& f) {
    if (!status.ok()) return;
    if (!is_target(f.relation)) {
      status = InvalidArgumentError(
          StrCat("target instance populates source relation ",
                 schema_->relation_name(f.relation)));
    }
  });
  return status;
}

Instance PdeSetting::CombineInstances(const Instance& source,
                                      const Instance& target) const {
  Instance combined = source;
  combined.UnionWith(target);
  return combined;
}

Instance PdeSetting::SourcePart(const Instance& combined) const {
  Instance part(schema_.get());
  combined.ForEachFact([&](const Fact& f) {
    if (is_source(f.relation)) part.AddFact(f);
  });
  return part;
}

Instance PdeSetting::TargetPart(const Instance& combined) const {
  Instance part(schema_.get());
  combined.ForEachFact([&](const Fact& f) {
    if (is_target(f.relation)) part.AddFact(f);
  });
  return part;
}

std::string PdeSetting::ToString(const SymbolTable& symbols) const {
  std::vector<std::string> lines;
  std::vector<std::string> source_names;
  std::vector<std::string> target_names;
  for (RelationId r = 0; r < schema_->relation_count(); ++r) {
    const RelationSchema& rel = schema_->relation(r);
    (is_source(r) ? source_names : target_names)
        .push_back(StrCat(rel.name, "/", rel.arity));
  }
  lines.push_back(StrCat("S = {", StrJoin(source_names, ", "), "}"));
  lines.push_back(StrCat("T = {", StrJoin(target_names, ", "), "}"));
  for (const Tgd& tgd : st_tgds_) {
    lines.push_back(StrCat("Σst: ", tgd.ToString(*schema_, symbols)));
  }
  for (const Tgd& tgd : ts_tgds_) {
    lines.push_back(StrCat("Σts: ", tgd.ToString(*schema_, symbols)));
  }
  for (const DisjunctiveTgd& tgd : ts_disjunctive_tgds_) {
    lines.push_back(StrCat("Σts: ", tgd.ToString(*schema_, symbols)));
  }
  for (const Tgd& tgd : target_tgds_) {
    lines.push_back(StrCat("Σt:  ", tgd.ToString(*schema_, symbols)));
  }
  for (const Egd& egd : target_egds_) {
    lines.push_back(StrCat("Σt:  ", egd.ToString(*schema_, symbols)));
  }
  return StrJoin(lines, "\n");
}

}  // namespace pdx
