#ifndef PDX_PDE_PDMS_H_
#define PDX_PDE_PDMS_H_

#include <string>
#include <vector>

#include "pde/setting.h"
#include "relational/instance.h"
#include "relational/value.h"

namespace pdx {

// The PDMS view of a PDE setting (Section 2, "Relationship to PDMS"):
// every PDE setting P corresponds to a PDMS N(P) with two peers where
//   * each source relation S_i gets a local replica S_i* and an *equality*
//     storage description S_i* = S_i (source data are immutable);
//   * each target relation T_j gets a local replica T_j* and a
//     *containment* storage description T_j* ⊆ T_j (target data may grow);
//   * the peer mappings are exactly Σ_st ∪ Σ_ts ∪ Σ_t.
struct StorageDescription {
  std::string local_relation;  // e.g. "E*"
  std::string peer_relation;   // e.g. "E"
  bool is_equality = false;    // true: '='; false: '⊆'
};

struct PdmsDescription {
  std::vector<StorageDescription> storage_descriptions;
  std::vector<std::string> peer_mappings;  // rendered dependencies

  std::string ToString() const;
};

// Builds N(P) for a setting.
PdmsDescription BuildPdms(const PdeSetting& setting,
                          const SymbolTable& symbols);

// Checks the Section 2 correspondence concretely: the data instance
// assigns I* and J* to the local sources; the candidate global instance
// assigns I to the source peer and K to the target peer. Consistency means
// I* = I, J* ⊆ K, and (I, K) satisfies all peer mappings. By construction
// this holds iff K is a solution for (I*, J*) in the PDE setting.
bool IsConsistentPdmsInstance(const PdeSetting& setting,
                              const Instance& i_star, const Instance& j_star,
                              const Instance& i, const Instance& k,
                              const SymbolTable& symbols);

}  // namespace pdx

#endif  // PDX_PDE_PDMS_H_
