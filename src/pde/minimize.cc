#include "pde/minimize.h"

#include <vector>

#include "pde/solution.h"

namespace pdx {

namespace {

// Rebuilds `instance` without the fact at `skip_index` of `facts`.
Instance WithoutFact(const Instance& instance, const std::vector<Fact>& facts,
                     size_t skip_index) {
  Instance smaller(&instance.schema());
  for (size_t i = 0; i < facts.size(); ++i) {
    if (i != skip_index) smaller.AddFact(facts[i]);
  }
  return smaller;
}

}  // namespace

StatusOr<Instance> MinimizeSolution(const PdeSetting& setting,
                                    const Instance& source,
                                    const Instance& target,
                                    const Instance& solution,
                                    const SymbolTable& symbols) {
  if (!IsSolution(setting, source, target, solution, symbols)) {
    return FailedPreconditionError(
        "MinimizeSolution requires a valid solution as input");
  }
  Instance current = solution;
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    std::vector<Fact> facts = current.AllFacts();
    for (size_t i = 0; i < facts.size(); ++i) {
      if (target.Contains(facts[i])) continue;  // J must stay contained
      Instance candidate = WithoutFact(current, facts, i);
      if (IsSolution(setting, source, target, candidate, symbols)) {
        current = std::move(candidate);
        shrunk = true;
        break;  // fact list changed; restart the scan
      }
    }
  }
  return current;
}

bool IsMinimalSolution(const PdeSetting& setting, const Instance& source,
                       const Instance& target, const Instance& solution,
                       const SymbolTable& symbols) {
  if (!IsSolution(setting, source, target, solution, symbols)) return false;
  std::vector<Fact> facts = solution.AllFacts();
  for (size_t i = 0; i < facts.size(); ++i) {
    if (target.Contains(facts[i])) continue;
    Instance candidate = WithoutFact(solution, facts, i);
    if (IsSolution(setting, source, target, candidate, symbols)) {
      return false;
    }
  }
  return true;
}

}  // namespace pdx
