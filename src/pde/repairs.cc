#include "pde/repairs.h"

#include <algorithm>
#include <deque>
#include <set>
#include <unordered_set>

#include "pde/certain_answers.h"
#include "relational/snapshot.h"

namespace pdx {

namespace {

// Canonical key for a subset of J's facts (sorted fact list).
std::vector<Fact> SortedFacts(const Instance& instance) {
  std::vector<Fact> facts = instance.AllFacts();
  std::sort(facts.begin(), facts.end());
  return facts;
}

}  // namespace

StatusOr<std::vector<Instance>> ComputeSubsetRepairs(
    const PdeSetting& setting, const Instance& source, const Instance& target,
    SymbolTable* symbols, const RepairOptions& options) {
  PDX_RETURN_IF_ERROR(setting.ValidateSourceInstance(source));
  PDX_RETURN_IF_ERROR(setting.ValidateTargetInstance(target));

  auto is_solvable = [&](const Instance& j) -> StatusOr<bool> {
    PDX_ASSIGN_OR_RETURN(
        GenericSolveResult result,
        GenericExistsSolution(setting, source, j, symbols, options.solver));
    if (result.outcome == SolveOutcome::kBudgetExhausted) {
      return ResourceExhaustedError(
          "solver budget exhausted during repair search");
    }
    return result.outcome == SolveOutcome::kSolutionFound;
  };

  // Fast path: J itself solvable.
  PDX_ASSIGN_OR_RETURN(bool j_solvable, is_solvable(target));
  if (j_solvable) {
    return std::vector<Instance>{target};
  }

  // Top-down lattice BFS over subsets of J: expand unsolvable nodes by
  // removing one fact; collect solvable nodes; filter to ⊆-maximal ones.
  std::vector<Instance> solvable_nodes;
  std::deque<Instance> frontier;
  frontier.push_back(target);
  std::unordered_set<uint64_t> seen;
  seen.insert(target.CanonicalFingerprint());
  int64_t examined = 0;
  while (!frontier.empty()) {
    Instance node = std::move(frontier.front());
    frontier.pop_front();
    std::vector<Fact> facts = SortedFacts(node);
    // Children branch off a copy-on-write snapshot of the node: each child
    // shares every relation store except the one it removed a fact from.
    InstanceSnapshot snapshot(node);
    for (size_t i = 0; i < facts.size(); ++i) {
      Instance child = snapshot.Branch();
      PDX_CHECK(child.RemoveFact(facts[i]));
      if (!seen.insert(child.CanonicalFingerprint()).second) continue;
      if (++examined > options.max_subsets_examined) {
        return ResourceExhaustedError(
            "subset budget exhausted during repair search");
      }
      PDX_ASSIGN_OR_RETURN(bool solvable, is_solvable(child));
      if (solvable) {
        solvable_nodes.push_back(std::move(child));
      } else {
        frontier.push_back(std::move(child));
      }
    }
  }

  // Keep only ⊆-maximal solvable subsets.
  std::vector<Instance> repairs;
  for (size_t i = 0; i < solvable_nodes.size(); ++i) {
    bool maximal = true;
    for (size_t j = 0; j < solvable_nodes.size() && maximal; ++j) {
      if (i == j) continue;
      if (solvable_nodes[i].fact_count() < solvable_nodes[j].fact_count() &&
          solvable_nodes[i].IsSubsetOf(solvable_nodes[j])) {
        maximal = false;
      }
    }
    if (!maximal) continue;
    // Dedup equal sets (reachable along multiple removal orders; the
    // `seen` filter already covers exact duplicates, so this is belt and
    // suspenders for fingerprint collisions).
    bool duplicate = false;
    for (const Instance& existing : repairs) {
      if (existing.FactsEqual(solvable_nodes[i])) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) repairs.push_back(solvable_nodes[i]);
  }
  return repairs;
}

StatusOr<RepairCertainAnswersResult> ComputeRepairCertainAnswers(
    const PdeSetting& setting, const Instance& source, const Instance& target,
    const UnionQuery& query, SymbolTable* symbols,
    const RepairOptions& options) {
  PDX_ASSIGN_OR_RETURN(
      std::vector<Instance> repairs,
      ComputeSubsetRepairs(setting, source, target, symbols, options));

  RepairCertainAnswersResult result;
  result.repair_count = static_cast<int64_t>(repairs.size());
  result.boolean_value = true;  // vacuous over zero repairs
  bool first = true;
  std::set<Tuple> certain;
  for (const Instance& repair : repairs) {
    PDX_ASSIGN_OR_RETURN(
        CertainAnswersResult per_repair,
        ComputeCertainAnswers(setting, source, repair, query, symbols,
                              options.solver));
    PDX_CHECK(!per_repair.no_solution)
        << "a repair is solvable by construction";
    if (query.IsBoolean()) {
      result.boolean_value = result.boolean_value && per_repair.boolean_value;
      continue;
    }
    std::set<Tuple> answers(per_repair.answers.begin(),
                            per_repair.answers.end());
    if (first) {
      certain = std::move(answers);
      first = false;
    } else {
      std::set<Tuple> intersection;
      std::set_intersection(
          certain.begin(), certain.end(), answers.begin(), answers.end(),
          std::inserter(intersection, intersection.begin()));
      certain = std::move(intersection);
    }
  }
  result.answers.assign(certain.begin(), certain.end());
  return result;
}

}  // namespace pdx
