#include "pde/setting_file.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "base/string_util.h"
#include "relational/instance_io.h"

namespace pdx {

namespace {

struct Sections {
  std::vector<RelationSchema> source;
  std::vector<RelationSchema> target;
  std::string st;
  std::string ts;
  std::string t;
};

Status ParseRelationLine(std::string_view line,
                         std::vector<RelationSchema>* out) {
  size_t slash = line.find('/');
  if (slash == std::string_view::npos) {
    return InvalidArgumentError(
        StrCat("expected 'Name/arity' in schema section, got '", line, "'"));
  }
  std::string name(StripWhitespace(line.substr(0, slash)));
  std::string arity_text(StripWhitespace(line.substr(slash + 1)));
  if (name.empty() || arity_text.empty()) {
    return InvalidArgumentError(
        StrCat("malformed relation declaration '", line, "'"));
  }
  // Bounded parse: settings arrive over the wire in pdxd requests, so a
  // declaration like "E/99999999999" must come back as a Status, not
  // overflow into UB or a giant allocation.
  constexpr int kMaxArity = 1024;
  int arity = 0;
  for (char c : arity_text) {
    if (c < '0' || c > '9') {
      return InvalidArgumentError(
          StrCat("non-numeric arity in '", line, "'"));
    }
    arity = arity * 10 + (c - '0');
    if (arity > kMaxArity) {
      return InvalidArgumentError(
          StrCat("arity out of range (max ", kMaxArity, ") in '", line, "'"));
    }
  }
  out->push_back(RelationSchema{std::move(name), arity});
  return OkStatus();
}

std::string_view StripComment(std::string_view line) {
  size_t hash = line.find('#');
  if (hash != std::string_view::npos) line = line.substr(0, hash);
  return StripWhitespace(line);
}

}  // namespace

StatusOr<PdeSetting> ParseSettingFile(std::string_view text,
                                      SymbolTable* symbols) {
  PDX_CHECK(symbols != nullptr);
  Sections sections;
  enum class Section { kNone, kSource, kTarget, kSt, kTs, kT };
  Section current = Section::kNone;
  for (const std::string& raw_line : StrSplit(text, '\n')) {
    std::string_view line = StripComment(raw_line);
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line == "[source]") {
        current = Section::kSource;
      } else if (line == "[target]") {
        current = Section::kTarget;
      } else if (line == "[st]") {
        current = Section::kSt;
      } else if (line == "[ts]") {
        current = Section::kTs;
      } else if (line == "[t]") {
        current = Section::kT;
      } else {
        return InvalidArgumentError(
            StrCat("unknown section header ", line));
      }
      continue;
    }
    switch (current) {
      case Section::kNone:
        return InvalidArgumentError(
            StrCat("content before any section header: '", line, "'"));
      case Section::kSource:
        PDX_RETURN_IF_ERROR(ParseRelationLine(line, &sections.source));
        break;
      case Section::kTarget:
        PDX_RETURN_IF_ERROR(ParseRelationLine(line, &sections.target));
        break;
      case Section::kSt:
        sections.st += std::string(line) + "\n";
        break;
      case Section::kTs:
        sections.ts += std::string(line) + "\n";
        break;
      case Section::kT:
        sections.t += std::string(line) + "\n";
        break;
    }
  }
  if (sections.source.empty()) {
    return InvalidArgumentError("setting file declares no source relations");
  }
  if (sections.target.empty()) {
    return InvalidArgumentError("setting file declares no target relations");
  }
  return PdeSetting::Create(sections.source, sections.target, sections.st,
                            sections.ts, sections.t, symbols);
}

namespace {

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return NotFoundError(StrCat("cannot open ", path));
  }
  std::ostringstream content;
  content << file.rdbuf();
  return content.str();
}

}  // namespace

StatusOr<PdeSetting> LoadSettingFile(const std::string& path,
                                     SymbolTable* symbols) {
  PDX_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return ParseSettingFile(text, symbols);
}

StatusOr<Instance> LoadInstanceFile(const std::string& path,
                                    const Schema& schema,
                                    SymbolTable* symbols) {
  PDX_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return ParseInstance(text, schema, symbols);
}

std::string SettingToFileText(const PdeSetting& setting,
                              const SymbolTable& symbols) {
  const Schema& schema = setting.schema();
  std::ostringstream out;
  out << "[source]\n";
  for (RelationId r = 0; r < schema.relation_count(); ++r) {
    if (setting.is_source(r)) {
      out << schema.relation_name(r) << "/" << schema.arity(r) << "\n";
    }
  }
  out << "[target]\n";
  for (RelationId r = 0; r < schema.relation_count(); ++r) {
    if (setting.is_target(r)) {
      out << schema.relation_name(r) << "/" << schema.arity(r) << "\n";
    }
  }
  out << "[st]\n";
  for (const Tgd& tgd : setting.st_tgds()) {
    out << tgd.ToString(schema, symbols) << ".\n";
  }
  out << "[ts]\n";
  for (const Tgd& tgd : setting.ts_tgds()) {
    out << tgd.ToString(schema, symbols) << ".\n";
  }
  for (const DisjunctiveTgd& tgd : setting.ts_disjunctive_tgds()) {
    out << tgd.ToString(schema, symbols) << ".\n";
  }
  out << "[t]\n";
  for (const Tgd& tgd : setting.target_tgds()) {
    out << tgd.ToString(schema, symbols) << ".\n";
  }
  for (const Egd& egd : setting.target_egds()) {
    out << egd.ToString(schema, symbols) << ".\n";
  }
  return out.str();
}

}  // namespace pdx
