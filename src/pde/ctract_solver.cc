#include "pde/ctract_solver.h"

#include <algorithm>

#include "base/string_util.h"
#include "chase/chase.h"
#include "hom/instance_hom.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pdx {

namespace {

struct CtractMetrics {
  obs::Counter runs, blocks, block_checks;
  static CtractMetrics& Get() {
    static CtractMetrics* m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      auto* metrics = new CtractMetrics();
      metrics->runs = reg.GetCounter("pdx_ctract_runs_total");
      metrics->blocks = reg.GetCounter("pdx_ctract_blocks_total");
      metrics->block_checks = reg.GetCounter("pdx_ctract_block_checks_total");
      return metrics;
    }();
    return *m;
  }
};

}  // namespace

StatusOr<CtractSolveResult> CtractExistsSolution(
    const PdeSetting& setting, const Instance& source, const Instance& target,
    SymbolTable* symbols, const ChaseOptions& chase_options) {
  PDX_CHECK(symbols != nullptr);
  if (setting.HasTargetConstraints()) {
    return FailedPreconditionError(
        "ExistsSolution requires Σ_t = ∅ (Definition 9 settings)");
  }
  if (setting.HasDisjunctiveTsTgds()) {
    return FailedPreconditionError(
        "ExistsSolution does not support disjunctive ts-tgds");
  }
  if (!setting.ctract_report().theorem5_applicable()) {
    return FailedPreconditionError(
        StrCat("ExistsSolution requires condition 1 of Definition 9; ",
               StrJoin(setting.ctract_report().violations, "; ")));
  }
  PDX_RETURN_IF_ERROR(setting.ValidateSourceInstance(source));
  PDX_RETURN_IF_ERROR(setting.ValidateTargetInstance(target));

  CtractSolveResult result;
  obs::Span run_span(obs::Tracer::Global(), "solve.ctract");
  CtractMetrics& metrics = CtractMetrics::Get();
  metrics.runs.Inc();

  // Step 1: (I, J_can) = chase of (I, J) with Σ_st. Σ_st bodies are over S
  // and heads over T, so the chase adds only target facts and terminates
  // after one pass over the (fixed) source triggers. Both chases of this
  // procedure run through compiled plans when
  // chase_options.compile_plans is set (the default): the Σ_st and Σ_ts
  // plan sets are cached process-wide, so repeated solves — and the
  // repeated ctract invocations the pdxcli bench loop issues — compile
  // each of them exactly once.
  Instance combined = setting.CombineInstances(source, target);
  Instance j_can(&setting.schema());
  {
    obs::Span st_span(obs::Tracer::Global(), "ctract.st_chase");
    ChaseResult st_chase =
        Chase(combined, setting.st_tgds(), {}, symbols, chase_options);
    PDX_CHECK(st_chase.outcome == ChaseOutcome::kSuccess)
        << "Σ_st chase cannot fail or diverge";
    result.chase_steps += st_chase.steps;
    j_can = setting.TargetPart(st_chase.instance);
    result.j_can_size = static_cast<int64_t>(j_can.fact_count());
    st_span.AttrInt("steps", st_chase.steps)
        .AttrInt("j_can_size", result.j_can_size);
  }

  // Step 2: (J_can, I_can) = chase of (J_can, ∅) with Σ_ts. Bodies over T
  // (fixed), heads over S: again a single-pass terminating chase.
  Instance i_can(&setting.schema());
  {
    obs::Span ts_span(obs::Tracer::Global(), "ctract.ts_chase");
    ChaseResult ts_chase =
        Chase(j_can, setting.ts_tgds(), {}, symbols, chase_options);
    PDX_CHECK(ts_chase.outcome == ChaseOutcome::kSuccess)
        << "Σ_ts chase cannot fail or diverge";
    result.chase_steps += ts_chase.steps;
    i_can = setting.SourcePart(ts_chase.instance);
    result.i_can_size = static_cast<int64_t>(i_can.fact_count());
    ts_span.AttrInt("steps", ts_chase.steps)
        .AttrInt("i_can_size", result.i_can_size);
  }

  // Step 3: per-block homomorphism checks from I_can into I.
  NullAssignment h;
  bool all_blocks_map = true;
  for (const Block& block : DecomposeIntoBlocks(i_can)) {
    ++result.block_count;
    metrics.blocks.Inc();
    result.max_block_nulls = std::max(
        result.max_block_nulls, static_cast<int64_t>(block.nulls.size()));
    if (!all_blocks_map) continue;  // keep collecting stats
    obs::Span check_span(obs::Tracer::Global(), "ctract.block_check");
    check_span.AttrInt("nulls", static_cast<int64_t>(block.nulls.size()));
    metrics.block_checks.Inc();
    std::optional<NullAssignment> block_h =
        FindBlockHomomorphism(block, source);
    check_span.AttrBool("mapped", block_h.has_value());
    if (!block_h.has_value()) {
      all_blocks_map = false;
      continue;
    }
    for (const auto& [packed, value] : *block_h) h[packed] = value;
  }
  result.has_solution = all_blocks_map;
  run_span.AttrInt("blocks", result.block_count)
      .AttrBool("has_solution", result.has_solution);
  if (!all_blocks_map) return result;

  // Witness construction (Theorem 5, ⇐): J_img = h_J(J_can) where h_J maps
  // the nulls that J_can shares with I_can per h and fixes everything
  // else. ApplyAssignment leaves nulls outside `h` unchanged, which is
  // exactly h_J.
  result.solution = ApplyAssignment(j_can, h);
  return result;
}

}  // namespace pdx
