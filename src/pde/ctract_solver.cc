#include "pde/ctract_solver.h"

#include <algorithm>

#include "base/string_util.h"
#include "chase/chase.h"
#include "hom/instance_hom.h"

namespace pdx {

StatusOr<CtractSolveResult> CtractExistsSolution(
    const PdeSetting& setting, const Instance& source, const Instance& target,
    SymbolTable* symbols, const ChaseOptions& chase_options) {
  PDX_CHECK(symbols != nullptr);
  if (setting.HasTargetConstraints()) {
    return FailedPreconditionError(
        "ExistsSolution requires Σ_t = ∅ (Definition 9 settings)");
  }
  if (setting.HasDisjunctiveTsTgds()) {
    return FailedPreconditionError(
        "ExistsSolution does not support disjunctive ts-tgds");
  }
  if (!setting.ctract_report().theorem5_applicable()) {
    return FailedPreconditionError(
        StrCat("ExistsSolution requires condition 1 of Definition 9; ",
               StrJoin(setting.ctract_report().violations, "; ")));
  }
  PDX_RETURN_IF_ERROR(setting.ValidateSourceInstance(source));
  PDX_RETURN_IF_ERROR(setting.ValidateTargetInstance(target));

  CtractSolveResult result;

  // Step 1: (I, J_can) = chase of (I, J) with Σ_st. Σ_st bodies are over S
  // and heads over T, so the chase adds only target facts and terminates
  // after one pass over the (fixed) source triggers.
  Instance combined = setting.CombineInstances(source, target);
  ChaseResult st_chase =
      Chase(combined, setting.st_tgds(), {}, symbols, chase_options);
  PDX_CHECK(st_chase.outcome == ChaseOutcome::kSuccess)
      << "Σ_st chase cannot fail or diverge";
  result.chase_steps += st_chase.steps;
  Instance j_can = setting.TargetPart(st_chase.instance);
  result.j_can_size = static_cast<int64_t>(j_can.fact_count());

  // Step 2: (J_can, I_can) = chase of (J_can, ∅) with Σ_ts. Bodies over T
  // (fixed), heads over S: again a single-pass terminating chase.
  ChaseResult ts_chase =
      Chase(j_can, setting.ts_tgds(), {}, symbols, chase_options);
  PDX_CHECK(ts_chase.outcome == ChaseOutcome::kSuccess)
      << "Σ_ts chase cannot fail or diverge";
  result.chase_steps += ts_chase.steps;
  Instance i_can = setting.SourcePart(ts_chase.instance);
  result.i_can_size = static_cast<int64_t>(i_can.fact_count());

  // Step 3: per-block homomorphism checks from I_can into I.
  NullAssignment h;
  bool all_blocks_map = true;
  for (const Block& block : DecomposeIntoBlocks(i_can)) {
    ++result.block_count;
    result.max_block_nulls = std::max(
        result.max_block_nulls, static_cast<int64_t>(block.nulls.size()));
    if (!all_blocks_map) continue;  // keep collecting stats
    std::optional<NullAssignment> block_h =
        FindBlockHomomorphism(block, source);
    if (!block_h.has_value()) {
      all_blocks_map = false;
      continue;
    }
    for (const auto& [packed, value] : *block_h) h[packed] = value;
  }
  result.has_solution = all_blocks_map;
  if (!all_blocks_map) return result;

  // Witness construction (Theorem 5, ⇐): J_img = h_J(J_can) where h_J maps
  // the nulls that J_can shares with I_can per h and fixes everything
  // else. ApplyAssignment leaves nulls outside `h` unchanged, which is
  // exactly h_J.
  result.solution = ApplyAssignment(j_can, h);
  return result;
}

}  // namespace pdx
