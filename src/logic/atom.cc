#include "logic/atom.h"

#include "base/string_util.h"

namespace pdx {

std::string AtomToString(const Atom& atom, const Schema& schema,
                         const SymbolTable& symbols,
                         const std::vector<std::string>& var_names) {
  std::vector<std::string> parts;
  parts.reserve(atom.terms.size());
  for (const Term& t : atom.terms) {
    if (t.is_variable()) {
      VariableId v = t.var();
      if (v >= 0 && v < static_cast<VariableId>(var_names.size())) {
        parts.push_back(var_names[v]);
      } else {
        parts.push_back(StrCat("v", v));
      }
    } else {
      parts.push_back(StrCat("'", symbols.ValueToString(t.constant()), "'"));
    }
  }
  return StrCat(schema.relation_name(atom.relation), "(",
                StrJoin(parts, ","), ")");
}

std::string ConjunctionToString(const std::vector<Atom>& atoms,
                                const Schema& schema,
                                const SymbolTable& symbols,
                                const std::vector<std::string>& var_names) {
  std::vector<std::string> parts;
  parts.reserve(atoms.size());
  for (const Atom& a : atoms) {
    parts.push_back(AtomToString(a, schema, symbols, var_names));
  }
  return StrJoin(parts, " & ");
}

std::vector<bool> VariablesIn(const std::vector<Atom>& atoms, int var_count) {
  std::vector<bool> present(var_count, false);
  for (const Atom& a : atoms) {
    for (const Term& t : a.terms) {
      if (t.is_variable()) {
        PDX_CHECK_LT(t.var(), var_count);
        present[t.var()] = true;
      }
    }
  }
  return present;
}

}  // namespace pdx
