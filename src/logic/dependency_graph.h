#ifndef PDX_LOGIC_DEPENDENCY_GRAPH_H_
#define PDX_LOGIC_DEPENDENCY_GRAPH_H_

#include <string>
#include <vector>

#include "logic/dependency.h"
#include "relational/schema.h"

namespace pdx {

// The position dependency graph of a set of tgds (Definition 5, from [8]):
// one node per (relation, attribute) position; for every tgd and every
// universally quantified variable x occurring in the head, an ordinary edge
// from each body position of x to each head position of x, and a *special*
// edge from each body position of x to each head position of every
// existentially quantified variable.
class PositionDependencyGraph {
 public:
  PositionDependencyGraph(const std::vector<Tgd>& tgds, const Schema& schema);

  // A set of tgds is weakly acyclic iff its dependency graph has no cycle
  // through a special edge.
  bool IsWeaklyAcyclic() const;

  // The rank of a position: the maximum number of special edges on any
  // path ending at it (only defined for weakly acyclic sets; this is the
  // quantity [8] uses to bound chase length polynomially). Returns one rank
  // per position id; empty if the set is not weakly acyclic.
  std::vector<int> PositionRanks() const;

  // Max over PositionRanks (0 for an empty graph); -1 if not weakly acyclic.
  int MaxRank() const;

  int position_count() const { return position_count_; }
  int PositionId(RelationId relation, int attribute) const {
    return offsets_[relation] + attribute;
  }
  std::string PositionName(int position, const Schema& schema) const;

  struct Edge {
    int from;
    int to;
    bool special;
  };
  const std::vector<Edge>& edges() const { return edges_; }

 private:
  std::vector<int> StronglyConnectedComponents() const;

  int position_count_ = 0;
  std::vector<int> offsets_;  // per relation: first position id
  std::vector<Edge> edges_;
};

// Convenience: weak acyclicity of a set of tgds over `schema`.
bool IsWeaklyAcyclic(const std::vector<Tgd>& tgds, const Schema& schema);

// Static estimate of chase growth for a set of tgds, following the rank
// argument of [8]: with r = max rank, the number of distinct values a
// chase can produce is polynomial in the input domain size with degree
// governed by r. The bound is conservative (existentially safe) and meant
// for budgeting/diagnostics, not tightness. Values are computed in double
// and capped at 1e18.
struct ChaseBound {
  bool weakly_acyclic = false;
  int max_rank = -1;
  double value_bound = 0;  // distinct values in any chase result
  double fact_bound = 0;   // facts in any chase result
};

ChaseBound EstimateChaseBound(const std::vector<Tgd>& tgds,
                              const Schema& schema, int64_t domain_size);

// The relation-level dependency graph used for PDMS results ([14], and the
// discussion after Theorem 3): nodes are relations; an edge P -> R exists
// when some tgd mentions P in its body and R in its head. Returns true iff
// that graph is acyclic. The paper's CLIQUE setting is acyclic here yet
// NP-hard, which is the point of the Section 3.2 remark.
bool IsRelationGraphAcyclic(const std::vector<Tgd>& tgds,
                            const Schema& schema);

}  // namespace pdx

#endif  // PDX_LOGIC_DEPENDENCY_GRAPH_H_
