#ifndef PDX_LOGIC_DEPENDENCY_H_
#define PDX_LOGIC_DEPENDENCY_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "logic/atom.h"
#include "relational/schema.h"

namespace pdx {

// A tuple-generating dependency
//     forall x ( phi(x) -> exists y  psi(x, y) )
// phi = `body`, psi = `head`. Variables 0..var_count-1; `existential[v]`
// is true iff v is one of the existentially quantified y. Whether a tgd is
// source-to-target, target-to-source, or target-to-target is a property of
// the PdeSetting that owns it, not of the tgd itself.
struct Tgd {
  std::vector<Atom> body;
  std::vector<Atom> head;
  int var_count = 0;
  std::vector<bool> existential;       // size var_count
  std::vector<std::string> var_names;  // size var_count, for printing

  // A *full* tgd has no existentially quantified variables (Section 4).
  bool IsFull() const;

  // A LAV (local-as-view) tgd has exactly one body atom with no repeated
  // variables and no constants (Section 1 / Corollary 2).
  bool IsLav() const;

  // A GAV (global-as-view) tgd is full with a single head atom.
  bool IsGav() const;

  std::string ToString(const Schema& schema, const SymbolTable& symbols) const;
};

// An equality-generating dependency
//     forall x ( phi(x) -> z1 = z2 )
// with z1, z2 among the variables of phi.
struct Egd {
  std::vector<Atom> body;
  VariableId left_var = 0;
  VariableId right_var = 0;
  int var_count = 0;
  std::vector<std::string> var_names;

  std::string ToString(const Schema& schema, const SymbolTable& symbols) const;
};

// A tgd whose right-hand side is a disjunction of conjunctions:
//     forall x ( phi(x) -> exists y ( psi_1(x,y) | ... | psi_k(x,y) ) )
// Section 4 uses such a dependency (the 3-COLORABILITY setting) to show
// that allowing disjunction crosses the tractability boundary; this is an
// extension type understood by the generic machinery (satisfaction checks,
// generic solver) but excluded from C_tract and the chase by construction.
struct DisjunctiveTgd {
  std::vector<Atom> body;
  std::vector<std::vector<Atom>> head_disjuncts;
  int var_count = 0;
  std::vector<bool> existential;
  std::vector<std::string> var_names;

  std::string ToString(const Schema& schema, const SymbolTable& symbols) const;
};

// A parsed set of dependencies of all kinds.
struct DependencySet {
  std::vector<Tgd> tgds;
  std::vector<Egd> egds;
  std::vector<DisjunctiveTgd> disjunctive_tgds;

  bool empty() const {
    return tgds.empty() && egds.empty() && disjunctive_tgds.empty();
  }
  size_t size() const {
    return tgds.size() + egds.size() + disjunctive_tgds.size();
  }
};

// Structural validation shared by the parser and programmatic construction:
// arities match the schema, every variable id is in range, every head /
// equated variable that is not existential occurs in the body, and
// existential variables do not occur in the body.
Status ValidateTgd(const Tgd& tgd, const Schema& schema);
Status ValidateEgd(const Egd& egd, const Schema& schema);
Status ValidateDisjunctiveTgd(const DisjunctiveTgd& tgd, const Schema& schema);

// True if every atom of `atoms` uses only relations for which
// `allowed[relation]` is true. Used by PdeSetting to check sidedness
// (source-to-target bodies over S, heads over T, etc.).
bool AtomsWithin(const std::vector<Atom>& atoms,
                 const std::vector<bool>& allowed);

}  // namespace pdx

#endif  // PDX_LOGIC_DEPENDENCY_H_
