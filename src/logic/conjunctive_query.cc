#include "logic/conjunctive_query.h"

#include <algorithm>
#include <set>

#include "base/string_util.h"
#include "hom/matcher.h"

namespace pdx {

std::string ConjunctiveQuery::ToString(const Schema& schema,
                                       const SymbolTable& symbols) const {
  std::vector<std::string> head_names;
  head_names.reserve(head_vars.size());
  for (VariableId v : head_vars) head_names.push_back(var_names[v]);
  return StrCat("q(", StrJoin(head_names, ","), ") :- ",
                ConjunctionToString(body, schema, symbols, var_names));
}

std::string UnionQuery::ToString(const Schema& schema,
                                 const SymbolTable& symbols) const {
  std::vector<std::string> parts;
  parts.reserve(disjuncts.size());
  for (const ConjunctiveQuery& q : disjuncts) {
    parts.push_back(q.ToString(schema, symbols));
  }
  return StrJoin(parts, "  |  ");
}

Status ValidateQuery(const ConjunctiveQuery& query, const Schema& schema) {
  if (query.body.empty()) {
    return InvalidArgumentError("query must have a non-empty body");
  }
  for (const Atom& atom : query.body) {
    if (atom.relation < 0 || atom.relation >= schema.relation_count()) {
      return InvalidArgumentError("bad relation id in query body");
    }
    if (static_cast<int>(atom.terms.size()) != schema.arity(atom.relation)) {
      return InvalidArgumentError(
          StrCat("arity mismatch for ", schema.relation_name(atom.relation),
                 " in query body"));
    }
    for (const Term& t : atom.terms) {
      if (t.is_variable() && (t.var() < 0 || t.var() >= query.var_count)) {
        return InvalidArgumentError("variable id out of range in query");
      }
    }
  }
  std::vector<bool> in_body = VariablesIn(query.body, query.var_count);
  for (VariableId v : query.head_vars) {
    if (v < 0 || v >= query.var_count || !in_body[v]) {
      return InvalidArgumentError(
          "query head variable does not occur in the body");
    }
  }
  return OkStatus();
}

Status ValidateUnionQuery(const UnionQuery& query, const Schema& schema) {
  if (query.disjuncts.empty()) {
    return InvalidArgumentError("union query must have at least one disjunct");
  }
  int arity = query.disjuncts[0].head_arity();
  for (const ConjunctiveQuery& q : query.disjuncts) {
    if (q.head_arity() != arity) {
      return InvalidArgumentError(
          "union query disjuncts must share one head arity");
    }
    PDX_RETURN_IF_ERROR(ValidateQuery(q, schema));
  }
  return OkStatus();
}

namespace {

void CollectAnswers(const ConjunctiveQuery& query, const Instance& instance,
                    std::set<Tuple>* answers) {
  EnumerateMatches(query.body, query.var_count, instance,
                   Binding::Empty(query.var_count),
                   [&](const Binding& binding) {
                     Tuple answer;
                     answer.reserve(query.head_vars.size());
                     for (VariableId v : query.head_vars) {
                       answer.push_back(binding.values[v]);
                     }
                     answers->insert(std::move(answer));
                     return true;  // keep enumerating
                   });
}

std::vector<Tuple> ToVector(const std::set<Tuple>& answers) {
  return std::vector<Tuple>(answers.begin(), answers.end());
}

bool HasNull(const Tuple& t) {
  return std::any_of(t.begin(), t.end(),
                     [](const Value& v) { return v.is_null(); });
}

}  // namespace

std::vector<Tuple> EvaluateQuery(const ConjunctiveQuery& query,
                                 const Instance& instance) {
  std::set<Tuple> answers;
  CollectAnswers(query, instance, &answers);
  return ToVector(answers);
}

std::vector<Tuple> EvaluateUnionQuery(const UnionQuery& query,
                                      const Instance& instance) {
  std::set<Tuple> answers;
  for (const ConjunctiveQuery& q : query.disjuncts) {
    CollectAnswers(q, instance, &answers);
  }
  return ToVector(answers);
}

std::vector<Tuple> EvaluateQueryNullFree(const ConjunctiveQuery& query,
                                         const Instance& instance) {
  std::vector<Tuple> all = EvaluateQuery(query, instance);
  std::vector<Tuple> kept;
  for (Tuple& t : all) {
    if (!HasNull(t)) kept.push_back(std::move(t));
  }
  return kept;
}

std::vector<Tuple> EvaluateUnionQueryNullFree(const UnionQuery& query,
                                              const Instance& instance) {
  std::vector<Tuple> all = EvaluateUnionQuery(query, instance);
  std::vector<Tuple> kept;
  for (Tuple& t : all) {
    if (!HasNull(t)) kept.push_back(std::move(t));
  }
  return kept;
}

bool EvaluateBoolean(const UnionQuery& query, const Instance& instance) {
  for (const ConjunctiveQuery& q : query.disjuncts) {
    if (HasMatch(q.body, q.var_count, instance)) return true;
  }
  return false;
}

}  // namespace pdx
