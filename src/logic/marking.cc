#include "logic/marking.h"

#include "base/string_util.h"

namespace pdx {

std::vector<std::vector<bool>> ComputeMarkedPositions(
    const std::vector<Tgd>& st_tgds, const Schema& schema) {
  std::vector<std::vector<bool>> marked(schema.relation_count());
  for (RelationId r = 0; r < schema.relation_count(); ++r) {
    marked[r].assign(schema.arity(r), false);
  }
  for (const Tgd& tgd : st_tgds) {
    for (const Atom& atom : tgd.head) {
      for (int i = 0; i < static_cast<int>(atom.terms.size()); ++i) {
        const Term& t = atom.terms[i];
        if (t.is_variable() && tgd.existential[t.var()]) {
          marked[atom.relation][i] = true;
        }
      }
    }
  }
  return marked;
}

std::vector<bool> ComputeMarkedVariables(
    const Tgd& ts_tgd,
    const std::vector<std::vector<bool>>& marked_positions) {
  std::vector<bool> marked(ts_tgd.var_count, false);
  // Case (2): existentially quantified variables.
  for (VariableId v = 0; v < ts_tgd.var_count; ++v) {
    if (ts_tgd.existential[v]) marked[v] = true;
  }
  // Case (1): variables at marked positions of LHS (target) conjuncts.
  for (const Atom& atom : ts_tgd.body) {
    const std::vector<bool>& positions = marked_positions[atom.relation];
    for (int i = 0; i < static_cast<int>(atom.terms.size()); ++i) {
      if (positions[i] && atom.terms[i].is_variable()) {
        marked[atom.terms[i].var()] = true;
      }
    }
  }
  return marked;
}

namespace {

// Number of occurrences of each variable in `atoms`.
std::vector<int> OccurrenceCounts(const std::vector<Atom>& atoms,
                                  int var_count) {
  std::vector<int> counts(var_count, 0);
  for (const Atom& atom : atoms) {
    for (const Term& t : atom.terms) {
      if (t.is_variable()) ++counts[t.var()];
    }
  }
  return counts;
}

// True if variables x and y appear together in some atom of `atoms`.
bool CoOccur(const std::vector<Atom>& atoms, VariableId x, VariableId y) {
  for (const Atom& atom : atoms) {
    bool has_x = false;
    bool has_y = false;
    for (const Term& t : atom.terms) {
      if (!t.is_variable()) continue;
      if (t.var() == x) has_x = true;
      if (t.var() == y) has_y = true;
    }
    if (has_x && has_y) return true;
  }
  return false;
}

}  // namespace

CtractReport ClassifyCtract(const std::vector<Tgd>& st_tgds,
                            const std::vector<Tgd>& ts_tgds,
                            const Schema& schema) {
  CtractReport report;
  std::vector<std::vector<bool>> marked_positions =
      ComputeMarkedPositions(st_tgds, schema);

  for (size_t d = 0; d < ts_tgds.size(); ++d) {
    const Tgd& tgd = ts_tgds[d];
    std::vector<bool> marked = ComputeMarkedVariables(tgd, marked_positions);
    std::vector<int> lhs_counts = OccurrenceCounts(tgd.body, tgd.var_count);
    std::vector<bool> in_lhs = VariablesIn(tgd.body, tgd.var_count);

    // Condition 1: every marked variable appears at most once in the LHS.
    for (VariableId v = 0; v < tgd.var_count; ++v) {
      if (marked[v] && lhs_counts[v] > 1) {
        report.condition1 = false;
        report.violations.push_back(
            StrCat("condition 1: marked variable ", tgd.var_names[v],
                   " appears ", lhs_counts[v], " times in the LHS of ts-tgd #",
                   d));
      }
    }

    // Condition 2.1: the LHS consists of exactly one literal.
    if (tgd.body.size() != 1) {
      report.condition2_1 = false;
      report.violations.push_back(
          StrCat("condition 2.1: ts-tgd #", d, " has ", tgd.body.size(),
                 " literals in its LHS"));
    }

    // Condition 2.2: for every pair of marked variables x, y co-occurring
    // in a RHS conjunct, either they co-occur in an LHS conjunct or neither
    // occurs in the LHS at all.
    for (const Atom& head_atom : tgd.head) {
      for (size_t i = 0; i < head_atom.terms.size(); ++i) {
        if (!head_atom.terms[i].is_variable()) continue;
        VariableId x = head_atom.terms[i].var();
        if (!marked[x]) continue;
        for (size_t j = i + 1; j < head_atom.terms.size(); ++j) {
          if (!head_atom.terms[j].is_variable()) continue;
          VariableId y = head_atom.terms[j].var();
          if (!marked[y] || x == y) continue;
          bool together_in_lhs = CoOccur(tgd.body, x, y);
          bool both_absent = !in_lhs[x] && !in_lhs[y];
          if (!together_in_lhs && !both_absent) {
            report.condition2_2 = false;
            report.violations.push_back(StrCat(
                "condition 2.2: marked variables ", tgd.var_names[x], " and ",
                tgd.var_names[y], " co-occur in the RHS of ts-tgd #", d,
                " but not in any LHS conjunct (and at least one occurs in"
                " the LHS)"));
          }
        }
      }
    }
  }
  (void)schema;
  return report;
}

}  // namespace pdx
