#ifndef PDX_LOGIC_ATOM_H_
#define PDX_LOGIC_ATOM_H_

#include <string>
#include <vector>

#include "base/logging.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace pdx {

// A variable local to one dependency or query, numbered 0..var_count-1.
using VariableId = int;

// A term in an atomic formula: either a variable or a constant.
class Term {
 public:
  static Term Var(VariableId v) {
    Term t;
    t.is_var_ = true;
    t.var_ = v;
    return t;
  }
  static Term Const(Value c) {
    Term t;
    t.is_var_ = false;
    t.constant_ = c;
    return t;
  }

  bool is_variable() const { return is_var_; }
  bool is_constant() const { return !is_var_; }

  VariableId var() const {
    PDX_DCHECK(is_var_);
    return var_;
  }
  Value constant() const {
    PDX_DCHECK(!is_var_);
    return constant_;
  }

  bool operator==(const Term& other) const {
    if (is_var_ != other.is_var_) return false;
    return is_var_ ? var_ == other.var_ : constant_ == other.constant_;
  }

 private:
  Term() : is_var_(true), var_(0) {}

  bool is_var_;
  VariableId var_;
  Value constant_;
};

// An atomic formula R(t1, ..., tn) over a schema.
struct Atom {
  RelationId relation = -1;
  std::vector<Term> terms;

  bool operator==(const Atom& other) const {
    return relation == other.relation && terms == other.terms;
  }
};

// Renders an atom like "E(x,y)" given per-variable names.
std::string AtomToString(const Atom& atom, const Schema& schema,
                         const SymbolTable& symbols,
                         const std::vector<std::string>& var_names);

// Renders "A1 & A2 & ..." for a conjunction of atoms.
std::string ConjunctionToString(const std::vector<Atom>& atoms,
                                const Schema& schema,
                                const SymbolTable& symbols,
                                const std::vector<std::string>& var_names);

// The set of variables occurring in `atoms`, as a membership vector of size
// `var_count`.
std::vector<bool> VariablesIn(const std::vector<Atom>& atoms, int var_count);

}  // namespace pdx

#endif  // PDX_LOGIC_ATOM_H_
