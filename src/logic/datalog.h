#ifndef PDX_LOGIC_DATALOG_H_
#define PDX_LOGIC_DATALOG_H_

#include <string_view>
#include <vector>

#include "base/status.h"
#include "logic/atom.h"
#include "relational/instance.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace pdx {

// A positive Datalog rule: head :- body, with a single head atom and every
// head variable bound in the body (range-restricted; no existentials, no
// negation). This is exactly the shape of the *definitional mappings* of
// peer data management systems ([14], Section 2 of the paper), which PDE
// settings deliberately do not use — the engine here lets the PDMS module
// model full PDMS peers and demonstrate the containment.
struct DatalogRule {
  Atom head;
  std::vector<Atom> body;
  int var_count = 0;
  std::vector<std::string> var_names;

  std::string ToString(const Schema& schema, const SymbolTable& symbols) const;
};

// A positive Datalog program over a schema.
struct DatalogProgram {
  std::vector<DatalogRule> rules;

  // Relations that appear in some rule head (the "intensional" ones).
  std::vector<bool> IntensionalRelations(const Schema& schema) const;

  std::string ToString(const Schema& schema, const SymbolTable& symbols) const;
};

// Parses a program of rules in the dependency syntax restricted to
// Datalog: "H(x,y) :- E(x,z), E(z,y)." (also accepts "->" written
// backwards as in tgds: "E(x,z) & E(z,y) -> H(x,y).").
StatusOr<DatalogProgram> ParseDatalogProgram(std::string_view text,
                                             const Schema& schema,
                                             SymbolTable* symbols);

// Statistics of one evaluation.
struct DatalogStats {
  int64_t iterations = 0;     // semi-naive rounds until fixpoint
  int64_t derived_facts = 0;  // facts added beyond the input
};

// Computes the least fixpoint of `program` over `input` by semi-naive
// bottom-up evaluation: per round, only rule instantiations using at least
// one fact derived in the previous round fire. Returns the (input ∪
// derived) instance.
Instance EvaluateDatalog(const DatalogProgram& program, const Instance& input,
                         DatalogStats* stats = nullptr);

// True if `instance` is already a fixpoint of `program` — the consistency
// condition for definitional peer mappings in a PDMS ([14]).
bool IsClosedUnder(const DatalogProgram& program, const Instance& instance);

}  // namespace pdx

#endif  // PDX_LOGIC_DATALOG_H_
