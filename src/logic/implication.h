#ifndef PDX_LOGIC_IMPLICATION_H_
#define PDX_LOGIC_IMPLICATION_H_

#include "base/status.h"
#include "logic/conjunctive_query.h"
#include "logic/dependency.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace pdx {

// Classical reasoning tasks built on the chase and homomorphisms — the
// proof procedures of Beeri & Vardi [3] (the paper's reference for tgds)
// and Chandra & Merlin.

// Conjunctive query containment q1 ⊆ q2: every database maps every q1
// answer into a q2 answer. Decided by freezing q1's body into a canonical
// instance (variables become labeled nulls) and matching q2's body onto it
// with the head variables pinned to q1's frozen head. Queries must share
// one head arity; kInvalidArgument otherwise.
StatusOr<bool> IsContainedIn(const ConjunctiveQuery& q1,
                             const ConjunctiveQuery& q2, const Schema& schema);

// Logical implication Σ ⊨ σ for tgds/egds, via the chase proof procedure:
// freeze σ's body, chase it with Σ, and check that σ's conclusion holds in
// the result. Sound and complete when the chase terminates; Σ's tgds are
// therefore required to be weakly acyclic (kFailedPrecondition otherwise).
// A failing chase (egd clash on frozen nulls cannot happen; clashes are
// only possible with constants in σ) means the body is unsatisfiable under
// Σ, and the implication holds vacuously.
StatusOr<bool> ImpliesTgd(const DependencySet& sigma, const Tgd& candidate,
                          const Schema& schema, SymbolTable* symbols);
StatusOr<bool> ImpliesEgd(const DependencySet& sigma, const Egd& candidate,
                          const Schema& schema, SymbolTable* symbols);

}  // namespace pdx

#endif  // PDX_LOGIC_IMPLICATION_H_
