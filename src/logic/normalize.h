#ifndef PDX_LOGIC_NORMALIZE_H_
#define PDX_LOGIC_NORMALIZE_H_

#include "base/status.h"
#include "logic/dependency.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace pdx {

// Normalization utilities for dependency sets. All transformations
// preserve logical equivalence of the set.

// Splits every *full* tgd with a multi-atom head into one single-atom-head
// (GAV) tgd per head atom: φ(x) → A(x) ∧ B(x) becomes φ→A and φ→B. Valid
// only without existentials (a shared existential couples head atoms), so
// non-full tgds pass through unchanged. GAV-normal sets chase slightly
// faster (smaller head-satisfaction checks) and read better in reports.
std::vector<Tgd> SplitFullTgdHeads(const std::vector<Tgd>& tgds);

// Removes syntactic duplicates: tgds that are identical up to a renaming
// of variables (detected via canonical freezing of body+head).
std::vector<Tgd> DeduplicateTgds(const std::vector<Tgd>& tgds);

// Removes tgds implied by the rest of the set (chase implication, [3]).
// Requires the set to be weakly acyclic (kFailedPrecondition otherwise).
// Greedy: scans in order, dropping each tgd that the surviving rest
// implies; the result is equivalent and irredundant with respect to this
// scan order (global minimality is not guaranteed — implication-based
// minimization is order-sensitive).
StatusOr<std::vector<Tgd>> PruneImpliedTgds(const std::vector<Tgd>& tgds,
                                            const Schema& schema,
                                            SymbolTable* symbols);

}  // namespace pdx

#endif  // PDX_LOGIC_NORMALIZE_H_
