#ifndef PDX_LOGIC_MARKING_H_
#define PDX_LOGIC_MARKING_H_

#include <string>
#include <vector>

#include "logic/dependency.h"
#include "relational/schema.h"

namespace pdx {

// Definition 8 (marked positions): position i of target relation T is
// marked if some source-to-target tgd has a head conjunct
// T(z1,...,zi,...,zn) where z_i is existentially quantified.
// Returns marked[relation][attribute] over the full combined schema
// (positions of source relations are never marked).
std::vector<std::vector<bool>> ComputeMarkedPositions(
    const std::vector<Tgd>& st_tgds, const Schema& schema);

// Definition 8 (marked variables): variable z of the target-to-source tgd
// `ts_tgd` is marked if (1) z appears at a marked position of a body
// (target-side) conjunct, or (2) z is existentially quantified. The two
// cases are mutually exclusive by the validity of the tgd.
std::vector<bool> ComputeMarkedVariables(
    const Tgd& ts_tgd, const std::vector<std::vector<bool>>& marked_positions);

// Outcome of the C_tract membership test (Definition 9), with per-condition
// results and human-readable diagnostics naming each violation.
struct CtractReport {
  bool condition1 = true;    // marked vars appear at most once in each LHS
  bool condition2_1 = true;  // every ts-tgd LHS is a single literal
  bool condition2_2 = true;  // co-occurring marked head vars co-occur in one
                             // LHS conjunct or are both absent from the LHS
  std::vector<std::string> violations;

  // P is in C_tract iff condition 1 and (condition 2.1 or condition 2.2).
  bool in_ctract() const {
    return condition1 && (condition2_1 || condition2_2);
  }

  // Theorem 5 needs only condition 1: the homomorphism reduction is
  // *correct* (but not necessarily polynomial) whenever condition 1 holds.
  bool theorem5_applicable() const { return condition1; }
};

// Classifies (Σ_st, Σ_ts) against Definition 9. The presence of egds,
// target tgds or disjunctive tgds in a setting disqualifies it from
// C_tract at the PdeSetting level; this function looks only at the two
// inter-peer sets, as the definition does.
CtractReport ClassifyCtract(const std::vector<Tgd>& st_tgds,
                            const std::vector<Tgd>& ts_tgds,
                            const Schema& schema);

}  // namespace pdx

#endif  // PDX_LOGIC_MARKING_H_
