#include "logic/datalog.h"

#include "base/string_util.h"
#include "hom/matcher.h"
#include "logic/parser.h"

namespace pdx {

std::string DatalogRule::ToString(const Schema& schema,
                                  const SymbolTable& symbols) const {
  return StrCat(AtomToString(head, schema, symbols, var_names), " :- ",
                ConjunctionToString(body, schema, symbols, var_names));
}

std::vector<bool> DatalogProgram::IntensionalRelations(
    const Schema& schema) const {
  std::vector<bool> intensional(schema.relation_count(), false);
  for (const DatalogRule& rule : rules) {
    intensional[rule.head.relation] = true;
  }
  return intensional;
}

std::string DatalogProgram::ToString(const Schema& schema,
                                     const SymbolTable& symbols) const {
  std::vector<std::string> lines;
  lines.reserve(rules.size());
  for (const DatalogRule& rule : rules) {
    lines.push_back(StrCat(rule.ToString(schema, symbols), "."));
  }
  return StrJoin(lines, "\n");
}

namespace {

// Rewrites "Head :- Body" statements into the tgd form "Body -> Head" so
// the dependency parser can handle both syntaxes. Works statement-wise on
// '.'-terminated clauses; ':-' inside quoted constants is not supported.
std::string NormalizeDatalogSyntax(std::string_view text) {
  std::string out;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('.', start);
    std::string_view statement =
        end == std::string_view::npos
            ? text.substr(start)
            : text.substr(start, end - start);
    size_t turnstile = statement.find(":-");
    if (turnstile == std::string_view::npos) {
      out.append(statement);
    } else {
      out.append(statement.substr(turnstile + 2));
      out.append(" -> ");
      out.append(StripWhitespace(statement.substr(0, turnstile)));
    }
    if (end == std::string_view::npos) break;
    out.push_back('.');
    start = end + 1;
  }
  return out;
}

}  // namespace

StatusOr<DatalogProgram> ParseDatalogProgram(std::string_view text,
                                             const Schema& schema,
                                             SymbolTable* symbols) {
  PDX_ASSIGN_OR_RETURN(
      DependencySet deps,
      ParseDependencies(NormalizeDatalogSyntax(text), schema, symbols));
  if (!deps.egds.empty() || !deps.disjunctive_tgds.empty()) {
    return InvalidArgumentError(
        "Datalog programs contain only plain rules (no egds/disjunction)");
  }
  DatalogProgram program;
  for (Tgd& tgd : deps.tgds) {
    if (tgd.head.size() != 1) {
      return InvalidArgumentError(
          "Datalog rules have exactly one head atom");
    }
    if (!tgd.IsFull()) {
      return InvalidArgumentError(
          "Datalog rules are range-restricted (no existential variables)");
    }
    DatalogRule rule;
    rule.head = std::move(tgd.head[0]);
    rule.body = std::move(tgd.body);
    rule.var_count = tgd.var_count;
    rule.var_names = std::move(tgd.var_names);
    program.rules.push_back(std::move(rule));
  }
  return program;
}

namespace {

// Attempts to bind `atom` against `tuple` on top of `binding`.
bool BindAtomToTuple(const Atom& atom, TupleView tuple, Binding* binding) {
  for (int i = 0; i < static_cast<int>(atom.terms.size()); ++i) {
    const Term& t = atom.terms[i];
    if (t.is_constant()) {
      if (t.constant() != tuple[i]) return false;
    } else if (binding->bound[t.var()]) {
      if (binding->values[t.var()] != tuple[i]) return false;
    } else {
      binding->Bind(t.var(), tuple[i]);
    }
  }
  return true;
}

void DeriveHead(const DatalogRule& rule, const Binding& binding,
                Instance* instance, int64_t* derived) {
  Tuple tuple;
  tuple.reserve(rule.head.terms.size());
  for (const Term& t : rule.head.terms) {
    tuple.push_back(t.is_constant() ? t.constant() : binding.values[t.var()]);
  }
  if (instance->AddFact(rule.head.relation, std::move(tuple))) {
    ++*derived;
  }
}

}  // namespace

Instance EvaluateDatalog(const DatalogProgram& program, const Instance& input,
                         DatalogStats* stats) {
  Instance result = input;
  int relation_count = result.schema().relation_count();
  std::vector<size_t> watermark(relation_count, 0);
  int64_t iterations = 0;
  int64_t derived = 0;
  while (true) {
    ++iterations;
    std::vector<size_t> frontier(relation_count);
    for (RelationId r = 0; r < relation_count; ++r) {
      frontier[r] = result.tuples(r).size();
    }
    int64_t derived_before = derived;
    for (const DatalogRule& rule : program.rules) {
      for (size_t pivot = 0; pivot < rule.body.size(); ++pivot) {
        const Atom& atom = rule.body[pivot];
        for (size_t idx = watermark[atom.relation];
             idx < frontier[atom.relation]; ++idx) {
          Binding partial = Binding::Empty(rule.var_count);
          if (!BindAtomToTuple(atom, result.tuples(atom.relation)[idx],
                               &partial)) {
            continue;
          }
          // Collect matches first (the instance must not change under the
          // matcher), then derive.
          std::vector<Binding> matches;
          EnumerateMatches(rule.body, rule.var_count, result, partial,
                           [&](const Binding& match) {
                             matches.push_back(match);
                             return true;
                           });
          for (const Binding& match : matches) {
            DeriveHead(rule, match, &result, &derived);
          }
        }
      }
    }
    watermark = frontier;
    bool new_frontier = false;
    for (RelationId r = 0; r < relation_count; ++r) {
      if (result.tuples(r).size() > frontier[r]) new_frontier = true;
    }
    if (derived == derived_before && !new_frontier) break;
  }
  if (stats != nullptr) {
    stats->iterations = iterations;
    stats->derived_facts = derived;
  }
  return result;
}

bool IsClosedUnder(const DatalogProgram& program, const Instance& instance) {
  DatalogStats stats;
  Instance fixpoint = EvaluateDatalog(program, instance, &stats);
  return stats.derived_facts == 0;
}

}  // namespace pdx
