#include "logic/dependency.h"

#include <unordered_set>

#include "base/string_util.h"

namespace pdx {

namespace {

// Renders "exists y1,y2: " if any variable is existential.
std::string ExistsPrefix(const std::vector<bool>& existential,
                         const std::vector<std::string>& var_names) {
  std::vector<std::string> names;
  for (size_t v = 0; v < existential.size(); ++v) {
    if (existential[v]) names.push_back(var_names[v]);
  }
  if (names.empty()) return "";
  return StrCat("exists ", StrJoin(names, ","), ": ");
}

Status ValidateAtoms(const std::vector<Atom>& atoms, const Schema& schema,
                     int var_count, const char* where) {
  for (const Atom& atom : atoms) {
    if (atom.relation < 0 || atom.relation >= schema.relation_count()) {
      return InvalidArgumentError(StrCat("bad relation id in ", where));
    }
    if (static_cast<int>(atom.terms.size()) != schema.arity(atom.relation)) {
      return InvalidArgumentError(
          StrCat("arity mismatch for ", schema.relation_name(atom.relation),
                 " in ", where));
    }
    for (const Term& t : atom.terms) {
      if (t.is_variable() && (t.var() < 0 || t.var() >= var_count)) {
        return InvalidArgumentError(
            StrCat("variable id out of range in ", where));
      }
    }
  }
  return OkStatus();
}

}  // namespace

bool Tgd::IsFull() const {
  for (bool e : existential) {
    if (e) return false;
  }
  return true;
}

bool Tgd::IsLav() const {
  if (body.size() != 1) return false;
  std::unordered_set<VariableId> seen;
  for (const Term& t : body[0].terms) {
    if (t.is_constant()) return false;
    if (!seen.insert(t.var()).second) return false;
  }
  return true;
}

bool Tgd::IsGav() const { return IsFull() && head.size() == 1; }

std::string Tgd::ToString(const Schema& schema,
                          const SymbolTable& symbols) const {
  return StrCat(ConjunctionToString(body, schema, symbols, var_names), " -> ",
                ExistsPrefix(existential, var_names),
                ConjunctionToString(head, schema, symbols, var_names));
}

std::string Egd::ToString(const Schema& schema,
                          const SymbolTable& symbols) const {
  return StrCat(ConjunctionToString(body, schema, symbols, var_names), " -> ",
                var_names[left_var], " = ", var_names[right_var]);
}

std::string DisjunctiveTgd::ToString(const Schema& schema,
                                     const SymbolTable& symbols) const {
  std::vector<std::string> options;
  options.reserve(head_disjuncts.size());
  for (const std::vector<Atom>& d : head_disjuncts) {
    options.push_back(
        StrCat("(", ConjunctionToString(d, schema, symbols, var_names), ")"));
  }
  return StrCat(ConjunctionToString(body, schema, symbols, var_names), " -> ",
                ExistsPrefix(existential, var_names),
                StrJoin(options, " | "));
}

Status ValidateTgd(const Tgd& tgd, const Schema& schema) {
  if (tgd.body.empty() || tgd.head.empty()) {
    return InvalidArgumentError("tgd must have non-empty body and head");
  }
  if (static_cast<int>(tgd.existential.size()) != tgd.var_count) {
    return InvalidArgumentError("tgd existential vector size mismatch");
  }
  PDX_RETURN_IF_ERROR(ValidateAtoms(tgd.body, schema, tgd.var_count, "body"));
  PDX_RETURN_IF_ERROR(ValidateAtoms(tgd.head, schema, tgd.var_count, "head"));
  std::vector<bool> in_body = VariablesIn(tgd.body, tgd.var_count);
  std::vector<bool> in_head = VariablesIn(tgd.head, tgd.var_count);
  for (VariableId v = 0; v < tgd.var_count; ++v) {
    if (tgd.existential[v] && in_body[v]) {
      return InvalidArgumentError(
          StrCat("existential variable ", tgd.var_names[v],
                 " occurs in the tgd body"));
    }
    if (!tgd.existential[v] && in_head[v] && !in_body[v]) {
      return InvalidArgumentError(
          StrCat("head variable ", tgd.var_names[v],
                 " is neither existential nor bound by the body"));
    }
  }
  return OkStatus();
}

Status ValidateEgd(const Egd& egd, const Schema& schema) {
  if (egd.body.empty()) {
    return InvalidArgumentError("egd must have a non-empty body");
  }
  PDX_RETURN_IF_ERROR(ValidateAtoms(egd.body, schema, egd.var_count, "body"));
  std::vector<bool> in_body = VariablesIn(egd.body, egd.var_count);
  for (VariableId v : {egd.left_var, egd.right_var}) {
    if (v < 0 || v >= egd.var_count || !in_body[v]) {
      return InvalidArgumentError(
          "egd equates a variable that does not occur in its body");
    }
  }
  return OkStatus();
}

Status ValidateDisjunctiveTgd(const DisjunctiveTgd& tgd,
                              const Schema& schema) {
  if (tgd.body.empty() || tgd.head_disjuncts.empty()) {
    return InvalidArgumentError(
        "disjunctive tgd must have a body and at least one disjunct");
  }
  if (static_cast<int>(tgd.existential.size()) != tgd.var_count) {
    return InvalidArgumentError("existential vector size mismatch");
  }
  PDX_RETURN_IF_ERROR(ValidateAtoms(tgd.body, schema, tgd.var_count, "body"));
  std::vector<bool> in_body = VariablesIn(tgd.body, tgd.var_count);
  for (const std::vector<Atom>& disjunct : tgd.head_disjuncts) {
    if (disjunct.empty()) {
      return InvalidArgumentError("empty disjunct in disjunctive tgd");
    }
    PDX_RETURN_IF_ERROR(
        ValidateAtoms(disjunct, schema, tgd.var_count, "head disjunct"));
    std::vector<bool> in_head = VariablesIn(disjunct, tgd.var_count);
    for (VariableId v = 0; v < tgd.var_count; ++v) {
      if (in_head[v] && !tgd.existential[v] && !in_body[v]) {
        return InvalidArgumentError(
            StrCat("head variable ", tgd.var_names[v],
                   " is neither existential nor bound by the body"));
      }
      if (tgd.existential[v] && in_body[v]) {
        return InvalidArgumentError(
            StrCat("existential variable ", tgd.var_names[v],
                   " occurs in the body"));
      }
    }
  }
  return OkStatus();
}

bool AtomsWithin(const std::vector<Atom>& atoms,
                 const std::vector<bool>& allowed) {
  for (const Atom& atom : atoms) {
    if (atom.relation < 0 ||
        atom.relation >= static_cast<RelationId>(allowed.size()) ||
        !allowed[atom.relation]) {
      return false;
    }
  }
  return true;
}

}  // namespace pdx
