#ifndef PDX_LOGIC_PARSER_H_
#define PDX_LOGIC_PARSER_H_

#include <string_view>

#include "base/status.h"
#include "logic/conjunctive_query.h"
#include "logic/dependency.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace pdx {

// Parses a program of dependencies in the paper's notation, one statement
// per '.'/';'-terminated clause:
//
//   E(x,z) & E(z,y) -> H(x,y).
//   H(x,y) -> exists z: E(x,z) & E(z,y).
//   P(x,z,y,w) & P(x,z2,y2,w2) -> z = z2.            # an egd
//   B(x) -> exists u: (R(u)) | (G(u)).               # disjunctive head
//
// Conventions:
//   * identifiers in term position are variables; constants are written
//     quoted ('a') or as numbers (42) and are interned into `symbols`;
//   * `exists v1,v2:` explicitly quantifies head variables; in addition,
//     any head variable that does not occur in the body is implicitly
//     existential (the common shorthand for st-tgds);
//   * conjunction is '&' or ','; disjuncts of a disjunctive head are
//     parenthesized conjunctions separated by '|';
//   * '#' starts a comment running to end of line.
//
// Relation names must exist in `schema` with matching arities.
StatusOr<DependencySet> ParseDependencies(std::string_view text,
                                          const Schema& schema,
                                          SymbolTable* symbols);

// Convenience wrappers that require the program to contain exactly one
// statement of the respective kind.
StatusOr<Tgd> ParseTgd(std::string_view text, const Schema& schema,
                       SymbolTable* symbols);
StatusOr<Egd> ParseEgd(std::string_view text, const Schema& schema,
                       SymbolTable* symbols);

// Parses a conjunctive query "q(x,y) :- H(x,z) & H(z,y)." (head name is
// arbitrary; "q() :- ..." or "q :- ..." is Boolean).
StatusOr<ConjunctiveQuery> ParseQuery(std::string_view text,
                                      const Schema& schema,
                                      SymbolTable* symbols);

// Parses a union of conjunctive queries: one query statement per clause,
// all with the same head arity.
StatusOr<UnionQuery> ParseUnionQuery(std::string_view text,
                                     const Schema& schema,
                                     SymbolTable* symbols);

}  // namespace pdx

#endif  // PDX_LOGIC_PARSER_H_
