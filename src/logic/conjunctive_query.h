#ifndef PDX_LOGIC_CONJUNCTIVE_QUERY_H_
#define PDX_LOGIC_CONJUNCTIVE_QUERY_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "logic/atom.h"
#include "relational/instance.h"
#include "relational/schema.h"
#include "relational/tuple.h"

namespace pdx {

// A conjunctive query  q(x1,...,xk) :- A1, ..., An.
// Head variables must occur in the body. k = 0 is a Boolean query.
struct ConjunctiveQuery {
  std::vector<VariableId> head_vars;
  std::vector<Atom> body;
  int var_count = 0;
  std::vector<std::string> var_names;

  int head_arity() const { return static_cast<int>(head_vars.size()); }
  bool IsBoolean() const { return head_vars.empty(); }

  std::string ToString(const Schema& schema, const SymbolTable& symbols) const;
};

// A union of conjunctive queries, all with the same head arity.
struct UnionQuery {
  std::vector<ConjunctiveQuery> disjuncts;

  int head_arity() const {
    return disjuncts.empty() ? 0 : disjuncts[0].head_arity();
  }
  bool IsBoolean() const { return head_arity() == 0; }

  std::string ToString(const Schema& schema, const SymbolTable& symbols) const;
};

Status ValidateQuery(const ConjunctiveQuery& query, const Schema& schema);
Status ValidateUnionQuery(const UnionQuery& query, const Schema& schema);

// Evaluates q over `instance` under naive semantics: labeled nulls are
// treated as ordinary values (this is what monotone evaluation inside the
// solvers needs). Returns the set of head tuples, deduplicated, in
// deterministic (sorted) order. A Boolean query returns {()} when true and
// {} when false.
std::vector<Tuple> EvaluateQuery(const ConjunctiveQuery& query,
                                 const Instance& instance);
std::vector<Tuple> EvaluateUnionQuery(const UnionQuery& query,
                                      const Instance& instance);

// Evaluates q and keeps only all-constant answers. This is the
// certain-answer evaluation of [8] on a universal solution: null-containing
// answers are artifacts of incompleteness and must be dropped.
std::vector<Tuple> EvaluateQueryNullFree(const ConjunctiveQuery& query,
                                         const Instance& instance);
std::vector<Tuple> EvaluateUnionQueryNullFree(const UnionQuery& query,
                                              const Instance& instance);

// True for Boolean q if some match exists.
bool EvaluateBoolean(const UnionQuery& query, const Instance& instance);

}  // namespace pdx

#endif  // PDX_LOGIC_CONJUNCTIVE_QUERY_H_
