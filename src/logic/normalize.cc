#include "logic/normalize.h"

#include <unordered_set>

#include "logic/implication.h"

namespace pdx {

std::vector<Tgd> SplitFullTgdHeads(const std::vector<Tgd>& tgds) {
  std::vector<Tgd> result;
  result.reserve(tgds.size());
  for (const Tgd& tgd : tgds) {
    if (!tgd.IsFull() || tgd.head.size() == 1) {
      result.push_back(tgd);
      continue;
    }
    for (const Atom& head_atom : tgd.head) {
      Tgd split = tgd;
      split.head = {head_atom};
      result.push_back(std::move(split));
    }
  }
  return result;
}

namespace {

// Canonical fingerprint of a tgd up to variable renaming: hash the atoms
// with variables renamed in first-occurrence order over body-then-head.
uint64_t TgdFingerprint(const Tgd& tgd) {
  std::vector<int> rename(tgd.var_count, -1);
  int next = 0;
  uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](uint64_t x) {
    x *= 0x9e3779b97f4a7c15ull;
    x ^= x >> 29;
    h = (h ^ x) * 0x100000001b3ull;
  };
  auto mix_atoms = [&](const std::vector<Atom>& atoms, uint64_t salt) {
    mix(salt);
    for (const Atom& atom : atoms) {
      mix(static_cast<uint64_t>(atom.relation) + 1);
      for (const Term& t : atom.terms) {
        if (t.is_constant()) {
          mix(t.constant().packed() * 2 + 1);
        } else {
          if (rename[t.var()] == -1) rename[t.var()] = next++;
          mix(uint64_t{static_cast<uint32_t>(rename[t.var()])} * 2);
        }
      }
    }
  };
  mix_atoms(tgd.body, 0x1111);
  mix_atoms(tgd.head, 0x2222);
  // Existentiality pattern matters: the same shape with a universal vs
  // existential variable is a different dependency.
  for (VariableId v = 0; v < tgd.var_count; ++v) {
    if (tgd.existential[v] && rename[v] != -1) {
      mix(0x3333 + static_cast<uint64_t>(rename[v]));
    }
  }
  return h;
}

}  // namespace

std::vector<Tgd> DeduplicateTgds(const std::vector<Tgd>& tgds) {
  // Note: atom *order* within body/head still distinguishes tgds (this is
  // a syntactic dedup, not full equivalence — use PruneImpliedTgds for
  // semantic redundancy).
  std::unordered_set<uint64_t> seen;
  std::vector<Tgd> result;
  result.reserve(tgds.size());
  for (const Tgd& tgd : tgds) {
    if (seen.insert(TgdFingerprint(tgd)).second) {
      result.push_back(tgd);
    }
  }
  return result;
}

StatusOr<std::vector<Tgd>> PruneImpliedTgds(const std::vector<Tgd>& tgds,
                                            const Schema& schema,
                                            SymbolTable* symbols) {
  std::vector<Tgd> kept = tgds;
  for (size_t i = 0; i < kept.size();) {
    DependencySet rest;
    for (size_t j = 0; j < kept.size(); ++j) {
      if (j != i) rest.tgds.push_back(kept[j]);
    }
    PDX_ASSIGN_OR_RETURN(bool implied,
                         ImpliesTgd(rest, kept[i], schema, symbols));
    if (implied) {
      kept.erase(kept.begin() + static_cast<int64_t>(i));
    } else {
      ++i;
    }
  }
  return kept;
}

}  // namespace pdx
