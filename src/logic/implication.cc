#include "logic/implication.h"

#include <unordered_map>

#include "chase/chase.h"
#include "hom/matcher.h"
#include "logic/dependency_graph.h"

namespace pdx {

namespace {

// Freezes a conjunction: each variable becomes one fresh labeled null,
// constants stay. Returns the canonical instance and the per-variable
// frozen values.
Instance Freeze(const std::vector<Atom>& atoms, int var_count,
                const Schema& schema, SymbolTable* symbols,
                std::vector<Value>* frozen) {
  frozen->assign(var_count, Value());
  std::vector<bool> assigned(var_count, false);
  Instance canonical(&schema);
  for (const Atom& atom : atoms) {
    Tuple tuple;
    tuple.reserve(atom.terms.size());
    for (const Term& t : atom.terms) {
      if (t.is_constant()) {
        tuple.push_back(t.constant());
        continue;
      }
      if (!assigned[t.var()]) {
        (*frozen)[t.var()] = symbols->FreshNull();
        assigned[t.var()] = true;
      }
      tuple.push_back((*frozen)[t.var()]);
    }
    canonical.AddFact(atom.relation, std::move(tuple));
  }
  return canonical;
}

}  // namespace

StatusOr<bool> IsContainedIn(const ConjunctiveQuery& q1,
                             const ConjunctiveQuery& q2,
                             const Schema& schema) {
  PDX_RETURN_IF_ERROR(ValidateQuery(q1, schema));
  PDX_RETURN_IF_ERROR(ValidateQuery(q2, schema));
  if (q1.head_arity() != q2.head_arity()) {
    return InvalidArgumentError(
        "containment requires queries of the same head arity");
  }
  // Chandra-Merlin: q1 ⊆ q2 iff there is a homomorphism from q2's body
  // into the frozen body of q1 mapping q2's head onto q1's frozen head.
  SymbolTable scratch_symbols;
  std::vector<Value> frozen;
  Instance canonical =
      Freeze(q1.body, q1.var_count, schema, &scratch_symbols, &frozen);
  Binding pinned = Binding::Empty(q2.var_count);
  for (int i = 0; i < q2.head_arity(); ++i) {
    VariableId v2 = q2.head_vars[i];
    Value target = frozen[q1.head_vars[i]];
    if (pinned.bound[v2]) {
      if (pinned.values[v2] != target) return false;
    } else {
      pinned.Bind(v2, target);
    }
  }
  return HasMatch(q2.body, q2.var_count, canonical, pinned);
}

namespace {

StatusOr<Instance> ChaseFrozenBody(const DependencySet& sigma,
                                   const std::vector<Atom>& body,
                                   int var_count, const Schema& schema,
                                   SymbolTable* symbols,
                                   std::vector<Value>* frozen,
                                   bool* chase_failed) {
  if (!IsWeaklyAcyclic(sigma.tgds, schema)) {
    return FailedPreconditionError(
        "implication via the chase requires a weakly acyclic tgd set");
  }
  if (!sigma.disjunctive_tgds.empty()) {
    return FailedPreconditionError(
        "implication is not supported for disjunctive tgds");
  }
  Instance canonical = Freeze(body, var_count, schema, symbols, frozen);
  ChaseResult result = Chase(canonical, sigma.tgds, sigma.egds, symbols);
  if (result.outcome == ChaseOutcome::kBudgetExhausted) {
    return ResourceExhaustedError("implication chase exceeded its budget");
  }
  *chase_failed = result.outcome == ChaseOutcome::kFailed;
  if (!*chase_failed) {
    // Egd steps may have merged frozen nulls; follow the chase's merge
    // log so each frozen variable denotes its final value.
    for (Value& v : *frozen) v = result.Resolve(v);
  }
  return std::move(result.instance);
}

}  // namespace

StatusOr<bool> ImpliesTgd(const DependencySet& sigma, const Tgd& candidate,
                          const Schema& schema, SymbolTable* symbols) {
  PDX_CHECK(symbols != nullptr);
  PDX_RETURN_IF_ERROR(ValidateTgd(candidate, schema));
  std::vector<Value> frozen;
  bool chase_failed = false;
  PDX_ASSIGN_OR_RETURN(
      Instance chased,
      ChaseFrozenBody(sigma, candidate.body, candidate.var_count, schema,
                      symbols, &frozen, &chase_failed));
  if (chase_failed) return true;  // body unsatisfiable under Σ
  Binding binding = Binding::Empty(candidate.var_count);
  std::vector<bool> in_body =
      VariablesIn(candidate.body, candidate.var_count);
  for (VariableId v = 0; v < candidate.var_count; ++v) {
    if (in_body[v]) binding.Bind(v, frozen[v]);
  }
  return HasMatch(candidate.head, candidate.var_count, chased, binding);
}

StatusOr<bool> ImpliesEgd(const DependencySet& sigma, const Egd& candidate,
                          const Schema& schema, SymbolTable* symbols) {
  PDX_CHECK(symbols != nullptr);
  PDX_RETURN_IF_ERROR(ValidateEgd(candidate, schema));
  std::vector<Value> frozen;
  bool chase_failed = false;
  PDX_ASSIGN_OR_RETURN(
      Instance chased,
      ChaseFrozenBody(sigma, candidate.body, candidate.var_count, schema,
                      symbols, &frozen, &chase_failed));
  if (chase_failed) return true;
  return frozen[candidate.left_var] == frozen[candidate.right_var];
}

}  // namespace pdx
