#include "logic/parser.h"

#include <cctype>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/string_util.h"

namespace pdx {

namespace {

enum class TokenKind {
  kIdent,       // relation names and variables
  kConstant,    // quoted string or number
  kLParen,
  kRParen,
  kComma,
  kAmp,         // '&'
  kPipe,        // '|'
  kArrow,       // '->'
  kTurnstile,   // ':-'
  kColon,
  kEquals,
  kEnd,         // '.' or ';'
  kEof,
};

struct Token {
  TokenKind kind;
  std::string text;
  size_t offset = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  StatusOr<Token> Next() {
    SkipSpaceAndComments();
    Token token;
    token.offset = pos_;
    if (pos_ >= text_.size()) {
      token.kind = TokenKind::kEof;
      return token;
    }
    char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      token.kind = TokenKind::kIdent;
      token.text = std::string(text_.substr(start, pos_ - start));
      return token;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      token.kind = TokenKind::kConstant;
      token.text = std::string(text_.substr(start, pos_ - start));
      return token;
    }
    if (c == '\'' || c == '"') {
      char quote = c;
      size_t start = ++pos_;
      while (pos_ < text_.size() && text_[pos_] != quote) ++pos_;
      if (pos_ >= text_.size()) {
        return InvalidArgumentError(
            StrCat("unterminated quoted constant at offset ", start - 1));
      }
      token.kind = TokenKind::kConstant;
      token.text = std::string(text_.substr(start, pos_ - start));
      ++pos_;
      return token;
    }
    ++pos_;
    switch (c) {
      case '(':
        token.kind = TokenKind::kLParen;
        return token;
      case ')':
        token.kind = TokenKind::kRParen;
        return token;
      case ',':
        token.kind = TokenKind::kComma;
        return token;
      case '&':
        token.kind = TokenKind::kAmp;
        return token;
      case '|':
        token.kind = TokenKind::kPipe;
        return token;
      case '=':
        token.kind = TokenKind::kEquals;
        return token;
      case '.':
      case ';':
        token.kind = TokenKind::kEnd;
        return token;
      case '-':
        if (pos_ < text_.size() && text_[pos_] == '>') {
          ++pos_;
          token.kind = TokenKind::kArrow;
          return token;
        }
        return InvalidArgumentError(
            StrCat("stray '-' at offset ", token.offset));
      case ':':
        if (pos_ < text_.size() && text_[pos_] == '-') {
          ++pos_;
          token.kind = TokenKind::kTurnstile;
          return token;
        }
        token.kind = TokenKind::kColon;
        return token;
      default:
        return InvalidArgumentError(StrCat("unexpected character '",
                                           std::string(1, c), "' at offset ",
                                           token.offset));
    }
  }

 private:
  void SkipSpaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        return;
      }
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

// Recursive-descent parser over the token stream. One Parser instance
// parses one program; variable scopes are per-statement.
class Parser {
 public:
  Parser(std::string_view text, const Schema& schema, SymbolTable* symbols)
      : lexer_(text), schema_(schema), symbols_(symbols) {}

  Status Init() { return Advance(); }

  bool AtEof() const { return current_.kind == TokenKind::kEof; }

  // statement := conj '->' rhs terminator
  Status ParseStatement(DependencySet* out) {
    vars_.clear();
    var_names_.clear();
    std::vector<Atom> body;
    PDX_RETURN_IF_ERROR(ParseConjunction(&body));
    PDX_RETURN_IF_ERROR(Expect(TokenKind::kArrow, "'->'"));

    // Egd: IDENT '=' IDENT (the identifier must be a known body variable).
    if (current_.kind == TokenKind::kIdent && LookaheadIsEquals()) {
      Egd egd;
      egd.body = std::move(body);
      PDX_RETURN_IF_ERROR(ParseEqualityVariable(&egd.left_var));
      PDX_RETURN_IF_ERROR(Expect(TokenKind::kEquals, "'='"));
      PDX_RETURN_IF_ERROR(ParseEqualityVariable(&egd.right_var));
      PDX_RETURN_IF_ERROR(ConsumeTerminator());
      egd.var_count = static_cast<int>(var_names_.size());
      egd.var_names = var_names_;
      PDX_RETURN_IF_ERROR(ValidateEgd(egd, schema_));
      out->egds.push_back(std::move(egd));
      return OkStatus();
    }

    // Tgd: optional 'exists v1,...:' then disjunction of conjunctions.
    std::vector<bool> declared_existential;
    int body_var_count = static_cast<int>(var_names_.size());
    if (current_.kind == TokenKind::kIdent && current_.text == "exists") {
      PDX_RETURN_IF_ERROR(Advance());
      while (true) {
        if (current_.kind != TokenKind::kIdent) {
          return ErrorHere("expected variable after 'exists'");
        }
        VariableId v = InternVariable(current_.text);
        if (v < body_var_count) {
          return ErrorHere(StrCat("existential variable ", current_.text,
                                  " already occurs in the body"));
        }
        if (static_cast<int>(declared_existential.size()) <= v) {
          declared_existential.resize(v + 1, false);
        }
        declared_existential[v] = true;
        PDX_RETURN_IF_ERROR(Advance());
        if (current_.kind == TokenKind::kComma) {
          PDX_RETURN_IF_ERROR(Advance());
          continue;
        }
        break;
      }
      PDX_RETURN_IF_ERROR(Expect(TokenKind::kColon, "':' after 'exists' list"));
    }

    std::vector<std::vector<Atom>> disjuncts;
    PDX_RETURN_IF_ERROR(ParseHeadDisjunction(&disjuncts));
    PDX_RETURN_IF_ERROR(ConsumeTerminator());

    int var_count = static_cast<int>(var_names_.size());
    std::vector<bool> existential(var_count, false);
    for (size_t v = 0; v < declared_existential.size(); ++v) {
      if (declared_existential[v]) existential[v] = true;
    }
    // Head variables not bound by the body are implicitly existential.
    for (VariableId v = body_var_count; v < var_count; ++v) {
      existential[v] = true;
    }

    if (disjuncts.size() == 1) {
      Tgd tgd;
      tgd.body = std::move(body);
      tgd.head = std::move(disjuncts[0]);
      tgd.var_count = var_count;
      tgd.existential = std::move(existential);
      tgd.var_names = var_names_;
      PDX_RETURN_IF_ERROR(ValidateTgd(tgd, schema_));
      out->tgds.push_back(std::move(tgd));
    } else {
      DisjunctiveTgd tgd;
      tgd.body = std::move(body);
      tgd.head_disjuncts = std::move(disjuncts);
      tgd.var_count = var_count;
      tgd.existential = std::move(existential);
      tgd.var_names = var_names_;
      PDX_RETURN_IF_ERROR(ValidateDisjunctiveTgd(tgd, schema_));
      out->disjunctive_tgds.push_back(std::move(tgd));
    }
    return OkStatus();
  }

  // query := IDENT ['(' varlist ')'] ':-' conj terminator
  Status ParseQueryStatement(ConjunctiveQuery* out) {
    vars_.clear();
    var_names_.clear();
    if (current_.kind != TokenKind::kIdent) {
      return ErrorHere("expected query head name");
    }
    PDX_RETURN_IF_ERROR(Advance());
    std::vector<std::string> head_names;
    if (current_.kind == TokenKind::kLParen) {
      PDX_RETURN_IF_ERROR(Advance());
      if (current_.kind != TokenKind::kRParen) {
        while (true) {
          if (current_.kind != TokenKind::kIdent) {
            return ErrorHere("expected variable in query head");
          }
          head_names.push_back(current_.text);
          PDX_RETURN_IF_ERROR(Advance());
          if (current_.kind == TokenKind::kComma) {
            PDX_RETURN_IF_ERROR(Advance());
            continue;
          }
          break;
        }
      }
      PDX_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    }
    PDX_RETURN_IF_ERROR(Expect(TokenKind::kTurnstile, "':-'"));
    // Intern head variables first so that their ids are stable even though
    // binding happens in the body.
    for (const std::string& name : head_names) {
      out->head_vars.push_back(InternVariable(name));
    }
    PDX_RETURN_IF_ERROR(ParseConjunction(&out->body));
    PDX_RETURN_IF_ERROR(ConsumeTerminator());
    out->var_count = static_cast<int>(var_names_.size());
    out->var_names = var_names_;
    return ValidateQuery(*out, schema_);
  }

 private:
  Status Advance() {
    PDX_ASSIGN_OR_RETURN(current_, lexer_.Next());
    return OkStatus();
  }

  Status Expect(TokenKind kind, const char* what) {
    if (current_.kind != kind) {
      return ErrorHere(StrCat("expected ", what));
    }
    return Advance();
  }

  Status ConsumeTerminator() {
    if (current_.kind == TokenKind::kEnd) return Advance();
    if (current_.kind == TokenKind::kEof) return OkStatus();
    return ErrorHere("expected '.' or ';' after statement");
  }

  Status ErrorHere(std::string message) {
    return InvalidArgumentError(
        StrCat(message, " at offset ", current_.offset,
               current_.text.empty() ? "" : StrCat(" (near '", current_.text,
                                                   "')")));
  }

  VariableId InternVariable(const std::string& name) {
    auto it = vars_.find(name);
    if (it != vars_.end()) return it->second;
    VariableId v = static_cast<VariableId>(var_names_.size());
    vars_.emplace(name, v);
    var_names_.push_back(name);
    return v;
  }

  // Peeks whether the token after the current identifier is '='. The lexer
  // has no pushback, so we re-lex from a saved copy.
  bool LookaheadIsEquals() {
    Lexer saved = lexer_;
    auto next = saved.Next();
    return next.ok() && next->kind == TokenKind::kEquals;
  }

  Status ParseEqualityVariable(VariableId* out) {
    if (current_.kind != TokenKind::kIdent) {
      return ErrorHere("expected variable in equality");
    }
    auto it = vars_.find(current_.text);
    if (it == vars_.end()) {
      return ErrorHere(StrCat("equated variable ", current_.text,
                              " does not occur in the body"));
    }
    *out = it->second;
    return Advance();
  }

  Status ParseAtom(Atom* atom) {
    if (current_.kind != TokenKind::kIdent) {
      return ErrorHere("expected relation name");
    }
    PDX_ASSIGN_OR_RETURN(atom->relation,
                         schema_.FindRelation(current_.text));
    PDX_RETURN_IF_ERROR(Advance());
    PDX_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
    atom->terms.clear();
    if (current_.kind != TokenKind::kRParen) {
      while (true) {
        if (current_.kind == TokenKind::kIdent) {
          atom->terms.push_back(Term::Var(InternVariable(current_.text)));
          PDX_RETURN_IF_ERROR(Advance());
        } else if (current_.kind == TokenKind::kConstant) {
          atom->terms.push_back(
              Term::Const(symbols_->InternConstant(current_.text)));
          PDX_RETURN_IF_ERROR(Advance());
        } else {
          return ErrorHere("expected term");
        }
        if (current_.kind == TokenKind::kComma) {
          PDX_RETURN_IF_ERROR(Advance());
          continue;
        }
        break;
      }
    }
    PDX_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    if (static_cast<int>(atom->terms.size()) !=
        schema_.arity(atom->relation)) {
      return InvalidArgumentError(
          StrCat("atom for ", schema_.relation_name(atom->relation), " has ",
                 atom->terms.size(), " terms, expected ",
                 schema_.arity(atom->relation)));
    }
    return OkStatus();
  }

  Status ParseConjunction(std::vector<Atom>* atoms) {
    while (true) {
      Atom atom;
      PDX_RETURN_IF_ERROR(ParseAtom(&atom));
      atoms->push_back(std::move(atom));
      if (current_.kind == TokenKind::kAmp ||
          current_.kind == TokenKind::kComma) {
        PDX_RETURN_IF_ERROR(Advance());
        continue;
      }
      return OkStatus();
    }
  }

  // head := conj | '(' conj ')' ('|' '(' conj ')')*
  Status ParseHeadDisjunction(std::vector<std::vector<Atom>>* disjuncts) {
    if (current_.kind != TokenKind::kLParen) {
      std::vector<Atom> conj;
      PDX_RETURN_IF_ERROR(ParseConjunction(&conj));
      disjuncts->push_back(std::move(conj));
      return OkStatus();
    }
    while (true) {
      PDX_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
      std::vector<Atom> conj;
      PDX_RETURN_IF_ERROR(ParseConjunction(&conj));
      PDX_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      disjuncts->push_back(std::move(conj));
      if (current_.kind == TokenKind::kPipe) {
        PDX_RETURN_IF_ERROR(Advance());
        continue;
      }
      return OkStatus();
    }
  }

  Lexer lexer_;
  Token current_;
  const Schema& schema_;
  SymbolTable* symbols_;
  std::unordered_map<std::string, VariableId> vars_;
  std::vector<std::string> var_names_;
};

}  // namespace

StatusOr<DependencySet> ParseDependencies(std::string_view text,
                                          const Schema& schema,
                                          SymbolTable* symbols) {
  PDX_CHECK(symbols != nullptr);
  Parser parser(text, schema, symbols);
  PDX_RETURN_IF_ERROR(parser.Init());
  DependencySet out;
  while (!parser.AtEof()) {
    PDX_RETURN_IF_ERROR(parser.ParseStatement(&out));
  }
  return out;
}

StatusOr<Tgd> ParseTgd(std::string_view text, const Schema& schema,
                       SymbolTable* symbols) {
  PDX_ASSIGN_OR_RETURN(DependencySet deps,
                       ParseDependencies(text, schema, symbols));
  if (deps.tgds.size() != 1 || !deps.egds.empty() ||
      !deps.disjunctive_tgds.empty()) {
    return InvalidArgumentError("expected exactly one tgd");
  }
  return std::move(deps.tgds[0]);
}

StatusOr<Egd> ParseEgd(std::string_view text, const Schema& schema,
                       SymbolTable* symbols) {
  PDX_ASSIGN_OR_RETURN(DependencySet deps,
                       ParseDependencies(text, schema, symbols));
  if (deps.egds.size() != 1 || !deps.tgds.empty() ||
      !deps.disjunctive_tgds.empty()) {
    return InvalidArgumentError("expected exactly one egd");
  }
  return std::move(deps.egds[0]);
}

StatusOr<ConjunctiveQuery> ParseQuery(std::string_view text,
                                      const Schema& schema,
                                      SymbolTable* symbols) {
  PDX_CHECK(symbols != nullptr);
  Parser parser(text, schema, symbols);
  PDX_RETURN_IF_ERROR(parser.Init());
  ConjunctiveQuery query;
  PDX_RETURN_IF_ERROR(parser.ParseQueryStatement(&query));
  if (!parser.AtEof()) {
    return InvalidArgumentError("expected exactly one query");
  }
  return query;
}

StatusOr<UnionQuery> ParseUnionQuery(std::string_view text,
                                     const Schema& schema,
                                     SymbolTable* symbols) {
  PDX_CHECK(symbols != nullptr);
  Parser parser(text, schema, symbols);
  PDX_RETURN_IF_ERROR(parser.Init());
  UnionQuery query;
  while (!parser.AtEof()) {
    ConjunctiveQuery q;
    PDX_RETURN_IF_ERROR(parser.ParseQueryStatement(&q));
    query.disjuncts.push_back(std::move(q));
  }
  PDX_RETURN_IF_ERROR(ValidateUnionQuery(query, schema));
  return query;
}

}  // namespace pdx
