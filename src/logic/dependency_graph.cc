#include "logic/dependency_graph.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "base/string_util.h"

namespace pdx {

PositionDependencyGraph::PositionDependencyGraph(const std::vector<Tgd>& tgds,
                                                 const Schema& schema) {
  offsets_.resize(schema.relation_count());
  int next = 0;
  for (RelationId r = 0; r < schema.relation_count(); ++r) {
    offsets_[r] = next;
    next += schema.arity(r);
  }
  position_count_ = next;

  std::set<std::tuple<int, int, bool>> dedup;
  for (const Tgd& tgd : tgds) {
    // Positions of each variable in body and head.
    std::vector<std::vector<int>> body_positions(tgd.var_count);
    std::vector<std::vector<int>> head_positions(tgd.var_count);
    std::vector<int> existential_head_positions;
    for (const Atom& atom : tgd.body) {
      for (int i = 0; i < static_cast<int>(atom.terms.size()); ++i) {
        if (atom.terms[i].is_variable()) {
          body_positions[atom.terms[i].var()].push_back(
              PositionId(atom.relation, i));
        }
      }
    }
    for (const Atom& atom : tgd.head) {
      for (int i = 0; i < static_cast<int>(atom.terms.size()); ++i) {
        if (!atom.terms[i].is_variable()) continue;
        VariableId v = atom.terms[i].var();
        int pos = PositionId(atom.relation, i);
        if (tgd.existential[v]) {
          existential_head_positions.push_back(pos);
        } else {
          head_positions[v].push_back(pos);
        }
      }
    }
    for (VariableId v = 0; v < tgd.var_count; ++v) {
      if (tgd.existential[v]) continue;
      if (head_positions[v].empty()) continue;  // x must occur in the head
      for (int from : body_positions[v]) {
        for (int to : head_positions[v]) {
          dedup.emplace(from, to, false);
        }
        for (int to : existential_head_positions) {
          dedup.emplace(from, to, true);
        }
      }
    }
  }
  edges_.reserve(dedup.size());
  for (const auto& [from, to, special] : dedup) {
    edges_.push_back(Edge{from, to, special});
  }
}

std::vector<int> PositionDependencyGraph::StronglyConnectedComponents() const {
  // Iterative Tarjan SCC.
  std::vector<std::vector<int>> adj(position_count_);
  for (const Edge& e : edges_) adj[e.from].push_back(e.to);

  std::vector<int> component(position_count_, -1);
  std::vector<int> index(position_count_, -1);
  std::vector<int> lowlink(position_count_, 0);
  std::vector<bool> on_stack(position_count_, false);
  std::vector<int> stack;
  int next_index = 0;
  int next_component = 0;

  struct Frame {
    int node;
    size_t child = 0;
  };
  for (int start = 0; start < position_count_; ++start) {
    if (index[start] != -1) continue;
    std::vector<Frame> frames;
    frames.push_back(Frame{start});
    index[start] = lowlink[start] = next_index++;
    stack.push_back(start);
    on_stack[start] = true;
    while (!frames.empty()) {
      Frame& frame = frames.back();
      int u = frame.node;
      if (frame.child < adj[u].size()) {
        int v = adj[u][frame.child++];
        if (index[v] == -1) {
          index[v] = lowlink[v] = next_index++;
          stack.push_back(v);
          on_stack[v] = true;
          frames.push_back(Frame{v});
        } else if (on_stack[v]) {
          lowlink[u] = std::min(lowlink[u], index[v]);
        }
      } else {
        if (lowlink[u] == index[u]) {
          while (true) {
            int w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            component[w] = next_component;
            if (w == u) break;
          }
          ++next_component;
        }
        frames.pop_back();
        if (!frames.empty()) {
          int parent = frames.back().node;
          lowlink[parent] = std::min(lowlink[parent], lowlink[u]);
        }
      }
    }
  }
  return component;
}

bool PositionDependencyGraph::IsWeaklyAcyclic() const {
  std::vector<int> component = StronglyConnectedComponents();
  for (const Edge& e : edges_) {
    if (e.special && component[e.from] == component[e.to]) return false;
  }
  return true;
}

std::vector<int> PositionDependencyGraph::PositionRanks() const {
  std::vector<int> component = StronglyConnectedComponents();
  if (component.empty()) {
    return std::vector<int>(position_count_, 0);
  }
  int num_components =
      *std::max_element(component.begin(), component.end()) + 1;
  // Condensation edges; a special edge inside an SCC means not weakly
  // acyclic.
  std::vector<std::vector<std::pair<int, bool>>> cadj(num_components);
  std::vector<int> indegree(num_components, 0);
  std::set<std::tuple<int, int, bool>> dedup;
  for (const Edge& e : edges_) {
    int cu = component[e.from];
    int cv = component[e.to];
    if (cu == cv) {
      if (e.special) return {};
      continue;
    }
    if (dedup.emplace(cu, cv, e.special).second) {
      cadj[cu].emplace_back(cv, e.special);
      ++indegree[cv];
    }
  }
  // Longest special-edge count via topological DP on the condensation.
  std::vector<int> crank(num_components, 0);
  std::vector<int> queue;
  for (int c = 0; c < num_components; ++c) {
    if (indegree[c] == 0) queue.push_back(c);
  }
  size_t head = 0;
  while (head < queue.size()) {
    int c = queue[head++];
    for (const auto& [to, special] : cadj[c]) {
      crank[to] = std::max(crank[to], crank[c] + (special ? 1 : 0));
      if (--indegree[to] == 0) queue.push_back(to);
    }
  }
  std::vector<int> ranks(position_count_);
  for (int p = 0; p < position_count_; ++p) ranks[p] = crank[component[p]];
  return ranks;
}

int PositionDependencyGraph::MaxRank() const {
  if (!IsWeaklyAcyclic()) return -1;
  std::vector<int> ranks = PositionRanks();
  if (ranks.empty()) return 0;
  return *std::max_element(ranks.begin(), ranks.end());
}

std::string PositionDependencyGraph::PositionName(
    int position, const Schema& schema) const {
  for (RelationId r = schema.relation_count() - 1; r >= 0; --r) {
    if (position >= offsets_[r]) {
      return StrCat(schema.relation_name(r), ".", position - offsets_[r]);
    }
  }
  return StrCat("?", position);
}

bool IsWeaklyAcyclic(const std::vector<Tgd>& tgds, const Schema& schema) {
  return PositionDependencyGraph(tgds, schema).IsWeaklyAcyclic();
}

ChaseBound EstimateChaseBound(const std::vector<Tgd>& tgds,
                              const Schema& schema, int64_t domain_size) {
  constexpr double kCap = 1e18;
  ChaseBound bound;
  PositionDependencyGraph graph(tgds, schema);
  bound.weakly_acyclic = graph.IsWeaklyAcyclic();
  if (!bound.weakly_acyclic) return bound;  // no finite bound in general
  bound.max_rank = graph.MaxRank();

  // Largest body-variable count and existential count over the tgds.
  double max_body_vars = 1;
  double max_existentials = 1;
  for (const Tgd& tgd : tgds) {
    int body_vars = 0;
    int existentials = 0;
    std::vector<bool> in_body = VariablesIn(tgd.body, tgd.var_count);
    for (VariableId v = 0; v < tgd.var_count; ++v) {
      if (in_body[v]) ++body_vars;
      if (tgd.existential[v]) ++existentials;
    }
    max_body_vars = std::max(max_body_vars, static_cast<double>(body_vars));
    max_existentials =
        std::max(max_existentials, static_cast<double>(existentials));
  }
  double tgd_count = std::max<double>(1, tgds.size());

  // Rank recursion: values available below rank i bound the triggers that
  // can create rank-i nulls. V_0 = n; V_{i+1} = V_i + T*E*(V_i)^B.
  double values = std::max<double>(1, static_cast<double>(domain_size));
  for (int i = 0; i < bound.max_rank; ++i) {
    double created =
        tgd_count * max_existentials * std::pow(values, max_body_vars);
    values = std::min(kCap, values + created);
  }
  bound.value_bound = values;

  double facts = 0;
  for (RelationId r = 0; r < schema.relation_count(); ++r) {
    facts += std::pow(values, schema.arity(r));
    if (facts > kCap) {
      facts = kCap;
      break;
    }
  }
  bound.fact_bound = std::min(kCap, facts);
  return bound;
}

bool IsRelationGraphAcyclic(const std::vector<Tgd>& tgds,
                            const Schema& schema) {
  int n = schema.relation_count();
  std::vector<std::vector<int>> adj(n);
  std::set<std::pair<int, int>> dedup;
  for (const Tgd& tgd : tgds) {
    for (const Atom& b : tgd.body) {
      for (const Atom& h : tgd.head) {
        if (dedup.emplace(b.relation, h.relation).second) {
          adj[b.relation].push_back(h.relation);
        }
      }
    }
  }
  // Acyclic iff DFS finds no back edge.
  std::vector<int> state(n, 0);  // 0 = unvisited, 1 = in progress, 2 = done
  for (int start = 0; start < n; ++start) {
    if (state[start] != 0) continue;
    std::vector<std::pair<int, size_t>> stack{{start, 0}};
    state[start] = 1;
    while (!stack.empty()) {
      auto& [u, child] = stack.back();
      if (child < adj[u].size()) {
        int v = adj[u][child++];
        if (state[v] == 1) return false;
        if (state[v] == 0) {
          state[v] = 1;
          stack.emplace_back(v, 0);
        }
      } else {
        state[u] = 2;
        stack.pop_back();
      }
    }
  }
  return true;
}

}  // namespace pdx
