#include "obs/metrics.h"

#ifndef PDX_OBS_NOOP

#include <algorithm>
#include <atomic>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "base/logging.h"

namespace pdx {
namespace obs {
namespace internal {

// Slot budget per thread shard. Every counter takes one slot, every
// histogram buckets+overflow+sum slots; registration checks the budget.
// 1024 slots = 8 KiB per (thread, registry) pair.
constexpr uint32_t kShardSlots = 1024;

struct ShardBlock {
  std::atomic<int64_t> slots[kShardSlots];  // value-initialized to zero
};

struct MetricDef {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  uint32_t slot = 0;        // first sharded slot (counter / histogram)
  uint32_t slot_count = 0;  // 1, or buckets + overflow + sum
  uint32_t gauge_index = 0;
  std::vector<int64_t> bounds;  // histogram upper bounds (finite)
};

struct MetricsCore {
  const uint64_t id;
  mutable std::mutex mu;
  std::unordered_map<std::string, size_t> by_name;  // -> defs index
  std::deque<MetricDef> defs;                       // stable addresses
  uint32_t next_slot = 0;
  std::deque<std::atomic<int64_t>> gauges;  // stable addresses
  std::vector<std::shared_ptr<ShardBlock>> shards;  // live threads
  int64_t retired[kShardSlots] = {};                // folded exited threads

  MetricsCore() : id(NextId()) {}

  static uint64_t NextId() {
    static std::atomic<uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
  }
};

namespace {

// Per-thread shard cache. Each entry keeps the shard block alive past the
// registry's death (writes then land in an orphaned block, harmlessly);
// conversely, when the thread exits while the registry lives, the entry's
// destructor folds the block into the registry's retired totals so no
// count is lost and dead threads cost no memory.
struct TlsCache {
  struct Entry {
    uint64_t id = 0;
    std::weak_ptr<MetricsCore> core;
    std::shared_ptr<ShardBlock> block;
  };

  // Single-entry inline cache for the hot path (one registry in practice).
  uint64_t last_id = 0;
  std::atomic<int64_t>* last_slots = nullptr;
  std::vector<Entry> entries;

  ~TlsCache() {
    for (Entry& e : entries) {
      std::shared_ptr<MetricsCore> core = e.core.lock();
      if (core == nullptr) continue;
      std::lock_guard<std::mutex> lock(core->mu);
      for (uint32_t s = 0; s < kShardSlots; ++s) {
        core->retired[s] += e.block->slots[s].load(std::memory_order_relaxed);
      }
      auto it = std::find(core->shards.begin(), core->shards.end(), e.block);
      if (it != core->shards.end()) core->shards.erase(it);
    }
  }
};

thread_local TlsCache tls_cache;

std::atomic<int64_t>* ShardFor(const std::shared_ptr<MetricsCore>& core) {
  TlsCache& tls = tls_cache;
  if (tls.last_id == core->id) return tls.last_slots;
  for (TlsCache::Entry& e : tls.entries) {
    if (e.id == core->id) {
      tls.last_id = e.id;
      tls.last_slots = e.block->slots;
      return tls.last_slots;
    }
  }
  auto block = std::make_shared<ShardBlock>();
  {
    std::lock_guard<std::mutex> lock(core->mu);
    core->shards.push_back(block);
  }
  tls.entries.push_back({core->id, core, block});
  tls.last_id = core->id;
  tls.last_slots = block->slots;
  return tls.last_slots;
}

// Sum of one sharded slot across retired totals and live shards. Caller
// holds core->mu.
int64_t SumSlotLocked(const MetricsCore& core, uint32_t slot) {
  int64_t total = core.retired[slot];
  for (const auto& shard : core.shards) {
    total += shard->slots[slot].load(std::memory_order_relaxed);
  }
  return total;
}

HistogramData ReadHistogramLocked(const MetricsCore& core,
                                  const MetricDef& def) {
  HistogramData data;
  data.upper_bounds = def.bounds;
  uint32_t buckets = def.slot_count - 1;  // last slot is the sum
  data.bucket_counts.resize(buckets);
  for (uint32_t b = 0; b < buckets; ++b) {
    data.bucket_counts[b] = SumSlotLocked(core, def.slot + b);
    data.count += data.bucket_counts[b];
  }
  data.sum = SumSlotLocked(core, def.slot + buckets);
  return data;
}

}  // namespace
}  // namespace internal

using internal::MetricDef;
using internal::MetricsCore;

void Counter::Inc(int64_t n) {
  internal::ShardFor(core_)[slot_].fetch_add(n, std::memory_order_relaxed);
}

int64_t Counter::Value() const {
  std::lock_guard<std::mutex> lock(core_->mu);
  return internal::SumSlotLocked(*core_, slot_);
}

void Gauge::Set(int64_t v) {
  core_->gauges[index_].store(v, std::memory_order_relaxed);
}

void Gauge::Add(int64_t n) {
  core_->gauges[index_].fetch_add(n, std::memory_order_relaxed);
}

int64_t Gauge::Value() const {
  return core_->gauges[index_].load(std::memory_order_relaxed);
}

void Histogram::Observe(int64_t v) {
  // Buckets are cumulative-exclusive here (each observation lands in
  // exactly one slot); the Prometheus exporter re-cumulates.
  const std::vector<int64_t>& bounds = *bounds_;
  uint32_t b = 0;
  while (b < bounds.size() && v > bounds[b]) ++b;
  std::atomic<int64_t>* slots = internal::ShardFor(core_);
  slots[slot_ + b].fetch_add(1, std::memory_order_relaxed);
  slots[slot_ + bucket_count_].fetch_add(v, std::memory_order_relaxed);
}

HistogramData Histogram::Value() const {
  std::lock_guard<std::mutex> lock(core_->mu);
  for (const MetricDef& def : core_->defs) {
    if (def.kind == MetricKind::kHistogram && def.slot == slot_) {
      return internal::ReadHistogramLocked(*core_, def);
    }
  }
  return {};
}

MetricsRegistry::MetricsRegistry() : core_(std::make_shared<MetricsCore>()) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: worker threads may outlive main's statics, and the
  // TLS cache folds into the core on thread exit.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

namespace {

// Finds or creates the def for `name`, enforcing kind agreement. Caller
// holds core->mu.
MetricDef* FindOrCreateLocked(MetricsCore* core, const std::string& name,
                              MetricKind kind, uint32_t slot_count,
                              std::vector<int64_t> bounds) {
  auto it = core->by_name.find(name);
  if (it != core->by_name.end()) {
    MetricDef& def = core->defs[it->second];
    PDX_CHECK(def.kind == kind) << "metric " << name << " re-registered "
                                << "under a different kind";
    if (kind == MetricKind::kHistogram) {
      PDX_CHECK(def.bounds == bounds)
          << "histogram " << name << " re-registered with different buckets";
    }
    return &def;
  }
  MetricDef def;
  def.name = name;
  def.kind = kind;
  def.bounds = std::move(bounds);
  if (kind == MetricKind::kGauge) {
    def.gauge_index = static_cast<uint32_t>(core->gauges.size());
    core->gauges.emplace_back(0);
  } else {
    PDX_CHECK(core->next_slot + slot_count <= internal::kShardSlots)
        << "metric slot budget exhausted registering " << name;
    def.slot = core->next_slot;
    def.slot_count = slot_count;
    core->next_slot += slot_count;
  }
  core->defs.push_back(std::move(def));
  core->by_name[name] = core->defs.size() - 1;
  return &core->defs.back();
}

}  // namespace

Counter MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(core_->mu);
  MetricDef* def =
      FindOrCreateLocked(core_.get(), name, MetricKind::kCounter, 1, {});
  Counter counter;
  counter.core_ = core_;
  counter.slot_ = def->slot;
  return counter;
}

Gauge MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(core_->mu);
  MetricDef* def =
      FindOrCreateLocked(core_.get(), name, MetricKind::kGauge, 0, {});
  Gauge gauge;
  gauge.core_ = core_;
  gauge.index_ = def->gauge_index;
  return gauge;
}

Histogram MetricsRegistry::GetHistogram(const std::string& name,
                                        std::vector<int64_t> upper_bounds) {
  for (size_t i = 1; i < upper_bounds.size(); ++i) {
    PDX_CHECK(upper_bounds[i - 1] < upper_bounds[i])
        << "histogram " << name << " bounds must be strictly increasing";
  }
  std::lock_guard<std::mutex> lock(core_->mu);
  uint32_t buckets = static_cast<uint32_t>(upper_bounds.size()) + 1;
  MetricDef* def = FindOrCreateLocked(core_.get(), name,
                                      MetricKind::kHistogram, buckets + 1,
                                      std::move(upper_bounds));
  Histogram hist;
  hist.core_ = core_;
  hist.slot_ = def->slot;
  hist.bucket_count_ = buckets;
  hist.bounds_ = &def->bounds;
  return hist;
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(core_->mu);
  std::vector<MetricSnapshot> out;
  out.reserve(core_->defs.size());
  for (const MetricDef& def : core_->defs) {
    MetricSnapshot snap;
    snap.name = def.name;
    snap.kind = def.kind;
    switch (def.kind) {
      case MetricKind::kCounter:
        snap.value = internal::SumSlotLocked(*core_, def.slot);
        break;
      case MetricKind::kGauge:
        snap.value =
            core_->gauges[def.gauge_index].load(std::memory_order_relaxed);
        break;
      case MetricKind::kHistogram:
        snap.hist = internal::ReadHistogramLocked(*core_, def);
        break;
    }
    out.push_back(std::move(snap));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(core_->mu);
  for (uint32_t s = 0; s < internal::kShardSlots; ++s) {
    core_->retired[s] = 0;
  }
  for (const auto& shard : core_->shards) {
    for (uint32_t s = 0; s < internal::kShardSlots; ++s) {
      shard->slots[s].store(0, std::memory_order_relaxed);
    }
  }
  for (auto& gauge : core_->gauges) {
    gauge.store(0, std::memory_order_relaxed);
  }
}

}  // namespace obs
}  // namespace pdx

#endif  // PDX_OBS_NOOP
