#ifndef PDX_OBS_TRACE_H_
#define PDX_OBS_TRACE_H_

// Structured tracing: RAII spans with parent/child nesting and typed
// attributes, recorded into a bounded in-memory ring on span end. Off by
// default at runtime — an inactive Span construction is one relaxed load —
// and compiled out entirely under -DPDX_OBS_NOOP=ON.
//
// Span taxonomy (see DESIGN.md "Observability"): the chase emits `chase`,
// `chase.round`, `chase.tgd`, `chase.collect_part`, `chase.egd_fixpoint`
// and `chase.egd_pass`; the solvers emit `solve.generic` / `solve.node`
// and `solve.ctract` / `ctract.st_chase` / `ctract.ts_chase` /
// `ctract.block_check` — one span per phase of the paper's Fig. 3
// algorithm. Parent/child linkage is per-thread (a thread_local span
// stack); work fanned to pool workers passes the parent id explicitly.
//
//   Span span(Tracer::Global(), "chase.round");
//   span.AttrInt("round", round);
//   ...   // span ends (and is recorded) at scope exit
//
// Export with ExportChromeTrace(tracer.Drain()) — see obs/export.h.

#include <cstdint>
#include <string>
#include <vector>

#ifndef PDX_OBS_NOOP
#include <atomic>
#include <memory>
#include <mutex>
#endif

namespace pdx {
namespace obs {

// One typed span attribute.
struct SpanAttr {
  enum Kind { kInt, kDouble, kBool, kString };
  std::string key;
  Kind kind = kInt;
  int64_t i = 0;
  double d = 0;
  bool b = false;
  std::string s;
};

// A completed span. Timestamps are nanoseconds relative to the tracer's
// Enable() call (steady clock).
struct SpanRecord {
  std::string name;
  uint64_t id = 0;
  uint64_t parent = 0;  // 0 = root
  int tid = 0;          // small per-thread ordinal, stable within a run
  int64_t start_ns = 0;
  int64_t dur_ns = 0;
  // Per-span thread resource deltas, captured when the tracer was enabled
  // with rusage=true on a platform with getrusage(RUSAGE_THREAD) (Linux).
  // cpu_ns is user+system CPU time actually charged to the owning thread
  // while the span was open; ctx_switches counts involuntary context
  // switches. Both are -1 ("not captured") otherwise — wall-clock skew on
  // a shard with cpu_ns << dur_ns is scheduler preemption, not work
  // imbalance. Exporters emit them only when >= 0.
  int64_t cpu_ns = -1;
  int64_t ctx_switches = -1;
  std::vector<SpanAttr> attrs;
};

#ifndef PDX_OBS_NOOP

class Tracer {
 public:
  Tracer();
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // The process-wide tracer (disabled until Enable is called).
  static Tracer& Global();

  // Starts recording. Each recording thread gets its own ring of
  // `capacity` spans — Record() takes only that ring's (uncontended)
  // mutex, so pool workers never serialize on a tracer-wide lock. When a
  // thread's ring is full its oldest record is overwritten and `dropped`
  // grows. With rusage=true, spans also capture per-thread CPU time and
  // involuntary context-switch deltas (SpanRecord::cpu_ns/ctx_switches;
  // Linux getrusage(RUSAGE_THREAD), -1 elsewhere).
  void Enable(size_t capacity = 1 << 16, bool rusage = false);
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  bool rusage_enabled() const {
    return rusage_.load(std::memory_order_relaxed);
  }

  // Completed spans from every thread's ring, merged in completion order
  // (end timestamp); clears the rings (recording continues if still
  // enabled).
  std::vector<SpanRecord> Drain();

  // Spans overwritten because a thread's ring was full since the last
  // Enable, summed across threads.
  uint64_t dropped() const;

 private:
  friend class Span;

  // One thread's span ring; defined in trace.cc.
  struct ThreadRing;

  // The calling thread's ring under this tracer's current epoch, from a
  // thread_local cache keyed by (tracer uid, epoch) — the registry mutex
  // is only taken on the first record after an Enable().
  ThreadRing* RingForThisThread();

  void Record(SpanRecord record);
  uint64_t NextSpanId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }
  int64_t NowRelative() const;

  std::atomic<bool> enabled_{false};
  std::atomic<bool> rusage_{false};
  std::atomic<uint64_t> next_id_{1};
  // Distinguishes tracer instances across address reuse, and invalidates
  // thread-local ring caches when Enable() starts a new epoch.
  uint64_t uid_ = 0;
  std::atomic<uint64_t> epoch_{0};
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<ThreadRing>> rings_;  // guarded by mu_
  size_t capacity_ = 0;                             // guarded by mu_
  int64_t base_ns_ = 0;  // steady-clock origin set by Enable
};

// RAII span: starts at construction, records into the tracer at
// destruction. Inactive (a single branch) when the tracer is disabled.
class Span {
 public:
  explicit Span(const char* name) : Span(Tracer::Global(), name) {}
  Span(Tracer& tracer, const char* name);
  // Explicit-parent form for work fanned across threads: the thread_local
  // nesting stack does not cross threads, so pool workers name the batch
  // span they run under.
  Span(Tracer& tracer, const char* name, uint64_t parent);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // 0 when inactive; pass to worker-side spans as the explicit parent.
  uint64_t id() const { return record_.id; }

  Span& AttrInt(const char* key, int64_t v);
  Span& AttrDouble(const char* key, double v);
  Span& AttrBool(const char* key, bool v);
  Span& AttrStr(const char* key, std::string v);

 private:
  void Start(Tracer& tracer, const char* name, uint64_t parent,
             bool push_stack);

  Tracer* tracer_ = nullptr;  // null = inactive
  bool pushed_ = false;
  bool rusage_ = false;   // baselines below are valid
  int64_t cpu0_ns_ = 0;   // thread CPU time at Start
  int64_t ctx0_ = 0;      // involuntary context switches at Start
  SpanRecord record_;
};

#else  // PDX_OBS_NOOP: spans and the tracer cost nothing at all.

class Tracer {
 public:
  static Tracer& Global() {
    static Tracer tracer;
    return tracer;
  }
  void Enable(size_t = 0, bool = false) {}
  void Disable() {}
  bool enabled() const { return false; }
  bool rusage_enabled() const { return false; }
  std::vector<SpanRecord> Drain() { return {}; }
  uint64_t dropped() const { return 0; }
};

class Span {
 public:
  explicit Span(const char*) {}
  Span(Tracer&, const char*) {}
  Span(Tracer&, const char*, uint64_t) {}
  uint64_t id() const { return 0; }
  Span& AttrInt(const char*, int64_t) { return *this; }
  Span& AttrDouble(const char*, double) { return *this; }
  Span& AttrBool(const char*, bool) { return *this; }
  Span& AttrStr(const char*, std::string) { return *this; }
};

#endif  // PDX_OBS_NOOP

}  // namespace obs
}  // namespace pdx

#endif  // PDX_OBS_TRACE_H_
