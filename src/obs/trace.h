#ifndef PDX_OBS_TRACE_H_
#define PDX_OBS_TRACE_H_

// Structured tracing: RAII spans with parent/child nesting and typed
// attributes, recorded into a bounded in-memory ring on span end. Off by
// default at runtime — an inactive Span construction is one relaxed load —
// and compiled out entirely under -DPDX_OBS_NOOP=ON.
//
// Span taxonomy (see DESIGN.md "Observability"): the chase emits `chase`,
// `chase.round`, `chase.tgd`, `chase.collect_part`, `chase.egd_fixpoint`
// and `chase.egd_pass`; the solvers emit `solve.generic` / `solve.node`
// and `solve.ctract` / `ctract.st_chase` / `ctract.ts_chase` /
// `ctract.block_check` — one span per phase of the paper's Fig. 3
// algorithm. Parent/child linkage is per-thread (a thread_local span
// stack); work fanned to pool workers passes the parent id explicitly.
//
//   Span span(Tracer::Global(), "chase.round");
//   span.AttrInt("round", round);
//   ...   // span ends (and is recorded) at scope exit
//
// Export with ExportChromeTrace(tracer.Drain()) — see obs/export.h.

#include <cstdint>
#include <string>
#include <vector>

#ifndef PDX_OBS_NOOP
#include <atomic>
#include <mutex>
#endif

namespace pdx {
namespace obs {

// One typed span attribute.
struct SpanAttr {
  enum Kind { kInt, kDouble, kBool, kString };
  std::string key;
  Kind kind = kInt;
  int64_t i = 0;
  double d = 0;
  bool b = false;
  std::string s;
};

// A completed span. Timestamps are nanoseconds relative to the tracer's
// Enable() call (steady clock).
struct SpanRecord {
  std::string name;
  uint64_t id = 0;
  uint64_t parent = 0;  // 0 = root
  int tid = 0;          // small per-thread ordinal, stable within a run
  int64_t start_ns = 0;
  int64_t dur_ns = 0;
  std::vector<SpanAttr> attrs;
};

#ifndef PDX_OBS_NOOP

class Tracer {
 public:
  Tracer() = default;
  ~Tracer() = default;

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // The process-wide tracer (disabled until Enable is called).
  static Tracer& Global();

  // Starts recording into a fresh ring of `capacity` spans. When the ring
  // is full the oldest record is overwritten and `dropped` grows.
  void Enable(size_t capacity = 1 << 16);
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Completed spans in completion order; clears the ring (recording
  // continues if still enabled).
  std::vector<SpanRecord> Drain();

  // Spans overwritten because the ring was full since the last Enable.
  uint64_t dropped() const;

 private:
  friend class Span;

  void Record(SpanRecord record);
  uint64_t NextSpanId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }
  int64_t NowRelative() const;

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_id_{1};
  mutable std::mutex mu_;
  std::vector<SpanRecord> ring_;  // guarded by mu_
  size_t capacity_ = 0;           // guarded by mu_
  size_t next_ = 0;               // overwrite cursor, guarded by mu_
  uint64_t dropped_ = 0;          // guarded by mu_
  int64_t base_ns_ = 0;           // steady-clock origin set by Enable
};

// RAII span: starts at construction, records into the tracer at
// destruction. Inactive (a single branch) when the tracer is disabled.
class Span {
 public:
  explicit Span(const char* name) : Span(Tracer::Global(), name) {}
  Span(Tracer& tracer, const char* name);
  // Explicit-parent form for work fanned across threads: the thread_local
  // nesting stack does not cross threads, so pool workers name the batch
  // span they run under.
  Span(Tracer& tracer, const char* name, uint64_t parent);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // 0 when inactive; pass to worker-side spans as the explicit parent.
  uint64_t id() const { return record_.id; }

  Span& AttrInt(const char* key, int64_t v);
  Span& AttrDouble(const char* key, double v);
  Span& AttrBool(const char* key, bool v);
  Span& AttrStr(const char* key, std::string v);

 private:
  void Start(Tracer& tracer, const char* name, uint64_t parent,
             bool push_stack);

  Tracer* tracer_ = nullptr;  // null = inactive
  bool pushed_ = false;
  SpanRecord record_;
};

#else  // PDX_OBS_NOOP: spans and the tracer cost nothing at all.

class Tracer {
 public:
  static Tracer& Global() {
    static Tracer tracer;
    return tracer;
  }
  void Enable(size_t = 0) {}
  void Disable() {}
  bool enabled() const { return false; }
  std::vector<SpanRecord> Drain() { return {}; }
  uint64_t dropped() const { return 0; }
};

class Span {
 public:
  explicit Span(const char*) {}
  Span(Tracer&, const char*) {}
  Span(Tracer&, const char*, uint64_t) {}
  uint64_t id() const { return 0; }
  Span& AttrInt(const char*, int64_t) { return *this; }
  Span& AttrDouble(const char*, double) { return *this; }
  Span& AttrBool(const char*, bool) { return *this; }
  Span& AttrStr(const char*, std::string) { return *this; }
};

#endif  // PDX_OBS_NOOP

}  // namespace obs
}  // namespace pdx

#endif  // PDX_OBS_TRACE_H_
