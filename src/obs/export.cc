#include "obs/export.h"

#include <cstdio>

#include "base/string_util.h"
#include "obs/json_writer.h"

namespace pdx {
namespace obs {

namespace {

// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. Anything else maps
// to '_' so arbitrary registered names still export (golden-tested).
std::string SanitizeMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (size_t i = 0; i < name.size(); ++i) {
    char c = name[i];
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
              c == ':' || (i > 0 && c >= '0' && c <= '9');
    out += ok ? c : '_';
  }
  if (out.empty()) out.push_back('_');
  return out;
}

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "untyped";
}

}  // namespace

std::string ExportPrometheus(const std::vector<MetricSnapshot>& snapshot) {
  std::string out;
  for (const MetricSnapshot& metric : snapshot) {
    std::string name = SanitizeMetricName(metric.name);
    out += StrCat("# TYPE ", name, " ", KindName(metric.kind), "\n");
    switch (metric.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        out += StrCat(name, " ", metric.value, "\n");
        break;
      case MetricKind::kHistogram: {
        // Buckets are stored one-slot-per-observation; Prometheus buckets
        // are cumulative, so re-cumulate here.
        int64_t cumulative = 0;
        for (size_t b = 0; b < metric.hist.upper_bounds.size(); ++b) {
          cumulative += metric.hist.bucket_counts[b];
          out += StrCat(name, "_bucket{le=\"", metric.hist.upper_bounds[b],
                        "\"} ", cumulative, "\n");
        }
        out += StrCat(name, "_bucket{le=\"+Inf\"} ", metric.hist.count, "\n");
        out += StrCat(name, "_sum ", metric.hist.sum, "\n");
        out += StrCat(name, "_count ", metric.hist.count, "\n");
        break;
      }
    }
  }
  return out;
}

std::string ExportChromeTrace(const std::vector<SpanRecord>& spans) {
  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit").String("ms");
  w.Key("traceEvents").BeginArray();
  for (const SpanRecord& span : spans) {
    w.BeginObject();
    w.Key("name").String(span.name);
    w.Key("cat").String("pdx");
    w.Key("ph").String("X");
    // trace_event timestamps are microseconds; keep sub-µs precision.
    w.Key("ts").Double(static_cast<double>(span.start_ns) / 1000.0, 3);
    w.Key("dur").Double(static_cast<double>(span.dur_ns) / 1000.0, 3);
    w.Key("pid").Int(1);
    w.Key("tid").Int(span.tid);
    w.Key("args").BeginObject();
    w.Key("span_id").Uint(span.id);
    w.Key("parent_id").Uint(span.parent);
    // rusage fields carry -1 when the tracer did not capture them (see
    // SpanRecord); omitted then, so traces without rusage are unchanged.
    if (span.cpu_ns >= 0) w.Key("cpu_ns").Int(span.cpu_ns);
    if (span.ctx_switches >= 0) w.Key("ctx_switches").Int(span.ctx_switches);
    for (const SpanAttr& attr : span.attrs) {
      w.Key(attr.key);
      switch (attr.kind) {
        case SpanAttr::kInt: w.Int(attr.i); break;
        case SpanAttr::kDouble: w.Double(attr.d, 6); break;
        case SpanAttr::kBool: w.Bool(attr.b); break;
        case SpanAttr::kString: w.String(attr.s); break;
      }
    }
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return std::move(w).Take();
}

Status WriteFileOrStdout(const std::string& path,
                         const std::string& content) {
  if (path == "-") {
    std::fwrite(content.data(), 1, content.size(), stdout);
    return Status::Ok();
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return InvalidArgumentError(StrCat("cannot open ", path, " for writing"));
  }
  size_t written = std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  if (written != content.size()) {
    return InternalError(StrCat("short write to ", path));
  }
  return Status::Ok();
}

}  // namespace obs
}  // namespace pdx
