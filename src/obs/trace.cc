#include "obs/trace.h"

#ifndef PDX_OBS_NOOP

#include <chrono>
#include <utility>

namespace pdx {
namespace obs {

namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Small per-thread ordinal for trace rows (Chrome renders one lane per
// tid; std::thread::id is neither small nor stable-looking).
int ThisThreadOrdinal() {
  static std::atomic<int> next{0};
  thread_local int ordinal = next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

// The per-thread nesting stack. Shared across tracer instances: spans of
// distinct tracers interleave on one thread only in tests, where the
// nesting is still the natural one.
thread_local std::vector<uint64_t> tls_span_stack;

}  // namespace

Tracer& Tracer::Global() {
  // Leaked for the same reason as MetricsRegistry::Global().
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Enable(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  ring_.reserve(capacity);
  capacity_ = capacity == 0 ? 1 : capacity;
  next_ = 0;
  dropped_ = 0;
  base_ns_ = SteadyNowNs();
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

std::vector<SpanRecord> Tracer::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() == capacity_) {
    // Wrapped: the oldest record sits at the overwrite cursor.
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(std::move(ring_[(next_ + i) % ring_.size()]));
    }
  } else {
    out = std::move(ring_);
  }
  ring_.clear();
  next_ = 0;
  return out;
}

uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void Tracer::Record(SpanRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
    return;
  }
  ring_[next_] = std::move(record);
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

int64_t Tracer::NowRelative() const { return SteadyNowNs() - base_ns_; }

Span::Span(Tracer& tracer, const char* name) {
  if (!tracer.enabled()) return;
  uint64_t parent =
      tls_span_stack.empty() ? 0 : tls_span_stack.back();
  Start(tracer, name, parent, /*push_stack=*/true);
}

Span::Span(Tracer& tracer, const char* name, uint64_t parent) {
  if (!tracer.enabled()) return;
  Start(tracer, name, parent, /*push_stack=*/true);
}

void Span::Start(Tracer& tracer, const char* name, uint64_t parent,
                 bool push_stack) {
  tracer_ = &tracer;
  record_.name = name;
  record_.id = tracer.NextSpanId();
  record_.parent = parent;
  record_.tid = ThisThreadOrdinal();
  record_.start_ns = tracer.NowRelative();
  if (push_stack) {
    tls_span_stack.push_back(record_.id);
    pushed_ = true;
  }
}

Span::~Span() {
  if (tracer_ == nullptr) return;
  if (pushed_) tls_span_stack.pop_back();
  record_.dur_ns = tracer_->NowRelative() - record_.start_ns;
  tracer_->Record(std::move(record_));
}

Span& Span::AttrInt(const char* key, int64_t v) {
  if (tracer_ != nullptr) {
    SpanAttr attr;
    attr.key = key;
    attr.kind = SpanAttr::kInt;
    attr.i = v;
    record_.attrs.push_back(std::move(attr));
  }
  return *this;
}

Span& Span::AttrDouble(const char* key, double v) {
  if (tracer_ != nullptr) {
    SpanAttr attr;
    attr.key = key;
    attr.kind = SpanAttr::kDouble;
    attr.d = v;
    record_.attrs.push_back(std::move(attr));
  }
  return *this;
}

Span& Span::AttrBool(const char* key, bool v) {
  if (tracer_ != nullptr) {
    SpanAttr attr;
    attr.key = key;
    attr.kind = SpanAttr::kBool;
    attr.b = v;
    record_.attrs.push_back(std::move(attr));
  }
  return *this;
}

Span& Span::AttrStr(const char* key, std::string v) {
  if (tracer_ != nullptr) {
    SpanAttr attr;
    attr.key = key;
    attr.kind = SpanAttr::kString;
    attr.s = std::move(v);
    record_.attrs.push_back(std::move(attr));
  }
  return *this;
}

}  // namespace obs
}  // namespace pdx

#endif  // PDX_OBS_NOOP
