#include "obs/trace.h"

#ifndef PDX_OBS_NOOP

#include <algorithm>
#include <chrono>
#include <utility>

#if defined(__linux__)
#include <sys/resource.h>
#endif

namespace pdx {
namespace obs {

namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Small per-thread ordinal for trace rows (Chrome renders one lane per
// tid; std::thread::id is neither small nor stable-looking).
int ThisThreadOrdinal() {
  static std::atomic<int> next{0};
  thread_local int ordinal = next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

// The per-thread nesting stack. Shared across tracer instances: spans of
// distinct tracers interleave on one thread only in tests, where the
// nesting is still the natural one.
thread_local std::vector<uint64_t> tls_span_stack;

// The calling thread's user+system CPU time (ns) and involuntary context
// switch count. False where getrusage(RUSAGE_THREAD) is unavailable — the
// caller leaves the SpanRecord fields at their -1 sentinels.
bool ThreadUsage(int64_t* cpu_ns, int64_t* ctx_switches) {
#if defined(__linux__)
  struct rusage ru;
  if (getrusage(RUSAGE_THREAD, &ru) != 0) return false;
  *cpu_ns = (static_cast<int64_t>(ru.ru_utime.tv_sec) +
             static_cast<int64_t>(ru.ru_stime.tv_sec)) *
                1'000'000'000 +
            (static_cast<int64_t>(ru.ru_utime.tv_usec) +
             static_cast<int64_t>(ru.ru_stime.tv_usec)) *
                1'000;
  *ctx_switches = static_cast<int64_t>(ru.ru_nivcsw);
  return true;
#else
  (void)cpu_ns;
  (void)ctx_switches;
  return false;
#endif
}

}  // namespace

// One recording thread's bounded span ring. Records are appended under
// the ring's own mutex — uncontended in steady state, since exactly one
// thread writes each ring and Drain()/dropped() only touch it at
// collection points.
struct Tracer::ThreadRing {
  std::mutex mu;
  std::vector<SpanRecord> ring;  // guarded by mu
  size_t capacity = 0;           // fixed at registration
  size_t next = 0;               // overwrite cursor, guarded by mu
  uint64_t dropped = 0;          // guarded by mu
};

Tracer::Tracer() {
  static std::atomic<uint64_t> next_uid{1};
  uid_ = next_uid.fetch_add(1, std::memory_order_relaxed);
}

Tracer::~Tracer() = default;

Tracer& Tracer::Global() {
  // Leaked for the same reason as MetricsRegistry::Global().
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Enable(size_t capacity, bool rusage) {
  std::lock_guard<std::mutex> lock(mu_);
  rings_.clear();  // threads re-register lazily under the new epoch
  capacity_ = capacity == 0 ? 1 : capacity;
  base_ns_ = SteadyNowNs();
  rusage_.store(rusage, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

std::vector<SpanRecord> Tracer::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  for (const std::shared_ptr<ThreadRing>& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    if (ring->ring.size() == ring->capacity && !ring->ring.empty()) {
      // Wrapped: the oldest record sits at the overwrite cursor.
      for (size_t i = 0; i < ring->ring.size(); ++i) {
        out.push_back(
            std::move(ring->ring[(ring->next + i) % ring->ring.size()]));
      }
    } else {
      for (SpanRecord& record : ring->ring) {
        out.push_back(std::move(record));
      }
    }
    ring->ring.clear();
    ring->next = 0;
  }
  // Each ring is already in completion order (spans record at scope
  // exit); merge across threads by end timestamp. stable_sort keeps the
  // per-ring order on ties.
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.start_ns + a.dur_ns < b.start_ns + b.dur_ns;
                   });
  return out;
}

uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const std::shared_ptr<ThreadRing>& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    total += ring->dropped;
  }
  return total;
}

Tracer::ThreadRing* Tracer::RingForThisThread() {
  // Keyed by tracer uid (not address: tests stack-allocate tracers and
  // addresses recur) and epoch (Enable invalidates old rings).
  struct Cache {
    uint64_t uid = 0;
    uint64_t epoch = 0;
    std::shared_ptr<ThreadRing> ring;
  };
  thread_local Cache cache;
  uint64_t epoch = epoch_.load(std::memory_order_acquire);
  if (cache.uid == uid_ && cache.epoch == epoch && cache.ring != nullptr) {
    return cache.ring.get();
  }
  std::shared_ptr<ThreadRing> ring = std::make_shared<ThreadRing>();
  {
    std::lock_guard<std::mutex> lock(mu_);
    epoch = epoch_.load(std::memory_order_relaxed);
    ring->capacity = capacity_ == 0 ? 1 : capacity_;
    ring->ring.reserve(ring->capacity);
    rings_.push_back(ring);
  }
  cache.uid = uid_;
  cache.epoch = epoch;
  cache.ring = std::move(ring);
  return cache.ring.get();
}

void Tracer::Record(SpanRecord record) {
  ThreadRing* ring = RingForThisThread();
  std::lock_guard<std::mutex> lock(ring->mu);
  if (ring->ring.size() < ring->capacity) {
    ring->ring.push_back(std::move(record));
    return;
  }
  ring->ring[ring->next] = std::move(record);
  ring->next = (ring->next + 1) % ring->capacity;
  ++ring->dropped;
}

int64_t Tracer::NowRelative() const { return SteadyNowNs() - base_ns_; }

Span::Span(Tracer& tracer, const char* name) {
  if (!tracer.enabled()) return;
  uint64_t parent =
      tls_span_stack.empty() ? 0 : tls_span_stack.back();
  Start(tracer, name, parent, /*push_stack=*/true);
}

Span::Span(Tracer& tracer, const char* name, uint64_t parent) {
  if (!tracer.enabled()) return;
  Start(tracer, name, parent, /*push_stack=*/true);
}

void Span::Start(Tracer& tracer, const char* name, uint64_t parent,
                 bool push_stack) {
  tracer_ = &tracer;
  record_.name = name;
  record_.id = tracer.NextSpanId();
  record_.parent = parent;
  record_.tid = ThisThreadOrdinal();
  record_.start_ns = tracer.NowRelative();
  if (tracer.rusage_enabled()) {
    rusage_ = ThreadUsage(&cpu0_ns_, &ctx0_);
  }
  if (push_stack) {
    tls_span_stack.push_back(record_.id);
    pushed_ = true;
  }
}

Span::~Span() {
  if (tracer_ == nullptr) return;
  if (pushed_) tls_span_stack.pop_back();
  record_.dur_ns = tracer_->NowRelative() - record_.start_ns;
  if (rusage_) {
    int64_t cpu1 = 0;
    int64_t ctx1 = 0;
    if (ThreadUsage(&cpu1, &ctx1)) {
      record_.cpu_ns = cpu1 - cpu0_ns_;
      record_.ctx_switches = ctx1 - ctx0_;
    }
  }
  tracer_->Record(std::move(record_));
}

Span& Span::AttrInt(const char* key, int64_t v) {
  if (tracer_ != nullptr) {
    SpanAttr attr;
    attr.key = key;
    attr.kind = SpanAttr::kInt;
    attr.i = v;
    record_.attrs.push_back(std::move(attr));
  }
  return *this;
}

Span& Span::AttrDouble(const char* key, double v) {
  if (tracer_ != nullptr) {
    SpanAttr attr;
    attr.key = key;
    attr.kind = SpanAttr::kDouble;
    attr.d = v;
    record_.attrs.push_back(std::move(attr));
  }
  return *this;
}

Span& Span::AttrBool(const char* key, bool v) {
  if (tracer_ != nullptr) {
    SpanAttr attr;
    attr.key = key;
    attr.kind = SpanAttr::kBool;
    attr.b = v;
    record_.attrs.push_back(std::move(attr));
  }
  return *this;
}

Span& Span::AttrStr(const char* key, std::string v) {
  if (tracer_ != nullptr) {
    SpanAttr attr;
    attr.key = key;
    attr.kind = SpanAttr::kString;
    attr.s = std::move(v);
    record_.attrs.push_back(std::move(attr));
  }
  return *this;
}

}  // namespace obs
}  // namespace pdx

#endif  // PDX_OBS_NOOP
