#ifndef PDX_OBS_EXPORT_H_
#define PDX_OBS_EXPORT_H_

// Exporters for the observability layer: Prometheus text exposition for
// metric snapshots and Chrome trace_event JSON (chrome://tracing /
// https://ui.perfetto.dev) for span records. Pure functions over the data
// structs, so they work identically against live registries, test
// fixtures, and the empty snapshots a PDX_OBS_NOOP build produces.
//
// Output is deterministic: snapshots arrive name-sorted from
// MetricsRegistry::Snapshot(), spans in completion order from
// Tracer::Drain(), and the exporters add no nondeterminism of their own —
// golden-file tested in tests/obs_export_test.cc.

#include <string>
#include <vector>

#include "base/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pdx {
namespace obs {

// Prometheus text exposition format (version 0.0.4): one `# TYPE` comment
// per metric followed by its samples; histograms expand into cumulative
// `_bucket{le="..."}` samples plus `_sum` and `_count`. Metric names are
// sanitized to [a-zA-Z_:][a-zA-Z0-9_:]* (invalid characters become '_').
std::string ExportPrometheus(const std::vector<MetricSnapshot>& snapshot);

// Chrome trace_event JSON: one complete ("ph":"X") event per span, in the
// given order, with timestamps in microseconds and span attributes (plus
// the span/parent ids) under "args".
std::string ExportChromeTrace(const std::vector<SpanRecord>& spans);

// Writes `content` to `path` ("-" = stdout).
Status WriteFileOrStdout(const std::string& path, const std::string& content);

}  // namespace obs
}  // namespace pdx

#endif  // PDX_OBS_EXPORT_H_
