#ifndef PDX_OBS_JSON_WRITER_H_
#define PDX_OBS_JSON_WRITER_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "base/status.h"

namespace pdx {

// Minimal streaming JSON emitter shared by the obs exporters (Chrome
// trace_event output) and the bench executables' machine-readable outputs
// (BENCH_*.json). Pretty-prints with two-space indents so the files stay
// diffable in review. Quotes, backslashes and control characters are
// escaped; nothing else is needed, since inputs are program-controlled.
//
//   JsonWriter w;
//   w.BeginObject();
//   w.Key("bench").String("chase");
//   w.Key("workloads").BeginArray();
//   ...
//   w.EndArray().EndObject();
//   std::string json = std::move(w).Take();
class JsonWriter {
 public:
  JsonWriter& BeginObject() { return Open('{'); }
  JsonWriter& EndObject() { return Close('}'); }
  JsonWriter& BeginArray() { return Open('['); }
  JsonWriter& EndArray() { return Close(']'); }

  JsonWriter& Key(const std::string& key) {
    Separate();
    out_ += '"';
    Escape(key);
    out_ += "\": ";
    after_key_ = true;
    return *this;
  }

  JsonWriter& String(const std::string& value) {
    Separate();
    out_ += '"';
    Escape(value);
    out_ += '"';
    return *this;
  }

  JsonWriter& Int(int64_t value) {
    Separate();
    out_ += std::to_string(value);
    return *this;
  }

  JsonWriter& Uint(uint64_t value) {
    Separate();
    out_ += std::to_string(value);
    return *this;
  }

  // Fixed-point rendering; `decimals` defaults to the millisecond-ish
  // precision the benches report.
  JsonWriter& Double(double value, int decimals = 3) {
    Separate();
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
    out_ += buffer;
    return *this;
  }

  JsonWriter& Bool(bool value) {
    Separate();
    out_ += value ? "true" : "false";
    return *this;
  }

  // The finished document (all containers must be closed).
  std::string Take() && {
    PDX_CHECK(first_at_depth_.empty()) << "unclosed JSON container";
    out_ += '\n';
    return std::move(out_);
  }

 private:
  JsonWriter& Open(char c) {
    Separate();
    out_ += c;
    first_at_depth_.push_back(true);
    return *this;
  }

  JsonWriter& Close(char c) {
    PDX_CHECK(!first_at_depth_.empty()) << "unbalanced JSON container";
    bool empty = first_at_depth_.back();
    first_at_depth_.pop_back();
    if (!empty) {
      out_ += '\n';
      Indent();
    }
    out_ += c;
    return *this;
  }

  // Emits the comma/newline/indent due before a new value or key. Values
  // directly following their key stay on the key's line.
  void Separate() {
    if (after_key_) {
      after_key_ = false;
      return;
    }
    if (first_at_depth_.empty()) return;  // top-level first token
    if (!first_at_depth_.back()) out_ += ',';
    first_at_depth_.back() = false;
    out_ += '\n';
    Indent();
  }

  void Indent() { out_.append(2 * first_at_depth_.size(), ' '); }

  void Escape(const std::string& s) {
    for (char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buffer[8];
            std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
            out_ += buffer;
          } else {
            out_ += c;
          }
      }
    }
  }

  std::string out_;
  std::vector<bool> first_at_depth_;
  bool after_key_ = false;
};

}  // namespace pdx

#endif  // PDX_OBS_JSON_WRITER_H_
