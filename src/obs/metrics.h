#ifndef PDX_OBS_METRICS_H_
#define PDX_OBS_METRICS_H_

// Lock-cheap metrics registry: named counters, gauges and fixed-bucket
// histograms shared process-wide via MetricsRegistry::Global() (separate
// registries are instantiable for tests). Counter and histogram writes go
// to a per-thread shard — one relaxed fetch_add on a slot only the owning
// thread writes — so the parallel chase path never contends on a metric
// cacheline; reads (Value / Snapshot) take the registry mutex and sum the
// live shards plus the folded totals of exited threads. Gauges are single
// atomics (set/add are rare, not hot-path).
//
// Handles are cheap value types that keep the backing registry alive, so
// the idiomatic call site is a function-local static:
//
//   static obs::Counter steps =
//       obs::MetricsRegistry::Global().GetCounter("pdx_chase_steps_total");
//   steps.Inc(result.steps);
//
// Building with -DPDX_OBS_NOOP=ON compiles the whole layer down to empty
// inline stubs: call sites stay unchanged and cost literally nothing.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace pdx {
namespace obs {

enum class MetricKind { kCounter, kGauge, kHistogram };

// Aggregated state of one histogram: per-bucket counts (one per upper
// bound, plus a final overflow bucket), the running sum and total count.
struct HistogramData {
  std::vector<int64_t> upper_bounds;   // finite, strictly increasing
  std::vector<int64_t> bucket_counts;  // upper_bounds.size() + 1 entries
  int64_t sum = 0;
  int64_t count = 0;
};

// One metric's aggregated value at snapshot time.
struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  int64_t value = 0;   // counter / gauge
  HistogramData hist;  // histogram only
};

#ifndef PDX_OBS_NOOP

namespace internal {
struct MetricsCore;
}  // namespace internal

class Counter {
 public:
  Counter() = default;
  // Adds `n` (one relaxed atomic on the calling thread's shard slot).
  void Inc(int64_t n = 1);
  // Aggregated total across all threads, live and exited.
  int64_t Value() const;

 private:
  friend class MetricsRegistry;
  std::shared_ptr<internal::MetricsCore> core_;
  uint32_t slot_ = 0;
};

class Gauge {
 public:
  Gauge() = default;
  void Set(int64_t v);
  void Add(int64_t n);
  int64_t Value() const;

 private:
  friend class MetricsRegistry;
  std::shared_ptr<internal::MetricsCore> core_;
  uint32_t index_ = 0;
};

class Histogram {
 public:
  Histogram() = default;
  // Records one observation: a relaxed fetch_add on the matching bucket
  // slot plus one on the sum slot, both thread-local.
  void Observe(int64_t v);
  HistogramData Value() const;

 private:
  friend class MetricsRegistry;
  std::shared_ptr<internal::MetricsCore> core_;
  uint32_t slot_ = 0;          // first bucket slot; sum lives at the end
  uint32_t bucket_count_ = 0;  // finite buckets + overflow
  const std::vector<int64_t>* bounds_ = nullptr;  // owned by the core
};

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide registry every pdx subsystem reports into. Never
  // destroyed (avoids TLS-vs-static destruction-order hazards at exit).
  static MetricsRegistry& Global();

  // Finds or creates a metric. Re-registering an existing name returns a
  // handle to the same metric; registering it under a different kind (or
  // a histogram under different bounds) is an invariant violation.
  Counter GetCounter(const std::string& name);
  Gauge GetGauge(const std::string& name);
  Histogram GetHistogram(const std::string& name,
                         std::vector<int64_t> upper_bounds);

  // All metrics, aggregated, sorted by name (stable export order).
  std::vector<MetricSnapshot> Snapshot() const;

  // Zeroes every metric (tests and benches measuring deltas from a clean
  // slate). Registrations are kept.
  void Reset();

 private:
  std::shared_ptr<internal::MetricsCore> core_;
};

#else  // PDX_OBS_NOOP: the whole layer is inert inline stubs.

class Counter {
 public:
  void Inc(int64_t = 1) {}
  int64_t Value() const { return 0; }
};

class Gauge {
 public:
  void Set(int64_t) {}
  void Add(int64_t) {}
  int64_t Value() const { return 0; }
};

class Histogram {
 public:
  void Observe(int64_t) {}
  HistogramData Value() const { return {}; }
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Global() {
    static MetricsRegistry registry;
    return registry;
  }
  Counter GetCounter(const std::string&) { return {}; }
  Gauge GetGauge(const std::string&) { return {}; }
  Histogram GetHistogram(const std::string&, std::vector<int64_t>) {
    return {};
  }
  std::vector<MetricSnapshot> Snapshot() const { return {}; }
  void Reset() {}
};

#endif  // PDX_OBS_NOOP

}  // namespace obs
}  // namespace pdx

#endif  // PDX_OBS_METRICS_H_
