#ifndef PDX_BASE_CONCURRENT_SET_H_
#define PDX_BASE_CONCURRENT_SET_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_set>

namespace pdx {

// A concurrent set of 64-bit fingerprints, sharded over independently
// locked stripes so admission can run from many pool workers at once (the
// oblivious chase's trigger ledger admits in the collect phase). Each
// operation touches exactly one stripe, chosen by a mixed hash of the
// fingerprint so sequential ids spread evenly; stripes are cache-line
// aligned to keep their mutexes from false-sharing. Operations are
// linearizable per fingerprint: of N racing Insert(fp) calls exactly one
// returns true.
//
// Erase exists for generation-scoped retirement (TriggerLedger::
// RetireRoots); the chase only calls it from the sequential apply phase,
// but it is safe concurrently all the same.
class ConcurrentFingerprintSet {
 public:
  ConcurrentFingerprintSet() : stripes_(new Stripe[kStripeCount]) {}

  ConcurrentFingerprintSet(const ConcurrentFingerprintSet&) = delete;
  ConcurrentFingerprintSet& operator=(const ConcurrentFingerprintSet&) =
      delete;

  // Inserts fp; true iff it was absent (the caller wins the admission).
  bool Insert(uint64_t fp) {
    Stripe& stripe = StripeFor(fp);
    std::lock_guard<std::mutex> lock(stripe.mu);
    return stripe.set.insert(fp).second;
  }

  bool Contains(uint64_t fp) const {
    const Stripe& stripe = StripeFor(fp);
    std::lock_guard<std::mutex> lock(stripe.mu);
    return stripe.set.count(fp) != 0;
  }

  // Removes fp; true iff it was present.
  bool Erase(uint64_t fp) {
    Stripe& stripe = StripeFor(fp);
    std::lock_guard<std::mutex> lock(stripe.mu);
    return stripe.set.erase(fp) != 0;
  }

  // Total element count. Stripes are summed one at a time, so the value
  // is exact only when no writers are concurrent.
  size_t size() const {
    size_t total = 0;
    for (size_t s = 0; s < kStripeCount; ++s) {
      std::lock_guard<std::mutex> lock(stripes_[s].mu);
      total += stripes_[s].set.size();
    }
    return total;
  }

 private:
  static constexpr size_t kStripeCount = 64;  // power of two

  struct alignas(64) Stripe {
    mutable std::mutex mu;
    std::unordered_set<uint64_t> set;
  };

  static size_t StripeIndex(uint64_t fp) {
    // splitmix64-style finalizer: trigger fingerprints are already mixed,
    // but re-mixing makes the stripe choice robust to weak inputs too.
    uint64_t x = fp;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    return static_cast<size_t>(x) & (kStripeCount - 1);
  }

  Stripe& StripeFor(uint64_t fp) { return stripes_[StripeIndex(fp)]; }
  const Stripe& StripeFor(uint64_t fp) const {
    return stripes_[StripeIndex(fp)];
  }

  std::unique_ptr<Stripe[]> stripes_;
};

}  // namespace pdx

#endif  // PDX_BASE_CONCURRENT_SET_H_
