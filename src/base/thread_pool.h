#ifndef PDX_BASE_THREAD_POOL_H_
#define PDX_BASE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace pdx {

// A small work-stealing thread pool for data-parallel fan-out (the chase's
// per-dependency × delta-partition trigger enumeration). The pool owns
// `threads - 1` worker threads; the thread calling ParallelFor is the
// remaining participant, so a pool of size 1 spawns nothing and runs
// everything inline.
//
// ParallelFor splits the index space [0, n) into one contiguous shard per
// participant; each participant drains its own shard front-to-back through
// an atomic cursor and, once empty, steals indexes from the shard with the
// most work left. Claiming is a fetch_add on the shard cursor, so an index
// is executed exactly once no matter who claims it.
//
// Synchronization contract: every effect of fn(i) happens-before
// ParallelFor returns (workers check out under the pool mutex), so callers
// may read per-index result buffers without further locking. One job runs
// at a time; ParallelFor must not be re-entered from inside fn.
//
// ParallelForAsync starts a job on the worker threads only and returns
// immediately, letting the caller overlap its own (data-disjoint) work —
// the chase pipelines collection of dependency k+1 over application of k
// this way. Wait() joins the job: the caller helps drain the remaining
// shards, then blocks until every worker has checked out, with the same
// happens-before guarantee as ParallelFor. Exactly one async job may be
// outstanding, no ParallelFor may run while one is, and Wait() must be
// called before the pool is destroyed or the job's fn/buffers go out of
// scope. On a pool with no workers the job is simply deferred and runs
// inline in Wait().
class ThreadPool {
 public:
  // Spawns max(0, threads - 1) workers.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total parallelism: worker threads plus the calling thread.
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  // Runs fn(i) for every i in [0, n), fanned across the participants, and
  // returns when all invocations have finished. fn must not throw and must
  // not call back into this pool.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  // Starts fn(i) for every i in [0, n) on the worker threads and returns
  // without waiting. fn is copied into the pool and stays alive until the
  // matching Wait() returns.
  void ParallelForAsync(size_t n, std::function<void(size_t)> fn);

  // Joins the outstanding async job (no-op if there is none): helps drain
  // its shards, then waits for the workers to check out.
  void Wait();

  // --- One-off task queue (the pdxd server's worker pool) --------------
  //
  // Submit enqueues `task` for execution on some worker thread and returns
  // immediately; distinct tasks run concurrently (one per idle worker).
  // Returns false — without running or retaining the task — once Shutdown
  // has begun. On a pool with no workers (threads <= 1) the task runs
  // inline in Submit. A pool serving long-running tasks should not be
  // given ParallelFor jobs at the same time: workers busy in a task join
  // a posted job only after their task returns.
  bool Submit(std::function<void()> task);

  // Graceful drain: stops accepting new tasks, waits until every queued
  // and in-flight task has finished, then joins the worker threads.
  // Idempotent; the destructor calls it. Must not be invoked from inside
  // a task (a task waiting for its own pool to drain deadlocks) or while
  // a ParallelFor / unjoined async job is in flight.
  void Shutdown();

  // std::thread::hardware_concurrency with a floor of 1.
  static int HardwareConcurrency();

 private:
  struct Shard {
    std::atomic<size_t> next{0};
    size_t end = 0;
  };
  struct Job {
    const std::function<void(size_t)>* fn = nullptr;
    std::unique_ptr<Shard[]> shards;
    size_t shard_count = 0;
  };

  void WorkerLoop(size_t worker_index);
  static void RunShards(Job* job, size_t start_shard);

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait for a job or a task
  std::condition_variable done_cv_;  // caller waits for workers_active_ == 0
  std::condition_variable drain_cv_; // Shutdown waits for tasks to finish
  Job* job_ = nullptr;               // guarded by mu_
  uint64_t job_seq_ = 0;             // guarded by mu_
  size_t workers_active_ = 0;        // guarded by mu_
  bool stop_ = false;                // guarded by mu_
  std::deque<std::function<void()>> tasks_;  // guarded by mu_
  size_t tasks_active_ = 0;          // guarded by mu_
  bool draining_ = false;            // guarded by mu_: Shutdown has begun
  std::vector<std::thread> workers_;

  // Async job state, touched only by the owning (caller) thread between
  // ParallelForAsync and Wait; workers reach it through job_ as usual.
  Job async_job_;
  std::function<void(size_t)> async_fn_;
  size_t async_n_ = 0;
  bool async_active_ = false;
  bool async_dispatched_ = false;  // false => run inline in Wait()
};

}  // namespace pdx

#endif  // PDX_BASE_THREAD_POOL_H_
