#ifndef PDX_BASE_LOGGING_H_
#define PDX_BASE_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace pdx {
namespace internal_logging {

// Accumulates a fatal-error message and aborts the process when destroyed.
// Used only by the PDX_CHECK family below; library code never aborts on
// user input, only on violated internal invariants.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition
            << " ";
  }

  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace pdx

// Fatal assertion on internal invariants, with streaming for extra context:
//   PDX_CHECK(ptr != nullptr) << "while chasing " << name;
// Active in all build modes: the algorithms in this library are subtle
// enough that silent invariant violations are worse than the branch cost.
// The for-loop trick makes the CheckFailure temporary (whose destructor
// aborts) exist only on the failure path while still accepting `<<`.
#define PDX_CHECK(condition)                                  \
  for (bool _pdx_ok = static_cast<bool>(condition); !_pdx_ok; \
       _pdx_ok = true)                                        \
  ::pdx::internal_logging::CheckFailure(__FILE__, __LINE__, #condition)

#define PDX_CHECK_EQ(a, b) PDX_CHECK((a) == (b))
#define PDX_CHECK_NE(a, b) PDX_CHECK((a) != (b))
#define PDX_CHECK_LT(a, b) PDX_CHECK((a) < (b))
#define PDX_CHECK_LE(a, b) PDX_CHECK((a) <= (b))
#define PDX_CHECK_GT(a, b) PDX_CHECK((a) > (b))
#define PDX_CHECK_GE(a, b) PDX_CHECK((a) >= (b))

#ifdef NDEBUG
#define PDX_DCHECK(condition) \
  while (false) PDX_CHECK(condition)
#else
#define PDX_DCHECK(condition) PDX_CHECK(condition)
#endif

#endif  // PDX_BASE_LOGGING_H_
