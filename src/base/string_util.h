#ifndef PDX_BASE_STRING_UTIL_H_
#define PDX_BASE_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace pdx {

namespace internal_strings {

inline void AppendPieces(std::ostringstream&) {}

template <typename T, typename... Rest>
void AppendPieces(std::ostringstream& out, const T& first,
                  const Rest&... rest) {
  out << first;
  AppendPieces(out, rest...);
}

}  // namespace internal_strings

// Concatenates the string representations of the arguments.
// StrCat(1, "+", 2) == "1+2".
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream out;
  internal_strings::AppendPieces(out, args...);
  return out.str();
}

// Joins the elements of `parts` with `separator` between them. Elements are
// rendered with operator<<.
template <typename Container>
std::string StrJoin(const Container& parts, std::string_view separator) {
  std::ostringstream out;
  bool first = true;
  for (const auto& part : parts) {
    if (!first) out << separator;
    first = false;
    out << part;
  }
  return out.str();
}

// Splits `text` at every occurrence of `delimiter`. Does not collapse empty
// pieces: Split("a,,b", ',') == {"a", "", "b"}.
std::vector<std::string> StrSplit(std::string_view text, char delimiter);

// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace pdx

#endif  // PDX_BASE_STRING_UTIL_H_
