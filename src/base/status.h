#ifndef PDX_BASE_STATUS_H_
#define PDX_BASE_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "base/logging.h"

namespace pdx {

// Canonical error space for the library. Library code reports failures via
// Status / StatusOr instead of exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kResourceExhausted = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kDeadlineExceeded = 8,
};

// Returns the canonical name of a status code, e.g. "INVALID_ARGUMENT".
const char* StatusCodeToString(StatusCode code);

// A lightweight success-or-error value. Cheap to copy in the OK case.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Convenience factories mirroring the canonical codes.
Status OkStatus();
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status ResourceExhaustedError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status DeadlineExceededError(std::string message);

// A value of type T or an error Status. Accessing the value of a non-OK
// StatusOr is a fatal error.
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit so `return MakeFoo();` and `return status;` both
  // work, matching the absl::StatusOr ergonomics.
  StatusOr(const T& value) : value_(value) {}            // NOLINT
  StatusOr(T&& value) : value_(std::move(value)) {}      // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    PDX_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    PDX_CHECK(ok()) << "StatusOr::value on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    PDX_CHECK(ok()) << "StatusOr::value on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    PDX_CHECK(ok()) << "StatusOr::value on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

// Evaluates `expr` (a Status or StatusOr expression) and returns its status
// from the enclosing function if not OK.
#define PDX_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    const ::pdx::Status _pdx_status = (expr);       \
    if (!_pdx_status.ok()) return _pdx_status;      \
  } while (false)

// Evaluates a StatusOr expression; on success assigns the value to `lhs`,
// otherwise returns the error status from the enclosing function.
#define PDX_ASSIGN_OR_RETURN(lhs, expr)                       \
  PDX_ASSIGN_OR_RETURN_IMPL_(                                 \
      PDX_STATUS_CONCAT_(_pdx_statusor, __LINE__), lhs, expr)

#define PDX_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, expr) \
  auto statusor = (expr);                               \
  if (!statusor.ok()) return statusor.status();         \
  lhs = std::move(statusor).value()

#define PDX_STATUS_CONCAT_(a, b) PDX_STATUS_CONCAT_IMPL_(a, b)
#define PDX_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace pdx

#endif  // PDX_BASE_STATUS_H_
