#include "base/thread_pool.h"

#include <algorithm>

#include "obs/metrics.h"

namespace pdx {

namespace {

// Pool health metrics. Steal counts depend on scheduling, so they are
// deliberately *not* part of the thread-invariance contract the chase
// metrics carry — they exist to explain load imbalance, not results.
struct PoolMetrics {
  obs::Counter jobs, tasks, steals;
  obs::Gauge inflight;
  static PoolMetrics& Get() {
    static PoolMetrics* m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      auto* metrics = new PoolMetrics();
      metrics->jobs = reg.GetCounter("pdx_pool_jobs_total");
      metrics->tasks = reg.GetCounter("pdx_pool_tasks_total");
      metrics->steals = reg.GetCounter("pdx_pool_steals_total");
      metrics->inflight = reg.GetGauge("pdx_pool_inflight_jobs");
      return metrics;
    }();
    return *m;
  }
};

}  // namespace

ThreadPool::ThreadPool(int threads) {
  int workers = std::max(0, threads - 1);
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(static_cast<size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

int ThreadPool::HardwareConcurrency() {
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

void ThreadPool::RunShards(Job* job, size_t start_shard) {
  size_t count = job->shard_count;
  const std::function<void(size_t)>& fn = *job->fn;
  // Own shard first, then sweep the others (work-stealing): claiming via
  // fetch_add makes overshoot past `end` harmless — the claim is simply
  // discarded. The index space is fixed up front, so one sweep suffices.
  int64_t steals = 0;
  for (size_t off = 0; off < count; ++off) {
    Shard& shard = job->shards[(start_shard + off) % count];
    while (true) {
      size_t i = shard.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= shard.end) break;
      if (off != 0) ++steals;
      fn(i);
    }
  }
  if (steals != 0) PoolMetrics::Get().steals.Inc(steals);
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  uint64_t seen = 0;
  while (true) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || job_seq_ != seen; });
      if (stop_) return;
      seen = job_seq_;
      job = job_;
    }
    RunShards(job, (1 + worker_index) % job->shard_count);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --workers_active_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  PoolMetrics& metrics = PoolMetrics::Get();
  metrics.jobs.Inc();
  metrics.tasks.Inc(static_cast<int64_t>(n));
  size_t participants =
      std::min<size_t>(static_cast<size_t>(size()), n);
  if (participants <= 1 || workers_.empty()) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  metrics.inflight.Add(1);
  Job job;
  job.fn = &fn;
  job.shard_count = participants;
  job.shards = std::make_unique<Shard[]>(participants);
  for (size_t s = 0; s < participants; ++s) {
    job.shards[s].next.store(s * n / participants,
                             std::memory_order_relaxed);
    job.shards[s].end = (s + 1) * n / participants;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &job;
    ++job_seq_;
    // Every worker participates in every job (latecomers steal or find
    // the shards drained); the join below waits for each to check out.
    workers_active_ = workers_.size();
  }
  work_cv_.notify_all();
  RunShards(&job, 0);
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return workers_active_ == 0; });
    job_ = nullptr;
  }
  metrics.inflight.Add(-1);
}

}  // namespace pdx
