#include "base/thread_pool.h"

#include <algorithm>
#include <utility>

#include "base/logging.h"
#include "obs/metrics.h"

namespace pdx {

namespace {

// Pool health metrics. Steal counts depend on scheduling, so they are
// deliberately *not* part of the thread-invariance contract the chase
// metrics carry — they exist to explain load imbalance, not results.
struct PoolMetrics {
  obs::Counter jobs, tasks, steals;
  obs::Gauge inflight;
  static PoolMetrics& Get() {
    static PoolMetrics* m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      auto* metrics = new PoolMetrics();
      metrics->jobs = reg.GetCounter("pdx_pool_jobs_total");
      metrics->tasks = reg.GetCounter("pdx_pool_tasks_total");
      metrics->steals = reg.GetCounter("pdx_pool_steals_total");
      metrics->inflight = reg.GetGauge("pdx_pool_inflight_jobs");
      return metrics;
    }();
    return *m;
  }
};

}  // namespace

ThreadPool::ThreadPool(int threads) {
  int workers = std::max(0, threads - 1);
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(static_cast<size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

int ThreadPool::HardwareConcurrency() {
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

void ThreadPool::RunShards(Job* job, size_t start_shard) {
  size_t count = job->shard_count;
  const std::function<void(size_t)>& fn = *job->fn;
  // Own shard first, then sweep the others (work-stealing): claiming via
  // fetch_add makes overshoot past `end` harmless — the claim is simply
  // discarded. The index space is fixed up front, so one sweep suffices.
  int64_t steals = 0;
  for (size_t off = 0; off < count; ++off) {
    Shard& shard = job->shards[(start_shard + off) % count];
    while (true) {
      size_t i = shard.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= shard.end) break;
      if (off != 0) ++steals;
      fn(i);
    }
  }
  if (steals != 0) PoolMetrics::Get().steals.Inc(steals);
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [&] {
      return stop_ || job_seq_ != seen || !tasks_.empty();
    });
    // Tasks first: a job posted while every worker sits in a long task
    // would otherwise never see a task-draining worker again (jobs are
    // also drained by their posting caller, tasks only by workers).
    if (!tasks_.empty()) {
      std::function<void()> task = std::move(tasks_.front());
      tasks_.pop_front();
      ++tasks_active_;
      lock.unlock();
      task();
      task = nullptr;  // release captures before touching pool state
      lock.lock();
      --tasks_active_;
      if (draining_ && tasks_.empty() && tasks_active_ == 0) {
        drain_cv_.notify_all();
      }
      continue;
    }
    if (job_seq_ != seen) {
      seen = job_seq_;
      Job* job = job_;
      lock.unlock();
      RunShards(job, (1 + worker_index) % job->shard_count);
      lock.lock();
      --workers_active_;
      done_cv_.notify_one();
      continue;
    }
    if (stop_) return;
  }
}

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_ || stop_) return false;
    if (!workers_.empty()) {
      tasks_.push_back(std::move(task));
      PoolMetrics::Get().tasks.Inc();
      work_cv_.notify_one();
      return true;
    }
  }
  // No workers: the calling thread is the pool's only participant.
  PoolMetrics::Get().tasks.Inc();
  task();
  return true;
}

void ThreadPool::Shutdown() {
  std::unique_lock<std::mutex> lock(mu_);
  if (!draining_) {
    draining_ = true;
    drain_cv_.wait(lock, [&] { return tasks_.empty() && tasks_active_ == 0; });
    stop_ = true;
    work_cv_.notify_all();
  }
  if (workers_.empty()) return;  // idempotent second call, or no workers
  std::vector<std::thread> workers = std::move(workers_);
  workers_.clear();
  lock.unlock();
  for (std::thread& t : workers) t.join();
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& fn) {
  PDX_CHECK(!async_active_) << "ParallelFor while an async job is outstanding";
  if (n == 0) return;
  PoolMetrics& metrics = PoolMetrics::Get();
  metrics.jobs.Inc();
  metrics.tasks.Inc(static_cast<int64_t>(n));
  size_t participants =
      std::min<size_t>(static_cast<size_t>(size()), n);
  if (participants <= 1 || workers_.empty()) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  metrics.inflight.Add(1);
  Job job;
  job.fn = &fn;
  job.shard_count = participants;
  job.shards = std::make_unique<Shard[]>(participants);
  for (size_t s = 0; s < participants; ++s) {
    job.shards[s].next.store(s * n / participants,
                             std::memory_order_relaxed);
    job.shards[s].end = (s + 1) * n / participants;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &job;
    ++job_seq_;
    // Every worker participates in every job (latecomers steal or find
    // the shards drained); the join below waits for each to check out.
    workers_active_ = workers_.size();
  }
  work_cv_.notify_all();
  RunShards(&job, 0);
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return workers_active_ == 0; });
    job_ = nullptr;
  }
  metrics.inflight.Add(-1);
}

void ThreadPool::ParallelForAsync(size_t n, std::function<void(size_t)> fn) {
  PDX_CHECK(!async_active_) << "only one async job may be outstanding";
  async_fn_ = std::move(fn);
  async_n_ = n;
  async_active_ = true;
  async_dispatched_ = false;
  if (n == 0 || workers_.empty()) return;  // deferred: Wait() runs inline

  PoolMetrics& metrics = PoolMetrics::Get();
  metrics.jobs.Inc();
  metrics.tasks.Inc(static_cast<int64_t>(n));
  metrics.inflight.Add(1);
  // Shard for workers plus the caller: the caller's shard (index 0) sits
  // untouched until Wait(), where the caller drains it — or a worker
  // steals it first if the others run dry.
  size_t participants = std::min(workers_.size() + 1, n);
  async_job_.fn = &async_fn_;
  async_job_.shard_count = participants;
  async_job_.shards = std::make_unique<Shard[]>(participants);
  for (size_t s = 0; s < participants; ++s) {
    async_job_.shards[s].next.store(s * n / participants,
                                    std::memory_order_relaxed);
    async_job_.shards[s].end = (s + 1) * n / participants;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &async_job_;
    ++job_seq_;
    workers_active_ = workers_.size();
  }
  work_cv_.notify_all();
  async_dispatched_ = true;
}

void ThreadPool::Wait() {
  if (!async_active_) return;
  async_active_ = false;
  if (!async_dispatched_) {
    // Nothing was handed to workers (empty job or no workers): run inline.
    for (size_t i = 0; i < async_n_; ++i) async_fn_(i);
    async_fn_ = nullptr;
    return;
  }
  RunShards(&async_job_, 0);
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return workers_active_ == 0; });
    job_ = nullptr;
  }
  PoolMetrics::Get().inflight.Add(-1);
  async_fn_ = nullptr;
  async_job_.shards.reset();
}

}  // namespace pdx
