#ifndef PDX_SERVE_ADMISSION_H_
#define PDX_SERVE_ADMISSION_H_

// The write-side admission queue of a pdxd tenant. Connection handlers
// enqueue parsed fact batches as WriteTickets and block on ticket
// completion (with the request deadline); the tenant's single writer
// thread drains *everything* pending in one gulp, chases the union as one
// delta round, publishes the next generation, then completes every ticket
// of the batch. The queue is deliberately dumb — compatibility of batched
// writes is decided by the writer (an egd-failing union falls back to
// individual replay), not here.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "base/status.h"
#include "relational/tuple.h"

namespace pdx {
namespace serve {

class Generation;

// One admitted ±Δ: parsed facts to add and/or retract, plus a one-shot
// completion slot the submitting connection blocks on. The writer applies
// a coalesced batch deletes-first (across the whole batch), so a write
// and a retract of the same fact coalesced together leave it present.
class WriteTicket {
 public:
  explicit WriteTicket(std::vector<Fact> facts,
                       std::vector<Fact> deletes = {})
      : facts_(std::move(facts)), deletes_(std::move(deletes)) {}

  const std::vector<Fact>& facts() const { return facts_; }
  const std::vector<Fact>& deletes() const { return deletes_; }

  // Writer side: resolves the ticket exactly once. `published` is the
  // generation that made the write visible (null when rejected).
  void Complete(Status status, std::shared_ptr<const Generation> published);

  // Submitter side: blocks until the writer completes the ticket or the
  // deadline passes; DeadlineExceeded means the write may still be applied
  // later — it has been admitted and the writer never abandons a ticket.
  Status Wait(std::chrono::steady_clock::time_point deadline,
              std::shared_ptr<const Generation>* published);

 private:
  const std::vector<Fact> facts_;
  const std::vector<Fact> deletes_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  Status status_;
  std::shared_ptr<const Generation> published_;
};

class AdmissionQueue {
 public:
  // Enqueues a ticket and wakes the writer. Returns false (without
  // retaining the ticket) once Close() has been called.
  bool Submit(std::shared_ptr<WriteTicket> ticket);

  // Writer side: blocks until at least one ticket is pending (and the
  // queue is not paused) or the queue is closed, then moves *all* pending
  // tickets out — the coalescing gulp. An empty result means closed.
  std::vector<std::shared_ptr<WriteTicket>> DrainBlocking();

  // Stops admission and wakes the writer; pending tickets are still
  // handed out by the final DrainBlocking calls so a graceful shutdown
  // completes every admitted write.
  void Close();

  // Test hooks: while paused, DrainBlocking holds even if tickets are
  // pending — lets a test enqueue N writes and then observe that Resume
  // yields exactly one batch of N.
  void Pause();
  void Resume();

  size_t Depth() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<WriteTicket>> pending_;
  bool closed_ = false;
  bool paused_ = false;
};

}  // namespace serve
}  // namespace pdx

#endif  // PDX_SERVE_ADMISSION_H_
