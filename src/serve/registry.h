#ifndef PDX_SERVE_REGISTRY_H_
#define PDX_SERVE_REGISTRY_H_

// The tenant registry of pdxd: resident tenants keyed by setting
// fingerprint (Tenant::id()). Load is find-or-create — two clients loading
// the same setting (however spelled) share one tenant, one symbol
// universe, one compiled-plan set and one generation chain.

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "serve/tenant.h"

namespace pdx {
namespace serve {

class TenantRegistry {
 public:
  explicit TenantRegistry(const TenantOptions& options = TenantOptions())
      : options_(options) {}
  ~TenantRegistry() { ShutdownAll(); }

  // The tenant for `setting_text`, creating it if absent. Creation happens
  // under the registry lock: concurrent loads of one setting build it once.
  StatusOr<std::shared_ptr<Tenant>> Load(std::string_view setting_text);

  // The tenant with this id, or NotFound.
  StatusOr<std::shared_ptr<Tenant>> Find(const std::string& id) const;

  // Removes the tenant and drains its writer (admitted writes complete;
  // requests already holding the shared_ptr finish against their pinned
  // generations).
  Status Evict(const std::string& id);

  std::vector<std::shared_ptr<Tenant>> All() const;

  size_t size() const;

  // Evicts and drains every tenant (the daemon's graceful shutdown tail).
  void ShutdownAll();

 private:
  const TenantOptions options_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Tenant>> tenants_;
};

}  // namespace serve
}  // namespace pdx

#endif  // PDX_SERVE_REGISTRY_H_
