#include "serve/metrics.h"

#include <vector>

namespace pdx {
namespace serve {

namespace {

obs::Histogram Latency(const char* name) {
  // 100us .. 10s, decade buckets: wide enough for both the in-memory ping
  // path and a generic-solver certain-answer run.
  return obs::MetricsRegistry::Global().GetHistogram(
      name, {100, 1'000, 10'000, 100'000, 1'000'000, 10'000'000});
}

ServeMetrics MakeServeMetrics() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  ServeMetrics m;
  m.requests_total = reg.GetCounter("pdx_serve_requests_total");
  m.errors_total = reg.GetCounter("pdx_serve_errors_total");
  m.deadline_exceeded_total =
      reg.GetCounter("pdx_serve_deadline_exceeded_total");
  m.inflight_requests = reg.GetGauge("pdx_serve_inflight_requests");
  m.connections_total = reg.GetCounter("pdx_serve_connections_total");
  m.write_requests_total = reg.GetCounter("pdx_serve_write_requests_total");
  m.retract_requests_total =
      reg.GetCounter("pdx_serve_retract_requests_total");
  m.batches_total = reg.GetCounter("pdx_serve_batches_total");
  m.batch_retries_total = reg.GetCounter("pdx_serve_batch_retries_total");
  m.stream_fallbacks_total =
      reg.GetCounter("pdx_serve_stream_fallbacks_total");
  m.batch_size = reg.GetHistogram("pdx_serve_batch_size",
                                  {1, 2, 4, 8, 16, 32, 64, 128});
  m.queue_depth = reg.GetGauge("pdx_serve_queue_depth");
  m.generation_lag = reg.GetGauge("pdx_serve_generation_lag");
  m.generation_seq = reg.GetGauge("pdx_serve_generation_seq");
  m.tenants = reg.GetGauge("pdx_serve_tenants");
  m.latency_ping = Latency("pdx_serve_latency_micros_ping");
  m.latency_load = Latency("pdx_serve_latency_micros_load");
  m.latency_write = Latency("pdx_serve_latency_micros_write");
  m.latency_retract = Latency("pdx_serve_latency_micros_retract");
  m.latency_exists = Latency("pdx_serve_latency_micros_exists");
  m.latency_certain = Latency("pdx_serve_latency_micros_certain");
  m.latency_contains = Latency("pdx_serve_latency_micros_contains");
  m.latency_stats = Latency("pdx_serve_latency_micros_stats");
  return m;
}

}  // namespace

obs::Histogram& ServeMetrics::LatencyFor(std::string_view verb) {
  if (verb == "ping") return latency_ping;
  if (verb == "load") return latency_load;
  if (verb == "write") return latency_write;
  if (verb == "retract") return latency_retract;
  if (verb == "exists") return latency_exists;
  if (verb == "certain") return latency_certain;
  if (verb == "contains") return latency_contains;
  return latency_stats;
}

ServeMetrics& GlobalServeMetrics() {
  static ServeMetrics* metrics = new ServeMetrics(MakeServeMetrics());
  return *metrics;
}

}  // namespace serve
}  // namespace pdx
