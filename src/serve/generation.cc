#include "serve/generation.h"

#include "pde/setting.h"

namespace pdx {
namespace serve {

uint64_t Generation::Fingerprint() const {
  std::lock_guard<std::mutex> lock(memo_mu_);
  if (!fingerprint_.has_value()) {
    fingerprint_ = canonical_.CanonicalFingerprint();
  }
  return *fingerprint_;
}

const Instance& Generation::SourceView(const PdeSetting& setting) const {
  std::lock_guard<std::mutex> lock(memo_mu_);
  if (!source_view_.has_value()) {
    source_view_ = setting.SourcePart(base_);
  }
  return *source_view_;
}

const Instance& Generation::TargetView(const PdeSetting& setting) const {
  std::lock_guard<std::mutex> lock(memo_mu_);
  if (!target_view_.has_value()) {
    target_view_ = setting.TargetPart(base_);
  }
  return *target_view_;
}

std::optional<bool> Generation::CachedExists() const {
  std::lock_guard<std::mutex> lock(memo_mu_);
  return exists_;
}

void Generation::CacheExists(bool value) const {
  std::lock_guard<std::mutex> lock(memo_mu_);
  exists_ = value;
}

}  // namespace serve
}  // namespace pdx
