#ifndef PDX_SERVE_CLIENT_H_
#define PDX_SERVE_CLIENT_H_

// Blocking client for the pdxd wire protocol plus a one-shot HTTP GET for
// the /metrics endpoint. Shared by pdxctl, bench_serve and serve_test —
// the same code that exercises the daemon in CI drives it in production.
// Not thread-safe: one Client per connection per thread.

#include <memory>
#include <string>
#include <string_view>

#include "base/status.h"
#include "serve/json.h"

namespace pdx {
namespace serve {

class Client {
 public:
  // Connects to "unix:PATH" or "tcp:HOST:PORT".
  static StatusOr<Client> Connect(const std::string& address);

  Client(Client&& other) noexcept : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
    other.fd_ = -1;
  }
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  // Sends one request object and blocks for the response line. The
  // returned Status reflects transport failures only; protocol-level
  // errors come back inside the response ("ok": false).
  StatusOr<JsonValue> Call(const JsonValue& request);

  // Same, with a preformatted single-line JSON request.
  StatusOr<JsonValue> CallRaw(std::string_view request_line);

  // True while the connection is usable.
  bool connected() const { return fd_ >= 0; }

  void Close();

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::string buffer_;  // bytes read past the last response line
};

// Connects to `address`, issues `GET <path>`, and returns the response
// body after verifying a 200 status line. Used to scrape /metrics without
// shelling out to curl.
StatusOr<std::string> HttpGet(const std::string& address,
                              const std::string& path);

}  // namespace serve
}  // namespace pdx

#endif  // PDX_SERVE_CLIENT_H_
