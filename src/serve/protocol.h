#ifndef PDX_SERVE_PROTOCOL_H_
#define PDX_SERVE_PROTOCOL_H_

// The pdxd wire protocol: line-delimited JSON, one request object per
// line, one response object per line, over a Unix or TCP stream (see
// serve/server.h for the transport). The handler is transport-free so
// tests drive it directly.
//
// Request object:
//   {"id": <any>,            // echoed verbatim in the response
//    "verb": "ping" | "load" | "write" | "retract" | "exists" |
//            "certain" | "contains" | "stats" | "evict" | "shutdown",
//    "tenant": "<hex id>",   // every verb except ping/load/stats/shutdown
//    "deadline_ms": 30000,   // optional per-request deadline
//    "setting": "...",       // load: setting file text
//    "facts": "E(a,b).",     // load (optional initial facts) / write /
//                            // retract / contains: instance text
//    "query": "q(x) :- ...", // certain
//    "mode": "exact",        // certain: exact | lower_bound
//    "solver": "auto"}       // exists: auto | ctract | generic
//
// Response object: {"id": <echo>, "ok": true, ...verb fields...} or
// {"id": <echo>, "ok": false, "error": {"code": "INVALID_ARGUMENT",
// "message": "..."}}. Read and write responses carry "generation" (the
// pinned generation's sequence number) and "fingerprint" (hex of its
// canonical fingerprint) — the observables the snapshot-isolation tests
// assert on.

#include <cstdint>
#include <string>
#include <string_view>

#include "serve/json.h"
#include "serve/registry.h"

namespace pdx {
namespace serve {

struct ProtocolOptions {
  // Deadline applied when a request carries none.
  int64_t default_deadline_ms = 30'000;
};

class ProtocolHandler {
 public:
  ProtocolHandler(TenantRegistry* registry, ProtocolOptions options)
      : registry_(registry), options_(options) {}

  // Handles one request line and returns the single-line JSON response
  // (no trailing newline). Never throws, never crashes on malformed
  // input — bad requests come back as ok=false responses. Sets
  // *shutdown_requested (may be null) when the line was a `shutdown`
  // verb; the transport is responsible for acting on it *after* writing
  // the response.
  std::string HandleLine(std::string_view line, bool* shutdown_requested);

 private:
  JsonValue Dispatch(const JsonValue& request, bool* shutdown_requested);

  TenantRegistry* registry_;
  ProtocolOptions options_;
};

}  // namespace serve
}  // namespace pdx

#endif  // PDX_SERVE_PROTOCOL_H_
