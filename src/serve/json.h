#ifndef PDX_SERVE_JSON_H_
#define PDX_SERVE_JSON_H_

// A minimal JSON document model and recursive-descent parser for the pdxd
// wire protocol (serve/protocol.h): line-delimited JSON requests arrive
// from untrusted clients, so parsing must return Status on any malformed
// input — never crash, never recurse unboundedly. The writer side emits
// *compact* single-line documents (the obs JsonWriter pretty-prints, which
// a line-delimited protocol cannot use).
//
// Deliberately small: objects keep insertion order (deterministic output,
// goldenable tests), numbers are int64 when they round-trip exactly and
// double otherwise, and \uXXXX escapes outside the BMP are not combined
// into surrogate pairs (protocol payloads are program text and fact
// spellings, not arbitrary unicode prose).

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/status.h"

namespace pdx {
namespace serve {

class JsonValue;

using JsonMember = std::pair<std::string, JsonValue>;

// One JSON value: null, bool, number, string, array or object.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b) {
    JsonValue v;
    v.kind_ = Kind::kBool;
    v.bool_ = b;
    return v;
  }
  static JsonValue Int(int64_t n) {
    JsonValue v;
    v.kind_ = Kind::kNumber;
    v.int_ = n;
    v.num_ = static_cast<double>(n);
    v.is_int_ = true;
    return v;
  }
  static JsonValue Double(double d) {
    JsonValue v;
    v.kind_ = Kind::kNumber;
    v.num_ = d;
    v.int_ = static_cast<int64_t>(d);
    v.is_int_ = false;
    return v;
  }
  static JsonValue String(std::string s) {
    JsonValue v;
    v.kind_ = Kind::kString;
    v.string_ = std::move(s);
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const { return bool_; }
  // Numbers: int64 view truncates when the document held a fraction.
  int64_t as_int() const { return is_int_ ? int_ : static_cast<int64_t>(num_); }
  double as_double() const { return num_; }
  const std::string& as_string() const { return string_; }
  const std::vector<JsonValue>& items() const { return items_; }
  const std::vector<JsonMember>& members() const { return members_; }

  // --- Building (writer side) -----------------------------------------
  JsonValue& Add(JsonValue item) {  // array append
    items_.push_back(std::move(item));
    return *this;
  }
  JsonValue& Set(std::string key, JsonValue value) {  // object append
    members_.emplace_back(std::move(key), std::move(value));
    return *this;
  }

  // --- Lookup (reader side) -------------------------------------------

  // The member named `key`, or nullptr. First match wins.
  const JsonValue* Find(std::string_view key) const;

  // Typed member accessors with defaults: the protocol's optional fields.
  std::string GetString(std::string_view key,
                        std::string_view fallback = "") const;
  int64_t GetInt(std::string_view key, int64_t fallback = 0) const;
  bool GetBool(std::string_view key, bool fallback = false) const;

  // Compact single-line rendering (the wire format). Deterministic:
  // members in insertion order, numbers via int64 or shortest %g.
  std::string Dump() const;

 private:
  void DumpTo(std::string* out) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  bool is_int_ = true;
  int64_t int_ = 0;
  double num_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<JsonMember> members_;
};

// Parses exactly one JSON document from `text` (surrounding whitespace
// allowed, trailing garbage rejected). Returns InvalidArgument on any
// syntax error, on nesting beyond an internal depth cap, and on documents
// whose numbers do not fit a double.
StatusOr<JsonValue> ParseJson(std::string_view text);

// Escapes `s` as the *contents* of a JSON string literal (no surrounding
// quotes); shared by Dump and ad-hoc emitters.
void AppendJsonEscaped(std::string_view s, std::string* out);

}  // namespace serve
}  // namespace pdx

#endif  // PDX_SERVE_JSON_H_
