#ifndef PDX_SERVE_TENANT_H_
#define PDX_SERVE_TENANT_H_

// One resident PDE setting inside pdxd: the compiled setting, its symbol
// universe, the generation chain and the single writer thread that advances
// it. All request-path methods are thread-safe; reads pin a generation and
// never block on the writer, writes block on their ticket until the batch
// containing them is published (or the deadline passes).
//
// Symbol-universe locking: SymbolTable::FreshNull is lock-free, but
// InternConstant and ValueToString are not safe against concurrent
// interning. Every operation that may intern (parsing facts, queries,
// settings) takes symbols_mu_ exclusively; solver runs and fact rendering
// take it shared. The writer chases under a shared lock too — it only
// creates nulls and renders failure messages.

#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "base/status.h"
#include "chase/chase.h"
#include "chase/stream.h"
#include "pde/setting.h"
#include "relational/value.h"
#include "serve/admission.h"
#include "serve/generation.h"

namespace pdx {
namespace serve {

struct TenantOptions {
  // Worker threads per chase / solver run. 1 by default: pdxd gets its
  // concurrency from serving many requests at once, so single-threaded
  // chases avoid oversubscribing the box; raise it for a tenant whose
  // individual batches are huge.
  int chase_threads = 1;
  int64_t max_chase_steps = 1'000'000;
  // Budget for the generic solver's exists/certain search.
  int64_t max_solver_nodes = 1'000'000;
};

struct WriteOutcome {
  uint64_t generation = 0;   // seq of the generation holding the write
  uint64_t fingerprint = 0;  // its canonical fingerprint
};

struct ExistsOutcome {
  bool exists = false;
  // What actually ran: "ctract", "generic", "generic+revalidated" (prior
  // witness survived a PTIME IsSolution check, NP search skipped) or
  // "cached" (auto verdict memoized on the generation).
  std::string solver;
  uint64_t generation = 0;
  uint64_t fingerprint = 0;
};

struct CertainOutcome {
  bool no_solution = false;
  bool boolean_value = false;
  std::vector<std::string> answers;  // rendered tuples, sorted
  bool is_boolean = false;
  uint64_t generation = 0;
  uint64_t fingerprint = 0;
};

struct ContainsOutcome {
  bool contains = false;
  uint64_t generation = 0;
  uint64_t fingerprint = 0;
};

struct TenantStats {
  std::string id;
  uint64_t generation = 0;
  size_t base_facts = 0;
  size_t canonical_facts = 0;
  size_t queue_depth = 0;
  int64_t chase_steps = 0;
};

class Tenant {
 public:
  // Parses `setting_text` into a fresh symbol universe, builds generation
  // 0 (the chase of the empty instance — which also warms the process-wide
  // plan cache with this setting's compiled plans) and starts the writer
  // thread. Fails with InvalidArgument on malformed settings.
  static StatusOr<std::shared_ptr<Tenant>> Create(std::string_view setting_text,
                                                  const TenantOptions& options);

  ~Tenant();

  // Stable identity: hex of a 64-bit hash over the setting's canonical
  // file-text rendering, so two loads of the same setting (even spelled
  // with different whitespace/comments) share one tenant.
  const std::string& id() const { return id_; }
  const PdeSetting& setting() const { return *setting_; }

  // Computes the id `setting_text` would get, without building a tenant.
  static StatusOr<std::string> IdForSetting(std::string_view setting_text);

  // --- Request paths ---------------------------------------------------

  // Admits the facts (instance text over the combined schema; source-side
  // facts must be ground) and blocks until the batch containing them is
  // published or `deadline` passes. FailedPrecondition when the write is
  // incompatible (its chase fails on a target egd — the write would make
  // the state unsolvable, which the canonical chase is sound to reject).
  StatusOr<WriteOutcome> Write(std::string_view facts_text,
                               std::chrono::steady_clock::time_point deadline);

  // Retracts the facts (instance text over the combined schema) and blocks
  // until the batch containing the retraction is published or `deadline`
  // passes. Retracting facts that were never admitted — including derived
  // facts, which are consequences of the base, not retractable inputs — is
  // a no-op, not an error. Deletion propagates through the streaming chase
  // (chase/stream.h): derived facts whose every justification involved a
  // retracted fact leave the canonical instance, over-deletions are
  // re-derived, and a retraction that invalidates an egd merge falls back
  // to one full re-chase of the net base. A coalesced batch applies all
  // its deletes before all its adds.
  StatusOr<WriteOutcome> Retract(
      std::string_view facts_text,
      std::chrono::steady_clock::time_point deadline);

  // ExistsSolution on the pinned generation's (I, J). `solver` is "auto"
  // (Figure 3 when applicable, else the generic search), "ctract" or
  // "generic". Auto verdicts are memoized per generation.
  StatusOr<ExistsOutcome> Exists(const std::string& solver);

  // Certain answers of `query_text` on the pinned generation's (I, J).
  // `mode` is "exact" (PTIME for data exchange, minimal-solution
  // enumeration otherwise) or "lower_bound" (the always-PTIME sound
  // under-approximation via J_can).
  StatusOr<CertainOutcome> Certain(std::string_view query_text,
                                   const std::string& mode);

  // True iff every fact of `facts_text` is in the pinned generation's
  // canonical (chased) instance. Labeled nulls in the probe parse fresh
  // and therefore never match.
  StatusOr<ContainsOutcome> Contains(std::string_view facts_text);

  TenantStats Stats() const;

  // The current generation (tests assert isolation through this).
  std::shared_ptr<const Generation> Snapshot() const {
    return store_.Acquire();
  }

  // Test hooks: freeze/unfreeze the writer's drain so N submitted writes
  // provably coalesce into one batch.
  void PauseWrites() { queue_.Pause(); }
  void ResumeWrites() { queue_.Resume(); }

  // Stops admission, lets the writer finish every admitted write, joins
  // it. Idempotent; the destructor calls it.
  void Shutdown();

 private:
  Tenant() = default;

  // Shared Write/Retract path: parse, enqueue, block on the ticket.
  StatusOr<WriteOutcome> SubmitDelta(
      std::string_view facts_text, bool retract,
      std::chrono::steady_clock::time_point deadline);

  void WriterLoop();
  // One coalesced batch: apply the union of the tickets' deletes then adds
  // as a single ±Δ round on the writer's streaming chase; on failure with
  // >1 tickets, replay each individually (the stream rolls a failed batch
  // back wholesale) so only the offending writes are rejected.
  void ApplyBatch(const std::vector<std::shared_ptr<WriteTicket>>& batch);
  // Applies `tickets`' ±Δ on the streaming chase on top of `prev`. On
  // success publishes and completes the tickets; on failure returns the
  // error without publishing (tickets untouched, stream state unchanged).
  Status TryPublish(const std::shared_ptr<const Generation>& prev,
                    const std::vector<std::shared_ptr<WriteTicket>>& tickets);

  ChaseOptions BatchChaseOptions() const;

  std::string id_;
  TenantOptions options_;
  std::unique_ptr<SymbolTable> symbols_;
  std::optional<PdeSetting> setting_;
  std::vector<Tgd> generating_tgds_;  // Σ_st ∪ Σ_t tgds
  GenerationStore store_{nullptr};
  AdmissionQueue queue_;
  // Writer-owned streaming state: base + canonical instance + firing
  // journal. Only the writer thread touches it after Create; generations
  // publish COW branches of its instances, so pinned readers are immune to
  // later in-place retraction.
  std::unique_ptr<StreamingChase> stream_;
  std::thread writer_;
  bool shut_down_ = false;
  std::mutex shutdown_mu_;

  mutable std::shared_mutex symbols_mu_;

  // Last generic-solver exists witness (the solution J'), reused across
  // generations: a PTIME IsSolution revalidation beats re-running the NP
  // search when churn left the witness intact. Positive reuse only.
  mutable std::mutex witness_mu_;
  std::optional<Instance> exists_witness_;
};

}  // namespace serve
}  // namespace pdx

#endif  // PDX_SERVE_TENANT_H_
