#include "serve/protocol.h"

#include <chrono>
#include <cstdio>

#include "base/string_util.h"
#include "serve/metrics.h"

namespace pdx {
namespace serve {

namespace {

std::string HexFingerprint(uint64_t fp) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(fp));
  return buffer;
}

JsonValue ErrorResponse(JsonValue id, const Status& status) {
  JsonValue error = JsonValue::Object();
  error.Set("code", JsonValue::String(StatusCodeToString(status.code())));
  error.Set("message", JsonValue::String(status.message()));
  JsonValue response = JsonValue::Object();
  response.Set("id", std::move(id));
  response.Set("ok", JsonValue::Bool(false));
  response.Set("error", std::move(error));
  return response;
}

JsonValue OkResponse(JsonValue id) {
  JsonValue response = JsonValue::Object();
  response.Set("id", std::move(id));
  response.Set("ok", JsonValue::Bool(true));
  return response;
}

void SetGeneration(JsonValue* response, uint64_t seq, uint64_t fingerprint) {
  response->Set("generation", JsonValue::Int(static_cast<int64_t>(seq)));
  response->Set("fingerprint", JsonValue::String(HexFingerprint(fingerprint)));
}

// The "tenant" field resolved against the registry.
StatusOr<std::shared_ptr<Tenant>> ResolveTenant(const TenantRegistry& registry,
                                                const JsonValue& request) {
  std::string id = request.GetString("tenant");
  if (id.empty()) {
    return InvalidArgumentError("request needs a \"tenant\" field");
  }
  return registry.Find(id);
}

StatusOr<std::string> RequiredString(const JsonValue& request,
                                     std::string_view key) {
  const JsonValue* value = request.Find(key);
  if (value == nullptr || !value->is_string()) {
    return InvalidArgumentError(
        StrCat("request needs a string \"", key, "\" field"));
  }
  return value->as_string();
}

JsonValue StatsEntry(const TenantStats& stats) {
  JsonValue entry = JsonValue::Object();
  entry.Set("tenant", JsonValue::String(stats.id));
  entry.Set("generation",
            JsonValue::Int(static_cast<int64_t>(stats.generation)));
  entry.Set("base_facts",
            JsonValue::Int(static_cast<int64_t>(stats.base_facts)));
  entry.Set("canonical_facts",
            JsonValue::Int(static_cast<int64_t>(stats.canonical_facts)));
  entry.Set("queue_depth",
            JsonValue::Int(static_cast<int64_t>(stats.queue_depth)));
  entry.Set("chase_steps", JsonValue::Int(stats.chase_steps));
  return entry;
}

}  // namespace

std::string ProtocolHandler::HandleLine(std::string_view line,
                                        bool* shutdown_requested) {
  ServeMetrics& metrics = GlobalServeMetrics();
  metrics.requests_total.Inc();
  metrics.inflight_requests.Add(1);
  auto started = std::chrono::steady_clock::now();

  StatusOr<JsonValue> parsed = ParseJson(line);
  JsonValue response;
  std::string verb = "stats";  // bucket for unparseable requests
  if (!parsed.ok()) {
    response = ErrorResponse(JsonValue::Null(), parsed.status());
  } else if (!parsed->is_object()) {
    response = ErrorResponse(
        JsonValue::Null(),
        InvalidArgumentError("request must be a JSON object"));
  } else {
    verb = parsed->GetString("verb");
    response = Dispatch(*parsed, shutdown_requested);
  }

  if (!response.GetBool("ok")) {
    metrics.errors_total.Inc();
    if (const JsonValue* error = response.Find("error");
        error != nullptr &&
        error->GetString("code") ==
            StatusCodeToString(StatusCode::kDeadlineExceeded)) {
      metrics.deadline_exceeded_total.Inc();
    }
  }
  auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - started);
  metrics.LatencyFor(verb).Observe(elapsed.count());
  metrics.inflight_requests.Add(-1);
  return response.Dump();
}

JsonValue ProtocolHandler::Dispatch(const JsonValue& request,
                                    bool* shutdown_requested) {
  JsonValue id =
      request.Find("id") != nullptr ? *request.Find("id") : JsonValue::Null();
  std::string verb = request.GetString("verb");
  if (verb.empty()) {
    return ErrorResponse(id,
                         InvalidArgumentError("request needs a \"verb\""));
  }

  int64_t deadline_ms = request.GetInt("deadline_ms", 0);
  if (deadline_ms <= 0) deadline_ms = options_.default_deadline_ms;
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(deadline_ms);

  if (verb == "ping") {
    JsonValue response = OkResponse(id);
    response.Set("pong", JsonValue::Bool(true));
    return response;
  }

  if (verb == "shutdown") {
    if (shutdown_requested != nullptr) *shutdown_requested = true;
    JsonValue response = OkResponse(id);
    response.Set("draining", JsonValue::Bool(true));
    return response;
  }

  if (verb == "load") {
    auto setting_text = RequiredString(request, "setting");
    if (!setting_text.ok()) {
      return ErrorResponse(id, setting_text.status());
    }
    auto tenant = registry_->Load(*setting_text);
    if (!tenant.ok()) return ErrorResponse(id, tenant.status());
    JsonValue response = OkResponse(id);
    response.Set("tenant", JsonValue::String((*tenant)->id()));
    if (std::string facts = request.GetString("facts"); !facts.empty()) {
      auto written = (*tenant)->Write(facts, deadline);
      if (!written.ok()) {
        // The tenant stays loaded; only the initial write failed.
        response = ErrorResponse(id, written.status());
        response.Set("tenant", JsonValue::String((*tenant)->id()));
        return response;
      }
      SetGeneration(&response, written->generation, written->fingerprint);
    } else {
      std::shared_ptr<const Generation> gen = (*tenant)->Snapshot();
      SetGeneration(&response, gen->seq(), gen->Fingerprint());
    }
    return response;
  }

  if (verb == "stats") {
    JsonValue tenants = JsonValue::Array();
    if (std::string one = request.GetString("tenant"); !one.empty()) {
      auto tenant = registry_->Find(one);
      if (!tenant.ok()) return ErrorResponse(id, tenant.status());
      tenants.Add(StatsEntry((*tenant)->Stats()));
    } else {
      for (const auto& tenant : registry_->All()) {
        tenants.Add(StatsEntry(tenant->Stats()));
      }
    }
    JsonValue response = OkResponse(id);
    response.Set("tenants", std::move(tenants));
    return response;
  }

  if (verb == "evict") {
    auto tenant_id = RequiredString(request, "tenant");
    if (!tenant_id.ok()) return ErrorResponse(id, tenant_id.status());
    if (Status status = registry_->Evict(*tenant_id); !status.ok()) {
      return ErrorResponse(id, status);
    }
    JsonValue response = OkResponse(id);
    response.Set("evicted", JsonValue::String(*tenant_id));
    return response;
  }

  // Everything below is tenant-scoped.
  auto tenant = ResolveTenant(*registry_, request);
  if (!tenant.ok()) return ErrorResponse(id, tenant.status());

  if (std::chrono::steady_clock::now() >= deadline) {
    return ErrorResponse(id,
                         DeadlineExceededError("deadline expired on arrival"));
  }

  if (verb == "write") {
    auto facts = RequiredString(request, "facts");
    if (!facts.ok()) return ErrorResponse(id, facts.status());
    auto outcome = (*tenant)->Write(*facts, deadline);
    if (!outcome.ok()) return ErrorResponse(id, outcome.status());
    JsonValue response = OkResponse(id);
    SetGeneration(&response, outcome->generation, outcome->fingerprint);
    return response;
  }

  if (verb == "retract") {
    auto facts = RequiredString(request, "facts");
    if (!facts.ok()) return ErrorResponse(id, facts.status());
    auto outcome = (*tenant)->Retract(*facts, deadline);
    if (!outcome.ok()) return ErrorResponse(id, outcome.status());
    JsonValue response = OkResponse(id);
    SetGeneration(&response, outcome->generation, outcome->fingerprint);
    return response;
  }

  if (verb == "exists") {
    auto outcome = (*tenant)->Exists(request.GetString("solver", "auto"));
    if (!outcome.ok()) return ErrorResponse(id, outcome.status());
    JsonValue response = OkResponse(id);
    response.Set("exists", JsonValue::Bool(outcome->exists));
    response.Set("solver", JsonValue::String(outcome->solver));
    SetGeneration(&response, outcome->generation, outcome->fingerprint);
    return response;
  }

  if (verb == "certain") {
    auto query = RequiredString(request, "query");
    if (!query.ok()) return ErrorResponse(id, query.status());
    auto outcome =
        (*tenant)->Certain(*query, request.GetString("mode", "exact"));
    if (!outcome.ok()) return ErrorResponse(id, outcome.status());
    JsonValue response = OkResponse(id);
    response.Set("no_solution", JsonValue::Bool(outcome->no_solution));
    if (outcome->is_boolean) {
      response.Set("boolean", JsonValue::Bool(outcome->boolean_value));
    }
    JsonValue answers = JsonValue::Array();
    for (const std::string& answer : outcome->answers) {
      answers.Add(JsonValue::String(answer));
    }
    response.Set("answers", std::move(answers));
    SetGeneration(&response, outcome->generation, outcome->fingerprint);
    return response;
  }

  if (verb == "contains") {
    auto facts = RequiredString(request, "facts");
    if (!facts.ok()) return ErrorResponse(id, facts.status());
    auto outcome = (*tenant)->Contains(*facts);
    if (!outcome.ok()) return ErrorResponse(id, outcome.status());
    JsonValue response = OkResponse(id);
    response.Set("contains", JsonValue::Bool(outcome->contains));
    SetGeneration(&response, outcome->generation, outcome->fingerprint);
    return response;
  }

  return ErrorResponse(id,
                       InvalidArgumentError(StrCat("unknown verb '", verb,
                                                   "'")));
}

}  // namespace serve
}  // namespace pdx
