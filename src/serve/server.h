#ifndef PDX_SERVE_SERVER_H_
#define PDX_SERVE_SERVER_H_

// The pdxd transport: a blocking accept loop over a Unix or TCP listening
// socket, one ThreadPool task per connection (line-delimited JSON requests
// handled by serve/protocol.h), plus an optional HTTP endpoint that serves
// the process metrics registry in Prometheus text format. No external
// dependencies — plain POSIX sockets.
//
// Addresses are "unix:PATH" or "tcp:HOST:PORT" (PORT may be 0 to let the
// kernel pick; address() reports the resolved port).
//
// Graceful drain (Shutdown, also triggered by the protocol's `shutdown`
// verb): stop accepting, half-close every open connection's read side so
// handlers finish their in-flight request and see EOF, drain the worker
// pool, then shut the tenant registry down — admitted writes are always
// published or rejected, never dropped.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "base/status.h"
#include "base/thread_pool.h"
#include "serve/protocol.h"
#include "serve/registry.h"

namespace pdx {
namespace serve {

struct ServerOptions {
  std::string address;          // protocol listener, required
  std::string metrics_address;  // /metrics HTTP listener; empty = disabled
  int worker_threads = 0;       // connection handlers; 0 = hardware
  size_t max_line_bytes = 8u << 20;
  ProtocolOptions protocol;
  TenantOptions tenant;
};

class Server {
 public:
  // Binds the listeners and starts the accept loop and worker pool.
  static StatusOr<std::unique_ptr<Server>> Start(const ServerOptions& options);

  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // The bound addresses, with kernel-assigned TCP ports resolved.
  const std::string& address() const { return address_; }
  const std::string& metrics_address() const { return metrics_address_; }

  TenantRegistry& registry() { return registry_; }

  // Blocks until a shutdown has been requested (shutdown verb or
  // Shutdown() from another thread), or `poll` elapses; true = requested.
  // The caller then runs Shutdown() to actually drain — the request
  // handler can't (a pool task cannot wait for its own pool).
  bool WaitForShutdownRequest(std::chrono::milliseconds poll);

  // Graceful drain as described above. Idempotent; the destructor calls
  // it. Must not be called from a connection handler.
  void Shutdown();

 private:
  explicit Server(const ServerOptions& options);

  void AcceptLoop();
  void MetricsLoop();
  void ServeConnection(int fd);
  void ServeMetricsConnection(int fd);
  void RequestShutdown();

  ServerOptions options_;
  std::string address_;
  std::string metrics_address_;
  TenantRegistry registry_;
  ProtocolHandler handler_;
  std::unique_ptr<ThreadPool> pool_;

  int listen_fd_ = -1;
  int metrics_fd_ = -1;
  std::string unix_path_;          // unlinked on shutdown, "" for TCP
  std::string metrics_unix_path_;

  std::thread accept_thread_;
  std::thread metrics_thread_;

  std::atomic<bool> draining_{false};
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  bool shut_down_ = false;

  std::mutex conns_mu_;
  std::unordered_set<int> conns_;  // open connection fds, for SHUT_RD
};

}  // namespace serve
}  // namespace pdx

#endif  // PDX_SERVE_SERVER_H_
