#ifndef PDX_SERVE_METRICS_H_
#define PDX_SERVE_METRICS_H_

// The pdxd serving metrics, registered once in the process-wide
// MetricsRegistry and exported over the daemon's /metrics endpoint in
// Prometheus 0.0.4 text format. The registry has no label support, so the
// per-verb latency histograms are distinct metrics
// (pdx_serve_latency_micros_<verb>) rather than one labeled family.

#include <cstdint>
#include <string_view>

#include "obs/metrics.h"

namespace pdx {
namespace serve {

struct ServeMetrics {
  // Request flow.
  obs::Counter requests_total;        // every request handled, any verb
  obs::Counter errors_total;          // requests answered with ok=false
  obs::Counter deadline_exceeded_total;
  obs::Gauge inflight_requests;       // currently being handled
  obs::Counter connections_total;     // accepted protocol connections

  // Write path: the headline acceptance ratio is
  // batches_total / write_requests_total — N compatible writes admitted
  // while the writer is busy coalesce into ONE chase round.
  obs::Counter write_requests_total;  // write verbs admitted to a queue
  obs::Counter retract_requests_total;  // retract verbs admitted to a queue
  obs::Counter batches_total;         // coalesced chase rounds run
  obs::Counter batch_retries_total;   // individual replays after a failed
                                      // coalesced batch
  obs::Counter stream_fallbacks_total;  // deletion batches that invalidated
                                        // an egd merge and re-chased fully
  obs::Histogram batch_size;          // writes per published batch
  obs::Gauge queue_depth;             // tickets waiting in admission queues
  obs::Gauge generation_lag;          // writes admitted but not yet visible
                                      // in a published generation
  obs::Gauge generation_seq;          // highest generation published

  // Tenant registry.
  obs::Gauge tenants;

  // Per-verb wall-clock latency, in microseconds.
  obs::Histogram latency_ping;
  obs::Histogram latency_load;
  obs::Histogram latency_write;
  obs::Histogram latency_retract;
  obs::Histogram latency_exists;
  obs::Histogram latency_certain;
  obs::Histogram latency_contains;
  obs::Histogram latency_stats;

  // The histogram for `verb`, or latency_stats for unknown verbs.
  obs::Histogram& LatencyFor(std::string_view verb);
};

// The process-wide instance (handles into MetricsRegistry::Global()).
ServeMetrics& GlobalServeMetrics();

}  // namespace serve
}  // namespace pdx

#endif  // PDX_SERVE_METRICS_H_
