#include "serve/admission.h"

#include "serve/metrics.h"

namespace pdx {
namespace serve {

void WriteTicket::Complete(Status status,
                           std::shared_ptr<const Generation> published) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    done_ = true;
    status_ = std::move(status);
    published_ = std::move(published);
  }
  cv_.notify_all();
}

Status WriteTicket::Wait(std::chrono::steady_clock::time_point deadline,
                         std::shared_ptr<const Generation>* published) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!cv_.wait_until(lock, deadline, [&] { return done_; })) {
    return DeadlineExceededError(
        "write admitted but not published before the deadline");
  }
  if (published != nullptr) *published = published_;
  return status_;
}

bool AdmissionQueue::Submit(std::shared_ptr<WriteTicket> ticket) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return false;
    pending_.push_back(std::move(ticket));
    GlobalServeMetrics().queue_depth.Add(1);
  }
  cv_.notify_all();
  return true;
}

std::vector<std::shared_ptr<WriteTicket>> AdmissionQueue::DrainBlocking() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return closed_ || (!pending_.empty() && !paused_); });
  std::vector<std::shared_ptr<WriteTicket>> batch(pending_.begin(),
                                                  pending_.end());
  pending_.clear();
  if (!batch.empty()) {
    GlobalServeMetrics().queue_depth.Add(-static_cast<int64_t>(batch.size()));
  }
  return batch;
}

void AdmissionQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    paused_ = false;
  }
  cv_.notify_all();
}

void AdmissionQueue::Pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void AdmissionQueue::Resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

size_t AdmissionQueue::Depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

}  // namespace serve
}  // namespace pdx
