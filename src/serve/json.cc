#include "serve/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "base/string_util.h"

namespace pdx {
namespace serve {

namespace {

// Wire documents are flat in practice (one level of request fields plus an
// answers array); the cap only exists so a hostile deeply-nested document
// cannot exhaust the parser's stack.
constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    PDX_ASSIGN_OR_RETURN(JsonValue value, ParseValue(0));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(std::string_view what) const {
    return InvalidArgumentError(
        StrCat("json: ", what, " at offset ", pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  StatusOr<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of document");
    char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject(depth);
      case '[': return ParseArray(depth);
      case '"': {
        PDX_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue::String(std::move(s));
      }
      case 't':
        if (ConsumeLiteral("true")) return JsonValue::Bool(true);
        return Error("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) return JsonValue::Bool(false);
        return Error("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) return JsonValue::Null();
        return Error("invalid literal");
      default:
        return ParseNumber();
    }
  }

  StatusOr<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    JsonValue object = JsonValue::Object();
    if (Consume('}')) return object;
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      PDX_ASSIGN_OR_RETURN(std::string key, ParseString());
      if (!Consume(':')) return Error("expected ':' after object key");
      PDX_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      object.Set(std::move(key), std::move(value));
      if (Consume(',')) continue;
      if (Consume('}')) return object;
      return Error("expected ',' or '}' in object");
    }
  }

  StatusOr<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    JsonValue array = JsonValue::Array();
    if (Consume(']')) return array;
    while (true) {
      PDX_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      array.Add(std::move(value));
      if (Consume(',')) continue;
      if (Consume(']')) return array;
      return Error("expected ',' or ']' in array");
    }
  }

  StatusOr<std::string> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return Error("dangling escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return Error("invalid \\u escape");
          }
          // UTF-8 encode the code point (surrogates pass through as the
          // replacement character; see header note).
          if (code >= 0xd800 && code <= 0xdfff) code = 0xfffd;
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
  }

  StatusOr<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      return Error("invalid number");
    }
    std::string token(text_.substr(start, pos_ - start));
    if (integral) {
      errno = 0;
      char* end = nullptr;
      long long n = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        return JsonValue::Int(static_cast<int64_t>(n));
      }
      // Out of int64 range: fall through to double.
    }
    errno = 0;
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(d)) {
      return Error("invalid number");
    }
    return JsonValue::Double(d);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const JsonMember& member : members_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

std::string JsonValue::GetString(std::string_view key,
                                 std::string_view fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->as_string()
                                        : std::string(fallback);
}

int64_t JsonValue::GetInt(std::string_view key, int64_t fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->as_int() : fallback;
}

bool JsonValue::GetBool(std::string_view key, bool fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_bool() ? v->as_bool() : fallback;
}

void AppendJsonEscaped(std::string_view s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          *out += buffer;
        } else {
          *out += c;
        }
    }
  }
}

void JsonValue::DumpTo(std::string* out) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      return;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Kind::kNumber:
      if (is_int_) {
        *out += std::to_string(int_);
      } else {
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%.17g", num_);
        *out += buffer;
      }
      return;
    case Kind::kString:
      *out += '"';
      AppendJsonEscaped(string_, out);
      *out += '"';
      return;
    case Kind::kArray: {
      *out += '[';
      bool first = true;
      for (const JsonValue& item : items_) {
        if (!first) *out += ',';
        first = false;
        item.DumpTo(out);
      }
      *out += ']';
      return;
    }
    case Kind::kObject: {
      *out += '{';
      bool first = true;
      for (const JsonMember& member : members_) {
        if (!first) *out += ',';
        first = false;
        *out += '"';
        AppendJsonEscaped(member.first, out);
        *out += "\":";
        member.second.DumpTo(out);
      }
      *out += '}';
      return;
    }
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

StatusOr<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace serve
}  // namespace pdx
