#include "serve/client.h"

#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "base/string_util.h"

namespace pdx {
namespace serve {

namespace {

StatusOr<int> ConnectFd(const std::string& address) {
  if (address.rfind("unix:", 0) == 0) {
    std::string path = address.substr(5);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
      return InvalidArgumentError(StrCat("bad unix path in ", address));
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return InternalError("socket(AF_UNIX) failed");
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      int err = errno;
      ::close(fd);
      return NotFoundError(
          StrCat("cannot connect to ", address, ": ", std::strerror(err)));
    }
    return fd;
  }
  if (address.rfind("tcp:", 0) == 0) {
    std::string hostport = address.substr(4);
    size_t colon = hostport.rfind(':');
    if (colon == std::string::npos) {
      return InvalidArgumentError(
          StrCat("tcp address needs HOST:PORT, got ", address));
    }
    std::string host = hostport.substr(0, colon);
    std::string port = hostport.substr(colon + 1);
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* info = nullptr;
    if (::getaddrinfo(host.c_str(), port.c_str(), &hints, &info) != 0) {
      return NotFoundError(StrCat("cannot resolve ", address));
    }
    int fd = -1;
    int err = 0;
    for (addrinfo* ai = info; ai != nullptr; ai = ai->ai_next) {
      fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
      if (fd < 0) continue;
      if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
      err = errno;
      ::close(fd);
      fd = -1;
    }
    ::freeaddrinfo(info);
    if (fd < 0) {
      return NotFoundError(
          StrCat("cannot connect to ", address, ": ", std::strerror(err)));
    }
    return fd;
  }
  return InvalidArgumentError(
      StrCat("address must be unix:PATH or tcp:HOST:PORT, got ", address));
}

bool SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

StatusOr<Client> Client::Connect(const std::string& address) {
  PDX_ASSIGN_OR_RETURN(int fd, ConnectFd(address));
  return Client(fd);
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

StatusOr<JsonValue> Client::Call(const JsonValue& request) {
  return CallRaw(request.Dump());
}

StatusOr<JsonValue> Client::CallRaw(std::string_view request_line) {
  if (fd_ < 0) return FailedPreconditionError("client is closed");
  std::string line(request_line);
  line += '\n';
  if (!SendAll(fd_, line)) {
    Close();
    return InternalError("send failed (server gone?)");
  }
  char chunk[4096];
  while (true) {
    size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string response = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return ParseJson(response);
    }
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      Close();
      return InternalError("connection closed before a response arrived");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

StatusOr<std::string> HttpGet(const std::string& address,
                              const std::string& path) {
  PDX_ASSIGN_OR_RETURN(int fd, ConnectFd(address));
  std::string request =
      StrCat("GET ", path, " HTTP/1.0\r\nConnection: close\r\n\r\n");
  if (!SendAll(fd, request)) {
    ::close(fd);
    return InternalError("send failed");
  }
  std::string response;
  char chunk[4096];
  while (true) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      ::close(fd);
      return InternalError("recv failed");
    }
    if (n == 0) break;
    response.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  size_t header_end = response.find("\r\n\r\n");
  size_t body_start = header_end == std::string::npos ? std::string::npos
                                                      : header_end + 4;
  if (body_start == std::string::npos) {
    header_end = response.find("\n\n");
    body_start = header_end == std::string::npos ? std::string::npos
                                                 : header_end + 2;
  }
  if (body_start == std::string::npos) {
    return InternalError("malformed HTTP response (no header terminator)");
  }
  std::string status_line = response.substr(0, response.find('\n'));
  if (status_line.find(" 200 ") == std::string::npos) {
    return InternalError(StrCat("HTTP error: ", status_line));
  }
  return response.substr(body_start);
}

}  // namespace serve
}  // namespace pdx
