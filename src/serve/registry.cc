#include "serve/registry.h"

#include "base/string_util.h"
#include "serve/metrics.h"

namespace pdx {
namespace serve {

StatusOr<std::shared_ptr<Tenant>> TenantRegistry::Load(
    std::string_view setting_text) {
  // Resolve the id first (a parse into a throwaway symbol table) so the
  // common reload path takes the lock only for a map probe.
  PDX_ASSIGN_OR_RETURN(std::string id, Tenant::IdForSetting(setting_text));
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tenants_.find(id);
    if (it != tenants_.end()) return it->second;
  }
  PDX_ASSIGN_OR_RETURN(std::shared_ptr<Tenant> tenant,
                       Tenant::Create(setting_text, options_));
  PDX_CHECK(tenant->id() == id);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = tenants_.emplace(id, std::move(tenant));
  if (inserted) {
    GlobalServeMetrics().tenants.Set(static_cast<int64_t>(tenants_.size()));
  }
  // When a concurrent Load won the race, ours is discarded (its destructor
  // drains the idle writer) and everyone shares the winner.
  return it->second;
}

StatusOr<std::shared_ptr<Tenant>> TenantRegistry::Find(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(id);
  if (it == tenants_.end()) {
    return NotFoundError(StrCat("no tenant '", id, "' (load it first)"));
  }
  return it->second;
}

Status TenantRegistry::Evict(const std::string& id) {
  std::shared_ptr<Tenant> victim;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tenants_.find(id);
    if (it == tenants_.end()) {
      return NotFoundError(StrCat("no tenant '", id, "'"));
    }
    victim = std::move(it->second);
    tenants_.erase(it);
    GlobalServeMetrics().tenants.Set(static_cast<int64_t>(tenants_.size()));
  }
  victim->Shutdown();  // outside the lock: joins the writer thread
  return OkStatus();
}

std::vector<std::shared_ptr<Tenant>> TenantRegistry::All() const {
  std::vector<std::shared_ptr<Tenant>> all;
  std::lock_guard<std::mutex> lock(mu_);
  all.reserve(tenants_.size());
  for (const auto& [id, tenant] : tenants_) all.push_back(tenant);
  return all;
}

size_t TenantRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenants_.size();
}

void TenantRegistry::ShutdownAll() {
  std::vector<std::shared_ptr<Tenant>> victims;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, tenant] : tenants_) victims.push_back(std::move(tenant));
    tenants_.clear();
    GlobalServeMetrics().tenants.Set(0);
  }
  for (auto& tenant : victims) tenant->Shutdown();
}

}  // namespace serve
}  // namespace pdx
