#include "serve/tenant.h"

#include <cstdio>

#include "base/string_util.h"
#include "logic/parser.h"
#include "pde/certain_answers.h"
#include "pde/ctract_solver.h"
#include "pde/generic_solver.h"
#include "pde/setting_file.h"
#include "relational/instance_io.h"
#include "serve/metrics.h"

namespace pdx {
namespace serve {

namespace {

uint64_t Fnv1a64(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string HexId(uint64_t h) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(h));
  return buffer;
}

}  // namespace

StatusOr<std::string> Tenant::IdForSetting(std::string_view setting_text) {
  SymbolTable symbols;
  PDX_ASSIGN_OR_RETURN(PdeSetting setting,
                       ParseSettingFile(setting_text, &symbols));
  return HexId(Fnv1a64(SettingToFileText(setting, symbols)));
}

StatusOr<std::shared_ptr<Tenant>> Tenant::Create(std::string_view setting_text,
                                                 const TenantOptions& options) {
  std::shared_ptr<Tenant> tenant(new Tenant());
  tenant->options_ = options;
  tenant->symbols_ = std::make_unique<SymbolTable>();
  PDX_ASSIGN_OR_RETURN(
      PdeSetting setting,
      ParseSettingFile(setting_text, tenant->symbols_.get()));
  tenant->setting_.emplace(std::move(setting));
  // The id hashes the *canonical rendering*, not the raw text, so loads
  // that differ only in whitespace, comments or section order share a
  // tenant.
  tenant->id_ = HexId(
      Fnv1a64(SettingToFileText(*tenant->setting_, *tenant->symbols_)));
  tenant->generating_tgds_ = tenant->setting_->st_tgds();
  tenant->generating_tgds_.insert(tenant->generating_tgds_.end(),
                                  tenant->setting_->target_tgds().begin(),
                                  tenant->setting_->target_tgds().end());
  // Generation 0: the streaming chase initialized on the empty instance.
  // Trivial data-wise, but it compiles this setting's plans into the
  // process-wide PlanCache once (so the first real write doesn't pay
  // compilation) and seeds the firing journal deletion propagation reads.
  tenant->stream_ = std::make_unique<StreamingChase>(
      &tenant->setting_->schema(), tenant->generating_tgds_,
      tenant->setting_->target_egds(), tenant->symbols_.get(),
      tenant->BatchChaseOptions());
  Status init = tenant->stream_->Initialize(tenant->setting_->EmptyInstance());
  if (!init.ok()) {
    return InvalidArgumentError(
        StrCat("setting rejects even the empty instance: ", init.message()));
  }
  auto gen0 = std::make_shared<Generation>(
      0, Instance(tenant->stream_->base()),
      Instance(tenant->stream_->instance()),
      InstanceWatermark(tenant->stream_->mark()));
  gen0->set_chase_steps(tenant->stream_->total_steps());
  tenant->store_.Publish(std::move(gen0));
  tenant->writer_ = std::thread(&Tenant::WriterLoop, tenant.get());
  return tenant;
}

Tenant::~Tenant() { Shutdown(); }

void Tenant::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  queue_.Close();
  if (writer_.joinable()) writer_.join();
}

ChaseOptions Tenant::BatchChaseOptions() const {
  ChaseOptions opts;
  opts.strategy = ChaseStrategy::kRestricted;  // resume_from needs it
  opts.num_threads = options_.chase_threads;
  opts.max_steps = options_.max_chase_steps;
  return opts;
}

// --- Write path ----------------------------------------------------------

StatusOr<WriteOutcome> Tenant::SubmitDelta(
    std::string_view facts_text, bool retract,
    std::chrono::steady_clock::time_point deadline) {
  std::vector<Fact> facts;
  {
    // Parsing interns constants: exclusive on the symbol universe.
    std::unique_lock<std::shared_mutex> lock(symbols_mu_);
    PDX_ASSIGN_OR_RETURN(
        Instance parsed,
        ParseInstance(facts_text, setting_->schema(), symbols_.get()));
    facts = parsed.AllFacts();
  }
  if (!retract) {
    for (const Fact& fact : facts) {
      if (!setting_->is_source(fact.relation)) continue;
      for (Value v : fact.tuple) {
        if (v.is_null()) {
          return InvalidArgumentError(
              "source-side facts must be ground (no labeled nulls)");
        }
      }
    }
  }
  ServeMetrics& metrics = GlobalServeMetrics();
  if (retract) {
    metrics.retract_requests_total.Inc();
  } else {
    metrics.write_requests_total.Inc();
  }
  metrics.generation_lag.Add(1);
  auto ticket = retract
                    ? std::make_shared<WriteTicket>(std::vector<Fact>(),
                                                    std::move(facts))
                    : std::make_shared<WriteTicket>(std::move(facts));
  if (!queue_.Submit(ticket)) {
    metrics.generation_lag.Add(-1);
    return FailedPreconditionError("tenant is shutting down");
  }
  std::shared_ptr<const Generation> published;
  PDX_RETURN_IF_ERROR(ticket->Wait(deadline, &published));
  WriteOutcome out;
  out.generation = published->seq();
  out.fingerprint = published->Fingerprint();
  return out;
}

StatusOr<WriteOutcome> Tenant::Write(
    std::string_view facts_text,
    std::chrono::steady_clock::time_point deadline) {
  return SubmitDelta(facts_text, /*retract=*/false, deadline);
}

StatusOr<WriteOutcome> Tenant::Retract(
    std::string_view facts_text,
    std::chrono::steady_clock::time_point deadline) {
  return SubmitDelta(facts_text, /*retract=*/true, deadline);
}

void Tenant::WriterLoop() {
  while (true) {
    std::vector<std::shared_ptr<WriteTicket>> batch = queue_.DrainBlocking();
    if (batch.empty()) return;
    ApplyBatch(batch);
  }
}

Status Tenant::TryPublish(
    const std::shared_ptr<const Generation>& prev,
    const std::vector<std::shared_ptr<WriteTicket>>& tickets) {
  std::vector<Fact> adds;
  std::vector<Fact> deletes;
  for (const auto& ticket : tickets) {
    adds.insert(adds.end(), ticket->facts().begin(), ticket->facts().end());
    deletes.insert(deletes.end(), ticket->deletes().begin(),
                   ticket->deletes().end());
  }
  // One ±Δ round on the writer's streaming state: deletes propagate
  // through the firing journal (retraction cascade + re-derivation), adds
  // resume the delta chase from the post-removal watermark — never a full
  // rescan unless a retraction invalidated an egd merge. A failed batch
  // rolls the stream back wholesale, so per-ticket replay below always
  // starts from the published state.
  StatusOr<StreamStats> stats = [&] {
    std::shared_lock<std::shared_mutex> lock(symbols_mu_);
    return stream_->ResumeWithDeltas(adds, deletes);
  }();
  if (!stats.ok()) {
    if (stats.status().code() == StatusCode::kFailedPrecondition) {
      return FailedPreconditionError(
          StrCat("write rejected, no solution would exist: ",
                 stats.status().message()));
    }
    return stats.status();
  }
  auto next = std::make_shared<Generation>(
      prev->seq() + 1, Instance(stream_->base()),
      Instance(stream_->instance()), InstanceWatermark(stream_->mark()));
  next->set_chase_steps(prev->chase_steps() + stats.value().steps);
  ServeMetrics& metrics = GlobalServeMetrics();
  metrics.batches_total.Inc();
  metrics.batch_size.Observe(static_cast<int64_t>(tickets.size()));
  if (stats.value().fell_back) metrics.stream_fallbacks_total.Inc();
  metrics.generation_seq.Set(static_cast<int64_t>(next->seq()));
  store_.Publish(next);
  for (const auto& ticket : tickets) {
    ticket->Complete(OkStatus(), next);
  }
  return OkStatus();
}

void Tenant::ApplyBatch(
    const std::vector<std::shared_ptr<WriteTicket>>& batch) {
  ServeMetrics& metrics = GlobalServeMetrics();
  std::shared_ptr<const Generation> prev = store_.Acquire();
  Status status = TryPublish(prev, batch);
  if (!status.ok()) {
    if (batch.size() == 1) {
      batch[0]->Complete(status, nullptr);
    } else {
      // The union failed, but individual writes may be fine (two writes
      // each consistent alone can clash through an egd, or a retraction
      // can strand a sibling write's egd batch). Replay one by one so
      // only the offenders are rejected — sound because a failed
      // ResumeWithDeltas left the stream exactly at the published state.
      for (const auto& ticket : batch) {
        metrics.batch_retries_total.Inc();
        prev = store_.Acquire();
        status = TryPublish(prev, {ticket});
        if (!status.ok()) {
          ticket->Complete(status, nullptr);
        }
      }
    }
  }
  metrics.generation_lag.Add(-static_cast<int64_t>(batch.size()));
}

// --- Read paths ----------------------------------------------------------

StatusOr<ExistsOutcome> Tenant::Exists(const std::string& solver) {
  std::shared_ptr<const Generation> gen = store_.Acquire();
  ExistsOutcome out;
  out.generation = gen->seq();
  out.fingerprint = gen->Fingerprint();

  bool use_ctract;
  bool is_auto = solver == "auto" || solver.empty();
  if (is_auto) {
    if (std::optional<bool> cached = gen->CachedExists();
        cached.has_value()) {
      out.exists = *cached;
      out.solver = "cached";
      return out;
    }
    // Figure 3 is correct whenever Definition 9 condition 1 holds and
    // there are no target constraints; otherwise search.
    use_ctract = !setting_->HasTargetConstraints() &&
                 !setting_->HasDisjunctiveTsTgds() &&
                 setting_->ctract_report().theorem5_applicable();
  } else if (solver == "ctract") {
    use_ctract = true;
  } else if (solver == "generic") {
    use_ctract = false;
  } else {
    return InvalidArgumentError(
        StrCat("unknown solver '", solver, "' (want auto, ctract, generic)"));
  }

  std::shared_lock<std::shared_mutex> lock(symbols_mu_);
  const Instance& source = gen->SourceView(*setting_);
  const Instance& target = gen->TargetView(*setting_);
  if (use_ctract) {
    ChaseOptions opts = BatchChaseOptions();
    PDX_ASSIGN_OR_RETURN(
        CtractSolveResult result,
        CtractExistsSolution(*setting_, source, target, symbols_.get(), opts));
    out.exists = result.has_solution;
    out.solver = "ctract";
  } else {
    GenericSolverOptions opts;
    opts.max_nodes = options_.max_solver_nodes;
    opts.num_threads = options_.chase_threads;
    // Reuse the last witness across generations: when churn left the old
    // solution J' intact, a PTIME IsSolution revalidation replaces the NP
    // search. The witness is copied out under witness_mu_ (COW, cheap) so
    // concurrent Exists calls don't share a mutable Instance.
    std::optional<Instance> prior;
    {
      std::lock_guard<std::mutex> wlock(witness_mu_);
      if (exists_witness_.has_value()) prior.emplace(*exists_witness_);
    }
    PDX_ASSIGN_OR_RETURN(
        IncrementalSolveResult inc,
        GenericExistsSolutionIncremental(
            *setting_, source, target,
            prior.has_value() ? &*prior : nullptr, symbols_.get(), opts));
    if (inc.result.outcome == SolveOutcome::kBudgetExhausted) {
      return ResourceExhaustedError(
          "solver budget exhausted; existence unknown");
    }
    out.exists = inc.result.outcome == SolveOutcome::kSolutionFound;
    out.solver = inc.revalidated ? "generic+revalidated" : "generic";
    std::lock_guard<std::mutex> wlock(witness_mu_);
    if (out.exists && inc.result.solution.has_value()) {
      exists_witness_.emplace(*inc.result.solution);
    } else if (!out.exists) {
      exists_witness_.reset();
    }
  }
  if (is_auto) gen->CacheExists(out.exists);
  return out;
}

StatusOr<CertainOutcome> Tenant::Certain(std::string_view query_text,
                                         const std::string& mode) {
  UnionQuery query;
  {
    std::unique_lock<std::shared_mutex> lock(symbols_mu_);
    PDX_ASSIGN_OR_RETURN(
        query,
        ParseUnionQuery(query_text, setting_->schema(), symbols_.get()));
  }
  std::shared_ptr<const Generation> gen = store_.Acquire();
  CertainOutcome out;
  out.generation = gen->seq();
  out.fingerprint = gen->Fingerprint();
  out.is_boolean = query.IsBoolean();

  std::shared_lock<std::shared_mutex> lock(symbols_mu_);
  const Instance& source = gen->SourceView(*setting_);
  const Instance& target = gen->TargetView(*setting_);
  std::vector<Tuple> answers;
  if (mode == "lower_bound") {
    PDX_ASSIGN_OR_RETURN(
        CertainLowerBoundResult result,
        ComputeCertainAnswersLowerBound(*setting_, source, target, query,
                                        symbols_.get()));
    out.boolean_value = result.boolean_value;
    answers = std::move(result.answers);
  } else if (mode == "exact" || mode.empty()) {
    GenericSolverOptions opts;
    opts.max_nodes = options_.max_solver_nodes;
    opts.num_threads = options_.chase_threads;
    PDX_ASSIGN_OR_RETURN(
        CertainAnswersResult result,
        ComputeCertainAnswers(*setting_, source, target, query,
                              symbols_.get(), opts));
    out.no_solution = result.no_solution;
    out.boolean_value = result.boolean_value;
    answers = std::move(result.answers);
  } else {
    return InvalidArgumentError(
        StrCat("unknown mode '", mode, "' (want exact or lower_bound)"));
  }
  out.answers.reserve(answers.size());
  for (const Tuple& tuple : answers) {
    out.answers.push_back(TupleToString(tuple, *symbols_));
  }
  return out;
}

StatusOr<ContainsOutcome> Tenant::Contains(std::string_view facts_text) {
  std::vector<Fact> facts;
  {
    std::unique_lock<std::shared_mutex> lock(symbols_mu_);
    PDX_ASSIGN_OR_RETURN(
        Instance parsed,
        ParseInstance(facts_text, setting_->schema(), symbols_.get()));
    facts = parsed.AllFacts();
  }
  std::shared_ptr<const Generation> gen = store_.Acquire();
  ContainsOutcome out;
  out.generation = gen->seq();
  out.fingerprint = gen->Fingerprint();
  out.contains = true;
  for (const Fact& fact : facts) {
    if (!gen->canonical().Contains(fact)) {
      out.contains = false;
      break;
    }
  }
  return out;
}

TenantStats Tenant::Stats() const {
  std::shared_ptr<const Generation> gen = store_.Acquire();
  TenantStats stats;
  stats.id = id_;
  stats.generation = gen->seq();
  stats.base_facts = gen->base().fact_count();
  stats.canonical_facts = gen->canonical().ResolvedFactCount();
  stats.queue_depth = queue_.Depth();
  stats.chase_steps = gen->chase_steps();
  return stats;
}

}  // namespace serve
}  // namespace pdx
