#ifndef PDX_SERVE_GENERATION_H_
#define PDX_SERVE_GENERATION_H_

// Snapshot isolation for pdxd reads: a tenant's state is a chain of
// immutable *generations*, each one COW-branched off the last (O(#relations)
// per publish, never O(#facts)). Readers pin the generation current at
// request arrival with one shared_ptr copy and serve the whole request off
// it — a writer publishing generation k+1 mid-request never changes what a
// pinned reader of generation k sees. The single writer is the only thread
// that creates generations; GenerationStore::Publish is the linearization
// point.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>

#include "relational/instance.h"

namespace pdx {

class PdeSetting;
class SymbolTable;

namespace serve {

// One immutable published state of a tenant. Two views share COW stores:
//
//   * `base` is the admitted state (I, J) — the union of every fact ever
//     written, exactly as the clients sent it. ExistsSolution and certain
//     answers are questions about (I, J), so the solvers run on base's
//     side projections.
//   * `canonical` is the chase closure of base under Σ_st ∪ Σ_t. The
//     writer maintains it incrementally (one delta round per batch,
//     resuming from the previous generation's watermark); `contains`
//     probes it, and its CanonicalFingerprint is the generation identity
//     that snapshot-isolation tests assert on.
//
// Everything here is written once by the writer before Publish and then
// only read; the lazy memos below are the sole post-publish mutation,
// guarded by memo_mu (solver verdicts and side projections are demand
// driven — computing them eagerly would put a generic-solver run on the
// write path).
class Generation {
 public:
  Generation(uint64_t seq, Instance base, Instance canonical,
             InstanceWatermark canonical_mark)
      : seq_(seq),
        base_(std::move(base)),
        canonical_(std::move(canonical)),
        canonical_mark_(std::move(canonical_mark)) {}

  Generation(const Generation&) = delete;
  Generation& operator=(const Generation&) = delete;

  uint64_t seq() const { return seq_; }
  const Instance& base() const { return base_; }
  const Instance& canonical() const { return canonical_; }
  // The canonical instance's watermark at publish: the next batch's chase
  // resumes from here.
  const InstanceWatermark& canonical_mark() const { return canonical_mark_; }

  // Cumulative chase steps spent building this chain up to this generation.
  int64_t chase_steps() const { return chase_steps_; }
  void set_chase_steps(int64_t steps) { chase_steps_ = steps; }

  // CanonicalFingerprint of `canonical`, memoized (it is an O(n log n)
  // scan). Null-renaming invariant, so it identifies the generation's
  // logical content regardless of chase scheduling.
  uint64_t Fingerprint() const;

  // Side projections of `base`, memoized. The setting must be the tenant's.
  const Instance& SourceView(const PdeSetting& setting) const;
  const Instance& TargetView(const PdeSetting& setting) const;

  // Memoized ExistsSolution verdict for the tenant's auto solver choice
  // (serve/tenant.cc computes it; repeated exists requests against one
  // generation answer from the memo). nullopt until first computed.
  std::optional<bool> CachedExists() const;
  void CacheExists(bool value) const;

 private:
  const uint64_t seq_;
  const Instance base_;
  const Instance canonical_;
  const InstanceWatermark canonical_mark_;
  int64_t chase_steps_ = 0;

  mutable std::mutex memo_mu_;
  mutable std::optional<uint64_t> fingerprint_;
  mutable std::optional<Instance> source_view_;
  mutable std::optional<Instance> target_view_;
  mutable std::optional<bool> exists_;
};

// The single-writer / multi-reader publication cell. Acquire is what every
// read-path request does first; Publish is called only by the tenant's
// writer thread.
class GenerationStore {
 public:
  explicit GenerationStore(std::shared_ptr<const Generation> initial)
      : current_(std::move(initial)) {}

  // The generation current right now. The returned pointer pins it: the
  // reader's entire request is served off this object even if the writer
  // publishes past it concurrently.
  std::shared_ptr<const Generation> Acquire() const {
    std::lock_guard<std::mutex> lock(mu_);
    return current_;
  }

  // Atomically makes `next` the current generation. Single-writer: only
  // the tenant's writer thread calls this, with next->seq() strictly
  // increasing.
  void Publish(std::shared_ptr<const Generation> next) {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = std::move(next);
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const Generation> current_;
};

}  // namespace serve
}  // namespace pdx

#endif  // PDX_SERVE_GENERATION_H_
