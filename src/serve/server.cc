#include "serve/server.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "base/string_util.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "serve/metrics.h"

namespace pdx {
namespace serve {

namespace {

// How often blocking loops re-check the draining flag.
constexpr int kPollMillis = 100;

struct BoundListener {
  int fd = -1;
  std::string resolved;   // canonical "unix:..." / "tcp:IP:PORT"
  std::string unix_path;  // non-empty for unix sockets
};

StatusOr<BoundListener> BindListener(const std::string& address) {
  BoundListener out;
  if (address.rfind("unix:", 0) == 0) {
    std::string path = address.substr(5);
    if (path.empty()) return InvalidArgumentError("empty unix socket path");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
      return InvalidArgumentError(StrCat("unix path too long: ", path));
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return InternalError("socket(AF_UNIX) failed");
    ::unlink(path.c_str());  // the daemon owns its socket path
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, 128) != 0) {
      int err = errno;
      ::close(fd);
      return InternalError(
          StrCat("cannot listen on ", address, ": ", std::strerror(err)));
    }
    out.fd = fd;
    out.resolved = address;
    out.unix_path = std::move(path);
    return out;
  }
  if (address.rfind("tcp:", 0) == 0) {
    std::string hostport = address.substr(4);
    size_t colon = hostport.rfind(':');
    if (colon == std::string::npos) {
      return InvalidArgumentError(
          StrCat("tcp address needs HOST:PORT, got ", address));
    }
    std::string host = hostport.substr(0, colon);
    std::string port = hostport.substr(colon + 1);
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_PASSIVE;
    addrinfo* info = nullptr;
    if (::getaddrinfo(host.empty() ? nullptr : host.c_str(), port.c_str(),
                      &hints, &info) != 0) {
      return InvalidArgumentError(StrCat("cannot resolve ", address));
    }
    int fd = -1;
    int err = 0;
    for (addrinfo* ai = info; ai != nullptr; ai = ai->ai_next) {
      fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
      if (fd < 0) continue;
      int one = 1;
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
          ::listen(fd, 128) == 0) {
        break;
      }
      err = errno;
      ::close(fd);
      fd = -1;
    }
    ::freeaddrinfo(info);
    if (fd < 0) {
      return InternalError(
          StrCat("cannot listen on ", address, ": ", std::strerror(err)));
    }
    sockaddr_storage bound{};
    socklen_t len = sizeof(bound);
    char hostbuf[NI_MAXHOST], portbuf[NI_MAXSERV];
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0 &&
        ::getnameinfo(reinterpret_cast<sockaddr*>(&bound), len, hostbuf,
                      sizeof(hostbuf), portbuf, sizeof(portbuf),
                      NI_NUMERICHOST | NI_NUMERICSERV) == 0) {
      out.resolved = StrCat("tcp:", hostbuf, ":", portbuf);
    } else {
      out.resolved = address;
    }
    out.fd = fd;
    return out;
  }
  return InvalidArgumentError(
      StrCat("address must be unix:PATH or tcp:HOST:PORT, got ", address));
}

// Sends all of `data`, ignoring SIGPIPE (MSG_NOSIGNAL). False on error.
bool SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

// Accepts one connection, or -1 after a poll tick / on drain.
int PollAccept(int listen_fd, const std::atomic<bool>& draining) {
  pollfd pfd{listen_fd, POLLIN, 0};
  int ready = ::poll(&pfd, 1, kPollMillis);
  if (draining.load(std::memory_order_relaxed)) return -1;
  if (ready <= 0 || (pfd.revents & POLLIN) == 0) return -1;
  return ::accept(listen_fd, nullptr, nullptr);
}

}  // namespace

Server::Server(const ServerOptions& options)
    : options_(options),
      registry_(options.tenant),
      handler_(&registry_, options.protocol) {}

StatusOr<std::unique_ptr<Server>> Server::Start(const ServerOptions& options) {
  std::unique_ptr<Server> server(new Server(options));
  PDX_ASSIGN_OR_RETURN(BoundListener main, BindListener(options.address));
  server->listen_fd_ = main.fd;
  server->address_ = main.resolved;
  server->unix_path_ = main.unix_path;
  if (!options.metrics_address.empty()) {
    auto metrics = BindListener(options.metrics_address);
    if (!metrics.ok()) {
      ::close(server->listen_fd_);
      if (!server->unix_path_.empty()) ::unlink(server->unix_path_.c_str());
      server->listen_fd_ = -1;
      return metrics.status();
    }
    server->metrics_fd_ = metrics->fd;
    server->metrics_address_ = metrics->resolved;
    server->metrics_unix_path_ = metrics->unix_path;
  }
  int threads = options.worker_threads > 0 ? options.worker_threads
                                           : ThreadPool::HardwareConcurrency();
  // The pool runs long-lived connection tasks; +1 because ThreadPool spawns
  // threads-1 workers (the "calling thread" participant never joins here).
  server->pool_ = std::make_unique<ThreadPool>(threads + 1);
  server->accept_thread_ = std::thread(&Server::AcceptLoop, server.get());
  if (server->metrics_fd_ >= 0) {
    server->metrics_thread_ = std::thread(&Server::MetricsLoop, server.get());
  }
  return server;
}

Server::~Server() { Shutdown(); }

void Server::AcceptLoop() {
  while (!draining_.load(std::memory_order_relaxed)) {
    int fd = PollAccept(listen_fd_, draining_);
    if (fd < 0) continue;
    GlobalServeMetrics().connections_total.Inc();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.insert(fd);
    }
    bool submitted = pool_->Submit([this, fd] { ServeConnection(fd); });
    if (!submitted) {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.erase(fd);
      ::close(fd);
    }
  }
}

void Server::ServeConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    size_t newline = buffer.find('\n');
    if (newline == std::string::npos) {
      if (buffer.size() > options_.max_line_bytes) {
        SendAll(fd,
                "{\"id\":null,\"ok\":false,\"error\":{\"code\":"
                "\"INVALID_ARGUMENT\",\"message\":\"request line too "
                "large\"}}\n");
        break;
      }
      ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;  // EOF (including drain's SHUT_RD) or error
      buffer.append(chunk, static_cast<size_t>(n));
      continue;
    }
    std::string line = buffer.substr(0, newline);
    buffer.erase(0, newline + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    bool shutdown_requested = false;
    std::string response = handler_.HandleLine(line, &shutdown_requested);
    response += '\n';
    open = SendAll(fd, response);
    if (shutdown_requested) {
      // The response is out; now start the drain. Done via flag + an
      // outside thread (Wait + Shutdown): this task cannot drain the pool
      // it runs on.
      RequestShutdown();
      break;
    }
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.erase(fd);
  }
  ::close(fd);
}

void Server::MetricsLoop() {
  while (!draining_.load(std::memory_order_relaxed)) {
    int fd = PollAccept(metrics_fd_, draining_);
    if (fd < 0) continue;
    ServeMetricsConnection(fd);
    ::close(fd);
  }
}

void Server::ServeMetricsConnection(int fd) {
  // Minimal HTTP: read the request head (we serve one document whatever
  // the path), respond, close. Scrapers are few and periodic, so this is
  // handled inline on the metrics thread.
  std::string head;
  char chunk[1024];
  while (head.find("\r\n\r\n") == std::string::npos &&
         head.find("\n\n") == std::string::npos && head.size() < 64 * 1024) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return;
    head.append(chunk, static_cast<size_t>(n));
  }
  std::string body =
      obs::ExportPrometheus(obs::MetricsRegistry::Global().Snapshot());
  std::string response = StrCat(
      "HTTP/1.0 200 OK\r\n"
      "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
      "Content-Length: ", body.size(),
      "\r\n"
      "Connection: close\r\n\r\n",
      body);
  SendAll(fd, response);
}

void Server::RequestShutdown() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
}

bool Server::WaitForShutdownRequest(std::chrono::milliseconds poll) {
  std::unique_lock<std::mutex> lock(stop_mu_);
  stop_cv_.wait_for(lock, poll, [&] { return stop_requested_; });
  return stop_requested_;
}

void Server::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (shut_down_) return;
    shut_down_ = true;
    stop_requested_ = true;
  }
  stop_cv_.notify_all();

  // 1. Stop accepting: the accept loops notice `draining_` within a poll
  //    tick; then the listeners can be closed.
  draining_.store(true, std::memory_order_relaxed);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (metrics_thread_.joinable()) metrics_thread_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (metrics_fd_ >= 0) ::close(metrics_fd_);
  listen_fd_ = metrics_fd_ = -1;
  if (!unix_path_.empty()) ::unlink(unix_path_.c_str());
  if (!metrics_unix_path_.empty()) ::unlink(metrics_unix_path_.c_str());

  // 2. Half-close open connections: handlers blocked in recv see EOF and
  //    return after finishing the request they are on. Responses still
  //    flow — only the read side closes.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (int fd : conns_) ::shutdown(fd, SHUT_RD);
  }

  // 3. Drain the worker pool: every in-flight request completes, including
  //    writes blocked on tickets — the tenant writers are still running.
  pool_->Shutdown();

  // 4. Only now stop the tenants: their admission queues close and their
  //    writers publish every admitted batch before joining.
  registry_.ShutdownAll();
}

}  // namespace serve
}  // namespace pdx
