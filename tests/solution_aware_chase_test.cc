#include "chase/solution_aware_chase.h"

#include "gtest/gtest.h"
#include "logic/dependency_graph.h"
#include "logic/parser.h"
#include "pde/setting.h"
#include "pde/solution.h"
#include "relational/instance_io.h"

namespace pdx {
namespace {

class SolutionAwareChaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(schema_.AddRelation("E", 2).ok());
    ASSERT_TRUE(schema_.AddRelation("H", 2).ok());
    e_ = schema_.FindRelation("E").value();
    h_ = schema_.FindRelation("H").value();
    a_ = symbols_.InternConstant("a");
    b_ = symbols_.InternConstant("b");
    c_ = symbols_.InternConstant("c");
  }

  std::vector<Tgd> ParseTgds(const char* text) {
    auto deps = ParseDependencies(text, schema_, &symbols_);
    EXPECT_TRUE(deps.ok()) << deps.status().ToString();
    return std::move(deps).value().tgds;
  }

  Schema schema_;
  SymbolTable symbols_;
  RelationId e_ = 0, h_ = 0;
  Value a_, b_, c_;
};

TEST_F(SolutionAwareChaseTest, WitnessesComeFromTheSolution) {
  std::vector<Tgd> tgds = ParseTgds("E(x,y) -> exists z: H(y,z).");
  Instance start(&schema_);
  start.AddFact(e_, {a_, b_});
  // The "solution" contains start, satisfies the tgd, and offers c as the
  // witness.
  Instance solution = start;
  solution.AddFact(h_, {b_, c_});
  ChaseResult result = SolutionAwareChase(start, tgds, {}, solution);
  EXPECT_EQ(result.outcome, ChaseOutcome::kSuccess);
  EXPECT_TRUE(result.instance.Contains(h_, {b_, c_}));
  EXPECT_EQ(result.nulls_created, 0);
  EXPECT_FALSE(result.instance.HasNulls());
}

TEST_F(SolutionAwareChaseTest, ResultIsContainedInSolution) {
  std::vector<Tgd> tgds =
      ParseTgds("E(x,z) & E(z,y) -> H(x,y). H(x,y) -> exists z: H(y,z).");
  Instance start(&schema_);
  start.AddFact(e_, {a_, b_});
  start.AddFact(e_, {b_, a_});
  // A generous solution: complete H over {a, b}.
  Instance solution = start;
  for (Value u : {a_, b_}) {
    for (Value v : {a_, b_}) solution.AddFact(h_, {u, v});
  }
  ChaseResult result = SolutionAwareChase(start, tgds, {}, solution);
  EXPECT_EQ(result.outcome, ChaseOutcome::kSuccess);
  EXPECT_TRUE(result.instance.IsSubsetOf(solution));
  EXPECT_TRUE(start.IsSubsetOf(result.instance));
}

// Lemma 1's point: the solution-aware chase terminates even for tgd sets
// whose standard chase diverges, because witnesses are drawn from the
// finite solution instead of being invented.
TEST_F(SolutionAwareChaseTest, TerminatesWhereStandardChaseDiverges) {
  std::vector<Tgd> tgds = ParseTgds("H(x,y) -> exists z: H(y,z).");
  ASSERT_FALSE(IsWeaklyAcyclic(tgds, schema_));
  Instance start(&schema_);
  start.AddFact(h_, {a_, b_});
  Instance solution = start;
  solution.AddFact(h_, {b_, b_});  // b's successor is b
  ChaseResult result = SolutionAwareChase(start, tgds, {}, solution);
  EXPECT_EQ(result.outcome, ChaseOutcome::kSuccess);
  EXPECT_TRUE(result.instance.IsSubsetOf(solution));
  // Polynomially bounded: at most |solution| facts were addable.
  EXPECT_LE(result.steps,
            static_cast<int64_t>(solution.fact_count()));
}

TEST_F(SolutionAwareChaseTest, ChaseLengthBoundedBySolutionSize) {
  // Every solution-aware chase step adds at least one fact of the
  // solution, so steps <= |solution| - |start| for tgd-only chases.
  std::vector<Tgd> tgds =
      ParseTgds("E(x,y) -> H(x,y). H(x,y) -> exists z: H(y,z).");
  Instance start(&schema_);
  start.AddFact(e_, {a_, b_});
  Instance solution = start;
  for (Value u : {a_, b_, c_}) {
    for (Value v : {a_, b_, c_}) solution.AddFact(h_, {u, v});
  }
  ChaseResult result = SolutionAwareChase(start, tgds, {}, solution);
  EXPECT_EQ(result.outcome, ChaseOutcome::kSuccess);
  EXPECT_LE(result.steps, static_cast<int64_t>(solution.fact_count() -
                                               start.fact_count()));
}

// Lemma 2, end to end: from any solution J', the solution-aware chase of
// (I, J) with Σ_st extracts a small solution contained in J'. (With
// Σ_t = ∅, chasing Σ_st suffices: Σ_ts holds on any subset of J' whose
// Σ_st obligations are met, because its LHS matches are a subset of J''s.)
TEST_F(SolutionAwareChaseTest, Lemma2SmallSolutionInsideAnySolution) {
  SymbolTable symbols;
  auto setting = PdeSetting::Create(
      {{"E", 2}}, {{"H", 2}},
      "E(x,z) & E(z,y) -> H(x,y).", "H(x,y) -> E(x,y).", "", &symbols);
  ASSERT_TRUE(setting.ok());
  auto source = ParseInstance("E(a,b). E(b,c). E(a,c).", setting->schema(),
                              &symbols);
  ASSERT_TRUE(source.ok());
  // A deliberately fat solution.
  auto fat = ParseInstance("H(a,b). H(b,c). H(a,c).", setting->schema(),
                           &symbols);
  ASSERT_TRUE(fat.ok());
  ASSERT_TRUE(IsSolution(*setting, *source, setting->EmptyInstance(), *fat,
                         symbols));

  Instance start = setting->CombineInstances(*source,
                                             setting->EmptyInstance());
  Instance solution_combined = setting->CombineInstances(*source, *fat);
  ChaseResult chased = SolutionAwareChase(start, setting->st_tgds(), {},
                                          solution_combined);
  ASSERT_EQ(chased.outcome, ChaseOutcome::kSuccess);
  Instance small = setting->TargetPart(chased.instance);
  EXPECT_TRUE(small.IsSubsetOf(*fat));
  EXPECT_LT(small.fact_count(), fat->fact_count());
  EXPECT_TRUE(IsSolution(*setting, *source, setting->EmptyInstance(), small,
                         symbols));
  EXPECT_EQ(small.ToString(symbols), "H(a,c).");
}

TEST_F(SolutionAwareChaseTest, NoApplicableStepLeavesStartUnchanged) {
  std::vector<Tgd> tgds = ParseTgds("E(x,y) -> H(x,y).");
  Instance start(&schema_);
  start.AddFact(e_, {a_, b_});
  start.AddFact(h_, {a_, b_});
  Instance solution = start;
  ChaseResult result = SolutionAwareChase(start, tgds, {}, solution);
  EXPECT_EQ(result.outcome, ChaseOutcome::kSuccess);
  EXPECT_EQ(result.steps, 0);
  EXPECT_TRUE(result.instance.FactsEqual(start));
}

// Cross-dependency pipelining (options.speculative with a pool): the
// solution-aware chase invents no nulls — witnesses come from the
// solution — so overlapping collection of the next disjoint-footprint
// dependency with the current apply phase must keep results BIT-identical
// to the sequential run (same fingerprint, not just isomorphic), at every
// thread count.
TEST_F(SolutionAwareChaseTest, PipeliningKeepsResultsBitIdentical) {
  Schema wide;
  SymbolTable wide_symbols;
  for (const char* name : {"A0", "B0", "A1", "B1"}) {
    ASSERT_TRUE(wide.AddRelation(name, 2).ok());
  }
  auto deps = ParseDependencies(
      "A0(x,y) -> exists w: B0(x,w). A1(x,y) -> exists w: B1(x,w).", wide,
      &wide_symbols);
  ASSERT_TRUE(deps.ok()) << deps.status().ToString();
  auto node = [&](const std::string& tag) {
    return wide_symbols.InternConstant(tag);
  };
  Instance start(&wide);
  Instance solution(&wide);
  for (int i = 0; i < 24; ++i) {
    std::string u = "u" + std::to_string(i), v = "v" + std::to_string(i);
    for (RelationId a : {0, 2}) {
      start.AddFact(a, {node(u), node(v)});
      solution.AddFact(a, {node(u), node(v)});
      // Witness facts the chase may copy: B_i(u, w).
      solution.AddFact(a + 1, {node(u), node("w" + std::to_string(i))});
    }
  }
  ChaseResult ref = SolutionAwareChase(start, deps->tgds, {}, solution);
  ASSERT_EQ(ref.outcome, ChaseOutcome::kSuccess);
  EXPECT_GT(ref.steps, 0);
  for (int threads : {2, 8}) {
    ChaseOptions options;
    options.num_threads = threads;
    options.speculative = true;
    ChaseResult got =
        SolutionAwareChase(start, deps->tgds, {}, solution, options);
    ASSERT_EQ(got.outcome, ref.outcome) << "threads " << threads;
    EXPECT_EQ(got.steps, ref.steps) << "threads " << threads;
    EXPECT_EQ(got.instance.CanonicalFingerprint(),
              ref.instance.CanonicalFingerprint())
        << "threads " << threads;
    EXPECT_TRUE(got.instance.FactsEqual(ref.instance)) << "threads " << threads;
  }
}

}  // namespace
}  // namespace pdx
