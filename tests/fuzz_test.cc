// Robustness sweeps: randomly mangled inputs must produce error Statuses,
// never crashes, and valid inputs must survive mutation-and-reparse loops;
// fuzzed chases must keep the value layer's invariants.

#include <string>
#include <unordered_set>

#include "gtest/gtest.h"
#include "chase/chase.h"
#include "chase/stream.h"
#include "hom/instance_hom.h"
#include "hom/match_vm.h"
#include "logic/parser.h"
#include "pde/setting_file.h"
#include "relational/instance_io.h"
#include "tests/test_util.h"
#include "workload/churn.h"
#include "workload/random.h"

namespace pdx {
namespace {

// Characters the parsers care about, over-weighted with structure.
constexpr char kAlphabet[] =
    "abcxyzEHPq0129_,&|()'->:=.# \n\tEEHH(((--->>exists";

std::string RandomText(Rng* rng, int length) {
  std::string text;
  text.reserve(length);
  for (int i = 0; i < length; ++i) {
    text.push_back(
        kAlphabet[rng->UniformInt(sizeof(kAlphabet) - 1)]);
  }
  return text;
}

class FuzzTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    ASSERT_TRUE(schema_.AddRelation("E", 2).ok());
    ASSERT_TRUE(schema_.AddRelation("H", 2).ok());
    ASSERT_TRUE(schema_.AddRelation("P", 4).ok());
  }

  Schema schema_;
  SymbolTable symbols_;
};

TEST_P(FuzzTest, DependencyParserNeverCrashes) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    std::string text = RandomText(&rng, 1 + rng.UniformInt(80));
    // Must return; outcome (ok or error) is unconstrained.
    auto result = ParseDependencies(text, schema_, &symbols_);
    (void)result;
  }
}

TEST_P(FuzzTest, QueryParserNeverCrashes) {
  Rng rng(GetParam() + 1000);
  for (int trial = 0; trial < 200; ++trial) {
    std::string text = RandomText(&rng, 1 + rng.UniformInt(60));
    auto result = ParseUnionQuery(text, schema_, &symbols_);
    (void)result;
  }
}

TEST_P(FuzzTest, InstanceParserNeverCrashes) {
  Rng rng(GetParam() + 2000);
  for (int trial = 0; trial < 200; ++trial) {
    std::string text = RandomText(&rng, 1 + rng.UniformInt(60));
    auto result = ParseInstance(text, schema_, &symbols_);
    (void)result;
  }
}

TEST_P(FuzzTest, SettingFileParserNeverCrashes) {
  Rng rng(GetParam() + 3000);
  for (int trial = 0; trial < 100; ++trial) {
    std::string text =
        "[source]\nE/2\n[target]\nH/2\n" + RandomText(&rng, 80);
    SymbolTable symbols;
    auto result = ParseSettingFile(text, &symbols);
    (void)result;
  }
}

TEST_P(FuzzTest, MutatedValidDependencySurvives) {
  Rng rng(GetParam() + 4000);
  const std::string valid =
      "E(x,z) & E(z,y) -> H(x,y). H(x,y) -> exists w: E(x,w).";
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = valid;
    int mutations = 1 + rng.UniformInt(4);
    for (int m = 0; m < mutations; ++m) {
      size_t pos = rng.UniformInt(static_cast<uint32_t>(mutated.size()));
      mutated[pos] = kAlphabet[rng.UniformInt(sizeof(kAlphabet) - 1)];
    }
    auto result = ParseDependencies(mutated, schema_, &symbols_);
    if (result.ok()) {
      // If it still parses, the result must render and reparse.
      for (const Tgd& tgd : result->tgds) {
        std::string rendered = tgd.ToString(schema_, symbols_) + ".";
        EXPECT_TRUE(ParseTgd(rendered, schema_, &symbols_).ok())
            << "render/reparse broke on: " << rendered;
      }
    }
  }
}

// Chase fuzz: random instances (constants and shared nulls) through
// egd-bearing rule sets. Whatever the merge order, the union-find engine
// must agree with the Substitute baseline, and its resolved view must
// expose every surviving null as its own class root — a null resolving to
// a non-root would mean a stale parent link survived the chase.
TEST_P(FuzzTest, FuzzedChasesResolveSurvivingNullsToUniqueRoots) {
  Rng rng(GetParam() + 5000);
  const char* kRuleSets[] = {
      "E(x,y) -> exists z: H(x,z). H(x,y) & H(x,z) -> y = z.",
      "E(x,y) -> exists z: H(x,z) & H(y,z). H(x,y) & H(x,z) -> y = z.",
      "E(x,z) & E(z,y) -> H(x,y). H(x,y) -> exists w: E(x,w). "
      "H(x,y) & H(x,z) -> y = z. E(x,y) & E(x,z) -> y = z.",
  };
  for (int trial = 0; trial < 20; ++trial) {
    auto deps =
        ParseDependencies(kRuleSets[rng.UniformInt(3)], schema_, &symbols_);
    ASSERT_TRUE(deps.ok()) << deps.status().ToString();

    Instance start(&schema_);
    int pool = 2 + static_cast<int>(rng.UniformInt(4));
    std::vector<Value> nulls;
    for (int i = 0; i < 3; ++i) nulls.push_back(symbols_.FreshNull());
    int facts = 3 + static_cast<int>(rng.UniformInt(8));
    for (int i = 0; i < facts; ++i) {
      RelationId relation = static_cast<RelationId>(rng.UniformInt(2));
      Tuple tuple;
      for (int pos = 0; pos < 2; ++pos) {
        if (rng.UniformInt(4) == 0) {
          tuple.push_back(nulls[rng.UniformInt(3)]);
        } else {
          tuple.push_back(symbols_.InternConstant(
              "k" + std::to_string(rng.UniformInt(pool))));
        }
      }
      start.AddFact(relation, tuple);
    }

    ChaseOptions naive_options;
    naive_options.strategy = ChaseStrategy::kRestrictedNaive;
    naive_options.max_steps = 5000;
    ChaseOptions delta_options;
    delta_options.strategy = ChaseStrategy::kRestricted;
    delta_options.max_steps = 5000;
    // Compiled-plan toggle drawn per trial; every delta-engine
    // configuration of this trial (sequential and parallel) uses the same
    // lane, and the flipped lane is cross-validated below.
    delta_options.compile_plans = rng.UniformInt(2) == 1;
    ChaseResult naive =
        Chase(start, deps->tgds, deps->egds, &symbols_, naive_options);
    ChaseResult delta =
        Chase(start, deps->tgds, deps->egds, &symbols_, delta_options);

    ASSERT_EQ(naive.outcome, delta.outcome)
        << "engine disagreement, trial " << trial << "\nI:\n"
        << start.ToString(symbols_);

    // A randomized parallel configuration of the same delta chase: thread
    // count and schedule (barrier/speculative/dag) drawn per trial
    // (narrowed to the pinned schedule under PDX_FORCE_SPECULATIVE /
    // PDX_FORCE_SCHEDULE, i.e. the TSan lanes). The parallel run must
    // agree with the sequential delta run on outcome; on success,
    // per-round pending sets are schedule-invariant, so steps must match
    // exactly and the results must be equal up to null renaming.
    ChaseOptions parallel_options = delta_options;
    const int kThreadChoices[] = {1, 2, 8};
    parallel_options.num_threads = kThreadChoices[rng.UniformInt(3)];
    parallel_options.schedule =
        testing_util::DrawSchedule(rng.UniformInt(3));
    ChaseResult parallel =
        Chase(start, deps->tgds, deps->egds, &symbols_, parallel_options);
    ASSERT_EQ(parallel.outcome, delta.outcome)
        << "parallel disagreement, trial " << trial << " threads "
        << parallel_options.num_threads << " schedule "
        << ScheduleName(parallel_options.schedule) << "\nI:\n"
        << start.ToString(symbols_);
    if (delta.outcome == ChaseOutcome::kSuccess) {
      EXPECT_EQ(parallel.steps, delta.steps) << "trial " << trial;
      EXPECT_EQ(parallel.nulls_created, delta.nulls_created)
          << "trial " << trial;
      EXPECT_EQ(testing_util::CanonicalizedFingerprint(parallel.instance),
                testing_util::CanonicalizedFingerprint(delta.instance))
          << "trial " << trial << " threads " << parallel_options.num_threads
          << " schedule " << ScheduleName(parallel_options.schedule)
          << "\nI:\n" << start.ToString(symbols_);
    }

    // Plan-vs-interpreter cross-validation: the same sequential delta
    // chase with compile_plans flipped. On these rule sets (bodies of at
    // most two atoms) the compiled join order coincides with the
    // interpreter's, so outcome, step count, null count and the
    // canonicalized fingerprint must all agree.
    ChaseOptions flipped_options = delta_options;
    flipped_options.compile_plans = !delta_options.compile_plans;
    ChaseResult flipped =
        Chase(start, deps->tgds, deps->egds, &symbols_, flipped_options);
    ASSERT_EQ(flipped.outcome, delta.outcome)
        << "compiled/interpreted disagreement, trial " << trial
        << " compile_plans " << flipped_options.compile_plans << "\nI:\n"
        << start.ToString(symbols_);
    if (delta.outcome == ChaseOutcome::kSuccess) {
      EXPECT_EQ(flipped.steps, delta.steps) << "trial " << trial;
      EXPECT_EQ(flipped.nulls_created, delta.nulls_created)
          << "trial " << trial;
      EXPECT_EQ(testing_util::CanonicalizedFingerprint(flipped.instance),
                testing_util::CanonicalizedFingerprint(delta.instance))
          << "compiled/interpreted fingerprint divergence, trial " << trial
          << "\nI:\n" << start.ToString(symbols_);
    }

    // VM-vs-tree cross-validation: the same compiled sequential delta
    // chase under both planned executors (the bytecode VM and the
    // recursive tree walk it replaced). They enumerate identical match
    // sets per partition, so outcome, step count, null count and the
    // canonicalized fingerprint must all agree. The prior executor state
    // (possibly pinned by PDX_FORCE_TREE_EXEC) is restored afterwards.
    {
      ChaseOptions compiled_options = delta_options;
      compiled_options.compile_plans = true;
      const bool saved_force = ForceTreeExec();
      SetForceTreeExec(false);
      ChaseResult vm_run =
          Chase(start, deps->tgds, deps->egds, &symbols_, compiled_options);
      SetForceTreeExec(true);
      ChaseResult tree_run =
          Chase(start, deps->tgds, deps->egds, &symbols_, compiled_options);
      SetForceTreeExec(saved_force);
      ASSERT_EQ(vm_run.outcome, tree_run.outcome)
          << "vm/tree disagreement, trial " << trial << "\nI:\n"
          << start.ToString(symbols_);
      if (vm_run.outcome == ChaseOutcome::kSuccess) {
        EXPECT_EQ(vm_run.steps, tree_run.steps) << "trial " << trial;
        EXPECT_EQ(vm_run.nulls_created, tree_run.nulls_created)
            << "trial " << trial;
        EXPECT_EQ(testing_util::CanonicalizedFingerprint(vm_run.instance),
                  testing_util::CanonicalizedFingerprint(tree_run.instance))
            << "vm/tree fingerprint divergence, trial " << trial << "\nI:\n"
            << start.ToString(symbols_);
      }
    }

    if (delta.outcome != ChaseOutcome::kSuccess) continue;

    // Restricted-chase results are unique up to homomorphic equivalence,
    // not isomorphism: trigger order may differ between the engines on
    // null-seeded inputs. Both results must satisfy the dependencies and
    // map into each other.
    EXPECT_TRUE(SatisfiesAll(naive.instance, *deps)) << "trial " << trial;
    EXPECT_TRUE(SatisfiesAll(delta.instance, *deps)) << "trial " << trial;
    EXPECT_TRUE(FindInstanceHomomorphism(naive.instance, delta.instance)
                    .has_value())
        << "trial " << trial << "\nI:\n" << start.ToString(symbols_);
    EXPECT_TRUE(FindInstanceHomomorphism(delta.instance, naive.instance)
                    .has_value())
        << "trial " << trial << "\nI:\n" << start.ToString(symbols_);

    std::unordered_set<uint64_t> roots;
    for (Value v : delta.instance.Nulls()) {
      EXPECT_EQ(delta.instance.ResolveValue(v), v)
          << "non-root null in resolved view, trial " << trial;
      EXPECT_TRUE(roots.insert(v.packed()).second);
    }
    // Every value of every resolved fact is a root too (constants
    // trivially, nulls by the invariant above).
    for (const Fact& fact : delta.instance.AllFacts()) {
      for (Value v : fact.tuple) {
        EXPECT_EQ(delta.instance.ResolveValue(v), v);
      }
    }
  }
}

// Streaming churn fuzz: a random ±Δ stream absorbed batch-by-batch by a
// StreamingChase must track a fresh engine chasing the net instance —
// dependency satisfaction and homomorphic equivalence after every batch —
// whatever the schedule, thread count and compile mode drawn for the
// trial. The universe is constant-only E facts, so the egd-bearing rule
// set only ever merges invented nulls: no churn order can fail the chase,
// and deleting an egd firing's body exercises the full re-chase fallback
// instead.
TEST_P(FuzzTest, ChurnStreamsMatchFreshEngineOnNetInstance) {
  Rng rng(GetParam() + 6000);
  const char* kRuleSets[] = {
      "E(x,z) & E(z,y) -> H(x,y).",
      "E(x,z) & E(z,y) -> H(x,y). H(x,y) -> exists w: E(x,w).",
      "E(x,y) -> exists z: H(x,z). H(x,y) & H(x,z) -> y = z.",
  };
  const RelationId e = schema_.FindRelation("E").value();
  for (int trial = 0; trial < 6; ++trial) {
    auto deps =
        ParseDependencies(kRuleSets[rng.UniformInt(3)], schema_, &symbols_);
    ASSERT_TRUE(deps.ok()) << deps.status().ToString();

    std::vector<Fact> universe;
    int pool = 4 + static_cast<int>(rng.UniformInt(5));
    for (int i = 0; i < 24; ++i) {
      Tuple tuple;
      for (int pos = 0; pos < 2; ++pos) {
        tuple.push_back(symbols_.InternConstant(
            "k" + std::to_string(rng.UniformInt(pool))));
      }
      universe.push_back({e, tuple});
    }
    std::sort(universe.begin(), universe.end());
    universe.erase(std::unique(universe.begin(), universe.end()),
                   universe.end());

    ChaseOptions options;
    options.max_steps = 5000;
    options.compile_plans = rng.UniformInt(2) == 1;
    const int kThreadChoices[] = {1, 2, 8};
    options.num_threads = kThreadChoices[rng.UniformInt(3)];
    options.schedule = testing_util::DrawSchedule(rng.UniformInt(3));

    ChurnOptions churn_options;
    churn_options.delete_rate = 0.2;
    churn_options.insert_rate = 0.2;
    churn_options.overlap = 0.5;
    churn_options.seed = GetParam() * 131 + trial;
    ChurnStream churn(universe, universe.size() / 2, churn_options);

    StreamingChase stream(&schema_, deps->tgds, deps->egds, &symbols_,
                          options);
    ASSERT_TRUE(stream.Initialize(churn.NetInstance(&schema_)).ok());

    for (int batch_idx = 0; batch_idx < 4; ++batch_idx) {
      ChurnBatch batch = churn.Next();
      auto stats = stream.ResumeWithDeltas(batch.adds, batch.deletes);
      ASSERT_TRUE(stats.ok())
          << stats.status().ToString() << "\ntrial " << trial << " batch "
          << batch_idx;
      Instance net = churn.NetInstance(&schema_);
      ChaseResult scratch =
          Chase(net, deps->tgds, deps->egds, &symbols_, options);
      ASSERT_EQ(scratch.outcome, ChaseOutcome::kSuccess)
          << "trial " << trial << " batch " << batch_idx;
      EXPECT_TRUE(SatisfiesAll(stream.instance(), *deps))
          << "trial " << trial << " batch " << batch_idx;
      testing_util::AssertHomEquivalent(
          stream.instance(), scratch.instance,
          "trial " + std::to_string(trial) + " batch " +
              std::to_string(batch_idx) + " schedule " +
              ScheduleName(options.schedule));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

}  // namespace
}  // namespace pdx
