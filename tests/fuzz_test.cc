// Robustness sweeps: randomly mangled inputs must produce error Statuses,
// never crashes, and valid inputs must survive mutation-and-reparse loops.

#include <string>

#include "gtest/gtest.h"
#include "logic/parser.h"
#include "pde/setting_file.h"
#include "relational/instance_io.h"
#include "workload/random.h"

namespace pdx {
namespace {

// Characters the parsers care about, over-weighted with structure.
constexpr char kAlphabet[] =
    "abcxyzEHPq0129_,&|()'->:=.# \n\tEEHH(((--->>exists";

std::string RandomText(Rng* rng, int length) {
  std::string text;
  text.reserve(length);
  for (int i = 0; i < length; ++i) {
    text.push_back(
        kAlphabet[rng->UniformInt(sizeof(kAlphabet) - 1)]);
  }
  return text;
}

class FuzzTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    ASSERT_TRUE(schema_.AddRelation("E", 2).ok());
    ASSERT_TRUE(schema_.AddRelation("H", 2).ok());
    ASSERT_TRUE(schema_.AddRelation("P", 4).ok());
  }

  Schema schema_;
  SymbolTable symbols_;
};

TEST_P(FuzzTest, DependencyParserNeverCrashes) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    std::string text = RandomText(&rng, 1 + rng.UniformInt(80));
    // Must return; outcome (ok or error) is unconstrained.
    auto result = ParseDependencies(text, schema_, &symbols_);
    (void)result;
  }
}

TEST_P(FuzzTest, QueryParserNeverCrashes) {
  Rng rng(GetParam() + 1000);
  for (int trial = 0; trial < 200; ++trial) {
    std::string text = RandomText(&rng, 1 + rng.UniformInt(60));
    auto result = ParseUnionQuery(text, schema_, &symbols_);
    (void)result;
  }
}

TEST_P(FuzzTest, InstanceParserNeverCrashes) {
  Rng rng(GetParam() + 2000);
  for (int trial = 0; trial < 200; ++trial) {
    std::string text = RandomText(&rng, 1 + rng.UniformInt(60));
    auto result = ParseInstance(text, schema_, &symbols_);
    (void)result;
  }
}

TEST_P(FuzzTest, SettingFileParserNeverCrashes) {
  Rng rng(GetParam() + 3000);
  for (int trial = 0; trial < 100; ++trial) {
    std::string text =
        "[source]\nE/2\n[target]\nH/2\n" + RandomText(&rng, 80);
    SymbolTable symbols;
    auto result = ParseSettingFile(text, &symbols);
    (void)result;
  }
}

TEST_P(FuzzTest, MutatedValidDependencySurvives) {
  Rng rng(GetParam() + 4000);
  const std::string valid =
      "E(x,z) & E(z,y) -> H(x,y). H(x,y) -> exists w: E(x,w).";
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = valid;
    int mutations = 1 + rng.UniformInt(4);
    for (int m = 0; m < mutations; ++m) {
      size_t pos = rng.UniformInt(static_cast<uint32_t>(mutated.size()));
      mutated[pos] = kAlphabet[rng.UniformInt(sizeof(kAlphabet) - 1)];
    }
    auto result = ParseDependencies(mutated, schema_, &symbols_);
    if (result.ok()) {
      // If it still parses, the result must render and reparse.
      for (const Tgd& tgd : result->tgds) {
        std::string rendered = tgd.ToString(schema_, symbols_) + ".";
        EXPECT_TRUE(ParseTgd(rendered, schema_, &symbols_).ok())
            << "render/reparse broke on: " << rendered;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

}  // namespace
}  // namespace pdx
