#include "pde/ctract_solver.h"

#include "gtest/gtest.h"
#include "pde/solution.h"
#include "tests/test_util.h"
#include "workload/reductions.h"

namespace pdx {
namespace {

using testing_util::MakeExample1Setting;
using testing_util::MakePathSetting;
using testing_util::ParseOrDie;
using testing_util::Unwrap;

class CtractSolverTest : public ::testing::Test {
 protected:
  CtractSolverTest() : setting_(MakeExample1Setting(&symbols_)) {}

  CtractSolveResult Solve(const Instance& source, const Instance& target) {
    return Unwrap(CtractExistsSolution(setting_, source, target, &symbols_),
                  "CtractExistsSolution");
  }

  SymbolTable symbols_;
  PdeSetting setting_;
};

// Example 1, case 1: no solution.
TEST_F(CtractSolverTest, Example1NoSolution) {
  Instance source = ParseOrDie(setting_, "E(a,b). E(b,c).", &symbols_);
  CtractSolveResult result = Solve(source, setting_.EmptyInstance());
  EXPECT_FALSE(result.has_solution);
  EXPECT_FALSE(result.solution.has_value());
  EXPECT_GT(result.j_can_size, 0);  // the chase did produce H(a,c)
}

// Example 1, case 2: unique solution {H(a,a)}.
TEST_F(CtractSolverTest, Example1UniqueSolution) {
  Instance source = ParseOrDie(setting_, "E(a,a).", &symbols_);
  CtractSolveResult result = Solve(source, setting_.EmptyInstance());
  ASSERT_TRUE(result.has_solution);
  ASSERT_TRUE(result.solution.has_value());
  EXPECT_TRUE(IsSolution(setting_, source, setting_.EmptyInstance(),
                         *result.solution, symbols_));
  EXPECT_EQ(result.solution->ToString(symbols_), "H(a,a).");
}

// Example 1, case 3: solutions exist; the solver's witness must verify.
TEST_F(CtractSolverTest, Example1WitnessIsVerifiedSolution) {
  Instance source =
      ParseOrDie(setting_, "E(a,b). E(b,c). E(a,c).", &symbols_);
  CtractSolveResult result = Solve(source, setting_.EmptyInstance());
  ASSERT_TRUE(result.has_solution);
  EXPECT_TRUE(IsSolution(setting_, source, setting_.EmptyInstance(),
                         *result.solution, symbols_));
}

TEST_F(CtractSolverTest, NonEmptyTargetInstanceConstrains) {
  Instance source =
      ParseOrDie(setting_, "E(a,b). E(b,c). E(a,c).", &symbols_);
  // J = {H(a,c)}: consistent, solution must contain it.
  Instance target = ParseOrDie(setting_, "H(a,c).", &symbols_);
  CtractSolveResult result = Solve(source, target);
  ASSERT_TRUE(result.has_solution);
  EXPECT_TRUE(target.IsSubsetOf(*result.solution));

  // J = {H(b,a)}: (b,a) is not an edge, so Σ_ts can never hold.
  Instance bad_target = ParseOrDie(setting_, "H(b,a).", &symbols_);
  CtractSolveResult bad = Solve(source, bad_target);
  EXPECT_FALSE(bad.has_solution);
}

// The path setting: Σ_ts has an existential, producing nulls in I_can.
TEST_F(CtractSolverTest, ExistentialTsWitnessedThroughHomomorphism) {
  SymbolTable symbols;
  PdeSetting setting = MakePathSetting(&symbols);
  // E: a->b->c. J_can = {H(a,c)}; Σ_ts asks for a 2-path from a to c,
  // witnessed by b in I.
  Instance source = ParseOrDie(setting, "E(a,b). E(b,c).", &symbols);
  CtractSolveResult result = Unwrap(
      CtractExistsSolution(setting, source, setting.EmptyInstance(),
                           &symbols));
  ASSERT_TRUE(result.has_solution);
  EXPECT_TRUE(IsSolution(setting, source, setting.EmptyInstance(),
                         *result.solution, symbols));
  EXPECT_GT(result.max_block_nulls, 0);
}

TEST_F(CtractSolverTest, ExistentialTsFailsWithoutWitness) {
  SymbolTable symbols;
  PdeSetting setting = MakePathSetting(&symbols);
  // J contains H(a,c) but I has no 2-path from a to c.
  Instance source = ParseOrDie(setting, "E(a,b).", &symbols);
  Instance target = ParseOrDie(setting, "H(a,c).", &symbols);
  CtractSolveResult result = Unwrap(
      CtractExistsSolution(setting, source, target, &symbols));
  EXPECT_FALSE(result.has_solution);
}

TEST_F(CtractSolverTest, EmptySourceEmptyTargetTriviallySolvable) {
  CtractSolveResult result =
      Solve(setting_.EmptyInstance(), setting_.EmptyInstance());
  ASSERT_TRUE(result.has_solution);
  EXPECT_EQ(result.solution->fact_count(), 0u);
}

TEST_F(CtractSolverTest, RejectsSettingsWithTargetConstraints) {
  SymbolTable symbols;
  auto setting = Unwrap(PdeSetting::Create(
      {{"E", 2}}, {{"H", 2}}, "E(x,y) -> H(x,y).", "H(x,y) -> E(x,y).",
      "H(x,y) & H(x,z) -> y = z.", &symbols));
  Instance source = ParseOrDie(setting, "E(a,b).", &symbols);
  auto result = CtractExistsSolution(setting, source,
                                     setting.EmptyInstance(), &symbols);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(CtractSolverTest, RejectsCondition1Violation) {
  SymbolTable symbols;
  auto setting = Unwrap(PdeSetting::Create(
      {{"E", 2}}, {{"T1", 2}, {"T2", 2}},
      "E(x,y) -> exists z: T1(x,z) & T2(z,y).",
      "T1(x,z) & T2(z,y) -> E(x,y).", "", &symbols));
  Instance source = ParseOrDie(setting, "E(a,b).", &symbols);
  auto result = CtractExistsSolution(setting, source,
                                     setting.EmptyInstance(), &symbols);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

// The CLIQUE setting satisfies condition 1, so the algorithm is *correct*
// on it (Theorem 5) even though blocks may be large. Cross-check against
// the brute-force clique oracle on small graphs.
TEST_F(CtractSolverTest, CorrectOnCliqueSettingViaTheorem5) {
  SymbolTable symbols;
  PdeSetting setting = Unwrap(MakeCliqueSetting(&symbols));
  // Triangle graph: has 3-clique.
  Graph triangle = CompleteGraph(3);
  Instance with_clique =
      MakeCliqueSourceInstance(setting, triangle, 3, &symbols);
  CtractSolveResult yes = Unwrap(CtractExistsSolution(
      setting, with_clique, setting.EmptyInstance(), &symbols));
  EXPECT_TRUE(yes.has_solution);
  EXPECT_TRUE(IsSolution(setting, with_clique, setting.EmptyInstance(),
                         *yes.solution, symbols));

  // Path graph: no 3-clique.
  Graph path = PathGraph(4);
  Instance without_clique =
      MakeCliqueSourceInstance(setting, path, 3, &symbols);
  CtractSolveResult no = Unwrap(CtractExistsSolution(
      setting, without_clique, setting.EmptyInstance(), &symbols));
  EXPECT_FALSE(no.has_solution);
  // Theorem 6's contrast: outside C_tract blocks can grow with the input.
  EXPECT_GT(no.max_block_nulls, 1);
}

}  // namespace
}  // namespace pdx
