#include "logic/dependency.h"

#include "gtest/gtest.h"
#include "logic/parser.h"

namespace pdx {
namespace {

class DependencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(schema_.AddRelation("E", 2).ok());
    ASSERT_TRUE(schema_.AddRelation("H", 2).ok());
    ASSERT_TRUE(schema_.AddRelation("U", 1).ok());
  }

  Tgd Parse(const char* text) {
    auto tgd = ParseTgd(text, schema_, &symbols_);
    EXPECT_TRUE(tgd.ok()) << tgd.status().ToString();
    return std::move(tgd).value();
  }

  Schema schema_;
  SymbolTable symbols_;
};

TEST_F(DependencyTest, FullTgdClassification) {
  EXPECT_TRUE(Parse("E(x,y) -> H(x,y).").IsFull());
  EXPECT_TRUE(Parse("E(x,y) & E(y,z) -> H(x,z) & H(z,x).").IsFull());
  EXPECT_FALSE(Parse("E(x,y) -> exists z: H(x,z).").IsFull());
}

TEST_F(DependencyTest, LavClassification) {
  // Single body atom, distinct variables: LAV.
  EXPECT_TRUE(Parse("H(x,y) -> E(x,y).").IsLav());
  EXPECT_TRUE(Parse("H(x,y) -> exists z: E(x,z) & E(z,y).").IsLav());
  // Repeated variable in the body atom: not LAV.
  EXPECT_FALSE(Parse("H(x,x) -> E(x,x).").IsLav());
  // Two body atoms: not LAV.
  EXPECT_FALSE(Parse("H(x,y) & H(y,z) -> E(x,z).").IsLav());
  // Constant in the body atom: not LAV.
  EXPECT_FALSE(Parse("H(x,'c') -> E(x,x).").IsLav());
}

TEST_F(DependencyTest, GavClassification) {
  EXPECT_TRUE(Parse("E(x,z) & E(z,y) -> H(x,y).").IsGav());
  EXPECT_FALSE(Parse("E(x,y) -> H(x,y) & H(y,x).").IsGav());
  EXPECT_FALSE(Parse("E(x,y) -> exists z: H(x,z).").IsGav());
}

TEST_F(DependencyTest, ValidateTgdCatchesBadStructure) {
  Tgd tgd = Parse("E(x,y) -> H(x,y).");
  Tgd broken = tgd;
  broken.existential.pop_back();
  EXPECT_FALSE(ValidateTgd(broken, schema_).ok());

  broken = tgd;
  broken.head.clear();
  EXPECT_FALSE(ValidateTgd(broken, schema_).ok());

  broken = tgd;
  broken.head[0].terms[0] = Term::Var(99);
  EXPECT_FALSE(ValidateTgd(broken, schema_).ok());
}

TEST_F(DependencyTest, ValidateEgdCatchesBadVariables) {
  auto egd = ParseEgd("H(x,y) & H(x,z) -> y = z.", schema_, &symbols_);
  ASSERT_TRUE(egd.ok());
  Egd broken = *egd;
  broken.left_var = 99;
  EXPECT_FALSE(ValidateEgd(broken, schema_).ok());
}

TEST_F(DependencyTest, AtomsWithin) {
  Tgd tgd = Parse("E(x,y) -> H(x,y).");
  std::vector<bool> only_e = {true, false, false};
  std::vector<bool> only_h = {false, true, false};
  EXPECT_TRUE(AtomsWithin(tgd.body, only_e));
  EXPECT_FALSE(AtomsWithin(tgd.body, only_h));
  EXPECT_TRUE(AtomsWithin(tgd.head, only_h));
}

TEST_F(DependencyTest, DependencySetAccounting) {
  auto deps = ParseDependencies(
      "E(x,y) -> H(x,y).\n"
      "H(x,y) & H(x,z) -> y = z.\n"
      "H(x,y) -> (U(x)) | (U(y)).",
      schema_, &symbols_);
  ASSERT_TRUE(deps.ok());
  EXPECT_FALSE(deps->empty());
  EXPECT_EQ(deps->size(), 3u);
  EXPECT_EQ(deps->tgds.size(), 1u);
  EXPECT_EQ(deps->egds.size(), 1u);
  EXPECT_EQ(deps->disjunctive_tgds.size(), 1u);
}

TEST_F(DependencyTest, ToStringRendersReadably) {
  Tgd tgd = Parse("H(x,y) -> exists z: E(x,z) & E(z,y).");
  EXPECT_EQ(tgd.ToString(schema_, symbols_),
            "H(x,y) -> exists z: E(x,z) & E(z,y)");
  auto egd = ParseEgd("H(x,y) & H(x,z) -> y = z.", schema_, &symbols_);
  ASSERT_TRUE(egd.ok());
  EXPECT_EQ(egd->ToString(schema_, symbols_),
            "H(x,y) & H(x,z) -> y = z");
}

}  // namespace
}  // namespace pdx
