#include "pde/analysis.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace pdx {
namespace {

using testing_util::Unwrap;

TEST(AnalysisTest, DetectsRedundantStTgd) {
  SymbolTable symbols;
  auto setting = Unwrap(PdeSetting::Create(
      {{"E", 2}}, {{"H", 2}, {"F", 2}},
      // The second Σ_st tgd is implied by the first plus the Σ_t copy.
      "E(x,y) -> H(x,y).\n"
      "E(x,y) -> F(x,y).",
      "",
      "H(x,y) -> F(x,y).", &symbols));
  SettingAnalysis analysis = AnalyzeSetting(setting, &symbols);
  ASSERT_TRUE(analysis.implication_available);
  ASSERT_EQ(analysis.redundant_dependencies.size(), 1u);
  EXPECT_NE(analysis.redundant_dependencies[0].find("F(x,y)"),
            std::string::npos);
}

TEST(AnalysisTest, NoFalsePositives) {
  SymbolTable symbols;
  auto setting = Unwrap(PdeSetting::Create(
      {{"E", 2}}, {{"H", 2}},
      "E(x,y) -> H(x,y).", "H(x,y) -> E(x,y).", "", &symbols));
  SettingAnalysis analysis = AnalyzeSetting(setting, &symbols);
  ASSERT_TRUE(analysis.implication_available);
  EXPECT_TRUE(analysis.redundant_dependencies.empty());
}

TEST(AnalysisTest, DetectsRedundantEgd) {
  SymbolTable symbols;
  auto setting = Unwrap(PdeSetting::Create(
      {{"E", 2}}, {{"H", 2}, {"F", 2}},
      "E(x,y) -> H(x,y).", "",
      // The second egd (key of F) is implied by the copy tgd + key of H...
      // H -> F copies, and key(H) does not imply key(F) in general; use
      // duplicated egds instead: the same key stated twice.
      "H(x,y) -> F(x,y).\n"
      "H(x,y) & H(x,z) -> y = z.\n"
      "H(u,v) & H(u,w) -> v = w.",
      &symbols));
  SettingAnalysis analysis = AnalyzeSetting(setting, &symbols);
  ASSERT_TRUE(analysis.implication_available);
  // Both copies of the key are each implied by the other.
  EXPECT_EQ(analysis.redundant_dependencies.size(), 2u);
}

TEST(AnalysisTest, UnavailableWhenCombinedSetNotWeaklyAcyclic) {
  SymbolTable symbols;
  PdeSetting setting = testing_util::MakePathSetting(&symbols);
  // Σ_st: E²→H (ordinary edges into H), Σ_ts: H → ∃z E-path: the
  // existential feeds E positions that feed H again: cycle through a
  // special edge.
  SettingAnalysis analysis = AnalyzeSetting(setting, &symbols);
  EXPECT_FALSE(analysis.implication_available);
  EXPECT_TRUE(analysis.redundant_dependencies.empty());
}

TEST(AnalysisTest, GeneratingDirectionDiagnostics) {
  SymbolTable symbols;
  auto setting = Unwrap(PdeSetting::Create(
      {{"E", 2}}, {{"H", 2}, {"F", 2}},
      "E(x,y) -> exists z: H(x,z).", "",
      "H(x,y) -> exists w: F(y,w).", &symbols));
  SettingAnalysis analysis = AnalyzeSetting(setting, &symbols);
  EXPECT_TRUE(analysis.generating_sets_weakly_acyclic);
  EXPECT_EQ(analysis.max_rank, 2);
}

}  // namespace
}  // namespace pdx
