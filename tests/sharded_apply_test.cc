// Stress test of the relation-sharded apply protocol (Instance::
// EnsureOwnedStore / AddFactSharded / CommitShardedFacts, DESIGN.md §4d):
// rounds of concurrent per-relation insert fan-out interleaved with
// sequential egd merges (MergeValues) and COW snapshot reads taken while
// the shards are mutating. The final instance must equal a sequentially
// built reference fact-for-fact — no lost inserts, no lost dedup, counts
// committed exactly — and stay resolver-consistent: AddFactSharded
// canonicalizes through the (concurrently read, never mutated) resolver
// the same way AddFact does.
//
// The test carries the `parallel` ctest label and runs under TSan via
// tools/check.sh: worker threads write disjoint RelationStores while a
// reader thread walks a pre-round snapshot and all shards read the shared
// resolver, which is exactly the aliasing pattern the protocol's contract
// promises is race-free.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "base/thread_pool.h"
#include "relational/instance.h"
#include "relational/value.h"
#include "tests/test_util.h"
#include "workload/random.h"

namespace pdx {
namespace {

using testing_util::CanonicalizedFingerprint;

constexpr int kRelations = 6;
constexpr int kRounds = 6;
constexpr int kFactsPerRelationPerRound = 96;

struct ShardedApplyTest : ::testing::Test {
  Schema schema;
  SymbolTable symbols;

  ShardedApplyTest() {
    for (int r = 0; r < kRelations; ++r) {
      PDX_CHECK(schema.AddRelation("R" + std::to_string(r), 2).ok());
    }
  }

  Value Const(int i) {
    return symbols.InternConstant("c" + std::to_string(i));
  }

  // One round's insert batches: per relation, a mix of fresh tuples,
  // in-batch duplicates and nulls (so the resolver path is exercised once
  // merges have happened).
  std::vector<std::vector<Tuple>> MakeBatches(Rng* rng, int round) {
    std::vector<std::vector<Tuple>> batches(kRelations);
    for (int r = 0; r < kRelations; ++r) {
      for (int i = 0; i < kFactsPerRelationPerRound; ++i) {
        Value a = rng->UniformInt(4) == 0
                      ? Value::Null(1000 + rng->UniformInt(8 * (round + 1)))
                      : Const(rng->UniformInt(40));
        Value b = Const(rng->UniformInt(40));
        batches[r].push_back({a, b});
        if (rng->UniformInt(5) == 0) batches[r].push_back({a, b});  // dup
      }
    }
    return batches;
  }

  // Merges a few nulls into constants (and nulls), the way an egd
  // fixpoint would between tgd rounds. Sequential by protocol. Skips
  // pairs whose classes both already resolved to constants — a real egd
  // run would have failed there, which is not what this test is about.
  void ApplyMerges(Instance* instance, Rng* rng, int round) {
    for (int m = 0; m < 4; ++m) {
      Value null = Value::Null(1000 + rng->UniformInt(8 * (round + 1)));
      Value other = rng->UniformInt(2) == 0
                        ? Const(rng->UniformInt(40))
                        : Value::Null(1000 + rng->UniformInt(8 * (round + 1)));
      if (instance->ResolveValue(null).is_constant() &&
          instance->ResolveValue(other).is_constant()) {
        continue;
      }
      Instance::MergeResult merge = instance->MergeValues(null, other);
      ASSERT_FALSE(merge.conflict);
    }
  }
};

// The protocol under maximum interleaving: per-relation parallel inserts,
// a concurrent reader over the pre-round COW snapshot, merges between
// rounds. Final state must be identical to the same schedule of AddFact
// calls applied sequentially.
TEST_F(ShardedApplyTest, ConcurrentShardsMatchSequentialReference) {
  for (uint64_t seed : {11u, 12u, 13u}) {
    ThreadPool pool(8);
    Instance sharded(&schema);
    Instance reference(&schema);

    // Replay the same pseudo-random schedule into both instances.
    Rng sharded_rng(seed), reference_rng(seed);
    for (int round = 0; round < kRounds; ++round) {
      std::vector<std::vector<Tuple>> batches =
          MakeBatches(&sharded_rng, round);
      {
        std::vector<std::vector<Tuple>> ref_batches =
            MakeBatches(&reference_rng, round);
        for (int r = 0; r < kRelations; ++r) {
          for (const Tuple& t : ref_batches[r]) {
            reference.AddFact(r, Tuple(t));
          }
        }
      }

      // COW snapshot before the parallel round: stays valid and
      // bit-stable while the shards mutate the live instance.
      Instance snapshot = sharded;
      uint64_t snapshot_fp = snapshot.CanonicalFingerprint();
      size_t snapshot_count = snapshot.fact_count();

      for (int r = 0; r < kRelations; ++r) sharded.EnsureOwnedStore(r);

      std::atomic<bool> stop{false};
      std::atomic<uint64_t> reads{0};
      std::thread reader([&] {
        // Hammer the snapshot (and the shared resolver through it) while
        // the insert fan-out runs. do-while: at least one read lands even
        // when a single-core scheduler runs the whole fan-out before this
        // thread's first slice.
        do {
          uint64_t fp = snapshot.CanonicalFingerprint();
          if (fp != snapshot_fp || snapshot.fact_count() != snapshot_count) {
            ADD_FAILURE() << "snapshot mutated under concurrent shards";
            return;
          }
          reads.fetch_add(1, std::memory_order_relaxed);
        } while (!stop.load(std::memory_order_relaxed));
      });

      std::vector<size_t> added(kRelations, 0);
      pool.ParallelFor(kRelations, [&](size_t r) {
        size_t count = 0;
        for (const Tuple& t : batches[r]) {
          if (sharded.AddFactSharded(static_cast<RelationId>(r), Tuple(t))) {
            ++count;
          }
        }
        added[r] = count;
      });
      size_t total_added = 0;
      for (size_t count : added) total_added += count;
      sharded.CommitShardedFacts(total_added);

      stop.store(true, std::memory_order_relaxed);
      reader.join();
      EXPECT_GT(reads.load(), 0u);
      EXPECT_EQ(snapshot.CanonicalFingerprint(), snapshot_fp);

      ApplyMerges(&sharded, &sharded_rng, round);
      ApplyMerges(&reference, &reference_rng, round);
      ASSERT_EQ(sharded.fact_count(), reference.fact_count())
          << "seed " << seed << " round " << round;
    }

    // No lost facts, no phantom facts, committed counts exact.
    ASSERT_EQ(sharded.fact_count(), reference.fact_count());
    ASSERT_TRUE(sharded.FactsEqual(reference)) << "seed " << seed;
    ASSERT_EQ(sharded.CanonicalFingerprint(),
              reference.CanonicalFingerprint());
    // Resolver-consistent: merges applied identically, resolved views
    // agree.
    ASSERT_EQ(sharded.ResolvedFactCount(), reference.ResolvedFactCount());
    ASSERT_EQ(CanonicalizedFingerprint(sharded),
              CanonicalizedFingerprint(reference));
    // Every reference fact is present (Contains resolves, so this also
    // crosses the resolver).
    for (int r = 0; r < kRelations; ++r) {
      for (TupleView t : reference.tuples(r)) {
        ASSERT_TRUE(sharded.Contains(r, t.ToTuple()));
      }
    }
  }
}

// AddFactSharded must canonicalize through a non-trivial resolver exactly
// like AddFact: inserting a tuple under its pre-merge spelling from a
// worker dedups against the post-merge canonical spelling.
TEST_F(ShardedApplyTest, ShardedInsertResolvesThroughMergedValues) {
  Instance instance(&schema);
  Value n = Value::Null(5000);
  Value c = Const(7);
  instance.AddFact(0, {n, Const(1)});
  Instance::MergeResult merge = instance.MergeValues(n, c);
  ASSERT_TRUE(merge.merged);

  instance.EnsureOwnedStore(0);
  // {n, c1} resolves to {c7, c1}, which AddFact stored as {n, c1} — the
  // raw spellings differ but dedup is on resolved content only when the
  // insert resolves first; AddFactSharded resolves, so this is a dup of
  // nothing raw but inserts the canonical spelling, exactly what AddFact
  // would do.
  bool inserted_dup = instance.AddFactSharded(0, {n, Const(1)});
  bool inserted_new = instance.AddFactSharded(0, {n, Const(2)});
  instance.CommitShardedFacts((inserted_dup ? 1 : 0) + (inserted_new ? 1 : 0));

  Instance reference(&schema);
  reference.AddFact(0, {Value::Null(5000), Const(1)});
  Instance::MergeResult ref_merge = reference.MergeValues(Value::Null(5000), c);
  ASSERT_TRUE(ref_merge.merged);
  reference.AddFact(0, {Value::Null(5000), Const(1)});
  reference.AddFact(0, {Value::Null(5000), Const(2)});

  EXPECT_EQ(instance.fact_count(), reference.fact_count());
  EXPECT_TRUE(instance.FactsEqual(reference));
  EXPECT_EQ(instance.ResolvedFactCount(), reference.ResolvedFactCount());
}

// CommitShardedFacts is the only fact_count_ update in the protocol; an
// uncommitted round would desynchronize fact_count from the stores. This
// guards the accounting contract directly.
TEST_F(ShardedApplyTest, CommitFoldsCountsExactly) {
  Instance instance(&schema);
  instance.AddFact(0, {Const(0), Const(1)});
  ASSERT_EQ(instance.fact_count(), 1u);

  instance.EnsureOwnedStore(1);
  size_t added = 0;
  for (int i = 0; i < 10; ++i) {
    if (instance.AddFactSharded(1, {Const(i % 5), Const(i)})) ++added;
  }
  // 10 distinct (i%5, i) pairs — no dups here; dedup is covered above.
  instance.CommitShardedFacts(added);
  EXPECT_EQ(instance.fact_count(), 11u);
  EXPECT_EQ(instance.ResolvedFactCount(), 11u);
}

}  // namespace
}  // namespace pdx
