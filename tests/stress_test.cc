// Scale smoke tests: the polynomial paths must stay comfortable at sizes
// two orders of magnitude beyond the unit tests. Each test is budgeted to
// run in a few seconds in Release.

#include "gtest/gtest.h"
#include "chase/chase.h"
#include "logic/datalog.h"
#include "logic/parser.h"
#include "pde/ctract_solver.h"
#include "pde/solution.h"
#include "tests/test_util.h"
#include "workload/genomics.h"

namespace pdx {
namespace {

using testing_util::Unwrap;

TEST(StressTest, GenomicsExchangeAtScale) {
  SymbolTable symbols;
  PdeSetting setting = Unwrap(MakeGenomicsSetting(&symbols));
  Rng rng(99);
  GenomicsWorkloadOptions opts;
  opts.proteins = 1500;
  opts.annotations_per_protein = 2;
  opts.backed_target_annotations = 300;
  GenomicsWorkload workload =
      MakeGenomicsWorkload(setting, opts, &rng, &symbols);
  ASSERT_GT(workload.source.fact_count(), 4000u);
  CtractSolveResult result = Unwrap(CtractExistsSolution(
      setting, workload.source, workload.target, &symbols));
  ASSERT_TRUE(result.has_solution);
  // Spot-verify instead of full Definition 2 checking (which is itself
  // quadratic in tests): the solution contains every protein and is
  // block-bounded per Theorem 6.
  RelationId protein = setting.schema().FindRelation("Protein").value();
  EXPECT_EQ(result.solution->tuples(protein).size(),
            static_cast<size_t>(opts.proteins));
  EXPECT_LE(result.max_block_nulls, 2);
}

TEST(StressTest, IncrementalChaseAtScale) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("E", 2).ok());
  ASSERT_TRUE(schema.AddRelation("H", 2).ok());
  ASSERT_TRUE(schema.AddRelation("F", 2).ok());
  SymbolTable symbols;
  auto deps = ParseDependencies(
      "E(x,y) -> exists z: H(y,z). H(x,y) -> F(x,y).", schema, &symbols);
  ASSERT_TRUE(deps.ok());
  Instance start(&schema);
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    start.AddFact(0, {symbols.InternConstant(
                          "n" + std::to_string(rng.UniformInt(5000))),
                      symbols.InternConstant(
                          "n" + std::to_string(rng.UniformInt(5000)))});
  }
  ChaseResult result = Chase(start, deps->tgds, &symbols);
  ASSERT_EQ(result.outcome, ChaseOutcome::kSuccess);
  EXPECT_GT(result.instance.fact_count(), start.fact_count());
  // One H per distinct E-target, one F per H.
  EXPECT_EQ(result.instance.tuples(1).size(),
            result.instance.tuples(2).size());
}

TEST(StressTest, DatalogClosureAtScale) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("E", 2).ok());
  ASSERT_TRUE(schema.AddRelation("T", 2).ok());
  SymbolTable symbols;
  auto program = ParseDatalogProgram(
      "T(x,y) :- E(x,y). T(x,z) :- T(x,y), E(y,z).", schema, &symbols);
  ASSERT_TRUE(program.ok());
  // A long path: closure is quadratic in its length.
  Instance input(&schema);
  int n = 300;
  for (int i = 0; i + 1 < n; ++i) {
    input.AddFact(0, {symbols.InternConstant("p" + std::to_string(i)),
                      symbols.InternConstant("p" + std::to_string(i + 1))});
  }
  DatalogStats stats;
  Instance closure = EvaluateDatalog(*program, input, &stats);
  EXPECT_EQ(closure.tuples(1).size(),
            static_cast<size_t>(n) * (n - 1) / 2);
}

TEST(StressTest, LargeInstanceIndexing) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("R", 3).ok());
  SymbolTable symbols;
  Instance instance(&schema);
  Rng rng(13);
  for (int i = 0; i < 100000; ++i) {
    instance.AddFact(
        0, {Value::Constant(rng.UniformInt(500)),
            Value::Constant(rng.UniformInt(500)),
            Value::Constant(rng.UniformInt(500))});
  }
  // Point lookups through the index stay instant at this size.
  int hits = 0;
  for (uint32_t v = 0; v < 500; ++v) {
    hits += static_cast<int>(
        instance.TuplesWithValueAt(0, 1, Value::Constant(v)).size());
  }
  EXPECT_EQ(static_cast<size_t>(hits), instance.fact_count());
  EXPECT_EQ(instance.ActiveDomain().size(), 500u);
}

}  // namespace
}  // namespace pdx
