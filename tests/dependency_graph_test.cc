#include "logic/dependency_graph.h"

#include "gtest/gtest.h"
#include "chase/chase.h"
#include "logic/parser.h"

namespace pdx {
namespace {

class DependencyGraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(schema_.AddRelation("E", 2).ok());
    ASSERT_TRUE(schema_.AddRelation("H", 2).ok());
    ASSERT_TRUE(schema_.AddRelation("A", 1).ok());
    ASSERT_TRUE(schema_.AddRelation("B", 1).ok());
  }

  std::vector<Tgd> Parse(const char* text) {
    auto deps = ParseDependencies(text, schema_, &symbols_);
    EXPECT_TRUE(deps.ok()) << deps.status().ToString();
    return std::move(deps).value().tgds;
  }

  Schema schema_;
  SymbolTable symbols_;
};

TEST_F(DependencyGraphTest, FullTgdsAreWeaklyAcyclic) {
  // No existential variables: no special edges at all.
  EXPECT_TRUE(IsWeaklyAcyclic(
      Parse("E(x,y) -> H(x,y). H(x,y) -> E(y,x)."), schema_));
}

TEST_F(DependencyGraphTest, SelfFeedingExistentialIsNotWeaklyAcyclic) {
  // The classic non-terminating tgd: H(x,y) -> exists z: H(y,z).
  // Position H.1 feeds H.0 (ordinary via y) and H.1 gets a special edge
  // from H.1's source... the cycle goes through the special edge.
  EXPECT_FALSE(IsWeaklyAcyclic(Parse("H(x,y) -> exists z: H(y,z)."),
                               schema_));
}

TEST_F(DependencyGraphTest, AcyclicInclusionDependenciesAreWeaklyAcyclic) {
  // A -> exists y: H(x,y); H feeds E; nothing feeds back into A.
  EXPECT_TRUE(IsWeaklyAcyclic(
      Parse("A(x) -> exists y: H(x,y). H(x,y) -> E(x,y)."), schema_));
}

TEST_F(DependencyGraphTest, CycleWithoutSpecialEdgeIsWeaklyAcyclic) {
  // E and H copy into each other (full tgds): an ordinary cycle only.
  EXPECT_TRUE(IsWeaklyAcyclic(
      Parse("E(x,y) -> H(x,y). H(x,y) -> E(x,y)."), schema_));
}

TEST_F(DependencyGraphTest, SpecialEdgeInsideCycleDetected) {
  // E's second column feeds H's first (via the swap), H's first generates
  // a fresh value into E's second: the special edge H.0 -> E.1 closes a
  // cycle with the ordinary edge E.1 -> H.0.
  EXPECT_FALSE(IsWeaklyAcyclic(
      Parse("E(x,y) -> H(y,x). H(x,y) -> exists z: E(x,z)."), schema_));
}

TEST_F(DependencyGraphTest, FreshValueIntoUnreadColumnIsWeaklyAcyclic) {
  // H generates a fresh value into E's second column, but only E's first
  // column flows back into H: no cycle through the special edge.
  EXPECT_TRUE(IsWeaklyAcyclic(
      Parse("E(x,y) -> H(x,y). H(x,y) -> exists z: E(x,z)."), schema_));
}

TEST_F(DependencyGraphTest, RanksCountSpecialEdgesAlongPaths) {
  // A -> exists y: H(x,y)  (special A.0 -> H.1, ordinary A.0 -> H.0)
  // H -> exists z: E(y,z)  (special H.0,H.1 -> E.1, ordinary H.1 -> E.0)
  PositionDependencyGraph graph(
      Parse("A(x) -> exists y: H(x,y). H(x,y) -> exists z: E(y,z)."),
      schema_);
  ASSERT_TRUE(graph.IsWeaklyAcyclic());
  std::vector<int> ranks = graph.PositionRanks();
  int e1 = graph.PositionId(schema_.FindRelation("E").value(), 1);
  int h1 = graph.PositionId(schema_.FindRelation("H").value(), 1);
  int a0 = graph.PositionId(schema_.FindRelation("A").value(), 0);
  EXPECT_EQ(ranks[a0], 0);
  EXPECT_EQ(ranks[h1], 1);
  EXPECT_EQ(ranks[e1], 2);
  EXPECT_EQ(graph.MaxRank(), 2);
}

TEST_F(DependencyGraphTest, MaxRankIsMinusOneWhenNotWeaklyAcyclic) {
  PositionDependencyGraph graph(Parse("H(x,y) -> exists z: H(y,z)."),
                                schema_);
  EXPECT_EQ(graph.MaxRank(), -1);
  EXPECT_TRUE(graph.PositionRanks().empty());
}

TEST_F(DependencyGraphTest, EmptySetIsWeaklyAcyclic) {
  EXPECT_TRUE(IsWeaklyAcyclic({}, schema_));
  PositionDependencyGraph graph({}, schema_);
  EXPECT_EQ(graph.MaxRank(), 0);
}

TEST_F(DependencyGraphTest, PositionNames) {
  PositionDependencyGraph graph({}, schema_);
  RelationId h = schema_.FindRelation("H").value();
  EXPECT_EQ(graph.PositionName(graph.PositionId(h, 1), schema_), "H.1");
}

TEST_F(DependencyGraphTest, ChaseBoundForFullTgds) {
  // Full tgds invent no values: the value bound is the domain itself.
  ChaseBound bound = EstimateChaseBound(
      Parse("E(x,y) -> H(x,y). H(x,y) -> E(y,x)."), schema_, 10);
  EXPECT_TRUE(bound.weakly_acyclic);
  EXPECT_EQ(bound.max_rank, 0);
  EXPECT_EQ(bound.value_bound, 10);
  // Facts over E/2, H/2, A/1, B/1 with 10 values: 2*100 + 2*10.
  EXPECT_EQ(bound.fact_bound, 220);
}

TEST_F(DependencyGraphTest, ChaseBoundGrowsWithRank) {
  ChaseBound rank1 = EstimateChaseBound(
      Parse("A(x) -> exists y: H(x,y)."), schema_, 10);
  ChaseBound rank2 = EstimateChaseBound(
      Parse("A(x) -> exists y: H(x,y). H(x,y) -> exists z: E(y,z)."),
      schema_, 10);
  EXPECT_EQ(rank1.max_rank, 1);
  EXPECT_EQ(rank2.max_rank, 2);
  EXPECT_GT(rank2.value_bound, rank1.value_bound);
}

TEST_F(DependencyGraphTest, ChaseBoundUndefinedWithoutWeakAcyclicity) {
  ChaseBound bound = EstimateChaseBound(
      Parse("H(x,y) -> exists z: H(y,z)."), schema_, 10);
  EXPECT_FALSE(bound.weakly_acyclic);
  EXPECT_EQ(bound.max_rank, -1);
}

TEST_F(DependencyGraphTest, ChaseBoundIsSoundOnActualChases) {
  // Property check: real chase results stay within the static bound.
  std::vector<Tgd> tgds =
      Parse("A(x) -> exists y: H(x,y). H(x,y) -> exists z: E(y,z). "
            "E(x,y) -> B(x).");
  ASSERT_TRUE(IsWeaklyAcyclic(tgds, schema_));
  // Build instances of growing size and compare.
  for (int n : {2, 5, 10, 20}) {
    Instance start(&schema_);
    RelationId a = schema_.FindRelation("A").value();
    for (int i = 0; i < n; ++i) {
      start.AddFact(a, {symbols_.InternConstant("c" + std::to_string(i))});
    }
    ChaseBound bound = EstimateChaseBound(tgds, schema_, n);
    ChaseResult chased = Chase(start, tgds, &symbols_);
    ASSERT_EQ(chased.outcome, ChaseOutcome::kSuccess);
    EXPECT_LE(static_cast<double>(chased.instance.fact_count()),
              bound.fact_bound);
    EXPECT_LE(static_cast<double>(chased.instance.ActiveDomain().size()),
              bound.value_bound);
  }
}

TEST_F(DependencyGraphTest, RelationGraphAcyclicity) {
  // E -> H only: acyclic.
  EXPECT_TRUE(
      IsRelationGraphAcyclic(Parse("E(x,y) -> H(x,y)."), schema_));
  // E -> H and H -> E: a relation-level cycle.
  EXPECT_FALSE(IsRelationGraphAcyclic(
      Parse("E(x,y) -> H(x,y). H(x,y) -> E(x,y)."), schema_));
  // Self-loop.
  EXPECT_FALSE(
      IsRelationGraphAcyclic(Parse("H(x,y) -> H(y,x)."), schema_));
}

}  // namespace
}  // namespace pdx
