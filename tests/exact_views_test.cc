#include "pde/exact_views.h"

#include "gtest/gtest.h"
#include "pde/ctract_solver.h"
#include "pde/generic_solver.h"
#include "tests/test_util.h"

namespace pdx {
namespace {

using testing_util::ParseOrDie;
using testing_util::Unwrap;

TEST(ExactViewsTest, BuildsSoundAndExactDirections) {
  SymbolTable symbols;
  PdeSetting setting = Unwrap(MakeExactViewSetting(
      {{"Emp", 2}, {"Dept", 2}}, {{"WorksFor", 2}},
      {{"Emp(e,d) & Dept(d,m)", "WorksFor(e,m)"}}, &symbols));
  EXPECT_EQ(setting.st_tgds().size(), 1u);
  EXPECT_EQ(setting.ts_tgds().size(), 1u);
  // The exactness direction has an existential (the join variable d).
  EXPECT_FALSE(setting.ts_tgds()[0].IsFull());
}

TEST(ExactViewsTest, LavExactViewsLandInCtract) {
  SymbolTable symbols;
  // φ is a single source atom: LAV with exact views (Section 2's example).
  PdeSetting setting = Unwrap(MakeExactViewSetting(
      {{"S", 2}}, {{"V", 2}},
      {{"S(x,y)", "V(y,x)"}}, &symbols));
  EXPECT_TRUE(setting.InCtract());
}

TEST(ExactViewsTest, ExactnessRejectsExtraTargetData) {
  SymbolTable symbols;
  PdeSetting setting = Unwrap(MakeExactViewSetting(
      {{"S", 2}}, {{"V", 2}},
      {{"S(x,y)", "V(x,y)"}}, &symbols));
  Instance source = ParseOrDie(setting, "S(a,b).", &symbols);
  // V(b,a) is not in the view of the source: no solution containing it.
  Instance bad_target = ParseOrDie(setting, "V(b,a).", &symbols);
  auto result = Unwrap(CtractExistsSolution(setting, source, bad_target,
                                            &symbols));
  EXPECT_FALSE(result.has_solution);
  // The consistent target is fine and the solution is exactly the view.
  auto good = Unwrap(CtractExistsSolution(setting, source,
                                          setting.EmptyInstance(),
                                          &symbols));
  ASSERT_TRUE(good.has_solution);
  EXPECT_EQ(good.solution->ToString(symbols), "V(a,b).");
}

TEST(ExactViewsTest, JoinViewRequiresJoinWitnessInSource) {
  SymbolTable symbols;
  PdeSetting setting = Unwrap(MakeExactViewSetting(
      {{"Emp", 2}, {"Dept", 2}}, {{"WorksFor", 2}},
      {{"Emp(e,d) & Dept(d,m)", "WorksFor(e,m)"}}, &symbols));
  Instance source =
      ParseOrDie(setting, "Emp(ann,sales). Dept(sales,max).", &symbols);
  // WorksFor(ann,max) is exactly the view: solvable.
  auto yes = Unwrap(GenericExistsSolution(
      setting, source, ParseOrDie(setting, "WorksFor(ann,max).", &symbols),
      &symbols));
  EXPECT_EQ(yes.outcome, SolveOutcome::kSolutionFound);
  // WorksFor(ann,eve) has no witnessing department: unsolvable.
  auto no = Unwrap(GenericExistsSolution(
      setting, source, ParseOrDie(setting, "WorksFor(ann,eve).", &symbols),
      &symbols));
  EXPECT_EQ(no.outcome, SolveOutcome::kNoSolution);
}

TEST(ExactViewsTest, RejectsEmptyInput) {
  SymbolTable symbols;
  EXPECT_FALSE(
      MakeExactViewSetting({{"S", 1}}, {{"V", 1}}, {}, &symbols).ok());
  EXPECT_FALSE(MakeExactViewSetting({{"S", 1}}, {{"V", 1}},
                                    {{"", "V(x)"}}, &symbols)
                   .ok());
}

}  // namespace
}  // namespace pdx
