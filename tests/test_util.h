#ifndef PDX_TESTS_TEST_UTIL_H_
#define PDX_TESTS_TEST_UTIL_H_

#include <string>
#include <string_view>

#include "gtest/gtest.h"
#include "base/status.h"
#include "pde/setting.h"
#include "relational/instance.h"
#include "relational/instance_io.h"
#include "relational/value.h"

namespace pdx {
namespace testing_util {

// Unwraps a StatusOr in a test, failing loudly with the status message.
template <typename T>
T Unwrap(StatusOr<T> status_or, const char* what = "StatusOr") {
  EXPECT_TRUE(status_or.ok()) << what << ": " << status_or.status().ToString();
  return std::move(status_or).value();
}

// Parses an instance over the setting's combined schema, aborting the test
// on parse errors.
inline Instance ParseOrDie(const PdeSetting& setting, std::string_view text,
                           SymbolTable* symbols) {
  return Unwrap(ParseInstance(text, setting.schema(), symbols), "instance");
}

// Builds the PDE setting of the paper's Example 1:
//   S = {E/2}, T = {H/2},
//   Σ_st: E(x,z) & E(z,y) -> H(x,y)
//   Σ_ts: H(x,y) -> E(x,y)
//   Σ_t = ∅.
inline PdeSetting MakeExample1Setting(SymbolTable* symbols) {
  return Unwrap(PdeSetting::Create({{"E", 2}}, {{"H", 2}},
                                   "E(x,z) & E(z,y) -> H(x,y).",
                                   "H(x,y) -> E(x,y).", "", symbols),
                "example 1 setting");
}

// The path-of-length-two setting used throughout Section 2:
//   Σ_st: E(x,z) & E(z,y) -> H(x,y)
//   Σ_ts: H(x,y) -> exists z: E(x,z) & E(z,y)
inline PdeSetting MakePathSetting(SymbolTable* symbols) {
  return Unwrap(
      PdeSetting::Create({{"E", 2}}, {{"H", 2}},
                         "E(x,z) & E(z,y) -> H(x,y).",
                         "H(x,y) -> exists z: E(x,z) & E(z,y).", "", symbols),
      "path setting");
}

}  // namespace testing_util
}  // namespace pdx

#endif  // PDX_TESTS_TEST_UTIL_H_
