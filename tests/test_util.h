#ifndef PDX_TESTS_TEST_UTIL_H_
#define PDX_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "gtest/gtest.h"
#include "base/status.h"
#include "chase/chase.h"
#include "hom/instance_hom.h"
#include "pde/setting.h"
#include "relational/instance.h"
#include "relational/instance_io.h"
#include "relational/value.h"

namespace pdx {
namespace testing_util {

// Unwraps a StatusOr in a test, failing loudly with the status message.
template <typename T>
T Unwrap(StatusOr<T> status_or, const char* what = "StatusOr") {
  EXPECT_TRUE(status_or.ok()) << what << ": " << status_or.status().ToString();
  return std::move(status_or).value();
}

// Parses an instance over the setting's combined schema, aborting the test
// on parse errors.
inline Instance ParseOrDie(const PdeSetting& setting, std::string_view text,
                           SymbolTable* symbols) {
  return Unwrap(ParseInstance(text, setting.schema(), symbols), "instance");
}

// Builds the PDE setting of the paper's Example 1:
//   S = {E/2}, T = {H/2},
//   Σ_st: E(x,z) & E(z,y) -> H(x,y)
//   Σ_ts: H(x,y) -> E(x,y)
//   Σ_t = ∅.
inline PdeSetting MakeExample1Setting(SymbolTable* symbols) {
  return Unwrap(PdeSetting::Create({{"E", 2}}, {{"H", 2}},
                                   "E(x,z) & E(z,y) -> H(x,y).",
                                   "H(x,y) -> E(x,y).", "", symbols),
                "example 1 setting");
}

// The path-of-length-two setting used throughout Section 2:
//   Σ_st: E(x,z) & E(z,y) -> H(x,y)
//   Σ_ts: H(x,y) -> exists z: E(x,z) & E(z,y)
inline PdeSetting MakePathSetting(SymbolTable* symbols) {
  return Unwrap(
      PdeSetting::Create({{"E", 2}}, {{"H", 2}},
                         "E(x,z) & E(z,y) -> H(x,y).",
                         "H(x,y) -> exists z: E(x,z) & E(z,y).", "", symbols),
      "path setting");
}

// Fingerprint after canonical null renumbering (CanonicalizeNulls in
// hom/instance_hom.h): invariant under any bijective renaming of nulls,
// which is exactly the equivalence speculative parallel chase results are
// unique up to. Raw CanonicalFingerprint() tie-breaks its fact sort on
// original null ids, so it can differ between isomorphic instances whose
// nulls sit in symmetric positions — use this for cross-schedule
// comparisons.
inline uint64_t CanonicalizedFingerprint(const Instance& instance) {
  return CanonicalizeNulls(instance).CanonicalFingerprint();
}

// Asserts `a` and `b` are homomorphically equivalent (maps both ways,
// constants fixed) — the solution-equivalence of the paper's Lemmas 1–2.
// Strictly weaker than isomorphism: hom-equivalent instances may have
// different canonicalized fingerprints (one may contain redundant facts
// the other folds away); assert CanonicalizedFingerprint equality when
// isomorphism is meant.
inline void AssertHomEquivalent(const Instance& a, const Instance& b,
                                const std::string& context = "") {
  EXPECT_TRUE(FindInstanceHomomorphism(a, b).has_value())
      << "no homomorphism a -> b" << (context.empty() ? "" : ": ") << context;
  EXPECT_TRUE(FindInstanceHomomorphism(b, a).has_value())
      << "no homomorphism b -> a" << (context.empty() ? "" : ": ") << context;
}

// True when the environment forces speculative chase execution
// (tools/check.sh sets PDX_FORCE_SPECULATIVE=1 for the TSan pass so every
// parallel-labeled chase exercises the speculative path).
inline bool ForceSpeculative() {
  const char* env = std::getenv("PDX_FORCE_SPECULATIVE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

// The schedules a parallel-invariance test should exercise. All three by
// default. Under PDX_FORCE_SCHEDULE (which ResolveSchedule makes win
// process-wide anyway) or the legacy PDX_FORCE_SPECULATIVE, only the
// forced one — tools/check.sh's TSan lanes pin a schedule so the
// sanitized runs cover exactly that path instead of re-running every mode
// at triple cost.
inline std::vector<ChaseSchedule> SchedulesToTest() {
  if (const char* env = std::getenv("PDX_FORCE_SCHEDULE")) {
    std::string_view forced(env);
    if (forced == "barrier") return {ChaseSchedule::kBarrier};
    if (forced == "speculative") return {ChaseSchedule::kSpeculative};
    if (forced == "dag") return {ChaseSchedule::kDag};
  }
  if (ForceSpeculative()) return {ChaseSchedule::kSpeculative};
  return {ChaseSchedule::kBarrier, ChaseSchedule::kSpeculative,
          ChaseSchedule::kDag};
}

// Maps a random draw to a schedule for fuzz-style trials: uniform over
// SchedulesToTest(), so a pinned TSan lane fuzzes only the pinned path.
inline ChaseSchedule DrawSchedule(uint32_t draw) {
  std::vector<ChaseSchedule> schedules = SchedulesToTest();
  return schedules[draw % schedules.size()];
}

}  // namespace testing_util
}  // namespace pdx

#endif  // PDX_TESTS_TEST_UTIL_H_
