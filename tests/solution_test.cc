#include "pde/solution.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace pdx {
namespace {

using testing_util::MakeExample1Setting;
using testing_util::ParseOrDie;

class SolutionTest : public ::testing::Test {
 protected:
  SolutionTest() : setting_(MakeExample1Setting(&symbols_)) {}

  SymbolTable symbols_;
  PdeSetting setting_;
};

// Example 1, case 1: I = {E(a,b), E(b,c)}, J = ∅ has no solution; in
// particular J' = {H(a,c)} fails Σ_ts because (a,c) is not an E-edge.
TEST_F(SolutionTest, Example1NoSolutionCandidateFails) {
  Instance source = ParseOrDie(setting_, "E(a,b). E(b,c).", &symbols_);
  Instance empty = setting_.EmptyInstance();
  Instance candidate = ParseOrDie(setting_, "H(a,c).", &symbols_);
  SolutionCheck check =
      CheckSolution(setting_, source, empty, candidate, symbols_);
  EXPECT_FALSE(check.is_solution);
  ASSERT_FALSE(check.violations.empty());
  // The empty target also fails (Σ_st requires H(a,c)).
  EXPECT_FALSE(IsSolution(setting_, source, empty, empty, symbols_));
}

// Example 1, case 2: I = {E(a,a)} has the unique solution {H(a,a)}.
TEST_F(SolutionTest, Example1UniqueSolution) {
  Instance source = ParseOrDie(setting_, "E(a,a).", &symbols_);
  Instance empty = setting_.EmptyInstance();
  Instance solution = ParseOrDie(setting_, "H(a,a).", &symbols_);
  EXPECT_TRUE(IsSolution(setting_, source, empty, solution, symbols_));
  EXPECT_FALSE(IsSolution(setting_, source, empty, empty, symbols_));
}

// Example 1, case 3: I = {E(a,b), E(b,c), E(a,c)} admits both {H(a,c)} and
// {H(a,b), H(b,c), H(a,c)}.
TEST_F(SolutionTest, Example1MultipleSolutions) {
  Instance source =
      ParseOrDie(setting_, "E(a,b). E(b,c). E(a,c).", &symbols_);
  Instance empty = setting_.EmptyInstance();
  EXPECT_TRUE(IsSolution(setting_, source, empty,
                         ParseOrDie(setting_, "H(a,c).", &symbols_),
                         symbols_));
  EXPECT_TRUE(IsSolution(
      setting_, source, empty,
      ParseOrDie(setting_, "H(a,b). H(b,c). H(a,c).", &symbols_), symbols_));
  // But H(b,a) is not allowed: (b,a) is not an edge.
  EXPECT_FALSE(IsSolution(
      setting_, source, empty,
      ParseOrDie(setting_, "H(a,c). H(b,a).", &symbols_), symbols_));
}

TEST_F(SolutionTest, SolutionMustContainJ) {
  Instance source =
      ParseOrDie(setting_, "E(a,b). E(b,c). E(a,c).", &symbols_);
  Instance target = ParseOrDie(setting_, "H(a,b).", &symbols_);
  // {H(a,c)} satisfies the constraints but does not contain J.
  SolutionCheck check = CheckSolution(
      setting_, source, target, ParseOrDie(setting_, "H(a,c).", &symbols_),
      symbols_);
  EXPECT_FALSE(check.is_solution);
  // Adding J's facts fixes it.
  EXPECT_TRUE(IsSolution(
      setting_, source, target,
      ParseOrDie(setting_, "H(a,b). H(a,c).", &symbols_), symbols_));
}

TEST_F(SolutionTest, TargetEgdsAreChecked) {
  SymbolTable symbols;
  auto setting = PdeSetting::Create(
      {{"E", 2}}, {{"H", 2}}, "E(x,y) -> H(x,y).", "",
      "H(x,y) & H(x,z) -> y = z.", &symbols);
  ASSERT_TRUE(setting.ok());
  Instance source = ParseOrDie(*setting, "E(a,b).", &symbols);
  Instance empty = setting->EmptyInstance();
  EXPECT_TRUE(IsSolution(*setting, source, empty,
                         ParseOrDie(*setting, "H(a,b).", &symbols), symbols));
  SolutionCheck check = CheckSolution(
      *setting, source, empty,
      ParseOrDie(*setting, "H(a,b). H(a,c).", &symbols), symbols);
  EXPECT_FALSE(check.is_solution);
}

TEST_F(SolutionTest, ViolationMessagesNameTheDependency) {
  Instance source = ParseOrDie(setting_, "E(a,b). E(b,c).", &symbols_);
  Instance empty = setting_.EmptyInstance();
  SolutionCheck check =
      CheckSolution(setting_, source, empty, empty, symbols_);
  ASSERT_FALSE(check.violations.empty());
  EXPECT_NE(check.violations[0].find("Σst"), std::string::npos);
}

TEST_F(SolutionTest, CandidateWithSourceFactsIsRejected) {
  Instance source = ParseOrDie(setting_, "E(a,a).", &symbols_);
  Instance empty = setting_.EmptyInstance();
  Instance bad = ParseOrDie(setting_, "H(a,a). E(a,a).", &symbols_);
  SolutionCheck check = CheckSolution(setting_, source, empty, bad, symbols_);
  EXPECT_FALSE(check.is_solution);
}

}  // namespace
}  // namespace pdx
