// Copy-on-write semantics of Instance and InstanceSnapshot: a branch may
// be mutated arbitrarily (AddFact, RemoveFact, Substitute) without any
// effect on its parent or sibling branches, and DeltaSince exposes exactly
// what a branch changed.

#include "gtest/gtest.h"
#include "relational/snapshot.h"
#include "relational/value.h"

namespace pdx {
namespace {

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(schema_.AddRelation("R", 2).ok());
    ASSERT_TRUE(schema_.AddRelation("S", 1).ok());
    a_ = symbols_.InternConstant("a");
    b_ = symbols_.InternConstant("b");
    c_ = symbols_.InternConstant("c");
  }

  Instance Base() {
    Instance instance(&schema_);
    instance.AddFact(0, {a_, b_});
    instance.AddFact(0, {b_, c_});
    instance.AddFact(1, {a_});
    return instance;
  }

  Schema schema_;
  SymbolTable symbols_;
  Value a_, b_, c_;
};

TEST_F(SnapshotTest, BranchAddDoesNotLeakIntoParent) {
  Instance parent = Base();
  InstanceSnapshot snapshot(parent);
  Instance branch = snapshot.Branch();
  EXPECT_TRUE(branch.AddFact(0, {c_, a_}));
  EXPECT_TRUE(branch.AddFact(1, {b_}));

  EXPECT_EQ(parent.fact_count(), 3u);
  EXPECT_EQ(snapshot.get().fact_count(), 3u);
  EXPECT_EQ(branch.fact_count(), 5u);
  EXPECT_FALSE(parent.Contains(0, {c_, a_}));
  EXPECT_FALSE(snapshot.get().Contains(1, {b_}));
}

TEST_F(SnapshotTest, ParentMutationDoesNotLeakIntoBranch) {
  Instance parent = Base();
  InstanceSnapshot snapshot(parent);
  Instance branch = snapshot.Branch();
  EXPECT_TRUE(parent.AddFact(1, {c_}));

  EXPECT_FALSE(branch.Contains(1, {c_}));
  EXPECT_FALSE(snapshot.get().Contains(1, {c_}));
  EXPECT_EQ(branch.fact_count(), 3u);
}

TEST_F(SnapshotTest, SiblingBranchesAreIndependent) {
  Instance parent = Base();
  InstanceSnapshot snapshot(parent);
  Instance left = snapshot.Branch();
  Instance right = snapshot.Branch();
  left.AddFact(0, {a_, a_});
  right.AddFact(0, {c_, c_});

  EXPECT_TRUE(left.Contains(0, {a_, a_}));
  EXPECT_FALSE(left.Contains(0, {c_, c_}));
  EXPECT_TRUE(right.Contains(0, {c_, c_}));
  EXPECT_FALSE(right.Contains(0, {a_, a_}));
  EXPECT_EQ(snapshot.get().fact_count(), 3u);
}

TEST_F(SnapshotTest, BranchRemoveFactDoesNotLeakIntoParent) {
  Instance parent = Base();
  InstanceSnapshot snapshot(parent);
  Instance branch = snapshot.Branch();
  EXPECT_TRUE(branch.RemoveFact(0, {a_, b_}));
  EXPECT_FALSE(branch.RemoveFact(0, {a_, b_}));  // already gone

  EXPECT_TRUE(parent.Contains(0, {a_, b_}));
  EXPECT_TRUE(snapshot.get().Contains(0, {a_, b_}));
  EXPECT_EQ(branch.fact_count(), 2u);
  EXPECT_EQ(parent.fact_count(), 3u);
  // The branch's inverted index survived the swap-with-last removal.
  const TupleIndexSpan hits = branch.TuplesWithValueAt(0, 0, b_);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(branch.tuples(0)[hits[0]], (Tuple{b_, c_}));
}

TEST_F(SnapshotTest, BranchSubstituteDoesNotLeakIntoParent) {
  Instance parent(&schema_);
  Value null = symbols_.FreshNull();
  parent.AddFact(0, {a_, null});
  parent.AddFact(1, {null});
  InstanceSnapshot snapshot(parent);
  Instance branch = snapshot.Branch();
  branch.Substitute(null, b_);

  EXPECT_TRUE(branch.Contains(0, {a_, b_}));
  EXPECT_TRUE(branch.Contains(1, {b_}));
  EXPECT_TRUE(parent.Contains(0, {a_, null}));
  EXPECT_TRUE(parent.Contains(1, {null}));
  EXPECT_FALSE(parent.Contains(1, {b_}));
  // Substitute counts as a rewrite of the touched relations — in the
  // branch only.
  EXPECT_GT(branch.rewrites(0), parent.rewrites(0));
  EXPECT_GT(branch.rewrites(1), parent.rewrites(1));
}

TEST_F(SnapshotTest, SubstituteSkipsUntouchedRelations) {
  Instance parent = Base();
  Value null = symbols_.FreshNull();
  parent.AddFact(1, {null});
  uint64_t r_rewrites = parent.rewrites(0);
  parent.Substitute(null, b_);
  // R never contained the null: its store and rewrite counter are intact.
  EXPECT_EQ(parent.rewrites(0), r_rewrites);
  EXPECT_GT(parent.rewrites(1), 0u);
}

TEST_F(SnapshotTest, DeltaSinceSeesExactlyTheBranchAdditions) {
  Instance parent = Base();
  InstanceSnapshot snapshot(parent);
  Instance branch = snapshot.Branch();
  branch.AddFact(0, {c_, a_});
  branch.AddFact(0, {c_, b_});

  DeltaView delta = snapshot.DeltaSince(branch);
  EXPECT_TRUE(delta.any());
  EXPECT_TRUE(delta.dirty(0));
  EXPECT_FALSE(delta.dirty(1));
  EXPECT_EQ(delta.end(0) - delta.begin(0), 2u);
  EXPECT_EQ(branch.tuples(0)[delta.begin(0)], (Tuple{c_, a_}));

  // An untouched branch has an empty delta.
  Instance idle = snapshot.Branch();
  EXPECT_FALSE(snapshot.DeltaSince(idle).any());
}

TEST_F(SnapshotTest, DeltaSinceTreatsRewrittenRelationAsAllNew) {
  Instance parent(&schema_);
  Value null = symbols_.FreshNull();
  parent.AddFact(0, {a_, null});
  parent.AddFact(0, {b_, c_});
  InstanceSnapshot snapshot(parent);
  Instance branch = snapshot.Branch();
  branch.Substitute(null, c_);

  DeltaView delta = snapshot.DeltaSince(branch);
  EXPECT_TRUE(delta.dirty(0));
  EXPECT_EQ(delta.begin(0), 0u);
  EXPECT_EQ(delta.end(0), branch.tuples(0).size());
}

TEST_F(SnapshotTest, CopyIsCheapAndStillIsolated) {
  // Plain Instance copies go through the same copy-on-write machinery.
  Instance parent = Base();
  Instance copy = parent;
  copy.AddFact(1, {b_});
  EXPECT_FALSE(parent.Contains(1, {b_}));
  EXPECT_TRUE(copy.Contains(1, {b_}));
  EXPECT_TRUE(parent.IsSubsetOf(copy));
  EXPECT_FALSE(copy.IsSubsetOf(parent));
}

TEST_F(SnapshotTest, BranchMergeDoesNotLeakIntoParent) {
  Instance parent(&schema_);
  Value n1 = symbols_.FreshNull();
  Value n2 = symbols_.FreshNull();
  parent.AddFact(0, {a_, n1});
  parent.AddFact(0, {a_, n2});
  InstanceSnapshot snapshot(parent);
  Instance branch = snapshot.Branch();

  Instance::MergeResult merge = branch.MergeValues(n1, n2);
  EXPECT_TRUE(merge.merged);
  // Exactly the tuple holding the losing null is dirty.
  ASSERT_EQ(merge.dirty.size(), 1u);
  EXPECT_EQ(merge.dirty[0].first, 0);
  EXPECT_EQ(branch.ResolvedFactCount(), 1u);
  EXPECT_TRUE(branch.has_merges());

  // The parent and the snapshot still see two distinct facts and a
  // trivial resolver: the branch's union never aliased their state.
  EXPECT_FALSE(parent.has_merges());
  EXPECT_EQ(parent.ResolvedFactCount(), 2u);
  EXPECT_EQ(parent.ResolveValue(n1), n1);
  EXPECT_EQ(snapshot.get().ResolvedFactCount(), 2u);
  EXPECT_EQ(snapshot.get().resolver().version(), 0u);
}

TEST_F(SnapshotTest, SiblingBranchesMergeIndependently) {
  Instance parent(&schema_);
  Value n = symbols_.FreshNull();
  parent.AddFact(0, {a_, n});
  InstanceSnapshot snapshot(parent);
  Instance left = snapshot.Branch();
  Instance right = snapshot.Branch();

  EXPECT_TRUE(left.MergeValues(n, b_).merged);
  EXPECT_TRUE(right.MergeValues(n, c_).merged);

  EXPECT_TRUE(left.Contains(0, {a_, b_}));
  EXPECT_FALSE(left.Contains(0, {a_, c_}));
  EXPECT_TRUE(right.Contains(0, {a_, c_}));
  EXPECT_FALSE(right.Contains(0, {a_, b_}));
  EXPECT_EQ(parent.ResolveValue(n), n);
  EXPECT_TRUE(parent.Contains(0, {a_, n}));
}

TEST_F(SnapshotTest, InterleavedMergesNeverAliasResolverState) {
  Instance parent(&schema_);
  Value n1 = symbols_.FreshNull();
  Value n2 = symbols_.FreshNull();
  Value n3 = symbols_.FreshNull();
  parent.AddFact(0, {n1, n2});
  parent.AddFact(1, {n3});
  InstanceSnapshot snapshot(parent);
  Instance branch = snapshot.Branch();

  // Interleave unions across the parent and the branch; each side must
  // see exactly its own merge history.
  EXPECT_TRUE(parent.MergeValues(n1, a_).merged);
  EXPECT_TRUE(branch.MergeValues(n1, n2).merged);
  EXPECT_TRUE(parent.MergeValues(n2, b_).merged);
  EXPECT_TRUE(branch.MergeValues(n3, c_).merged);

  EXPECT_EQ(parent.ResolveValue(n1), a_);
  EXPECT_EQ(parent.ResolveValue(n2), b_);
  EXPECT_EQ(parent.ResolveValue(n3), n3);
  EXPECT_TRUE(branch.ResolveValue(n1).is_null());
  EXPECT_EQ(branch.ResolveValue(n1), branch.ResolveValue(n2));
  EXPECT_EQ(branch.ResolveValue(n3), c_);
  EXPECT_EQ(snapshot.get().resolver().version(), 0u);
}

TEST_F(SnapshotTest, MergeDoesNotDirtyWatermarksOrRewrites) {
  Instance instance(&schema_);
  Value n = symbols_.FreshNull();
  instance.AddFact(0, {a_, n});
  instance.AddFact(0, {a_, b_});
  uint64_t rewrites = instance.rewrites(0);
  InstanceWatermark mark = instance.TakeWatermark();

  Instance::MergeResult merge = instance.MergeValues(n, b_);
  EXPECT_TRUE(merge.merged);
  EXPECT_EQ(merge.winner, b_);  // constants win unions

  // Unlike Substitute, a merge leaves tuple indexes and watermarks valid:
  // no rewrite, no additive delta.
  EXPECT_EQ(instance.rewrites(0), rewrites);
  DeltaView plain(instance, mark);
  EXPECT_FALSE(plain.any());

  // The dirty tuples the merge reported expose the change to delta-driven
  // callers via the extras channel.
  std::vector<std::vector<int>> extras(2);
  for (const auto& [relation, index] : merge.dirty) {
    extras[relation].push_back(index);
  }
  DeltaView with_extras(instance, mark, extras);
  EXPECT_TRUE(with_extras.any());
  EXPECT_TRUE(with_extras.dirty(0));
  ASSERT_EQ(with_extras.extras(0).size(), 1u);
  const TupleView raw = instance.tuples(0)[with_extras.extras(0)[0]];
  EXPECT_EQ(raw, (Tuple{a_, n}));  // raw store keeps the stale value
  EXPECT_EQ(instance.ResolveTuple(raw.ToTuple()), (Tuple{a_, b_}));
  EXPECT_EQ(instance.ResolvedFactCount(), 1u);
}

// Deletion propagation's reader contract: a pinned branch (what a pdxd
// generation holds) keeps its facts — including raw TupleView spans read
// before the writer moved on — while the live branch retracts facts
// in place.
TEST_F(SnapshotTest, PinnedBranchSurvivesLiveRetraction) {
  Instance live = Base();
  InstanceSnapshot pinned(live);  // the published generation

  // Readers resolve spans against the pinned branch up front.
  const TupleView span = pinned.get().tuples(0)[0];
  ASSERT_EQ(span[0], a_);
  ASSERT_EQ(span[1], b_);

  // The writer retracts through the live branch: every raw R tuple goes.
  EXPECT_TRUE(live.RemoveFact(0, {a_, b_}));
  EXPECT_TRUE(live.RemoveFact(0, {b_, c_}));
  EXPECT_EQ(live.tuples(0).size(), 0u);

  // The pinned branch is untouched, span included.
  EXPECT_EQ(pinned.get().tuples(0).size(), 2u);
  EXPECT_TRUE(pinned.get().Contains(0, {a_, b_}));
  EXPECT_TRUE(pinned.get().Contains(0, {b_, c_}));
  EXPECT_EQ(span[0], a_);
  EXPECT_EQ(span[1], b_);

  // And the other way: re-adding on the live side never bleeds back.
  EXPECT_TRUE(live.AddFact(0, {c_, c_}));
  EXPECT_FALSE(pinned.get().Contains(0, {c_, c_}));
}

// Same contract across compaction: the writer may swap its store for a
// compacted copy (the chase's auto-compaction under merge-heavy churn)
// while a pinned reader keeps the original spans.
TEST_F(SnapshotTest, PinnedBranchSurvivesLiveCompaction) {
  Instance live = Base();
  Value n = symbols_.FreshNull();
  live.AddFact(0, {a_, n});
  ASSERT_TRUE(live.MergeValues(n, b_).merged);  // R(a,n) duplicates R(a,b)

  InstanceSnapshot pinned(live);
  const TupleView span = pinned.get().tuples(1)[0];
  ASSERT_EQ(span[0], a_);
  const size_t pinned_raw = pinned.get().tuples(0).size();

  // Writer-side compaction: duplicates under resolution fold away.
  Instance compacted = live.CompactResolved(/*keep_resolver=*/true);
  EXPECT_LT(compacted.tuples(0).size(), pinned_raw);
  live = std::move(compacted);
  EXPECT_TRUE(live.RemoveFact(1, {a_}));

  // The pinned branch still exposes the pre-compaction store.
  EXPECT_EQ(pinned.get().tuples(0).size(), pinned_raw);
  EXPECT_TRUE(pinned.get().Contains(1, {a_}));
  EXPECT_EQ(span[0], a_);
}

TEST_F(SnapshotTest, FingerprintUnaffectedBySharing) {
  Instance parent = Base();
  InstanceSnapshot snapshot(parent);
  Instance branch = snapshot.Branch();
  EXPECT_EQ(parent.CanonicalFingerprint(), branch.CanonicalFingerprint());
  branch.AddFact(1, {c_});
  EXPECT_NE(parent.CanonicalFingerprint(), branch.CanonicalFingerprint());
  EXPECT_EQ(parent.CanonicalFingerprint(),
            snapshot.get().CanonicalFingerprint());
}

}  // namespace
}  // namespace pdx
