#include "relational/schema.h"

#include "gtest/gtest.h"

namespace pdx {
namespace {

TEST(SchemaTest, AddAndFind) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("E", 2).ok());
  ASSERT_TRUE(schema.AddRelation("P", 4).ok());
  EXPECT_EQ(schema.relation_count(), 2);
  auto e = schema.FindRelation("E");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(schema.relation_name(*e), "E");
  EXPECT_EQ(schema.arity(*e), 2);
  EXPECT_EQ(schema.arity(schema.FindRelation("P").value()), 4);
}

TEST(SchemaTest, RejectsDuplicateNames) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("E", 2).ok());
  auto again = schema.AddRelation("E", 3);
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kAlreadyExists);
}

TEST(SchemaTest, RejectsBadArityAndEmptyName) {
  Schema schema;
  EXPECT_EQ(schema.AddRelation("E", 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(schema.AddRelation("E", -1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(schema.AddRelation("", 2).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SchemaTest, FindUnknownIsNotFound) {
  Schema schema;
  EXPECT_EQ(schema.FindRelation("ghost").status().code(),
            StatusCode::kNotFound);
}

TEST(SchemaTest, DisjointUnionPreservesLeftIds) {
  Schema left;
  ASSERT_TRUE(left.AddRelation("A", 1).ok());
  ASSERT_TRUE(left.AddRelation("B", 2).ok());
  Schema right;
  ASSERT_TRUE(right.AddRelation("C", 3).ok());
  auto merged = Schema::DisjointUnion(left, right);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->relation_count(), 3);
  EXPECT_EQ(merged->FindRelation("A").value(), 0);
  EXPECT_EQ(merged->FindRelation("B").value(), 1);
  EXPECT_EQ(merged->FindRelation("C").value(), 2);
}

TEST(SchemaTest, DisjointUnionRejectsNameClash) {
  Schema left;
  ASSERT_TRUE(left.AddRelation("A", 1).ok());
  Schema right;
  ASSERT_TRUE(right.AddRelation("A", 1).ok());
  EXPECT_FALSE(Schema::DisjointUnion(left, right).ok());
}

TEST(SchemaTest, ToStringListsRelations) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("E", 2).ok());
  ASSERT_TRUE(schema.AddRelation("H", 2).ok());
  EXPECT_EQ(schema.ToString(), "E/2, H/2");
}

}  // namespace
}  // namespace pdx
